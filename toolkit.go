package hybridsched

import (
	"hybridsched/internal/demand"
	"hybridsched/internal/packet"
	"hybridsched/internal/rng"
	"hybridsched/internal/runner"
	"hybridsched/internal/sim"
	"hybridsched/internal/stats"
)

// The toolkit around scenarios, for code that drives the simulator
// directly — hand-crafted workloads, custom devices, component probes —
// rather than through Scenario.Run.
type (
	// Simulator is the discrete-event kernel: a picosecond clock and a
	// deterministic FIFO-tie-break event queue.
	Simulator = sim.Simulator
	// Packet is the unit of traffic.
	Packet = packet.Packet
	// Port identifies a switch port.
	Port = packet.Port
	// PacketClass is the traffic class carried by each packet.
	PacketClass = packet.Class
	// Rand is the deterministic splittable random source every workload
	// draws from.
	Rand = rng.Rand
	// DemandMatrix is the (input x output) demand estimate scheduling
	// algorithms consume; it implements DemandReader.
	DemandMatrix = demand.Matrix
	// Estimator supplies demand estimates to the scheduling loop
	// (FabricConfig.Estimator).
	Estimator = demand.Estimator
	// Pool is the deterministic fixed-size worker pool independent
	// simulations fan out over.
	Pool = runner.Pool
	// Summary is the latency/staleness distribution summary carried by
	// Metrics (count, min/max, mean, percentiles, in picoseconds).
	Summary = stats.Summary
)

// Packet classes.
const (
	ClassBestEffort       = packet.ClassBestEffort
	ClassLatencySensitive = packet.ClassLatencySensitive
)

// NewSimulator returns a simulator at time zero.
func NewSimulator() *Simulator { return sim.New() }

// NewRand returns a deterministic random source for the given seed.
func NewRand(seed uint64) *Rand { return rng.New(seed) }

// NewDemandMatrix returns an n x n zero demand matrix.
func NewDemandMatrix(n int) *DemandMatrix { return demand.NewMatrix(n) }

// NewOccupancyEstimator returns the default estimator: instantaneous queue
// occupancy, the estimate a hardware scheduler reads directly from VOQs.
func NewOccupancyEstimator(n int) Estimator { return demand.NewOccupancy(n) }

// NewWindowEstimator returns an estimator summing observed arrivals over a
// sliding window — the polled-counter estimate of software control loops.
func NewWindowEstimator(n int, window Duration) Estimator { return demand.NewWindow(n, window) }

// NewEWMAEstimator returns an exponentially-weighted moving-average
// estimator with the given smoothing factor and bucket width.
func NewEWMAEstimator(n int, alpha float64, bucket Duration) Estimator {
	return demand.NewEWMA(n, alpha, bucket)
}

// NewPool returns a worker pool of the given size (0 = GOMAXPROCS).
// Results from MapPool are collected in index order, so output is
// identical at any worker count.
func NewPool(workers int) *Pool { return runner.New(workers) }

// MapPool runs fn(i) for every i in [0, n) on p's workers and returns the
// results in index order. All jobs run to completion even when some fail;
// the returned error is the failure with the lowest index.
func MapPool[T any](p *Pool, n int, fn func(int) (T, error)) ([]T, error) {
	return runner.Map(p, n, fn)
}

// DeriveSeed maps a base seed and a job index to a decorrelated per-job
// seed, so a fan-out of related scenarios gets independent yet
// reproducible random streams regardless of which worker runs which job.
func DeriveSeed(base uint64, index int) uint64 { return runner.DeriveSeed(base, index) }
