package hybridsched

import "hybridsched/internal/fabric"

// Sample is one periodic observation of a running fabric: the time-series
// counterpart of the final Metrics. Set Scenario.SampleEvery and
// Scenario.Observer (or use WithObserver) to stream them during a run —
// queue depths at each buffering point, latency percentiles so far, and
// circuit utilization over simulated time.
type Sample = fabric.Sample

// Observer receives periodic Samples during a run, in simulated-time
// order, on the goroutine executing the scenario. Observation is
// read-only: a run with an observer attached is bit-identical to the same
// run without one.
type Observer func(Sample)
