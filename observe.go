package hybridsched

import "hybridsched/internal/fabric"

// Sample is one periodic observation of a running fabric: the time-series
// counterpart of the final Metrics. Set Scenario.SampleEvery and
// Scenario.Observer (or use WithObserver) to stream them during a run —
// queue depths at each buffering point, latency percentiles so far, and
// circuit utilization over simulated time.
type Sample = fabric.Sample

// Observer receives periodic Samples during a run, in simulated-time
// order, on the goroutine executing the scenario. Observation is
// read-only: a run with an observer attached is bit-identical to the same
// run without one.
type Observer func(Sample)

// MetricsObserver returns an Observer that feeds every Sample into r as
// the hybridsched_fabric_* metric family — queue-depth and latency
// gauges, plus counters derived from the samples' cumulative totals —
// tagged with the given constant labels. Attach it with WithObserver to
// watch a simulation through the same registry (and the same /metrics
// endpoint) as the online scheduling service.
func MetricsObserver(r *MetricsRegistry, labels ...MetricLabel) Observer {
	ins := fabric.NewInstruments(r, labels...)
	return ins.Record
}
