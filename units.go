package hybridsched

import "hybridsched/internal/units"

// The fundamental quantities every scenario is written in: simulated time
// (picosecond resolution), data sizes (bits) and bit rates (bits per
// second), re-exported from the units layer so scenarios never import it.
type (
	// Duration is a span of simulated time in picoseconds.
	Duration = units.Duration
	// Time is an absolute simulated time: picoseconds since start.
	Time = units.Time
	// Size is an amount of data in bits.
	Size = units.Size
	// BitRate is a transmission rate in bits per second.
	BitRate = units.BitRate
)

// Common durations.
const (
	Picosecond  = units.Picosecond
	Nanosecond  = units.Nanosecond
	Microsecond = units.Microsecond
	Millisecond = units.Millisecond
	Second      = units.Second
)

// MaxTime is the largest representable simulation instant.
const MaxTime = units.MaxTime

// Common sizes. Decimal multiples follow network convention (1 KB = 1000 B).
const (
	Bit      = units.Bit
	Byte     = units.Byte
	Kilobyte = units.Kilobyte
	Megabyte = units.Megabyte
	Gigabyte = units.Gigabyte
	Terabyte = units.Terabyte
)

// Common rates.
const (
	BitPerSecond = units.BitPerSecond
	Kbps         = units.Kbps
	Mbps         = units.Mbps
	Gbps         = units.Gbps
	Tbps         = units.Tbps
)

// ParseDuration parses strings such as "1ms", "51.2ns", "10us", "500ps".
func ParseDuration(s string) (Duration, error) { return units.ParseDuration(s) }

// ParseSize parses strings such as "1500B", "9KB", "1.2GB", "64b" (bits).
func ParseSize(s string) (Size, error) { return units.ParseSize(s) }

// ParseBitRate parses strings such as "10Gbps", "100Mbps", "1.6Tbps".
func ParseBitRate(s string) (BitRate, error) { return units.ParseBitRate(s) }

// TransmitTime returns the time needed to serialize s onto a link of rate
// r, rounded up to the next picosecond.
func TransmitTime(s Size, r BitRate) Duration { return units.TransmitTime(s, r) }

// TransferSize returns the amount of data a link of rate r carries in d,
// rounded down.
func TransferSize(r BitRate, d Duration) Size { return units.TransferSize(r, d) }
