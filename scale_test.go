package hybridsched

import (
	"testing"
)

// TestScale256PortScenario runs a pod-scale (256-port) hybrid fabric
// end-to-end — the race-smoke scenario for the scaling refactor: sparse
// demand views, allocation-free matching and the nonempty-VOQ bookkeeping
// all under load at a port count 16x the historical experiment sizes.
// The simulated horizon is short so the test stays fast under -race.
func TestScale256PortScenario(t *testing.T) {
	const ports = 256
	sc := Scenario{
		Fabric: FabricConfig{
			Ports:        ports,
			LineRate:     10 * Gbps,
			LinkDelay:    500 * Nanosecond,
			Slot:         10 * Microsecond,
			ReconfigTime: Microsecond,
			Algorithm:    "islip",
			Timing:       DefaultHardware(),
			Pipelined:    true,
		},
		Traffic: TrafficConfig{
			Ports:    ports,
			LineRate: 10 * Gbps,
			Load:     0.3,
			Pattern:  Uniform{},
			Sizes:    Fixed{Size: 1500 * Byte},
			Seed:     21,
		},
		Duration: 200 * Microsecond,
	}
	m, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Injected == 0 || m.Delivered == 0 {
		t.Fatalf("256-port scenario moved no traffic: injected=%d delivered=%d",
			m.Injected, m.Delivered)
	}
	if m.Loop.Cycles == 0 {
		t.Fatal("scheduling loop never cycled")
	}
	if m.Loop.GrantedPairs == 0 {
		t.Fatal("no grants issued")
	}
	// Same scenario, two runs: determinism must survive the pooled
	// matrices and reused matching scratch.
	again, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if again.Delivered != m.Delivered || again.InjectedBits != m.InjectedBits {
		t.Fatalf("256-port run not reproducible: %d/%d vs %d/%d delivered/injectedBits",
			m.Delivered, m.InjectedBits, again.Delivered, again.InjectedBits)
	}
}
