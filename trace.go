package hybridsched

import (
	"fmt"
	"io"
	"os"

	"hybridsched/internal/trace"
)

// Workload traces: capture any generator's offered traffic once as a
// compact binary HSTR stream, then replay it bit-identically against
// every registered algorithm. Set Scenario.CaptureTo (or the CaptureTrace
// option) to record a run; set Scenario.Replay (WithWorkloadTrace /
// WithWorkloadRecords) to drive a run from a recording instead of a live
// generator.

// TraceRecord is one traced packet event: creation time, identity, ports,
// size and class — everything needed to re-inject the packet.
type TraceRecord = trace.Record

// Trace parse failures, re-exported so downstream code can distinguish
// them with errors.Is. Every specific error wraps ErrBadTrace.
var (
	// ErrBadTrace is the umbrella for any malformed trace.
	ErrBadTrace = trace.ErrBadTrace
	// ErrTraceBadMagic: the stream does not start with the HSTR magic.
	ErrTraceBadMagic = trace.ErrBadMagic
	// ErrTraceBadVersion: the header carries an unsupported version.
	ErrTraceBadVersion = trace.ErrBadVersion
	// ErrTraceTruncated: the stream ends mid-header, mid-record, or
	// before the record count the header declares.
	ErrTraceTruncated = trace.ErrTruncated
	// ErrTraceCountMismatch: data continues past the declared count.
	ErrTraceCountMismatch = trace.ErrCountMismatch
)

// ReadTrace parses a complete HSTR trace from r.
func ReadTrace(r io.Reader) ([]TraceRecord, error) { return trace.ReadAll(r) }

// ReadTraceFile parses the HSTR trace at path.
func ReadTraceFile(path string) ([]TraceRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := trace.ReadAll(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

// WriteTrace writes a complete HSTR trace (exact header count) to w.
func WriteTrace(w io.Writer, records []TraceRecord) error {
	return trace.WriteAll(w, records)
}

// WriteTraceFile writes a complete HSTR trace to path.
func WriteTraceFile(path string, records []TraceRecord) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteAll(f, records); err != nil {
		f.Close()
		return fmt.Errorf("%s: %w", path, err)
	}
	return f.Close()
}

// RecordFromPacket builds an offered-traffic record from a packet — the
// way hand-crafted workloads (Device/cluster drivers) enter the trace
// format.
func RecordFromPacket(p *Packet) TraceRecord { return trace.FromPacket(p) }
