module hybridsched

go 1.22
