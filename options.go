package hybridsched

import (
	"fmt"
	"io"
)

// Option mutates a Scenario under construction. Options that describe a
// shared dimension (WithPorts, WithLineRate, WithSeed) set both the fabric
// and the workload side, which is most of the duplication a literal
// Scenario carries.
type Option func(*Scenario)

// NewScenario assembles a scenario from options and validates it eagerly:
// run geometry, fabric configuration (including that the algorithm name is
// registered), and workload are all checked before anything runs. A
// scenario built here runs bit-for-bit identically to the equivalent
// Scenario literal.
func NewScenario(opts ...Option) (Scenario, error) {
	var sc Scenario
	for _, o := range opts {
		o(&sc)
	}
	if err := sc.Validate(); err != nil {
		return Scenario{}, err
	}
	return sc, nil
}

// WithPorts sets the switch and workload port count.
func WithPorts(n int) Option {
	return func(sc *Scenario) {
		sc.Fabric.Ports = n
		sc.Traffic.Ports = n
	}
}

// WithLineRate sets the per-port line rate for both the switch and the
// workload calibration.
func WithLineRate(r BitRate) Option {
	return func(sc *Scenario) {
		sc.Fabric.LineRate = r
		sc.Traffic.LineRate = r
	}
}

// WithSeed seeds both the scheduling algorithm and the workload.
func WithSeed(seed uint64) Option {
	return func(sc *Scenario) {
		sc.Fabric.Seed = seed
		sc.Traffic.Seed = seed
	}
}

// WithLinkDelay sets the one-way host<->switch propagation delay.
func WithLinkDelay(d Duration) Option {
	return func(sc *Scenario) { sc.Fabric.LinkDelay = d }
}

// WithSlot sets the scheduler's transmission window per configuration.
func WithSlot(d Duration) Option {
	return func(sc *Scenario) { sc.Fabric.Slot = d }
}

// WithReconfigTime sets the OCS reconfiguration dead-time.
func WithReconfigTime(d Duration) Option {
	return func(sc *Scenario) { sc.Fabric.ReconfigTime = d }
}

// WithAlgorithm names the matching algorithm (built-in or registered via
// RegisterAlgorithm).
func WithAlgorithm(name string) Option {
	return func(sc *Scenario) { sc.Fabric.Algorithm = name }
}

// WithTiming selects the scheduler timing model. Required.
func WithTiming(t TimingModel) Option {
	return func(sc *Scenario) { sc.Fabric.Timing = t }
}

// WithPipelined overlaps schedule computation with transmission.
func WithPipelined(on bool) Option {
	return func(sc *Scenario) { sc.Fabric.Pipelined = on }
}

// WithBuffer selects the Figure 1 buffering regime.
func WithBuffer(b BufferPlacement) Option {
	return func(sc *Scenario) { sc.Fabric.Buffer = b }
}

// WithVOQLimit bounds each switch VOQ (0 = unlimited).
func WithVOQLimit(s Size) Option {
	return func(sc *Scenario) { sc.Fabric.VOQLimit = s }
}

// WithHostQueueLimit bounds each per-destination host queue.
func WithHostQueueLimit(s Size) Option {
	return func(sc *Scenario) { sc.Fabric.HostQueueLimit = s }
}

// WithEPS enables the electrical packet switch at the given per-output
// drain rate (0 = the LineRate/10 default).
func WithEPS(rate BitRate) Option {
	return func(sc *Scenario) {
		sc.Fabric.EnableEPS = true
		sc.Fabric.EPSRate = rate
	}
}

// WithRules installs classification rules in the look-up table.
func WithRules(rules ...Rule) Option {
	return func(sc *Scenario) { sc.Fabric.Rules = rules }
}

// WithResidualTimeout shunts over-age OCS-eligible traffic to the EPS at
// grant time (0 = off).
func WithResidualTimeout(d Duration) Option {
	return func(sc *Scenario) { sc.Fabric.ResidualTimeout = d }
}

// WithEstimator supplies the demand estimator (nil = occupancy).
func WithEstimator(e Estimator) Option {
	return func(sc *Scenario) { sc.Fabric.Estimator = e }
}

// WithLoad sets the offered load per port as a fraction of line rate.
func WithLoad(f float64) Option {
	return func(sc *Scenario) { sc.Traffic.Load = f }
}

// WithPattern sets the destination pattern.
func WithPattern(p Pattern) Option {
	return func(sc *Scenario) { sc.Traffic.Pattern = p }
}

// WithSizes sets the packet-size distribution.
func WithSizes(s SizeDist) Option {
	return func(sc *Scenario) { sc.Traffic.Sizes = s }
}

// WithProcess selects the arrival process (Poisson or OnOff).
func WithProcess(p Process) Option {
	return func(sc *Scenario) { sc.Traffic.Process = p }
}

// WithBursts configures the ON/OFF process: the mean burst length in
// packets, and a Pareto shape (>1) for heavy-tailed bursts (0 =
// exponential).
func WithBursts(meanPkts, pareto float64) Option {
	return func(sc *Scenario) {
		sc.Traffic.BurstMeanPkts = meanPkts
		sc.Traffic.BurstPareto = pareto
	}
}

// WithFlowSizes sets the per-flow total-size distribution for the
// flow-level arrival mode (use with WithProcess(FlowArrivals) and one of
// the empirical distributions: WebSearch(), DataMining(), Hadoop(),
// CacheFollower(), or NewEmpirical).
func WithFlowSizes(s SizeDist) Option {
	return func(sc *Scenario) { sc.Traffic.FlowSizes = s }
}

// WithMTU sets the segment size flows are cut into in the flow-level
// arrival mode (0 = 1500 bytes).
func WithMTU(s Size) Option {
	return func(sc *Scenario) { sc.Traffic.MTU = s }
}

// WithWorkloadTrace replays the HSTR trace at path instead of running a
// live traffic generator: every record's packet is injected at its
// recorded time, so the same workload can be driven bit-identically
// against every registered algorithm. A load or parse failure surfaces
// from NewScenario (the file is read when the option is applied).
func WithWorkloadTrace(path string) Option {
	return func(sc *Scenario) {
		recs, err := ReadTraceFile(path)
		if err != nil {
			sc.traceErr = fmt.Errorf("workload trace: %w", err)
			return
		}
		sc.Replay = recs
	}
}

// WithWorkloadRecords replays already-parsed trace records instead of
// running a live traffic generator — the in-memory form of
// WithWorkloadTrace.
func WithWorkloadRecords(records []TraceRecord) Option {
	return func(sc *Scenario) { sc.Replay = records }
}

// CaptureTrace records this scenario's offered workload to w as a
// complete HSTR trace, written when the run succeeds. Capture is
// read-only — metrics are bit-identical with or without it — and the
// captured trace replayed via WithWorkloadTrace reproduces the run
// exactly.
func CaptureTrace(w io.Writer) Option {
	return func(sc *Scenario) { sc.CaptureTo = w }
}

// WithLatencySensitiveFrac marks this fraction of flows latency-sensitive.
func WithLatencySensitiveFrac(f float64) Option {
	return func(sc *Scenario) { sc.Traffic.LatencySensitiveFrac = f }
}

// WithDuration sets how long traffic is offered.
func WithDuration(d Duration) Option {
	return func(sc *Scenario) { sc.Duration = d }
}

// WithDrain sets the drain fraction (0 = DefaultDrain).
func WithDrain(f float64) Option {
	return func(sc *Scenario) { sc.Drain = f }
}

// WithObserver streams one Sample per interval of simulated time to fn
// during the run.
func WithObserver(every Duration, fn Observer) Option {
	return func(sc *Scenario) {
		sc.SampleEvery = every
		sc.Observer = fn
	}
}

// WithFabric replaces the whole fabric configuration — the escape hatch
// for dimensions without a dedicated option.
func WithFabric(fc FabricConfig) Option {
	return func(sc *Scenario) { sc.Fabric = fc }
}

// WithTraffic replaces the whole workload configuration.
func WithTraffic(tc TrafficConfig) Option {
	return func(sc *Scenario) { sc.Traffic = tc }
}
