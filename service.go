package hybridsched

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"hybridsched/internal/serve"
	"hybridsched/internal/traffic"
	"hybridsched/internal/units"
)

// The online scheduling service: the paper's estimate -> match -> schedule
// loop as a long-lived process instead of a finite simulation. A Service
// ingests streaming demand (Offer / OfferRecords, or a live flow-level
// workload via ServiceConfig.Workload), computes one matching per epoch
// with any registered algorithm, and streams the resulting frames to
// subscribers over bounded channels. One Service can carry many
// independent fabric shards; epochs fan out over the deterministic worker
// pool. cmd/hybridschedd serves this API over JSON lines on a listener.

// Serve-layer types, re-exported so downstream code never imports
// internal packages.
type (
	// ServiceFrame is one epoch's scheduling decision for one shard.
	ServiceFrame = serve.Frame
	// ServiceStats is a point-in-time summary of one shard's activity.
	ServiceStats = serve.Stats
	// ServiceSubscription is a bounded frame stream from one shard.
	ServiceSubscription = serve.Subscription
	// FrameDropPolicy says what a full subscription buffer does with a
	// new frame.
	FrameDropPolicy = serve.DropPolicy
)

// Drop policies for slow subscribers.
const (
	// DropOldestFrame evicts the oldest buffered frame — subscribers
	// converge to the freshest schedule. The default.
	DropOldestFrame = serve.DropOldest
	// DropNewestFrame discards the incoming frame — subscribers see a
	// contiguous prefix, then gaps.
	DropNewestFrame = serve.DropNewest
)

// ErrServiceClosed is returned by operations on a closed Service.
var ErrServiceClosed = serve.ErrClosed

// DefaultServiceSlotBits is the demand served per matched pair per epoch
// when ServiceConfig.SlotBits is zero: one 1500-byte frame.
const DefaultServiceSlotBits = Size(serve.DefaultSlotBits)

// ServiceConfig configures an online scheduling service.
type ServiceConfig struct {
	// Ports is the per-shard fabric port count.
	Ports int
	// Algorithm names the matching algorithm (built-in or registered via
	// RegisterAlgorithm).
	Algorithm string
	// Seed seeds randomized algorithms and workload sources; shards
	// derive decorrelated sub-seeds from it.
	Seed uint64
	// SlotBits is the demand served per matched (input, output) pair per
	// epoch — the transmission window times the circuit rate. Zero
	// selects DefaultServiceSlotBits.
	SlotBits Size
	// Shards is the number of independent fabric shards behind this
	// service (zero = 1). Each shard is a complete scheduler with its
	// own demand matrix, algorithm instance and subscribers.
	Shards int
	// Workers sizes the worker pool epoch steps fan out over
	// (zero = GOMAXPROCS).
	Workers int
	// Workload, when non-nil, drives every shard from a live traffic
	// generator: each epoch consumes EpochSpan of simulated arrivals —
	// the flow-level processes (FlowArrivals + WebSearch() etc.) are the
	// intended load sources. Each shard draws an independent,
	// reproducible stream. Ports and Seed are filled from the service
	// configuration when left zero; LineRate (and the rest of the
	// workload shape) must be set here.
	Workload *TrafficConfig
	// EpochSpan is the simulated time one epoch consumes from Workload.
	// Required when Workload is set.
	EpochSpan Duration
	// Metrics, when non-nil, is the registry the service's instruments
	// register in: per-shard epoch-latency histograms, throughput
	// counters, backlog gauges and drop counts, all labeled by shard.
	// Recording is allocation-free, so instrumentation does not perturb
	// the epoch hot path. Nil disables instrumentation.
	Metrics *MetricsRegistry
}

// Service is a running online scheduling service. Create with NewService
// (or RestoreService), feed and advance it, then Close. All methods are
// safe for concurrent use.
type Service struct {
	cfg ServiceConfig
	sh  *serve.Sharded
}

// NewService validates cfg and assembles the service. The service starts
// idle: drive epochs explicitly with Step (deterministic) or start the
// wall-clock loop with Run.
func NewService(cfg ServiceConfig) (*Service, error) {
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("hybridsched: Shards must be non-negative")
	}
	if cfg.SlotBits < 0 {
		return nil, fmt.Errorf("hybridsched: SlotBits must be non-negative")
	}
	var newSource serve.SourceFactory
	if cfg.Workload != nil {
		if cfg.EpochSpan <= 0 {
			return nil, fmt.Errorf("hybridsched: EpochSpan must be positive when Workload is set")
		}
		tc := *cfg.Workload
		if tc.Ports == 0 {
			tc.Ports = cfg.Ports
		}
		if tc.Seed == 0 {
			tc.Seed = cfg.Seed
		}
		if err := effectiveWorkload(tc).Validate(); err != nil {
			return nil, fmt.Errorf("hybridsched: %w", err)
		}
		span := cfg.EpochSpan
		newSource = func(shard int, seed uint64) (serve.Source, error) {
			sc := tc
			sc.Seed = seed
			return serve.NewWorkloadSource(effectiveWorkload(sc), span)
		}
	}
	sh, err := serve.NewSharded(cfg.Shards, cfg.Workers, serve.Config{
		Ports:     cfg.Ports,
		Algorithm: cfg.Algorithm,
		Seed:      cfg.Seed,
		SlotBits:  int64(cfg.SlotBits),
		Metrics:   cfg.Metrics,
	}, newSource)
	if err != nil {
		return nil, fmt.Errorf("hybridsched: %w", err)
	}
	return &Service{cfg: cfg, sh: sh}, nil
}

// effectiveWorkload pins the endless-stream default: a service workload
// with no Until runs forever.
func effectiveWorkload(tc traffic.Config) traffic.Config {
	if tc.Until == 0 {
		tc.Until = units.MaxTime
	}
	return tc
}

// RestoreService builds a service from cfg and loads the checkpoint at r
// (written by Snapshot): pending demand and epoch counters come back
// exactly; algorithms restart from their initial state. The snapshot's
// shard count must match cfg.
func RestoreService(cfg ServiceConfig, r io.Reader) (*Service, error) {
	s, err := NewService(cfg)
	if err != nil {
		return nil, err
	}
	if err := s.sh.Restore(r); err != nil {
		s.Close()
		return nil, fmt.Errorf("hybridsched: %w", err)
	}
	return s, nil
}

// Shards returns the shard count.
func (s *Service) Shards() int { return s.sh.Shards() }

// Offer adds bits of pending demand from src to dst on shard 0 — the
// single-switch streaming ingest path.
func (s *Service) Offer(src, dst int, bits Size) error {
	return s.sh.Offer(0, src, dst, int64(bits))
}

// OfferShard adds demand to one shard of a multi-instance service.
func (s *Service) OfferShard(shard, src, dst int, bits Size) error {
	return s.sh.Offer(shard, src, dst, int64(bits))
}

// OfferRecords ingests a batch of HSTR trace records as demand on shard 0
// — the bridge from captured workloads (ReadTraceFile) to the live
// service. Record times are ignored; sizes accumulate as offered bits.
func (s *Service) OfferRecords(recs []TraceRecord) error {
	return s.sh.Shard(0).OfferRecords(recs)
}

// Step runs one epoch on every shard (fanned out over the worker pool)
// and returns the frames in shard order — identical at any worker count.
// The frames are owned by the caller: their matchings are cloned inside
// each shard's epoch, so no later epoch can rewrite them.
func (s *Service) Step() ([]ServiceFrame, error) {
	return s.sh.Step()
}

// Run steps every shard once per interval tick of wall-clock time until
// ctx is canceled or the service is closed. It returns ctx.Err() on
// cancellation and nil when stopped by Close (which it notices
// immediately, not at the next tick).
func (s *Service) Run(ctx context.Context, interval time.Duration) error {
	if interval <= 0 {
		return fmt.Errorf("hybridsched: Run interval must be positive, have %v", interval)
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-s.sh.Done():
			return nil
		case <-tick.C:
			if _, err := s.Step(); err != nil {
				if errors.Is(err, ErrServiceClosed) {
					return nil
				}
				return err
			}
		}
	}
}

// Subscribe opens a bounded frame stream from one shard. The service
// never blocks on a slow subscriber: when the buffer is full the policy
// decides which frame drops, and Subscription.Dropped counts them. Close
// the subscription (or the service) to release it.
func (s *Service) Subscribe(shard, buffer int, policy FrameDropPolicy) (*ServiceSubscription, error) {
	if shard < 0 || shard >= s.sh.Shards() {
		return nil, fmt.Errorf("hybridsched: shard %d outside [0,%d)", shard, s.sh.Shards())
	}
	return s.sh.Shard(shard).Subscribe(buffer, policy)
}

// Epoch returns shard 0's completed epoch count.
func (s *Service) Epoch() uint64 { return s.sh.Shard(0).Epoch() }

// Stats returns per-shard activity summaries in shard order.
func (s *Service) Stats() []ServiceStats { return s.sh.Stats() }

// Snapshot checkpoints the whole service (every shard's pending demand
// and epoch counter) to w as a single HSTR trace — the same format, and
// therefore the same tooling, as captured workloads. The cut is
// consistent per shard and canonical: restoring and re-snapshotting
// reproduces the bytes exactly.
func (s *Service) Snapshot(w io.Writer) error { return s.sh.Snapshot(w) }

// Close stops every shard, closes all subscriptions and releases pooled
// state. Idempotent.
func (s *Service) Close() error { return s.sh.Close() }
