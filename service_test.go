package hybridsched

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"
)

func newTestService(t *testing.T, cfg ServiceConfig) *Service {
	t.Helper()
	s, err := NewService(cfg)
	if err != nil {
		t.Fatalf("NewService(%+v): %v", cfg, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestServiceValidation(t *testing.T) {
	bad := []ServiceConfig{
		{Ports: 1, Algorithm: "islip"},
		{Ports: 8, Algorithm: "no-such-alg"},
		{Ports: 8, Algorithm: "islip", Shards: -1},
		{Ports: 8, Algorithm: "islip", SlotBits: -1},
		{Ports: 8, Algorithm: "islip",
			Workload: &TrafficConfig{LineRate: 10 * Gbps, Load: 0.5, Pattern: Uniform{}, Sizes: Fixed{Size: 1500 * Byte}}},
		{Ports: 8, Algorithm: "islip", EpochSpan: Microsecond,
			Workload: &TrafficConfig{Load: 9, Pattern: Uniform{}}},
	}
	for i, cfg := range bad {
		if _, err := NewService(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestServiceOfferStepSubscribe(t *testing.T) {
	s := newTestService(t, ServiceConfig{Ports: 8, Algorithm: "islip", SlotBits: 1000})
	sub, err := s.Subscribe(0, 8, DropOldestFrame)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Offer(2, 5, 1500); err != nil {
		t.Fatal(err)
	}
	frames, err := s.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 1 || frames[0].Epoch != 1 || frames[0].ServedBits != 1000 {
		t.Fatalf("frames = %+v", frames)
	}
	f := <-sub.Frames()
	if f.Match[2] != 5 || f.BacklogBits != 500 {
		t.Fatalf("subscribed frame = %+v", f)
	}
	if _, err := s.Subscribe(1, 1, DropOldestFrame); err == nil {
		t.Fatal("subscribe to nonexistent shard accepted")
	}
	if s.Epoch() != 1 {
		t.Fatalf("epoch = %d", s.Epoch())
	}
}

func TestServiceOfferRecordsFromCapturedTrace(t *testing.T) {
	// Capture a real scenario's workload, then feed the trace to a live
	// service — the batch-to-online bridge.
	var tape bytes.Buffer
	sc, err := NewScenario(append(baseOptions(), CaptureTrace(&tape))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Run(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadTrace(bytes.NewReader(tape.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	s := newTestService(t, ServiceConfig{Ports: 8, Algorithm: "greedy"})
	if err := s.OfferRecords(recs); err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, r := range recs {
		if r.Src != r.Dst {
			want += int64(r.Size)
		}
	}
	if got := s.Stats()[0].OfferedBits; got != want {
		t.Fatalf("offered = %d, want %d", got, want)
	}
	// Drain it all.
	for s.Stats()[0].BacklogBits > 0 {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats()[0]; st.ServedBits != want {
		t.Fatalf("served = %d, want %d", st.ServedBits, want)
	}
}

func TestServiceShardedWorkloadStep(t *testing.T) {
	s := newTestService(t, ServiceConfig{
		Ports:     16,
		Algorithm: "islip",
		Seed:      3,
		Shards:    4,
		Workers:   2,
		SlotBits:  4000 * 8,
		Workload: &TrafficConfig{
			LineRate:  10 * Gbps,
			Load:      0.5,
			Pattern:   Uniform{},
			Process:   FlowArrivals,
			FlowSizes: CacheFollower(),
		},
		EpochSpan: Microsecond,
	})
	for e := 0; e < 300; e++ {
		frames, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if len(frames) != 4 {
			t.Fatalf("got %d frames", len(frames))
		}
		for i, f := range frames {
			if f.Shard != i || f.Epoch != uint64(e+1) {
				t.Fatalf("frame %d = %+v", i, f)
			}
		}
	}
	stats := s.Stats()
	var offered int64
	for _, st := range stats {
		offered += st.OfferedBits
	}
	if offered == 0 {
		t.Fatal("workload produced no demand")
	}
	// Shards are decorrelated: not all identical.
	allSame := true
	for _, st := range stats[1:] {
		if st.OfferedBits != stats[0].OfferedBits {
			allSame = false
		}
	}
	if allSame {
		t.Error("shard workloads identical; seeds not derived")
	}
}

func TestServiceSnapshotRestore(t *testing.T) {
	mk := func() ServiceConfig {
		return ServiceConfig{Ports: 8, Algorithm: "islip", Seed: 11, Shards: 2, SlotBits: 500}
	}
	a := newTestService(t, mk())
	a.OfferShard(0, 1, 2, 3000)
	a.OfferShard(1, 4, 5, 7000)
	for e := 0; e < 3; e++ {
		if _, err := a.Step(); err != nil {
			t.Fatal(err)
		}
	}
	var snap bytes.Buffer
	if err := a.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	b, err := RestoreService(mk(), bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Epoch() != 3 {
		t.Fatalf("restored epoch = %d, want 3", b.Epoch())
	}
	var snap2 bytes.Buffer
	if err := b.Snapshot(&snap2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap.Bytes(), snap2.Bytes()) {
		t.Fatal("snapshot -> restore -> snapshot not byte-identical")
	}
	// Garbage checkpoint fails cleanly with the trace error taxonomy.
	if _, err := RestoreService(mk(), bytes.NewReader([]byte("junk"))); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("garbage restore = %v, want ErrBadTrace", err)
	}
}

func TestServiceRunAndClose(t *testing.T) {
	s := newTestService(t, ServiceConfig{Ports: 8, Algorithm: "islip"})
	s.Offer(0, 1, 1e6)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx, 100*time.Microsecond) }()
	deadline := time.After(5 * time.Second)
	for s.Epoch() < 2 {
		select {
		case <-deadline:
			t.Fatal("no epochs after 5s")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want Canceled", err)
	}
	go func() { done <- s.Run(context.Background(), 100*time.Microsecond) }()
	time.Sleep(2 * time.Millisecond)
	s.Close()
	if err := <-done; err != nil {
		t.Fatalf("Run stopped by Close = %v, want nil", err)
	}
	if err := s.Offer(0, 1, 1); !errors.Is(err, ErrServiceClosed) {
		t.Fatalf("Offer after Close = %v, want ErrServiceClosed", err)
	}
	if err := s.Run(context.Background(), 0); err == nil {
		t.Fatal("non-positive interval accepted")
	}
}
