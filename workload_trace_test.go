package hybridsched

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// testFlowSizes is a small empirical distribution (mean ~14 KB) so short
// simulations still carry thousands of flows.
func testFlowSizes() *Empirical {
	return NewEmpirical("test-small", []CDFPoint{
		{Value: 200, Cum: 0},
		{Value: 1e3, Cum: 0.4},
		{Value: 1e4, Cum: 0.8},
		{Value: 1e5, Cum: 1.0},
	})
}

// flowScenario is demoScenario on the flow-level empirical workload.
func flowScenario() Scenario {
	sc := demoScenario()
	sc.Traffic.Process = FlowArrivals
	sc.Traffic.Sizes = nil
	sc.Traffic.FlowSizes = testFlowSizes()
	return sc
}

// TestCaptureReplayReproducesRun is the acceptance contract: capture a
// run's offered workload, replay it through the same fabric, and the
// report is byte-identical — at any worker count — for every arrival
// process, including the new flow-level mode.
func TestCaptureReplayReproducesRun(t *testing.T) {
	cases := []struct {
		name string
		sc   Scenario
	}{
		{"poisson-fixed", demoScenario()},
		{"flows-empirical", flowScenario()},
		{"onoff", func() Scenario {
			sc := demoScenario()
			sc.Traffic.Process = OnOff
			sc.Traffic.BurstMeanPkts = 16
			return sc
		}()},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			var buf bytes.Buffer
			captured := c.sc
			captured.CaptureTo = &buf
			orig, err := captured.Run()
			if err != nil {
				t.Fatal(err)
			}
			recs, err := ReadTrace(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) == 0 {
				t.Fatal("capture produced no records")
			}

			replay := c.sc
			replay.Traffic = TrafficConfig{} // replay needs no generator config
			replay.Replay = recs
			for _, workers := range []int{1, 4} {
				scs := []Scenario{replay, replay, replay}
				ms, err := RunScenarios(scs, workers)
				if err != nil {
					t.Fatal(err)
				}
				for i, m := range ms {
					if !reflect.DeepEqual(m, orig) {
						t.Fatalf("workers=%d replay %d diverged from original run:\n%+v\nvs\n%+v",
							workers, i, m, orig)
					}
				}
			}
		})
	}
}

// TestCaptureIsReadOnly: attaching a capture writer does not perturb the
// run.
func TestCaptureIsReadOnly(t *testing.T) {
	plain, err := flowScenario().Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sc := flowScenario()
	sc.CaptureTo = &buf
	taped, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, taped) {
		t.Fatal("capture perturbed the run")
	}
}

// TestWithWorkloadTraceOption drives the file-based path end to end: a
// captured trace on disk, loaded through the options builder, replayed
// against a different algorithm than it was captured under.
func TestWithWorkloadTraceOption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "workload.hstr")

	var buf bytes.Buffer
	sc := flowScenario()
	sc.CaptureTo = &buf
	if _, err := sc.Run(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, alg := range []string{"islip", "greedy"} {
		built, err := NewScenario(
			WithPorts(8),
			WithLineRate(10*Gbps),
			WithLinkDelay(500*Nanosecond),
			WithSlot(10*Microsecond),
			WithReconfigTime(Microsecond),
			WithAlgorithm(alg),
			WithTiming(DefaultHardware()),
			WithPipelined(true),
			WithSeed(1),
			WithDuration(2*Millisecond),
			WithWorkloadTrace(path),
		)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		m, err := built.Run()
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if m.Injected == 0 || m.Delivered == 0 {
			t.Fatalf("%s: replay injected %d delivered %d", alg, m.Injected, m.Delivered)
		}
	}

	// Loading a missing or corrupt trace fails at NewScenario, not at Run.
	if _, err := NewScenario(append(baseOptions(), WithWorkloadTrace(filepath.Join(dir, "absent.hstr")))...); err == nil {
		t.Fatal("expected error for missing trace file")
	}
	bad := filepath.Join(dir, "bad.hstr")
	if err := os.WriteFile(bad, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := NewScenario(append(baseOptions(), WithWorkloadTrace(bad))...)
	if err == nil {
		t.Fatal("expected error for corrupt trace file")
	}
	if !errors.Is(err, ErrBadTrace) {
		t.Fatalf("corrupt-trace error %v does not wrap ErrBadTrace", err)
	}
}

// TestReplayValidateRejectsUnsorted: eager validation catches
// out-of-order records before anything runs.
func TestReplayValidateRejectsUnsorted(t *testing.T) {
	sc := demoScenario()
	sc.Replay = []TraceRecord{
		{Time: Time(Millisecond), ID: 1, Src: 0, Dst: 1, Size: 12000},
		{Time: 0, ID: 2, Src: 1, Dst: 2, Size: 12000},
	}
	if err := sc.Validate(); err == nil {
		t.Fatal("expected out-of-order Replay to fail validation")
	}
}

// TestReplayRejectsOutOfRangePorts: a record whose ports exceed the
// target fabric (a trace captured on a larger switch, or a corrupt file)
// must fail validation and the run itself — never panic mid-simulation.
func TestReplayRejectsOutOfRangePorts(t *testing.T) {
	sc := demoScenario() // 8 ports
	sc.Traffic = TrafficConfig{}
	sc.Replay = []TraceRecord{
		{Time: 0, ID: 1, Src: 0, Dst: 1, Size: 12000},
		{Time: Time(Microsecond), ID: 2, Src: 200, Dst: 1, Size: 12000},
	}
	if err := sc.Validate(); err == nil {
		t.Fatal("expected out-of-range Src to fail validation")
	}
	if _, err := sc.Run(); err == nil {
		t.Fatal("expected out-of-range Src to fail at run time")
	}
	sc.Replay[1] = TraceRecord{Time: Time(Microsecond), ID: 2, Src: 1, Dst: 8, Size: 12000}
	if err := sc.Validate(); err == nil {
		t.Fatal("expected out-of-range Dst to fail validation")
	}
	if _, err := sc.Run(); err == nil {
		t.Fatal("expected out-of-range Dst to fail at run time")
	}
}

// TestReplayRejectsRecordsBeyondDuration: replaying a trace into a run
// shorter than the trace must fail loudly — silent truncation would
// break the bit-identical-replay contract.
func TestReplayRejectsRecordsBeyondDuration(t *testing.T) {
	var buf bytes.Buffer
	capture := demoScenario() // 2 ms offered
	capture.CaptureTo = &buf
	if _, err := capture.Run(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replay := demoScenario()
	replay.Traffic = TrafficConfig{}
	replay.Replay = recs
	replay.Duration = 500 * Microsecond
	if err := replay.Validate(); err == nil {
		t.Fatal("expected too-short Duration to fail validation")
	}
	if _, err := replay.Run(); err == nil {
		t.Fatal("expected too-short Duration to fail at run time")
	}
	// An explicitly sliced prefix replays fine.
	cut := 0
	for cut < len(recs) && recs[cut].Time <= Time(500*Microsecond) {
		cut++
	}
	replay.Replay = recs[:cut]
	if _, err := replay.Run(); err != nil {
		t.Fatalf("sliced prefix should replay: %v", err)
	}
}

// TestFlowWorkloadParallelDeterminism fans flow-level scenarios over the
// execution engine: metrics are identical at any worker count. It is also
// the race-smoke coverage for the flow-level generator.
func TestFlowWorkloadParallelDeterminism(t *testing.T) {
	build := func() []Scenario {
		scs := make([]Scenario, 4)
		for i := range scs {
			scs[i] = flowScenario()
			scs[i].Traffic.Seed = DeriveSeed(11, i)
		}
		return scs
	}
	serial, err := RunScenarios(build(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		got, err := RunScenarios(build(), workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, serial) {
			t.Fatalf("flow-level metrics differ between 1 and %d workers", workers)
		}
	}
}
