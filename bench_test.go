// Benchmarks regenerating every figure, table and in-text claim of the
// paper (F1, T1, F2) and the framework experiments (E1-E9), plus
// microbenchmarks of the performance-critical substrates. README.md
// maps each benchmark to the paper artifact it reproduces.
//
// The experiment benchmarks run at Quick scale so `go test -bench=.`
// terminates in minutes; run `go run ./cmd/figures -scale full` for
// paper-scale output.
package hybridsched

import (
	"bytes"
	"testing"

	"hybridsched/experiments"
	"hybridsched/internal/demand"
	"hybridsched/internal/match"
	"hybridsched/internal/rng"
	"hybridsched/internal/runner"
	"hybridsched/internal/sched"
	"hybridsched/internal/sim"
	"hybridsched/internal/stats"
	"hybridsched/internal/traffic"
	"hybridsched/internal/units"
	"hybridsched/internal/voq"

	pkt "hybridsched/internal/packet"
)

// benchExperiment runs a registered experiment b.N times and reports one
// derived headline metric when available.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Tables) == 0 {
			b.Fatalf("%s produced no tables", id)
		}
	}
}

// Figure 1: buffering requirement vs switching time (analytic curve +
// simulated cross-check in both buffering regimes).
func BenchmarkFigure1_BufferVsSwitchingTime(b *testing.B) { benchExperiment(b, "F1") }

// In-text claim: 64x64 @ 10 Gbps needs ~GB at 1 ms switching, ~KB at 1 ns.
func BenchmarkTable1_BufferEndpoints(b *testing.B) { benchExperiment(b, "T1") }

// Figure 2: request->schedule->configure->grant pipeline breakdown.
func BenchmarkFigure2_PipelineBreakdown(b *testing.B) { benchExperiment(b, "F2") }

// E1: scheduler latency, hardware vs software, per algorithm and size.
func BenchmarkE1_SchedulerLatency(b *testing.B) { benchExperiment(b, "E1") }

// E2: latency/jitter of small flows under fast vs slow scheduling.
func BenchmarkE2_MiceLatencyJitter(b *testing.B) { benchExperiment(b, "E2") }

// E3: hybrid throughput vs traffic skew (EPS-only / TDMA / greedy).
func BenchmarkE3_HybridThroughputVsSkew(b *testing.B) { benchExperiment(b, "E3") }

// E4: matching algorithm cost scaling with port count.
func BenchmarkE4_AlgorithmScaling(b *testing.B) { benchExperiment(b, "E4") }

// E5: OCS duty cycle and goodput vs reconfiguration/slot ratio.
func BenchmarkE5_DutyCycle(b *testing.B) { benchExperiment(b, "E5") }

// E6: host-switch synchronization distance vs goodput (host-buffered).
func BenchmarkE6_SyncSlack(b *testing.B) { benchExperiment(b, "E6") }

// E7: crossbar arbiter throughput vs offered load.
func BenchmarkE7_CrossbarSchedulers(b *testing.B) { benchExperiment(b, "E7") }

// E8: demand estimation accuracy vs estimator and window.
func BenchmarkE8_DemandEstimation(b *testing.B) { benchExperiment(b, "E8") }

// E9: cluster-scale centralized vs distributed core scheduling.
func BenchmarkE9_ClusterScheduling(b *testing.B) { benchExperiment(b, "E9") }

// A1: grant-ordering ablation (configure-then-grant vs grant-at-start).
func BenchmarkA1_GrantOrdering(b *testing.B) { benchExperiment(b, "A1") }

// A2: iSLIP iteration-count ablation.
func BenchmarkA2_ISLIPIterations(b *testing.B) { benchExperiment(b, "A2") }

// ---------------------------------------------------------------------------
// Microbenchmarks: the hot paths whose cost bounds simulation scale.

// saturatedDemand builds an all-pairs random demand matrix.
func saturatedDemand(n int, seed uint64) *demand.Matrix {
	r := rng.New(seed)
	d := demand.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				d.Set(i, j, int64(1+r.Intn(100_000)))
			}
		}
	}
	return d
}

// BenchmarkMatching measures one Schedule() call per algorithm at 16 and
// 64 ports — the per-slot cost a hardware scheduler must beat in silicon
// and a software scheduler pays on the CPU (E4's raw data).
func BenchmarkMatching(b *testing.B) {
	for _, n := range []int{16, 64} {
		for _, name := range []string{"tdma", "islip1", "islip", "pim", "wavefront", "greedy", "hungarian"} {
			alg, err := match.New(name, n, 1)
			if err != nil {
				b.Fatal(err)
			}
			d := saturatedDemand(n, 42)
			b.Run(benchName(name, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					alg.Schedule(d)
				}
			})
		}
	}
}

func benchName(alg string, n int) string {
	return alg + "/" + itoa(n)
}

// sparseDemand builds a matrix where each input talks to about k distinct
// outputs — the demand shape a large fabric actually presents to its
// scheduler (each rack converses with a few peers, not all n).
func sparseDemand(n, k int, seed uint64) *demand.Matrix {
	r := rng.New(seed)
	d := demand.NewMatrix(n)
	for i := 0; i < n; i++ {
		for c := 0; c < k; c++ {
			j := r.Intn(n)
			if j == i {
				continue
			}
			d.Set(i, j, int64(1+r.Intn(100_000)))
		}
	}
	return d
}

// BenchmarkMatch measures one Schedule call per algorithm at rack (16),
// pod (128), fabric (512) and warehouse (2048, 4096) port counts over
// sparse demand (~8 peers per port). This is the scaling trajectory the
// word-parallel bitset kernels are judged against; run with -benchmem
// and compare allocs/op. Hungarian is measured only through 512 ports —
// its cubic assignment solve is the deliberate optimum reference, not a
// per-slot arbiter, and one op at 4096 ports would dominate the whole
// suite.
func BenchmarkMatch(b *testing.B) {
	for _, n := range []int{16, 128, 512, 2048, 4096} {
		d := sparseDemand(n, 8, 42)
		algs := []string{"tdma", "islip", "pim", "wavefront", "greedy", "ilqf", "hungarian"}
		if n > 512 {
			algs = algs[:len(algs)-1]
		}
		for _, name := range algs {
			alg, err := match.New(name, n, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(name+"/n="+itoa(n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					alg.Schedule(d)
				}
			})
		}
	}
}

// BenchmarkFrameDecompose measures a whole-frame circuit decomposition
// (BvN and the Solstice-style max-min) over sparse demand at rack, pod
// and fabric scale — the per-frame cost a slow-switching OCS scheduler
// amortizes.
func BenchmarkFrameDecompose(b *testing.B) {
	for _, n := range []int{16, 128, 512} {
		d := sparseDemand(n, 8, 7)
		b.Run("n="+itoa(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				match.DecomposeBvN(d)
			}
		})
		b.Run("maxmin/n="+itoa(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				match.DecomposeMaxMin(d, d.MaxLineSum()/16)
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkBvNDecomposition measures the full-frame decomposition cost for
// circuit schedules.
func BenchmarkBvNDecomposition(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		d := saturatedDemand(n, 7)
		b.Run(itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				match.DecomposeBvN(d)
			}
		})
	}
}

// BenchmarkMaxMinDecomposition measures the Solstice-style
// reconfiguration-aware decomposition.
func BenchmarkMaxMinDecomposition(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		d := saturatedDemand(n, 7)
		b.Run(itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				match.DecomposeMaxMin(d, 100)
			}
		})
	}
}

// BenchmarkEventQueue measures the simulation kernel's schedule+dispatch
// cost, which bounds every packet event.
func BenchmarkEventQueue(b *testing.B) {
	s := sim.New()
	r := rng.New(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Schedule(units.Duration(r.Intn(1000))*units.Nanosecond, func() {})
		if s.Pending() > 1024 {
			for s.Step() {
			}
		}
	}
	for s.Step() {
	}
}

// BenchmarkVOQ measures enqueue+dequeue through the bank.
func BenchmarkVOQ(b *testing.B) {
	bank := voq.NewBank(64, 0, nil)
	p := &pkt.Packet{Src: 3, Dst: 9, Size: 1500 * units.Byte}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bank.Enqueue(units.Time(i), p)
		bank.Dequeue(units.Time(i), 3, 9)
	}
}

// BenchmarkHistogram measures the latency-recording hot path.
func BenchmarkHistogram(b *testing.B) {
	var h stats.Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i) * 1313 % 1_000_000)
	}
}

// BenchmarkSketchObserve measures the count-min estimator's per-arrival
// cost — the hardware-friendly alternative to n^2 exact counters.
func BenchmarkSketchObserve(b *testing.B) {
	s := demand.NewSketch(64, 4, 256, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Observe(0, i&63, (i>>6)&63, 12000)
	}
}

// BenchmarkSketchSnapshot measures the full-matrix readout.
func BenchmarkSketchSnapshot(b *testing.B) {
	s := demand.NewSketch(64, 4, 256, 0)
	r := rng.New(1)
	for k := 0; k < 10_000; k++ {
		s.Observe(0, r.Intn(64), r.Intn(64), 12000)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Snapshot(0)
	}
}

// fanoutJobs builds one bundle of independent scenario runs: the same
// 8-port hybrid switch under eight loads with derived seeds — the shape of
// work cmd/sweep and cmd/figures fan out across cores.
func fanoutJobs() []runner.Job {
	jobs := make([]runner.Job, 8)
	for i := range jobs {
		jobs[i] = runner.Job{
			Fabric: FabricConfig{
				Ports:        8,
				LineRate:     10 * units.Gbps,
				LinkDelay:    500 * units.Nanosecond,
				Slot:         10 * units.Microsecond,
				ReconfigTime: units.Microsecond,
				Algorithm:    "islip",
				Timing:       sched.DefaultHardware(),
				Pipelined:    true,
			},
			Traffic: TrafficConfig{
				Ports:    8,
				LineRate: 10 * units.Gbps,
				Load:     0.2 + 0.08*float64(i),
				Pattern:  traffic.Uniform{},
				Sizes:    traffic.Fixed{Size: 1500 * units.Byte},
				Seed:     runner.DeriveSeed(1, i),
			},
			Duration: units.Millisecond,
		}
	}
	return jobs
}

func benchScenarioFanout(b *testing.B, workers int) {
	b.Helper()
	jobs := fanoutJobs()
	pool := runner.New(workers)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pool.RunScenarios(jobs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenarioFanoutSerial and BenchmarkScenarioFanoutParallel run
// the identical bundle of independent simulations on one worker and on
// GOMAXPROCS workers; the ns/op ratio is the speedup the parallel
// scenario-execution engine buys on this host.
func BenchmarkScenarioFanoutSerial(b *testing.B)   { benchScenarioFanout(b, 1) }
func BenchmarkScenarioFanoutParallel(b *testing.B) { benchScenarioFanout(b, 0) }

// BenchmarkObserverStream measures the streaming-observation path: a
// fixed 1 ms end-to-end run per op with a 10 us sampling ticker attached
// (150 samples/op, histogram summarization included). It prices a whole
// observed run — including per-op simulator/fabric construction — so
// compare runs of this benchmark against each other, not ns/op against
// BenchmarkFabricEndToEnd, which amortizes construction over one long
// simulation.
func BenchmarkObserverStream(b *testing.B) {
	sc := Scenario{
		Fabric: FabricConfig{
			Ports:        8,
			LineRate:     10 * units.Gbps,
			LinkDelay:    500 * units.Nanosecond,
			Slot:         10 * units.Microsecond,
			ReconfigTime: units.Microsecond,
			Algorithm:    "islip",
			Timing:       sched.DefaultHardware(),
			Pipelined:    true,
		},
		Traffic: TrafficConfig{
			Ports:    8,
			LineRate: 10 * units.Gbps,
			Load:     0.6,
			Pattern:  traffic.Uniform{},
			Sizes:    traffic.Fixed{Size: 1500 * units.Byte},
			Seed:     1,
		},
		Duration:    units.Millisecond,
		SampleEvery: 10 * units.Microsecond,
	}
	var samples int64
	sc.Observer = func(Sample) { samples++ }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sc.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(samples)/float64(b.N), "samples/op")
}

// BenchmarkEmpiricalSampler measures the empirical flow-size hot path:
// one inverse-transform draw from the web-search CDF per op. It is the
// per-flow cost the flow-level generator adds over Fixed sizes.
func BenchmarkEmpiricalSampler(b *testing.B) {
	dist := traffic.WebSearch()
	r := rng.New(1)
	b.ReportAllocs()
	var sink units.Size
	for i := 0; i < b.N; i++ {
		sink += dist.Sample(r)
	}
	if sink == 0 {
		b.Fatal("sampler returned only zeros")
	}
}

// BenchmarkTraceReplay prices the trace-replay hot path: a full 1 ms
// captured flow-level workload re-injected through the fabric per op
// (capture runs once outside the timer). Compare against
// BenchmarkObserverStream-style whole-run benchmarks, not event-level
// ones.
func BenchmarkTraceReplay(b *testing.B) {
	base := Scenario{
		Fabric: FabricConfig{
			Ports:        8,
			LineRate:     10 * units.Gbps,
			LinkDelay:    500 * units.Nanosecond,
			Slot:         10 * units.Microsecond,
			ReconfigTime: units.Microsecond,
			Algorithm:    "islip",
			Timing:       sched.DefaultHardware(),
			Pipelined:    true,
		},
		Traffic: TrafficConfig{
			Ports:     8,
			LineRate:  10 * units.Gbps,
			Load:      0.6,
			Pattern:   traffic.Uniform{},
			Process:   traffic.FlowArrivals,
			FlowSizes: traffic.CacheFollower(),
			Seed:      1,
		},
		Duration: units.Millisecond,
	}
	var buf bytes.Buffer
	capture := base
	capture.CaptureTo = &buf
	if _, err := capture.Run(); err != nil {
		b.Fatal(err)
	}
	records, err := ReadTrace(&buf)
	if err != nil {
		b.Fatal(err)
	}
	replay := base
	replay.Traffic = TrafficConfig{}
	replay.Replay = records
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := replay.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(records)), "pkts/op")
}

// BenchmarkFabricEndToEnd measures whole-simulator throughput: simulated
// packets pushed through an 8-port hybrid switch per wall-clock second.
func BenchmarkFabricEndToEnd(b *testing.B) {
	m, err := demoScenarioBench(b.N)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(m.Delivered)/float64(b.N), "pkts/op")
}

func demoScenarioBench(n int) (Metrics, error) {
	dur := units.Duration(n) * 100 * units.Microsecond
	if dur < units.Millisecond {
		dur = units.Millisecond
	}
	sc := Scenario{
		Fabric: FabricConfig{
			Ports:        8,
			LineRate:     10 * units.Gbps,
			LinkDelay:    500 * units.Nanosecond,
			Slot:         10 * units.Microsecond,
			ReconfigTime: units.Microsecond,
			Algorithm:    "islip",
			Timing:       sched.DefaultHardware(),
			Pipelined:    true,
		},
		Traffic: TrafficConfig{
			Ports:    8,
			LineRate: 10 * units.Gbps,
			Load:     0.6,
			Pattern:  traffic.Uniform{},
			Sizes:    traffic.Fixed{Size: 1500 * units.Byte},
			Seed:     1,
		},
		Duration: dur,
	}
	return sc.Run()
}

// BenchmarkServiceEpoch prices one epoch of the online scheduling
// service through the public API — ingest refill plus a fan-out step
// over every shard. The per-shard epoch hot path itself is
// allocation-free (BenchmarkServeEpoch in internal/serve pins that); the
// public step adds only the frame-slice fan-out.
func BenchmarkServiceEpoch(b *testing.B) {
	const n = 128
	svc, err := NewService(ServiceConfig{Ports: n, Algorithm: "islip", SlotBits: 1500 * 8})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	offer := func() {
		for i := 0; i < n; i++ {
			for k := 1; k <= 8; k++ {
				if err := svc.Offer(i, (i+k*7)%n, 1500*8); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	offer()
	if _, err := svc.Step(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		offer()
		if _, err := svc.Step(); err != nil {
			b.Fatal(err)
		}
	}
}
