package hybridsched

import (
	"hybridsched/internal/cluster"
	"hybridsched/internal/sim"
)

// The rack-scale testbed of the paper's §3: ToR processing elements, a
// core OCS, and a scheduling entity that can run centralized (full demand
// magnitudes) or distributed (request bits only).
type (
	// Cluster is the assembled multi-rack testbed.
	Cluster = cluster.Cluster
	// ClusterConfig parameterizes racks, rates, core optics and the
	// scheduling entity.
	ClusterConfig = cluster.Config
	// ClusterMetrics is the full result set of a cluster run.
	ClusterMetrics = cluster.Metrics
	// ClusterMode selects the scheduling entity's information model.
	ClusterMode = cluster.Mode
)

// ClusterMode values.
const (
	// Centralized gives the scheduling entity full rack-level demand.
	Centralized = cluster.Centralized
	// Distributed gives it request bits only — the control bandwidth a
	// distributed request/grant implementation affords.
	Distributed = cluster.Distributed
)

// NewCluster assembles a cluster testbed on the given simulator.
func NewCluster(s *sim.Simulator, cfg ClusterConfig) (*Cluster, error) {
	return cluster.New(s, cfg)
}
