package experiments

import (
	"fmt"

	"hybridsched/internal/cluster"
	"hybridsched/internal/packet"
	"hybridsched/internal/rng"
	"hybridsched/internal/runner"
	"hybridsched/internal/sched"
	"hybridsched/internal/sim"
	"hybridsched/internal/units"
	"hybridsched/report"
)

func init() {
	Registry = append(Registry, Experiment{
		ID: "E9", Run: E9ClusterScheduling,
		Short: "Cluster: centralized vs distributed core scheduling under skew",
	})
}

// E9ClusterScheduling builds the §3 testbed — racks of hosts, ToR
// processing elements, a core OCS and a central scheduling entity — and
// compares the two implementations §3 claims the architecture supports:
// centralized (full rack-level demand magnitudes) and distributed
// (request bits only), under increasingly skewed inter-rack traffic.
func E9ClusterScheduling(sc Scale) (*Result, error) {
	res := &Result{ID: "E9", Title: "Cluster: centralized vs distributed core scheduling"}
	racks, hosts := 4, 4
	dur := 4 * units.Millisecond
	if sc == Full {
		racks, hosts = 8, 8
		dur = 16 * units.Millisecond
	}
	tab := report.NewTable(
		fmt.Sprintf("%d racks x %d hosts, 40 Gbps uplinks, greedy core scheduler", racks, hosts),
		"skew", "mode", "inter_delivered", "inter_bits", "inter_p50", "peak_core_voq")
	type combo struct {
		skew float64
		mode cluster.Mode
	}
	var combos []combo
	for _, skew := range []float64{0, 0.9} {
		for _, mode := range []cluster.Mode{cluster.Centralized, cluster.Distributed} {
			combos = append(combos, combo{skew, mode})
		}
	}
	ms, err := runner.Map(pool, len(combos), func(i int) (cluster.Metrics, error) {
		return runCluster(racks, hosts, combos[i].mode, combos[i].skew, dur)
	})
	if err != nil {
		return nil, err
	}
	for i, m := range ms {
		tab.AddRow(combos[i].skew, combos[i].mode, m.DeliveredInter, m.InterBits,
			units.Duration(m.LatencyInter.P50), m.PeakInterVOQ)
	}
	res.Tables = append(res.Tables, tab)
	res.note("with request bits only, the distributed scheduler cannot distinguish elephants from trickles: under skew its inter-rack latency and core backlog blow up by several x while the centralized entity keeps the hot uplink busy — the control-bandwidth cost of distribution")
	return res, nil
}

// runCluster offers a mixed intra/inter workload with a tunable fraction
// of inter-rack traffic concentrated on one rack pair.
func runCluster(racks, hostsPerRack int, mode cluster.Mode, skew float64,
	dur units.Duration) (cluster.Metrics, error) {
	s := sim.New()
	c, err := cluster.New(s, cluster.Config{
		Racks:        racks,
		HostsPerRack: hostsPerRack,
		HostRate:     10 * units.Gbps,
		UplinkRate:   40 * units.Gbps,
		CoreReconfig: units.Microsecond,
		Slot:         10 * units.Microsecond,
		TransitDelay: units.Microsecond,
		Algorithm:    "greedy",
		Timing:       sched.DefaultHardware(),
		Pipelined:    true,
		Mode:         mode,
	})
	if err != nil {
		return cluster.Metrics{}, err
	}
	c.Start()
	total := racks * hostsPerRack
	r := rng.New(97)
	var id uint64
	// 9000 B every 2 us = 36 Gbps offered inter-rack; at skew 0.9 the hot
	// uplink runs near saturation, so scheduling quality decides goodput.
	interval := 2 * units.Microsecond
	n := int(int64(dur) / int64(interval))
	// The hot pair is rack 0 -> last rack: greedy's (i, j) tie-break on
	// 1-bit demand prefers lower-numbered destinations, so the
	// distributed mode's blindness is not accidentally hidden by ties.
	hotBase := (racks - 1) * hostsPerRack
	for k := 0; k < n; k++ {
		at := units.Time(units.Duration(k) * interval)
		s.At(at, func() {
			id++
			src := packet.Port(r.Intn(total))
			var dst packet.Port
			if r.Bool(skew) {
				src = packet.Port(r.Intn(hostsPerRack))
				dst = packet.Port(hotBase + r.Intn(hostsPerRack))
			} else {
				for {
					dst = packet.Port(r.Intn(total))
					if dst != src {
						break
					}
				}
			}
			c.Inject(&packet.Packet{ID: id, Src: src, Dst: dst, Size: 9000 * units.Byte})
		})
	}
	s.RunUntil(units.Time(dur + dur/2))
	c.Stop()
	return c.Metrics(), nil
}
