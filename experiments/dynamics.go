package experiments

import (
	"fmt"

	"hybridsched/internal/fabric"
	"hybridsched/internal/runner"
	"hybridsched/internal/sched"
	"hybridsched/internal/traffic"
	"hybridsched/internal/units"
	"hybridsched/report"
)

func init() {
	Registry = append(Registry, Experiment{
		ID: "W2", Run: W2AdversarialDynamics,
		Short: "Adversarial dynamics: schedulers under time-varying traffic (churn, incast, diurnal, conferencing, scale-free)",
	})
}

// W2AdversarialDynamics evaluates the crossbar schedulers under the
// time-varying scenario-pack dynamics: hotspot churn (a permutation
// matrix that rotates before a scheduler can exploit it), periodic
// incast waves, a diurnal load swing, DimDim-style web conferencing, and
// a scale-free hub-skewed demand. These are the workloads that separate
// schedulers which merely converge on a static matrix from ones that
// track a moving one — the regime the paper's fast reconfiguration
// argument is about.
func W2AdversarialDynamics(sc Scale) (*Result, error) {
	res := &Result{ID: "W2", Title: "Adversarial time-varying dynamics"}

	algs := []string{"islip", "greedy", "tdma"}
	ports := 8
	dur := 5 * units.Millisecond
	if sc == Full {
		ports = 16
		dur = 50 * units.Millisecond
	}
	churn := 500 * units.Microsecond

	// Each dynamic names a fresh traffic config per job: time-varying
	// patterns carry cached per-epoch state and must never be shared
	// between concurrently running scenarios.
	dynamics := []struct {
		name string
		tc   func() traffic.Config
	}{
		{"hotspot-churn", func() traffic.Config {
			return traffic.Config{
				Load:    0.6,
				Pattern: traffic.NewRotatingPermutation(ports, churn, 9),
				Sizes:   traffic.TrimodalInternet{},
			}
		}},
		{"incast", func() traffic.Config {
			return traffic.Config{
				Load:    0.4,
				Pattern: traffic.IncastWave{Period: churn, Duty: 0.25},
				Sizes:   traffic.TrimodalInternet{},
			}
		}},
		{"diurnal", func() traffic.Config {
			return traffic.Config{
				Load:    0.7,
				Pattern: traffic.Uniform{},
				Sizes:   traffic.TrimodalInternet{},
				Profile: traffic.Diurnal{Period: dur / 2, Floor: 0.2},
			}
		}},
		{"dimdim", func() traffic.Config {
			return traffic.Config{
				Load:                 0.5,
				Pattern:              traffic.Conference{Size: 4},
				Sizes:                traffic.WebConference(),
				LatencySensitiveFrac: 0.8,
			}
		}},
		{"scalefree", func() traffic.Config {
			return traffic.Config{
				Load:    0.5,
				Pattern: traffic.NewScaleFree(ports, 1.4, 9),
				Sizes:   traffic.TrimodalInternet{},
			}
		}},
	}

	type point struct {
		dyn string
		alg string
	}
	var points []point
	var jobs []runner.Job
	for _, d := range dynamics {
		for _, alg := range algs {
			tc := d.tc()
			tc.Ports = ports
			tc.LineRate = 10 * units.Gbps
			tc.Seed = 9
			points = append(points, point{d.name, alg})
			jobs = append(jobs, runner.Job{
				Fabric: fabric.Config{
					Ports:        ports,
					LineRate:     10 * units.Gbps,
					LinkDelay:    500 * units.Nanosecond,
					Slot:         10 * units.Microsecond,
					ReconfigTime: units.Microsecond,
					Algorithm:    alg,
					Timing:       sched.DefaultHardware(),
					Pipelined:    true,
				},
				Traffic:  tc,
				Duration: dur,
			})
		}
	}
	ms, err := runScenarios(jobs)
	if err != nil {
		return nil, err
	}
	tab := report.NewTable(
		fmt.Sprintf("%d ports x 10 Gbps, %v offered, %v churn period", ports, dur, churn),
		"dynamic", "algorithm", "delivered_frac", "lat_p50_us", "lat_p99_us", "peak_switch_buf")
	for i, m := range ms {
		p := points[i]
		tab.AddRow(p.dyn, p.alg, m.DeliveredFraction(),
			units.Duration(m.Latency.P50).Microseconds(),
			units.Duration(m.Latency.P99).Microseconds(),
			m.PeakSwitchBuffer)
	}
	res.Tables = append(res.Tables, tab)
	res.note("a scheduler that converges on a static matrix looks perfect under W1 and falls apart here: churn resets its learning every period, incast serializes it onto one output, and the diurnal swing tests both regimes in one run")
	return res, nil
}
