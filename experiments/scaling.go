package experiments

import (
	"fmt"
	"time"

	"hybridsched/internal/fabric"
	"hybridsched/internal/sched"
	"hybridsched/internal/traffic"
	"hybridsched/internal/units"
	"hybridsched/report"
)

func init() {
	Registry = append(Registry, Experiment{
		ID: "S1", Run: S1Scaling,
		Short:     "Scaling: wall-clock runtime, schedule latency and throughput vs port count (16..2048)",
		WallClock: true,
	})
}

// s1Ports is the port-count axis. Quick covers the full range up to the
// 2048-port fabric — that a 2048-port scenario completes end-to-end is
// the point of the experiment (the bitset kernels keep per-slot matching
// word-parallel, so the right edge stays reachable) — but with a short
// simulated duration; Full quadruples the simulated time for stabler
// throughput numbers.
var s1Ports = []int{16, 64, 128, 256, 512, 1024, 2048}

// S1Scaling pushes one fabric configuration across port counts from rack
// scale to a 2048-port fabric and reports, per size: simulator wall-clock
// runtime (total and per simulated microsecond), the modelled
// schedule-computation latency of the hardware arbiter, and delivered
// throughput. This is the recorded performance trajectory of the scaling
// refactor: sparse demand views and allocation-free matching are what
// keep the right edge of this table reachable at all.
//
// Points run serially on purpose (WallClock): concurrent runs would
// contend for cores and corrupt the runtime measurements.
//
//hybridsched:wallclock
func S1Scaling(sc Scale) (*Result, error) {
	res := &Result{ID: "S1", Title: "Scaling to fabric port counts (S1)"}

	dur := units.Millisecond
	if sc == Full {
		dur = 4 * units.Millisecond
	}
	const alg = "islip"
	load := 0.3
	hw := sched.DefaultHardware()

	tab := report.NewTable(
		fmt.Sprintf("%s, load %.2f uniform, %v simulated (shortened above 512 ports), hardware timing", alg, load, dur),
		"ports", "sim_us", "wall_ms", "wall_us_per_sim_us", "sched_latency", "sched_cycles",
		"delivered_frac", "throughput")
	for _, ports := range s1Ports {
		// The large points exist to prove the fabric completes end-to-end,
		// not to stabilize throughput; a tenth of the simulated span
		// keeps the whole axis affordable at Quick scale.
		pointDur := dur
		if ports > 512 {
			pointDur = dur / 10
		}
		fc := fabric.Config{
			Ports:        ports,
			LineRate:     10 * units.Gbps,
			LinkDelay:    500 * units.Nanosecond,
			Slot:         10 * units.Microsecond,
			ReconfigTime: units.Microsecond,
			Algorithm:    alg,
			Timing:       hw,
			Pipelined:    true,
		}
		tc := traffic.Config{
			Ports:    ports,
			LineRate: 10 * units.Gbps,
			Load:     load,
			Pattern:  traffic.Uniform{},
			Sizes:    traffic.Fixed{Size: 1500 * units.Byte},
			Seed:     11,
		}
		start := time.Now()
		m, err := runScenario(fc, tc, pointDur)
		if err != nil {
			return nil, fmt.Errorf("S1 at %d ports: %w", ports, err)
		}
		wall := time.Since(start)

		algo, err := newAlgorithm(alg, ports)
		if err != nil {
			return nil, err
		}
		schedLat := hw.ComputeLatency(algo.Complexity(ports))

		tab.AddRow(ports,
			pointDur.Seconds()*1e6,
			float64(wall.Microseconds())/1e3,
			float64(wall.Microseconds())/pointDur.Seconds()/1e6,
			schedLat,
			m.Loop.Cycles,
			m.DeliveredFraction(),
			m.Throughput(ports, 10*units.Gbps))
	}
	res.Tables = append(res.Tables, tab)
	res.note("every port count through 2048 completes end-to-end; per-slot scheduling cost follows the demand's nonzeros, not n^2")
	res.note("wall-clock columns are this host's CPU and are not byte-reproducible; rerun at -scale full for stabler throughput")
	return res, nil
}
