package experiments

import (
	"math"
	"strings"
	"testing"

	"hybridsched/internal/demand"
	"hybridsched/internal/units"
)

// TestAllExperimentsRunQuick executes every registered experiment at Quick
// scale — the end-to-end integration test of the whole framework.
func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range Registry {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, err := e.Run(Quick)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if res.ID != e.ID {
				t.Fatalf("result id %q, want %q", res.ID, e.ID)
			}
			if len(res.Tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tab := range res.Tables {
				if tab.Rows() == 0 {
					t.Fatalf("%s produced an empty table", e.ID)
				}
				var b strings.Builder
				tab.Render(&b)
				if b.Len() == 0 {
					t.Fatalf("%s table renders empty", e.ID)
				}
			}
		})
	}
}

// TestParallelismDoesNotChangeResults renders a multi-point, simulation-
// heavy experiment at one worker and at many, and requires byte-identical
// output — the determinism contract of the runner fan-out.
func TestParallelismDoesNotChangeResults(t *testing.T) {
	render := func(id string) string {
		var b strings.Builder
		res, err := Run(id, Quick)
		if err != nil {
			t.Fatal(err)
		}
		for _, tab := range res.Tables {
			tab.Render(&b)
		}
		for _, n := range res.Notes {
			b.WriteString(n)
			b.WriteByte('\n')
		}
		return b.String()
	}
	defer SetParallelism(0)
	for _, id := range []string{"F2", "E3", "E7"} {
		SetParallelism(1)
		serial := render(id)
		SetParallelism(8)
		parallel := render(id)
		if serial != parallel {
			t.Fatalf("%s output differs between 1 and 8 workers:\n--- serial ---\n%s\n--- parallel ---\n%s",
				id, serial, parallel)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("NOPE", Quick); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestRunByID(t *testing.T) {
	res, err := Run("T1", Quick)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "T1" || len(res.Notes) == 0 {
		t.Fatalf("res = %+v", res)
	}
}

// TestFigure1ShapeHolds asserts the headline reproduction: the analytic
// aggregate curve spans KB (ns) to GB (ms) and the simulated ToR peak is
// monotone in the reconfiguration time.
func TestFigure1ShapeHolds(t *testing.T) {
	res, err := Figure1(Quick)
	if err != nil {
		t.Fatal(err)
	}
	var agg *statsSeries
	for _, s := range res.Series {
		if s.Name == "aggregate-bytes" {
			agg = s
		}
	}
	if agg == nil {
		t.Fatal("aggregate series missing")
	}
	first := agg.Y[0]
	last := agg.Y[len(agg.Y)-1]
	if first > 20e3 {
		t.Fatalf("ns endpoint %v bytes; want kilobytes", first)
	}
	if last < 1e9 {
		t.Fatalf("ms endpoint %v bytes; want gigabytes", last)
	}
	// Simulated switch peak monotone non-decreasing.
	var sw *statsSeries
	for _, s := range res.Series {
		if s.Name == "sim-switch-peak-bytes" {
			sw = s
		}
	}
	if sw == nil {
		t.Fatal("sim series missing")
	}
	for i := 1; i < len(sw.Y); i++ {
		if sw.Y[i] < sw.Y[i-1]*0.8 { // allow small noise
			t.Fatalf("simulated peak not monotone: %v", sw.Y)
		}
	}
}

// statsSeries aliases the stats series type without importing it twice.
type statsSeries = seriesAlias

func TestE5DutyCollapse(t *testing.T) {
	res, err := E5DutyCycle(Quick)
	if err != nil {
		t.Fatal(err)
	}
	var curve *statsSeries
	for _, s := range res.Series {
		if s.Name == "delivered-vs-ratio" {
			curve = s
		}
	}
	if curve == nil || len(curve.Y) < 3 {
		t.Fatal("curve missing")
	}
	// Goodput at ratio 0.01 must beat goodput at ratio 2 substantially.
	if curve.Y[0] < curve.Y[len(curve.Y)-1]*1.3 {
		t.Fatalf("duty-cycle collapse not visible: %v", curve.Y)
	}
}

func TestE7ISLIPBeatsTDMA(t *testing.T) {
	res, err := E7CrossbarSchedulers(Quick)
	if err != nil {
		t.Fatal(err)
	}
	series := map[string]*statsSeries{}
	for _, s := range res.Series {
		series[s.Name] = s
	}
	islip, tdma := series["islip"], series["tdma"]
	if islip == nil || tdma == nil {
		t.Fatal("series missing")
	}
	// At the highest load point, iSLIP must deliver a strictly larger
	// fraction than oblivious TDMA.
	li, lt := islip.Y[len(islip.Y)-1], tdma.Y[len(tdma.Y)-1]
	if li <= lt {
		t.Fatalf("islip %.3f <= tdma %.3f at high load", li, lt)
	}
}

func TestRelError(t *testing.T) {
	a := demand.NewMatrix(2)
	b := demand.NewMatrix(2)
	if !math.IsNaN(relError(a, b)) {
		t.Fatal("empty actual should be NaN")
	}
	b.Set(0, 1, 100)
	if got := relError(a, b); got != 1.0 {
		t.Fatalf("all-missing estimate should be error 1.0, got %v", got)
	}
	a.Set(0, 1, 100)
	if got := relError(a, b); got != 0 {
		t.Fatalf("perfect estimate should be 0, got %v", got)
	}
	a.Set(0, 1, 150)
	if got := relError(a, b); got != 0.5 {
		t.Fatalf("50%% over should be 0.5, got %v", got)
	}
}

func TestNoteFormatting(t *testing.T) {
	r := &Result{}
	r.note("x=%d", 7)
	if len(r.Notes) != 1 || r.Notes[0] != "x=7" {
		t.Fatalf("notes = %v", r.Notes)
	}
}

func TestUnitsSanityForE6(t *testing.T) {
	// The E6 sweep's "12500ns" entry is 12.5us — a quarter of the 50us
	// slot after doubling. Guard the arithmetic used in the table.
	d := 12500 * units.Nanosecond
	slot := 50 * units.Microsecond
	if frac := float64(2*d) / float64(slot); frac != 0.5 {
		t.Fatalf("frac = %v", frac)
	}
}
