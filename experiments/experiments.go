// Package experiments implements every figure, table and in-text claim of
// the paper as a reproducible experiment, plus the framework evaluations
// §3 motivates (see README.md's experiment index). Each experiment returns
// a Result holding rendered tables and raw series; cmd/figures prints
// them and bench_test.go wraps them as benchmarks.
//
// Every experiment accepts a Scale: Quick shrinks port counts and
// durations for CI and benchmarks; Full uses paper-scale parameters.
//
// The per-point simulation runs inside each experiment are independent and
// fan out over a worker pool (see runScenarios / SetParallelism); results
// are collected in submission order, so output is identical at any worker
// count.
package experiments

import (
	"fmt"

	"hybridsched/internal/buffermodel"
	"hybridsched/internal/fabric"
	"hybridsched/internal/runner"
	"hybridsched/internal/sched"
	"hybridsched/internal/stats"
	"hybridsched/internal/traffic"
	"hybridsched/internal/units"
	"hybridsched/report"
)

// Scale selects experiment size.
type Scale int

// Scale values.
const (
	Quick Scale = iota // CI/bench scale: minutes of CPU at most
	Full               // paper scale
)

// Result is one experiment's output.
type Result struct {
	ID     string
	Title  string
	Tables []*report.Table
	Series []*stats.Series
	Notes  []string
}

// note appends a formatted observation to the result.
func (r *Result) note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// pool fans the per-point simulation runs inside each experiment out over
// the machine's cores. Experiments submit a slice of independent jobs and
// collect metrics in submission order, so tables and notes are identical
// at any worker count.
var pool = runner.New(0)

// SetParallelism resizes the per-point worker pool; n <= 0 selects
// GOMAXPROCS.
func SetParallelism(n int) { pool = runner.New(n) }

// runScenarios executes independent fabric+traffic jobs on the pool and
// returns their metrics in submission order — the shared submit/collect
// helper behind every multi-point experiment.
func runScenarios(jobs []runner.Job) ([]fabric.Metrics, error) {
	return pool.RunScenarios(jobs)
}

// runScenario executes one fabric+traffic run and returns metrics.
func runScenario(fc fabric.Config, tc traffic.Config, dur units.Duration) (fabric.Metrics, error) {
	m, _, err := runner.Job{Fabric: fc, Traffic: tc, Duration: dur}.Run()
	return m, err
}

// Experiment is one registered, runnable reproduction.
type Experiment struct {
	ID    string
	Run   func(Scale) (*Result, error)
	Short string
	// WallClock marks experiments whose tables contain measured
	// wall-clock times. cmd/figures schedules them after the parallel
	// batch, alone, so CPU contention cannot corrupt the measurements;
	// their output is also inherently non-reproducible byte-for-byte.
	WallClock bool
}

// Registry maps experiment IDs to runners, in presentation order.
var Registry = []Experiment{
	{ID: "F1", Run: Figure1, Short: "Figure 1: buffering requirement vs switching time"},
	{ID: "T1", Run: Table1, Short: "In-text claim: GB at 1 ms vs KB at 1 ns (64x10G)"},
	{ID: "F2", Run: Figure2, Short: "Figure 2: control-loop pipeline and latency breakdown"},
	{ID: "E1", Run: E1SchedulerLatency, Short: "Scheduler latency: hardware vs software, by algorithm and port count"},
	{ID: "E2", Run: E2MiceLatency, Short: "Small-flow latency/jitter under fast vs slow scheduling"},
	{ID: "E3", Run: E3HybridVsSkew, Short: "Hybrid throughput vs traffic skew (EPS-only/TDMA/greedy)"},
	{ID: "E4", Run: E4AlgorithmScaling, Short: "Matching algorithm cost scaling with port count", WallClock: true},
	{ID: "E5", Run: E5DutyCycle, Short: "OCS duty cycle vs reconfiguration/slot ratio"},
	{ID: "E6", Run: E6SyncSlack, Short: "Host-switch synchronization distance vs goodput"},
	{ID: "E7", Run: E7CrossbarSchedulers, Short: "Crossbar arbiter throughput vs offered load"},
	{ID: "E8", Run: E8DemandEstimation, Short: "Demand estimation accuracy vs estimator and window"},
}

// Lookup returns the registry entry for id, or nil if unknown.
func Lookup(id string) *Experiment {
	for i := range Registry {
		if Registry[i].ID == id {
			return &Registry[i]
		}
	}
	return nil
}

// Run executes the experiment with the given ID.
func Run(id string, sc Scale) (*Result, error) {
	if e := Lookup(id); e != nil {
		return e.Run(sc)
	}
	return nil, fmt.Errorf("experiments: unknown id %q", id)
}

// ---------------------------------------------------------------------------
// F1 — Figure 1: buffering requirement vs switching time.

// Figure1 sweeps the OCS switching time from nanoseconds to milliseconds.
// The analytic model gives the full curve; the simulator cross-checks a
// set of points in both buffering regimes.
func Figure1(sc Scale) (*Result, error) {
	res := &Result{ID: "F1", Title: "Buffering requirement vs switching time (Figure 1)"}

	// Analytic curve at paper parameters (64 ports x 10 Gbps, sustained
	// bursts, one blocked service round of 16 slots).
	base := buffermodel.Defaults64x10G(0)
	base.ServiceSlots = 16
	pts := buffermodel.Sweep(base, buffermodel.DefaultSweepTimes(), buffermodel.TypicalToRMemory)
	tab := report.NewTable("analytic: 64 ports x 10 Gbps, contention round of 16",
		"switching_time", "per_port_buffer", "aggregate_buffer", "placement")
	curve := &stats.Series{Name: "aggregate-bytes"}
	for _, p := range pts {
		tab.AddRow(p.SwitchingTime, p.PerPort, p.Aggregate, p.Placement)
		curve.Append(p.SwitchingTime.Seconds(), p.Aggregate.Bytes())
	}
	res.Tables = append(res.Tables, tab)
	res.Series = append(res.Series, curve)

	// Simulation cross-check: smaller fabric, both regimes, measured
	// peak buffering at each placement.
	ports := 8
	dur := 4 * units.Millisecond
	if sc == Full {
		ports = 16
		dur = 20 * units.Millisecond
	}
	simTab := report.NewTable(
		fmt.Sprintf("simulated: %d ports x 10 Gbps, ON/OFF load 0.7", ports),
		"reconfig", "slot", "regime", "peak_switch_buf", "peak_host_buf", "delivered_frac")
	type cfg struct {
		reconfig, slot units.Duration
	}
	sweeps := []cfg{
		{100 * units.Nanosecond, 5 * units.Microsecond},
		{1 * units.Microsecond, 20 * units.Microsecond},
		{10 * units.Microsecond, 100 * units.Microsecond},
		{100 * units.Microsecond, 500 * units.Microsecond},
	}
	swCurve := &stats.Series{Name: "sim-switch-peak-bytes"}
	hostCurve := &stats.Series{Name: "sim-host-peak-bytes"}
	type point struct {
		cfg    cfg
		regime fabric.BufferPlacement
	}
	var points []point
	var jobs []runner.Job
	for _, c := range sweeps {
		for _, regime := range []fabric.BufferPlacement{fabric.BufferAtSwitch, fabric.BufferAtHost} {
			timing := sched.TimingModel(sched.DefaultHardware())
			pipelined := true
			if regime == fabric.BufferAtHost {
				timing = sched.Software{
					DemandCollection: c.reconfig, // scale the loop with the optics
					PerOp:            units.Nanosecond,
					IOOverhead:       10 * units.Microsecond,
					ControlRTT:       10 * units.Microsecond,
				}
				pipelined = false
			}
			points = append(points, point{c, regime})
			jobs = append(jobs, runner.Job{
				Fabric: fabric.Config{
					Ports:        ports,
					LineRate:     10 * units.Gbps,
					LinkDelay:    500 * units.Nanosecond,
					Slot:         c.slot,
					ReconfigTime: c.reconfig,
					Algorithm:    "islip",
					Timing:       timing,
					Pipelined:    pipelined,
					Buffer:       regime,
				},
				Traffic: traffic.Config{
					Ports:         ports,
					LineRate:      10 * units.Gbps,
					Load:          0.7,
					Pattern:       traffic.Uniform{},
					Sizes:         traffic.Fixed{Size: 1500 * units.Byte},
					Process:       traffic.OnOff,
					BurstMeanPkts: 32,
					Seed:          42,
				},
				Duration: dur,
			})
		}
	}
	ms, err := runScenarios(jobs)
	if err != nil {
		return nil, err
	}
	for i, m := range ms {
		c, regime := points[i].cfg, points[i].regime
		simTab.AddRow(c.reconfig, c.slot, regime,
			m.PeakSwitchBuffer, m.PeakHostBuffer, m.DeliveredFraction())
		if regime == fabric.BufferAtSwitch {
			swCurve.Append(c.reconfig.Seconds(), m.PeakSwitchBuffer.Bytes())
		} else {
			hostCurve.Append(c.reconfig.Seconds(), m.PeakHostBuffer.Bytes())
		}
	}
	res.Tables = append(res.Tables, simTab)
	res.Series = append(res.Series, swCurve, hostCurve)

	first, last := pts[0], pts[len(pts)-1]
	res.note("analytic aggregate grows %v (at %v) -> %v (at %v): the paper's KB-to-GB span",
		first.Aggregate, first.SwitchingTime, last.Aggregate, last.SwitchingTime)
	res.note("simulated ToR peak grows monotonically with reconfiguration time; host regime shifts the backlog to hosts")
	return res, nil
}

// ---------------------------------------------------------------------------
// T1 — in-text buffering claim.

// Table1 evaluates the model exactly at the paper's two endpoints.
func Table1(Scale) (*Result, error) {
	res := &Result{ID: "T1", Title: "64x64 @ 10 Gbps buffering endpoints (paper §2)"}
	tab := report.NewTable("", "switching_time", "service_slots", "aggregate_buffer", "paper_claim")
	for _, row := range []struct {
		st    units.Duration
		slots int
		claim string
	}{
		{units.Millisecond, 1, "~GBs"},
		{units.Millisecond, 16, "~GBs"},
		{units.Nanosecond, 1, "~KBs"},
		{units.Nanosecond, 16, "~KBs"},
	} {
		p := buffermodel.Defaults64x10G(row.st)
		p.ServiceSlots = row.slots
		tab.AddRow(row.st, row.slots, p.AggregateBuffer(), row.claim)
	}
	res.Tables = append(res.Tables, tab)
	ms := buffermodel.Defaults64x10G(units.Millisecond)
	ms.ServiceSlots = 16
	ns := buffermodel.Defaults64x10G(units.Nanosecond)
	ns.ServiceSlots = 16
	res.note("1 ms switching: %v aggregate (gigabytes, as claimed)", ms.AggregateBuffer())
	res.note("1 ns switching: %v aggregate (kilobytes, as claimed)", ns.AggregateBuffer())
	res.note("ratio: %.0fx", float64(ms.AggregateBuffer())/float64(ns.AggregateBuffer()))
	return res, nil
}

// ---------------------------------------------------------------------------
// F2 — architecture pipeline breakdown.

// Figure2 decomposes the request->demand->schedule->configure->grant->
// dequeue control loop of Figure 2 stage by stage for both timing models,
// and validates the ordering invariant on a live fabric.
func Figure2(sc Scale) (*Result, error) {
	res := &Result{ID: "F2", Title: "Control-loop breakdown (Figure 2 architecture)"}
	ports := 64
	alg := "islip"
	hw := sched.DefaultHardware()
	sw := sched.DefaultSoftware()

	algo, err := newAlgorithm(alg, ports)
	if err != nil {
		return nil, err
	}
	c := algo.Complexity(ports)
	tab := report.NewTable(fmt.Sprintf("per-stage latency, %d ports, %s", ports, alg),
		"stage", "hardware", "software")
	tab.AddRow("request (VOQ status -> scheduler)", hw.RequestLatency(), sw.RequestLatency())
	tab.AddRow("demand estimation + schedule compute", hw.ComputeLatency(c), sw.ComputeLatency(c))
	tab.AddRow("grant (scheduler -> processing logic)", hw.GrantLatency(), sw.GrantLatency())
	hwTotal := hw.RequestLatency() + hw.ComputeLatency(c) + hw.GrantLatency()
	swTotal := sw.RequestLatency() + sw.ComputeLatency(c) + sw.GrantLatency()
	tab.AddRow("control loop total (excl. optics)", hwTotal, swTotal)
	res.Tables = append(res.Tables, tab)

	// Live validation on a small fabric: measured staleness must bracket
	// the model's control-loop total.
	simPorts := 8
	dur := 2 * units.Millisecond
	if sc == Full {
		dur = 10 * units.Millisecond
	}
	models := []sched.TimingModel{hw, sw}
	jobs := make([]runner.Job, len(models))
	for i, tm := range models {
		jobs[i] = runner.Job{
			Fabric: fabric.Config{
				Ports:        simPorts,
				LineRate:     10 * units.Gbps,
				LinkDelay:    500 * units.Nanosecond,
				Slot:         20 * units.Microsecond,
				ReconfigTime: units.Microsecond,
				Algorithm:    alg,
				Timing:       tm,
			},
			Traffic: traffic.Config{
				Ports:    simPorts,
				LineRate: 10 * units.Gbps,
				Load:     0.5,
				Pattern:  traffic.Uniform{},
				Sizes:    traffic.Fixed{Size: 1500 * units.Byte},
				Seed:     3,
			},
			Duration: dur,
		}
	}
	ms, err := runScenarios(jobs)
	if err != nil {
		return nil, err
	}
	for i, m := range ms {
		res.note("%s loop: measured grant staleness p50=%v (cycles=%d, grants=%d)",
			models[i].Name(), units.Duration(m.Loop.Staleness.P50), m.Loop.Cycles, m.Loop.GrantedPairs)
	}
	res.note("ordering invariant (configure strictly before grant) is enforced by internal/sched and tested in sched/ocs unit tests")
	return res, nil
}

// ---------------------------------------------------------------------------
// E1 — scheduler latency by algorithm, port count and implementation.

// E1SchedulerLatency tabulates the model latency for every registered
// algorithm across port counts under both timing models.
func E1SchedulerLatency(sc Scale) (*Result, error) {
	res := &Result{ID: "E1", Title: "Schedule-computation latency: hardware vs software"}
	portCounts := []int{8, 16, 32, 64}
	if sc == Full {
		portCounts = append(portCounts, 128, 256)
	}
	hw := sched.DefaultHardware()
	sw := sched.DefaultSoftware()
	tab := report.NewTable("", "algorithm", "ports", "hardware", "software", "ratio")
	for _, name := range algorithmSubset() {
		for _, n := range portCounts {
			algo, err := newAlgorithm(name, n)
			if err != nil {
				return nil, err
			}
			c := algo.Complexity(n)
			h := hw.ComputeLatency(c)
			s := sw.ComputeLatency(c)
			tab.AddRow(name, n, h, s, fmt.Sprintf("%.0fx", float64(s)/float64(h)))
		}
	}
	res.Tables = append(res.Tables, tab)
	res.note("hardware stays ns-us across all algorithms and sizes; software is pinned above its ~0.5 ms demand-collection floor — the paper's central gap")
	return res, nil
}
