package experiments

import (
	"fmt"

	"hybridsched/internal/fabric"
	"hybridsched/internal/match"
	"hybridsched/internal/ocs"
	"hybridsched/internal/packet"
	"hybridsched/internal/runner"
	"hybridsched/internal/sched"
	"hybridsched/internal/sim"
	"hybridsched/internal/traffic"
	"hybridsched/internal/units"
	"hybridsched/report"
)

func init() {
	Registry = append(Registry,
		Experiment{ID: "A1", Run: A1GrantOrdering, Short: "Ablation: grant before vs after OCS configuration completes"},
		Experiment{ID: "A2", Run: A2ISLIPIterations, Short: "Ablation: iSLIP iteration count (1 vs log n vs n)"},
	)
}

// A1GrantOrdering ablates the ordering rule the paper mandates: "the
// scheduler sends the grant matrix to the switching logic to configure the
// circuits in the OCS ... once the grant message is received by the
// processing logic, it dequeues packets". We drive an OCS directly with
// two policies — grant strictly after the configuration completes
// (correct) and grant at configuration start (buggy) — and count what the
// optics do to the data.
func A1GrantOrdering(sc Scale) (*Result, error) {
	res := &Result{ID: "A1", Title: "Ablation: grant ordering vs OCS configuration"}
	const ports = 4
	reconfig := 2 * units.Microsecond
	slotPkts := 8
	cycles := 50
	if sc == Full {
		cycles = 200
	}

	type outcome struct {
		delivered, truncated, rejected int64
	}
	run := func(grantAfterConfigure bool) (outcome, error) {
		s := sim.New()
		var out outcome
		sw := ocs.New(s, ocs.Config{
			Ports:        ports,
			PortRate:     10 * units.Gbps,
			ReconfigTime: reconfig,
		}, func(*packet.Packet, packet.Port) { out.delivered++ })

		perm := match.Identity(ports)
		for i := range perm {
			perm[i] = (i + 1) % ports
		}
		var id uint64
		tx := units.TransmitTime(1500*units.Byte, 10*units.Gbps)
		// sendBurst pushes slotPkts frames back-to-back on every input.
		// A synchronized sender (blind=false) stops on the first failure;
		// an unsynchronized one (blind=true) keeps the laser firing at
		// line rate regardless — frames launched into a dark fabric are
		// simply lost.
		sendBurst := func(m match.Matching, blind bool) {
			for in := 0; in < ports; in++ {
				in := in
				var step func(k int)
				step = func(k int) {
					if k >= slotPkts {
						return
					}
					id++
					p := &packet.Packet{
						ID: id, Src: packet.Port(in), Dst: packet.Port(m[in]),
						Size: 1500 * units.Byte,
					}
					done, err := sw.Send(p)
					if err != nil {
						out.rejected++
						if blind {
							s.Schedule(tx, func() { step(k + 1) })
						}
						return
					}
					s.At(done, func() { step(k + 1) })
				}
				step(0)
			}
		}
		var cycle func(k int)
		cycle = func(k int) {
			if k >= cycles {
				return
			}
			// Alternate between two rotations so every cycle really
			// reconfigures.
			m := perm.Clone()
			if k%2 == 1 {
				for i := range m {
					m[i] = (i + 2) % ports
				}
			}
			next := func(blind bool) func() {
				return func() {
					sendBurst(m, blind)
					// The next cycle begins one slot after grants, plus
					// a 10 ns guard band so the slot boundary never
					// races the final delivery — the same guard real
					// slotted designs insert.
					slotLen := units.Duration(slotPkts) * tx
					s.Schedule(slotLen+10*units.Nanosecond, func() { cycle(k + 1) })
				}
			}
			if grantAfterConfigure {
				sw.Configure(m, next(false))
			} else {
				// BUGGY: grants released at configuration *start*; the
				// processing logic transmits into a dark, then freshly
				// cut, fabric.
				sw.Configure(m, nil)
				next(true)()
			}
		}
		cycle(0)
		s.Run()
		st := sw.Stats()
		out.truncated = st.Truncated
		return out, nil
	}

	tab := report.NewTable(
		fmt.Sprintf("%d-port OCS, %v reconfiguration, %d packets/input/slot, %d cycles",
			ports, reconfig, slotPkts, cycles),
		"ordering", "delivered", "rejected_at_send", "truncated_in_flight")
	outcomes, err := runner.Map(pool, 2, func(i int) (outcome, error) {
		return run(i == 0)
	})
	if err != nil {
		return nil, err
	}
	correct, buggy := outcomes[0], outcomes[1]
	tab.AddRow("configure-then-grant (paper)", correct.delivered, correct.rejected, correct.truncated)
	tab.AddRow("grant-at-configure-start (ablated)", buggy.delivered, buggy.rejected, buggy.truncated)
	res.Tables = append(res.Tables, tab)
	res.note("the ablated ordering launches reconfig/tx frames per input per slot into a dark fabric (25%% loss here); the paper's configure-then-grant ordering loses none")
	if correct.rejected != 0 || correct.truncated != 0 {
		return nil, fmt.Errorf("experiments: correct ordering lost packets (rejected=%d truncated=%d)",
			correct.rejected, correct.truncated)
	}
	return res, nil
}

// A2ISLIPIterations ablates the iSLIP iteration count on the cell-mode
// crossbar: 1 iteration vs log2(n) vs n under bursty near-saturation
// load, where convergence quality shows up as latency.
func A2ISLIPIterations(sc Scale) (*Result, error) {
	res := &Result{ID: "A2", Title: "Ablation: iSLIP iteration count"}
	ports := 16
	dur := 4 * units.Millisecond
	if sc == Full {
		ports = 32
		dur = 16 * units.Millisecond
	}
	slot := units.TransmitTime(1500*units.Byte, 10*units.Gbps)
	tab := report.NewTable(
		fmt.Sprintf("%d-port cell-mode crossbar, bursty load 0.9", ports),
		"variant", "iterations", "delivered_frac", "mean_lat", "p99_lat")
	variants := []struct {
		name, alg string
		iters     int
	}{
		{"islip-1", "islip1", 1},
		{"islip-log n", "islip", log2ceilInt(ports)},
		{"islip-n", "islipn", ports},
	}
	jobs := make([]runner.Job, len(variants))
	for i, v := range variants {
		jobs[i] = runner.Job{
			Fabric: fabricCellMode(ports, slot, v.alg),
			Traffic: traffic.Config{
				Ports:         ports,
				LineRate:      10 * units.Gbps,
				Load:          0.9,
				Pattern:       traffic.Uniform{},
				Sizes:         traffic.Fixed{Size: 1500 * units.Byte},
				Process:       traffic.OnOff,
				BurstMeanPkts: 16,
				Seed:          61,
			},
			Duration: dur,
		}
	}
	ms, err := runScenarios(jobs)
	if err != nil {
		return nil, err
	}
	for i, m := range ms {
		v := variants[i]
		tab.AddRow(v.name, v.iters, m.DeliveredFraction(),
			units.Duration(m.Latency.Mean), units.Duration(m.Latency.P99))
	}
	res.Tables = append(res.Tables, tab)
	res.note("one iteration already sustains throughput; extra iterations trim tail latency with diminishing returns after log n — matching McKeown's original result")
	return res, nil
}

func log2ceilInt(n int) int {
	k, v := 0, 1
	for v < n {
		v <<= 1
		k++
	}
	if k == 0 {
		return 1
	}
	return k
}

func fabricCellMode(ports int, slot units.Duration, alg string) fabric.Config {
	return fabric.Config{
		Ports:        ports,
		LineRate:     10 * units.Gbps,
		LinkDelay:    100 * units.Nanosecond,
		Slot:         slot,
		ReconfigTime: 0,
		Algorithm:    alg,
		Timing: sched.Hardware{ClockPeriod: units.Nanosecond,
			PipelineDepth: 1, RequestWire: units.Nanosecond, GrantWire: units.Nanosecond},
		Pipelined: true,
	}
}
