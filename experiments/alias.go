package experiments

import "hybridsched/internal/stats"

// seriesAlias keeps test helpers decoupled from the stats import path.
type seriesAlias = stats.Series
