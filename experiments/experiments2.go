package experiments

import (
	"fmt"
	"math"
	"time"

	"hybridsched/internal/classify"
	"hybridsched/internal/demand"
	"hybridsched/internal/fabric"
	"hybridsched/internal/match"
	"hybridsched/internal/packet"
	"hybridsched/internal/rng"
	"hybridsched/internal/runner"
	"hybridsched/internal/sched"
	"hybridsched/internal/sim"
	"hybridsched/internal/stats"
	"hybridsched/internal/traffic"
	"hybridsched/internal/units"
	"hybridsched/report"
)

// newAlgorithm instantiates a registered matching algorithm with a fixed
// seed.
func newAlgorithm(name string, n int) (match.Algorithm, error) {
	return match.New(name, n, 1)
}

// algorithmSubset is the stable list of built-in algorithms experiments
// iterate (user-registered plug-ins are excluded so results stay
// comparable).
func algorithmSubset() []string {
	return []string{"tdma", "islip1", "islip", "pim", "wavefront", "greedy", "hungarian"}
}

// ---------------------------------------------------------------------------
// E2 — small-flow latency and jitter under fast vs slow scheduling.

// E2MiceLatency runs the same mice+elephants workload under a hardware and
// a software scheduler and reports the latency-sensitive flows' delay
// distribution — the paper's VOIP/gaming QoE argument. All traffic rides
// the scheduled fabric here (no EPS escape hatch), because the claim is
// about what scheduling speed does to interactive flows; examples/voip
// additionally shows how much an EPS buys back.
func E2MiceLatency(sc Scale) (*Result, error) {
	res := &Result{ID: "E2", Title: "Small-flow latency/jitter: fast vs slow scheduling"}
	ports := 8
	dur := 4 * units.Millisecond
	if sc == Full {
		ports = 16
		dur = 20 * units.Millisecond
	}
	tab := report.NewTable("20% latency-sensitive traffic, load 0.5, all traffic scheduled",
		"scheduler", "mice_p50", "mice_p99", "mice_jitter(p99-p50)", "all_p50", "delivered_frac")
	type variant struct {
		name      string
		timing    sched.TimingModel
		pipelined bool
		slot      units.Duration
		reconfig  units.Duration
	}
	variants := []variant{
		{"hardware (fast optics)", sched.DefaultHardware(), true,
			10 * units.Microsecond, 200 * units.Nanosecond},
		{"software (slow optics)", sched.DefaultSoftware(), false,
			300 * units.Microsecond, 100 * units.Microsecond},
	}
	jobs := make([]runner.Job, len(variants))
	for i, v := range variants {
		jobs[i] = runner.Job{
			Fabric: fabric.Config{
				Ports:        ports,
				LineRate:     10 * units.Gbps,
				LinkDelay:    500 * units.Nanosecond,
				Slot:         v.slot,
				ReconfigTime: v.reconfig,
				Algorithm:    "islip",
				Timing:       v.timing,
				Pipelined:    v.pipelined,
			},
			Traffic: traffic.Config{
				Ports:                ports,
				LineRate:             10 * units.Gbps,
				Load:                 0.5,
				Pattern:              traffic.Uniform{},
				Sizes:                traffic.Fixed{Size: 1500 * units.Byte},
				LatencySensitiveFrac: 0.2,
				Seed:                 17,
			},
			Duration: dur,
		}
	}
	ms, err := runScenarios(jobs)
	if err != nil {
		return nil, err
	}
	var miceP99 []int64
	for i, m := range ms {
		v := variants[i]
		jitter := units.Duration(m.LatencyMice.P99 - m.LatencyMice.P50)
		tab.AddRow(v.name,
			units.Duration(m.LatencyMice.P50), units.Duration(m.LatencyMice.P99),
			jitter, units.Duration(m.Latency.P50), m.DeliveredFraction())
		res.note("%s: mice p99 %v", v.name, units.Duration(m.LatencyMice.P99))
		miceP99 = append(miceP99, m.LatencyMice.P99)
	}
	res.Tables = append(res.Tables, tab)
	if len(miceP99) == 2 && miceP99[0] > 0 {
		res.note("slow/fast mice p99 ratio: %.0fx", float64(miceP99[1])/float64(miceP99[0]))
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// E3 — hybrid throughput vs skew.

// E3HybridVsSkew sweeps hotspot concentration and compares an EPS-only
// switch, a demand-oblivious TDMA hybrid and a demand-aware greedy hybrid.
func E3HybridVsSkew(sc Scale) (*Result, error) {
	res := &Result{ID: "E3", Title: "Hybrid throughput vs traffic skew"}
	ports := 8
	dur := 4 * units.Millisecond
	if sc == Full {
		ports = 16
		dur = 16 * units.Millisecond
	}
	fracs := []float64{0, 0.5, 0.9}
	if sc == Full {
		fracs = []float64{0, 0.25, 0.5, 0.75, 0.9}
	}
	tab := report.NewTable("ON/OFF load 0.6; EPS provisioned at LineRate/10",
		"hotspot_frac", "system", "delivered_frac", "ocs_share", "mean_lat")
	systems := []struct {
		name string
		cfg  func() fabric.Config
	}{
		{"eps-only", func() fabric.Config {
			return fabric.Config{
				Ports: ports, LineRate: 10 * units.Gbps,
				LinkDelay: 500 * units.Nanosecond,
				Slot:      10 * units.Microsecond, ReconfigTime: units.Microsecond,
				Algorithm: "greedy", Timing: sched.DefaultHardware(), Pipelined: true,
				EnableEPS: true,
				// Force everything onto the EPS.
				Rules: []classify.Rule{{
					Priority: 1, Src: classify.Any, Dst: classify.Any, Class: classify.Any,
					Action: classify.Action{Hint: classify.EPSOnly},
				}},
			}
		}},
		{"tdma-hybrid", func() fabric.Config {
			return fabric.Config{
				Ports: ports, LineRate: 10 * units.Gbps,
				LinkDelay: 500 * units.Nanosecond,
				Slot:      10 * units.Microsecond, ReconfigTime: units.Microsecond,
				Algorithm: "tdma", Timing: sched.DefaultHardware(), Pipelined: true,
				EnableEPS: true, ResidualTimeout: 200 * units.Microsecond,
			}
		}},
		{"greedy-hybrid", func() fabric.Config {
			return fabric.Config{
				Ports: ports, LineRate: 10 * units.Gbps,
				LinkDelay: 500 * units.Nanosecond,
				Slot:      10 * units.Microsecond, ReconfigTime: units.Microsecond,
				Algorithm: "greedy", Timing: sched.DefaultHardware(), Pipelined: true,
				EnableEPS: true, ResidualTimeout: 200 * units.Microsecond,
			}
		}},
	}
	series := map[string]*stats.Series{}
	for _, sys := range systems {
		series[sys.name] = &stats.Series{Name: sys.name}
	}
	type point struct {
		frac float64
		name string
	}
	var points []point
	var jobs []runner.Job
	for _, frac := range fracs {
		var pattern traffic.Pattern = traffic.Uniform{}
		if frac > 0 {
			pattern = traffic.Hotspot{Frac: frac, Spots: 2}
		}
		for _, sys := range systems {
			points = append(points, point{frac, sys.name})
			jobs = append(jobs, runner.Job{
				Fabric: sys.cfg(),
				Traffic: traffic.Config{
					Ports:         ports,
					LineRate:      10 * units.Gbps,
					Load:          0.6,
					Pattern:       pattern,
					Sizes:         traffic.Fixed{Size: 1500 * units.Byte},
					Process:       traffic.OnOff,
					BurstMeanPkts: 32,
					Seed:          23,
				},
				Duration: dur,
			})
		}
	}
	ms, err := runScenarios(jobs)
	if err != nil {
		return nil, err
	}
	for i, m := range ms {
		ocsShare := 0.0
		if m.DeliveredBits > 0 {
			ocsShare = float64(m.OCS.BitsDelivered) / float64(m.DeliveredBits)
		}
		tab.AddRow(points[i].frac, points[i].name, m.DeliveredFraction(), ocsShare,
			units.Duration(m.Latency.Mean))
		series[points[i].name].Append(points[i].frac, m.DeliveredFraction())
	}
	res.Tables = append(res.Tables, tab)
	for _, sys := range systems {
		res.Series = append(res.Series, series[sys.name])
	}
	res.note("demand-aware circuits (greedy) hold goodput as skew rises; EPS-only saturates its 1/10 capacity; TDMA wastes slots on cold pairs")
	return res, nil
}

// ---------------------------------------------------------------------------
// E4 — algorithm scaling (measured wall clock and model cycles).

// E4AlgorithmScaling measures real Schedule() wall time on saturated
// random demand across port counts and sets it against the hardware-depth
// model. It stays serial on purpose: concurrent runs would contend for
// cores and corrupt the wall-clock numbers being reported.
//
//hybridsched:wallclock
func E4AlgorithmScaling(sc Scale) (*Result, error) {
	res := &Result{ID: "E4", Title: "Matching algorithm cost scaling"}
	portCounts := []int{8, 16, 32, 64}
	if sc == Full {
		portCounts = append(portCounts, 128)
	}
	reps := 20
	if sc == Full {
		reps = 100
	}
	tab := report.NewTable("saturated random demand; wall time is this host's CPU",
		"algorithm", "ports", "wall_us_per_schedule", "hw_depth", "sw_ops")
	r := rng.New(777)
	for _, name := range algorithmSubset() {
		for _, n := range portCounts {
			algo, err := newAlgorithm(name, n)
			if err != nil {
				return nil, err
			}
			d := demand.NewMatrix(n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if i != j {
						d.Set(i, j, int64(1+r.Intn(10000)))
					}
				}
			}
			start := time.Now()
			for k := 0; k < reps; k++ {
				algo.Schedule(d)
			}
			wall := time.Since(start).Seconds() / float64(reps) * 1e6
			c := algo.Complexity(n)
			tab.AddRow(name, n, wall, c.HardwareDepth, c.SoftwareOps)
		}
	}
	res.Tables = append(res.Tables, tab)
	res.note("hungarian's n^3 growth vs the iterative arbiters' n^2 is why exact matching is a software-only luxury")
	return res, nil
}

// ---------------------------------------------------------------------------
// E5 — duty cycle vs reconfiguration/slot ratio.

// E5DutyCycle compares the analytic duty cycle slot/(slot+reconfig) with
// the simulated OCS duty cycle and goodput.
func E5DutyCycle(sc Scale) (*Result, error) {
	res := &Result{ID: "E5", Title: "OCS duty cycle vs reconfiguration/slot ratio"}
	ports := 8
	dur := 4 * units.Millisecond
	if sc == Full {
		dur = 16 * units.Millisecond
	}
	slot := 20 * units.Microsecond
	ratios := []float64{0.01, 0.1, 0.5, 1, 2}
	tab := report.NewTable(fmt.Sprintf("slot fixed at %v, permutation traffic load 0.8", slot),
		"reconfig/slot", "reconfig", "analytic_duty", "sim_duty", "delivered_frac")
	curve := &stats.Series{Name: "delivered-vs-ratio"}
	jobs := make([]runner.Job, len(ratios))
	for i, ratio := range ratios {
		jobs[i] = runner.Job{
			Fabric: fabric.Config{
				Ports:        ports,
				LineRate:     10 * units.Gbps,
				LinkDelay:    500 * units.Nanosecond,
				Slot:         slot,
				ReconfigTime: units.Duration(float64(slot) * ratio),
				Algorithm:    "greedy",
				Timing:       sched.DefaultHardware(),
				Pipelined:    true,
			},
			Traffic: traffic.Config{
				Ports:    ports,
				LineRate: 10 * units.Gbps,
				Load:     0.8,
				Pattern:  traffic.NewPermutation(ports, 5),
				Sizes:    traffic.Fixed{Size: 1500 * units.Byte},
				Seed:     31,
			},
			Duration: dur,
		}
	}
	ms, err := runScenarios(jobs)
	if err != nil {
		return nil, err
	}
	for i, m := range ms {
		ratio := ratios[i]
		reconfig := units.Duration(float64(slot) * ratio)
		analytic := float64(slot) / (float64(slot) + float64(reconfig))
		tab.AddRow(ratio, reconfig, analytic, m.DutyCycle, m.DeliveredFraction())
		curve.Append(ratio, m.DeliveredFraction())
	}
	res.Tables = append(res.Tables, tab)
	res.Series = append(res.Series, curve)
	res.note("when reconfiguration approaches the slot length the circuit spends as long dark as lit: goodput collapses — why ns optics need ns schedulers")
	return res, nil
}

// ---------------------------------------------------------------------------
// E6 — synchronization distance in the host-buffered regime.

// E6SyncSlack sweeps the host<->switch link delay under host buffering:
// every grant pays 2x the link delay before data reaches the circuit, so
// goodput decays as synchronization distance grows relative to the slot.
func E6SyncSlack(sc Scale) (*Result, error) {
	res := &Result{ID: "E6", Title: "Host-switch synchronization distance vs goodput (host-buffered)"}
	ports := 8
	dur := 8 * units.Millisecond
	if sc == Full {
		dur = 24 * units.Millisecond
	}
	slot := 50 * units.Microsecond
	delays := []units.Duration{
		500 * units.Nanosecond,
		5 * units.Microsecond,
		12500 * units.Nanosecond,
		25 * units.Microsecond,
	}
	tab := report.NewTable(fmt.Sprintf("host-buffered, slot %v, reconfig 5us, load 0.5", slot),
		"link_delay", "2xdelay/slot", "delivered_frac", "missed_circuit", "lat_p50", "host_peak")
	curve := &stats.Series{Name: "missed-vs-sync-distance"}
	jobs := make([]runner.Job, len(delays))
	for i, d := range delays {
		jobs[i] = runner.Job{
			Fabric: fabric.Config{
				Ports:        ports,
				LineRate:     10 * units.Gbps,
				LinkDelay:    d,
				Slot:         slot,
				ReconfigTime: 5 * units.Microsecond,
				Algorithm:    "islip",
				Timing:       sched.DefaultHardware(),
				Buffer:       fabric.BufferAtHost,
			},
			Traffic: traffic.Config{
				Ports:    ports,
				LineRate: 10 * units.Gbps,
				Load:     0.5,
				Pattern:  traffic.Uniform{},
				Sizes:    traffic.Fixed{Size: 1500 * units.Byte},
				Seed:     37,
			},
			Duration: dur,
		}
	}
	ms, err := runScenarios(jobs)
	if err != nil {
		return nil, err
	}
	for i, m := range ms {
		d := delays[i]
		frac := float64(2*d) / float64(slot)
		tab.AddRow(d, frac, m.DeliveredFraction(), m.MissedCircuit,
			units.Duration(m.Latency.P50), m.PeakHostBuffer)
		curve.Append(frac, float64(m.MissedCircuit)+1)
	}
	res.Tables = append(res.Tables, tab)
	res.Series = append(res.Series, curve)
	res.note("as 2x link delay approaches the slot, host-released packets increasingly arrive after their circuit has moved on (missed_circuit explodes) and buffering/latency grow — the tight-synchronization burden of §2")
	return res, nil
}

// ---------------------------------------------------------------------------
// E7 — crossbar arbiter quality: throughput vs offered load.

// E7CrossbarSchedulers reduces the fabric to a pure input-queued crossbar
// (zero reconfiguration time) and sweeps offered load for each arbiter.
func E7CrossbarSchedulers(sc Scale) (*Result, error) {
	res := &Result{ID: "E7", Title: "Crossbar arbiter throughput vs offered load"}
	ports := 8
	dur := 4 * units.Millisecond
	if sc == Full {
		ports = 16
		dur = 16 * units.Millisecond
	}
	loads := []float64{0.4, 0.7, 0.95}
	if sc == Full {
		loads = []float64{0.3, 0.5, 0.7, 0.8, 0.9, 0.95}
	}
	algs := []string{"tdma", "islip1", "islip", "pim", "wavefront"}
	// Cell-mode crossbar: the slot is exactly one frame time, so each
	// matched pair moves one packet per slot — the classical input-queued
	// switch model iSLIP was designed for.
	tab := report.NewTable("uniform Poisson traffic, zero reconfiguration, slot = 1 frame (cell mode)",
		"algorithm", "load", "delivered_frac", "mean_lat", "p99_lat")
	slot := units.TransmitTime(1500*units.Byte, 10*units.Gbps)
	job := func(a string, load float64, pattern traffic.Pattern, seed uint64) runner.Job {
		return runner.Job{
			Fabric: fabric.Config{
				Ports:        ports,
				LineRate:     10 * units.Gbps,
				LinkDelay:    100 * units.Nanosecond,
				Slot:         slot,
				ReconfigTime: 0,
				Algorithm:    a,
				Timing: sched.Hardware{ClockPeriod: units.Nanosecond,
					PipelineDepth: 1, RequestWire: units.Nanosecond, GrantWire: units.Nanosecond},
				Pipelined: true,
			},
			Traffic: traffic.Config{
				Ports:    ports,
				LineRate: 10 * units.Gbps,
				Load:     load,
				Pattern:  pattern,
				Sizes:    traffic.Fixed{Size: 1500 * units.Byte},
				Seed:     seed,
			},
			Duration: dur,
		}
	}
	type point struct {
		alg  string
		load float64
	}
	var points []point
	var jobs []runner.Job
	for _, load := range loads {
		for _, a := range algs {
			points = append(points, point{a, load})
			jobs = append(jobs, job(a, load, traffic.Uniform{}, 41))
		}
	}
	ms, err := runScenarios(jobs)
	if err != nil {
		return nil, err
	}
	for i, m := range ms {
		tab.AddRow(points[i].alg, points[i].load, m.DeliveredFraction(),
			units.Duration(m.Latency.Mean), units.Duration(m.Latency.P99))
	}
	res.Tables = append(res.Tables, tab)

	// Uniform traffic is TDMA's best case (its rotation IS the traffic
	// matrix). The discriminating workload is a permutation: demand-aware
	// arbiters serve it every slot; the oblivious rotation only hits the
	// right pairing 1/(n-1) of the time.
	permTab := report.NewTable("permutation traffic, load 0.9 (demand-awareness test)",
		"algorithm", "delivered_frac", "mean_lat")
	permJobs := make([]runner.Job, len(algs))
	for i, a := range algs {
		permJobs[i] = job(a, 0.9, traffic.NewPermutation(ports, 5), 43)
	}
	permMs, err := runScenarios(permJobs)
	if err != nil {
		return nil, err
	}
	series := map[string]*stats.Series{}
	for i, m := range permMs {
		a := algs[i]
		permTab.AddRow(a, m.DeliveredFraction(), units.Duration(m.Latency.Mean))
		s := &stats.Series{Name: a}
		s.Append(0.9, m.DeliveredFraction())
		series[a] = s
	}
	res.Tables = append(res.Tables, permTab)
	for _, a := range algs {
		res.Series = append(res.Series, series[a])
	}
	res.note("uniform load: all arbiters sustain it, differing in latency; permutation load: demand-aware arbiters deliver ~100%%, oblivious TDMA ~1/(n-1) — the baseline the framework exists to beat")
	return res, nil
}

// ---------------------------------------------------------------------------
// E8 — demand estimation accuracy.

// E8DemandEstimation feeds identical ON/OFF arrivals to each estimator and
// scores the estimate against the traffic actually arriving in the next
// interval (what the schedule it produces will face).
func E8DemandEstimation(sc Scale) (*Result, error) {
	res := &Result{ID: "E8", Title: "Demand estimation accuracy vs estimator"}
	ports := 8
	dur := 8 * units.Millisecond
	if sc == Full {
		dur = 32 * units.Millisecond
	}
	interval := 100 * units.Microsecond

	type estFactory struct {
		name string
		mk   func() demand.Estimator
		// scale converts the estimator's snapshot volume to an expected
		// per-interval volume (a window of 10 intervals predicts 1/10 of
		// its sum for the next interval).
		scale float64
	}
	factories := []estFactory{
		{"window-100us", func() demand.Estimator { return demand.NewWindow(ports, 100*units.Microsecond) }, 1},
		{"window-1ms", func() demand.Estimator { return demand.NewWindow(ports, units.Millisecond) }, 0.1},
		{"ewma-0.2", func() demand.Estimator { return demand.NewEWMA(ports, 0.2, interval) }, 1},
		{"ewma-0.8", func() demand.Estimator { return demand.NewEWMA(ports, 0.8, interval) }, 1},
	}
	tab := report.NewTable("ON/OFF traffic, load 0.6; error vs next-interval arrivals",
		"estimator", "mean_rel_error", "intervals")
	type row struct {
		meanErr   float64
		intervals int
	}
	rows, err := runner.Map(pool, len(factories), func(fi int) (row, error) {
		f := factories[fi]
		est := f.mk()
		// Replay the same traffic into the estimator and collect actual
		// per-interval arrival matrices.
		gen, err := traffic.New(traffic.Config{
			Ports:    ports,
			LineRate: 10 * units.Gbps,
			Load:     0.6,
			Pattern:  traffic.Hotspot{Frac: 0.5, Spots: 2},
			Sizes:    traffic.Fixed{Size: 1500 * units.Byte},
			Process:  traffic.OnOff,
			// Long bursts (~300us at line rate) so that an estimator
			// with a fresh view can actually predict the next interval;
			// the freshness of the view is what is being scored.
			BurstMeanPkts: 256,
			Until:         units.Time(dur),
			Seed:          53,
		})
		if err != nil {
			return row{}, err
		}
		s := sim.New()
		var actual []*demand.Matrix
		var snapshots []*demand.Matrix
		cur := demand.NewMatrix(ports)
		gen.Start(s, func(p *packet.Packet) {
			est.Observe(s.Now(), int(p.Src), int(p.Dst), int64(p.Size))
			cur.Add(int(p.Src), int(p.Dst), int64(p.Size))
		})
		nTicks := int(int64(dur) / int64(interval))
		for k := 1; k <= nTicks; k++ {
			s.At(units.Time(int64(interval)*int64(k)), func() {
				snapshots = append(snapshots, est.Snapshot(s.Now()))
				actual = append(actual, cur)
				cur = demand.NewMatrix(ports)
			})
		}
		s.Run()
		// Score snapshot k against arrivals in interval k+1 (what the
		// schedule computed from snapshot k would serve).
		var errSum float64
		var count int
		for k := 0; k+1 < len(snapshots); k++ {
			e := relErrorScaled(snapshots[k], actual[k+1], f.scale)
			if !math.IsNaN(e) {
				errSum += e
				count++
			}
		}
		if count == 0 {
			return row{}, fmt.Errorf("experiments: no scored intervals for %s", f.name)
		}
		return row{errSum / float64(count), count}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		tab.AddRow(factories[i].name, r.meanErr, r.intervals)
	}
	res.Tables = append(res.Tables, tab)
	res.note("shorter windows track ON/OFF bursts better; heavy smoothing lags — the estimation-freshness term of scheduler latency")
	return res, nil
}

// relError returns ||est-actual||_1 / ||actual||_1 normalized per matrix,
// NaN when the actual interval is empty.
func relError(est, actual *demand.Matrix) float64 {
	return relErrorScaled(est, actual, 1)
}

// relErrorScaled is relError with the estimate multiplied by scale first.
func relErrorScaled(est, actual *demand.Matrix, scale float64) float64 {
	var num, den float64
	n := actual.N()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a := float64(actual.At(i, j))
			e := float64(est.At(i, j)) * scale
			num += math.Abs(e - a)
			den += a
		}
	}
	if den == 0 {
		return math.NaN()
	}
	return num / den
}
