package experiments

import (
	"fmt"

	"hybridsched/internal/fabric"
	"hybridsched/internal/runner"
	"hybridsched/internal/sched"
	"hybridsched/internal/traffic"
	"hybridsched/internal/units"
	"hybridsched/report"
)

func init() {
	Registry = append(Registry, Experiment{
		ID: "W1", Run: W1EmpiricalWorkloads,
		Short: "Empirical flow workloads: schedulers across published flow-size distributions",
	})
}

// W1EmpiricalWorkloads evaluates the crossbar schedulers under the
// flow-level empirical workloads (web search, data mining, Hadoop, cache
// follower) — the paper's "real traffic workloads" axis. Every
// distribution offers the same load; what changes is its composition:
// how much rides a few elephants versus many mice, which is precisely
// what separates a circuit-friendly workload from an EPS-friendly one.
func W1EmpiricalWorkloads(sc Scale) (*Result, error) {
	res := &Result{ID: "W1", Title: "Empirical flow-level workloads (published distributions)"}

	dists := []*traffic.Empirical{traffic.WebSearch(), traffic.Hadoop(), traffic.CacheFollower()}
	algs := []string{"islip", "greedy", "tdma"}
	ports := 8
	dur := 10 * units.Millisecond
	if sc == Full {
		// Data-mining flows average tens of megabytes; only the full
		// scale runs long enough to see a stable population of them.
		dists = append(dists, traffic.DataMining())
		ports = 16
		dur = 100 * units.Millisecond
	}

	distTab := report.NewTable("flow-size distributions (per-flow bytes)",
		"distribution", "mean_flow", "p50_knot", "max_flow")
	for _, d := range dists {
		pts := d.CDF().Points()
		var p50 float64
		for _, k := range pts {
			if k.Cum >= 0.5 {
				p50 = k.Value
				break
			}
		}
		distTab.AddRow(d.Name(), d.Mean(),
			units.Size(p50*float64(units.Byte)), units.Size(pts[len(pts)-1].Value*float64(units.Byte)))
	}
	res.Tables = append(res.Tables, distTab)

	type point struct {
		dist *traffic.Empirical
		alg  string
	}
	var points []point
	var jobs []runner.Job
	for _, d := range dists {
		for _, alg := range algs {
			points = append(points, point{d, alg})
			jobs = append(jobs, runner.Job{
				Fabric: fabric.Config{
					Ports:        ports,
					LineRate:     10 * units.Gbps,
					LinkDelay:    500 * units.Nanosecond,
					Slot:         10 * units.Microsecond,
					ReconfigTime: units.Microsecond,
					Algorithm:    alg,
					Timing:       sched.DefaultHardware(),
					Pipelined:    true,
				},
				Traffic: traffic.Config{
					Ports:     ports,
					LineRate:  10 * units.Gbps,
					Load:      0.5,
					Pattern:   traffic.Uniform{},
					Process:   traffic.FlowArrivals,
					FlowSizes: d,
					Seed:      9,
				},
				Duration: dur,
			})
		}
	}
	ms, err := runScenarios(jobs)
	if err != nil {
		return nil, err
	}
	tab := report.NewTable(
		fmt.Sprintf("flow-level arrivals, %d ports x 10 Gbps, load 0.5, %v offered", ports, dur),
		"distribution", "algorithm", "delivered_frac", "lat_p50_us", "lat_p99_us", "peak_switch_buf")
	for i, m := range ms {
		p := points[i]
		tab.AddRow(p.dist.Name(), p.alg, m.DeliveredFraction(),
			units.Duration(m.Latency.P50).Microseconds(),
			units.Duration(m.Latency.P99).Microseconds(),
			m.PeakSwitchBuffer)
	}
	res.Tables = append(res.Tables, tab)
	res.note("the same offered load, recomposed: heavier-tailed distributions concentrate bytes in fewer, longer flows — the regime where circuit scheduling amortizes and packet arbiters queue")
	return res, nil
}
