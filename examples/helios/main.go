// Helios-style hybrid: greedy largest-demand-first circuits plus an
// under-provisioned EPS for the residue, evaluated against an EPS-only
// baseline under skewed bursty traffic — the workload class the hybrid
// architecture papers (Helios [2], c-Through [5]) were built for.
//
// The experiment shows the hybrid's goodput advantage growing with skew,
// and that the advantage requires a demand-aware scheduler (compare the
// tdma row).
package main

import (
	"fmt"
	"log"
	"os"

	"hybridsched"
	"hybridsched/report"
)

func run(name, algorithm string, epsOnly bool, skew float64) (hybridsched.Metrics, error) {
	ports := 16
	cfg := hybridsched.FabricConfig{
		Ports:        ports,
		LineRate:     10 * hybridsched.Gbps,
		LinkDelay:    500 * hybridsched.Nanosecond,
		Slot:         10 * hybridsched.Microsecond,
		ReconfigTime: 1 * hybridsched.Microsecond,
		Algorithm:    algorithm,
		Timing:       hybridsched.DefaultHardware(),
		Pipelined:    true,
		EnableEPS:    true,
		// Aged residue (circuits never scheduled it) rides the EPS.
		ResidualTimeout: 200 * hybridsched.Microsecond,
	}
	if epsOnly {
		cfg.Rules = []hybridsched.Rule{{
			Priority: 1, Src: hybridsched.Any, Dst: hybridsched.Any, Class: hybridsched.Any,
			Action: hybridsched.RuleAction{Hint: hybridsched.EPSOnly},
		}}
	}
	var pattern hybridsched.Pattern = hybridsched.Uniform{}
	if skew > 0 {
		pattern = hybridsched.Hotspot{Frac: skew, Spots: 2}
	}
	return hybridsched.Scenario{
		Fabric: cfg,
		Traffic: hybridsched.TrafficConfig{
			Ports:         ports,
			LineRate:      10 * hybridsched.Gbps,
			Load:          0.6,
			Pattern:       pattern,
			Sizes:         hybridsched.Fixed{Size: 1500 * hybridsched.Byte},
			Process:       hybridsched.OnOff,
			BurstMeanPkts: 32,
			Seed:          99,
		},
		Duration: 8 * hybridsched.Millisecond,
	}.Run()
}

func main() {
	tab := report.NewTable(
		"Helios-style hybrid vs EPS-only (load 0.6, ON/OFF bursts, EPS at 1 Gbps/port)",
		"skew", "system", "delivered_frac", "ocs_share", "p99_latency")
	for _, skew := range []float64{0, 0.5, 0.9} {
		for _, sys := range []struct {
			name, alg string
			epsOnly   bool
		}{
			{"eps-only", "greedy", true},
			{"tdma-hybrid", "tdma", false},
			{"helios-greedy", "greedy", false},
		} {
			m, err := run(sys.name, sys.alg, sys.epsOnly, skew)
			if err != nil {
				log.Fatal(err)
			}
			share := 0.0
			if m.DeliveredBits > 0 {
				share = float64(m.OCS.BitsDelivered) / float64(m.DeliveredBits)
			}
			tab.AddRow(skew, sys.name, m.DeliveredFraction(), share,
				hybridsched.Duration(m.Latency.P99))
		}
	}
	tab.Render(os.Stdout)
	fmt.Println("\nreading: the greedy hybrid holds goodput as skew rises because the")
	fmt.Println("largest-demand-first matching keeps circuits on the hot pairs; the")
	fmt.Println("EPS-only switch is capped by its 10x-thinner electrical capacity.")
}
