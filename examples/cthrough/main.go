// c-Through-style operation: the slow-scheduling regime of Figure 1.
// Packets are buffered at the *hosts* (c-Through enlarged socket buffers
// precisely because the ToR could not hold a reconfiguration's worth of
// data), a software scheduler polls demand and computes an optimal
// max-weight matching, and grants release host traffic onto
// millisecond-class circuits.
//
// Contrast with the hardware/switch-buffered run of the same workload: the
// point of the paper is the three-orders-of-magnitude gap in both latency
// and buffering placement.
package main

import (
	"fmt"
	"log"
	"os"

	"hybridsched"
	"hybridsched/report"
)

func run(regime string) (hybridsched.Metrics, error) {
	ports := 16
	cfg := hybridsched.FabricConfig{
		Ports:     ports,
		LineRate:  10 * hybridsched.Gbps,
		LinkDelay: 2 * hybridsched.Microsecond, // rack-scale control distance
		Algorithm: "hungarian",                 // c-Through solves max-weight exactly
	}
	switch regime {
	case "c-through (host-buffered, software, ms optics)":
		cfg.Buffer = hybridsched.BufferAtHost
		cfg.Timing = hybridsched.DefaultSoftware()
		cfg.Slot = 3 * hybridsched.Millisecond // amortize the ms-scale loop
		cfg.ReconfigTime = hybridsched.Millisecond
	case "hardware (switch-buffered, us optics)":
		cfg.Buffer = hybridsched.BufferAtSwitch
		cfg.Timing = hybridsched.DefaultHardware()
		cfg.Pipelined = true
		cfg.Slot = 10 * hybridsched.Microsecond
		cfg.ReconfigTime = hybridsched.Microsecond
	}
	return hybridsched.Scenario{
		Fabric: cfg,
		Traffic: hybridsched.TrafficConfig{
			Ports:         ports,
			LineRate:      10 * hybridsched.Gbps,
			Load:          0.4,
			Pattern:       hybridsched.Hotspot{Frac: 0.6, Spots: 3},
			Sizes:         hybridsched.Fixed{Size: 1500 * hybridsched.Byte},
			Process:       hybridsched.OnOff,
			BurstMeanPkts: 64,
			Seed:          7,
		},
		Duration: 30 * hybridsched.Millisecond,
		Drain:    1.0,
	}.Run()
}

func main() {
	tab := report.NewTable("c-Through regime vs hardware regime, identical workload",
		"system", "delivered_frac", "p50_latency", "p99_latency",
		"peak_host_buf", "peak_switch_buf", "sched_cycles")
	for _, regime := range []string{
		"c-through (host-buffered, software, ms optics)",
		"hardware (switch-buffered, us optics)",
	} {
		m, err := run(regime)
		if err != nil {
			log.Fatal(err)
		}
		tab.AddRow(regime, m.DeliveredFraction(),
			hybridsched.Duration(m.Latency.P50), hybridsched.Duration(m.Latency.P99),
			m.PeakHostBuffer, m.PeakSwitchBuffer, m.Loop.Cycles)
	}
	tab.Render(os.Stdout)
	fmt.Println("\nreading: same traffic, two worlds. The software loop buffers")
	fmt.Println("megabytes at hosts and holds packets for milliseconds; the hardware")
	fmt.Println("loop keeps kilobytes in the ToR and delivers in microseconds —")
	fmt.Println("Figure 1's two regimes, measured.")
}
