// Scenariopack: experiments as data. A declarative JSON config names a
// complete scenario — fabric geometry, algorithm, workload shape and the
// time-varying dynamics layered on top — so adversarial workloads can be
// added, audited and swept without a code change.
//
// The program loads one inline config (hotspot churn: a permutation
// matrix that rotates every period, the adversarial dynamic for
// schedulers that exploit a stable matrix), runs it against two
// algorithms via the WithScenarioConfig option, then writes a two-file
// pack to a temporary directory and sweeps it with LoadScenarioPack —
// the same loader `sweep -scenario-dir` uses.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"hybridsched"
	"hybridsched/report"
)

// churnConfig is one declarative scenario document. The same bytes could
// live in a .json file next to the binary; see testdata/scenarios/ in
// the repository root for the committed pack.
const churnConfig = `{
  "name": "hotspot_churn",
  "ports": 16,
  "lineRate": "10Gbps",
  "slot": "10us",
  "reconfig": "1us",
  "seed": 7,
  "duration": "2ms",
  "workload": {
    "load": 0.6,
    "pattern": { "kind": "hotspot-churn", "period": "200us" },
    "sizes": { "kind": "trimodal" }
  }
}`

// incastConfig joins churnConfig in the pack-directory half of the demo.
const incastConfig = `{
  "name": "incast",
  "ports": 16,
  "lineRate": "10Gbps",
  "slot": "10us",
  "reconfig": "1us",
  "seed": 7,
  "duration": "2ms",
  "workload": {
    "load": 0.4,
    "pattern": { "kind": "incast", "period": "200us", "duty": 0.25 },
    "sizes": { "kind": "trimodal" }
  }
}`

func main() {
	// One config, two algorithms: WithScenarioConfig applies the document
	// as the scenario base; later options override single dimensions.
	cfg, err := hybridsched.LoadScenarioConfig(strings.NewReader(churnConfig))
	if err != nil {
		log.Fatal(err)
	}
	tab := report.NewTable("hotspot churn (matrix rotates every 200us), 16 ports x 10 Gbps",
		"algorithm", "delivered_frac", "lat_p50_us", "lat_p99_us")
	for _, alg := range []string{"islip", "greedy"} {
		sc, err := hybridsched.NewScenario(
			hybridsched.WithScenarioConfig(cfg),
			hybridsched.WithAlgorithm(alg),
		)
		if err != nil {
			log.Fatal(err)
		}
		m, err := sc.Run()
		if err != nil {
			log.Fatal(err)
		}
		tab.AddRow(alg, m.DeliveredFraction(),
			hybridsched.Duration(m.Latency.P50).Microseconds(),
			hybridsched.Duration(m.Latency.P99).Microseconds())
	}
	tab.Render(os.Stdout)

	// A pack directory: every *.json under it, loaded in filename order,
	// run on the deterministic worker pool. The CSV is byte-identical at
	// any worker count.
	dir, err := os.MkdirTemp("", "scenariopack")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	for name, doc := range map[string]string{
		"hotspot_churn.json": churnConfig,
		"incast.json":        incastConfig,
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(doc), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	scs, err := hybridsched.LoadScenarioPack(dir)
	if err != nil {
		log.Fatal(err)
	}
	ms, err := hybridsched.RunScenarios(scs, 0)
	if err != nil {
		log.Fatal(err)
	}
	packTab := report.NewTable("the same pack, as a sweep (RunScenarios over LoadScenarioPack)",
		"scenario", "delivered_frac", "lat_p99_us")
	for i, m := range ms {
		packTab.AddRow(scs[i].Name, m.DeliveredFraction(),
			hybridsched.Duration(m.Latency.P99).Microseconds())
	}
	fmt.Println()
	packTab.Render(os.Stdout)
}
