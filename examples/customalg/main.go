// Customalg: register a scheduling algorithm from *outside* the module's
// internals — the paper's "users implement novel design in the scheduling
// logic module" contract, exercised end to end on the public API only:
//
//  1. implement Algorithm against DemandReader and install it with
//     RegisterAlgorithm; the name then works everywhere a built-in does,
//  2. build scenarios with the validating NewScenario options builder,
//  3. stream time-series Samples through an Observer while a run is in
//     flight,
//  4. abort a diverging run mid-simulation with RunContext.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"

	"hybridsched"
	"hybridsched/report"
)

// rotlqf is the user's scheduling logic: longest-queue-first with a
// rotating output priority. Outputs claim their deepest requesting input,
// but the output that goes first rotates every slot, so no port pair can
// monopolize ties. The rotation pointer is inter-slot state — Reset
// clears it, demonstrating the full Algorithm contract.
type rotlqf struct {
	next int
}

func (a *rotlqf) Name() string { return "rotlqf" }
func (a *rotlqf) Reset()       { a.next = 0 }

func (a *rotlqf) Complexity(n int) hybridsched.Complexity {
	// Parallel max-trees per output, one round per rank: ~2 log n steps
	// in hardware, n^2 scalar ops in software.
	depth := 1
	for v := 1; v < n; v <<= 1 {
		depth++
	}
	return hybridsched.Complexity{HardwareDepth: 2 * depth, SoftwareOps: n * n}
}

func (a *rotlqf) Schedule(d hybridsched.DemandReader) hybridsched.Matching {
	n := d.N()
	m := hybridsched.NewMatching(n)
	inUsed := make([]bool, n)
	outUsed := make([]bool, n)
	for round := 0; round < n; round++ {
		progress := false
		for k := 0; k < n; k++ {
			j := (a.next + k) % n
			if outUsed[j] {
				continue
			}
			bestI, bestV := -1, int64(0)
			for i := 0; i < n; i++ {
				if !inUsed[i] && d.At(i, j) > bestV {
					bestI, bestV = i, d.At(i, j)
				}
			}
			if bestI >= 0 {
				m[bestI] = j
				inUsed[bestI] = true
				outUsed[j] = true
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	a.next = (a.next + 1) % n
	return m
}

func init() {
	hybridsched.RegisterAlgorithm("rotlqf", func(_ int, _ uint64) hybridsched.Algorithm {
		return &rotlqf{}
	})
}

// scenario builds the shared workload for the given algorithm, attaching
// an observer when one is supplied.
func scenario(alg string, every hybridsched.Duration, obs hybridsched.Observer) (hybridsched.Scenario, error) {
	opts := []hybridsched.Option{
		hybridsched.WithPorts(16),
		hybridsched.WithLineRate(10 * hybridsched.Gbps),
		hybridsched.WithLinkDelay(500 * hybridsched.Nanosecond),
		hybridsched.WithSlot(10 * hybridsched.Microsecond),
		hybridsched.WithReconfigTime(hybridsched.Microsecond),
		hybridsched.WithAlgorithm(alg),
		hybridsched.WithTiming(hybridsched.DefaultHardware()),
		hybridsched.WithPipelined(true),
		hybridsched.WithLoad(0.6),
		hybridsched.WithPattern(hybridsched.Hotspot{Frac: 0.5, Spots: 3}),
		hybridsched.WithSizes(hybridsched.Fixed{Size: 1500 * hybridsched.Byte}),
		hybridsched.WithProcess(hybridsched.OnOff),
		hybridsched.WithBursts(32, 0),
		hybridsched.WithSeed(42),
		hybridsched.WithDuration(8 * hybridsched.Millisecond),
	}
	if obs != nil {
		opts = append(opts, hybridsched.WithObserver(every, obs))
	}
	return hybridsched.NewScenario(opts...)
}

func main() {
	fmt.Printf("registered algorithms now include the plug-in: %v\n\n", hybridsched.Algorithms())

	// A/B the plug-in against iSLIP on the same skewed bursty workload,
	// streaming a time series from the plug-in's run while it executes.
	stream := report.NewTable("rotlqf run, sampled every 2ms (simulated)",
		"t", "delivered", "switch_queue", "p99_so_far", "ocs_duty")
	observer := func(s hybridsched.Sample) {
		stream.AddRow(s.Time, s.Delivered, s.SwitchQueuedBits,
			s.LatencyP99, fmt.Sprintf("%.3f", s.OCSDutyCycle))
	}

	tab := report.NewTable("custom plug-in vs built-in (16 ports, hotspot ON/OFF, load 0.6)",
		"scheduling logic", "delivered_frac", "p50", "p99")
	for _, alg := range []string{"islip", "rotlqf"} {
		var obs hybridsched.Observer
		if alg == "rotlqf" {
			obs = observer
		}
		sc, err := scenario(alg, 2*hybridsched.Millisecond, obs)
		if err != nil {
			log.Fatal(err)
		}
		m, err := sc.Run()
		if err != nil {
			log.Fatal(err)
		}
		tab.AddRow(alg, m.DeliveredFraction(),
			hybridsched.Duration(m.Latency.P50), hybridsched.Duration(m.Latency.P99))
	}
	tab.Render(os.Stdout)
	fmt.Println()
	stream.Render(os.Stdout)

	// Streaming plus context: watch a deliberately overloaded run and
	// abort it mid-simulation the moment the ToR backlog diverges,
	// instead of paying for the full simulation.
	ctx, cancel := context.WithCancel(context.Background())
	fired := false
	watchdog, err := scenario("rotlqf", 100*hybridsched.Microsecond, func(s hybridsched.Sample) {
		// Cancellation lands at the next check boundary; samples until
		// then still stream, so fire the watchdog only once.
		if !fired && s.SwitchQueuedBits > 20*hybridsched.Megabyte {
			fired = true
			fmt.Printf("\nwatchdog: backlog %v at t=%v — aborting the run\n",
				s.SwitchQueuedBits, s.Time)
			cancel()
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	// Near-full load with 90% of it aimed at a single hot output: the
	// port is oversubscribed ~13x, so queues grow without bound until
	// the watchdog fires.
	watchdog.Traffic.Load = 0.99
	watchdog.Traffic.Pattern = hybridsched.Hotspot{Frac: 0.9, Spots: 1}
	watchdog.Duration = 200 * hybridsched.Millisecond
	if _, err := watchdog.RunContext(ctx); errors.Is(err, context.Canceled) {
		fmt.Println("run canceled mid-simulation via RunContext — no result, no wasted cores")
	} else if err != nil {
		log.Fatal(err)
	} else {
		fmt.Println("run completed before the watchdog threshold was reached")
	}
}
