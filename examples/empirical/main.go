// Empirical workloads: drive the hybrid switch with the published
// data-center flow-size distributions, then capture one workload as a
// trace and replay it bit-identically against several schedulers — the
// controlled-experiment workflow the trace layer exists for. Everything
// here is the public API: empirical distributions (WebSearch, Hadoop,
// CacheFollower), the flow-level arrival process, and the
// CaptureTrace/WithWorkloadRecords pair.
package main

import (
	"bytes"
	"fmt"
	"log"

	"hybridsched"
)

// scenario builds the common fabric with the given algorithm and flow
// workload.
func scenario(alg string, flows *hybridsched.Empirical) (hybridsched.Scenario, error) {
	return hybridsched.NewScenario(
		hybridsched.WithPorts(8),
		hybridsched.WithLineRate(10*hybridsched.Gbps),
		hybridsched.WithLinkDelay(500*hybridsched.Nanosecond),
		hybridsched.WithSlot(10*hybridsched.Microsecond),
		hybridsched.WithReconfigTime(1*hybridsched.Microsecond),
		hybridsched.WithAlgorithm(alg),
		hybridsched.WithTiming(hybridsched.DefaultHardware()),
		hybridsched.WithPipelined(true),
		hybridsched.WithLoad(0.5),
		hybridsched.WithPattern(hybridsched.Uniform{}),
		hybridsched.WithProcess(hybridsched.FlowArrivals),
		hybridsched.WithFlowSizes(flows),
		hybridsched.WithSeed(1),
		hybridsched.WithDuration(5*hybridsched.Millisecond),
	)
}

func main() {
	// Part 1 — the same offered load, recomposed. Each distribution
	// carries 0.5 load, but a Hadoop port sends hundreds of small RPC
	// flows where a web-search port sends a few multi-megabyte ones.
	fmt.Println("empirical: flow-level workloads on an 8-port hybrid switch (islip)")
	fmt.Printf("  %-24s %-12s %-12s %-10s\n", "distribution", "mean_flow", "flows", "p99_us")
	for _, dist := range []*hybridsched.Empirical{
		hybridsched.WebSearch(), hybridsched.Hadoop(), hybridsched.CacheFollower(),
	} {
		sc, err := scenario("islip", dist)
		if err != nil {
			log.Fatal(err)
		}
		m, err := sc.Run()
		if err != nil {
			log.Fatal(err)
		}
		// Injected/mean flow size approximates the flow count.
		flows := float64(m.InjectedBits) / float64(dist.Mean())
		fmt.Printf("  %-24s %-12v %-12.0f %-10.1f\n",
			dist.Name(), dist.Mean(), flows,
			hybridsched.Duration(m.Latency.P99).Microseconds())
	}

	// Part 2 — capture once, replay everywhere. Record the web-search
	// workload, then drive the identical packet sequence through three
	// schedulers: any difference in the numbers is the scheduler, not
	// the workload's randomness.
	var tape bytes.Buffer
	capture, err := scenario("islip", hybridsched.WebSearch())
	if err != nil {
		log.Fatal(err)
	}
	capture.CaptureTo = &tape
	if _, err := capture.Run(); err != nil {
		log.Fatal(err)
	}
	records, err := hybridsched.ReadTrace(bytes.NewReader(tape.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncaptured websearch workload: %d packets, %d trace bytes\n",
		len(records), tape.Len())
	fmt.Println("replayed bit-identically against each scheduler:")
	fmt.Printf("  %-12s %-16s %-10s %-10s\n", "algorithm", "delivered_frac", "p50_us", "p99_us")
	for _, alg := range []string{"islip", "greedy", "maxmin"} {
		sc, err := hybridsched.NewScenario(
			hybridsched.WithPorts(8),
			hybridsched.WithLineRate(10*hybridsched.Gbps),
			hybridsched.WithLinkDelay(500*hybridsched.Nanosecond),
			hybridsched.WithSlot(10*hybridsched.Microsecond),
			hybridsched.WithReconfigTime(1*hybridsched.Microsecond),
			hybridsched.WithAlgorithm(alg),
			hybridsched.WithTiming(hybridsched.DefaultHardware()),
			hybridsched.WithPipelined(true),
			hybridsched.WithSeed(1),
			hybridsched.WithDuration(5*hybridsched.Millisecond),
			hybridsched.WithWorkloadRecords(records),
		)
		if err != nil {
			log.Fatal(err)
		}
		m, err := sc.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %-16.4f %-10.1f %-10.1f\n",
			alg, m.DeliveredFraction(),
			hybridsched.Duration(m.Latency.P50).Microseconds(),
			hybridsched.Duration(m.Latency.P99).Microseconds())
	}
	fmt.Println("\n(WithWorkloadTrace(path) loads the same records from a file;")
	fmt.Println(" the golden-trace regression suite in testdata/ is built on this.)")
}
