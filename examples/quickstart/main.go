// Quickstart: build the paper's hybrid switch, offer a plain workload, and
// read the headline numbers — the 60-second tour of the public API.
package main

import (
	"fmt"
	"log"

	"hybridsched"
	"hybridsched/internal/sched"
	"hybridsched/internal/traffic"
	"hybridsched/internal/units"
)

func main() {
	// A 16-port hybrid ToR: 10 Gbps per port, microsecond optics, a
	// hardware iSLIP scheduler pipelined with transmission.
	scenario := hybridsched.Scenario{
		Fabric: hybridsched.FabricConfig{
			Ports:        16,
			LineRate:     10 * units.Gbps,
			LinkDelay:    500 * units.Nanosecond,
			Slot:         10 * units.Microsecond,
			ReconfigTime: 1 * units.Microsecond,
			Algorithm:    "islip",
			Timing:       sched.DefaultHardware(),
			Pipelined:    true,
		},
		Traffic: hybridsched.TrafficConfig{
			Ports:    16,
			LineRate: 10 * units.Gbps,
			Load:     0.6,
			Pattern:  traffic.Uniform{},
			Sizes:    traffic.Fixed{Size: 1500 * units.Byte},
			Seed:     1,
		},
		Duration: 5 * units.Millisecond,
	}

	m, err := scenario.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("quickstart: 16-port hybrid switch, hardware iSLIP scheduler")
	fmt.Printf("  delivered:        %d of %d packets (%.1f%%)\n",
		m.Delivered, m.Injected, 100*m.DeliveredFraction())
	fmt.Printf("  latency:          p50 %v, p99 %v\n",
		units.Duration(m.Latency.P50), units.Duration(m.Latency.P99))
	fmt.Printf("  ToR buffering:    peak %v (the Figure 1 'switch buffering' point)\n",
		m.PeakSwitchBuffer)
	fmt.Printf("  OCS duty cycle:   %.3f over %d reconfigurations\n",
		m.DutyCycle, m.OCS.Configures)
	fmt.Printf("  scheduler:        %d cycles, grant staleness p50 %v\n",
		m.Loop.Cycles, units.Duration(m.Loop.Staleness.P50))
	fmt.Println()
	fmt.Printf("registered scheduling algorithms: %v\n", hybridsched.Algorithms())
}
