// Quickstart: build the paper's hybrid switch, offer a plain workload, and
// read the headline numbers — the 60-second tour of the public API. Note
// that everything here comes from the root hybridsched package; no
// internal import is needed (or possible) downstream.
package main

import (
	"fmt"
	"log"

	"hybridsched"
)

func main() {
	// A 16-port hybrid ToR: 10 Gbps per port, microsecond optics, a
	// hardware iSLIP scheduler pipelined with transmission. The builder
	// validates eagerly: a typo'd algorithm name or a missing timing
	// model fails here, not minutes into a sweep.
	scenario, err := hybridsched.NewScenario(
		hybridsched.WithPorts(16),
		hybridsched.WithLineRate(10*hybridsched.Gbps),
		hybridsched.WithLinkDelay(500*hybridsched.Nanosecond),
		hybridsched.WithSlot(10*hybridsched.Microsecond),
		hybridsched.WithReconfigTime(1*hybridsched.Microsecond),
		hybridsched.WithAlgorithm("islip"),
		hybridsched.WithTiming(hybridsched.DefaultHardware()),
		hybridsched.WithPipelined(true),
		hybridsched.WithLoad(0.6),
		hybridsched.WithPattern(hybridsched.Uniform{}),
		hybridsched.WithSizes(hybridsched.Fixed{Size: 1500 * hybridsched.Byte}),
		hybridsched.WithSeed(1),
		hybridsched.WithDuration(5*hybridsched.Millisecond),
	)
	if err != nil {
		log.Fatal(err)
	}

	m, err := scenario.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("quickstart: 16-port hybrid switch, hardware iSLIP scheduler")
	fmt.Printf("  delivered:        %d of %d packets (%.1f%%)\n",
		m.Delivered, m.Injected, 100*m.DeliveredFraction())
	fmt.Printf("  latency:          p50 %v, p99 %v\n",
		hybridsched.Duration(m.Latency.P50), hybridsched.Duration(m.Latency.P99))
	fmt.Printf("  ToR buffering:    peak %v (the Figure 1 'switch buffering' point)\n",
		m.PeakSwitchBuffer)
	fmt.Printf("  OCS duty cycle:   %.3f over %d reconfigurations\n",
		m.DutyCycle, m.OCS.Configures)
	fmt.Printf("  scheduler:        %d cycles, grant staleness p50 %v\n",
		m.Loop.Cycles, hybridsched.Duration(m.Loop.Staleness.P50))
	fmt.Println()
	fmt.Printf("registered scheduling algorithms: %v\n", hybridsched.Algorithms())
}
