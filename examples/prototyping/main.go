// Prototyping: the paper's whole point is "a framework for rapid
// prototyping and assessment of new hardware-based scheduling algorithms"
// where "the users implement novel design in the scheduling logic module".
// This example does exactly that against the platform contract, using only
// the public API:
//
//  1. implement a new matching algorithm (a longest-queue-first arbiter),
//  2. register it with the scheduling-logic registry,
//  3. bring up the emulated NetFPGA-style device through its register
//     file, select the new algorithm by register write,
//  4. drive traffic and read the counters back — then A/B it against
//     iSLIP on the same workload.
package main

import (
	"fmt"
	"log"
	"os"

	"hybridsched"
	"hybridsched/report"
)

// lqf is the user's novel scheduling logic: a longest-queue-first maximal
// matching. Each output picks the input with the deepest VOQ; conflicts
// resolve by depth. Simple, stateless, and plausible in hardware (parallel
// max-trees, depth ~ 2 log n).
type lqf struct{ n int }

func (l *lqf) Name() string { return "lqf" }
func (l *lqf) Reset()       {}

func (l *lqf) Complexity(n int) hybridsched.Complexity {
	return hybridsched.Complexity{HardwareDepth: 2 * log2(n), SoftwareOps: n * n}
}

func log2(n int) int {
	k, v := 0, 1
	for v < n {
		v <<= 1
		k++
	}
	if k == 0 {
		return 1
	}
	return k
}

func (l *lqf) Schedule(d hybridsched.DemandReader) hybridsched.Matching {
	m := hybridsched.NewMatching(l.n)
	inUsed := make([]bool, l.n)
	// Outputs claim inputs in order of their deepest request; iterate a
	// few rounds to make the matching maximal.
	for round := 0; round < l.n; round++ {
		progress := false
		for j := 0; j < l.n; j++ {
			taken := false
			for i := 0; i < l.n; i++ {
				if m[i] == j {
					taken = true
				}
			}
			if taken {
				continue
			}
			bestI, bestV := -1, int64(0)
			for i := 0; i < l.n; i++ {
				if !inUsed[i] && d.At(i, j) > bestV {
					bestI, bestV = i, d.At(i, j)
				}
			}
			if bestI >= 0 {
				m[bestI] = j
				inUsed[bestI] = true
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	return m
}

// register the user design in the scheduling-logic slot.
func init() {
	hybridsched.RegisterAlgorithm("lqf", func(n int, _ uint64) hybridsched.Algorithm {
		return &lqf{n: n}
	})
}

// bringUp programs a device for the given algorithm and runs a skewed
// workload through it.
func bringUp(algorithm string) (delivered, drops, cycles uint32, err error) {
	s := hybridsched.NewSimulator()
	dev := hybridsched.NewDevice(s)

	// Register-level bring-up, exactly as a driver would do it.
	w := func(addr, v uint32) {
		if err == nil {
			err = dev.Write32(addr, v)
		}
	}
	w(hybridsched.RegPorts, 16)
	w(hybridsched.RegLineMbps, 10_000)
	w(hybridsched.RegSlotNs, 10_000)  // 10 us slots
	w(hybridsched.RegReconfNs, 1_000) // 1 us optics
	idx := -1
	for i, n := range hybridsched.Algorithms() {
		if n == algorithm {
			idx = i
		}
	}
	if idx < 0 {
		return 0, 0, 0, fmt.Errorf("algorithm %q not registered", algorithm)
	}
	w(hybridsched.RegAlgorithm, uint32(idx))
	w(hybridsched.RegControl, hybridsched.CtrlStart|hybridsched.CtrlPipelined)
	if err != nil {
		return 0, 0, 0, err
	}

	gen, err := hybridsched.NewTrafficGenerator(hybridsched.TrafficConfig{
		Ports:         16,
		LineRate:      10 * hybridsched.Gbps,
		Load:          0.6,
		Pattern:       hybridsched.Hotspot{Frac: 0.6, Spots: 3},
		Sizes:         hybridsched.Fixed{Size: 1500 * hybridsched.Byte},
		Process:       hybridsched.OnOff,
		BurstMeanPkts: 32,
		Until:         hybridsched.Time(8 * hybridsched.Millisecond),
		Seed:          3,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	gen.Start(s, func(p *hybridsched.Packet) {
		if err := dev.Inject(p); err != nil {
			log.Fatal(err)
		}
	})
	s.RunUntil(hybridsched.Time(12 * hybridsched.Millisecond))
	dev.Stop()

	r := func(addr uint32) uint32 {
		v, rerr := dev.Read32(addr)
		if rerr != nil {
			log.Fatal(rerr)
		}
		return v
	}
	return r(hybridsched.RegDelivered), r(hybridsched.RegDropped), r(hybridsched.RegCycles), nil
}

func main() {
	// Sanity-check the user algorithm standalone before deploying it.
	r := hybridsched.NewRand(1)
	probe := &lqf{n: 8}
	d := hybridsched.NewDemandMatrix(8)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if i != j {
				d.Set(i, j, int64(r.Intn(1000)))
			}
		}
	}
	m := probe.Schedule(d)
	if err := m.Validate(); err != nil {
		log.Fatalf("lqf produced an invalid matching: %v", err)
	}
	fmt.Printf("unit probe: lqf matched %d/8 ports on random demand, valid matching\n\n", m.Size())

	tab := report.NewTable("A/B on the emulated platform (16 ports, skewed ON/OFF, load 0.6)",
		"scheduling logic", "delivered", "dropped", "scheduler_cycles")
	for _, alg := range []string{"lqf", "islip"} {
		delivered, drops, cycles, err := bringUp(alg)
		if err != nil {
			log.Fatal(err)
		}
		tab.AddRow(alg, delivered, drops, cycles)
	}
	tab.Render(os.Stdout)
	fmt.Println("\nreading: a new scheduler went from idea to measured A/B without")
	fmt.Println("touching the infrastructure partitions — the framework contract the")
	fmt.Println("paper proposes.")
}
