// Cluster: the paper's §3 testbed vision — "a large testbed can be
// assembled, using tens of processing elements, a centralized scheduling
// entity and a commercial OCS" — and its claim that the architecture
// "has the advantage of supporting both centralized and distributed
// implementations".
//
// Four racks of four hosts each hang off ToR processing elements; a core
// OCS carries inter-rack traffic under a hardware scheduling loop. The
// same skewed workload runs twice: once with the scheduling entity seeing
// full rack-level demand (centralized) and once with request bits only
// (distributed), which is all the control bandwidth a distributed
// request/grant implementation affords.
package main

import (
	"fmt"
	"log"
	"os"

	"hybridsched"
	"hybridsched/report"
)

func run(mode hybridsched.ClusterMode) (hybridsched.ClusterMetrics, error) {
	s := hybridsched.NewSimulator()
	c, err := hybridsched.NewCluster(s, hybridsched.ClusterConfig{
		Racks:        4,
		HostsPerRack: 4,
		HostRate:     10 * hybridsched.Gbps,
		UplinkRate:   40 * hybridsched.Gbps,
		CoreReconfig: hybridsched.Microsecond,
		Slot:         10 * hybridsched.Microsecond,
		TransitDelay: hybridsched.Microsecond,
		Algorithm:    "greedy",
		Timing:       hybridsched.DefaultHardware(),
		Pipelined:    true,
		Mode:         mode,
	})
	if err != nil {
		return hybridsched.ClusterMetrics{}, err
	}
	c.Start()

	// 36 Gbps of inter-rack demand, 90% of it on the rack-0 -> rack-3
	// elephant pair, the rest uniform — the regime where scheduling
	// quality decides who wins.
	r := hybridsched.NewRand(2024)
	var id uint64
	const n = 4000
	for k := 0; k < n; k++ {
		at := hybridsched.Time(hybridsched.Duration(k) * 2 * hybridsched.Microsecond)
		s.At(at, func() {
			id++
			var src, dst hybridsched.Port
			if r.Bool(0.9) {
				src = hybridsched.Port(r.Intn(4))      // rack 0
				dst = hybridsched.Port(12 + r.Intn(4)) // rack 3
			} else {
				src = hybridsched.Port(r.Intn(16))
				for {
					dst = hybridsched.Port(r.Intn(16))
					if dst != src {
						break
					}
				}
			}
			c.Inject(&hybridsched.Packet{ID: id, Src: src, Dst: dst, Size: 9000 * hybridsched.Byte})
		})
	}
	s.RunUntil(hybridsched.Time(12 * hybridsched.Millisecond))
	c.Stop()
	return c.Metrics(), nil
}

func main() {
	tab := report.NewTable(
		"4 racks x 4 hosts, 40 Gbps core uplinks, skewed inter-rack load",
		"scheduling entity", "inter_delivered", "inter_p50", "inter_p99",
		"peak_core_voq", "core_duty")
	for _, mode := range []hybridsched.ClusterMode{hybridsched.Centralized, hybridsched.Distributed} {
		m, err := run(mode)
		if err != nil {
			log.Fatal(err)
		}
		tab.AddRow(mode, m.DeliveredInter,
			hybridsched.Duration(m.LatencyInter.P50), hybridsched.Duration(m.LatencyInter.P99),
			m.PeakInterVOQ, m.CoreDutyCycle)
	}
	tab.Render(os.Stdout)
	fmt.Println("\nreading: with request bits only, the distributed entity cannot tell")
	fmt.Println("the elephant pair from the trickles, so the hot uplink idles while")
	fmt.Println("cold pairs get circuits: latency and core backlog inflate by several x.")
	fmt.Println("Full demand magnitudes (centralized) keep the elephant moving.")
}
