// Cluster: the paper's §3 testbed vision — "a large testbed can be
// assembled, using tens of processing elements, a centralized scheduling
// entity and a commercial OCS" — and its claim that the architecture
// "has the advantage of supporting both centralized and distributed
// implementations".
//
// Four racks of four hosts each hang off ToR processing elements; a core
// OCS carries inter-rack traffic under a hardware scheduling loop. The
// same skewed workload runs twice: once with the scheduling entity seeing
// full rack-level demand (centralized) and once with request bits only
// (distributed), which is all the control bandwidth a distributed
// request/grant implementation affords.
package main

import (
	"fmt"
	"log"
	"os"

	"hybridsched/internal/cluster"
	"hybridsched/internal/packet"
	"hybridsched/internal/report"
	"hybridsched/internal/rng"
	"hybridsched/internal/sched"
	"hybridsched/internal/sim"
	"hybridsched/internal/units"
)

func run(mode cluster.Mode) (cluster.Metrics, error) {
	s := sim.New()
	c, err := cluster.New(s, cluster.Config{
		Racks:        4,
		HostsPerRack: 4,
		HostRate:     10 * units.Gbps,
		UplinkRate:   40 * units.Gbps,
		CoreReconfig: units.Microsecond,
		Slot:         10 * units.Microsecond,
		TransitDelay: units.Microsecond,
		Algorithm:    "greedy",
		Timing:       sched.DefaultHardware(),
		Pipelined:    true,
		Mode:         mode,
	})
	if err != nil {
		return cluster.Metrics{}, err
	}
	c.Start()

	// 36 Gbps of inter-rack demand, 90% of it on the rack-0 -> rack-3
	// elephant pair, the rest uniform — the regime where scheduling
	// quality decides who wins.
	r := rng.New(2024)
	var id uint64
	const n = 4000
	for k := 0; k < n; k++ {
		at := units.Time(units.Duration(k) * 2 * units.Microsecond)
		s.At(at, func() {
			id++
			var src, dst packet.Port
			if r.Bool(0.9) {
				src = packet.Port(r.Intn(4))      // rack 0
				dst = packet.Port(12 + r.Intn(4)) // rack 3
			} else {
				src = packet.Port(r.Intn(16))
				for {
					dst = packet.Port(r.Intn(16))
					if dst != src {
						break
					}
				}
			}
			c.Inject(&packet.Packet{ID: id, Src: src, Dst: dst, Size: 9000 * units.Byte})
		})
	}
	s.RunUntil(units.Time(12 * units.Millisecond))
	c.Stop()
	return c.Metrics(), nil
}

func main() {
	tab := report.NewTable(
		"4 racks x 4 hosts, 40 Gbps core uplinks, skewed inter-rack load",
		"scheduling entity", "inter_delivered", "inter_p50", "inter_p99",
		"peak_core_voq", "core_duty")
	for _, mode := range []cluster.Mode{cluster.Centralized, cluster.Distributed} {
		m, err := run(mode)
		if err != nil {
			log.Fatal(err)
		}
		tab.AddRow(mode, m.DeliveredInter,
			units.Duration(m.LatencyInter.P50), units.Duration(m.LatencyInter.P99),
			m.PeakInterVOQ, m.CoreDutyCycle)
	}
	tab.Render(os.Stdout)
	fmt.Println("\nreading: with request bits only, the distributed entity cannot tell")
	fmt.Println("the elephant pair from the trickles, so the hot uplink idles while")
	fmt.Println("cold pairs get circuits: latency and core backlog inflate by several x.")
	fmt.Println("Full demand magnitudes (centralized) keep the elephant moving.")
}
