// VOIP/QoE: the paper's §2 warns that slow scheduling "can increase the
// overall traffic latency and jitter of widely used applications (i.e.,
// VOIP, multiuser gaming etc.) and decrease the user quality of
// experience". This example measures exactly that: small
// latency-sensitive flows sharing the switch with bulk traffic, under a
// fast hardware scheduler and a slow software scheduler.
//
// The classifier pins the latency-sensitive class to the EPS (the hybrid
// design's escape hatch) in both cases; the remaining gap is what the
// bulk traffic's circuit scheduling does to everyone else — and what the
// mice suffer when there is no EPS at all.
package main

import (
	"fmt"
	"log"
	"os"

	"hybridsched"
	"hybridsched/internal/report"
	"hybridsched/internal/sched"
	"hybridsched/internal/traffic"
	"hybridsched/internal/units"
)

func run(timing sched.TimingModel, pipelined bool, slot, reconfig units.Duration,
	withEPS bool) (hybridsched.Metrics, error) {
	ports := 16
	return hybridsched.Scenario{
		Fabric: hybridsched.FabricConfig{
			Ports:        ports,
			LineRate:     10 * units.Gbps,
			LinkDelay:    500 * units.Nanosecond,
			Slot:         slot,
			ReconfigTime: reconfig,
			Algorithm:    "islip",
			Timing:       timing,
			Pipelined:    pipelined,
			EnableEPS:    withEPS, // installs the elephant-threshold rules
		},
		Traffic: hybridsched.TrafficConfig{
			Ports:                ports,
			LineRate:             10 * units.Gbps,
			Load:                 0.5,
			Pattern:              traffic.Uniform{},
			Sizes:                traffic.TrimodalInternet{},
			LatencySensitiveFrac: 0.15, // the VOIP/gaming share
			Seed:                 13,
		},
		Duration: 10 * units.Millisecond,
	}.Run()
}

func main() {
	type variant struct {
		name      string
		timing    sched.TimingModel
		pipelined bool
		slot      units.Duration
		reconfig  units.Duration
		eps       bool
	}
	variants := []variant{
		{"hardware + EPS", sched.DefaultHardware(), true,
			10 * units.Microsecond, 200 * units.Nanosecond, true},
		{"hardware, no EPS", sched.DefaultHardware(), true,
			10 * units.Microsecond, 200 * units.Nanosecond, false},
		{"software + EPS", sched.DefaultSoftware(), false,
			300 * units.Microsecond, 100 * units.Microsecond, true},
		{"software, no EPS", sched.DefaultSoftware(), false,
			300 * units.Microsecond, 100 * units.Microsecond, false},
	}
	tab := report.NewTable("VOIP-class flow delay (15% latency-sensitive, load 0.5)",
		"system", "mice_p50", "mice_p99", "jitter(p99-p50)", "bulk_p50")
	for _, v := range variants {
		m, err := run(v.timing, v.pipelined, v.slot, v.reconfig, v.eps)
		if err != nil {
			log.Fatal(err)
		}
		tab.AddRow(v.name,
			units.Duration(m.LatencyMice.P50),
			units.Duration(m.LatencyMice.P99),
			units.Duration(m.LatencyMice.P99-m.LatencyMice.P50),
			units.Duration(m.Latency.P50))
	}
	tab.Render(os.Stdout)
	fmt.Println("\nreading: a one-way VOIP budget is ~150 ms end-to-end, but per-switch")
	fmt.Println("budgets in the datacenter are tens of microseconds. The software")
	fmt.Println("scheduler without an EPS blows the mice's delay and jitter by orders")
	fmt.Println("of magnitude; the hardware scheduler keeps even bulk traffic inside it.")
}
