// VOIP/QoE: the paper's §2 warns that slow scheduling "can increase the
// overall traffic latency and jitter of widely used applications (i.e.,
// VOIP, multiuser gaming etc.) and decrease the user quality of
// experience". This example measures exactly that: small
// latency-sensitive flows sharing the switch with bulk traffic, under a
// fast hardware scheduler and a slow software scheduler.
//
// The classifier pins the latency-sensitive class to the EPS (the hybrid
// design's escape hatch) in both cases; the remaining gap is what the
// bulk traffic's circuit scheduling does to everyone else — and what the
// mice suffer when there is no EPS at all.
package main

import (
	"fmt"
	"log"
	"os"

	"hybridsched"
	"hybridsched/report"
)

func run(timing hybridsched.TimingModel, pipelined bool, slot, reconfig hybridsched.Duration,
	withEPS bool) (hybridsched.Metrics, error) {
	ports := 16
	return hybridsched.Scenario{
		Fabric: hybridsched.FabricConfig{
			Ports:        ports,
			LineRate:     10 * hybridsched.Gbps,
			LinkDelay:    500 * hybridsched.Nanosecond,
			Slot:         slot,
			ReconfigTime: reconfig,
			Algorithm:    "islip",
			Timing:       timing,
			Pipelined:    pipelined,
			EnableEPS:    withEPS, // installs the elephant-threshold rules
		},
		Traffic: hybridsched.TrafficConfig{
			Ports:                ports,
			LineRate:             10 * hybridsched.Gbps,
			Load:                 0.5,
			Pattern:              hybridsched.Uniform{},
			Sizes:                hybridsched.TrimodalInternet{},
			LatencySensitiveFrac: 0.15, // the VOIP/gaming share
			Seed:                 13,
		},
		Duration: 10 * hybridsched.Millisecond,
	}.Run()
}

func main() {
	type variant struct {
		name      string
		timing    hybridsched.TimingModel
		pipelined bool
		slot      hybridsched.Duration
		reconfig  hybridsched.Duration
		eps       bool
	}
	variants := []variant{
		{"hardware + EPS", hybridsched.DefaultHardware(), true,
			10 * hybridsched.Microsecond, 200 * hybridsched.Nanosecond, true},
		{"hardware, no EPS", hybridsched.DefaultHardware(), true,
			10 * hybridsched.Microsecond, 200 * hybridsched.Nanosecond, false},
		{"software + EPS", hybridsched.DefaultSoftware(), false,
			300 * hybridsched.Microsecond, 100 * hybridsched.Microsecond, true},
		{"software, no EPS", hybridsched.DefaultSoftware(), false,
			300 * hybridsched.Microsecond, 100 * hybridsched.Microsecond, false},
	}
	tab := report.NewTable("VOIP-class flow delay (15% latency-sensitive, load 0.5)",
		"system", "mice_p50", "mice_p99", "jitter(p99-p50)", "bulk_p50")
	for _, v := range variants {
		m, err := run(v.timing, v.pipelined, v.slot, v.reconfig, v.eps)
		if err != nil {
			log.Fatal(err)
		}
		tab.AddRow(v.name,
			hybridsched.Duration(m.LatencyMice.P50),
			hybridsched.Duration(m.LatencyMice.P99),
			hybridsched.Duration(m.LatencyMice.P99-m.LatencyMice.P50),
			hybridsched.Duration(m.Latency.P50))
	}
	tab.Render(os.Stdout)
	fmt.Println("\nreading: a one-way VOIP budget is ~150 ms end-to-end, but per-switch")
	fmt.Println("budgets in the datacenter are tens of microseconds. The software")
	fmt.Println("scheduler without an EPS blows the mice's delay and jitter by orders")
	fmt.Println("of magnitude; the hardware scheduler keeps even bulk traffic inside it.")
}
