package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// baseConfig is a small, fast sweep configuration; tests override the
// swept dimension.
func baseConfig(varr string, values []string) sweepConfig {
	return sweepConfig{
		Var: varr, Values: values,
		Ports: 8, Rate: "10Gbps", Slot: "20us", Reconfig: "1us",
		Alg: "islip", Timing: "hardware", Buffer: "switch",
		Load: 0.4, Duration: "1ms", Seed: 1, Parallel: 0,
	}
}

func TestSweepVariables(t *testing.T) {
	cases := []struct {
		name   string
		varr   string
		values []string
	}{
		{"load", "load", []string{"0.3", "0.6"}},
		{"reconfig", "reconfig", []string{"100ns", "1us"}},
		{"ports", "ports", []string{"4", "8"}},
		{"linkdelay", "linkdelay", []string{"500ns", "2us"}},
		{"dist", "dist", []string{"fixed", "trimodal", "cachefollower", "hadoop"}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if err := run(io.Discard, baseConfig(c.varr, c.values)); err != nil {
				t.Fatalf("sweep failed: %v", err)
			}
		})
	}
}

// TestSweepPortsReachesFabricScale drives the ports sweep into the
// post-refactor regime: one CSV row per size up to a 256-port fabric,
// each from a completed end-to-end simulation.
func TestSweepPortsReachesFabricScale(t *testing.T) {
	cfg := baseConfig("ports", []string{"16", "64", "256"})
	cfg.Duration = "200us"
	var buf bytes.Buffer
	if err := run(&buf, cfg); err != nil {
		t.Fatalf("ports sweep failed: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+3 {
		t.Fatalf("want header + 3 rows, got %d lines:\n%s", len(lines), buf.String())
	}
	for i, want := range []string{"16", "64", "256"} {
		if !strings.HasPrefix(lines[1+i], want+",") {
			t.Fatalf("row %d = %q, want ports %s", i, lines[1+i], want)
		}
	}
}

// TestSweepDistEmitsEveryRow pins the dist sweep's CSV shape: one row per
// distribution, labeled by the sweep value.
func TestSweepDistEmitsEveryRow(t *testing.T) {
	var b bytes.Buffer
	values := []string{"trimodal", "websearch", "cachefollower"}
	if err := run(&b, baseConfig("dist", values)); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != len(values)+1 {
		t.Fatalf("want %d rows + header, got %d:\n%s", len(values), len(lines), out)
	}
	for _, v := range values {
		if !strings.Contains(out, v) {
			t.Fatalf("row for %q missing:\n%s", v, out)
		}
	}
}

func TestSweepRejectsBadInputs(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*sweepConfig)
	}{
		{"unknown variable", func(c *sweepConfig) { c.Var = "gravity"; c.Values = []string{"1"} }},
		{"bad value for load", func(c *sweepConfig) { c.Values = []string{"heavy"} }},
		{"bad rate", func(c *sweepConfig) { c.Rate = "lots" }},
		{"bad duration", func(c *sweepConfig) { c.Duration = "later" }},
		{"unknown distribution", func(c *sweepConfig) { c.Var = "dist"; c.Values = []string{"bitcoin"} }},
	}
	for _, c := range cases {
		cfg := baseConfig("load", []string{"0.5"})
		c.mutate(&cfg)
		if err := run(io.Discard, cfg); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

const scenarioPackDir = "../../testdata/scenarios"

// TestSweepScenarioPack runs the committed declarative pack end to end:
// one CSV row per scenario, labeled by name, in filename order.
func TestSweepScenarioPack(t *testing.T) {
	var b bytes.Buffer
	if err := runPack(&b, scenarioPackDir, 0); err != nil {
		t.Fatalf("scenario-pack sweep failed: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	want := []string{"dimdim", "diurnal", "hotspot_churn", "incast", "scalefree"}
	if len(lines) != 1+len(want) {
		t.Fatalf("want header + %d rows, got %d lines:\n%s", len(want), len(lines), b.String())
	}
	for i, name := range want {
		if !strings.HasPrefix(lines[1+i], name+",") {
			t.Fatalf("row %d = %q, want scenario %q", i, lines[1+i], name)
		}
	}
}

// TestSweepScenarioPackRejectsBadDirs pins the failure modes: a missing
// or empty directory is an error, not an empty CSV.
func TestSweepScenarioPackRejectsBadDirs(t *testing.T) {
	if err := runPack(io.Discard, t.TempDir(), 0); err == nil {
		t.Error("empty pack directory: expected error")
	}
	if err := runPack(io.Discard, "testdata/definitely-absent", 0); err == nil {
		t.Error("missing pack directory: expected error")
	}
}

// TestSweepScenarioPackByteIdentical extends the determinism contract to
// pack mode: the CSV must not depend on the worker count, including for
// every time-varying dynamic the committed pack covers.
func TestSweepScenarioPackByteIdentical(t *testing.T) {
	pack := func(parallel int) string {
		var b bytes.Buffer
		if err := runPack(&b, scenarioPackDir, parallel); err != nil {
			t.Fatalf("scenario-pack sweep failed: %v", err)
		}
		return b.String()
	}
	serial := pack(1)
	if serial == "" {
		t.Fatal("empty CSV")
	}
	for _, workers := range []int{2, 8} {
		if got := pack(workers); got != serial {
			t.Fatalf("CSV differs between 1 and %d workers:\n--- 1 ---\n%s\n--- %d ---\n%s",
				workers, serial, workers, got)
		}
	}
}

// TestSweepParallelOutputIsByteIdentical is the determinism contract: the
// CSV must not depend on the worker count — including for the flow-level
// empirical workloads.
func TestSweepParallelOutputIsByteIdentical(t *testing.T) {
	sweeps := []sweepConfig{
		baseConfig("load", []string{"0.2", "0.4", "0.6", "0.8"}),
		baseConfig("dist", []string{"trimodal", "cachefollower", "hadoop"}),
	}
	for _, cfg := range sweeps {
		cfg := cfg
		t.Run(cfg.Var, func(t *testing.T) {
			sweep := func(parallel int) string {
				var b bytes.Buffer
				cfg.Parallel = parallel
				if err := run(&b, cfg); err != nil {
					t.Fatalf("sweep failed: %v", err)
				}
				return b.String()
			}
			serial := sweep(1)
			if serial == "" {
				t.Fatal("empty CSV")
			}
			for _, workers := range []int{2, 8} {
				if got := sweep(workers); got != serial {
					t.Fatalf("CSV differs between 1 and %d workers:\n--- 1 ---\n%s\n--- %d ---\n%s",
						workers, serial, workers, got)
				}
			}
		})
	}
}
