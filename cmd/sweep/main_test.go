package main

import (
	"bytes"
	"io"
	"testing"
)

func TestSweepVariables(t *testing.T) {
	cases := []struct {
		name   string
		varr   string
		values []string
	}{
		{"load", "load", []string{"0.3", "0.6"}},
		{"reconfig", "reconfig", []string{"100ns", "1us"}},
		{"ports", "ports", []string{"4", "8"}},
		{"linkdelay", "linkdelay", []string{"500ns", "2us"}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			err := run(io.Discard, c.varr, c.values, 8, "10Gbps", "20us", "1us",
				"islip", "hardware", "switch", 0.4, "1ms", 1, 0)
			if err != nil {
				t.Fatalf("sweep failed: %v", err)
			}
		})
	}
}

func TestSweepRejectsBadInputs(t *testing.T) {
	cases := []struct {
		name string
		call func() error
	}{
		{"unknown variable", func() error {
			return run(io.Discard, "gravity", []string{"1"}, 8, "10Gbps", "20us", "1us",
				"islip", "hardware", "switch", 0.4, "1ms", 1, 0)
		}},
		{"bad value for load", func() error {
			return run(io.Discard, "load", []string{"heavy"}, 8, "10Gbps", "20us", "1us",
				"islip", "hardware", "switch", 0.4, "1ms", 1, 0)
		}},
		{"bad rate", func() error {
			return run(io.Discard, "load", []string{"0.5"}, 8, "lots", "20us", "1us",
				"islip", "hardware", "switch", 0.4, "1ms", 1, 0)
		}},
		{"bad duration", func() error {
			return run(io.Discard, "load", []string{"0.5"}, 8, "10Gbps", "20us", "1us",
				"islip", "hardware", "switch", 0.4, "later", 1, 0)
		}},
	}
	for _, c := range cases {
		if err := c.call(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

// TestSweepParallelOutputIsByteIdentical is the determinism contract: the
// CSV must not depend on the worker count.
func TestSweepParallelOutputIsByteIdentical(t *testing.T) {
	sweep := func(parallel int) string {
		var b bytes.Buffer
		err := run(&b, "load", []string{"0.2", "0.4", "0.6", "0.8"}, 8,
			"10Gbps", "20us", "1us", "islip", "hardware", "switch", 0.4, "1ms", 1, parallel)
		if err != nil {
			t.Fatalf("sweep failed: %v", err)
		}
		return b.String()
	}
	serial := sweep(1)
	if serial == "" {
		t.Fatal("empty CSV")
	}
	for _, workers := range []int{2, 8} {
		if got := sweep(workers); got != serial {
			t.Fatalf("CSV differs between 1 and %d workers:\n--- 1 ---\n%s\n--- %d ---\n%s",
				workers, serial, workers, got)
		}
	}
}
