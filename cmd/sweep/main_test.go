package main

import "testing"

func TestSweepVariables(t *testing.T) {
	cases := []struct {
		name   string
		varr   string
		values []string
	}{
		{"load", "load", []string{"0.3", "0.6"}},
		{"reconfig", "reconfig", []string{"100ns", "1us"}},
		{"ports", "ports", []string{"4", "8"}},
		{"linkdelay", "linkdelay", []string{"500ns", "2us"}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			err := run(c.varr, c.values, 8, "10Gbps", "20us", "1us",
				"islip", "hardware", "switch", 0.4, "1ms", 1)
			if err != nil {
				t.Fatalf("sweep failed: %v", err)
			}
		})
	}
}

func TestSweepRejectsBadInputs(t *testing.T) {
	cases := []struct {
		name string
		call func() error
	}{
		{"unknown variable", func() error {
			return run("gravity", []string{"1"}, 8, "10Gbps", "20us", "1us",
				"islip", "hardware", "switch", 0.4, "1ms", 1)
		}},
		{"bad value for load", func() error {
			return run("load", []string{"heavy"}, 8, "10Gbps", "20us", "1us",
				"islip", "hardware", "switch", 0.4, "1ms", 1)
		}},
		{"bad rate", func() error {
			return run("load", []string{"0.5"}, 8, "lots", "20us", "1us",
				"islip", "hardware", "switch", 0.4, "1ms", 1)
		}},
		{"bad duration", func() error {
			return run("load", []string{"0.5"}, 8, "10Gbps", "20us", "1us",
				"islip", "hardware", "switch", 0.4, "later", 1)
		}},
	}
	for _, c := range cases {
		if err := c.call(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}
