// Command sweep runs a one-dimensional parameter sweep and emits CSV on
// stdout — the plotting workhorse behind the figures. The sweep points are
// independent simulations, so they fan out across cores (see -parallel);
// the CSV is byte-identical at any worker count.
//
// Supported sweep variables:
//
//	-var load      sweeps offered load           (values like 0.1,0.3,...)
//	-var reconfig  sweeps OCS reconfiguration    (values like 100ns,1us,...)
//	-var ports     sweeps the port count         (values like 8,16,32)
//	-var linkdelay sweeps host<->switch distance (values like 500ns,5us)
//	-var dist      sweeps the workload           (values like fixed,trimodal,
//	               websearch,datamining,hadoop,cachefollower — empirical
//	               names select flow-level arrivals)
//
// Example — the Figure 1 simulated sweep at full scale:
//
//	sweep -var reconfig -values 100ns,1us,10us,100us,1ms -load 0.7 -buffer host
//
// Example — the published flow-size distributions against one scheduler:
//
//	sweep -var dist -values trimodal,websearch,hadoop,cachefollower -alg islip
//
// Scenario-pack mode: -scenario-dir runs every declarative *.json
// scenario config under a directory instead of a parameter sweep — one
// CSV row per scenario, labeled by name, in filename order:
//
//	sweep -scenario-dir testdata/scenarios -parallel 4
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"hybridsched"
	"hybridsched/report"
)

// sweepConfig carries the fixed (non-swept) dimensions of a sweep as
// parsed from flags.
type sweepConfig struct {
	Var      string   // sweep variable: load, reconfig, ports, linkdelay, dist
	Values   []string // sweep values
	Ports    int
	Rate     string
	Slot     string
	Reconfig string
	Alg      string
	Timing   string // hardware or software
	Buffer   string // switch or host
	Load     float64
	Duration string
	Seed     uint64
	Parallel int
}

func main() {
	var (
		sweepVar = flag.String("var", "load", "sweep variable: load, reconfig, ports, linkdelay, dist")
		values   = flag.String("values", "", "comma-separated values (required)")
		ports    = flag.Int("ports", 16, "port count (unless swept)")
		rateS    = flag.String("rate", "10Gbps", "line rate")
		slotS    = flag.String("slot", "10us", "slot duration")
		reconfS  = flag.String("reconfig", "1us", "reconfiguration time (unless swept)")
		alg      = flag.String("alg", "islip", "matching algorithm")
		timingS  = flag.String("timing", "hardware", "hardware or software")
		bufferS  = flag.String("buffer", "switch", "switch or host")
		load     = flag.Float64("load", 0.5, "offered load (unless swept)")
		durS     = flag.String("duration", "5ms", "traffic duration")
		seed     = flag.Uint64("seed", 1, "seed")
		parallel = flag.Int("parallel", 0, "worker count for sweep points (0 = GOMAXPROCS)")
		packDir  = flag.String("scenario-dir", "", "run every *.json scenario config under this directory instead of a sweep")
	)
	flag.Parse()
	if *packDir != "" {
		if err := runPack(os.Stdout, *packDir, *parallel); err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *values == "" {
		fmt.Fprintln(os.Stderr, "sweep: -values is required")
		os.Exit(2)
	}
	cfg := sweepConfig{
		Var: *sweepVar, Values: strings.Split(*values, ","),
		Ports: *ports, Rate: *rateS, Slot: *slotS, Reconfig: *reconfS,
		Alg: *alg, Timing: *timingS, Buffer: *bufferS,
		Load: *load, Duration: *durS, Seed: *seed, Parallel: *parallel,
	}
	if err := run(os.Stdout, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}
}

// workload maps a dist sweep value to a traffic configuration: the named
// empirical distributions select flow-level arrivals; fixed and trimodal
// keep per-packet Poisson.
func workload(name string, base hybridsched.TrafficConfig) (hybridsched.TrafficConfig, error) {
	switch name {
	case "fixed":
		base.Sizes = hybridsched.Fixed{Size: 1500 * hybridsched.Byte}
	case "trimodal":
		base.Sizes = hybridsched.TrimodalInternet{}
	default:
		dist, ok := hybridsched.EmpiricalByName(name)
		if !ok {
			return base, fmt.Errorf("unknown distribution %q (have fixed, trimodal, websearch, datamining, hadoop, cachefollower)", name)
		}
		base.Sizes = nil
		base.Process = hybridsched.FlowArrivals
		base.FlowSizes = dist
	}
	return base, nil
}

// runPack executes every scenario config under dir — the declarative
// counterpart of a sweep. Each scenario carries its own complete fabric
// and workload, so the CSV reports per-scenario line rate and ports.
func runPack(w io.Writer, dir string, parallel int) error {
	scs, err := hybridsched.LoadScenarioPack(dir)
	if err != nil {
		return err
	}
	ms, err := hybridsched.RunScenarios(scs, parallel)
	if err != nil {
		return err
	}
	tab := report.NewTable("", "scenario",
		"delivered_frac", "throughput", "lat_p50_us", "lat_p99_us",
		"peak_switch_buf_B", "peak_host_buf_B", "duty_cycle")
	for i, m := range ms {
		sc := scs[i]
		tab.AddRow(sc.Name, m.DeliveredFraction(), m.Throughput(sc.Fabric.Ports, sc.Fabric.LineRate),
			hybridsched.Duration(m.Latency.P50).Microseconds(),
			hybridsched.Duration(m.Latency.P99).Microseconds(),
			m.PeakSwitchBuffer.Bytes(), m.PeakHostBuffer.Bytes(), m.DutyCycle)
	}
	tab.CSV(w)
	return nil
}

func run(w io.Writer, cfg sweepConfig) error {
	rate, err := hybridsched.ParseBitRate(cfg.Rate)
	if err != nil {
		return err
	}
	slot, err := hybridsched.ParseDuration(cfg.Slot)
	if err != nil {
		return err
	}
	reconf, err := hybridsched.ParseDuration(cfg.Reconfig)
	if err != nil {
		return err
	}
	dur, err := hybridsched.ParseDuration(cfg.Duration)
	if err != nil {
		return err
	}
	var timing hybridsched.TimingModel = hybridsched.DefaultHardware()
	if cfg.Timing == "software" {
		timing = hybridsched.DefaultSoftware()
	}
	buffer := hybridsched.BufferAtSwitch
	if cfg.Buffer == "host" {
		buffer = hybridsched.BufferAtHost
	}

	linkDelay := 500 * hybridsched.Nanosecond

	// Parse every sweep value up front, so bad input fails before any
	// simulation runs, then fan the points out over the worker pool.
	trimmed := make([]string, len(cfg.Values))
	scs := make([]hybridsched.Scenario, len(cfg.Values))
	for i, v := range cfg.Values {
		v = strings.TrimSpace(v)
		trimmed[i] = v
		p, ld, rc, lk := cfg.Ports, cfg.Load, reconf, linkDelay
		tc := hybridsched.TrafficConfig{
			Pattern: hybridsched.Uniform{},
			Sizes:   hybridsched.Fixed{Size: 1500 * hybridsched.Byte},
		}
		switch cfg.Var {
		case "load":
			ld, err = strconv.ParseFloat(v, 64)
		case "reconfig":
			rc, err = hybridsched.ParseDuration(v)
		case "ports":
			p, err = strconv.Atoi(v)
		case "linkdelay":
			lk, err = hybridsched.ParseDuration(v)
		case "dist":
			tc, err = workload(v, tc)
		default:
			return fmt.Errorf("unknown sweep variable %q", cfg.Var)
		}
		if err != nil {
			return fmt.Errorf("bad value %q: %w", v, err)
		}
		tc.Ports = p
		tc.LineRate = rate
		tc.Load = ld
		tc.Until = hybridsched.Time(dur)
		tc.Seed = cfg.Seed
		scs[i] = hybridsched.Scenario{
			Fabric: hybridsched.FabricConfig{
				Ports:        p,
				LineRate:     rate,
				LinkDelay:    lk,
				Slot:         slot,
				ReconfigTime: rc,
				Algorithm:    cfg.Alg,
				Seed:         cfg.Seed,
				Timing:       timing,
				Pipelined:    cfg.Timing == "hardware",
				Buffer:       buffer,
			},
			Traffic:  tc,
			Duration: dur,
		}
	}

	ms, err := hybridsched.RunScenarios(scs, cfg.Parallel)
	if err != nil {
		return err
	}

	tab := report.NewTable("", cfg.Var,
		"delivered_frac", "throughput", "lat_p50_us", "lat_p99_us",
		"peak_switch_buf_B", "peak_host_buf_B", "duty_cycle")
	for i, m := range ms {
		p := scs[i].Fabric.Ports
		tab.AddRow(trimmed[i], m.DeliveredFraction(), m.Throughput(p, rate),
			hybridsched.Duration(m.Latency.P50).Microseconds(),
			hybridsched.Duration(m.Latency.P99).Microseconds(),
			m.PeakSwitchBuffer.Bytes(), m.PeakHostBuffer.Bytes(), m.DutyCycle)
	}
	tab.CSV(w)
	return nil
}
