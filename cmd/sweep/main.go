// Command sweep runs a one-dimensional parameter sweep and emits CSV on
// stdout — the plotting workhorse behind the figures. The sweep points are
// independent simulations, so they fan out across cores (see -parallel);
// the CSV is byte-identical at any worker count.
//
// Supported sweep variables:
//
//	-var load      sweeps offered load           (values like 0.1,0.3,...)
//	-var reconfig  sweeps OCS reconfiguration    (values like 100ns,1us,...)
//	-var ports     sweeps the port count         (values like 8,16,32)
//	-var linkdelay sweeps host<->switch distance (values like 500ns,5us)
//
// Example — the Figure 1 simulated sweep at full scale:
//
//	sweep -var reconfig -values 100ns,1us,10us,100us,1ms -load 0.7 -buffer host
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"hybridsched"
	"hybridsched/report"
)

func main() {
	var (
		sweepVar = flag.String("var", "load", "sweep variable: load, reconfig, ports, linkdelay")
		values   = flag.String("values", "", "comma-separated values (required)")
		ports    = flag.Int("ports", 16, "port count (unless swept)")
		rateS    = flag.String("rate", "10Gbps", "line rate")
		slotS    = flag.String("slot", "10us", "slot duration")
		reconfS  = flag.String("reconfig", "1us", "reconfiguration time (unless swept)")
		alg      = flag.String("alg", "islip", "matching algorithm")
		timingS  = flag.String("timing", "hardware", "hardware or software")
		bufferS  = flag.String("buffer", "switch", "switch or host")
		load     = flag.Float64("load", 0.5, "offered load (unless swept)")
		durS     = flag.String("duration", "5ms", "traffic duration")
		seed     = flag.Uint64("seed", 1, "seed")
		parallel = flag.Int("parallel", 0, "worker count for sweep points (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if *values == "" {
		fmt.Fprintln(os.Stderr, "sweep: -values is required")
		os.Exit(2)
	}
	if err := run(os.Stdout, *sweepVar, strings.Split(*values, ","), *ports, *rateS, *slotS,
		*reconfS, *alg, *timingS, *bufferS, *load, *durS, *seed, *parallel); err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}
}

func run(w io.Writer, sweepVar string, values []string, ports int, rateS, slotS, reconfS,
	alg, timingS, bufferS string, load float64, durS string, seed uint64, parallel int) error {
	rate, err := hybridsched.ParseBitRate(rateS)
	if err != nil {
		return err
	}
	slot, err := hybridsched.ParseDuration(slotS)
	if err != nil {
		return err
	}
	reconf, err := hybridsched.ParseDuration(reconfS)
	if err != nil {
		return err
	}
	dur, err := hybridsched.ParseDuration(durS)
	if err != nil {
		return err
	}
	var timing hybridsched.TimingModel = hybridsched.DefaultHardware()
	if timingS == "software" {
		timing = hybridsched.DefaultSoftware()
	}
	buffer := hybridsched.BufferAtSwitch
	if bufferS == "host" {
		buffer = hybridsched.BufferAtHost
	}

	linkDelay := 500 * hybridsched.Nanosecond

	// Parse every sweep value up front, so bad input fails before any
	// simulation runs, then fan the points out over the worker pool.
	trimmed := make([]string, len(values))
	scs := make([]hybridsched.Scenario, len(values))
	for i, v := range values {
		v = strings.TrimSpace(v)
		trimmed[i] = v
		p, ld, rc, lk := ports, load, reconf, linkDelay
		switch sweepVar {
		case "load":
			ld, err = strconv.ParseFloat(v, 64)
		case "reconfig":
			rc, err = hybridsched.ParseDuration(v)
		case "ports":
			p, err = strconv.Atoi(v)
		case "linkdelay":
			lk, err = hybridsched.ParseDuration(v)
		default:
			return fmt.Errorf("unknown sweep variable %q", sweepVar)
		}
		if err != nil {
			return fmt.Errorf("bad value %q: %w", v, err)
		}
		scs[i] = hybridsched.Scenario{
			Fabric: hybridsched.FabricConfig{
				Ports:        p,
				LineRate:     rate,
				LinkDelay:    lk,
				Slot:         slot,
				ReconfigTime: rc,
				Algorithm:    alg,
				Seed:         seed,
				Timing:       timing,
				Pipelined:    timingS == "hardware",
				Buffer:       buffer,
			},
			Traffic: hybridsched.TrafficConfig{
				Ports:    p,
				LineRate: rate,
				Load:     ld,
				Pattern:  hybridsched.Uniform{},
				Sizes:    hybridsched.Fixed{Size: 1500 * hybridsched.Byte},
				Until:    hybridsched.Time(dur),
				Seed:     seed,
			},
			Duration: dur,
		}
	}

	ms, err := hybridsched.RunScenarios(scs, parallel)
	if err != nil {
		return err
	}

	tab := report.NewTable("", sweepVar,
		"delivered_frac", "throughput", "lat_p50_us", "lat_p99_us",
		"peak_switch_buf_B", "peak_host_buf_B", "duty_cycle")
	for i, m := range ms {
		p := scs[i].Fabric.Ports
		tab.AddRow(trimmed[i], m.DeliveredFraction(), m.Throughput(p, rate),
			hybridsched.Duration(m.Latency.P50).Microseconds(),
			hybridsched.Duration(m.Latency.P99).Microseconds(),
			m.PeakSwitchBuffer.Bytes(), m.PeakHostBuffer.Bytes(), m.DutyCycle)
	}
	tab.CSV(w)
	return nil
}
