package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Compare mode: diff a fresh benchmark run against the committed
// baseline and fail on regression. The contract is asymmetric by
// design — the 0-alloc guarantees are exact while timing is noisy:
//
//   - any allocs/op increase over the baseline fails outright;
//   - B/op may drift within -byte-noise bytes (sub-allocation jitter
//     from the runtime's size classes), more fails;
//   - ns/op may regress at most -tolerance (fractional), more fails;
//   - a baseline entry missing from the current run fails (a renamed
//     or deleted benchmark must update the baseline deliberately) —
//     unless it matches a -retired pattern, the explicit allowance for
//     exactly that deliberate step: the gate stays green while the PR
//     that renames or removes a benchmark is in flight, and the next
//     bench-json baseline rewrite drops the entry for good.
//
// New benchmarks absent from the baseline are reported but pass — they
// enter the contract when bench-json next rewrites the baseline.
//
// Machine-speed drift between the baseline recording and the gate run
// (a different box, frequency scaling, a co-tenant burst) is
// multiplicative and common to every benchmark, while a genuine
// regression is an outlier against the rest of the suite. When the run
// shares at least minNormalize entries with the baseline, each ns/op
// ratio is therefore divided by the suite-wide median ratio before the
// tolerance test, so a uniformly slower (or faster) machine does not
// push every entry toward the limit (or mask a real regression).

// minNormalize is the smallest shared-entry count at which the median
// ns/op ratio is a trustworthy estimate of machine drift. Below it the
// raw ratios are gated directly.
const minNormalize = 8

// loadBaseline reads a committed benchjson records file.
func loadBaseline(path string) ([]Record, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []Record
	if err := json.Unmarshal(buf, &recs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

// retiredMatch reports whether name matches one of the -retired
// patterns: an exact benchmark name, or a prefix when the pattern ends
// in '*' (BenchmarkMatch/rrm/* retires every sub-benchmark at once).
func retiredMatch(retired []string, name string) bool {
	for _, pat := range retired {
		if pat == "" {
			continue
		}
		if strings.HasSuffix(pat, "*") {
			if strings.HasPrefix(name, pat[:len(pat)-1]) {
				return true
			}
		} else if name == pat {
			return true
		}
	}
	return false
}

// compare diffs current against baseline and returns the violations
// (empty = gate passes) and informational notes. retired holds the
// -retired patterns: baseline entries matching one may be absent from
// the run without failing the gate.
func compare(baseline, current []Record, tolerance float64, byteNoise int64, retired []string) (violations, notes []string) {
	cur := make(map[string]Record, len(current))
	for _, r := range current {
		cur[r.Name] = r
	}
	drift, normalized := medianDrift(baseline, cur)
	if normalized {
		notes = append(notes,
			fmt.Sprintf("suite median ns/op drift %+.1f%%; ratios normalized before the tolerance test",
				100*(drift-1)))
	}
	for _, base := range baseline {
		got, ok := cur[base.Name]
		if !ok {
			if retiredMatch(retired, base.Name) {
				notes = append(notes,
					fmt.Sprintf("%s: retired (in the baseline, absent from this run; rewrite with bench-json to drop it)",
						base.Name))
				continue
			}
			violations = append(violations,
				fmt.Sprintf("%s: in the baseline but missing from this run (retire deliberately with -retired)", base.Name))
			continue
		}
		if base.AllocsOp >= 0 {
			switch {
			case got.AllocsOp < 0:
				violations = append(violations,
					fmt.Sprintf("%s: baseline has %d allocs/op but this run reported none (-benchmem missing?)",
						base.Name, base.AllocsOp))
			case got.AllocsOp > base.AllocsOp:
				violations = append(violations,
					fmt.Sprintf("%s: allocs/op %d -> %d (any increase fails)",
						base.Name, base.AllocsOp, got.AllocsOp))
			}
		}
		if base.BOp >= 0 && got.BOp > base.BOp+byteNoise {
			violations = append(violations,
				fmt.Sprintf("%s: B/op %d -> %d (over the %d-byte noise allowance)",
					base.Name, base.BOp, got.BOp, byteNoise))
		}
		if base.NsOp > 0 {
			ratio := got.NsOp / base.NsOp / drift
			if ratio > 1+tolerance {
				violations = append(violations,
					fmt.Sprintf("%s: ns/op %.4g -> %.4g (%+.1f%% vs suite drift, limit +%.0f%%)",
						base.Name, base.NsOp, got.NsOp,
						100*(ratio-1), 100*tolerance))
			}
		}
		delete(cur, base.Name)
	}
	for _, r := range current {
		if _, isNew := cur[r.Name]; isNew {
			notes = append(notes,
				fmt.Sprintf("%s: not in the baseline yet (passes; rewrite with bench-json to adopt)", r.Name))
		}
	}
	return violations, notes
}

// medianDrift estimates the multiplicative machine-speed drift between
// the baseline and the current run as the median of the per-benchmark
// ns/op ratios. It returns (1, false) — no normalization — when fewer
// than minNormalize entries are shared.
func medianDrift(baseline []Record, cur map[string]Record) (float64, bool) {
	var ratios []float64
	for _, base := range baseline {
		if got, ok := cur[base.Name]; ok && base.NsOp > 0 && got.NsOp > 0 {
			ratios = append(ratios, got.NsOp/base.NsOp)
		}
	}
	if len(ratios) < minNormalize {
		return 1, false
	}
	sort.Float64s(ratios)
	mid := len(ratios) / 2
	if len(ratios)%2 == 1 {
		return ratios[mid], true
	}
	return (ratios[mid-1] + ratios[mid]) / 2, true
}
