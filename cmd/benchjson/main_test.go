package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: hybridsched
BenchmarkMatch/islip/n=128-8         	    2308	    105696 ns/op	    6358 B/op	       6 allocs/op
BenchmarkMatch/tdma/n=16-8           	 2708622	        80.39 ns/op	     128 B/op	       1 allocs/op
BenchmarkFrameDecompose/n=16-8      	    2379	     99344 ns/op
PASS
ok  	hybridsched	8.033s
`
	recs, err := parse(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3: %+v", len(recs), recs)
	}
	r := recs[0]
	if r.Name != "BenchmarkMatch/islip/n=128" || r.NsOp != 105696 || r.BOp != 6358 || r.AllocsOp != 6 {
		t.Fatalf("record 0 = %+v", r)
	}
	if recs[1].NsOp != 80.39 {
		t.Fatalf("fractional ns/op lost: %+v", recs[1])
	}
	// No -benchmem columns: sentinel -1, ns/op still captured.
	if recs[2].BOp != -1 || recs[2].AllocsOp != -1 || recs[2].NsOp != 99344 {
		t.Fatalf("record 2 = %+v", recs[2])
	}
}

func TestCollapseRepetitions(t *testing.T) {
	recs := []Record{
		{Name: "BenchmarkA", NsOp: 120, BOp: 16, AllocsOp: 1},
		{Name: "BenchmarkB", NsOp: 50, BOp: -1, AllocsOp: -1},
		{Name: "BenchmarkA", NsOp: 100, BOp: 24, AllocsOp: 1},
		{Name: "BenchmarkB", NsOp: 60, BOp: 8, AllocsOp: 0},
		{Name: "BenchmarkA", NsOp: 110, BOp: 16, AllocsOp: 1},
	}
	got := collapse(recs)
	if len(got) != 2 {
		t.Fatalf("collapsed to %d records, want 2: %+v", len(got), got)
	}
	// First-seen order, per-metric minimum.
	if got[0].Name != "BenchmarkA" || got[0].NsOp != 100 || got[0].BOp != 16 || got[0].AllocsOp != 1 {
		t.Fatalf("record A = %+v", got[0])
	}
	// A repetition with real columns beats the -1 sentinel.
	if got[1].Name != "BenchmarkB" || got[1].NsOp != 50 || got[1].BOp != 8 || got[1].AllocsOp != 0 {
		t.Fatalf("record B = %+v", got[1])
	}
}

func TestTrimProcSuffix(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkMatch/islip/n=128-8": "BenchmarkMatch/islip/n=128",
		"BenchmarkFoo-16":              "BenchmarkFoo",
		"BenchmarkBare":                "BenchmarkBare",
	} {
		if got := trimProcSuffix(in); got != want {
			t.Fatalf("trimProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}
