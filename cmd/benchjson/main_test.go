package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: hybridsched
BenchmarkMatch/islip/n=128-8         	    2308	    105696 ns/op	    6358 B/op	       6 allocs/op
BenchmarkMatch/tdma/n=16-8           	 2708622	        80.39 ns/op	     128 B/op	       1 allocs/op
BenchmarkFrameDecompose/n=16-8      	    2379	     99344 ns/op
PASS
ok  	hybridsched	8.033s
`
	recs, err := parse(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3: %+v", len(recs), recs)
	}
	r := recs[0]
	if r.Name != "BenchmarkMatch/islip/n=128" || r.NsOp != 105696 || r.BOp != 6358 || r.AllocsOp != 6 {
		t.Fatalf("record 0 = %+v", r)
	}
	if recs[1].NsOp != 80.39 {
		t.Fatalf("fractional ns/op lost: %+v", recs[1])
	}
	// No -benchmem columns: sentinel -1, ns/op still captured.
	if recs[2].BOp != -1 || recs[2].AllocsOp != -1 || recs[2].NsOp != 99344 {
		t.Fatalf("record 2 = %+v", recs[2])
	}
}

func TestTrimProcSuffix(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkMatch/islip/n=128-8": "BenchmarkMatch/islip/n=128",
		"BenchmarkFoo-16":              "BenchmarkFoo",
		"BenchmarkBare":                "BenchmarkBare",
	} {
		if got := trimProcSuffix(in); got != want {
			t.Fatalf("trimProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}
