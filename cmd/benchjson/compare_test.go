package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func rec(name string, ns float64, b, allocs int64) Record {
	return Record{Name: name, NsOp: ns, BOp: b, AllocsOp: allocs}
}

func TestCompareGate(t *testing.T) {
	baseline := []Record{
		rec("BenchmarkMatch/islip/n=512", 100_000, 3, 0),
		rec("BenchmarkMatch/tdma/n=16", 64, 0, 0),
		rec("BenchmarkFrameDecompose/n=16", 99_000, -1, -1),
	}
	cases := []struct {
		name    string
		current []Record
		want    []string // substrings of the expected violations, in order
	}{
		{
			name: "identical run passes",
			current: []Record{
				rec("BenchmarkMatch/islip/n=512", 100_000, 3, 0),
				rec("BenchmarkMatch/tdma/n=16", 64, 0, 0),
				rec("BenchmarkFrameDecompose/n=16", 99_000, -1, -1),
			},
		},
		{
			name: "byte noise within the allowance passes, improvements pass",
			current: []Record{
				rec("BenchmarkMatch/islip/n=512", 90_000, 40, 0),
				rec("BenchmarkMatch/tdma/n=16", 60, 0, 0),
				rec("BenchmarkFrameDecompose/n=16", 80_000, -1, -1),
			},
		},
		{
			name: "any allocs/op increase hard-fails even with fast timing",
			current: []Record{
				rec("BenchmarkMatch/islip/n=512", 50_000, 3, 1),
				rec("BenchmarkMatch/tdma/n=16", 64, 0, 0),
				rec("BenchmarkFrameDecompose/n=16", 99_000, -1, -1),
			},
			want: []string{"allocs/op 0 -> 1"},
		},
		{
			name: "byte growth beyond the allowance fails",
			current: []Record{
				rec("BenchmarkMatch/islip/n=512", 100_000, 200, 0),
				rec("BenchmarkMatch/tdma/n=16", 64, 0, 0),
				rec("BenchmarkFrameDecompose/n=16", 99_000, -1, -1),
			},
			want: []string{"B/op 3 -> 200"},
		},
		{
			name: "ns/op regression beyond tolerance fails",
			current: []Record{
				rec("BenchmarkMatch/islip/n=512", 130_000, 3, 0),
				rec("BenchmarkMatch/tdma/n=16", 64, 0, 0),
				rec("BenchmarkFrameDecompose/n=16", 99_000, -1, -1),
			},
			want: []string{"ns/op"},
		},
		{
			name: "ns/op within tolerance passes",
			current: []Record{
				rec("BenchmarkMatch/islip/n=512", 119_000, 3, 0),
				rec("BenchmarkMatch/tdma/n=16", 64, 0, 0),
				rec("BenchmarkFrameDecompose/n=16", 99_000, -1, -1),
			},
		},
		{
			name: "baseline entry missing from the run fails",
			current: []Record{
				rec("BenchmarkMatch/islip/n=512", 100_000, 3, 0),
				rec("BenchmarkFrameDecompose/n=16", 99_000, -1, -1),
			},
			want: []string{"missing from this run"},
		},
		{
			name: "run without -benchmem columns fails the alloc contract",
			current: []Record{
				rec("BenchmarkMatch/islip/n=512", 100_000, -1, -1),
				rec("BenchmarkMatch/tdma/n=16", 64, -1, -1),
				rec("BenchmarkFrameDecompose/n=16", 99_000, -1, -1),
			},
			want: []string{"-benchmem missing", "-benchmem missing"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			violations, _ := compare(baseline, tc.current, 0.20, 64, nil)
			if len(violations) != len(tc.want) {
				t.Fatalf("violations = %v, want %d matching %v", violations, len(tc.want), tc.want)
			}
			for i, sub := range tc.want {
				if !strings.Contains(violations[i], sub) {
					t.Errorf("violation %d = %q, want substring %q", i, violations[i], sub)
				}
			}
		})
	}
}

func TestCompareMedianNormalization(t *testing.T) {
	// Ten entries: enough shared ratios to trust the median.
	var baseline, uniform, outlier []Record
	for i := 0; i < 10; i++ {
		name := "BenchmarkN/" + string(rune('a'+i))
		ns := float64(1000 * (i + 1))
		baseline = append(baseline, rec(name, ns, 0, 0))
		// The whole suite 35% slower: machine drift, not a regression.
		uniform = append(uniform, rec(name, ns*1.35, 0, 0))
		// Same drift, but one entry slowed 2.2x: a genuine outlier.
		f := 1.35
		if i == 3 {
			f = 2.2
		}
		outlier = append(outlier, rec(name, ns*f, 0, 0))
	}
	violations, notes := compare(baseline, uniform, 0.20, 64, nil)
	if len(violations) != 0 {
		t.Fatalf("uniform machine drift gated as a regression: %v", violations)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "normalized") {
		t.Fatalf("notes = %v, want one announcing normalization", notes)
	}
	violations, _ = compare(baseline, outlier, 0.20, 64, nil)
	if len(violations) != 1 || !strings.Contains(violations[0], "BenchmarkN/d") {
		t.Fatalf("violations = %v, want exactly the BenchmarkN/d outlier", violations)
	}
	// A uniformly faster machine must not mask a regression: everything
	// 40% faster except one entry back at its baseline speed — that
	// entry regressed 1/0.6 = 1.67x relative to the suite.
	var masked []Record
	for i, b := range baseline {
		ns := b.NsOp * 0.6
		if i == 7 {
			ns = b.NsOp
		}
		masked = append(masked, rec(b.Name, ns, 0, 0))
	}
	violations, _ = compare(baseline, masked, 0.20, 64, nil)
	if len(violations) != 1 || !strings.Contains(violations[0], "BenchmarkN/h") {
		t.Fatalf("violations = %v, want exactly the masked BenchmarkN/h regression", violations)
	}
}

// TestCompareRetired covers the deliberate-retirement path: baseline
// entries matching a -retired pattern may be absent from the run without
// failing the gate (they downgrade to notes), unmatched absences still
// fail, patterns ending in '*' retire whole benchmark families, and a
// retired benchmark that is still present stays under the normal
// contract.
func TestCompareRetired(t *testing.T) {
	baseline := []Record{
		rec("BenchmarkMatch/rrm/n=16", 1_000, 0, 0),
		rec("BenchmarkMatch/rrm/n=128", 9_000, 0, 0),
		rec("BenchmarkMatch/islip/n=512", 100_000, 0, 0),
		rec("BenchmarkOld", 50, 0, 0),
	}
	current := []Record{
		rec("BenchmarkMatch/islip/n=512", 100_000, 0, 0),
	}

	// Without allowances: three absences, three violations.
	violations, _ := compare(baseline, current, 0.20, 64, nil)
	if len(violations) != 3 {
		t.Fatalf("violations = %v, want 3 missing-entry failures", violations)
	}

	// Exact name + family prefix retire all three; the gate passes and
	// each retirement is reported as a note.
	retired := []string{"BenchmarkMatch/rrm/*", "BenchmarkOld"}
	violations, notes := compare(baseline, current, 0.20, 64, retired)
	if len(violations) != 0 {
		t.Fatalf("violations = %v, want none with retirements in place", violations)
	}
	var retiredNotes int
	for _, n := range notes {
		if strings.Contains(n, "retired") {
			retiredNotes++
		}
	}
	if retiredNotes != 3 {
		t.Fatalf("notes = %v, want 3 retirement notes", notes)
	}

	// A partial allowance leaves the unmatched absence failing.
	violations, _ = compare(baseline, current, 0.20, 64, []string{"BenchmarkOld"})
	if len(violations) != 2 {
		t.Fatalf("violations = %v, want the two rrm absences to still fail", violations)
	}

	// Retirement is not an exemption: a retired-but-present benchmark
	// stays under the normal regression contract.
	present := []Record{
		rec("BenchmarkMatch/rrm/n=16", 1_000, 0, 5),
		rec("BenchmarkMatch/rrm/n=128", 9_000, 0, 0),
		rec("BenchmarkMatch/islip/n=512", 100_000, 0, 0),
		rec("BenchmarkOld", 50, 0, 0),
	}
	violations, _ = compare(baseline, present, 0.20, 64, []string{"BenchmarkMatch/rrm/*"})
	if len(violations) != 1 || !strings.Contains(violations[0], "allocs/op 0 -> 5") {
		t.Fatalf("violations = %v, want the alloc regression on the present rrm benchmark", violations)
	}
}

func TestRetiredMatch(t *testing.T) {
	retired := []string{"BenchmarkA", "BenchmarkMatch/rrm/*", ""}
	for name, want := range map[string]bool{
		"BenchmarkA":              true,
		"BenchmarkA/sub":          false,
		"BenchmarkMatch/rrm/n=16": true,
		"BenchmarkMatch/rrm":      false,
		"BenchmarkMatch/islip":    false,
		"":                        false,
	} {
		if got := retiredMatch(retired, name); got != want {
			t.Errorf("retiredMatch(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestSplitRetired(t *testing.T) {
	if got := splitRetired(""); got != nil {
		t.Fatalf("splitRetired(\"\") = %v, want nil", got)
	}
	got := splitRetired(" BenchmarkA , ,BenchmarkB/* ")
	if len(got) != 2 || got[0] != "BenchmarkA" || got[1] != "BenchmarkB/*" {
		t.Fatalf("splitRetired = %v", got)
	}
}

func TestCompareNewBenchmarkIsANote(t *testing.T) {
	baseline := []Record{rec("BenchmarkOld", 100, 0, 0)}
	current := []Record{
		rec("BenchmarkOld", 100, 0, 0),
		rec("BenchmarkNew", 5, 0, 0),
	}
	violations, notes := compare(baseline, current, 0.20, 64, nil)
	if len(violations) != 0 {
		t.Fatalf("new benchmark counted as a violation: %v", violations)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "BenchmarkNew") {
		t.Fatalf("notes = %v, want one mentioning BenchmarkNew", notes)
	}
}

func TestLoadBaseline(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	writeFile(t, good, `[{"name":"BenchmarkX","ns_op":12.5,"b_op":0,"allocs_op":0}]`)
	recs, err := loadBaseline(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Name != "BenchmarkX" || recs[0].NsOp != 12.5 {
		t.Fatalf("records = %+v", recs)
	}
	bad := filepath.Join(dir, "bad.json")
	writeFile(t, bad, `{not json`)
	if _, err := loadBaseline(bad); err == nil {
		t.Fatal("malformed baseline accepted")
	}
	if _, err := loadBaseline(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("missing baseline accepted")
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
