// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a JSON performance record — the format of the committed
// BENCH_core.json baseline that gives the repo a recorded performance
// trajectory across PRs:
//
//	go test -run '^$' -bench BenchmarkMatch -benchmem . | benchjson -o BENCH_core.json
//
// Each benchmark line becomes {name, ns_op, b_op, allocs_op}; lines
// without allocation columns (benchmarks that did not ReportAllocs) keep
// ns_op and record b_op/allocs_op as -1.
//
// With -compare baseline.json the command becomes the perf-regression
// gate (`make bench-compare`): instead of writing records it diffs the
// fresh run against the committed baseline and exits nonzero on any
// allocs/op increase, on B/op growth beyond the -byte-noise allowance,
// on ns/op regression beyond -tolerance, or on a baseline entry missing
// from the run. When enough benchmarks are shared with the baseline the
// ns/op ratios are first normalized by their suite-wide median, so a
// uniformly slower or faster machine neither trips nor masks the gate:
//
//	go test -run '^$' -bench BenchmarkMatch -benchmem . | benchjson -compare BENCH_core.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Record is one benchmark measurement.
type Record struct {
	Name     string  `json:"name"`
	NsOp     float64 `json:"ns_op"`
	BOp      int64   `json:"b_op"`
	AllocsOp int64   `json:"allocs_op"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	baselinePath := flag.String("compare", "", "baseline records file to diff against instead of writing records")
	tolerance := flag.Float64("tolerance", 0.20, "with -compare: allowed fractional ns/op regression")
	byteNoise := flag.Int64("byte-noise", 64, "with -compare: allowed absolute B/op growth (sub-allocation jitter)")
	retired := flag.String("retired", "", "with -compare: comma-separated baseline entries allowed to be absent from the run (exact names, or prefixes ending in '*') — the deliberate retirement path for renamed or removed benchmarks until bench-json rewrites the baseline")
	flag.Parse()

	records, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(records) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	records = collapse(records)
	if *baselinePath != "" {
		baseline, err := loadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: -compare: %v\n", err)
			os.Exit(1)
		}
		violations, notes := compare(baseline, records, *tolerance, *byteNoise, splitRetired(*retired))
		for _, n := range notes {
			fmt.Fprintln(os.Stderr, "benchjson: note:", n)
		}
		if len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, "benchjson: FAIL:", v)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks within the %s baseline\n",
			len(baseline), *baselinePath)
		return
	}
	buf, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// splitRetired parses the -retired flag: comma-separated patterns,
// empty segments and surrounding whitespace dropped.
func splitRetired(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, pat := range strings.Split(s, ",") {
		if pat = strings.TrimSpace(pat); pat != "" {
			out = append(out, pat)
		}
	}
	return out
}

// parse extracts benchmark result lines. The format is fixed by the
// testing package: name, iterations, value unit pairs.
func parse(sc *bufio.Scanner) ([]Record, error) {
	var out []Record
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		r := Record{Name: trimProcSuffix(f[0]), BOp: -1, AllocsOp: -1}
		ok := false
		for i := 2; i+1 < len(f); i += 2 {
			v, unit := f[i], f[i+1]
			switch unit {
			case "ns/op":
				x, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return nil, fmt.Errorf("bad ns/op %q: %w", v, err)
				}
				r.NsOp = x
				ok = true
			case "B/op":
				x, err := strconv.ParseInt(v, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("bad B/op %q: %w", v, err)
				}
				r.BOp = x
			case "allocs/op":
				x, err := strconv.ParseInt(v, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("bad allocs/op %q: %w", v, err)
				}
				r.AllocsOp = x
			}
		}
		if ok {
			out = append(out, r)
		}
	}
	return out, sc.Err()
}

// collapse merges repeated measurements of one benchmark (go test
// -count N) into a single record holding the per-metric minimum — the
// best observed steady state, which is what both the recorded baseline
// and the regression gate compare. Scheduler noise only ever inflates a
// measurement, so the minimum over repetitions is the stable statistic.
// First-seen order is kept.
func collapse(recs []Record) []Record {
	idx := make(map[string]int, len(recs))
	var out []Record
	for _, r := range recs {
		i, seen := idx[r.Name]
		if !seen {
			idx[r.Name] = len(out)
			out = append(out, r)
			continue
		}
		if r.NsOp < out[i].NsOp {
			out[i].NsOp = r.NsOp
		}
		out[i].BOp = minNonNeg(out[i].BOp, r.BOp)
		out[i].AllocsOp = minNonNeg(out[i].AllocsOp, r.AllocsOp)
	}
	return out
}

// minNonNeg is the minimum treating -1 (column absent) as unknown, not
// as a value: one repetition with real columns beats any number without.
func minNonNeg(a, b int64) int64 {
	if a < 0 {
		return b
	}
	if b >= 0 && b < a {
		return b
	}
	return a
}

// trimProcSuffix drops the trailing -GOMAXPROCS of a benchmark name
// (BenchmarkMatch/islip/n=128-8 -> BenchmarkMatch/islip/n=128).
func trimProcSuffix(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}
