// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a JSON performance record — the format of the committed
// BENCH_core.json baseline that gives the repo a recorded performance
// trajectory across PRs:
//
//	go test -run '^$' -bench BenchmarkMatch -benchmem . | benchjson -o BENCH_core.json
//
// Each benchmark line becomes {name, ns_op, b_op, allocs_op}; lines
// without allocation columns (benchmarks that did not ReportAllocs) keep
// ns_op and record b_op/allocs_op as -1.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Record is one benchmark measurement.
type Record struct {
	Name     string  `json:"name"`
	NsOp     float64 `json:"ns_op"`
	BOp      int64   `json:"b_op"`
	AllocsOp int64   `json:"allocs_op"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	records, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(records) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parse extracts benchmark result lines. The format is fixed by the
// testing package: name, iterations, value unit pairs.
func parse(sc *bufio.Scanner) ([]Record, error) {
	var out []Record
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		r := Record{Name: trimProcSuffix(f[0]), BOp: -1, AllocsOp: -1}
		ok := false
		for i := 2; i+1 < len(f); i += 2 {
			v, unit := f[i], f[i+1]
			switch unit {
			case "ns/op":
				x, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return nil, fmt.Errorf("bad ns/op %q: %w", v, err)
				}
				r.NsOp = x
				ok = true
			case "B/op":
				x, err := strconv.ParseInt(v, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("bad B/op %q: %w", v, err)
				}
				r.BOp = x
			case "allocs/op":
				x, err := strconv.ParseInt(v, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("bad allocs/op %q: %w", v, err)
				}
				r.AllocsOp = x
			}
		}
		if ok {
			out = append(out, r)
		}
	}
	return out, sc.Err()
}

// trimProcSuffix drops the trailing -GOMAXPROCS of a benchmark name
// (BenchmarkMatch/islip/n=128-8 -> BenchmarkMatch/islip/n=128).
func trimProcSuffix(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}
