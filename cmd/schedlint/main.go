// Command schedlint runs the hybridsched invariant analyzers — the
// determinism, hot-path-allocation, pool-discipline, API-boundary, and
// channel-backpressure contracts — over the module and reports every
// violation in file:line:col form. It is the multichecker for the
// internal/analysis suite; `make lint` (and therefore `make check` and
// CI) runs it over ./....
//
// Usage:
//
//	schedlint [-list] [-only name[,name]] [packages]
//
// Packages default to ./... resolved against the enclosing module. The
// exit status is 1 when any diagnostic is reported, 2 on usage or load
// errors. See docs/INVARIANTS.md for the contracts and the
// //hybridsched:* directive vocabulary that records reviewed
// exceptions.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"hybridsched/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: schedlint [-list] [-only name,...] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-18s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
	}
	flag.Parse()

	suite := analysis.Analyzers()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-18s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		return
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var sel []*analysis.Analyzer
		for _, a := range suite {
			if keep[a.Name] {
				delete(keep, a.Name)
				sel = append(sel, a)
			}
		}
		if len(keep) > 0 || len(sel) == 0 {
			fmt.Fprintf(os.Stderr, "schedlint: unknown analyzers in -only=%s\n", *only)
			os.Exit(2)
		}
		suite = sel
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedlint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.LoadModule(root, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedlint:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		pos := d.Pos
		if rel, err := filepath.Rel(root, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		fmt.Printf("%s: %s: %s\n", pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "schedlint: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
