package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hybridsched"
)

// TestManagementPlane exercises the HTTP side of the daemon: /metrics
// serves the live registry in the Prometheus text format (including the
// epoch-latency histogram buckets the acceptance criteria name), /statusz
// serves the introspection JSON, and both reflect the epochs the service
// actually ran.
func TestManagementPlane(t *testing.T) {
	d, err := newDaemon(hybridsched.ServiceConfig{
		Ports: 8, Algorithm: "islip", SlotBits: 1000, Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	if err := d.svc.OfferShard(0, 1, 4, 1500); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := d.svc.Step(); err != nil {
			t.Fatal(err)
		}
	}

	srv := httptest.NewServer(d.managementHandler())
	defer srv.Close()

	get := func(path string) (string, *http.Response) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s\n%s", path, resp.Status, body)
		}
		return string(body), resp
	}

	metricsBody, resp := get("/metrics")
	if ct := resp.Header.Get("Content-Type"); ct != hybridsched.MetricsTextContentType {
		t.Errorf("/metrics Content-Type = %q, want %q", ct, hybridsched.MetricsTextContentType)
	}
	for _, want := range []string{
		"# TYPE hybridsched_serve_epoch_latency_ns histogram\n",
		`hybridsched_serve_epoch_latency_ns_bucket{shard="0",le="+Inf"} 3` + "\n",
		`hybridsched_serve_epochs_total{shard="1"} 3` + "\n",
		`hybridsched_serve_offered_bits_total{shard="0"} 1500` + "\n",
	} {
		if !strings.Contains(metricsBody, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, metricsBody)
		}
	}

	statusBody, resp := get("/statusz")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/statusz Content-Type = %q, want application/json", ct)
	}
	var st statusJSON
	if err := json.Unmarshal([]byte(statusBody), &st); err != nil {
		t.Fatalf("/statusz is not JSON: %v\n%s", err, statusBody)
	}
	if st.Algorithm != "islip" || st.Ports != 8 || st.Shards != 2 {
		t.Errorf("statusz config = %+v", st)
	}
	if len(st.ShardStats) != 2 || st.ShardStats[0].Epochs != 3 || st.ShardStats[1].Shard != 1 {
		t.Errorf("statusz shard stats = %+v", st.ShardStats)
	}
	if st.ShardStats[0].EpochNsP50 <= 0 {
		t.Errorf("statusz shard 0 epoch p50 = %d, want > 0", st.ShardStats[0].EpochNsP50)
	}
	if st.UptimeSeconds <= 0 {
		t.Errorf("statusz uptime = %v, want > 0", st.UptimeSeconds)
	}
}

// TestDaemonStatusOp: the JSON-lines protocol serves the same
// introspection document as /statusz.
func TestDaemonStatusOp(t *testing.T) {
	dial, d := startDaemonService(t, hybridsched.ServiceConfig{
		Ports: 8, Algorithm: "greedy", SlotBits: 1000,
	})
	if _, err := d.svc.Step(); err != nil {
		t.Fatal(err)
	}
	c := dial()
	resp := c.call(request{Op: "status"})
	if !resp.OK || resp.Status == nil {
		t.Fatalf("status: %+v", resp)
	}
	st := resp.Status
	if st.Algorithm != "greedy" || st.Shards != 1 || len(st.ShardStats) != 1 {
		t.Fatalf("status document: %+v", st)
	}
	if st.ShardStats[0].Epochs != 1 || st.ShardStats[0].EpochNsP50 <= 0 {
		t.Fatalf("status shard stats: %+v", st.ShardStats[0])
	}

	// The stats op now carries the metric-backed fields too.
	if resp := c.call(request{Op: "offer", Src: 1, Dst: 2, Bits: 900}); !resp.OK {
		t.Fatalf("offer: %+v", resp)
	}
	sr := c.call(request{Op: "stats"})
	if !sr.OK || len(sr.Stats) != 1 || sr.Stats[0].Offers != 1 {
		t.Fatalf("stats: %+v", sr)
	}
}
