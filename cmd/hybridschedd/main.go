// Command hybridschedd is the online scheduling daemon: the
// estimate -> match -> schedule loop of the paper run as a long-lived
// network service. It hosts a hybridsched.Service — one or more fabric
// shards, any registered matching algorithm — and serves a JSON-lines
// protocol on a TCP listener: clients stream demand in, subscribe to the
// computed schedule frames, checkpoint the service, and read live stats.
// With -load > 0 the daemon drives itself from the flow-level workload
// generators (the published empirical flow-size distributions), so a
// single binary demonstrates the full serve pipeline under live load.
//
// Usage:
//
//	hybridschedd -listen 127.0.0.1:9190 -ports 64 -alg islip -shards 4 \
//	    -epoch 10ms -load 0.4 -dist websearch -span 1us \
//	    -metrics 127.0.0.1:9191
//
// Protocol: one JSON object per line, one reply line per request.
//
//	{"op":"offer","shard":0,"src":1,"dst":2,"bits":12000}
//	{"op":"stats"}
//	{"op":"status"}                     (config + per-shard introspection)
//	{"op":"step"}                       (manual epochs; -epoch 0)
//	{"op":"snapshot"}                   (base64 HSTR checkpoint)
//	{"op":"subscribe","shard":0,"buffer":64,"policy":"oldest"}
//
// subscribe switches the connection into a one-way frame stream:
// {"epoch":..,"shard":..,"match":[..],"pairs":..,"served_bits":..,
// "backlog_bits":..} per line until the client disconnects.
//
// Management plane: -metrics addr starts an HTTP listener serving
// /metrics (the service's live instruments — per-shard epoch-latency
// histograms, throughput counters, backlog gauges — in the Prometheus
// text format) and /statusz (the status introspection as JSON). See
// docs/OBSERVABILITY.md for the metric catalog.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"hybridsched"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hybridschedd:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("hybridschedd", flag.ContinueOnError)
	var (
		listen  = fs.String("listen", "127.0.0.1:9190", "listen address for the JSON-lines API")
		metrics = fs.String("metrics", "", "management-plane listen address serving /metrics and /statusz (empty = disabled)")
		ports   = fs.Int("ports", 32, "fabric port count per shard")
		alg     = fs.String("alg", "islip", "matching algorithm ("+strings.Join(hybridsched.Algorithms(), ", ")+")")
		shards  = fs.Int("shards", 1, "independent fabric shards behind this service")
		work    = fs.Int("workers", 0, "epoch fan-out workers (0 = GOMAXPROCS)")
		slot    = fs.String("slot", "1500B", "demand served per matched pair per epoch (a size, e.g. 1500B)")
		epoch   = fs.Duration("epoch", 10*time.Millisecond, "wall-clock epoch interval (0 = step only on {\"op\":\"step\"})")
		load    = fs.Float64("load", 0, "self-driving workload load per port (0 = external demand only)")
		dist    = fs.String("dist", "websearch", "flow-size distribution for the self-driving workload (websearch, datamining, hadoop, cachefollower)")
		rate    = fs.String("rate", "10Gbps", "line rate for the self-driving workload")
		span    = fs.String("span", "1us", "simulated time one epoch consumes from the workload")
		seed    = fs.Uint64("seed", 1, "seed for algorithms and workloads")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := buildConfig(*ports, *alg, *shards, *work, *slot, *load, *dist, *rate, *span, *seed)
	if err != nil {
		return err
	}
	d, err := newDaemon(cfg)
	if err != nil {
		return err
	}
	defer d.Close()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Fprintf(out, "hybridschedd: %d-port %s, %d shard(s), serving on %s\n",
		*ports, *alg, d.cfg.Shards, ln.Addr())

	if *metrics != "" {
		mln, err := net.Listen("tcp", *metrics)
		if err != nil {
			return fmt.Errorf("-metrics: %w", err)
		}
		msrv := &http.Server{Handler: d.managementHandler()}
		go msrv.Serve(mln)
		defer msrv.Close()
		fmt.Fprintf(out, "hybridschedd: management plane on http://%s/metrics and /statusz\n", mln.Addr())
	}

	if *epoch > 0 {
		go func() {
			if err := d.svc.Run(context.Background(), *epoch); err != nil {
				log.Println("epoch loop:", err)
			}
		}()
	}
	return d.serveListener(ln)
}

// daemon is one running service plus its management surfaces: the
// JSON-lines protocol, the metrics registry every shard's instruments
// live in, and the HTTP management plane rendering that registry.
type daemon struct {
	cfg   hybridsched.ServiceConfig
	svc   *hybridsched.Service
	reg   *hybridsched.MetricsRegistry
	start time.Time
}

func newDaemon(cfg hybridsched.ServiceConfig) (*daemon, error) {
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	reg := hybridsched.NewMetricsRegistry()
	cfg.Metrics = reg
	svc, err := hybridsched.NewService(cfg)
	if err != nil {
		return nil, err
	}
	return &daemon{cfg: cfg, svc: svc, reg: reg, start: time.Now()}, nil
}

func (d *daemon) Close() error { return d.svc.Close() }

// managementHandler serves the HTTP management plane: /metrics in the
// Prometheus text exposition format, /statusz as JSON introspection.
func (d *daemon) managementHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", hybridsched.MetricsTextContentType)
		d.reg.WriteText(w)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(d.status())
	})
	return mux
}

// status collects the introspection document both /statusz and the
// protocol's status op return.
func (d *daemon) status() statusJSON {
	return statusJSON{
		Algorithm:     d.cfg.Algorithm,
		Ports:         d.cfg.Ports,
		Shards:        d.cfg.Shards,
		SlotBits:      int64(d.cfg.SlotBits),
		SelfDriving:   d.cfg.Workload != nil,
		UptimeSeconds: time.Since(d.start).Seconds(),
		ShardStats:    toShardStats(d.svc.Stats()),
	}
}

// buildConfig assembles the ServiceConfig from flag values; it is the
// testable seam between flag parsing and the service.
func buildConfig(ports int, alg string, shards, workers int, slot string,
	load float64, dist, rate, span string, seed uint64) (hybridsched.ServiceConfig, error) {
	slotBits, err := hybridsched.ParseSize(slot)
	if err != nil {
		return hybridsched.ServiceConfig{}, fmt.Errorf("-slot: %w", err)
	}
	cfg := hybridsched.ServiceConfig{
		Ports:     ports,
		Algorithm: alg,
		Seed:      seed,
		SlotBits:  slotBits,
		Shards:    shards,
		Workers:   workers,
	}
	if load > 0 {
		lineRate, err := hybridsched.ParseBitRate(rate)
		if err != nil {
			return cfg, fmt.Errorf("-rate: %w", err)
		}
		epochSpan, err := hybridsched.ParseDuration(span)
		if err != nil {
			return cfg, fmt.Errorf("-span: %w", err)
		}
		sizes, ok := hybridsched.EmpiricalByName(dist)
		if !ok {
			return cfg, fmt.Errorf("-dist: unknown distribution %q", dist)
		}
		cfg.Workload = &hybridsched.TrafficConfig{
			LineRate:  lineRate,
			Load:      load,
			Pattern:   hybridsched.Uniform{},
			Process:   hybridsched.FlowArrivals,
			FlowSizes: sizes,
		}
		cfg.EpochSpan = epochSpan
	}
	return cfg, nil
}

// serveListener accepts connections until the listener closes. Only the
// listener being closed is a clean shutdown; any other accept failure
// (fd exhaustion, a dying interface) is surfaced, not swallowed.
func (d *daemon) serveListener(ln net.Listener) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("accept: %w", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer conn.Close()
			d.serveConn(conn)
		}()
	}
}

// request is one JSON-lines API call.
type request struct {
	Op     string `json:"op"`
	Shard  int    `json:"shard"`
	Src    int    `json:"src"`
	Dst    int    `json:"dst"`
	Bits   int64  `json:"bits"`
	Buffer int    `json:"buffer"`
	Policy string `json:"policy"`
}

// response is one reply line.
type response struct {
	OK       bool         `json:"ok"`
	Error    string       `json:"error,omitempty"`
	Stats    []shardStats `json:"stats,omitempty"`
	Frames   []frameJSON  `json:"frames,omitempty"`
	Snapshot string       `json:"snapshot,omitempty"`
	Status   *statusJSON  `json:"status,omitempty"`
}

type shardStats struct {
	Shard       int    `json:"shard"`
	Epochs      uint64 `json:"epochs"`
	IdleEpochs  uint64 `json:"idle_epochs"`
	OfferedBits int64  `json:"offered_bits"`
	ServedBits  int64  `json:"served_bits"`
	BacklogBits int64  `json:"backlog_bits"`
	Subscribers int    `json:"subscribers"`
	Dropped     uint64 `json:"dropped"`

	// Metric-backed fields, from the shard's instruments.
	Offers       uint64 `json:"offers"`
	MatchedPairs uint64 `json:"matched_pairs"`
	EpochNsP50   int64  `json:"epoch_ns_p50"`
	EpochNsP99   int64  `json:"epoch_ns_p99"`
	EpochNsP999  int64  `json:"epoch_ns_p999"`
}

// statusJSON is the introspection document served on /statusz and by the
// protocol's status op.
type statusJSON struct {
	Algorithm     string       `json:"algorithm"`
	Ports         int          `json:"ports"`
	Shards        int          `json:"shards"`
	SlotBits      int64        `json:"slot_bits"`
	SelfDriving   bool         `json:"self_driving"`
	UptimeSeconds float64      `json:"uptime_seconds"`
	ShardStats    []shardStats `json:"shard_stats"`
}

func toShardStats(stats []hybridsched.ServiceStats) []shardStats {
	out := make([]shardStats, len(stats))
	for i, st := range stats {
		out[i] = shardStats{
			Shard:        i,
			Epochs:       st.Epochs,
			IdleEpochs:   st.IdleEpochs,
			OfferedBits:  st.OfferedBits,
			ServedBits:   st.ServedBits,
			BacklogBits:  st.BacklogBits,
			Subscribers:  st.Subscribers,
			Dropped:      st.Dropped,
			Offers:       st.Offers,
			MatchedPairs: st.MatchedPairs,
			EpochNsP50:   st.EpochNsP50,
			EpochNsP99:   st.EpochNsP99,
			EpochNsP999:  st.EpochNsP999,
		}
	}
	return out
}

type frameJSON struct {
	Epoch       uint64 `json:"epoch"`
	Shard       int    `json:"shard"`
	Match       []int  `json:"match"`
	Pairs       int    `json:"pairs"`
	ServedBits  int64  `json:"served_bits"`
	BacklogBits int64  `json:"backlog_bits"`
}

func toFrameJSON(f hybridsched.ServiceFrame) frameJSON {
	return frameJSON{
		Epoch:       f.Epoch,
		Shard:       f.Shard,
		Match:       f.Match,
		Pairs:       f.Pairs,
		ServedBits:  f.ServedBits,
		BacklogBits: f.BacklogBits,
	}
}

func (d *daemon) serveConn(conn net.Conn) {
	svc := d.svc
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	enc := json.NewEncoder(conn)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var req request
		if err := json.Unmarshal(line, &req); err != nil {
			enc.Encode(response{Error: "bad request: " + err.Error()})
			continue
		}
		switch req.Op {
		case "offer":
			if err := svc.OfferShard(req.Shard, req.Src, req.Dst, hybridsched.Size(req.Bits)); err != nil {
				enc.Encode(response{Error: err.Error()})
				continue
			}
			enc.Encode(response{OK: true})
		case "stats":
			enc.Encode(response{OK: true, Stats: toShardStats(svc.Stats())})
		case "status":
			st := d.status()
			enc.Encode(response{OK: true, Status: &st})
		case "step":
			frames, err := svc.Step()
			if err != nil {
				enc.Encode(response{Error: err.Error()})
				continue
			}
			out := make([]frameJSON, len(frames))
			for i, f := range frames {
				out[i] = toFrameJSON(f) // Step frames are caller-owned
			}
			enc.Encode(response{OK: true, Frames: out})
		case "snapshot":
			var buf bytes.Buffer
			if err := svc.Snapshot(&buf); err != nil {
				enc.Encode(response{Error: err.Error()})
				continue
			}
			enc.Encode(response{OK: true, Snapshot: base64.StdEncoding.EncodeToString(buf.Bytes())})
		case "subscribe":
			policy := hybridsched.DropOldestFrame
			switch req.Policy {
			case "", "oldest":
			case "newest":
				policy = hybridsched.DropNewestFrame
			default:
				enc.Encode(response{Error: fmt.Sprintf("unknown policy %q", req.Policy)})
				continue
			}
			buffer := req.Buffer
			if buffer <= 0 {
				buffer = 64
			}
			sub, err := svc.Subscribe(req.Shard, buffer, policy)
			if err != nil {
				enc.Encode(response{Error: err.Error()})
				continue
			}
			enc.Encode(response{OK: true})
			// The connection is now a one-way frame stream; it ends when
			// the client disconnects (the write fails) or the service
			// closes (the channel drains).
			for f := range sub.Frames() {
				if err := enc.Encode(toFrameJSON(f)); err != nil {
					break
				}
			}
			sub.Close()
			return
		default:
			enc.Encode(response{Error: fmt.Sprintf("unknown op %q", req.Op)})
		}
	}
}
