package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"net"
	"sync"
	"testing"
	"time"

	"hybridsched"
)

// startDaemon brings a service up on an ephemeral port in manual-epoch
// mode and returns a dialer for test clients.
func startDaemon(t *testing.T, cfg hybridsched.ServiceConfig) (dial func() *client) {
	dial, _ = startDaemonService(t, cfg)
	return dial
}

func startDaemonService(t *testing.T, cfg hybridsched.ServiceConfig) (dial func() *client, d *daemon) {
	t.Helper()
	d, err := newDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		d.serveListener(ln)
	}()
	t.Cleanup(func() {
		d.Close()
		ln.Close()
		<-done
	})
	return func() *client {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { conn.Close() })
		return &client{t: t, conn: conn, r: bufio.NewReader(conn)}
	}, d
}

type client struct {
	t    *testing.T
	conn net.Conn
	r    *bufio.Reader
}

// call sends one request line and decodes one reply line.
func (c *client) call(req request) response {
	c.t.Helper()
	b, _ := json.Marshal(req)
	if _, err := c.conn.Write(append(b, '\n')); err != nil {
		c.t.Fatal(err)
	}
	return c.readResponse()
}

func (c *client) readResponse() response {
	c.t.Helper()
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		c.t.Fatal(err)
	}
	var resp response
	if err := json.Unmarshal(line, &resp); err != nil {
		c.t.Fatalf("bad reply %q: %v", line, err)
	}
	return resp
}

func (c *client) readFrame() frameJSON {
	c.t.Helper()
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		c.t.Fatal(err)
	}
	var f frameJSON
	if err := json.Unmarshal(line, &f); err != nil {
		c.t.Fatalf("bad frame %q: %v", line, err)
	}
	return f
}

func TestDaemonProtocol(t *testing.T) {
	dial := startDaemon(t, hybridsched.ServiceConfig{
		Ports: 8, Algorithm: "islip", SlotBits: 1000,
	})
	c := dial()

	// A subscriber on a second connection sees the frames the first
	// connection's steps produce.
	sub := dial()
	if resp := sub.call(request{Op: "subscribe", Shard: 0, Buffer: 8}); !resp.OK {
		t.Fatalf("subscribe: %+v", resp)
	}

	if resp := c.call(request{Op: "offer", Src: 2, Dst: 6, Bits: 1500}); !resp.OK {
		t.Fatalf("offer: %+v", resp)
	}
	resp := c.call(request{Op: "step"})
	if !resp.OK || len(resp.Frames) != 1 {
		t.Fatalf("step: %+v", resp)
	}
	f := resp.Frames[0]
	if f.Epoch != 1 || f.ServedBits != 1000 || f.BacklogBits != 500 || f.Match[2] != 6 {
		t.Fatalf("frame: %+v", f)
	}
	if resp := c.call(request{Op: "step"}); !resp.OK || resp.Frames[0].BacklogBits != 0 {
		t.Fatalf("second step: %+v", resp)
	}

	// The subscriber received both frames, in order, with the matching.
	if f := sub.readFrame(); f.Epoch != 1 || f.Match[2] != 6 {
		t.Fatalf("streamed frame 1: %+v", f)
	}
	if f := sub.readFrame(); f.Epoch != 2 || f.ServedBits != 500 {
		t.Fatalf("streamed frame 2: %+v", f)
	}

	// Stats reflect the activity.
	resp = c.call(request{Op: "stats"})
	if !resp.OK || len(resp.Stats) != 1 {
		t.Fatalf("stats: %+v", resp)
	}
	st := resp.Stats[0]
	if st.Epochs != 2 || st.OfferedBits != 1500 || st.ServedBits != 1500 || st.Subscribers != 1 {
		t.Fatalf("stats: %+v", st)
	}

	// Snapshot round-trips through the public restore path.
	resp = c.call(request{Op: "snapshot"})
	if !resp.OK || resp.Snapshot == "" {
		t.Fatalf("snapshot: %+v", resp)
	}
	raw, err := base64.StdEncoding.DecodeString(resp.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := hybridsched.RestoreService(hybridsched.ServiceConfig{
		Ports: 8, Algorithm: "islip", SlotBits: 1000,
	}, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if restored.Epoch() != 2 {
		t.Fatalf("restored epoch = %d, want 2", restored.Epoch())
	}

	// Errors come back as JSON, not dropped connections.
	if resp := c.call(request{Op: "offer", Src: 0, Dst: 99, Bits: 1}); resp.OK || resp.Error == "" {
		t.Fatalf("bad offer accepted: %+v", resp)
	}
	if resp := c.call(request{Op: "nope"}); resp.OK {
		t.Fatalf("unknown op accepted: %+v", resp)
	}
	if resp := c.call(request{Op: "subscribe", Shard: 7}); resp.OK {
		t.Fatalf("bad shard subscribe accepted: %+v", resp)
	}
	if resp := c.call(request{Op: "subscribe", Policy: "sideways"}); resp.OK {
		t.Fatalf("bad policy accepted: %+v", resp)
	}
}

func TestDaemonSelfDriving(t *testing.T) {
	cfg, err := buildConfig(16, "islip", 2, 1, "4000B", 0.4, "cachefollower", "10Gbps", "1us", 7)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Workload == nil || cfg.EpochSpan != hybridsched.Microsecond {
		t.Fatalf("workload not configured: %+v", cfg)
	}
	dial := startDaemon(t, cfg)
	c := dial()
	for i := 0; i < 200; i++ {
		if resp := c.call(request{Op: "step"}); !resp.OK || len(resp.Frames) != 2 {
			t.Fatalf("step %d: %+v", i, resp)
		}
	}
	resp := c.call(request{Op: "stats"})
	var offered int64
	for _, st := range resp.Stats {
		offered += st.OfferedBits
	}
	if offered == 0 {
		t.Fatal("self-driving workload offered nothing")
	}
}

// TestDaemonConcurrentEpochs runs the daemon the way production does —
// a background wall-clock epoch loop — while several connections issue
// step/offer/stats ops concurrently. Under -race this pins that step
// replies carry caller-owned matchings (no shared scratch with the
// ticking loop).
func TestDaemonConcurrentEpochs(t *testing.T) {
	dial, d := startDaemonService(t, hybridsched.ServiceConfig{
		Ports: 16, Algorithm: "islip", SlotBits: 1000, Shards: 2,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		d.svc.Run(ctx, 200*time.Microsecond)
	}()
	defer func() { cancel(); <-runDone }()

	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := dial()
			for i := 0; i < 50; i++ {
				if resp := c.call(request{Op: "offer", Shard: w % 2, Src: i % 16, Dst: (i + 3) % 16, Bits: 500}); !resp.OK {
					t.Errorf("offer: %+v", resp)
					return
				}
				resp := c.call(request{Op: "step"})
				if !resp.OK || len(resp.Frames) != 2 {
					t.Errorf("step: %+v", resp)
					return
				}
				for _, f := range resp.Frames {
					for _, out := range f.Match {
						if out < -1 || out >= 16 {
							t.Errorf("corrupt matching in reply: %+v", f)
							return
						}
					}
				}
				if resp := c.call(request{Op: "stats"}); !resp.OK {
					t.Errorf("stats: %+v", resp)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestBuildConfigErrors(t *testing.T) {
	if _, err := buildConfig(8, "islip", 1, 0, "bogus", 0, "", "", "", 1); err == nil {
		t.Error("bad slot size accepted")
	}
	if _, err := buildConfig(8, "islip", 1, 0, "1500B", 0.5, "nope", "10Gbps", "1us", 1); err == nil {
		t.Error("unknown distribution accepted")
	}
	if _, err := buildConfig(8, "islip", 1, 0, "1500B", 0.5, "websearch", "fast", "1us", 1); err == nil {
		t.Error("bad rate accepted")
	}
	if _, err := buildConfig(8, "islip", 1, 0, "1500B", 0.5, "websearch", "10Gbps", "soon", 1); err == nil {
		t.Error("bad span accepted")
	}
}
