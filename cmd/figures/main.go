// Command figures regenerates every figure, table and in-text claim of
// the paper (and the framework experiments E1-E8). See EXPERIMENTS.md for
// the experiment index and expected shapes.
//
// Usage:
//
//	figures [-id F1,T1,...|all] [-scale quick|full] [-csv dir] [-plot]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"hybridsched/internal/experiments"
	"hybridsched/internal/report"
)

func main() {
	var (
		ids   = flag.String("id", "all", "comma-separated experiment IDs, or 'all'")
		scale = flag.String("scale", "quick", "quick or full")
		csv   = flag.String("csv", "", "also write each table as CSV into this directory")
		plot  = flag.Bool("plot", false, "render ASCII log-log plots for series")
	)
	flag.Parse()

	sc := experiments.Quick
	switch *scale {
	case "quick":
	case "full":
		sc = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "figures: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	var selected []string
	if *ids == "all" {
		for _, e := range experiments.Registry {
			selected = append(selected, e.ID)
		}
	} else {
		selected = strings.Split(*ids, ",")
	}

	for _, id := range selected {
		id = strings.TrimSpace(id)
		res, err := experiments.Run(id, sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\n######## %s — %s ########\n\n", res.ID, res.Title)
		for ti, tab := range res.Tables {
			tab.Render(os.Stdout)
			fmt.Println()
			if *csv != "" {
				if err := writeCSV(*csv, fmt.Sprintf("%s_%d.csv", res.ID, ti), tab); err != nil {
					fmt.Fprintf(os.Stderr, "figures: %v\n", err)
					os.Exit(1)
				}
			}
		}
		if *plot && len(res.Series) > 0 {
			report.LogLogPlot(os.Stdout, res.Title, 64, 16, res.Series...)
			fmt.Println()
		}
		for _, n := range res.Notes {
			fmt.Printf("  note: %s\n", n)
		}
	}
}

func writeCSV(dir, name string, tab *report.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	tab.CSV(f)
	return nil
}
