// Command figures regenerates every figure, table and in-text claim of
// the paper (and the framework experiments E1-E9 and ablations A1-A2).
// See README.md for the experiment index and expected shapes.
//
// Independent experiments fan out across cores (-parallel), and inside
// each experiment the per-point simulation runs fan out too; output is
// rendered in selection order, byte-identical at any worker count. The
// exception is E4, whose tables contain measured wall-clock times: it is
// scheduled after the parallel batch with nothing else running, so its
// timings stay clean, but they naturally vary run to run.
//
// Usage:
//
//	figures [-id F1,T1,...|all] [-scale quick|full] [-csv dir] [-plot] [-parallel N]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"hybridsched"
	"hybridsched/experiments"
	"hybridsched/report"
)

func main() {
	var (
		ids      = flag.String("id", "all", "comma-separated experiment IDs, or 'all'")
		scale    = flag.String("scale", "quick", "quick or full")
		csv      = flag.String("csv", "", "also write each table as CSV into this directory")
		plot     = flag.Bool("plot", false, "render ASCII log-log plots for series")
		parallel = flag.Int("parallel", 0, "worker count for experiments and their inner runs (0 = GOMAXPROCS)")
	)
	flag.Parse()

	sc := experiments.Quick
	switch *scale {
	case "quick":
	case "full":
		sc = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "figures: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	var selected []string
	if *ids == "all" {
		for _, e := range experiments.Registry {
			selected = append(selected, e.ID)
		}
	} else {
		selected = strings.Split(*ids, ",")
	}

	if err := run(os.Stdout, selected, sc, *csv, *plot, *parallel); err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		os.Exit(1)
	}
}

// run executes the selected experiments on a worker pool and renders the
// results to w in selection order, streaming each as soon as it (and all
// before it) completes — a failure late in the batch still prints every
// experiment that finished ahead of it.
//
// Scheduling: experiments marked WallClock (E4) report measured wall-clock
// times, so they run after the parallel batch, one at a time, with nothing
// else contending for cores. The outer (experiment) and inner (per-point)
// pools are sized together so total concurrency stays near -parallel
// instead of multiplying up to parallel^2.
func run(w io.Writer, ids []string, sc experiments.Scale, csvDir string, plot bool, parallel int) error {
	for i := range ids {
		ids[i] = strings.TrimSpace(ids[i])
	}
	var parIdx, wcIdx []int
	for i, id := range ids {
		if e := experiments.Lookup(id); e != nil && e.WallClock {
			wcIdx = append(wcIdx, i)
		} else {
			parIdx = append(parIdx, i)
		}
	}
	total := hybridsched.NewPool(parallel).Workers()
	outer := total
	if len(parIdx) > 0 && outer > len(parIdx) {
		outer = len(parIdx)
	}
	inner := 1
	if outer > 0 {
		inner = total / outer
	}
	if inner < 1 {
		inner = 1
	}
	experiments.SetParallelism(inner)

	type slot struct {
		res *experiments.Result
		err error
	}
	slots := make([]chan slot, len(ids))
	for i := range slots {
		slots[i] = make(chan slot, 1) // buffered: producers never block on an exited consumer
	}
	done := make(chan struct{}) // closed when the consumer returns early
	defer close(done)
	canceled := func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	go func() {
		pool := hybridsched.NewPool(outer)
		// Errors surface through the slots; Map's own error is redundant.
		_, _ = hybridsched.MapPool(pool, len(parIdx), func(k int) (struct{}, error) {
			if canceled() {
				return struct{}{}, nil
			}
			i := parIdx[k]
			res, err := experiments.Run(ids[i], sc)
			slots[i] <- slot{res, err}
			return struct{}{}, err
		})
		for _, i := range wcIdx {
			if canceled() {
				return
			}
			res, err := experiments.Run(ids[i], sc)
			slots[i] <- slot{res, err}
		}
	}()

	for i := range ids {
		s := <-slots[i]
		if s.err != nil {
			return s.err
		}
		res := s.res
		fmt.Fprintf(w, "\n######## %s — %s ########\n\n", res.ID, res.Title)
		for ti, tab := range res.Tables {
			tab.Render(w)
			fmt.Fprintln(w)
			if csvDir != "" {
				if err := writeCSV(csvDir, fmt.Sprintf("%s_%d.csv", res.ID, ti), tab); err != nil {
					return err
				}
			}
		}
		if plot && len(res.Series) > 0 {
			report.LogLogPlot(w, res.Title, 64, 16, res.Series...)
			fmt.Fprintln(w)
		}
		for _, n := range res.Notes {
			fmt.Fprintf(w, "  note: %s\n", n)
		}
	}
	return nil
}

func writeCSV(dir, name string, tab *report.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	tab.CSV(f)
	return nil
}
