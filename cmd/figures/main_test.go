package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"hybridsched/experiments"
)

// TestFiguresParallelOutputIsByteIdentical is the determinism contract:
// rendered output must not depend on the worker count, either across
// experiments or across the per-point runs inside them. E4 is excluded —
// it reports measured wall-clock times, which vary run to run by nature.
func TestFiguresParallelOutputIsByteIdentical(t *testing.T) {
	ids := []string{"T1", "F2", "E2", "A1"}
	render := func(parallel int) string {
		var b bytes.Buffer
		if err := run(&b, ids, experiments.Quick, "", true, parallel); err != nil {
			t.Fatalf("figures failed: %v", err)
		}
		return b.String()
	}
	serial := render(1)
	if serial == "" {
		t.Fatal("empty output")
	}
	if got := render(8); got != serial {
		t.Fatalf("output differs between 1 and 8 workers:\n--- 1 ---\n%s\n--- 8 ---\n%s", serial, got)
	}
}

func TestFiguresWritesCSV(t *testing.T) {
	dir := t.TempDir()
	var b bytes.Buffer
	if err := run(&b, []string{"T1"}, experiments.Quick, dir, false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "T1_0.csv")); err != nil {
		t.Fatalf("CSV not written: %v", err)
	}
}

func TestFiguresUnknownIDFails(t *testing.T) {
	var b bytes.Buffer
	if err := run(&b, []string{"NOPE"}, experiments.Quick, "", false, 0); err == nil {
		t.Fatal("expected error for unknown experiment id")
	}
}
