package main

import "testing"

func TestRunValidConfigurations(t *testing.T) {
	cases := []struct {
		name                             string
		timing, buffer, pattern, process string
	}{
		{"hardware-switch", "hardware", "switch", "uniform", "poisson"},
		{"software-host", "software", "host", "permutation", "onoff"},
		{"hotspot", "hardware", "switch", "hotspot", "poisson"},
		{"zipf", "hardware", "switch", "zipf", "onoff"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			err := run(8, "10Gbps", "500ns", "20us", "1us", "islip",
				c.timing, c.buffer, false, 0.3, c.pattern, c.process, "1ms", 1)
			if err != nil {
				t.Fatalf("run failed: %v", err)
			}
		})
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	base := func() []string {
		return []string{"10Gbps", "500ns", "20us", "1us", "islip",
			"hardware", "switch", "uniform", "poisson", "1ms"}
	}
	_ = base
	cases := []struct {
		name string
		call func() error
	}{
		{"bad rate", func() error {
			return run(8, "10Gbq", "500ns", "20us", "1us", "islip",
				"hardware", "switch", false, 0.3, "uniform", "poisson", "1ms", 1)
		}},
		{"bad timing", func() error {
			return run(8, "10Gbps", "500ns", "20us", "1us", "islip",
				"quantum", "switch", false, 0.3, "uniform", "poisson", "1ms", 1)
		}},
		{"bad buffer", func() error {
			return run(8, "10Gbps", "500ns", "20us", "1us", "islip",
				"hardware", "cloud", false, 0.3, "uniform", "poisson", "1ms", 1)
		}},
		{"bad pattern", func() error {
			return run(8, "10Gbps", "500ns", "20us", "1us", "islip",
				"hardware", "switch", false, 0.3, "spiral", "poisson", "1ms", 1)
		}},
		{"bad process", func() error {
			return run(8, "10Gbps", "500ns", "20us", "1us", "islip",
				"hardware", "switch", false, 0.3, "uniform", "fractal", "1ms", 1)
		}},
		{"bad algorithm", func() error {
			return run(8, "10Gbps", "500ns", "20us", "1us", "warp",
				"hardware", "switch", false, 0.3, "uniform", "poisson", "1ms", 1)
		}},
		{"bad duration", func() error {
			return run(8, "10Gbps", "500ns", "20us", "1us", "islip",
				"hardware", "switch", false, 0.3, "uniform", "poisson", "soon", 1)
		}},
	}
	for _, c := range cases {
		if err := c.call(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}
