package main

import "testing"

// base returns a known-good configuration; tests override single fields.
func base() config {
	return config{
		Ports:    8,
		Rate:     "10Gbps",
		Link:     "500ns",
		Slot:     "20us",
		Reconfig: "1us",
		Alg:      "islip",
		Timing:   "hardware",
		Buffer:   "switch",
		Load:     0.3,
		Pattern:  "uniform",
		Process:  "poisson",
		Duration: "1ms",
		Seed:     1,
	}
}

func TestRunValidConfigurations(t *testing.T) {
	cases := []struct {
		name                             string
		timing, buffer, pattern, process string
	}{
		{"hardware-switch", "hardware", "switch", "uniform", "poisson"},
		{"software-host", "software", "host", "permutation", "onoff"},
		{"hotspot", "hardware", "switch", "hotspot", "poisson"},
		{"zipf", "hardware", "switch", "zipf", "onoff"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			cfg := base()
			cfg.Timing, cfg.Buffer, cfg.Pattern, cfg.Process = c.timing, c.buffer, c.pattern, c.process
			if err := run(cfg); err != nil {
				t.Fatalf("run failed: %v", err)
			}
		})
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*config)
	}{
		{"bad rate", func(c *config) { c.Rate = "10Gbq" }},
		{"bad timing", func(c *config) { c.Timing = "quantum" }},
		{"bad buffer", func(c *config) { c.Buffer = "cloud" }},
		{"bad pattern", func(c *config) { c.Pattern = "spiral" }},
		{"bad process", func(c *config) { c.Process = "fractal" }},
		{"bad algorithm", func(c *config) { c.Alg = "warp" }},
		{"bad duration", func(c *config) { c.Duration = "soon" }},
		{"bad load", func(c *config) { c.Load = 1.5 }},
	}
	for _, c := range cases {
		cfg := base()
		c.mutate(&cfg)
		if err := run(cfg); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}
