// Command hybridsim runs a single hybrid-switch simulation from
// command-line flags and prints the full metric set — the "run one
// configuration and look at it" tool.
//
// Example (the paper's running configuration, fast optics, hardware
// scheduler):
//
//	hybridsim -ports 64 -rate 10Gbps -reconfig 1us -slot 10us \
//	          -alg islip -timing hardware -load 0.6 -duration 10ms
package main

import (
	"flag"
	"fmt"
	"os"

	"hybridsched/internal/fabric"
	"hybridsched/internal/match"
	"hybridsched/internal/report"
	"hybridsched/internal/sched"
	"hybridsched/internal/sim"
	"hybridsched/internal/traffic"
	"hybridsched/internal/units"
)

func main() {
	var (
		ports    = flag.Int("ports", 16, "switch port count")
		rate     = flag.String("rate", "10Gbps", "line rate per port")
		linkd    = flag.String("link", "500ns", "host<->switch one-way delay")
		slot     = flag.String("slot", "10us", "transmission slot per configuration")
		reconfig = flag.String("reconfig", "1us", "OCS reconfiguration dead time")
		alg      = flag.String("alg", "islip", fmt.Sprintf("matching algorithm %v", match.Names()))
		timing   = flag.String("timing", "hardware", "scheduler timing: hardware or software")
		buffer   = flag.String("buffer", "switch", "buffering regime: switch or host")
		epsOn    = flag.Bool("eps", false, "enable the electrical packet switch")
		load     = flag.Float64("load", 0.5, "offered load fraction per port")
		pattern  = flag.String("pattern", "uniform", "traffic pattern: uniform, permutation, hotspot, zipf")
		process  = flag.String("process", "poisson", "arrival process: poisson or onoff")
		duration = flag.String("duration", "5ms", "traffic duration (simulated)")
		seed     = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()
	if err := run(*ports, *rate, *linkd, *slot, *reconfig, *alg, *timing,
		*buffer, *epsOn, *load, *pattern, *process, *duration, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "hybridsim: %v\n", err)
		os.Exit(1)
	}
}

func run(ports int, rateS, linkS, slotS, reconfS, alg, timingS, bufferS string,
	epsOn bool, load float64, patternS, processS, durS string, seed uint64) error {
	lineRate, err := units.ParseBitRate(rateS)
	if err != nil {
		return err
	}
	linkDelay, err := units.ParseDuration(linkS)
	if err != nil {
		return err
	}
	slot, err := units.ParseDuration(slotS)
	if err != nil {
		return err
	}
	reconf, err := units.ParseDuration(reconfS)
	if err != nil {
		return err
	}
	dur, err := units.ParseDuration(durS)
	if err != nil {
		return err
	}

	var timing sched.TimingModel
	switch timingS {
	case "hardware":
		timing = sched.DefaultHardware()
	case "software":
		timing = sched.DefaultSoftware()
	default:
		return fmt.Errorf("unknown timing %q", timingS)
	}

	cfg := fabric.Config{
		Ports:        ports,
		LineRate:     lineRate,
		LinkDelay:    linkDelay,
		Slot:         slot,
		ReconfigTime: reconf,
		Algorithm:    alg,
		Seed:         seed,
		Timing:       timing,
		Pipelined:    timingS == "hardware",
		EnableEPS:    epsOn,
	}
	switch bufferS {
	case "switch":
	case "host":
		cfg.Buffer = fabric.BufferAtHost
	default:
		return fmt.Errorf("unknown buffer regime %q", bufferS)
	}

	var pat traffic.Pattern
	switch patternS {
	case "uniform":
		pat = traffic.Uniform{}
	case "permutation":
		pat = traffic.NewPermutation(ports, seed)
	case "hotspot":
		pat = traffic.Hotspot{Frac: 0.7, Spots: 2}
	case "zipf":
		pat = traffic.NewZipf(ports, 1.2)
	default:
		return fmt.Errorf("unknown pattern %q", patternS)
	}
	var proc traffic.Process
	switch processS {
	case "poisson":
		proc = traffic.Poisson
	case "onoff":
		proc = traffic.OnOff
	default:
		return fmt.Errorf("unknown process %q", processS)
	}

	s := sim.New()
	f, err := fabric.New(s, cfg)
	if err != nil {
		return err
	}
	gen, err := traffic.New(traffic.Config{
		Ports:    ports,
		LineRate: lineRate,
		Load:     load,
		Pattern:  pat,
		Sizes:    traffic.Fixed{Size: 1500 * units.Byte},
		Process:  proc,
		Until:    units.Time(dur),
		Seed:     seed,
	})
	if err != nil {
		return err
	}
	f.Start()
	gen.Start(s, f.Inject)
	s.RunUntil(units.Time(dur))
	s.RunUntil(units.Time(dur + dur/2))
	f.Stop()
	m := f.Metrics()

	fmt.Printf("hybridsim: %d ports x %v, %s/%s scheduler, %v reconfig, %v slot, %s-buffered\n",
		ports, lineRate, alg, timingS, reconf, slot, bufferS)
	fmt.Printf("workload: %s %s load %.2f for %v (+drain)\n\n",
		patternS, processS, load, dur)

	tab := report.NewTable("results", "metric", "value")
	tab.AddRow("injected packets", m.Injected)
	tab.AddRow("delivered packets", m.Delivered)
	tab.AddRow("delivered fraction", m.DeliveredFraction())
	tab.AddRow("throughput (frac of capacity)", m.Throughput(ports, lineRate))
	tab.AddRow("via OCS / via EPS (pkts)", fmt.Sprintf("%d / %d", m.OCS.PktsDelivered, m.EPS.PktsDelivered))
	tab.AddRow("latency p50 / p99 / max",
		fmt.Sprintf("%v / %v / %v", units.Duration(m.Latency.P50),
			units.Duration(m.Latency.P99), units.Duration(m.Latency.Max)))
	tab.AddRow("peak switch buffer", m.PeakSwitchBuffer)
	tab.AddRow("peak host buffer", m.PeakHostBuffer)
	tab.AddRow("drops voq/host/eps/truncated",
		fmt.Sprintf("%d/%d/%d/%d", m.DropsVOQ, m.DropsHost, m.EPS.Drops, m.OCS.Truncated))
	tab.AddRow("OCS reconfigurations", m.OCS.Configures)
	tab.AddRow("OCS duty cycle", m.DutyCycle)
	tab.AddRow("scheduler cycles (idle)", fmt.Sprintf("%d (%d)", m.Loop.Cycles, m.Loop.IdleCycles))
	tab.AddRow("grant staleness p50", units.Duration(m.Loop.Staleness.P50))
	tab.Render(os.Stdout)
	return nil
}
