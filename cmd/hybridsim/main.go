// Command hybridsim runs a single hybrid-switch simulation from
// command-line flags and prints the full metric set — the "run one
// configuration and look at it" tool.
//
// Example (the paper's running configuration, fast optics, hardware
// scheduler):
//
//	hybridsim -ports 64 -rate 10Gbps -reconfig 1us -slot 10us \
//	          -alg islip -timing hardware -load 0.6 -duration 10ms
package main

import (
	"flag"
	"fmt"
	"os"

	"hybridsched"
	"hybridsched/report"
)

// config carries the raw flag values into run. Every field is named, so a
// caller cannot transpose two of the many same-typed knobs the way a
// positional signature invites.
type config struct {
	Ports    int
	Rate     string
	Link     string
	Slot     string
	Reconfig string
	Alg      string
	Timing   string
	Buffer   string
	EPS      bool
	Load     float64
	Pattern  string
	Process  string
	Duration string
	Seed     uint64
}

func main() {
	var cfg config
	flag.IntVar(&cfg.Ports, "ports", 16, "switch port count")
	flag.StringVar(&cfg.Rate, "rate", "10Gbps", "line rate per port")
	flag.StringVar(&cfg.Link, "link", "500ns", "host<->switch one-way delay")
	flag.StringVar(&cfg.Slot, "slot", "10us", "transmission slot per configuration")
	flag.StringVar(&cfg.Reconfig, "reconfig", "1us", "OCS reconfiguration dead time")
	flag.StringVar(&cfg.Alg, "alg", "islip", fmt.Sprintf("matching algorithm %v", hybridsched.Algorithms()))
	flag.StringVar(&cfg.Timing, "timing", "hardware", "scheduler timing: hardware or software")
	flag.StringVar(&cfg.Buffer, "buffer", "switch", "buffering regime: switch or host")
	flag.BoolVar(&cfg.EPS, "eps", false, "enable the electrical packet switch")
	flag.Float64Var(&cfg.Load, "load", 0.5, "offered load fraction per port")
	flag.StringVar(&cfg.Pattern, "pattern", "uniform", "traffic pattern: uniform, permutation, hotspot, zipf")
	flag.StringVar(&cfg.Process, "process", "poisson", "arrival process: poisson or onoff")
	flag.StringVar(&cfg.Duration, "duration", "5ms", "traffic duration (simulated)")
	flag.Uint64Var(&cfg.Seed, "seed", 1, "random seed")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "hybridsim: %v\n", err)
		os.Exit(1)
	}
}

// scenario translates the parsed flags into a public-API scenario via the
// validating builder.
func (c config) scenario() (hybridsched.Scenario, error) {
	lineRate, err := hybridsched.ParseBitRate(c.Rate)
	if err != nil {
		return hybridsched.Scenario{}, err
	}
	linkDelay, err := hybridsched.ParseDuration(c.Link)
	if err != nil {
		return hybridsched.Scenario{}, err
	}
	slot, err := hybridsched.ParseDuration(c.Slot)
	if err != nil {
		return hybridsched.Scenario{}, err
	}
	reconf, err := hybridsched.ParseDuration(c.Reconfig)
	if err != nil {
		return hybridsched.Scenario{}, err
	}
	dur, err := hybridsched.ParseDuration(c.Duration)
	if err != nil {
		return hybridsched.Scenario{}, err
	}

	var timing hybridsched.TimingModel
	switch c.Timing {
	case "hardware":
		timing = hybridsched.DefaultHardware()
	case "software":
		timing = hybridsched.DefaultSoftware()
	default:
		return hybridsched.Scenario{}, fmt.Errorf("unknown timing %q", c.Timing)
	}

	buffer := hybridsched.BufferAtSwitch
	switch c.Buffer {
	case "switch":
	case "host":
		buffer = hybridsched.BufferAtHost
	default:
		return hybridsched.Scenario{}, fmt.Errorf("unknown buffer regime %q", c.Buffer)
	}

	var pat hybridsched.Pattern
	switch c.Pattern {
	case "uniform":
		pat = hybridsched.Uniform{}
	case "permutation":
		pat = hybridsched.NewPermutation(c.Ports, c.Seed)
	case "hotspot":
		pat = hybridsched.Hotspot{Frac: 0.7, Spots: 2}
	case "zipf":
		pat = hybridsched.NewZipf(c.Ports, 1.2)
	default:
		return hybridsched.Scenario{}, fmt.Errorf("unknown pattern %q", c.Pattern)
	}
	var proc hybridsched.Process
	switch c.Process {
	case "poisson":
		proc = hybridsched.Poisson
	case "onoff":
		proc = hybridsched.OnOff
	default:
		return hybridsched.Scenario{}, fmt.Errorf("unknown process %q", c.Process)
	}

	opts := []hybridsched.Option{
		hybridsched.WithPorts(c.Ports),
		hybridsched.WithLineRate(lineRate),
		hybridsched.WithLinkDelay(linkDelay),
		hybridsched.WithSlot(slot),
		hybridsched.WithReconfigTime(reconf),
		hybridsched.WithAlgorithm(c.Alg),
		hybridsched.WithSeed(c.Seed),
		hybridsched.WithTiming(timing),
		hybridsched.WithPipelined(c.Timing == "hardware"),
		hybridsched.WithBuffer(buffer),
		hybridsched.WithLoad(c.Load),
		hybridsched.WithPattern(pat),
		hybridsched.WithSizes(hybridsched.Fixed{Size: 1500 * hybridsched.Byte}),
		hybridsched.WithProcess(proc),
		hybridsched.WithDuration(dur),
	}
	if c.EPS {
		opts = append(opts, hybridsched.WithEPS(0))
	}
	return hybridsched.NewScenario(opts...)
}

func run(cfg config) error {
	sc, err := cfg.scenario()
	if err != nil {
		return err
	}
	m, err := sc.Run()
	if err != nil {
		return err
	}

	fmt.Printf("hybridsim: %d ports x %v, %s/%s scheduler, %v reconfig, %v slot, %s-buffered\n",
		cfg.Ports, sc.Fabric.LineRate, cfg.Alg, cfg.Timing,
		sc.Fabric.ReconfigTime, sc.Fabric.Slot, cfg.Buffer)
	fmt.Printf("workload: %s %s load %.2f for %v (+drain)\n\n",
		cfg.Pattern, cfg.Process, cfg.Load, sc.Duration)

	tab := report.NewTable("results", "metric", "value")
	tab.AddRow("injected packets", m.Injected)
	tab.AddRow("delivered packets", m.Delivered)
	tab.AddRow("delivered fraction", m.DeliveredFraction())
	tab.AddRow("throughput (frac of capacity)", m.Throughput(cfg.Ports, sc.Fabric.LineRate))
	tab.AddRow("via OCS / via EPS (pkts)", fmt.Sprintf("%d / %d", m.OCS.PktsDelivered, m.EPS.PktsDelivered))
	tab.AddRow("latency p50 / p99 / max",
		fmt.Sprintf("%v / %v / %v", hybridsched.Duration(m.Latency.P50),
			hybridsched.Duration(m.Latency.P99), hybridsched.Duration(m.Latency.Max)))
	tab.AddRow("peak switch buffer", m.PeakSwitchBuffer)
	tab.AddRow("peak host buffer", m.PeakHostBuffer)
	tab.AddRow("drops voq/host/eps/truncated",
		fmt.Sprintf("%d/%d/%d/%d", m.DropsVOQ, m.DropsHost, m.EPS.Drops, m.OCS.Truncated))
	tab.AddRow("OCS reconfigurations", m.OCS.Configures)
	tab.AddRow("OCS duty cycle", m.DutyCycle)
	tab.AddRow("scheduler cycles (idle)", fmt.Sprintf("%d (%d)", m.Loop.Cycles, m.Loop.IdleCycles))
	tab.AddRow("grant staleness p50", hybridsched.Duration(m.Loop.Staleness.P50))
	tab.Render(os.Stdout)
	return nil
}
