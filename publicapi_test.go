package hybridsched

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"hybridsched/internal/analysis"
)

// TestNoInternalImportsOutsideModuleCore enforces the public-API contract
// by running the schedlint internalboundary analyzer over the denied
// importer trees: nothing under examples/ or cmd/ may import
// hybridsched/internal/...; the root package and the public subpackages
// are the whole surface they get. The contract itself — sealed roots,
// denied importers, reviewed exceptions — is the embedded
// internal/analysis/boundary.json, so this test, `make lint`, and CI can
// never disagree about what is sealed.
func TestNoInternalImportsOutsideModuleCore(t *testing.T) {
	cfg, err := analysis.DefaultBoundary()
	if err != nil {
		t.Fatal(err)
	}
	root, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	var patterns []string
	for _, denied := range cfg.DeniedImporters {
		rel, ok := strings.CutPrefix(denied, "hybridsched/")
		if !ok {
			t.Fatalf("denied importer %q is outside the module", denied)
		}
		patterns = append(patterns, "./"+rel+"/...")
	}
	pkgs, err := analysis.LoadModule(root, patterns...)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{analysis.InternalBoundary})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// baseOptions is a complete, valid option set; validation tests break one
// dimension at a time.
func baseOptions() []Option {
	return []Option{
		WithPorts(8),
		WithLineRate(10 * Gbps),
		WithLinkDelay(500 * Nanosecond),
		WithSlot(10 * Microsecond),
		WithReconfigTime(Microsecond),
		WithAlgorithm("islip"),
		WithTiming(DefaultHardware()),
		WithPipelined(true),
		WithLoad(0.4),
		WithPattern(Uniform{}),
		WithSizes(Fixed{Size: 1500 * Byte}),
		WithSeed(1),
		WithDuration(2 * Millisecond),
	}
}

func TestNewScenarioValidatesEagerly(t *testing.T) {
	cases := []struct {
		name    string
		mutate  []Option
		wantErr string
	}{
		{"valid", nil, ""},
		{"zero duration", []Option{WithDuration(0)}, "Duration"},
		{"negative duration", []Option{WithDuration(-Millisecond)}, "Duration"},
		{"missing timing", []Option{WithTiming(nil)}, "Timing"},
		{"unknown algorithm", []Option{WithAlgorithm("warp-drive")}, "unknown algorithm"},
		{"bad load", []Option{WithLoad(1.5)}, "Load"},
		{"zero load", []Option{WithLoad(0)}, "Load"},
		{"too few ports", []Option{WithPorts(1)}, "ports"},
		{"no pattern", []Option{WithPattern(nil)}, "Pattern"},
		{"negative drain", []Option{WithDrain(-0.1)}, "Drain"},
		{"bad slot", []Option{WithSlot(0)}, "Slot"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			_, err := NewScenario(append(baseOptions(), c.mutate...)...)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected error mentioning %q, got nil", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

// TestBuilderMatchesLiteralBitForBit is the round-trip contract: a
// NewScenario-built run produces metrics identical to the equivalent
// literal-struct run.
func TestBuilderMatchesLiteralBitForBit(t *testing.T) {
	built, err := NewScenario(baseOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	literal := Scenario{
		Fabric: FabricConfig{
			Ports:        8,
			LineRate:     10 * Gbps,
			LinkDelay:    500 * Nanosecond,
			Slot:         10 * Microsecond,
			ReconfigTime: Microsecond,
			Algorithm:    "islip",
			Seed:         1,
			Timing:       DefaultHardware(),
			Pipelined:    true,
		},
		Traffic: TrafficConfig{
			Ports:    8,
			LineRate: 10 * Gbps,
			Load:     0.4,
			Pattern:  Uniform{},
			Sizes:    Fixed{Size: 1500 * Byte},
			Seed:     1,
		},
		Duration: 2 * Millisecond,
	}
	mb, err := built.Run()
	if err != nil {
		t.Fatal(err)
	}
	ml, err := literal.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mb, ml) {
		t.Fatalf("builder and literal runs differ:\n%+v\nvs\n%+v", mb, ml)
	}
}

// TestScenarioPackMatchesHandBuiltBitForBit is the declarative-path
// round-trip contract: a scenario lowered from a pack config runs
// bit-for-bit identically to the hand-built equivalent, whether loaded
// via ScenarioFromConfig or applied as the WithScenarioConfig base.
func TestScenarioPackMatchesHandBuiltBitForBit(t *testing.T) {
	cfg, err := LoadScenarioFile(filepath.Join("testdata", "scenarios", "hotspot_churn.json"))
	if err != nil {
		t.Fatal(err)
	}
	fromConfig, err := ScenarioFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fromOption, err := NewScenario(WithScenarioConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	hand, err := NewScenario(
		WithPorts(4),
		WithLineRate(10*Gbps),
		WithLinkDelay(500*Nanosecond),
		WithSlot(10*Microsecond),
		WithReconfigTime(Microsecond),
		WithAlgorithm("islip"),
		WithTiming(DefaultHardware()),
		WithPipelined(true),
		WithSeed(7),
		WithLoad(0.5),
		WithPattern(NewRotatingPermutation(4, 100*Microsecond, 7)),
		WithSizes(TrimodalInternet{}),
		WithDuration(500*Microsecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	mConfig, err := fromConfig.Run()
	if err != nil {
		t.Fatal(err)
	}
	mOption, err := fromOption.Run()
	if err != nil {
		t.Fatal(err)
	}
	mHand, err := hand.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mConfig, mHand) {
		t.Fatalf("pack-loaded and hand-built runs differ:\n%+v\nvs\n%+v", mConfig, mHand)
	}
	if !reflect.DeepEqual(mOption, mHand) {
		t.Fatalf("WithScenarioConfig and hand-built runs differ:\n%+v\nvs\n%+v", mOption, mHand)
	}
}

// TestWithScenarioConfigSurfacesBuildErrors pins the deferred-error
// contract: an invalid config applied as an option fails from
// NewScenario with the scenario-config error chain intact.
func TestWithScenarioConfigSurfacesBuildErrors(t *testing.T) {
	var bad ScenarioConfig // zero: no ports, no rates, no workload
	if _, err := NewScenario(WithScenarioConfig(bad)); !errors.Is(err, ErrBadScenarioConfig) {
		t.Fatalf("err = %v, want ErrBadScenarioConfig", err)
	}
}

// TestScenarioPackDeterministicAcrossWorkers runs the committed pack at
// several worker counts and requires both the metrics and the captured
// workload traces to be byte-identical — the determinism contract for
// every time-varying dynamic the pack ships.
func TestScenarioPackDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) ([]Metrics, [][]byte) {
		// Reload per worker count: pattern instances carry cached state
		// and must never be shared between runs under test.
		scs, err := LoadScenarioPack(filepath.Join("testdata", "scenarios"))
		if err != nil {
			t.Fatal(err)
		}
		bufs := make([]*bytes.Buffer, len(scs))
		for i := range scs {
			bufs[i] = &bytes.Buffer{}
			scs[i].CaptureTo = bufs[i]
		}
		ms, err := RunScenarios(scs, workers)
		if err != nil {
			t.Fatal(err)
		}
		traces := make([][]byte, len(bufs))
		for i, b := range bufs {
			if b.Len() == 0 {
				t.Fatalf("workers=%d scenario %d captured an empty trace", workers, i)
			}
			traces[i] = b.Bytes()
		}
		return ms, traces
	}
	baseMetrics, baseTraces := run(1)
	for _, workers := range []int{2, 8} {
		gotMetrics, gotTraces := run(workers)
		if !reflect.DeepEqual(gotMetrics, baseMetrics) {
			t.Fatalf("pack metrics differ between 1 and %d workers", workers)
		}
		for i := range baseTraces {
			if !bytes.Equal(gotTraces[i], baseTraces[i]) {
				t.Fatalf("scenario %d trace differs between 1 and %d workers", i, workers)
			}
		}
	}
}

// TestDrainDefaultSingleSource pins the Drain default: zero means
// DefaultDrain exactly, and DefaultDrain actually changes the run length
// versus another drain value.
func TestDrainDefaultSingleSource(t *testing.T) {
	if DefaultDrain != 0.5 {
		t.Fatalf("DefaultDrain = %v, want 0.5", DefaultDrain)
	}
	sc := demoScenario()
	sc.Drain = 0
	mZero, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	sc.Drain = DefaultDrain
	mDefault, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mZero, mDefault) {
		t.Fatalf("Drain=0 and Drain=DefaultDrain runs differ:\n%+v\nvs\n%+v", mZero, mDefault)
	}
	sc.Drain = 1.0
	mLong, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if mLong.Elapsed <= mDefault.Elapsed {
		t.Fatalf("Drain=1.0 did not lengthen the run: %v <= %v", mLong.Elapsed, mDefault.Elapsed)
	}
	// A literal scenario (no builder validation) still may not run with a
	// negative drain: the engine rejects it instead of silently skipping
	// the drain phase.
	sc.Drain = -1
	if _, err := sc.Run(); err == nil {
		t.Fatal("expected error for negative Drain at run time")
	}
}

func TestRunContextCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sc := demoScenario()
	sc.Duration = 50 * Millisecond
	sc.SampleEvery = 10 * Microsecond
	samples := 0
	sc.Observer = func(Sample) {
		samples++
		if samples == 3 {
			cancel()
		}
	}
	_, err := sc.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// 50 ms at a 10 us sampling period is 7500 samples; a prompt abort
	// sees only the few until the next cancellation check.
	if samples == 0 || samples > 1000 {
		t.Fatalf("run was not aborted mid-simulation: %d samples fired", samples)
	}
}

func TestRunScenariosContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunScenariosContext(ctx, []Scenario{demoScenario(), demoScenario()}, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestObserverSamplesDeterministic is the streaming determinism contract:
// the sample series of each scenario is identical at any worker count and
// observation does not perturb the final metrics.
func TestObserverSamplesDeterministic(t *testing.T) {
	run := func(workers int) ([][]Sample, []Metrics) {
		scs := make([]Scenario, 4)
		series := make([][]Sample, len(scs))
		for i := range scs {
			i := i
			scs[i] = demoScenario()
			scs[i].Traffic.Seed = DeriveSeed(7, i)
			scs[i].SampleEvery = 200 * Microsecond
			scs[i].Observer = func(s Sample) { series[i] = append(series[i], s) }
		}
		ms, err := RunScenarios(scs, workers)
		if err != nil {
			t.Fatal(err)
		}
		return series, ms
	}
	serialSamples, serialMetrics := run(1)
	for i, s := range serialSamples {
		if len(s) == 0 {
			t.Fatalf("scenario %d produced no samples", i)
		}
	}
	for _, workers := range []int{2, 8} {
		gotSamples, gotMetrics := run(workers)
		if !reflect.DeepEqual(gotSamples, serialSamples) {
			t.Fatalf("sample series differ between 1 and %d workers", workers)
		}
		if !reflect.DeepEqual(gotMetrics, serialMetrics) {
			t.Fatalf("metrics differ between 1 and %d workers", workers)
		}
	}

	// Observation is read-only: the same scenarios without observers
	// finish with identical metrics.
	scs := make([]Scenario, 4)
	for i := range scs {
		scs[i] = demoScenario()
		scs[i].Traffic.Seed = DeriveSeed(7, i)
	}
	plain, err := RunScenarios(scs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, serialMetrics) {
		t.Fatal("attaching observers changed the final metrics")
	}
}

// TestRegisterAlgorithmPublic registers an algorithm through the public
// plug-in point and runs a scenario on it.
func TestRegisterAlgorithmPublic(t *testing.T) {
	if !KnownAlgorithm("test-diag") {
		RegisterAlgorithm("test-diag", func(_ int, _ uint64) Algorithm {
			return diagAlg{}
		})
	}
	sc := demoScenario()
	sc.Fabric.Algorithm = "test-diag"
	m, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Delivered == 0 {
		t.Fatal("nothing delivered through the plugged-in algorithm")
	}
	found := false
	for _, name := range Algorithms() {
		if name == "test-diag" {
			found = true
		}
	}
	if !found {
		t.Fatalf("test-diag not listed in Algorithms(): %v", Algorithms())
	}
}

// diagAlg serves each input's highest-demand output greedily by input
// index — a minimal but demand-aware external algorithm.
type diagAlg struct{}

func (a diagAlg) Name() string { return "test-diag" }
func (a diagAlg) Reset()       {}
func (a diagAlg) Complexity(n int) Complexity {
	return Complexity{HardwareDepth: n, SoftwareOps: n * n}
}
func (a diagAlg) Schedule(d DemandReader) Matching {
	n := d.N()
	m := NewMatching(n)
	used := make([]bool, n)
	for i := 0; i < n; i++ {
		bestJ, bestV := -1, int64(0)
		for j := 0; j < n; j++ {
			if !used[j] && d.At(i, j) > bestV {
				bestJ, bestV = j, d.At(i, j)
			}
		}
		if bestJ >= 0 {
			m[i] = bestJ
			used[bestJ] = true
		}
	}
	return m
}
