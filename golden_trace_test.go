package hybridsched

import (
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// The golden-trace regression suite: small HSTR traces committed under
// testdata/ plus the expected report digest of replaying each through the
// default scheduler set. Any behavioral drift in the fabric, a scheduler,
// or the replay path shows up as a digest mismatch. Regenerate
// intentionally with:
//
//	go test -run TestGoldenTraceReplay -update-golden .
var updateGolden = flag.Bool("update-golden", false,
	"regenerate testdata golden traces and report digests")

// goldenAlgorithms is the default scheduler set every golden trace is
// replayed through.
var goldenAlgorithms = []string{"islip", "greedy", "tdma", "bvn"}

// goldenWorkloads defines the committed traces. Each is captured from a
// small deterministic scenario covering a distinct arrival process or
// time-varying dynamic; the sc function carries the complete capture
// configuration, and replays reuse it with only the algorithm swapped.
var goldenWorkloads = []struct {
	name string
	sc   func() Scenario
}{
	{"poisson_trimodal", func() Scenario {
		sc := goldenFabricScenario(500 * Microsecond)
		sc.Traffic = TrafficConfig{
			Ports:    4,
			LineRate: 10 * Gbps,
			Load:     0.5,
			Pattern:  Uniform{},
			Sizes:    TrimodalInternet{},
			Seed:     7,
		}
		return sc
	}},
	// Cache-follower flows average ~230 KB, so this one runs longer to
	// catch a meaningful flow population.
	{"flows_cachefollower", func() Scenario {
		sc := goldenFabricScenario(2 * Millisecond)
		sc.Traffic = TrafficConfig{
			Ports:     4,
			LineRate:  10 * Gbps,
			Load:      0.5,
			Pattern:   Uniform{},
			Process:   FlowArrivals,
			FlowSizes: CacheFollower(),
			Seed:      7,
		}
		return sc
	}},
	// The time-varying dynamics, captured from the committed scenario
	// pack itself — the same documents the loader tests, the fuzzer seed
	// corpus and the sweep smoke run — so the declarative path is pinned
	// end to end.
	{"hotspot_churn", func() Scenario { return mustPackScenario("hotspot_churn") }},
	{"incast", func() Scenario { return mustPackScenario("incast") }},
	{"diurnal", func() Scenario { return mustPackScenario("diurnal") }},
	{"dimdim", func() Scenario { return mustPackScenario("dimdim") }},
	{"scalefree", func() Scenario { return mustPackScenario("scalefree") }},
}

// mustPackScenario loads one committed scenario-pack config and lowers
// it onto a Scenario. Load failures panic: the loader's own tests cover
// them with real diagnostics.
func mustPackScenario(name string) Scenario {
	sc, err := LoadScenarioFile(filepath.Join("testdata", "scenarios", name+".json"))
	if err != nil {
		panic(err)
	}
	built, err := ScenarioFromConfig(sc)
	if err != nil {
		panic(err)
	}
	return built
}

// goldenFabricScenario is the capture-side configuration; replays swap
// the algorithm.
func goldenFabricScenario(dur Duration) Scenario {
	return Scenario{
		Fabric: FabricConfig{
			Ports:        4,
			LineRate:     10 * Gbps,
			LinkDelay:    500 * Nanosecond,
			Slot:         10 * Microsecond,
			ReconfigTime: Microsecond,
			Algorithm:    "islip",
			Seed:         7,
			Timing:       DefaultHardware(),
			Pipelined:    true,
		},
		Duration: dur,
	}
}

// reportDigest renders the replay metrics canonically and hashes them.
// Every field that a report surfaces is included, so any drift is caught;
// floats are formatted with fixed precision for stability.
func reportDigest(m Metrics) string {
	var b strings.Builder
	fmt.Fprintf(&b, "elapsed=%d injected=%d injbits=%d delivered=%d delbits=%d\n",
		m.Elapsed, m.Injected, m.InjectedBits, m.Delivered, m.DeliveredBits)
	fmt.Fprintf(&b, "ocs: conf=%d dead=%d bits=%d pkts=%d trunc=%d\n",
		m.OCS.Configures, m.OCS.DeadTime, m.OCS.BitsDelivered, m.OCS.PktsDelivered, m.OCS.Truncated)
	fmt.Fprintf(&b, "eps: bits=%d pkts=%d drops=%d dropbits=%d peakq=%d\n",
		m.EPS.BitsDelivered, m.EPS.PktsDelivered, m.EPS.Drops, m.EPS.DroppedBits, m.EPS.PeakQueueBits)
	fmt.Fprintf(&b, "buf: sw=%d host=%d\n", m.PeakSwitchBuffer, m.PeakHostBuffer)
	fmt.Fprintf(&b, "drops: voq=%d host=%d cls=%d missed=%d shunted=%d\n",
		m.DropsVOQ, m.DropsHost, m.DropsClassify, m.MissedCircuit, m.Shunted)
	for _, lat := range []struct {
		name string
		s    Summary
	}{{"all", m.Latency}, {"mice", m.LatencyMice}, {"ocs", m.LatencyOCS}, {"eps", m.LatencyEPS}} {
		fmt.Fprintf(&b, "lat-%s: n=%d min=%d max=%d mean=%.3f p50=%d p90=%d p99=%d p999=%d\n",
			lat.name, lat.s.Count, lat.s.Min, lat.s.Max, lat.s.Mean,
			lat.s.P50, lat.s.P90, lat.s.P99, lat.s.P999)
	}
	fmt.Fprintf(&b, "loop: cycles=%d idle=%d granted=%d stale-p50=%d\n",
		m.Loop.Cycles, m.Loop.IdleCycles, m.Loop.GrantedPairs, m.Loop.Staleness.P50)
	fmt.Fprintf(&b, "duty=%.6f\n", m.DutyCycle)
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

const goldenDigestFile = "testdata/golden_digests.txt"

func tracePath(name string) string {
	return filepath.Join("testdata", name+".hstr")
}

// readGoldenDigests parses "key digest" lines.
func readGoldenDigests(t *testing.T) map[string]string {
	t.Helper()
	data, err := os.ReadFile(goldenDigestFile)
	if err != nil {
		t.Fatalf("missing golden digests (run with -update-golden to create): %v", err)
	}
	out := map[string]string{}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("bad digest line %q", line)
		}
		out[fields[0]] = fields[1]
	}
	return out
}

// replayScenarios builds the replay matrix: every golden trace through
// every algorithm of the default set, in deterministic order.
func replayScenarios(t *testing.T) (keys []string, scs []Scenario) {
	t.Helper()
	for _, w := range goldenWorkloads {
		recs, err := ReadTraceFile(tracePath(w.name))
		if err != nil {
			t.Fatalf("read golden trace (run with -update-golden to create): %v", err)
		}
		if len(recs) == 0 {
			t.Fatalf("golden trace %s is empty", w.name)
		}
		for _, alg := range goldenAlgorithms {
			sc := w.sc()
			sc.Fabric.Algorithm = alg
			// Replay replaces the generator: the workload configuration is
			// unused, so zero it to keep replays pure fabric tests.
			sc.Traffic = TrafficConfig{}
			sc.Replay = recs
			sc.CaptureTo = nil
			keys = append(keys, w.name+"/"+alg)
			scs = append(scs, sc)
		}
	}
	return keys, scs
}

// regenerateGolden captures fresh traces and digests and writes them to
// testdata/.
func regenerateGolden(t *testing.T) {
	t.Helper()
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	for _, w := range goldenWorkloads {
		f, err := os.Create(tracePath(w.name))
		if err != nil {
			t.Fatal(err)
		}
		sc := w.sc()
		sc.CaptureTo = f
		if _, err := sc.Run(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	keys, scs := replayScenarios(t)
	ms, err := RunScenarios(scs, 1)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString("# sha256 of the canonical replay report per trace/algorithm.\n")
	b.WriteString("# Regenerate with: go test -run TestGoldenTraceReplay -update-golden .\n")
	lines := make([]string, len(keys))
	for i, key := range keys {
		lines[i] = fmt.Sprintf("%s %s", key, reportDigest(ms[i]))
	}
	sort.Strings(lines)
	b.WriteString(strings.Join(lines, "\n"))
	b.WriteString("\n")
	if err := os.WriteFile(goldenDigestFile, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("regenerated %d traces and %d digests", len(goldenWorkloads), len(keys))
}

// TestGoldenTraceReplay is the tier-1 regression gate: replay every
// committed trace through the default scheduler set at one worker and at
// four, and require the canonical report digest of every run to match the
// committed golden value.
func TestGoldenTraceReplay(t *testing.T) {
	if *updateGolden {
		regenerateGolden(t)
	}
	want := readGoldenDigests(t)
	keys, scs := replayScenarios(t)
	if len(keys) != len(want) {
		t.Fatalf("digest file has %d entries, replay matrix has %d", len(want), len(keys))
	}
	for _, workers := range []int{1, 4} {
		ms, err := RunScenarios(scs, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i, key := range keys {
			got := reportDigest(ms[i])
			if want[key] == "" {
				t.Fatalf("no golden digest for %s", key)
			}
			if got != want[key] {
				t.Errorf("workers=%d %s: digest %s != golden %s (behavioral drift; "+
					"verify and regenerate with -update-golden)", workers, key, got, want[key])
			}
		}
	}
}
