package hybridsched

import (
	"bytes"
	"strings"
	"testing"
)

// TestServiceMetricsPublic wires a registry through ServiceConfig and
// checks the per-shard serve metrics reach the Prometheus exposition,
// alongside the metric-backed Stats fields.
func TestServiceMetricsPublic(t *testing.T) {
	reg := NewMetricsRegistry()
	s := newTestService(t, ServiceConfig{
		Ports: 8, Algorithm: "islip", SlotBits: 1000, Shards: 2, Metrics: reg,
	})
	if err := s.OfferShard(1, 2, 5, 1500); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st[1].Offers != 1 || st[0].Offers != 0 {
		t.Fatalf("metric-backed Offers = %d/%d, want 0/1", st[0].Offers, st[1].Offers)
	}
	if st[1].EpochNsP50 <= 0 {
		t.Fatalf("shard 1 epoch latency p50 = %d, want > 0", st[1].EpochNsP50)
	}
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`hybridsched_serve_epochs_total{shard="0"} 1`,
		`hybridsched_serve_epochs_total{shard="1"} 1`,
		`hybridsched_serve_offered_bits_total{shard="1"} 1500`,
		`hybridsched_serve_served_bits_total{shard="1"} 1000`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

// TestMetricsObserverFabric attaches MetricsObserver to a simulation run
// and checks the fabric metric family fills in — and that observation
// stays read-only (the determinism contract is pinned separately by
// TestObserverSamplesDeterministic).
func TestMetricsObserverFabric(t *testing.T) {
	reg := NewMetricsRegistry()
	sc := demoScenario()
	sc.SampleEvery = 200 * Microsecond
	sc.Observer = MetricsObserver(reg, MetricLabel{Key: "run", Value: "demo"})
	m, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Delivered == 0 {
		t.Fatal("scenario delivered nothing")
	}
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{
		`hybridsched_fabric_injected_packets_total{run="demo"}`,
		`hybridsched_fabric_delivered_packets_total{run="demo"}`,
		`hybridsched_fabric_sched_cycles_total{run="demo"}`,
		`hybridsched_fabric_latency_p99_ns{run="demo"}`,
		`hybridsched_fabric_ocs_duty_cycle_ppm{run="demo"}`,
	} {
		if !strings.Contains(out, name+" ") {
			t.Errorf("exposition missing %s in:\n%s", name, out)
		}
	}
	// The cumulative counters are deltas over the sample stream: the
	// delivered counter must not exceed the run's final delivered total
	// (the last sample may precede the final deliveries).
	for _, p := range reg.Snapshot() {
		if p.Desc.Name == "hybridsched_fabric_delivered_packets_total" {
			if p.Value <= 0 || p.Value > m.Delivered {
				t.Errorf("delivered counter %d outside (0, %d]", p.Value, m.Delivered)
			}
		}
	}
}
