// Package hybridsched is a simulation framework for prototyping and
// evaluating schedulers for hybrid electrical/optical data-center
// switches, reproducing "Extreme data-rate scheduling for the Data Center"
// (Manihatty-Bojan, Zilberman, Antichi, Moore — SIGCOMM 2015).
//
// The paper argues that millisecond-scale software schedulers cannot drive
// fast optical circuit switches, and proposes a hardware framework split
// into processing logic (classification + VOQs), scheduling logic
// (pluggable algorithms) and switching logic (OCS + EPS). This module
// builds that entire framework on a picosecond discrete-event simulator.
//
// This root package is the complete public surface: nothing under
// examples/ or cmd/ imports an internal package, and downstream code does
// not need to either. It provides:
//
//   - The scenario vocabulary: durations, sizes and rates (Duration, Size,
//     BitRate and their constants and parsers), timing models
//     (DefaultHardware, DefaultSoftware), traffic patterns, size
//     distributions and arrival processes (Uniform, Hotspot, Zipf, Fixed,
//     TrimodalInternet, Poisson, OnOff), and classification rules (Rule,
//     ElephantThresholdRules).
//   - Scenario construction: either a Scenario literal or the validating
//     functional-options builder NewScenario(WithPorts(16), ...).
//   - Execution: Scenario.Run for a single result, RunScenarios to fan
//     independent scenarios out across cores with deterministic ordering,
//     and the context-aware RunContext/RunScenariosContext variants that
//     abort mid-simulation on cancellation.
//   - Streaming observation: set SampleEvery and Observer (or use
//     WithObserver) to receive periodic time-series Samples — queue
//     depths, latency percentiles, circuit utilization over simulated
//     time — while the run is in flight, without perturbing it.
//   - The scheduling-logic plug-in point: RegisterAlgorithm installs a
//     user Algorithm (consuming a DemandReader, producing a Matching)
//     alongside the built-ins (iSLIP, PIM, wavefront, TDMA, greedy,
//     Hungarian); see examples/customalg.
//   - The surrounding toolkit: the simulation kernel (NewSimulator), the
//     NetFPGA-style register-file device (NewDevice), the rack-scale
//     cluster testbed (NewCluster), demand matrices and estimators, and
//     the deterministic worker pool (NewPool, MapPool).
//
// The public subpackages hybridsched/experiments and hybridsched/report
// carry the paper's reproduced experiments and the table/plot rendering
// they report through. The examples/ directory shows the API on the
// paper's motivating workloads, and bench_test.go regenerates every
// figure and claim (see README.md for the experiment index).
package hybridsched

import (
	"context"
	"errors"
	"fmt"
	"io"

	"hybridsched/internal/fabric"
	"hybridsched/internal/runner"
)

// errDuration is the run-geometry precondition every entry point shares;
// call sites wrap it with their own context.
var errDuration = errors.New("Duration must be positive")

// Re-exported core types, so downstream code can drive scenarios without
// importing internal packages directly.
type (
	// FabricConfig configures the hybrid switch (ports, rates, slot,
	// reconfiguration time, algorithm, timing model, buffering regime).
	FabricConfig = fabric.Config
	// Metrics is the full result set of a run.
	Metrics = fabric.Metrics
	// Fabric is the assembled hybrid switch.
	Fabric = fabric.Fabric
	// BufferPlacement selects the Figure 1 buffering regime.
	BufferPlacement = fabric.BufferPlacement
)

// Buffer placements (Figure 1 regimes).
const (
	BufferAtSwitch = fabric.BufferAtSwitch
	BufferAtHost   = fabric.BufferAtHost
)

// DefaultDrain is the drain fraction used when Scenario.Drain is zero:
// after the workload stops, the run continues for Duration*DefaultDrain so
// queues flush. internal/runner owns the value; this is the same constant.
const DefaultDrain = runner.DefaultDrain

// Scenario is one complete experiment: a switch configuration, a workload,
// and how long to run it. Build it as a literal or with NewScenario; both
// run identically.
type Scenario struct {
	// Name labels the scenario in sweep rows and experiment tables. It is
	// optional and does not affect execution; pack-loaded scenarios carry
	// their config's name (defaulted from the file name).
	Name string

	Fabric  FabricConfig
	Traffic TrafficConfig
	// Duration is how long traffic is offered. The run continues for
	// Duration*Drain after the workload stops so queues flush. Drain
	// defaults to DefaultDrain.
	Duration Duration
	Drain    float64
	// SampleEvery, when positive and Observer is set, streams one Sample
	// of the running fabric per interval of simulated time. Sampling is
	// read-only: metrics are bit-identical with or without an observer.
	SampleEvery Duration
	// Observer receives the periodic samples in simulated-time order, on
	// the goroutine executing the scenario.
	Observer Observer
	// Replay, when non-empty, replaces the traffic generator: each
	// record's packet is injected at its recorded creation time, so a
	// captured workload runs bit-identically against any fabric
	// configuration. Traffic is ignored in this mode. Load a file with
	// WithWorkloadTrace or assign ReadTraceFile output directly.
	Replay []TraceRecord
	// CaptureTo, when non-nil, receives this run's offered workload as a
	// complete HSTR trace, written when the run succeeds. Capture is
	// read-only: metrics are bit-identical with or without it.
	CaptureTo io.Writer

	// traceErr records a workload-trace load failure from an option
	// (WithWorkloadTrace) so Validate and Run surface it eagerly.
	traceErr error
}

// job lowers the scenario onto the execution engine.
func (sc Scenario) job() runner.Job {
	return runner.Job{
		Fabric:      sc.Fabric,
		Traffic:     sc.Traffic,
		Duration:    sc.Duration,
		Drain:       sc.Drain,
		SampleEvery: sc.SampleEvery,
		Observer:    sc.Observer,
		Replay:      sc.Replay,
		CaptureTo:   sc.CaptureTo,
	}
}

// Validate checks the whole scenario eagerly — run geometry, fabric
// configuration (including that the algorithm name is registered), and
// workload — without executing anything. NewScenario calls it; literal
// scenarios may call it directly to fail fast before a long run.
func (sc Scenario) Validate() error {
	if sc.traceErr != nil {
		return fmt.Errorf("hybridsched: %w", sc.traceErr)
	}
	if sc.Duration <= 0 {
		return fmt.Errorf("hybridsched: %w", errDuration)
	}
	if sc.Drain < 0 {
		return fmt.Errorf("hybridsched: Drain must be non-negative")
	}
	if sc.SampleEvery < 0 {
		return fmt.Errorf("hybridsched: SampleEvery must be non-negative")
	}
	if err := sc.Fabric.Validate(); err != nil {
		return fmt.Errorf("hybridsched: %w", err)
	}
	if len(sc.Replay) > 0 {
		// Replay replaces the generator; the workload configuration is
		// unused, but the records must be time-sorted to schedule, fit
		// inside the offered window (silent truncation would break the
		// bit-identical-replay contract), and their ports must fit the
		// fabric being replayed against. Slice the records explicitly to
		// replay a prefix.
		for i, r := range sc.Replay {
			if i > 0 && r.Time < sc.Replay[i-1].Time {
				return fmt.Errorf("hybridsched: Replay record %d out of order", i)
			}
			if r.Time > Time(sc.Duration) {
				return fmt.Errorf("hybridsched: Replay record %d at %v is beyond the %v offered window",
					i, r.Time, sc.Duration)
			}
			if int(r.Src) >= sc.Fabric.Ports || int(r.Dst) >= sc.Fabric.Ports {
				return fmt.Errorf("hybridsched: Replay record %d ports (%d->%d) outside the %d-port fabric",
					i, r.Src, r.Dst, sc.Fabric.Ports)
			}
		}
		return nil
	}
	if err := sc.job().EffectiveTraffic().Validate(); err != nil {
		return fmt.Errorf("hybridsched: %w", err)
	}
	return nil
}

// Run builds and executes the scenario, returning the final metrics.
func (sc Scenario) Run() (Metrics, error) {
	return sc.RunContext(context.Background())
}

// RunContext is Run under a context: cancellation aborts the simulation
// mid-run and returns ctx's error. A context without cancellation adds
// zero overhead.
func (sc Scenario) RunContext(ctx context.Context) (Metrics, error) {
	if sc.traceErr != nil {
		return Metrics{}, fmt.Errorf("hybridsched: %w", sc.traceErr)
	}
	if sc.Duration <= 0 {
		return Metrics{}, fmt.Errorf("hybridsched: %w", errDuration)
	}
	m, _, err := sc.job().RunContext(ctx)
	return m, err
}

// RunWithFabric is Run, additionally returning the fabric for callers that
// want to inspect component state (tables, estimators) post-run.
func (sc Scenario) RunWithFabric() (Metrics, *Fabric, error) {
	if sc.traceErr != nil {
		return Metrics{}, nil, fmt.Errorf("hybridsched: %w", sc.traceErr)
	}
	if sc.Duration <= 0 {
		return Metrics{}, nil, fmt.Errorf("hybridsched: %w", errDuration)
	}
	return sc.job().Run()
}

// RunScenarios executes independent scenarios on a worker pool of the
// given size (0 = GOMAXPROCS) and returns their metrics in submission
// order — identical at any worker count.
func RunScenarios(scs []Scenario, workers int) ([]Metrics, error) {
	return RunScenariosContext(context.Background(), scs, workers)
}

// RunScenariosContext is RunScenarios under a context: once ctx is
// canceled, running scenarios abort and not-yet-started ones return
// immediately; the first (lowest-index) error is returned.
func RunScenariosContext(ctx context.Context, scs []Scenario, workers int) ([]Metrics, error) {
	jobs := make([]runner.Job, len(scs))
	for i, sc := range scs {
		if sc.traceErr != nil {
			return nil, fmt.Errorf("hybridsched: scenario %d: %w", i, sc.traceErr)
		}
		if sc.Duration <= 0 {
			return nil, fmt.Errorf("hybridsched: scenario %d: %w", i, errDuration)
		}
		jobs[i] = sc.job()
	}
	return runner.New(workers).RunScenariosContext(ctx, jobs)
}
