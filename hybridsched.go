// Package hybridsched is a simulation framework for prototyping and
// evaluating schedulers for hybrid electrical/optical data-center
// switches, reproducing "Extreme data-rate scheduling for the Data Center"
// (Manihatty-Bojan, Zilberman, Antichi, Moore — SIGCOMM 2015).
//
// The paper argues that millisecond-scale software schedulers cannot drive
// fast optical circuit switches, and proposes a hardware framework split
// into processing logic (classification + VOQs), scheduling logic
// (pluggable algorithms) and switching logic (OCS + EPS). This module
// builds that entire framework on a picosecond discrete-event simulator:
//
//   - internal/match    — the pluggable scheduling algorithms (iSLIP, PIM,
//     wavefront, TDMA, greedy, Hungarian, BvN/max-min decompositions)
//   - internal/sched    — the scheduling loop with hardware and software
//     timing models (the ns-vs-ms comparison at the paper's core)
//   - internal/fabric   — the assembled hybrid switch of Figure 2
//   - internal/platform — the NetFPGA-style register/plug-in contract
//
// This root package is the high-level entry point: describe a Scenario
// (fabric + workload + duration) and Run it to metrics. Independent
// scenarios fan out across cores through internal/runner (RunScenarios).
// The examples/ directory shows the API on the paper's motivating
// workloads, and bench_test.go regenerates every figure and claim (see
// README.md for the experiment index).
package hybridsched

import (
	"fmt"

	"hybridsched/internal/fabric"
	"hybridsched/internal/match"
	"hybridsched/internal/runner"
	"hybridsched/internal/traffic"
	"hybridsched/internal/units"
)

// Re-exported types, so downstream code can drive scenarios without
// importing internal packages directly.
type (
	// FabricConfig configures the hybrid switch (ports, rates, slot,
	// reconfiguration time, algorithm, timing model, buffering regime).
	FabricConfig = fabric.Config
	// TrafficConfig configures the workload (load, pattern, sizes,
	// process).
	TrafficConfig = traffic.Config
	// Metrics is the full result set of a run.
	Metrics = fabric.Metrics
	// Fabric is the assembled hybrid switch.
	Fabric = fabric.Fabric
)

// Buffer placements (Figure 1 regimes).
const (
	BufferAtSwitch = fabric.BufferAtSwitch
	BufferAtHost   = fabric.BufferAtHost
)

// Algorithms returns the names of all registered scheduling algorithms.
func Algorithms() []string { return match.Names() }

// Scenario is one complete experiment: a switch configuration, a workload,
// and how long to run it.
type Scenario struct {
	Fabric  FabricConfig
	Traffic TrafficConfig
	// Duration is how long traffic is offered. The run continues for
	// Duration*Drain after the workload stops so queues flush. Drain
	// defaults to 0.5.
	Duration units.Duration
	Drain    float64
}

// Run builds and executes the scenario, returning the final metrics.
func (sc Scenario) Run() (Metrics, error) {
	m, _, err := sc.RunWithFabric()
	return m, err
}

// RunWithFabric is Run, additionally returning the fabric for callers that
// want to inspect component state (tables, estimators) post-run.
func (sc Scenario) RunWithFabric() (Metrics, *Fabric, error) {
	if sc.Duration <= 0 {
		return Metrics{}, nil, fmt.Errorf("hybridsched: Duration must be positive")
	}
	return runner.Job{
		Fabric:   sc.Fabric,
		Traffic:  sc.Traffic,
		Duration: sc.Duration,
		Drain:    sc.Drain,
	}.Run()
}

// RunScenarios executes independent scenarios on a worker pool of the
// given size (0 = GOMAXPROCS) and returns their metrics in submission
// order — identical at any worker count.
func RunScenarios(scs []Scenario, workers int) ([]Metrics, error) {
	jobs := make([]runner.Job, len(scs))
	for i, sc := range scs {
		if sc.Duration <= 0 {
			return nil, fmt.Errorf("hybridsched: scenario %d: Duration must be positive", i)
		}
		jobs[i] = runner.Job{
			Fabric:   sc.Fabric,
			Traffic:  sc.Traffic,
			Duration: sc.Duration,
			Drain:    sc.Drain,
		}
	}
	return runner.New(workers).RunScenarios(jobs)
}
