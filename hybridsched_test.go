package hybridsched

import (
	"testing"
)

func demoScenario() Scenario {
	return Scenario{
		Fabric: FabricConfig{
			Ports:        8,
			LineRate:     10 * Gbps,
			LinkDelay:    500 * Nanosecond,
			Slot:         10 * Microsecond,
			ReconfigTime: Microsecond,
			Algorithm:    "islip",
			Timing:       DefaultHardware(),
			Pipelined:    true,
		},
		Traffic: TrafficConfig{
			Ports:    8,
			LineRate: 10 * Gbps,
			Load:     0.4,
			Pattern:  Uniform{},
			Sizes:    Fixed{Size: 1500 * Byte},
			Seed:     1,
		},
		Duration: 2 * Millisecond,
	}
}

func TestScenarioRun(t *testing.T) {
	m, err := demoScenario().Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if f := m.DeliveredFraction(); f < 0.9 {
		t.Fatalf("delivered fraction %.3f too low", f)
	}
}

func TestScenarioValidation(t *testing.T) {
	sc := demoScenario()
	sc.Duration = 0
	if _, err := sc.Run(); err == nil {
		t.Fatal("expected error for zero duration")
	}
	sc = demoScenario()
	sc.Fabric.Ports = 0
	if _, err := sc.Run(); err == nil {
		t.Fatal("expected error for bad fabric")
	}
	sc = demoScenario()
	sc.Traffic.Load = 0
	if _, err := sc.Run(); err == nil {
		t.Fatal("expected error for bad traffic")
	}
}

func TestScenarioDeterminism(t *testing.T) {
	m1, err := demoScenario().Run()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := demoScenario().Run()
	if err != nil {
		t.Fatal(err)
	}
	if m1.Delivered != m2.Delivered || m1.DeliveredBits != m2.DeliveredBits ||
		m1.Latency.P99 != m2.Latency.P99 || m1.OCS.Configures != m2.OCS.Configures {
		t.Fatalf("scenario not reproducible:\n%+v\nvs\n%+v", m1, m2)
	}
}

func TestRunWithFabricExposesComponents(t *testing.T) {
	_, f, err := demoScenario().RunWithFabric()
	if err != nil {
		t.Fatal(err)
	}
	if f == nil || f.Table() == nil {
		t.Fatal("fabric not exposed")
	}
}

func TestAlgorithmsListed(t *testing.T) {
	names := Algorithms()
	if len(names) < 6 {
		t.Fatalf("algorithms = %v", names)
	}
}
