// Package report renders experiment output: fixed-width tables for
// terminal reading, CSV for plotting, and coarse ASCII log-log plots so a
// figure's shape is visible without leaving the terminal.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"hybridsched/internal/stats"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000 || math.Abs(v) < 0.001:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
}

// CSV writes the table as comma-separated values (quoting cells containing
// commas or quotes).
func (t *Table) CSV(w io.Writer) {
	writeCSVRow(w, t.headers)
	for _, row := range t.rows {
		writeCSVRow(w, row)
	}
}

func writeCSVRow(w io.Writer, cells []string) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(w, ",")
		}
		if strings.ContainsAny(c, ",\"\n") {
			c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		fmt.Fprint(w, c)
	}
	fmt.Fprintln(w)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// LogLogPlot renders series as a coarse ASCII scatter on log-log axes —
// enough to see the shape of Figure 1 in a terminal.
func LogLogPlot(w io.Writer, title string, width, height int, series ...*stats.Series) {
	if width < 20 {
		width = 20
	}
	if height < 8 {
		height = 8
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			if s.X[i] <= 0 || s.Y[i] <= 0 {
				continue
			}
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if minX > maxX || minY > maxY {
		fmt.Fprintf(w, "%s: no positive data\n", title)
		return
	}
	lx0, lx1 := math.Log10(minX), math.Log10(maxX)
	ly0, ly1 := math.Log10(minY), math.Log10(maxY)
	if lx1 == lx0 {
		lx1 = lx0 + 1
	}
	if ly1 == ly0 {
		ly1 = ly0 + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := "*o+x#@"
	for si, s := range series {
		mark := marks[si%len(marks)]
		for i := range s.X {
			if s.X[i] <= 0 || s.Y[i] <= 0 {
				continue
			}
			cx := int((math.Log10(s.X[i]) - lx0) / (lx1 - lx0) * float64(width-1))
			cy := int((math.Log10(s.Y[i]) - ly0) / (ly1 - ly0) * float64(height-1))
			row := height - 1 - cy
			grid[row][cx] = mark
		}
	}
	fmt.Fprintf(w, "%s  (x: %.3g..%.3g, y: %.3g..%.3g, log-log)\n", title, minX, maxX, minY, maxY)
	for _, row := range grid {
		fmt.Fprintf(w, "|%s|\n", row)
	}
	for si, s := range series {
		fmt.Fprintf(w, "  %c = %s\n", marks[si%len(marks)], s.Name)
	}
}
