package report

import (
	"strings"
	"testing"

	"hybridsched/internal/stats"
)

func TestTableRender(t *testing.T) {
	tab := NewTable("demo", "name", "value")
	tab.AddRow("alpha", 1)
	tab.AddRow("beta-longer", 123456.0)
	var b strings.Builder
	tab.Render(&b)
	out := b.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "beta-longer") {
		t.Fatalf("missing rows:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + separator + 2 rows
	if len(lines) != 5 {
		t.Fatalf("line count %d:\n%s", len(lines), out)
	}
	// Columns aligned: header and rows share the first column width.
	if tab.Rows() != 2 {
		t.Fatal("row count wrong")
	}
}

func TestFloatFormatting(t *testing.T) {
	tab := NewTable("", "v")
	tab.AddRow(0.0)
	tab.AddRow(0.5)
	tab.AddRow(123456.789)
	tab.AddRow(0.0000001)
	var b strings.Builder
	tab.Render(&b)
	out := b.String()
	for _, want := range []string{"0", "0.500", "1.23e+05", "1e-07"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestCSVEscaping(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow(`has,comma`, `has"quote`)
	var b strings.Builder
	tab.CSV(&b)
	out := b.String()
	if !strings.Contains(out, `"has,comma"`) {
		t.Fatalf("comma not quoted: %s", out)
	}
	if !strings.Contains(out, `"has""quote"`) {
		t.Fatalf("quote not doubled: %s", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Fatalf("header wrong: %s", out)
	}
}

func TestLogLogPlot(t *testing.T) {
	s := &stats.Series{Name: "curve"}
	for x := 1.0; x <= 1e6; x *= 10 {
		s.Append(x, x*x)
	}
	var b strings.Builder
	LogLogPlot(&b, "fig", 40, 10, s)
	out := b.String()
	if !strings.Contains(out, "fig") || !strings.Contains(out, "* = curve") {
		t.Fatalf("plot malformed:\n%s", out)
	}
	if strings.Count(out, "*") < 5 {
		t.Fatalf("too few points plotted:\n%s", out)
	}
}

func TestLogLogPlotEmpty(t *testing.T) {
	var b strings.Builder
	LogLogPlot(&b, "empty", 40, 10, &stats.Series{Name: "none"})
	if !strings.Contains(b.String(), "no positive data") {
		t.Fatalf("empty plot handling wrong: %s", b.String())
	}
}

func TestLogLogPlotClampsTinyDimensions(t *testing.T) {
	s := &stats.Series{Name: "x"}
	s.Append(1, 1)
	s.Append(10, 10)
	var b strings.Builder
	LogLogPlot(&b, "t", 1, 1, s) // must clamp, not panic
	if b.Len() == 0 {
		t.Fatal("no output")
	}
}
