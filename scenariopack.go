package hybridsched

import (
	"fmt"
	"io"

	"hybridsched/internal/scenario"
)

// The declarative scenario-pack surface: a ScenarioConfig is the JSON
// form of a complete experiment — fabric geometry, algorithm, workload
// shape and the time-varying dynamics layered on top — so scenarios are
// data that can be added, audited and swept without a code change. Load
// one with LoadScenarioConfig/LoadScenarioFile, a directory of them with
// LoadScenarioPack, and lower onto a runnable Scenario with
// ScenarioFromConfig or the WithScenarioConfig option.
type (
	// ScenarioConfig is one declarative scenario document.
	ScenarioConfig = scenario.Config
	// ScenarioWorkload is the traffic side of a ScenarioConfig.
	ScenarioWorkload = scenario.Workload
	// PatternSpec names a destination pattern and its knobs (uniform,
	// permutation, hotspot, zipf, hotspot-churn, incast, conference,
	// scalefree).
	PatternSpec = scenario.PatternSpec
	// SizeSpec names a size distribution (fixed, trimodal, webconference,
	// websearch, datamining, hadoop, cachefollower).
	SizeSpec = scenario.SizeSpec
	// LoadProfileSpec names a time-varying load profile (diurnal).
	LoadProfileSpec = scenario.LoadProfileSpec
)

// Scenario-config failure modes. Every load or validation failure wraps
// ErrBadScenarioConfig; the three children distinguish malformed JSON,
// field validation, and pack-directory problems.
var (
	ErrBadScenarioConfig = scenario.ErrBadScenarioConfig
	ErrScenarioSyntax    = scenario.ErrSyntax
	ErrScenarioField     = scenario.ErrField
	ErrScenarioPack      = scenario.ErrPack
)

// LoadScenarioConfig decodes exactly one JSON scenario config from r and
// validates it eagerly. On success the config is Validate-clean; on
// failure the error wraps ErrBadScenarioConfig.
func LoadScenarioConfig(r io.Reader) (ScenarioConfig, error) { return scenario.Load(r) }

// LoadScenarioFile loads one scenario config file, defaulting its Name
// to the file's base name.
func LoadScenarioFile(path string) (ScenarioConfig, error) { return scenario.LoadFile(path) }

// LoadScenarioPack loads every *.json scenario config under dir (sorted
// by filename) and lowers each onto a runnable Scenario — ready for
// RunScenarios. An empty directory is an error wrapping ErrScenarioPack.
func LoadScenarioPack(dir string) ([]Scenario, error) {
	cfgs, err := scenario.LoadPack(dir)
	if err != nil {
		return nil, fmt.Errorf("hybridsched: %w", err)
	}
	out := make([]Scenario, len(cfgs))
	for i, c := range cfgs {
		sc, err := ScenarioFromConfig(c)
		if err != nil {
			return nil, err
		}
		out[i] = sc
	}
	return out, nil
}

// ScenarioFromConfig lowers a declarative config onto a runnable
// Scenario. Pattern and profile instances are freshly constructed on
// every call, so scenarios from the same config never share mutable
// state and can run concurrently. The result is bit-for-bit equivalent
// to the hand-built Scenario with the same dimensions.
func ScenarioFromConfig(c ScenarioConfig) (Scenario, error) {
	b, err := c.Build()
	if err != nil {
		return Scenario{}, fmt.Errorf("hybridsched: %w", err)
	}
	return Scenario{
		Name:     b.Name,
		Fabric:   b.Fabric,
		Traffic:  b.Traffic,
		Duration: b.Duration,
		Drain:    b.Drain,
	}, nil
}

// WithScenarioConfig applies a declarative config as the scenario base;
// later options override individual dimensions the usual way. A config
// that fails validation surfaces its error from NewScenario, like
// WithWorkloadTrace does for trace failures.
func WithScenarioConfig(c ScenarioConfig) Option {
	return func(sc *Scenario) {
		built, err := ScenarioFromConfig(c)
		if err != nil {
			sc.traceErr = fmt.Errorf("scenario config: %w", err)
			return
		}
		built.traceErr = sc.traceErr // keep an earlier option's deferred failure
		*sc = built
	}
}
