# Development targets. `make check` is what CI should run; it would have
# caught the missing-go.mod class of breakage mechanically.

GO ?= go

.PHONY: all build test vet fmt-check bench-smoke race-smoke check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt-check fails (and lists the offenders) if any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# bench-smoke proves the hot-path benchmarks still compile and run: the
# event-queue benchmark is the kernel's allocation regression guard, the
# observer benchmark covers the streaming-sample path, the empirical-
# sampler benchmark the flow-size draw, and the trace-replay benchmark
# the capture/replay injection path.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkEventQueue|BenchmarkObserverStream|BenchmarkEmpiricalSampler|BenchmarkTraceReplay' -benchtime 0.1s .

# race-smoke runs the concurrency-bearing layers under the race detector:
# the parallel execution engine and the root fan-out/observer API,
# including the flow-level generator fan-out
# (TestFlowWorkloadParallelDeterminism) and the golden-trace replays at
# several worker counts.
race-smoke:
	$(GO) test -race ./internal/runner/... .

check: fmt-check vet build test bench-smoke
