# Development targets. `make check` is what CI should run; it would have
# caught the missing-go.mod class of breakage mechanically.

GO ?= go

.PHONY: all build test vet fmt-check bench-smoke bench-json race-smoke check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt-check fails (and lists the offenders) if any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# bench-smoke proves the hot-path benchmarks still compile and run: the
# event-queue benchmark is the kernel's allocation regression guard, the
# observer benchmark covers the streaming-sample path, the empirical-
# sampler benchmark the flow-size draw, the trace-replay benchmark the
# capture/replay injection path, and the matching benchmarks
# (BenchmarkMatch*, at up to 512 ports) the scheduling core's
# nonzero-iteration hot path.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkEventQueue|BenchmarkObserverStream|BenchmarkEmpiricalSampler|BenchmarkTraceReplay|BenchmarkMatch' -benchtime 0.1s .

# bench-json records the scheduling-core performance trajectory: it runs
# the matching and frame-decomposition benchmark set with -benchmem and
# rewrites BENCH_core.json ({name, ns_op, b_op, allocs_op} per
# benchmark). The committed file is the baseline future PRs diff against.
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkMatch$$|BenchmarkFrameDecompose$$' -benchmem -benchtime 0.2s . | $(GO) run ./cmd/benchjson -o BENCH_core.json

# race-smoke runs the concurrency-bearing layers under the race detector:
# the parallel execution engine and the root fan-out/observer API,
# including the flow-level generator fan-out
# (TestFlowWorkloadParallelDeterminism), the golden-trace replays at
# several worker counts, and the 256-port fabric scenario
# (TestScale256PortScenario).
race-smoke:
	$(GO) test -race ./internal/runner/... .

check: fmt-check vet build test bench-smoke
