# Development targets. `make check` is what CI should run; it would have
# caught the missing-go.mod class of breakage mechanically.

GO ?= go

.PHONY: all build test vet fmt-check bench-smoke check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt-check fails (and lists the offenders) if any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# bench-smoke proves the hot-path benchmarks still compile and run; the
# event-queue benchmark is the kernel's allocation regression guard.
bench-smoke:
	$(GO) test -run '^$$' -bench BenchmarkEventQueue -benchtime 0.1s .

check: fmt-check vet build test bench-smoke
