# Development targets. `make check` is what CI should run; it would have
# caught the missing-go.mod class of breakage mechanically.

GO ?= go

.PHONY: all build test vet fmt-check lint bench-smoke bench-json bench-compare race-smoke sweep-smoke docs-check check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs schedlint, the module's own analyzer suite
# (internal/analysis): determinism, hot-path allocation, pool pairing,
# the sealed internal/ boundary, and serve-layer channel discipline.
# See docs/INVARIANTS.md for the contracts and the //hybridsched:*
# directive vocabulary that records reviewed exceptions.
lint:
	$(GO) run ./cmd/schedlint ./...

# fmt-check fails (and lists the offenders) if any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# bench-smoke proves the hot-path benchmarks still compile and run: the
# event-queue benchmark is the kernel's allocation regression guard, the
# observer benchmark covers the streaming-sample path, the empirical-
# sampler benchmark the flow-size draw, the trace-replay benchmark the
# capture/replay injection path, the matching benchmarks
# (BenchmarkMatch*, at up to 512 ports) the scheduling core's
# nonzero-iteration hot path, and the serve benchmarks the online
# service's allocation-free epoch loop.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkEventQueue|BenchmarkObserverStream|BenchmarkEmpiricalSampler|BenchmarkTraceReplay|BenchmarkMatch|BenchmarkServiceEpoch' -benchtime 0.1s .
	$(GO) test -run '^$$' -bench 'BenchmarkServeEpoch' -benchtime 0.1s ./internal/serve

# bench-json records the scheduling-core performance trajectory: it runs
# the matching and frame-decomposition benchmark set with -benchmem and
# rewrites BENCH_core.json ({name, ns_op, b_op, allocs_op} per
# benchmark). The committed file is the baseline future PRs diff against.
# Ten repetitions per benchmark: benchjson collapses them to the
# per-metric minimum (best observed steady state), which keeps the slow
# n=512 entries stable enough for the 20% bench-compare gate on noisy
# machines.
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkMatch$$|BenchmarkFrameDecompose$$' -benchmem -benchtime 0.1s -count 10 . | $(GO) run ./cmd/benchjson -o BENCH_core.json

# bench-compare is the perf-regression gate on that trajectory: it
# re-runs the same benchmark set and diffs against the committed
# BENCH_core.json. Any allocs/op increase fails outright (the 0-alloc
# contract is exact); B/op may jitter within 64 bytes (runtime size
# classes); ns/op is gated after benchjson normalizes out the
# suite-median machine drift. The tolerance here is 40% rather than the
# tool's 20% default: on shared CI runners individual entries of the
# slow n=512 benchmarks swing up to ~35% between runs even after the
# min-of-10 collapse and drift normalization, and a deliberate hot-path
# pessimization lands far above either bound. Run this before
# bench-json — bench-json rewrites the baseline the gate diffs against.
bench-compare:
	$(GO) test -run '^$$' -bench 'BenchmarkMatch$$|BenchmarkFrameDecompose$$' -benchmem -benchtime 0.1s -count 10 . | $(GO) run ./cmd/benchjson -compare BENCH_core.json -tolerance 0.40

# race-smoke runs the concurrency-bearing layers under the race detector:
# the parallel execution engine and the root fan-out/observer API,
# including the flow-level generator fan-out
# (TestFlowWorkloadParallelDeterminism), the golden-trace replays at
# several worker counts, the 256-port fabric scenario
# (TestScale256PortScenario), and the online scheduling service —
# streaming ingest, subscriptions, the sharded step fan-out, and the
# 10k-epoch live-workload run (TestServeLive10kEpochs) — plus the
# JSON-lines daemon serving it.
# internal/analysis rides along so the analyzer suite (whose loader
# shells out to the go tool and type-checks concurrently loaded
# packages) is exercised under the race detector too.
race-smoke:
	$(GO) test -race ./internal/runner/... ./internal/serve/... ./internal/analysis/... ./cmd/hybridschedd/... .

# sweep-smoke proves the declarative scenario path end to end: the sweep
# tool loads the committed scenario pack (the same documents the loader
# tests, the fuzzer seed corpus and the golden traces are built from) and
# runs every scenario on the worker pool. Any pack-format or dynamics
# regression that survives the unit layer fails here.
sweep-smoke:
	$(GO) run ./cmd/sweep -scenario-dir testdata/scenarios -parallel 4 >/dev/null

# docs-check keeps the documentation layer executable: go vet (including
# its doc-comment/printf analyzers) over every package, all godoc
# Example functions run with their expected output compared, and the
# markdown link + make-target checkers (TestDoc*) over README.md and
# docs/.
docs-check:
	$(GO) vet ./...
	$(GO) test -run '^Example' -v .
	$(GO) test -run '^TestDoc' .

check: fmt-check vet lint build test bench-smoke sweep-smoke docs-check
