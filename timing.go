package hybridsched

import "hybridsched/internal/sched"

// The paper's central modeling contribution is the pair of scheduler
// timing models — nanosecond-class hardware vs millisecond-class software
// control loops. Both are part of the scenario vocabulary.
type (
	// TimingModel converts algorithmic complexity into wall-clock
	// scheduling latency; FabricConfig.Timing requires one.
	TimingModel = sched.TimingModel
	// HardwareTiming models an on-chip (NetFPGA-style) scheduler.
	HardwareTiming = sched.Hardware
	// SoftwareTiming models a Helios/c-Through-style software control
	// loop: polled demand, CPU compute, control-network RTTs.
	SoftwareTiming = sched.Software
	// LoopStats summarizes the scheduling loop's activity (Metrics.Loop).
	LoopStats = sched.LoopStats
)

// DefaultHardware returns a 200 MHz, 4-stage-pipeline hardware model.
func DefaultHardware() HardwareTiming { return sched.DefaultHardware() }

// DefaultSoftware returns a control loop with Helios-like constants:
// 500 us demand collection, 1 ns/op compute, 30 us I/O, 100 us RTT.
func DefaultSoftware() SoftwareTiming { return sched.DefaultSoftware() }
