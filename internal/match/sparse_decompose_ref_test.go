package match

import (
	"slices"

	"hybridsched/internal/demand"
)

// This file preserves the pre-bitset frame-decomposition implementation —
// the recursive, element-walking Kuhn search and the allocating
// DecomposeBvN/DecomposeMaxMin loops — as the sparse-list reference for
// the three-way decomposition equivalence suite, exactly as
// sparse_ref_test.go preserves the per-slot arbiters. The live engine
// (decompose.go) runs the augmenting search word-parallel over bitset
// rows with an explicit stack, recycled arenas and warm starts; this
// reference pins that none of it changed a single extracted matching.

// sparseDecomposer is the preserved recursive element-walk Kuhn scratch.
type sparseDecomposer struct {
	matchCol []int32
	visited  []bool
	vals     []int64
}

func newSparseDecomposer(n int) *sparseDecomposer {
	return &sparseDecomposer{
		matchCol: make([]int32, n),
		visited:  make([]bool, n),
	}
}

// perfect is the recursive reference: candidate columns visited in
// ascending nonzero-entry order, visited checked per iteration.
func (dc *sparseDecomposer) perfect(d *demand.Matrix, thr int64) (Matching, bool) {
	n := d.N()
	for j := 0; j < n; j++ {
		dc.matchCol[j] = -1
	}
	var try func(i int) bool
	try = func(i int) bool {
		row := d.Row(i)
		for k := 0; k < row.Len(); k++ {
			j, v := row.Entry(k)
			if dc.visited[j] || v < thr {
				continue
			}
			dc.visited[j] = true
			if dc.matchCol[j] < 0 || try(int(dc.matchCol[j])) {
				dc.matchCol[j] = int32(i)
				return true
			}
		}
		return false
	}
	for i := 0; i < n; i++ {
		for j := range dc.visited {
			dc.visited[j] = false
		}
		if !try(i) {
			return nil, false
		}
	}
	m := NewMatching(n)
	for j, i := range dc.matchCol {
		m[i] = j
	}
	return m, true
}

func (dc *sparseDecomposer) bestThreshold(work *demand.Matrix) int64 {
	n := work.N()
	vals := dc.vals[:0]
	for i := 0; i < n; i++ {
		row := work.Row(i)
		for k := 0; k < row.Len(); k++ {
			_, v := row.Entry(k)
			vals = append(vals, v)
		}
	}
	dc.vals = vals
	if len(vals) == 0 {
		return 0
	}
	slices.Sort(vals)
	vals = dedup(vals)
	lo, hi := 0, len(vals)-1
	best := int64(0)
	for lo <= hi {
		mid := (lo + hi) / 2
		if _, ok := dc.perfect(work, vals[mid]); ok {
			best = vals[mid]
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	return best
}

// sparseDecomposeBvN is the preserved allocating BvN loop.
func sparseDecomposeBvN(d *demand.Matrix) []Slot {
	work := d.Stuff()
	dc := newSparseDecomposer(d.N())
	var slots []Slot
	for work.Total() > 0 {
		m, ok := dc.perfect(work, 1)
		if !ok {
			panic("match: stuffed matrix lost perfect matching (sparse ref)")
		}
		w := minAlong(work, m)
		subtract(work, m, w)
		slots = append(slots, Slot{Match: m, Weight: w})
	}
	work.Release()
	return slots
}

// sparseDecomposeMaxMin is the preserved allocating max-min loop.
func sparseDecomposeMaxMin(d *demand.Matrix, minWorth int64) (slots []Slot, residual *demand.Matrix) {
	work := d.Stuff()
	served := demand.FromPool(d.N())
	dc := newSparseDecomposer(d.N())
	for work.Total() > 0 {
		thr := dc.bestThreshold(work)
		if thr <= 0 {
			break
		}
		m, ok := dc.perfect(work, thr)
		if !ok {
			panic("match: threshold search returned infeasible threshold (sparse ref)")
		}
		w := minAlong(work, m)
		if minWorth > 0 && w < minWorth {
			break
		}
		subtract(work, m, w)
		for i, j := range m {
			if j != Unmatched {
				served.Add(i, j, w)
			}
		}
		slots = append(slots, Slot{Match: m, Weight: w})
	}
	residual = demand.FromPool(d.N())
	for i := 0; i < d.N(); i++ {
		row := d.Row(i)
		for k := 0; k < row.Len(); k++ {
			j, v := row.Entry(k)
			if rem := v - served.At(i, j); rem > 0 {
				residual.Set(i, j, rem)
			}
		}
	}
	work.Release()
	served.Release()
	return slots, residual
}
