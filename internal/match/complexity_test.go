package match

import (
	"fmt"
	"math/bits"
	"slices"
	"testing"

	"hybridsched/internal/demand"
	"hybridsched/internal/rng"
)

// This file pins the Complexity metadata of the word-parallel kernels
// against instrumented mirrors of the real implementations. The sparse
// and bitset refactors left the reported SoftwareOps at the dense-era
// n² models, so the report and experiment tables overstated software
// scheduling cost by an order of magnitude; the contract enforced here
// is that the reported count upper-bounds the operations the kernel
// actually executes at the reference fill the performance layer
// standardizes on (modelFill peers per port), while coming in well
// below the stale dense model.
//
// Accounting granularity matches the old models': one op per word
// visited in a scan and one op per item (cell, port, candidate)
// processed — the dense n² figure counted cell visits the same way.

// referenceFillDemand builds demand with exactly modelFill random peers
// per input port (the ~8 peers/port regime of BenchmarkMatch and the
// committed BENCH_core.json baseline).
func referenceFillDemand(r *rng.Rand, n int) *demand.Matrix {
	d := demand.NewMatrix(n)
	for i := 0; i < n; i++ {
		for p := 0; p < modelFill; p++ {
			d.Set(i, r.Intn(n), 1+r.Int63n(1000))
		}
	}
	return d
}

// --- instrumented iSLIP mirror ---

type countingISLIP struct {
	n, words, iterations int
	grantPtr, acceptPtr  []int
	ops                  int
}

func newCountingISLIP(n, iterations int) *countingISLIP {
	return &countingISLIP{n: n, words: (n + 63) / 64, iterations: iterations,
		grantPtr: make([]int, n), acceptPtr: make([]int, n)}
}

// scanRange mirrors demand.nextAndNot, counting one op per word visited.
func (c *countingISLIP) scanRange(ws, excl []uint64, from, to int) int {
	if from >= to {
		return -1
	}
	first := from >> 6
	for wi := first; wi <= (to-1)>>6; wi++ {
		c.ops++
		w := ws[wi]
		if excl != nil {
			w &^= excl[wi]
		}
		if wi == first {
			w = w >> (uint(from) & 63) << (uint(from) & 63)
		}
		if w != 0 {
			if i := wi<<6 + bits.TrailingZeros64(w); i < to {
				return i
			}
			return -1
		}
	}
	return -1
}

func (c *countingISLIP) clockwise(ws, excl []uint64, ptr, n int) int {
	if i := c.scanRange(ws, excl, ptr, n); i >= 0 {
		return i
	}
	return c.scanRange(ws, excl, 0, ptr)
}

func (c *countingISLIP) nextBit(ws []uint64, from int) int {
	wi := from >> 6
	if wi >= len(ws) {
		return -1
	}
	c.ops++
	w := ws[wi] >> (uint(from) & 63) << (uint(from) & 63)
	for w == 0 {
		wi++
		if wi >= len(ws) {
			return -1
		}
		c.ops++
		w = ws[wi]
	}
	return wi<<6 + bits.TrailingZeros64(w)
}

func (c *countingISLIP) Schedule(d *demand.Matrix) Matching {
	n, words := c.n, c.words
	m := NewMatching(n)
	for i := range m {
		m[i] = Unmatched
	}
	c.ops += n
	busyIn := make([]uint64, words)
	busyOut := make([]uint64, words)
	granted := make([]uint64, words)
	grantBits := make([]uint64, n*words)
	c.ops += 2 * words
	var active []int32
	for j := 0; j < n; j++ {
		c.ops++
		if d.ColSum(j) > 0 {
			active = append(active, int32(j))
		}
	}
	for iter := 0; iter < c.iterations; iter++ {
		live := active[:0]
		for _, j32 := range active {
			j := int(j32)
			c.ops++
			if busyOut[j>>6]&(1<<(uint(j)&63)) != 0 {
				continue
			}
			best := c.clockwise(d.ColBits(j), busyIn, c.grantPtr[j], n)
			if best < 0 {
				continue
			}
			live = append(live, j32)
			grantBits[best*words+j>>6] |= 1 << (uint(j) & 63)
			granted[best>>6] |= 1 << (uint(best) & 63)
			c.ops++
		}
		active = live
		anyAccept := false
		for i := c.nextBit(granted, 0); i >= 0; i = c.nextBit(granted, i+1) {
			row := grantBits[i*words : (i+1)*words]
			best := c.clockwise(row, nil, c.acceptPtr[i], n)
			for k := range row {
				row[k] = 0
			}
			c.ops += words + 2
			m[i] = best
			busyIn[i>>6] |= 1 << (uint(i) & 63)
			busyOut[best>>6] |= 1 << (uint(best) & 63)
			anyAccept = true
			if iter == 0 {
				c.grantPtr[best] = (i + 1) % n
				c.acceptPtr[i] = (best + 1) % n
			}
		}
		for k := range granted {
			granted[k] = 0
		}
		c.ops += words
		if !anyAccept {
			break
		}
	}
	return m
}

// --- instrumented wavefront mirror ---

type countingWavefront struct {
	n, words, offset, ops int
}

func (c *countingWavefront) Schedule(d *demand.Matrix) Matching {
	n, words := c.n, c.words
	m := NewMatching(n)
	for i := range m {
		m[i] = Unmatched
	}
	c.ops += n
	colUsed := make([]uint64, words)
	free := make([]uint64, words)
	for k := range free {
		free[k] = ^uint64(0)
	}
	if r := uint(n) & 63; r != 0 {
		free[words-1] = 1<<r - 1
	}
	c.ops += 2 * words
	diag := make([]uint64, n*words)
	c.ops += n * words
	off := c.offset
	for i := 0; i < n; i++ {
		for wi, word := range d.RowBits(i) {
			c.ops++
			for word != 0 {
				j := wi<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				c.ops++
				shift := j - off
				if shift < 0 {
					shift += n
				}
				dg := i + shift
				if dg >= n {
					dg -= n
				}
				diag[dg*words+i>>6] |= 1 << (uint(i) & 63)
			}
		}
	}
	for wv := 0; wv < 2*n-1; wv++ {
		c.ops += 2
		dg, lo, hi := wv, 0, wv
		if wv >= n {
			dg, lo, hi = wv-n, wv-n+1, n-1
		}
		drow := diag[dg*words : (dg+1)*words]
		loW, hiW := lo>>6, hi>>6
		for wi := loW; wi <= hiW; wi++ {
			c.ops++
			word := drow[wi] & free[wi]
			if wi == loW {
				word &= ^uint64(0) << (uint(lo) & 63)
			}
			if wi == hiW {
				if r := uint(hi) & 63; r != 63 {
					word &= 1<<(r+1) - 1
				}
			}
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &= word - 1
				c.ops++
				i := wi<<6 + b
				j := wv - i + off
				if j >= n {
					j -= n
				}
				if colUsed[j>>6]&(1<<(uint(j)&63)) != 0 {
					continue
				}
				m[i] = j
				colUsed[j>>6] |= 1 << (uint(j) & 63)
				free[wi] &^= 1 << uint(b)
			}
		}
	}
	c.offset = (c.offset + 1) % n
	return m
}

// TestComplexityMatchesInstrumentedOps verifies, for the two kernels the
// stale-metadata fix targets, that (a) the instrumented mirror makes
// exactly the live kernel's decisions, (b) the ops it counts never
// exceed the reported SoftwareOps, and (c) the reported count is far
// below the dense-era model the metadata used to carry.
func TestComplexityMatchesInstrumentedOps(t *testing.T) {
	for _, n := range []int{16, 64, 128, 256, 512} {
		r := rng.New(uint64(n)*77 + 5)

		iters := log2ceil(n)
		islip := NewISLIP(n, iters)
		islipMirror := newCountingISLIP(n, iters)
		islipReported := islip.Complexity(n).SoftwareOps
		islipOld := iters * n * n

		wf := NewWavefront(n)
		wfMirror := &countingWavefront{n: n, words: (n + 63) / 64}
		wfReported := wf.Complexity(n).SoftwareOps
		wfOld := n * n

		for round := 0; round < 4; round++ {
			d := referenceFillDemand(r, n)

			islipMirror.ops = 0
			want := islip.Schedule(d).Clone()
			if got := islipMirror.Schedule(d); !got.Equal(want) {
				t.Fatalf("n=%d round %d: islip mirror %v != live %v", n, round, got, want)
			}
			if islipMirror.ops > islipReported {
				t.Errorf("n=%d round %d: islip executed %d ops, Complexity reports %d",
					n, round, islipMirror.ops, islipReported)
			}

			wfMirror.ops = 0
			want = wf.Schedule(d).Clone()
			if got := wfMirror.Schedule(d); !got.Equal(want) {
				t.Fatalf("n=%d round %d: wavefront mirror %v != live %v", n, round, got, want)
			}
			if wfMirror.ops > wfReported {
				t.Errorf("n=%d round %d: wavefront executed %d ops, Complexity reports %d",
					n, round, wfMirror.ops, wfReported)
			}
		}

		// The point of the fix: the recomputed models must stop
		// overstating software cost relative to the old dense metadata.
		if n >= 64 {
			if 2*islipReported > islipOld {
				t.Errorf("n=%d: islip SoftwareOps %d not well below old dense model %d",
					n, islipReported, islipOld)
			}
			if 2*wfReported > wfOld {
				t.Errorf("n=%d: wavefront SoftwareOps %d not well below old dense model %d",
					n, wfReported, wfOld)
			}
		}
		if n == 512 {
			if 8*islipReported > islipOld {
				t.Errorf("n=512: islip SoftwareOps %d less than 8x below old model %d",
					islipReported, islipOld)
			}
			if 8*wfReported > wfOld {
				t.Errorf("n=512: wavefront SoftwareOps %d less than 8x below old model %d",
					wfReported, wfOld)
			}
		}
	}
}

// --- instrumented frame-decomposition mirror ---

// countingFrameDecomposer mirrors the cold word-parallel decomposition
// engine (decompose.go) without its intra-frame extraction memo, so the
// count it reports upper-bounds what the live engine executes while the
// decisions — candidate order, thresholds, extracted matchings — are
// identical. Granularity matches the other mirrors: one op per word
// visited in a scan and one op per item (cell, stack position, sorted
// value) processed.
type countingFrameDecomposer struct {
	n, words int
	matchCol []int32
	visited  []uint64
	elig     []uint64
	frames   []kframe
	vals     []int64
	ops      int
}

func newCountingFrame(n int) *countingFrameDecomposer {
	words := (n + 63) / 64
	return &countingFrameDecomposer{n: n, words: words,
		matchCol: make([]int32, n), visited: make([]uint64, words),
		elig: make([]uint64, n*words), frames: make([]kframe, n+1)}
}

func (c *countingFrameDecomposer) buildElig(d *demand.Matrix, thr int64) {
	n, words := c.n, c.words
	if thr <= 1 {
		for i := 0; i < n; i++ {
			copy(c.elig[i*words:(i+1)*words], d.RowBits(i))
			c.ops += words
		}
		return
	}
	for i := 0; i < n; i++ {
		off := i * words
		for w := 0; w < words; w++ {
			c.elig[off+w] = 0
			c.ops++
		}
		row := d.Row(i)
		for k := 0; k < row.Len(); k++ {
			j, v := row.Entry(k)
			c.ops++
			if v >= thr {
				c.elig[off+j>>6] |= 1 << (uint(j) & 63)
			}
		}
	}
}

func (c *countingFrameDecomposer) augment(root int) bool {
	words := c.words
	sp := 0
	cur := int32(root)
	base := root * words
	next := 0
	for {
		c.ops++ // one stack position processed
		var w uint64
		wi := next >> 6
		if wi < words {
			c.ops++
			w = (c.elig[base+wi] &^ c.visited[wi]) >> (uint(next) & 63) << (uint(next) & 63)
			for w == 0 {
				wi++
				if wi >= words {
					break
				}
				c.ops++
				w = c.elig[base+wi] &^ c.visited[wi]
			}
		}
		if w == 0 {
			if sp == 0 {
				return false
			}
			sp--
			cur = c.frames[sp].row
			next = int(c.frames[sp].next)
			base = int(c.frames[sp].base)
			continue
		}
		j := wi<<6 + bits.TrailingZeros64(w)
		c.visited[wi] |= w & -w
		owner := c.matchCol[j]
		if owner < 0 {
			c.matchCol[j] = cur
			for k := sp - 1; k >= 0; k-- {
				c.matchCol[c.frames[k].j] = c.frames[k].row
				c.ops++
			}
			return true
		}
		c.frames[sp] = kframe{row: cur, j: int32(j), next: int32(j + 1), base: int32(base)}
		sp++
		cur = owner
		base = int(owner) * words
		next = 0
	}
}

func (c *countingFrameDecomposer) perfect(d *demand.Matrix, thr int64) (Matching, bool) {
	n := c.n
	for j := range c.matchCol {
		c.matchCol[j] = -1
	}
	c.ops += n
	c.buildElig(d, thr)
	for i := 0; i < n; i++ {
		for w := range c.visited {
			c.visited[w] = 0
		}
		c.ops += c.words
		if !c.augment(i) {
			return nil, false
		}
	}
	m := NewMatching(n)
	for j, i := range c.matchCol {
		m[i] = j
	}
	c.ops += n
	return m, true
}

func (c *countingFrameDecomposer) bestThreshold(work *demand.Matrix) int64 {
	n := work.N()
	vals := c.vals[:0]
	for i := 0; i < n; i++ {
		row := work.Row(i)
		for k := 0; k < row.Len(); k++ {
			_, v := row.Entry(k)
			vals = append(vals, v)
			c.ops++
		}
	}
	c.vals = vals
	if len(vals) == 0 {
		return 0
	}
	slices.Sort(vals)
	c.ops += len(vals) * log2ceil(len(vals))
	vals = dedup(vals)
	lo, hi := 0, len(vals)-1
	best := int64(0)
	for lo <= hi {
		mid := (lo + hi) / 2
		if _, ok := c.perfect(work, vals[mid]); ok {
			best = vals[mid]
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	return best
}

func (c *countingFrameDecomposer) stuff(d *demand.Matrix) *demand.Matrix {
	c.ops += c.n * c.n // greedy padding scans the full matrix
	return d.Stuff()
}

func (c *countingFrameDecomposer) decomposeBvN(d *demand.Matrix) []Slot {
	work := c.stuff(d)
	var slots []Slot
	for work.Total() > 0 {
		m, ok := c.perfect(work, 1)
		if !ok {
			panic("match: stuffed matrix lost perfect matching (counting mirror)")
		}
		w := minAlong(work, m)
		subtract(work, m, w)
		c.ops += 2 * c.n
		slots = append(slots, Slot{Match: m, Weight: w})
	}
	work.Release()
	return slots
}

func (c *countingFrameDecomposer) decomposeMaxMin(d *demand.Matrix, minWorth int64) []Slot {
	work := c.stuff(d)
	var slots []Slot
	for work.Total() > 0 {
		thr := c.bestThreshold(work)
		if thr <= 0 {
			break
		}
		m, ok := c.perfect(work, thr)
		if !ok {
			panic("match: infeasible threshold (counting mirror)")
		}
		w := minAlong(work, m)
		if minWorth > 0 && w < minWorth {
			break
		}
		subtract(work, m, w)
		c.ops += 2 * c.n
		slots = append(slots, Slot{Match: m, Weight: w})
	}
	work.Release()
	return slots
}

// emittedSlots replays FrameScheduler.refill's playback expansion: the
// number of schedule slots one frame actually feeds, which is what the
// per-slot SoftwareOps figure amortizes the frame cost over.
func emittedSlots(slots []Slot) int {
	if len(slots) == 0 {
		return 0
	}
	quantum := slots[0].Weight
	for _, s := range slots {
		if s.Weight < quantum {
			quantum = s.Weight
		}
	}
	if quantum <= 0 {
		quantum = 1
	}
	total := 0
	for _, s := range slots {
		reps := int((s.Weight + quantum - 1) / quantum)
		if reps < 1 {
			reps = 1
		}
		total += reps
		if total >= maxPlayback {
			return maxPlayback
		}
	}
	return total
}

// TestFrameComplexityReflectsOps pins the FrameScheduler's recomputed
// Complexity model: (a) the counting mirror reproduces the live engine's
// decompositions exactly, (b) the whole frame's counted ops stay below
// SoftwareOps times the playback slots the frame emits — the model is a
// per-emitted-slot amortization — and (c) the model sits far below the
// dense-era n³-per-slot figure the metadata used to carry.
func TestFrameComplexityReflectsOps(t *testing.T) {
	for _, n := range []int{16, 64, 128, 256, 512} {
		reported := NewBvNFrame(n).Complexity(n).SoftwareOps
		old := n * n * n
		if n >= 64 && 2*reported > old {
			t.Errorf("n=%d: frame SoftwareOps %d not well below old dense model %d",
				n, reported, old)
		}
		if n == 512 && 4*reported > old {
			t.Errorf("n=512: frame SoftwareOps %d less than 4x below old model %d",
				reported, old)
		}
		if n > 128 {
			continue // mirror decompositions get slow; the model checks above still ran
		}

		r := rng.New(uint64(n)*31 + 3)
		for round := 0; round < 2; round++ {
			d := referenceFillDemand(r, n)

			mirror := newCountingFrame(n)
			slots := mirror.decomposeBvN(d)
			slotsEqual(t, fmt.Sprintf("bvn mirror n=%d round=%d", n, round),
				slots, DecomposeBvN(d))
			if budget := reported * emittedSlots(slots); mirror.ops > budget {
				t.Errorf("n=%d round %d: bvn frame executed %d ops, budget %d (%d per emitted slot x %d slots)",
					n, round, mirror.ops, budget, reported, emittedSlots(slots))
			}

			mirror = newCountingFrame(n)
			minWorth := d.MaxLineSum() / 16
			mmSlots := mirror.decomposeMaxMin(d, minWorth)
			liveSlots, liveRes := DecomposeMaxMin(d, minWorth)
			liveRes.Release()
			slotsEqual(t, fmt.Sprintf("maxmin mirror n=%d round=%d", n, round),
				mmSlots, liveSlots)
			if budget := reported * emittedSlots(mmSlots); mirror.ops > budget {
				t.Errorf("n=%d round %d: maxmin frame executed %d ops, budget %d (%d per emitted slot x %d slots)",
					n, round, mirror.ops, budget, reported, emittedSlots(mmSlots))
			}
		}
	}
}
