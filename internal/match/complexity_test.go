package match

import (
	"math/bits"
	"testing"

	"hybridsched/internal/demand"
	"hybridsched/internal/rng"
)

// This file pins the Complexity metadata of the word-parallel kernels
// against instrumented mirrors of the real implementations. The sparse
// and bitset refactors left the reported SoftwareOps at the dense-era
// n² models, so the report and experiment tables overstated software
// scheduling cost by an order of magnitude; the contract enforced here
// is that the reported count upper-bounds the operations the kernel
// actually executes at the reference fill the performance layer
// standardizes on (modelFill peers per port), while coming in well
// below the stale dense model.
//
// Accounting granularity matches the old models': one op per word
// visited in a scan and one op per item (cell, port, candidate)
// processed — the dense n² figure counted cell visits the same way.

// referenceFillDemand builds demand with exactly modelFill random peers
// per input port (the ~8 peers/port regime of BenchmarkMatch and the
// committed BENCH_core.json baseline).
func referenceFillDemand(r *rng.Rand, n int) *demand.Matrix {
	d := demand.NewMatrix(n)
	for i := 0; i < n; i++ {
		for p := 0; p < modelFill; p++ {
			d.Set(i, r.Intn(n), 1+r.Int63n(1000))
		}
	}
	return d
}

// --- instrumented iSLIP mirror ---

type countingISLIP struct {
	n, words, iterations int
	grantPtr, acceptPtr  []int
	ops                  int
}

func newCountingISLIP(n, iterations int) *countingISLIP {
	return &countingISLIP{n: n, words: (n + 63) / 64, iterations: iterations,
		grantPtr: make([]int, n), acceptPtr: make([]int, n)}
}

// scanRange mirrors demand.nextAndNot, counting one op per word visited.
func (c *countingISLIP) scanRange(ws, excl []uint64, from, to int) int {
	if from >= to {
		return -1
	}
	first := from >> 6
	for wi := first; wi <= (to-1)>>6; wi++ {
		c.ops++
		w := ws[wi]
		if excl != nil {
			w &^= excl[wi]
		}
		if wi == first {
			w = w >> (uint(from) & 63) << (uint(from) & 63)
		}
		if w != 0 {
			if i := wi<<6 + bits.TrailingZeros64(w); i < to {
				return i
			}
			return -1
		}
	}
	return -1
}

func (c *countingISLIP) clockwise(ws, excl []uint64, ptr, n int) int {
	if i := c.scanRange(ws, excl, ptr, n); i >= 0 {
		return i
	}
	return c.scanRange(ws, excl, 0, ptr)
}

func (c *countingISLIP) nextBit(ws []uint64, from int) int {
	wi := from >> 6
	if wi >= len(ws) {
		return -1
	}
	c.ops++
	w := ws[wi] >> (uint(from) & 63) << (uint(from) & 63)
	for w == 0 {
		wi++
		if wi >= len(ws) {
			return -1
		}
		c.ops++
		w = ws[wi]
	}
	return wi<<6 + bits.TrailingZeros64(w)
}

func (c *countingISLIP) Schedule(d *demand.Matrix) Matching {
	n, words := c.n, c.words
	m := NewMatching(n)
	for i := range m {
		m[i] = Unmatched
	}
	c.ops += n
	busyIn := make([]uint64, words)
	busyOut := make([]uint64, words)
	granted := make([]uint64, words)
	grantBits := make([]uint64, n*words)
	c.ops += 2 * words
	var active []int32
	for j := 0; j < n; j++ {
		c.ops++
		if d.ColSum(j) > 0 {
			active = append(active, int32(j))
		}
	}
	for iter := 0; iter < c.iterations; iter++ {
		live := active[:0]
		for _, j32 := range active {
			j := int(j32)
			c.ops++
			if busyOut[j>>6]&(1<<(uint(j)&63)) != 0 {
				continue
			}
			best := c.clockwise(d.ColBits(j), busyIn, c.grantPtr[j], n)
			if best < 0 {
				continue
			}
			live = append(live, j32)
			grantBits[best*words+j>>6] |= 1 << (uint(j) & 63)
			granted[best>>6] |= 1 << (uint(best) & 63)
			c.ops++
		}
		active = live
		anyAccept := false
		for i := c.nextBit(granted, 0); i >= 0; i = c.nextBit(granted, i+1) {
			row := grantBits[i*words : (i+1)*words]
			best := c.clockwise(row, nil, c.acceptPtr[i], n)
			for k := range row {
				row[k] = 0
			}
			c.ops += words + 2
			m[i] = best
			busyIn[i>>6] |= 1 << (uint(i) & 63)
			busyOut[best>>6] |= 1 << (uint(best) & 63)
			anyAccept = true
			if iter == 0 {
				c.grantPtr[best] = (i + 1) % n
				c.acceptPtr[i] = (best + 1) % n
			}
		}
		for k := range granted {
			granted[k] = 0
		}
		c.ops += words
		if !anyAccept {
			break
		}
	}
	return m
}

// --- instrumented wavefront mirror ---

type countingWavefront struct {
	n, words, offset, ops int
}

func (c *countingWavefront) Schedule(d *demand.Matrix) Matching {
	n, words := c.n, c.words
	m := NewMatching(n)
	for i := range m {
		m[i] = Unmatched
	}
	c.ops += n
	colUsed := make([]uint64, words)
	free := make([]uint64, words)
	for k := range free {
		free[k] = ^uint64(0)
	}
	if r := uint(n) & 63; r != 0 {
		free[words-1] = 1<<r - 1
	}
	c.ops += 2 * words
	diag := make([]uint64, n*words)
	c.ops += n * words
	off := c.offset
	for i := 0; i < n; i++ {
		for wi, word := range d.RowBits(i) {
			c.ops++
			for word != 0 {
				j := wi<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				c.ops++
				shift := j - off
				if shift < 0 {
					shift += n
				}
				dg := i + shift
				if dg >= n {
					dg -= n
				}
				diag[dg*words+i>>6] |= 1 << (uint(i) & 63)
			}
		}
	}
	for wv := 0; wv < 2*n-1; wv++ {
		c.ops += 2
		dg, lo, hi := wv, 0, wv
		if wv >= n {
			dg, lo, hi = wv-n, wv-n+1, n-1
		}
		drow := diag[dg*words : (dg+1)*words]
		loW, hiW := lo>>6, hi>>6
		for wi := loW; wi <= hiW; wi++ {
			c.ops++
			word := drow[wi] & free[wi]
			if wi == loW {
				word &= ^uint64(0) << (uint(lo) & 63)
			}
			if wi == hiW {
				if r := uint(hi) & 63; r != 63 {
					word &= 1<<(r+1) - 1
				}
			}
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &= word - 1
				c.ops++
				i := wi<<6 + b
				j := wv - i + off
				if j >= n {
					j -= n
				}
				if colUsed[j>>6]&(1<<(uint(j)&63)) != 0 {
					continue
				}
				m[i] = j
				colUsed[j>>6] |= 1 << (uint(j) & 63)
				free[wi] &^= 1 << uint(b)
			}
		}
	}
	c.offset = (c.offset + 1) % n
	return m
}

// TestComplexityMatchesInstrumentedOps verifies, for the two kernels the
// stale-metadata fix targets, that (a) the instrumented mirror makes
// exactly the live kernel's decisions, (b) the ops it counts never
// exceed the reported SoftwareOps, and (c) the reported count is far
// below the dense-era model the metadata used to carry.
func TestComplexityMatchesInstrumentedOps(t *testing.T) {
	for _, n := range []int{16, 64, 128, 256, 512} {
		r := rng.New(uint64(n)*77 + 5)

		iters := log2ceil(n)
		islip := NewISLIP(n, iters)
		islipMirror := newCountingISLIP(n, iters)
		islipReported := islip.Complexity(n).SoftwareOps
		islipOld := iters * n * n

		wf := NewWavefront(n)
		wfMirror := &countingWavefront{n: n, words: (n + 63) / 64}
		wfReported := wf.Complexity(n).SoftwareOps
		wfOld := n * n

		for round := 0; round < 4; round++ {
			d := referenceFillDemand(r, n)

			islipMirror.ops = 0
			want := islip.Schedule(d).Clone()
			if got := islipMirror.Schedule(d); !got.Equal(want) {
				t.Fatalf("n=%d round %d: islip mirror %v != live %v", n, round, got, want)
			}
			if islipMirror.ops > islipReported {
				t.Errorf("n=%d round %d: islip executed %d ops, Complexity reports %d",
					n, round, islipMirror.ops, islipReported)
			}

			wfMirror.ops = 0
			want = wf.Schedule(d).Clone()
			if got := wfMirror.Schedule(d); !got.Equal(want) {
				t.Fatalf("n=%d round %d: wavefront mirror %v != live %v", n, round, got, want)
			}
			if wfMirror.ops > wfReported {
				t.Errorf("n=%d round %d: wavefront executed %d ops, Complexity reports %d",
					n, round, wfMirror.ops, wfReported)
			}
		}

		// The point of the fix: the recomputed models must stop
		// overstating software cost relative to the old dense metadata.
		if n >= 64 {
			if 2*islipReported > islipOld {
				t.Errorf("n=%d: islip SoftwareOps %d not well below old dense model %d",
					n, islipReported, islipOld)
			}
			if 2*wfReported > wfOld {
				t.Errorf("n=%d: wavefront SoftwareOps %d not well below old dense model %d",
					n, wfReported, wfOld)
			}
		}
		if n == 512 {
			if 8*islipReported > islipOld {
				t.Errorf("n=512: islip SoftwareOps %d less than 8x below old model %d",
					islipReported, islipOld)
			}
			if 8*wfReported > wfOld {
				t.Errorf("n=512: wavefront SoftwareOps %d less than 8x below old model %d",
					wfReported, wfOld)
			}
		}
	}
}
