package match

import (
	"hybridsched/internal/demand"
)

// TDMA is the demand-oblivious round-robin circuit schedule: slot k
// connects input i to output (i + k) mod n. It is the trivial baseline —
// zero scheduling latency and perfectly fair, but it wastes every slot
// whose (i, j) pair has no traffic, so its throughput collapses under
// skewed demand. The paper's framework exists precisely to prototype
// schedulers that beat this.
type TDMA struct {
	n    int
	slot int
	out  Matching // reused across calls (see Algorithm.Schedule)
	// SkipSelf avoids the identity connection i->i (a host never sends
	// to itself), rotating over n-1 useful permutations.
	SkipSelf bool
}

// NewTDMA returns a TDMA rotator.
func NewTDMA(n int) *TDMA {
	if n <= 0 {
		panic("match: TDMA needs positive n")
	}
	return &TDMA{n: n, SkipSelf: true, out: NewMatching(n)}
}

// Name implements Algorithm.
func (t *TDMA) Name() string { return "tdma" }

// Reset implements Algorithm.
func (t *TDMA) Reset() { t.slot = 0 }

// Complexity implements Algorithm: a counter increment.
func (t *TDMA) Complexity(n int) Complexity {
	return Complexity{HardwareDepth: 1, SoftwareOps: n}
}

// Schedule implements Algorithm. The demand matrix is ignored by design.
//
//hybridsched:hotpath
func (t *TDMA) Schedule(_ *demand.Matrix) Matching {
	n := t.n
	shift := t.slot % n
	if t.SkipSelf && n > 1 {
		shift = 1 + t.slot%(n-1)
	}
	m := t.out
	for i := 0; i < n; i++ {
		m[i] = (i + shift) % n
	}
	t.slot++
	return m
}

func init() {
	Register("tdma", func(n int, _ uint64) Algorithm { return NewTDMA(n) })
}
