package match

func init() {
	// islipn runs n iterations — the "fully converged" upper bound used
	// by the iteration-count ablation (A2). McKeown showed log2(n)
	// iterations capture almost all of the benefit; registering the
	// extreme makes that measurable here.
	Register("islipn", func(n int, _ uint64) Algorithm {
		return NewISLIP(n, n)
	})
}
