package match

import (
	"fmt"
	"testing"

	"hybridsched/internal/demand"
	"hybridsched/internal/rng"
)

// The dense-vs-nonzero-iteration equivalence suite: every registered
// algorithm must produce exactly the matchings (and, for the frame
// decompositions, exactly the slot sequences) that its preserved dense
// O(n²)-scan reference produces, on the same inputs, across consecutive
// stateful Schedule calls. This is the behavior-preservation contract of
// the sparse refactor, checked algorithm by algorithm rather than only
// end-to-end via the golden traces.

// equivalenceSizes are the port counts the suite runs at; 2 and 5 cover
// degenerate and odd sizes, 16 rack scale, 64 the first "fabric" size.
var equivalenceSizes = []int{2, 5, 8, 16, 64}

// threeWaySizes additionally straddle the uint64 word boundary the
// bitset kernels pack ports into (65, 128); the dense references are too
// slow at 128 for the full dense suite, but the three-way suite skips
// the algorithms without a sparse twin, so it stays cheap.
var threeWaySizes = []int{2, 5, 8, 16, 64, 65, 128}

// churnedCopy rebuilds d by applying its entries in a scrambled order,
// interleaved with transient writes that are later zeroed, so the copy's
// nonzero index structure exercises mid-row insertion and removal rather
// than the in-order append fast path. The resulting matrix is equal to d
// cell for cell; algorithms must not care how it was built.
func churnedCopy(r *rng.Rand, d *demand.Matrix) *demand.Matrix {
	n := d.N()
	out := demand.NewMatrix(n)
	type cell struct {
		i, j int
		v    int64
	}
	var cells []cell
	for i := 0; i < n; i++ {
		row := d.Row(i)
		for k := 0; k < row.Len(); k++ {
			j, v := row.Entry(k)
			cells = append(cells, cell{i, j, v})
		}
	}
	// Transient noise: set then clear, forcing removeCol traffic.
	for t := 0; t < n; t++ {
		i, j := r.Intn(n), r.Intn(n)
		out.Set(i, j, 1+r.Int63n(1000))
	}
	out.Reset()
	// Fisher–Yates scramble, then apply.
	for k := len(cells) - 1; k > 0; k-- {
		o := r.Intn(k + 1)
		cells[k], cells[o] = cells[o], cells[k]
	}
	for _, c := range cells {
		out.Set(c.i, c.j, c.v)
	}
	return out
}

func TestDenseEquivalenceAllAlgorithms(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			for _, n := range equivalenceSizes {
				seed := uint64(n)*1000 + 17
				r := rng.New(seed)
				live, err := New(name, n, seed)
				if err != nil {
					t.Fatalf("instantiate: %v", err)
				}
				ref := newDenseRef(name, n, seed)
				if ref == nil {
					t.Fatalf("no dense reference for %q", name)
				}
				// Several consecutive rounds so stateful pointers, random
				// streams and frame playback queues stay in lockstep.
				for round := 0; round < 6; round++ {
					sparsity := 0.2 + 0.15*float64(round%5)
					d := randomDemand(r, n, sparsity, 1<<16)
					dc := churnedCopy(r, d)
					got := live.Schedule(dc).Clone() // live output may be scratch
					want := ref.Schedule(d)
					if !got.Equal(want) {
						t.Fatalf("n=%d round %d: sparse %v != dense %v\ndemand:\n%v",
							n, round, got, want, d)
					}
				}
				// And across Reset.
				live.Reset()
				ref.Reset()
				d := randomDemand(r, n, 0.5, 1<<16)
				if got, want := live.Schedule(d).Clone(), ref.Schedule(d); !got.Equal(want) {
					t.Fatalf("n=%d post-Reset: sparse %v != dense %v", n, got, want)
				}
			}
		})
	}
}

// TestThreeWayEquivalence locks the whole implementation lineage
// together: for every registered algorithm that went through both
// refactors, the live word-parallel bitset kernel, the preserved
// sparse-list kernel and the preserved dense O(n²) scan must produce
// identical matchings on identical inputs across stateful rounds — and
// identical slot sequences again after Reset, which is what pins the
// pointer/random-stream state all three carry between Schedule calls.
func TestThreeWayEquivalence(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			for _, n := range threeWaySizes {
				seed := uint64(n)*2000 + 29
				r := rng.New(seed)
				live, err := New(name, n, seed)
				if err != nil {
					t.Fatalf("instantiate: %v", err)
				}
				sparse := newSparseRef(name, n, seed)
				if sparse == nil {
					// TDMA and Hungarian never had a bitset rewrite; the
					// frame decompositions have their own three-way suite
					// (TestThreeWayDecompositionEquivalence) over whole
					// frames rather than per-slot Schedule calls.
					t.Skipf("%s has no separate sparse reference", name)
				}
				dense := newDenseRef(name, n, seed)
				if dense == nil {
					t.Fatalf("no dense reference for %q", name)
				}
				check := func(round string, d *demand.Matrix) {
					t.Helper()
					dc := churnedCopy(r, d)
					got := live.Schedule(dc).Clone() // live output may be scratch
					sp := sparse.Schedule(d).Clone() // sparse scratch too
					de := dense.Schedule(d)
					if !got.Equal(sp) {
						t.Fatalf("n=%d %s: bitset %v != sparse %v\ndemand:\n%v",
							n, round, got, sp, d)
					}
					if !got.Equal(de) {
						t.Fatalf("n=%d %s: bitset %v != dense %v\ndemand:\n%v",
							n, round, got, de, d)
					}
				}
				for round := 0; round < 6; round++ {
					sparsity := 0.15 + 0.15*float64(round%5)
					check(fmt.Sprintf("round %d", round),
						randomDemand(r, n, sparsity, 1<<16))
				}
				// Reset all three, then several more rounds: if any
				// implementation's pointers, offsets or random streams
				// came out of Reset differently, the trajectories diverge.
				live.Reset()
				sparse.Reset()
				dense.Reset()
				for round := 0; round < 3; round++ {
					check(fmt.Sprintf("post-Reset round %d", round),
						randomDemand(r, n, 0.4, 1<<16))
				}
			}
		})
	}
}

// TestDenseEquivalenceDecompositions pins the full slot sequences of both
// frame decompositions — matchings and weights, in extraction order —
// against the dense references.
func TestDenseEquivalenceDecompositions(t *testing.T) {
	compare := func(t *testing.T, label string, got, want []Slot) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: %d slots, dense ref has %d", label, len(got), len(want))
		}
		for k := range got {
			if !got[k].Match.Equal(want[k].Match) || got[k].Weight != want[k].Weight {
				t.Fatalf("%s: slot %d = (%v, %d), dense ref (%v, %d)",
					label, k, got[k].Match, got[k].Weight, want[k].Match, want[k].Weight)
			}
		}
	}
	for _, n := range []int{2, 5, 8, 16, 32} {
		r := rng.New(uint64(n) * 31)
		for round := 0; round < 4; round++ {
			d := randomDemand(r, n, 0.5, 1<<16)
			if d.Total() == 0 {
				continue
			}
			label := fmt.Sprintf("bvn n=%d round=%d", n, round)
			compare(t, label, DecomposeBvN(d), denseDecomposeBvN(d))

			minWorth := d.MaxLineSum() / 16
			gotSlots, gotRes := DecomposeMaxMin(d, minWorth)
			wantSlots, wantRes := denseDecomposeMaxMin(d, minWorth)
			label = fmt.Sprintf("maxmin n=%d round=%d", n, round)
			compare(t, label, gotSlots, wantSlots)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if gotRes.At(i, j) != wantRes.At(i, j) {
						t.Fatalf("%s: residual(%d,%d) = %d, dense ref %d",
							label, i, j, gotRes.At(i, j), wantRes.At(i, j))
					}
				}
			}
			gotRes.Release()
		}
	}
}

// TestStuffMatchesDenseReference: the incremental line sums behind Stuff
// must reproduce the dense reference padding exactly.
func TestStuffMatchesDenseReference(t *testing.T) {
	r := rng.New(99)
	for _, n := range []int{2, 7, 16, 64} {
		for round := 0; round < 4; round++ {
			d := randomDemand(r, n, 0.6, 1<<20)
			got := d.Stuff()
			want := denseStuff(d)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if got.At(i, j) != want.At(i, j) {
						t.Fatalf("n=%d: Stuff(%d,%d) = %d, dense ref %d",
							n, i, j, got.At(i, j), want.At(i, j))
					}
				}
			}
			got.Release()
		}
	}
}
