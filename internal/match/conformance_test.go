package match

import (
	"testing"
	"testing/quick"

	"hybridsched/internal/demand"
	"hybridsched/internal/rng"
)

// This file is the property-based conformance suite for every registered
// matching algorithm: whatever the demand matrix, an arbiter must return
// a valid matching (each output claimed at most once, ports in range) and
// — unless it is demand-oblivious or plays back a stuffed frame
// decomposition — pair only ports with positive demand. The frame
// decompositions additionally must cover their demand matrix exactly and
// emit slots that respect the requested minimum duration.

// demandOblivious algorithms may legitimately match zero-demand pairs:
// TDMA schedules a fixed rotation regardless of demand, and the frame
// schedulers (bvn, maxmin) play back decompositions of the *stuffed*
// matrix, whose added entries have no live demand.
var demandOblivious = map[string]bool{
	"tdma":   true,
	"bvn":    true,
	"maxmin": true,
}

// randomDemand draws an n x n matrix whose entries are zero with
// probability sparsity and otherwise uniform in [1, maxEntry].
func randomDemand(r *rng.Rand, n int, sparsity float64, maxEntry int64) *demand.Matrix {
	d := demand.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || r.Bool(sparsity) {
				continue
			}
			d.Set(i, j, 1+r.Int63n(maxEntry))
		}
	}
	return d
}

// checkMatching verifies the universal arbiter contract for one Schedule
// output against the demand it was computed from.
func checkMatching(t *testing.T, name string, m Matching, d *demand.Matrix) bool {
	t.Helper()
	if len(m) != d.N() {
		t.Errorf("%s: matching has %d entries for %d ports", name, len(m), d.N())
		return false
	}
	if err := m.Validate(); err != nil {
		t.Errorf("%s: invalid matching: %v", name, err)
		return false
	}
	if demandOblivious[name] {
		return true
	}
	for in, out := range m {
		if out != Unmatched && d.At(in, out) <= 0 {
			t.Errorf("%s: input %d matched to output %d with zero demand", name, in, out)
			return false
		}
	}
	return true
}

// TestAllAlgorithmsReturnValidMatchings is the conformance sweep: every
// registered algorithm, random demand matrices of varying size, sparsity
// and magnitude, several consecutive Schedule calls (so stateful
// round-robin pointers and frame playback queues are exercised too).
func TestAllAlgorithmsReturnValidMatchings(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			property := func(seed uint64, n8 uint8) bool {
				n := 2 + int(n8%7) // ports in [2, 8]
				r := rng.New(seed)
				algo, err := New(name, n, seed)
				if err != nil {
					t.Fatalf("instantiate: %v", err)
				}
				for round := 0; round < 4; round++ {
					sparsity := float64(round) * 0.3 // dense through mostly-empty
					d := randomDemand(r, n, sparsity, 1<<20)
					m := algo.Schedule(d)
					if !checkMatching(t, name, m, d) {
						return false
					}
				}
				// After Reset the algorithm must still conform.
				algo.Reset()
				d := randomDemand(r, n, 0.5, 1<<20)
				return checkMatching(t, name, algo.Schedule(d), d)
			}
			if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestConformanceLargeSparse runs the same arbiter contract at fabric
// port counts (64–256) on sparse matrices — the demand shape the scaling
// refactor targets, where each input requests only a handful of outputs.
// The frame decompositions run at 64 ports only: their dense slot
// playback is quadratic in n and is separately covered by the
// decomposition property tests and the dense-equivalence suite.
func TestConformanceLargeSparse(t *testing.T) {
	sizes := func(name string) []int {
		if name == "bvn" || name == "maxmin" {
			return []int{64}
		}
		return []int{64, 128, 256}
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			for _, n := range sizes(name) {
				seed := uint64(n) * 7
				r := rng.New(seed)
				algo, err := New(name, n, seed)
				if err != nil {
					t.Fatalf("instantiate: %v", err)
				}
				for round := 0; round < 3; round++ {
					// ~3% fill: a few peers per port, like a real fabric.
					d := randomDemand(r, n, 0.97, 1<<20)
					m := algo.Schedule(d)
					if !checkMatching(t, name, m, d) {
						t.Fatalf("n=%d round %d failed", n, round)
					}
				}
			}
		})
	}
}

// TestAllAlgorithmsHandleZeroDemand: an all-zero matrix must still yield
// a valid matching (demand-aware arbiters should match nothing).
func TestAllAlgorithmsHandleZeroDemand(t *testing.T) {
	for _, name := range Names() {
		algo, err := New(name, 4, 1)
		if err != nil {
			t.Fatal(err)
		}
		d := demand.NewMatrix(4)
		m := algo.Schedule(d)
		if err := m.Validate(); err != nil {
			t.Errorf("%s: invalid matching on zero demand: %v", name, err)
		}
		if !demandOblivious[name] && m.Size() != 0 {
			t.Errorf("%s: matched %d pairs with zero demand", name, m.Size())
		}
	}
}

// coverage sums the service each (i, j) pair receives across a schedule.
func coverage(n int, slots []Slot) *demand.Matrix {
	served := demand.NewMatrix(n)
	for _, s := range slots {
		for i, j := range s.Match {
			if j != Unmatched {
				served.Add(i, j, s.Weight)
			}
		}
	}
	return served
}

// TestBvNDecompositionCoversDemand: the BvN schedule serves every entry
// of the demand matrix fully, each slot is a valid matching with positive
// weight, and the total schedule length equals the stuffed matrix's
// MaxLineSum — BvN's optimality certificate.
func TestBvNDecompositionCoversDemand(t *testing.T) {
	property := func(seed uint64, n8 uint8) bool {
		n := 2 + int(n8%7)
		r := rng.New(seed)
		d := randomDemand(r, n, 0.4, 1<<16)
		if d.Total() == 0 {
			return true
		}
		slots := DecomposeBvN(d)
		var length int64
		for _, s := range slots {
			if s.Weight <= 0 {
				t.Errorf("BvN slot with non-positive weight %d", s.Weight)
				return false
			}
			if err := s.Match.Validate(); err != nil {
				t.Errorf("BvN slot invalid: %v", err)
				return false
			}
			length += s.Weight
		}
		served := coverage(n, slots)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if served.At(i, j) < d.At(i, j) {
					t.Errorf("BvN under-serves (%d,%d): %d < %d", i, j, served.At(i, j), d.At(i, j))
					return false
				}
			}
		}
		if want := d.MaxLineSum(); length != want {
			t.Errorf("BvN schedule length %d != MaxLineSum %d", length, want)
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestMaxMinDecompositionCoversDemand: slots plus the returned residual
// account for every unit of demand, and every emitted slot respects the
// minimum worthwhile duration (no slot shorter than minWorth, so no
// reconfiguration is spent on demand the EPS should carry).
func TestMaxMinDecompositionCoversDemand(t *testing.T) {
	property := func(seed uint64, n8 uint8) bool {
		n := 2 + int(n8%7)
		r := rng.New(seed)
		d := randomDemand(r, n, 0.4, 1<<16)
		if d.Total() == 0 {
			return true
		}
		minWorth := d.MaxLineSum() / 16
		slots, residual := DecomposeMaxMin(d, minWorth)
		for _, s := range slots {
			if err := s.Match.Validate(); err != nil {
				t.Errorf("maxmin slot invalid: %v", err)
				return false
			}
			if s.Weight <= 0 || (minWorth > 0 && s.Weight < minWorth) {
				t.Errorf("maxmin slot weight %d below minWorth %d", s.Weight, minWorth)
				return false
			}
		}
		served := coverage(n, slots)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if served.At(i, j)+residual.At(i, j) < d.At(i, j) {
					t.Errorf("maxmin loses demand at (%d,%d): served %d + residual %d < %d",
						i, j, served.At(i, j), residual.At(i, j), d.At(i, j))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
