package match

import (
	"fmt"

	"hybridsched/internal/demand"
)

// ISLIP is the iterative round-robin crossbar arbiter of McKeown's iSLIP,
// the workhorse scheduler of input-queued electrical packet switches. Each
// iteration runs three parallel phases — request, grant, accept — with
// per-port round-robin pointers that advance only on accepted grants in the
// first iteration, which is what de-synchronizes the pointers and yields
// 100% throughput under uniform traffic.
type ISLIP struct {
	n          int
	iterations int
	grantPtr   []int // per output
	acceptPtr  []int // per input
}

// NewISLIP returns an iSLIP arbiter with the given iteration count
// (typically log2(n); 1 gives basic SLIP).
func NewISLIP(n, iterations int) *ISLIP {
	if n <= 0 || iterations <= 0 {
		panic("match: iSLIP needs positive n and iterations")
	}
	return &ISLIP{
		n: n, iterations: iterations,
		grantPtr:  make([]int, n),
		acceptPtr: make([]int, n),
	}
}

// Name implements Algorithm.
func (s *ISLIP) Name() string { return fmt.Sprintf("islip-%d", s.iterations) }

// Reset implements Algorithm.
func (s *ISLIP) Reset() {
	for i := range s.grantPtr {
		s.grantPtr[i] = 0
		s.acceptPtr[i] = 0
	}
}

// Complexity implements Algorithm. In hardware each iteration is a
// request, grant and accept step with all 2n arbiters in parallel: depth
// 3 per iteration. In software each iteration scans all n^2 cells.
func (s *ISLIP) Complexity(n int) Complexity {
	return Complexity{
		HardwareDepth: 3 * s.iterations,
		SoftwareOps:   s.iterations * n * n,
	}
}

// Schedule implements Algorithm.
func (s *ISLIP) Schedule(d *demand.Matrix) Matching {
	n := s.n
	inMatch := NewMatching(n)
	outMatch := make([]int, n)
	for i := range outMatch {
		outMatch[i] = Unmatched
	}

	for iter := 0; iter < s.iterations; iter++ {
		// Phase 1 — request: every unmatched input requests every output
		// with backlog. Represented implicitly via d.
		// Phase 2 — grant: each unmatched output grants the requesting
		// unmatched input closest (clockwise) to its grant pointer.
		granted := make([]int, n) // per output: granted input or -1
		for j := range granted {
			granted[j] = Unmatched
		}
		for j := 0; j < n; j++ {
			if outMatch[j] != Unmatched {
				continue
			}
			for k := 0; k < n; k++ {
				i := (s.grantPtr[j] + k) % n
				if inMatch[i] == Unmatched && d.At(i, j) > 0 {
					granted[j] = i
					break
				}
			}
		}
		// Phase 3 — accept: each input that received grants accepts the
		// output closest to its accept pointer.
		anyAccept := false
		for i := 0; i < n; i++ {
			if inMatch[i] != Unmatched {
				continue
			}
			accepted := Unmatched
			for k := 0; k < n; k++ {
				j := (s.acceptPtr[i] + k) % n
				if granted[j] == i {
					accepted = j
					break
				}
			}
			if accepted == Unmatched {
				continue
			}
			inMatch[i] = accepted
			outMatch[accepted] = i
			anyAccept = true
			// Pointers advance one past the matched port, and only on
			// grants accepted in the FIRST iteration (McKeown's rule;
			// this is what prevents pointer synchronization).
			if iter == 0 {
				s.grantPtr[accepted] = (i + 1) % n
				s.acceptPtr[i] = (accepted + 1) % n
			}
		}
		if !anyAccept {
			break // converged early
		}
	}
	return inMatch
}

func init() {
	Register("islip", func(n int, _ uint64) Algorithm {
		return NewISLIP(n, log2ceil(n))
	})
	Register("islip1", func(n int, _ uint64) Algorithm {
		return NewISLIP(n, 1)
	})
}

func log2ceil(n int) int {
	k, v := 0, 1
	for v < n {
		v <<= 1
		k++
	}
	if k == 0 {
		k = 1
	}
	return k
}
