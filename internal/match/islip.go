package match

import (
	"fmt"
	"math/bits"

	"hybridsched/internal/demand"
)

// ISLIP is the iterative round-robin crossbar arbiter of McKeown's iSLIP,
// the workhorse scheduler of input-queued electrical packet switches. Each
// iteration runs three parallel phases — request, grant, accept — with
// per-port round-robin pointers that advance only on accepted grants in the
// first iteration, which is what de-synchronizes the pointers and yields
// 100% throughput under uniform traffic.
//
// The implementation is word-parallel: the request phase is free (the
// demand matrix maintains per-column requester bitsets incrementally),
// the grant phase finds each output's nearest-clockwise unmatched
// requester with masked bits.TrailingZeros64 scans over those bitsets
// (demand.ClockwiseBit — 64 candidate ports per word), and the accept
// phase runs the same scan over per-input grant bitset rows. All scratch
// is reused across calls; one iteration costs O(ports · ceil(ports/64))
// words instead of the textbook O(n²) cell scan.
type ISLIP struct {
	n          int
	words      int // uint64 words per bitset row: ceil(n/64)
	iterations int
	grantPtr   []int // per output
	acceptPtr  []int // per input

	// Scratch reused across Schedule calls. out is the returned matching
	// (see Algorithm.Schedule for the ownership contract).
	out       Matching
	busyIn    *demand.Bitset // inputs matched in earlier iterations
	grantReg  []grantReg     // per input: this iteration's first two grants
	grantBits []uint64       // per input: spill row, used once grants > 2
	activeOut []int32        // outputs scanned this iteration (all unmatched)
	loserOut  []int32        // ping-pong twin of activeOut
	grantees  []int32        // inputs granted this iteration, arrival order
}

// grantReg is an input's per-iteration grant register: how many grants it
// holds and the first two granting outputs (g1 duplicates g0 while cnt is
// 1, making the two-candidate accept branchless). Padded to 16 bytes so
// the randomly-indexed grant write touches a single cache line.
type grantReg struct {
	cnt, g0, g1, _ int32
}

// NewISLIP returns an iSLIP arbiter with the given iteration count
// (typically log2(n); 1 gives basic SLIP).
func NewISLIP(n, iterations int) *ISLIP {
	if n <= 0 || iterations <= 0 {
		panic("match: iSLIP needs positive n and iterations")
	}
	words := (n + 63) / 64
	return &ISLIP{
		n: n, words: words, iterations: iterations,
		grantPtr:  make([]int, n),
		acceptPtr: make([]int, n),
		out:       NewMatching(n),
		busyIn:    demand.NewBitset(n),
		grantReg:  make([]grantReg, n),
		grantBits: make([]uint64, n*words),
		activeOut: make([]int32, 0, n),
		loserOut:  make([]int32, 0, n),
		grantees:  make([]int32, 0, n),
	}
}

// Name implements Algorithm.
func (s *ISLIP) Name() string { return fmt.Sprintf("islip-%d", s.iterations) }

// Reset implements Algorithm.
func (s *ISLIP) Reset() {
	for i := range s.grantPtr {
		s.grantPtr[i] = 0
		s.acceptPtr[i] = 0
	}
}

// modelFill is the per-port peer count the software-cost models assume
// for the data-dependent terms of the bitset kernels (per-nonzero
// scatters and sorts). Fabric-scale demand is sparse — each port
// converses with a handful of peers — and the whole performance layer
// (BenchmarkMatch, BENCH_core.json, the S1 experiment) standardizes on
// ~8 peers/port, so Complexity models report software cost at that
// reference fill rather than the dense worst case the pre-bitset
// metadata assumed. TestComplexityMatchesInstrumentedOps pins the
// reported counts against instrumented kernels at this fill.
const modelFill = 8

// bitsetWords returns ceil(n/64), the words per bitset row — the unit
// the software-cost models count.
func bitsetWords(n int) int { return (n + 63) / 64 }

// Complexity implements Algorithm. In hardware each iteration is a
// request, grant and accept step with all 2n arbiters in parallel: depth
// 3 per iteration. In software each iteration is word-parallel: the
// grant phase scans up to 2·words request words per output and the
// accept phase up to 2·words grant words (plus a words-wide clear) per
// input, with O(n) loop bookkeeping — no per-nonzero work at all, since
// the request bitsets are maintained by the demand matrix.
func (s *ISLIP) Complexity(n int) Complexity {
	w := bitsetWords(n)
	return Complexity{
		HardwareDepth: 3 * s.iterations,
		SoftwareOps:   s.iterations*(5*n*w+2*n) + 3*n,
	}
}

// activeOutputs appends to buf[:0] the outputs with at least one
// requester, ascending. Column j has a requester iff its column sum is
// positive (entries are non-negative), so this is one O(n) scan of the
// incrementally-maintained sums — the only per-Schedule request-phase
// work the bitset arbiters do.
func activeOutputs(d *demand.Matrix, buf []int32) []int32 {
	buf = buf[:0]
	n := d.N()
	for j := 0; j < n; j++ {
		if d.ColSum(j) > 0 {
			buf = append(buf, int32(j))
		}
	}
	return buf
}

// nearerClockwise returns whichever of a or b is nearest clockwise from
// ptr over [0, n). The circular distances are distinct when a != b, so
// the winner is unique — this is ClockwiseBit for a two-candidate set.
//
//hybridsched:hotpath
func nearerClockwise(a, b, ptr, n int) int {
	da, db := a-ptr, b-ptr
	if da < 0 {
		da += n
	}
	if db < 0 {
		db += n
	}
	if db < da {
		return b
	}
	return a
}

// Schedule implements Algorithm.
//
// Beyond the word-parallel scans, the loop exploits three structural
// facts of request/grant/accept to keep the op count near the number of
// decisions actually made:
//
//   - Within a grant phase busyIn is frozen and each output reads only
//     its own pointer and column, so grant order is irrelevant; within an
//     accept phase the granted inputs are disjoint, their accepted
//     outputs are disjoint (an output grants at most one input), and each
//     touches only its own pointers, so accept order is irrelevant too.
//     Both phases may therefore run over compact work lists in whatever
//     order those lists hold.
//   - Every granted input accepts exactly one granter, so the outputs
//     that stay contested into the next iteration are exactly this
//     iteration's losing granters. The accept phase rebuilds the scan
//     list from them directly: matched outputs and outputs whose
//     requesters are exhausted (busyIn only grows) drop out for free, and
//     no busy-output bookkeeping is needed at all.
//   - Most inputs collect one or two grants per iteration, so the first
//     two are held in per-input registers (grant1 duplicating grant0 on
//     the first grant makes the two-candidate accept branchless); the
//     words-wide grant row is only materialized — and later cleared — for
//     the rare input granted by three or more outputs.
//
//hybridsched:hotpath
func (s *ISLIP) Schedule(d *demand.Matrix) Matching {
	n, words := s.n, s.words
	inMatch := s.out
	s.busyIn.Zero()
	cur := activeOutputs(d, s.activeOut[:0])
	next := s.loserOut[:0]
	grantees := s.grantees[:0]
	busyIn := s.busyIn.Words()

	for iter := 0; iter < s.iterations; iter++ {
		// Phase 2 — grant: each contested output grants the requesting
		// unmatched input closest (clockwise) to its grant pointer. The
		// requester set is the matrix's column bitset; matched inputs are
		// masked out a word at a time. The first iteration carries the
		// bulk of the work and nothing is matched yet, so its scan is
		// specialized: no busyIn mask, and the clockwise word scan is
		// inlined (ClockwiseBit's call overhead is comparable to the two
		// or three word loads an 8-peer column actually needs). The wrap
		// segment may read word wp unmasked because the forward segment
		// just proved its bits >= ptr are clear.
		for _, j32 := range cur {
			j := int(j32)
			cb := d.ColBits(j)
			ptr := s.grantPtr[j]
			wp := ptr >> 6
			rr := uint(ptr) & 63
			wi := wp
			var w uint64
			if iter == 0 {
				w = cb[wp] >> rr << rr
				for w == 0 && wi+1 < words {
					wi++
					w = cb[wi]
				}
				if w == 0 {
					for wi = 0; wi <= wp; wi++ {
						if w = cb[wi]; w != 0 {
							break
						}
					}
				}
			} else {
				w = (cb[wp] &^ busyIn[wp]) >> rr << rr
				for w == 0 && wi+1 < words {
					wi++
					w = cb[wi] &^ busyIn[wi]
				}
				if w == 0 {
					for wi = 0; wi <= wp; wi++ {
						if w = cb[wi] &^ busyIn[wi]; w != 0 {
							break
						}
					}
				}
			}
			if w == 0 {
				continue // requesters exhausted; stays unmatched
			}
			best := wi<<6 + bits.TrailingZeros64(w)
			reg := &s.grantReg[best]
			cnt := reg.cnt
			reg.cnt = cnt + 1
			switch cnt {
			case 0:
				reg.g0 = j32
				reg.g1 = j32
				grantees = append(grantees, int32(best))
			case 1:
				reg.g1 = j32
			default:
				row := s.grantBits[best*words : (best+1)*words]
				if cnt == 2 {
					g0, g1 := reg.g0, reg.g1
					row[uint(g0)>>6] |= 1 << (uint(g0) & 63)
					row[uint(g1)>>6] |= 1 << (uint(g1) & 63)
				}
				row[j>>6] |= 1 << (uint(j) & 63)
			}
		}
		if len(grantees) == 0 {
			break // converged: no grants means no accepts
		}
		// Phase 3 — accept: each granted input accepts the granter closest
		// (clockwise) to its accept pointer; the losers become the next
		// iteration's scan list.
		next = next[:0]
		for _, i32 := range grantees {
			i := int(i32)
			reg := &s.grantReg[i]
			cnt := reg.cnt
			reg.cnt = 0
			var best int
			if cnt <= 2 {
				g0, g1 := int(reg.g0), int(reg.g1)
				best = nearerClockwise(g0, g1, s.acceptPtr[i], n)
				if cnt == 2 {
					next = append(next, int32(g0+g1-best))
				}
			} else {
				row := s.grantBits[i*words : (i+1)*words]
				best = demand.ClockwiseBit(row, nil, s.acceptPtr[i], n)
				for wi := range row {
					w := row[wi]
					row[wi] = 0
					for w != 0 {
						jj := wi<<6 + bits.TrailingZeros64(w)
						w &= w - 1
						if jj != best {
							next = append(next, int32(jj))
						}
					}
				}
			}
			inMatch[i] = best
			busyIn[uint(i)>>6] |= 1 << (uint(i) & 63)
			// Pointers advance one past the matched port, and only on
			// grants accepted in the FIRST iteration (McKeown's rule;
			// this is what prevents pointer synchronization).
			if iter == 0 {
				gp, ap := i+1, best+1
				if gp == n {
					gp = 0
				}
				if ap == n {
					ap = 0
				}
				s.grantPtr[best] = gp
				s.acceptPtr[i] = ap
			}
		}
		grantees = grantees[:0]
		cur, next = next, cur
	}
	// Inputs that never accepted keep stale entries from the previous
	// call; fix them up from the complement of busyIn — near-maximal
	// matchings make this far cheaper than pre-clearing all n entries.
	for wi := 0; wi < words; wi++ {
		w := ^busyIn[wi]
		if wi == words-1 {
			if r := uint(n) & 63; r != 0 {
				w &= 1<<r - 1
			}
		}
		for w != 0 {
			i := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			inMatch[i] = Unmatched
		}
	}
	// Keep the ping-pong buffers' backing arrays for the next call.
	s.activeOut, s.loserOut, s.grantees = cur[:0], next[:0], grantees
	return inMatch
}

func init() {
	Register("islip", func(n int, _ uint64) Algorithm {
		return NewISLIP(n, log2ceil(n))
	})
	Register("islip1", func(n int, _ uint64) Algorithm {
		return NewISLIP(n, 1)
	})
}

func log2ceil(n int) int {
	k, v := 0, 1
	for v < n {
		v <<= 1
		k++
	}
	if k == 0 {
		k = 1
	}
	return k
}
