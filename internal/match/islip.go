package match

import (
	"fmt"

	"hybridsched/internal/demand"
)

// ISLIP is the iterative round-robin crossbar arbiter of McKeown's iSLIP,
// the workhorse scheduler of input-queued electrical packet switches. Each
// iteration runs three parallel phases — request, grant, accept — with
// per-port round-robin pointers that advance only on accepted grants in the
// first iteration, which is what de-synchronizes the pointers and yields
// 100% throughput under uniform traffic.
//
// The implementation materializes the request phase once per Schedule as
// per-output requester lists built from the demand matrix's nonzero rows,
// then runs grant/accept over those lists: O(ports + nonzeros) per
// iteration instead of the textbook O(n²) scan, with all scratch reused
// across calls.
type ISLIP struct {
	n          int
	iterations int
	grantPtr   []int // per output
	acceptPtr  []int // per input

	// Scratch reused across Schedule calls. out is the returned matching
	// (see Algorithm.Schedule for the ownership contract).
	out       Matching
	outMatch  []int32   // per output: matched input or -1
	reqs      [][]int32 // per output: requesting inputs, ascending
	grants    [][]int32 // per input: outputs that granted it, ascending
	activeOut []int32   // outputs with at least one requester, ascending
}

// NewISLIP returns an iSLIP arbiter with the given iteration count
// (typically log2(n); 1 gives basic SLIP).
func NewISLIP(n, iterations int) *ISLIP {
	if n <= 0 || iterations <= 0 {
		panic("match: iSLIP needs positive n and iterations")
	}
	return &ISLIP{
		n: n, iterations: iterations,
		grantPtr:  make([]int, n),
		acceptPtr: make([]int, n),
		out:       NewMatching(n),
		outMatch:  make([]int32, n),
		reqs:      make([][]int32, n),
		grants:    make([][]int32, n),
		activeOut: make([]int32, 0, n),
	}
}

// Name implements Algorithm.
func (s *ISLIP) Name() string { return fmt.Sprintf("islip-%d", s.iterations) }

// Reset implements Algorithm.
func (s *ISLIP) Reset() {
	for i := range s.grantPtr {
		s.grantPtr[i] = 0
		s.acceptPtr[i] = 0
	}
}

// Complexity implements Algorithm. In hardware each iteration is a
// request, grant and accept step with all 2n arbiters in parallel: depth
// 3 per iteration. In software each iteration scans all n^2 cells.
func (s *ISLIP) Complexity(n int) Complexity {
	return Complexity{
		HardwareDepth: 3 * s.iterations,
		SoftwareOps:   s.iterations * n * n,
	}
}

// buildRequests fills reqs from d's nonzero rows and returns the
// ascending list of outputs with requesters. Shared by iSLIP, RRM, iLQF
// and PIM — the "request" phase all VOQ arbiters start from.
func buildRequests(d *demand.Matrix, reqs [][]int32, activeOut []int32) []int32 {
	n := len(reqs)
	for j := 0; j < n; j++ {
		reqs[j] = reqs[j][:0]
	}
	for i := 0; i < n; i++ {
		row := d.Row(i)
		for k := 0; k < row.Len(); k++ {
			j, _ := row.Entry(k)
			reqs[j] = append(reqs[j], int32(i))
		}
	}
	activeOut = activeOut[:0]
	for j := 0; j < n; j++ {
		if len(reqs[j]) > 0 {
			activeOut = append(activeOut, int32(j))
		}
	}
	return activeOut
}

// nearestClockwise picks, among the candidate ports in cands, the one
// closest clockwise to ptr modulo n, skipping candidates already matched
// in busy (pass nil to consider every candidate). Returns -1 when none
// qualifies. This is the rotating-priority selection shared by the iSLIP
// and RRM grant/accept phases; busy is a plain Matching rather than a
// predicate so the hot loop stays closure- and allocation-free.
func nearestClockwise(cands []int32, ptr, n int, busy Matching) int {
	best, bestDist := -1, n
	for _, c32 := range cands {
		c := int(c32)
		if busy != nil && busy[c] != Unmatched {
			continue
		}
		dist := c - ptr
		if dist < 0 {
			dist += n
		}
		if dist < bestDist {
			best, bestDist = c, dist
		}
	}
	return best
}

// Schedule implements Algorithm.
//
//hybridsched:hotpath
func (s *ISLIP) Schedule(d *demand.Matrix) Matching {
	n := s.n
	inMatch := s.out
	for i := range inMatch {
		inMatch[i] = Unmatched
	}
	for j := range s.outMatch {
		s.outMatch[j] = -1
	}
	s.activeOut = buildRequests(d, s.reqs, s.activeOut)

	for iter := 0; iter < s.iterations; iter++ {
		// Phase 2 — grant: each unmatched output grants the requesting
		// unmatched input closest (clockwise) to its grant pointer.
		for _, j32 := range s.activeOut {
			j := int(j32)
			if s.outMatch[j] >= 0 {
				continue
			}
			if best := nearestClockwise(s.reqs[j], s.grantPtr[j], n, inMatch); best >= 0 {
				s.grants[best] = append(s.grants[best], j32)
			}
		}
		// Phase 3 — accept: each input that received grants accepts the
		// output closest to its accept pointer.
		anyAccept := false
		for i := 0; i < n; i++ {
			g := s.grants[i]
			if len(g) == 0 {
				continue
			}
			s.grants[i] = g[:0]
			best := nearestClockwise(g, s.acceptPtr[i], n, nil)
			inMatch[i] = best
			s.outMatch[best] = int32(i)
			anyAccept = true
			// Pointers advance one past the matched port, and only on
			// grants accepted in the FIRST iteration (McKeown's rule;
			// this is what prevents pointer synchronization).
			if iter == 0 {
				s.grantPtr[best] = (i + 1) % n
				s.acceptPtr[i] = (best + 1) % n
			}
		}
		if !anyAccept {
			break // converged early
		}
	}
	return inMatch
}

func init() {
	Register("islip", func(n int, _ uint64) Algorithm {
		return NewISLIP(n, log2ceil(n))
	})
	Register("islip1", func(n int, _ uint64) Algorithm {
		return NewISLIP(n, 1)
	})
}

func log2ceil(n int) int {
	k, v := 0, 1
	for v < n {
		v <<= 1
		k++
	}
	if k == 0 {
		k = 1
	}
	return k
}
