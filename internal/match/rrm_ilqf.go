package match

import (
	"fmt"

	"hybridsched/internal/demand"
)

// RRM is Round-Robin Matching — iSLIP's direct ancestor. Identical
// request/grant/accept structure, but pointers advance unconditionally
// every slot instead of only on first-iteration accepts. The missing
// desynchronization rule is exactly what caps RRM near 63% throughput
// under uniform saturation while iSLIP reaches 100%; keeping both makes
// the ablation measurable.
type RRM struct {
	n          int
	iterations int
	grantPtr   []int
	acceptPtr  []int
}

// NewRRM returns a round-robin matching arbiter.
func NewRRM(n, iterations int) *RRM {
	if n <= 0 || iterations <= 0 {
		panic("match: RRM needs positive n and iterations")
	}
	return &RRM{n: n, iterations: iterations,
		grantPtr: make([]int, n), acceptPtr: make([]int, n)}
}

// Name implements Algorithm.
func (r *RRM) Name() string { return fmt.Sprintf("rrm-%d", r.iterations) }

// Reset implements Algorithm.
func (r *RRM) Reset() {
	for i := range r.grantPtr {
		r.grantPtr[i] = 0
		r.acceptPtr[i] = 0
	}
}

// Complexity implements Algorithm (same structure as iSLIP).
func (r *RRM) Complexity(n int) Complexity {
	return Complexity{HardwareDepth: 3 * r.iterations, SoftwareOps: r.iterations * n * n}
}

// Schedule implements Algorithm.
func (r *RRM) Schedule(d *demand.Matrix) Matching {
	n := r.n
	inMatch := NewMatching(n)
	outMatch := make([]int, n)
	for j := range outMatch {
		outMatch[j] = Unmatched
	}
	for iter := 0; iter < r.iterations; iter++ {
		granted := make([]int, n)
		for j := range granted {
			granted[j] = Unmatched
		}
		for j := 0; j < n; j++ {
			if outMatch[j] != Unmatched {
				continue
			}
			for k := 0; k < n; k++ {
				i := (r.grantPtr[j] + k) % n
				if inMatch[i] == Unmatched && d.At(i, j) > 0 {
					granted[j] = i
					break
				}
			}
		}
		any := false
		for i := 0; i < n; i++ {
			if inMatch[i] != Unmatched {
				continue
			}
			for k := 0; k < n; k++ {
				j := (r.acceptPtr[i] + k) % n
				if granted[j] == i {
					inMatch[i] = j
					outMatch[j] = i
					any = true
					break
				}
			}
		}
		if !any {
			break
		}
	}
	// RRM's defining flaw: pointers advance every slot regardless of
	// accepts, so they stay synchronized under symmetric load.
	for j := 0; j < n; j++ {
		r.grantPtr[j] = (r.grantPtr[j] + 1) % n
	}
	for i := 0; i < n; i++ {
		r.acceptPtr[i] = (r.acceptPtr[i] + 1) % n
	}
	return inMatch
}

// ILQF is iterative Longest Queue First: the request/grant/accept
// skeleton with arbiters that prefer the *deepest* VOQ instead of a
// round-robin pointer (ties break on lower index). Weight-aware like
// greedy but iterative and parallelizable like iSLIP; it lacks iSLIP's
// starvation freedom, which the fairness test demonstrates.
type ILQF struct {
	n          int
	iterations int
}

// NewILQF returns an iterative longest-queue-first arbiter.
func NewILQF(n, iterations int) *ILQF {
	if n <= 0 || iterations <= 0 {
		panic("match: iLQF needs positive n and iterations")
	}
	return &ILQF{n: n, iterations: iterations}
}

// Name implements Algorithm.
func (l *ILQF) Name() string { return fmt.Sprintf("ilqf-%d", l.iterations) }

// Reset implements Algorithm.
func (l *ILQF) Reset() {}

// Complexity implements Algorithm: each phase needs a max-tree
// (depth log n) rather than a priority encoder, hence the 2x factor.
func (l *ILQF) Complexity(n int) Complexity {
	return Complexity{
		HardwareDepth: 2 * l.iterations * log2ceil(n),
		SoftwareOps:   l.iterations * n * n,
	}
}

// Schedule implements Algorithm.
func (l *ILQF) Schedule(d *demand.Matrix) Matching {
	n := l.n
	inMatch := NewMatching(n)
	outMatched := make([]bool, n)
	for iter := 0; iter < l.iterations; iter++ {
		// Grant: each free output grants its deepest requesting input.
		granted := make([]int, n)
		for j := range granted {
			granted[j] = Unmatched
		}
		for j := 0; j < n; j++ {
			if outMatched[j] {
				continue
			}
			best, bestV := Unmatched, int64(0)
			for i := 0; i < n; i++ {
				if inMatch[i] == Unmatched {
					if v := d.At(i, j); v > bestV {
						best, bestV = i, v
					}
				}
			}
			granted[j] = best
		}
		// Accept: each input accepts its deepest granting output.
		any := false
		for i := 0; i < n; i++ {
			if inMatch[i] != Unmatched {
				continue
			}
			best, bestV := Unmatched, int64(0)
			for j := 0; j < n; j++ {
				if granted[j] == i {
					if v := d.At(i, j); v > bestV {
						best, bestV = j, v
					}
				}
			}
			if best == Unmatched {
				continue
			}
			inMatch[i] = best
			outMatched[best] = true
			any = true
		}
		if !any {
			break
		}
	}
	return inMatch
}

func init() {
	Register("rrm", func(n int, _ uint64) Algorithm { return NewRRM(n, log2ceil(n)) })
	Register("ilqf", func(n int, _ uint64) Algorithm { return NewILQF(n, log2ceil(n)) })
}
