package match

import (
	"fmt"

	"hybridsched/internal/demand"
)

// RRM is Round-Robin Matching — iSLIP's direct ancestor. Identical
// request/grant/accept structure, but pointers advance unconditionally
// every slot instead of only on first-iteration accepts. The missing
// desynchronization rule is exactly what caps RRM near 63% throughput
// under uniform saturation while iSLIP reaches 100%; keeping both makes
// the ablation measurable.
type RRM struct {
	n          int
	iterations int
	grantPtr   []int
	acceptPtr  []int

	// Scratch reused across Schedule calls (see Algorithm.Schedule).
	out       Matching
	outMatch  []int32
	reqs      [][]int32
	grants    [][]int32
	activeOut []int32
}

// NewRRM returns a round-robin matching arbiter.
func NewRRM(n, iterations int) *RRM {
	if n <= 0 || iterations <= 0 {
		panic("match: RRM needs positive n and iterations")
	}
	return &RRM{n: n, iterations: iterations,
		grantPtr: make([]int, n), acceptPtr: make([]int, n),
		out:      NewMatching(n),
		outMatch: make([]int32, n),
		reqs:     make([][]int32, n),
		grants:   make([][]int32, n),
	}
}

// Name implements Algorithm.
func (r *RRM) Name() string { return fmt.Sprintf("rrm-%d", r.iterations) }

// Reset implements Algorithm.
func (r *RRM) Reset() {
	for i := range r.grantPtr {
		r.grantPtr[i] = 0
		r.acceptPtr[i] = 0
	}
}

// Complexity implements Algorithm (same structure as iSLIP).
func (r *RRM) Complexity(n int) Complexity {
	return Complexity{HardwareDepth: 3 * r.iterations, SoftwareOps: r.iterations * n * n}
}

// Schedule implements Algorithm. Like iSLIP it runs grant/accept over
// per-output requester lists built once from the nonzero rows.
//
//hybridsched:hotpath
func (r *RRM) Schedule(d *demand.Matrix) Matching {
	n := r.n
	inMatch := r.out
	for i := range inMatch {
		inMatch[i] = Unmatched
	}
	for j := range r.outMatch {
		r.outMatch[j] = -1
	}
	r.activeOut = buildRequests(d, r.reqs, r.activeOut)

	for iter := 0; iter < r.iterations; iter++ {
		for _, j32 := range r.activeOut {
			j := int(j32)
			if r.outMatch[j] >= 0 {
				continue
			}
			if best := nearestClockwise(r.reqs[j], r.grantPtr[j], n, inMatch); best >= 0 {
				r.grants[best] = append(r.grants[best], j32)
			}
		}
		any := false
		for i := 0; i < n; i++ {
			g := r.grants[i]
			if len(g) == 0 {
				continue
			}
			r.grants[i] = g[:0]
			best := nearestClockwise(g, r.acceptPtr[i], n, nil)
			inMatch[i] = best
			r.outMatch[best] = int32(i)
			any = true
		}
		if !any {
			break
		}
	}
	// RRM's defining flaw: pointers advance every slot regardless of
	// accepts, so they stay synchronized under symmetric load.
	for j := 0; j < n; j++ {
		r.grantPtr[j] = (r.grantPtr[j] + 1) % n
	}
	for i := 0; i < n; i++ {
		r.acceptPtr[i] = (r.acceptPtr[i] + 1) % n
	}
	return inMatch
}

// ILQF is iterative Longest Queue First: the request/grant/accept
// skeleton with arbiters that prefer the *deepest* VOQ instead of a
// round-robin pointer (ties break on lower index). Weight-aware like
// greedy but iterative and parallelizable like iSLIP; it lacks iSLIP's
// starvation freedom, which the fairness test demonstrates.
type ILQF struct {
	n          int
	iterations int

	// Scratch reused across Schedule calls (see Algorithm.Schedule).
	out        Matching
	outMatched []bool
	reqs       [][]int32
	grants     [][]int32
	activeOut  []int32
}

// NewILQF returns an iterative longest-queue-first arbiter.
func NewILQF(n, iterations int) *ILQF {
	if n <= 0 || iterations <= 0 {
		panic("match: iLQF needs positive n and iterations")
	}
	return &ILQF{n: n, iterations: iterations,
		out:        NewMatching(n),
		outMatched: make([]bool, n),
		reqs:       make([][]int32, n),
		grants:     make([][]int32, n),
	}
}

// Name implements Algorithm.
func (l *ILQF) Name() string { return fmt.Sprintf("ilqf-%d", l.iterations) }

// Reset implements Algorithm.
func (l *ILQF) Reset() {}

// Complexity implements Algorithm: each phase needs a max-tree
// (depth log n) rather than a priority encoder, hence the 2x factor.
func (l *ILQF) Complexity(n int) Complexity {
	return Complexity{
		HardwareDepth: 2 * l.iterations * log2ceil(n),
		SoftwareOps:   l.iterations * n * n,
	}
}

// Schedule implements Algorithm.
//
//hybridsched:hotpath
func (l *ILQF) Schedule(d *demand.Matrix) Matching {
	n := l.n
	inMatch := l.out
	for i := range inMatch {
		inMatch[i] = Unmatched
	}
	for j := range l.outMatched {
		l.outMatched[j] = false
	}
	l.activeOut = buildRequests(d, l.reqs, l.activeOut)

	for iter := 0; iter < l.iterations; iter++ {
		// Grant: each free output grants its deepest requesting input
		// (ties break on lower input index — requester lists ascend).
		for _, j32 := range l.activeOut {
			j := int(j32)
			if l.outMatched[j] {
				continue
			}
			best, bestV := -1, int64(0)
			for _, i32 := range l.reqs[j] {
				i := int(i32)
				if inMatch[i] != Unmatched {
					continue
				}
				if v := d.At(i, j); v > bestV {
					best, bestV = i, v
				}
			}
			if best >= 0 {
				l.grants[best] = append(l.grants[best], j32)
			}
		}
		// Accept: each input accepts its deepest granting output.
		any := false
		for i := 0; i < n; i++ {
			g := l.grants[i]
			if len(g) == 0 {
				continue
			}
			l.grants[i] = g[:0]
			best, bestV := -1, int64(0)
			for _, j32 := range g {
				j := int(j32)
				if v := d.At(i, j); v > bestV {
					best, bestV = j, v
				}
			}
			inMatch[i] = best
			l.outMatched[best] = true
			any = true
		}
		if !any {
			break
		}
	}
	return inMatch
}

func init() {
	Register("rrm", func(n int, _ uint64) Algorithm { return NewRRM(n, log2ceil(n)) })
	Register("ilqf", func(n int, _ uint64) Algorithm { return NewILQF(n, log2ceil(n)) })
}
