package match

import (
	"fmt"
	"math/bits"

	"hybridsched/internal/demand"
)

// RRM is Round-Robin Matching — iSLIP's direct ancestor. Identical
// request/grant/accept structure, but pointers advance unconditionally
// every slot instead of only on first-iteration accepts. The missing
// desynchronization rule is exactly what caps RRM near 63% throughput
// under uniform saturation while iSLIP reaches 100%; keeping both makes
// the ablation measurable.
type RRM struct {
	n          int
	words      int
	iterations int
	grantPtr   []int
	acceptPtr  []int

	// Scratch reused across Schedule calls (see Algorithm.Schedule).
	out       Matching
	busyIn    *demand.Bitset
	busyOut   *demand.Bitset
	granted   *demand.Bitset
	grantBits []uint64
	activeOut []int32
}

// NewRRM returns a round-robin matching arbiter.
func NewRRM(n, iterations int) *RRM {
	if n <= 0 || iterations <= 0 {
		panic("match: RRM needs positive n and iterations")
	}
	words := (n + 63) / 64
	return &RRM{n: n, words: words, iterations: iterations,
		grantPtr: make([]int, n), acceptPtr: make([]int, n),
		out:       NewMatching(n),
		busyIn:    demand.NewBitset(n),
		busyOut:   demand.NewBitset(n),
		granted:   demand.NewBitset(n),
		grantBits: make([]uint64, n*words),
		activeOut: make([]int32, 0, n),
	}
}

// Name implements Algorithm.
func (r *RRM) Name() string { return fmt.Sprintf("rrm-%d", r.iterations) }

// Reset implements Algorithm.
func (r *RRM) Reset() {
	for i := range r.grantPtr {
		r.grantPtr[i] = 0
		r.acceptPtr[i] = 0
	}
}

// Complexity implements Algorithm (same word-parallel structure as
// iSLIP, plus the unconditional O(n) pointer rotation).
func (r *RRM) Complexity(n int) Complexity {
	w := bitsetWords(n)
	return Complexity{
		HardwareDepth: 3 * r.iterations,
		SoftwareOps:   r.iterations*(5*n*w+2*n) + 5*n,
	}
}

// Schedule implements Algorithm. Like iSLIP it runs masked word scans
// over the matrix's column bitsets for grants and per-input grant bitset
// rows for accepts.
//
//hybridsched:hotpath
func (r *RRM) Schedule(d *demand.Matrix) Matching {
	n, words := r.n, r.words
	inMatch := r.out
	for i := range inMatch {
		inMatch[i] = Unmatched
	}
	r.busyIn.Zero()
	r.busyOut.Zero()
	r.activeOut = activeOutputs(d, r.activeOut)
	busyIn := r.busyIn.Words()

	for iter := 0; iter < r.iterations; iter++ {
		// As in iSLIP, outputs that are matched or whose requesters are all
		// matched are compacted out of the active list: neither can grant
		// again this Schedule, since busyIn and busyOut only grow.
		live := r.activeOut[:0]
		for _, j32 := range r.activeOut {
			j := int(j32)
			if r.busyOut.Test(j) {
				continue
			}
			best := demand.ClockwiseBit(d.ColBits(j), busyIn, r.grantPtr[j], n)
			if best < 0 {
				continue
			}
			live = append(live, j32)
			r.grantBits[best*words+j>>6] |= 1 << (uint(j) & 63)
			r.granted.Set(best)
		}
		r.activeOut = live
		any := false
		gw := r.granted.Words()
		for i := demand.NextBit(gw, 0); i >= 0; i = demand.NextBit(gw, i+1) {
			row := r.grantBits[i*words : (i+1)*words]
			best := demand.ClockwiseBit(row, nil, r.acceptPtr[i], n)
			for k := range row {
				row[k] = 0
			}
			inMatch[i] = best
			r.busyIn.Set(i)
			r.busyOut.Set(best)
			any = true
		}
		r.granted.Zero()
		if !any {
			break
		}
	}
	// RRM's defining flaw: pointers advance every slot regardless of
	// accepts, so they stay synchronized under symmetric load.
	for j := 0; j < n; j++ {
		r.grantPtr[j] = (r.grantPtr[j] + 1) % n
	}
	for i := 0; i < n; i++ {
		r.acceptPtr[i] = (r.acceptPtr[i] + 1) % n
	}
	return inMatch
}

// ILQF is iterative Longest Queue First: the request/grant/accept
// skeleton with arbiters that prefer the *deepest* VOQ instead of a
// round-robin pointer (ties break on lower index). Weight-aware like
// greedy but iterative and parallelizable like iSLIP; it lacks iSLIP's
// starvation freedom, which the fairness test demonstrates. The
// candidate sets are walked as bitset rows (64 ports skipped per empty
// word), but each surviving candidate still costs a queue-depth lookup —
// the value comparison is what cannot be word-parallelized.
type ILQF struct {
	n          int
	words      int
	iterations int

	// Scratch reused across Schedule calls (see Algorithm.Schedule).
	out       Matching
	busyIn    *demand.Bitset
	grantReg  []ilqfGrantReg
	grantBits []uint64
	activeOut []int32
	loserOut  []int32
	grantees  []int32
}

// ilqfGrantReg is an input's per-iteration grant register: the first two
// granting outputs together with the granted queue depths (the grant
// phase already looked those cells up, so the two-candidate accept needs
// no further matrix reads). g1/v1 duplicate g0/v0 while cnt is 1.
type ilqfGrantReg struct {
	v0, v1 int64
	cnt    int32
	g0, g1 int32
}

// NewILQF returns an iterative longest-queue-first arbiter.
func NewILQF(n, iterations int) *ILQF {
	if n <= 0 || iterations <= 0 {
		panic("match: iLQF needs positive n and iterations")
	}
	words := (n + 63) / 64
	return &ILQF{n: n, words: words, iterations: iterations,
		out:       NewMatching(n),
		busyIn:    demand.NewBitset(n),
		grantReg:  make([]ilqfGrantReg, n),
		grantBits: make([]uint64, n*words),
		activeOut: make([]int32, 0, n),
		loserOut:  make([]int32, 0, n),
		grantees:  make([]int32, 0, n),
	}
}

// Name implements Algorithm.
func (l *ILQF) Name() string { return fmt.Sprintf("ilqf-%d", l.iterations) }

// Reset implements Algorithm.
func (l *ILQF) Reset() {}

// Complexity implements Algorithm: each phase needs a max-tree
// (depth log n) rather than a priority encoder, hence the 2x factor in
// hardware. In software each iteration scans the request and grant
// bitset rows (2·n·words words) and pays one depth lookup per surviving
// candidate — modeled at the reference fill (see modelFill), since the
// comparison work is per-nonzero rather than per-word.
func (l *ILQF) Complexity(n int) Complexity {
	w := bitsetWords(n)
	return Complexity{
		HardwareDepth: 2 * l.iterations * log2ceil(n),
		SoftwareOps:   l.iterations*(3*n*w+2*n+2*modelFill*n) + 3*n,
	}
}

// Schedule implements Algorithm. The loop structure mirrors iSLIP's (see
// (*ISLIP).Schedule): grant and accept decisions are order-independent
// within a phase — ILQF's tie rule, lowest index among the deepest, is
// enforced explicitly in the comparisons rather than by iteration order —
// so both phases run over compact work lists and the accept phase
// rebuilds the next iteration's scan list from the losing granters.
//
//hybridsched:hotpath
func (l *ILQF) Schedule(d *demand.Matrix) Matching {
	n, words := l.n, l.words
	inMatch := l.out
	l.busyIn.Zero()
	cur := activeOutputs(d, l.activeOut[:0])
	next := l.loserOut[:0]
	grantees := l.grantees[:0]
	busyIn := l.busyIn.Words()

	for iter := 0; iter < l.iterations; iter++ {
		// Grant: each contested output grants its deepest unmatched
		// requesting input (ties break on lower input index).
		for _, j32 := range cur {
			j := int(j32)
			cb := d.ColBits(j)
			best, bestV := -1, int64(0)
			for wi, w := range cb {
				w &^= busyIn[wi]
				for w != 0 {
					i := wi<<6 + bits.TrailingZeros64(w)
					w &= w - 1
					if v := d.At(i, j); v > bestV {
						best, bestV = i, v
					}
				}
			}
			if best < 0 {
				continue // requesters exhausted; stays unmatched
			}
			reg := &l.grantReg[best]
			cnt := reg.cnt
			reg.cnt = cnt + 1
			switch cnt {
			case 0:
				reg.g0, reg.v0 = j32, bestV
				reg.g1, reg.v1 = j32, bestV
				grantees = append(grantees, int32(best))
			case 1:
				reg.g1, reg.v1 = j32, bestV
			default:
				row := l.grantBits[best*words : (best+1)*words]
				if cnt == 2 {
					g0, g1 := reg.g0, reg.g1
					row[uint(g0)>>6] |= 1 << (uint(g0) & 63)
					row[uint(g1)>>6] |= 1 << (uint(g1) & 63)
				}
				row[j>>6] |= 1 << (uint(j) & 63)
			}
		}
		if len(grantees) == 0 {
			break
		}
		// Accept: each granted input accepts its deepest granting output
		// (ties break on lower output index); losers become the next
		// iteration's scan list. The grant registers carry the queue
		// depths, so only spilled rows re-read the matrix.
		next = next[:0]
		for _, i32 := range grantees {
			i := int(i32)
			reg := &l.grantReg[i]
			cnt := reg.cnt
			reg.cnt = 0
			var best int
			if cnt <= 2 {
				best = int(reg.g0)
				if reg.v1 > reg.v0 || (reg.v1 == reg.v0 && reg.g1 < reg.g0) {
					best = int(reg.g1)
				}
				if cnt == 2 {
					next = append(next, reg.g0+reg.g1-int32(best))
				}
			} else {
				row := l.grantBits[i*words : (i+1)*words]
				best = -1
				bestV := int64(0)
				for wi, w := range row {
					for w != 0 {
						j := wi<<6 + bits.TrailingZeros64(w)
						w &= w - 1
						if v := d.At(i, j); v > bestV {
							best, bestV = j, v
						}
					}
				}
				for wi := range row {
					w := row[wi]
					row[wi] = 0
					for w != 0 {
						jj := wi<<6 + bits.TrailingZeros64(w)
						w &= w - 1
						if jj != best {
							next = append(next, int32(jj))
						}
					}
				}
			}
			inMatch[i] = best
			busyIn[uint(i)>>6] |= 1 << (uint(i) & 63)
		}
		grantees = grantees[:0]
		cur, next = next, cur
	}
	// Fix up the inputs that never accepted (see iSLIP).
	for wi := 0; wi < words; wi++ {
		w := ^busyIn[wi]
		if wi == words-1 {
			if r := uint(n) & 63; r != 0 {
				w &= 1<<r - 1
			}
		}
		for w != 0 {
			i := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			inMatch[i] = Unmatched
		}
	}
	l.activeOut, l.loserOut, l.grantees = cur[:0], next[:0], grantees
	return inMatch
}

func init() {
	Register("rrm", func(n int, _ uint64) Algorithm { return NewRRM(n, log2ceil(n)) })
	Register("ilqf", func(n int, _ uint64) Algorithm { return NewILQF(n, log2ceil(n)) })
}
