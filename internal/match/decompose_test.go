package match

import (
	"fmt"
	"slices"
	"testing"

	"hybridsched/internal/demand"
	"hybridsched/internal/rng"
	"hybridsched/internal/runner/pool"
)

// Tests for the frame-decomposition engine (decompose.go): lineage
// equivalence against the preserved sparse and dense references, the
// warm-equals-cold contract of every warm-start mechanism, compute-ahead
// transparency, parallel-threshold-search determinism, and the
// steady-state allocation pin the hot-path annotations promise.

// slotsEqual fails the test unless the two slot sequences match exactly
// — same length, same matchings, same weights, in order.
func slotsEqual(t *testing.T, label string, got, want []Slot) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d slots, want %d", label, len(got), len(want))
	}
	for k := range got {
		if !got[k].Match.Equal(want[k].Match) || got[k].Weight != want[k].Weight {
			t.Fatalf("%s: slot %d = (%v, %d), want (%v, %d)",
				label, k, got[k].Match, got[k].Weight, want[k].Match, want[k].Weight)
		}
	}
}

func matricesEqual(t *testing.T, label string, got, want *demand.Matrix) {
	t.Helper()
	n := got.N()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if got.At(i, j) != want.At(i, j) {
				t.Fatalf("%s: (%d,%d) = %d, want %d", label, i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
}

// sparseFrameDemand builds the controlled-sparsity demand the larger
// equivalence sizes use: k random peers per port, values in [1, maxV].
func sparseFrameDemand(r *rng.Rand, n, k int, maxV int64) *demand.Matrix {
	d := demand.NewMatrix(n)
	for i := 0; i < n; i++ {
		for p := 0; p < k; p++ {
			j := r.Intn(n)
			if j == i {
				continue
			}
			d.Set(i, j, 1+r.Int63n(maxV))
		}
	}
	return d
}

// TestThreeWayDecompositionEquivalence locks the decomposition lineage
// together at and beyond the word boundary: the live bitset engine, the
// preserved sparse-list recursion (sparse_decompose_ref_test.go) and —
// where it is affordable — the dense O(n²)-scan reference must produce
// identical slot sequences and residuals. n=64 runs the one-word kernel,
// n=128 the two-word specialization, n=256 the generic multi-word path.
func TestThreeWayDecompositionEquivalence(t *testing.T) {
	for _, n := range []int{64, 128, 256} {
		r := rng.New(uint64(n)*313 + 7)
		rounds := 3
		if n >= 256 {
			rounds = 1
		}
		for round := 0; round < rounds; round++ {
			d := sparseFrameDemand(r, n, 4, 60)
			if d.Total() == 0 {
				continue
			}
			label := fmt.Sprintf("bvn n=%d round=%d", n, round)
			got := DecomposeBvN(d)
			slotsEqual(t, label+" vs sparse", got, sparseDecomposeBvN(d))
			if n <= 64 {
				slotsEqual(t, label+" vs dense", got, denseDecomposeBvN(d))
			}

			minWorth := d.MaxLineSum() / 16
			label = fmt.Sprintf("maxmin n=%d round=%d", n, round)
			gotSlots, gotRes := DecomposeMaxMin(d, minWorth)
			spSlots, spRes := sparseDecomposeMaxMin(d, minWorth)
			slotsEqual(t, label+" vs sparse", gotSlots, spSlots)
			matricesEqual(t, label+" residual", gotRes, spRes)
			if n <= 64 {
				deSlots, deRes := denseDecomposeMaxMin(d, minWorth)
				slotsEqual(t, label+" vs dense", gotSlots, deSlots)
				matricesEqual(t, label+" dense residual", gotRes, deRes)
				deRes.Release()
			}
			gotRes.Release()
			spRes.Release()
		}
	}
}

// mutateDemand applies a randomized epoch-over-epoch delta to d: with
// probability ~1/4 it changes nothing (the identical-input fast path),
// otherwise it scales a few existing entries (value-only changes keep
// the stuffed support replayable) and occasionally adds or removes a
// cell (structural changes force live extraction mid-frame).
func mutateDemand(r *rng.Rand, d *demand.Matrix) {
	switch r.Intn(4) {
	case 0:
		return
	case 1:
		// Value-only: scale a handful of existing entries.
		for t := 0; t < 3; t++ {
			i := r.Intn(d.N())
			row := d.Row(i)
			if row.Len() == 0 {
				continue
			}
			j, v := row.Entry(r.Intn(row.Len()))
			d.Set(i, j, 1+(v*int64(1+r.Intn(3)))/2)
		}
	case 2:
		// Structural: add a cell.
		i, j := r.Intn(d.N()), r.Intn(d.N())
		if i != j {
			d.Set(i, j, 1+r.Int63n(1000))
		}
	default:
		// Structural: remove a cell.
		i := r.Intn(d.N())
		row := d.Row(i)
		if row.Len() > 0 {
			j, _ := row.Entry(r.Intn(row.Len()))
			d.Set(i, j, 0)
		}
	}
}

// TestWarmColdEquivalence is the warm-start contract: a Decomposer
// retained across a trajectory of mutating demand matrices must produce,
// at every epoch, exactly the slots (and residual) a freshly constructed
// engine produces for that epoch's input alone — bit for bit, through
// the identical-input, support-replay and threshold-seed mechanisms and
// across both buffer sides.
func TestWarmColdEquivalence(t *testing.T) {
	for _, n := range []int{16, 64, 128} {
		for _, maxmin := range []bool{false, true} {
			r := rng.New(uint64(n)*501 + 11)
			warm := NewDecomposer(n)
			d := sparseFrameDemand(r, n, 5, 200)
			for epoch := 0; epoch < 12; epoch++ {
				label := fmt.Sprintf("n=%d maxmin=%v epoch=%d", n, maxmin, epoch)
				cold := NewDecomposer(n)
				if maxmin {
					minWorth := d.MaxLineSum() / 16
					gotSlots, gotRes := warm.MaxMin(d, minWorth)
					wantSlots, wantRes := cold.MaxMin(d, minWorth)
					slotsEqual(t, label, gotSlots, wantSlots)
					matricesEqual(t, label+" residual", gotRes, wantRes)
					gotRes.Release()
					wantRes.Release()
				} else {
					slotsEqual(t, label, warm.BvN(d), cold.BvN(d))
				}
				mutateDemand(r, d)
			}
		}
	}
}

// TestDecomposerSlotLifetime pins the double-buffer ownership contract:
// the slots one decomposition returns must remain intact through the
// NEXT decomposition on the same engine (that is what lets a frame play
// back while its successor computes).
func TestDecomposerSlotLifetime(t *testing.T) {
	n := 32
	r := rng.New(77)
	dc := NewDecomposer(n)
	d1 := sparseFrameDemand(r, n, 4, 100)
	d2 := sparseFrameDemand(r, n, 4, 100)

	first := dc.BvN(d1)
	want := cloneSlots(first, n)
	dc.BvN(d2) // must not disturb first's storage
	slotsEqual(t, "slots after one subsequent decomposition", first, want)
}

// TestParallelThresholdSearchEquivalence: installing a worker pool fans
// the max-min threshold probes out but must not change a single slot,
// weight or residual cell relative to the serial search.
func TestParallelThresholdSearchEquivalence(t *testing.T) {
	for _, workers := range []int{2, 4, 8} {
		p := pool.New(workers)
		for _, n := range []int{16, 64, 128} {
			r := rng.New(uint64(n*workers) * 13)
			par := NewDecomposer(n)
			par.SetPool(p)
			ser := NewDecomposer(n)
			d := sparseFrameDemand(r, n, 5, 500)
			for epoch := 0; epoch < 4; epoch++ {
				label := fmt.Sprintf("workers=%d n=%d epoch=%d", workers, n, epoch)
				minWorth := d.MaxLineSum() / 16
				gotSlots, gotRes := par.MaxMin(d, minWorth)
				wantSlots, wantRes := ser.MaxMin(d, minWorth)
				slotsEqual(t, label, gotSlots, wantSlots)
				matricesEqual(t, label+" residual", gotRes, wantRes)
				gotRes.Release()
				wantRes.Release()
				mutateDemand(r, d)
			}
		}
	}
}

// TestComputeAheadEquivalence: a frame scheduler with the background
// decomposition worker enabled must emit exactly the matchings the
// synchronous scheduler emits, across frame boundaries, demand shifts
// and Reset — speculation may only ever change where the work runs.
func TestComputeAheadEquivalence(t *testing.T) {
	for _, name := range []string{"bvn", "maxmin"} {
		n := 64
		r := rng.New(991)
		sync, _ := New(name, n, 1)
		ahead, _ := New(name, n, 1)
		ahead.(*FrameScheduler).EnableComputeAhead()
		defer ahead.(*FrameScheduler).Close()

		d := sparseFrameDemand(r, n, 5, 300)
		for step := 0; step < 400; step++ {
			got := ahead.Schedule(d).Clone()
			want := sync.Schedule(d)
			if !got.Equal(want) {
				t.Fatalf("%s step %d: compute-ahead %v != sync %v", name, step, got, want)
			}
			// Shift demand mid-playback sometimes, between frames other
			// times; occasionally drain to zero and reset.
			if step%37 == 0 {
				mutateDemand(r, d)
			}
			if step == 211 {
				sync.Reset()
				ahead.Reset()
			}
		}
	}
}

// TestFrameSchedulerSteadyStateAllocs pins the refill boundary's promise:
// once warm, a frame scheduler driven through repeated full frames —
// including the decompositions themselves — allocates nothing, even with
// the demand alternating so the identical-input fast path cannot carry
// every refill.
func TestFrameSchedulerSteadyStateAllocs(t *testing.T) {
	for _, name := range []string{"bvn", "maxmin"} {
		n := 32
		r := rng.New(uint64(len(name)))
		alg, _ := New(name, n, 1)
		f := alg.(*FrameScheduler)
		a := sparseFrameDemand(r, n, 4, 100)
		b := sparseFrameDemand(r, n, 4, 100)
		// Warm up: both buffer sides, both inputs, all arenas at final cap.
		for i := 0; i < 8*maxPlayback; i++ {
			if i%maxPlayback == 0 && (i/maxPlayback)%2 == 1 {
				a, b = b, a
			}
			f.Schedule(a)
		}
		per := testing.AllocsPerRun(3, func() {
			for i := 0; i < 2*maxPlayback; i++ {
				f.Schedule(a)
			}
			a, b = b, a
		})
		if per != 0 {
			t.Errorf("%s-frame steady state allocates %.1f allocs per double frame, want 0", name, per)
		}
	}
}

// FuzzWarmStartRepair drives the warm repair path with fuzzed demand
// deltas: decompose a base matrix, apply an arbitrary mutation sequence,
// decompose again on the same warm engine, and require bit-for-bit
// agreement with a cold engine seeing only the final matrix. The fuzzer
// hunts for support evolutions where replay validation (zeroed-set
// comparison, threshold seeding, memoized extraction) would wrongly keep
// stale work.
func FuzzWarmStartRepair(f *testing.F) {
	f.Add(uint64(1), []byte{0x10, 0x82, 0x3f})
	f.Add(uint64(7), []byte{0x00, 0x00, 0xff, 0x41, 0x07, 0x30})
	f.Add(uint64(42), []byte{0x91, 0x22, 0x13, 0x84, 0x75, 0x66, 0x57, 0x48})
	f.Fuzz(func(t *testing.T, seed uint64, ops []byte) {
		n := 16
		r := rng.New(seed)
		d := sparseFrameDemand(r, n, 4, 40)
		warm := NewDecomposer(n)
		warm.BvN(d)
		warmMM := NewDecomposer(n)
		_, res := warmMM.MaxMin(d, d.MaxLineSum()/16)
		res.Release()

		// Interpret each op byte as one cell edit: high nibble picks the
		// cell (wrapping), low nibble the new value (0 removes).
		for _, op := range ops {
			i := int(op>>4) % n
			j := int(op) % n
			if i == j {
				continue
			}
			d.Set(i, j, int64(op&0x0f))
		}

		cold := NewDecomposer(n)
		got, want := warm.BvN(d), cold.BvN(d)
		slotsEqual(t, "bvn warm repair", got, want)

		coldMM := NewDecomposer(n)
		minWorth := d.MaxLineSum() / 16
		gotS, gotR := warmMM.MaxMin(d, minWorth)
		wantS, wantR := coldMM.MaxMin(d, minWorth)
		slotsEqual(t, "maxmin warm repair", gotS, wantS)
		matricesEqual(t, "maxmin warm residual", gotR, wantR)
		gotR.Release()
		wantR.Release()
	})
}

// TestGreedyRadixMatchesComparator pins the greedy arbiter's radix sort
// against the comparator order at fabric scale, where the radix path is
// the one that runs: identical matchings, including heavy tie regimes
// (quantized weights) that stress the stability-as-tie-break argument.
func TestGreedyRadixMatchesComparator(t *testing.T) {
	for _, n := range []int{128, 512, 2048} {
		for _, quantize := range []int64{0, 64} {
			r := rng.New(uint64(n) + uint64(quantize)*17)
			g := NewGreedy(n)
			for round := 0; round < 3; round++ {
				d := sparseFrameDemand(r, n, 8, 100_000)
				if quantize > 0 {
					// Collapse weights onto a few values so ties dominate.
					for i := 0; i < n; i++ {
						row := d.Row(i)
						for k := 0; k < row.Len(); k++ {
							j, v := row.Entry(k)
							d.Set(i, j, 1+(v/quantize)*quantize)
						}
					}
				}
				got := g.Schedule(d).Clone()

				// Comparator reference: same collection, comparison sort,
				// same selection.
				var edges []greedyEdge
				for i := 0; i < n; i++ {
					row := d.Row(i)
					for k := 0; k < row.Len(); k++ {
						j, v := row.Entry(k)
						edges = append(edges, greedyEdge{v, i, j})
					}
				}
				slices.SortFunc(edges, compareGreedyEdges)
				want := NewMatching(n)
				for i := range want {
					want[i] = Unmatched
				}
				colUsed := make([]bool, n)
				for _, e := range edges {
					if want[e.i] == Unmatched && !colUsed[e.j] {
						want[e.i] = e.j
						colUsed[e.j] = true
					}
				}
				if !got.Equal(want) {
					t.Fatalf("n=%d quantize=%d round=%d: radix greedy diverges from comparator reference",
						n, quantize, round)
				}
			}
		}
	}
}
