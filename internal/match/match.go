// Package match implements the scheduling algorithms that plug into the
// scheduling logic — the slot of Figure 2 where "users implement novel
// design". All algorithms consume a demand matrix and produce a matching
// (crossbar configuration): which input port is connected to which output
// port for the next slot.
//
// Two families are provided:
//
//   - Per-slot crossbar arbiters (TDMA, iSLIP, PIM, wavefront, greedy,
//     Hungarian): compute one matching per invocation. These are the
//     algorithms a hardware scheduler runs every slot.
//   - Frame decompositions (Birkhoff–von Neumann, max-min/Solstice-style):
//     compute a whole sequence of (matching, duration) slots amortizing
//     the OCS reconfiguration penalty. These are what circuit schedulers
//     for slow-switching optics run per frame.
//
// Each algorithm reports a Complexity used by the hardware and software
// timing models in internal/sched to derive schedule-computation latency.
//
// # Scale
//
// All algorithms iterate the demand matrix's nonzero structure
// (demand.Matrix.Row) instead of scanning n² cells, and reuse
// per-instance scratch buffers — including the returned Matching — across
// Schedule calls, so the per-slot cost at fabric scale (hundreds of
// ports) is O(nonzeros), allocation-free in steady state. The nonzero
// iteration visits cells in exactly the order the dense scans did, so
// results are bit-identical to the dense implementations (pinned by the
// dense-reference equivalence suite in dense_ref_test.go and the golden
// HSTR trace digests).
package match

import (
	"fmt"
	"sort"
	"sync"
)

import "hybridsched/internal/demand"

// Unmatched marks an input port with no output assigned this slot.
const Unmatched = -1

// Matching maps input port -> output port (or Unmatched). A valid matching
// assigns each output to at most one input.
type Matching []int

// NewMatching returns an all-unmatched matching for n ports.
func NewMatching(n int) Matching {
	m := make(Matching, n)
	for i := range m {
		m[i] = Unmatched
	}
	return m
}

// Identity returns the matching i -> i.
func Identity(n int) Matching {
	m := make(Matching, n)
	for i := range m {
		m[i] = i
	}
	return m
}

// Validate returns an error if any output is assigned twice or out of
// range.
func (m Matching) Validate() error {
	seen := make([]bool, len(m))
	for in, out := range m {
		if out == Unmatched {
			continue
		}
		if out < 0 || out >= len(m) {
			return fmt.Errorf("match: input %d assigned out-of-range output %d", in, out)
		}
		if seen[out] {
			return fmt.Errorf("match: output %d assigned twice", out)
		}
		seen[out] = true
	}
	return nil
}

// Size returns the number of matched pairs.
func (m Matching) Size() int {
	n := 0
	for _, out := range m {
		if out != Unmatched {
			n++
		}
	}
	return n
}

// Weight returns the total demand served by the matching under d.
func (m Matching) Weight(d *demand.Matrix) int64 {
	var w int64
	for in, out := range m {
		if out != Unmatched {
			w += d.At(in, out)
		}
	}
	return w
}

// Clone returns a copy.
func (m Matching) Clone() Matching {
	out := make(Matching, len(m))
	copy(out, m)
	return out
}

// Equal reports whether two matchings are identical.
func (m Matching) Equal(o Matching) bool {
	if len(m) != len(o) {
		return false
	}
	for i := range m {
		if m[i] != o[i] {
			return false
		}
	}
	return true
}

// IsMaximal reports whether no unmatched (in, out) pair with positive
// demand could be added — the defining property of maximal matchings that
// iterative arbiters (iSLIP, PIM, WFA, greedy) converge to.
func (m Matching) IsMaximal(d *demand.Matrix) bool {
	outUsed := make([]bool, len(m))
	for _, out := range m {
		if out != Unmatched {
			outUsed[out] = true
		}
	}
	for in, out := range m {
		if out != Unmatched {
			continue
		}
		for j := 0; j < len(m); j++ {
			if !outUsed[j] && d.At(in, j) > 0 {
				return false
			}
		}
	}
	return true
}

// Complexity describes an algorithm's cost for the timing models.
type Complexity struct {
	// HardwareDepth is the serial depth in clocked steps when every
	// per-port arbiter runs in parallel (what an FPGA implementation
	// pipelines). Schedule latency = depth * clock period.
	HardwareDepth int
	// SoftwareOps approximates the scalar operation count a CPU
	// implementation executes. Schedule latency = ops * per-op cost.
	SoftwareOps int
}

// Algorithm computes crossbar matchings from demand. Implementations may
// keep state across calls (round-robin pointers); Reset clears it.
type Algorithm interface {
	// Name identifies the algorithm in reports and the registry.
	Name() string
	// Schedule returns a matching serving d. Entries of d that are zero
	// are non-requests; the matching only pairs ports with positive
	// demand (TDMA, which is demand-oblivious, is the exception).
	//
	// Ownership: d is only on loan for the duration of the call —
	// implementations must not retain it. The returned matching may be
	// per-instance scratch that the next Schedule or Reset call reuses;
	// callers that keep it across scheduling slots must Clone it (the
	// OCS configuration path does).
	Schedule(d *demand.Matrix) Matching
	// Complexity reports cost for an n-port instance.
	Complexity(n int) Complexity
	// Reset clears inter-slot state.
	Reset()
}

// Factory constructs an algorithm for an n-port switch with a seed for
// randomized algorithms.
type Factory func(n int, seed uint64) Algorithm

// The registry is guarded by a mutex because registration is public API:
// a downstream program may register an algorithm while scenario workers
// are concurrently instantiating others.
var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register installs a factory under name. It panics on duplicates: the
// registry is normally assembled at init time and a collision is a
// programming error.
func Register(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("match: duplicate algorithm " + name)
	}
	registry[name] = f
}

// New instantiates a registered algorithm.
func New(name string, n int, seed uint64) (Algorithm, error) {
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("match: unknown algorithm %q (have %v)", name, Names())
	}
	return f(n, seed), nil
}

// Known reports whether name is a registered algorithm.
func Known(name string) bool {
	registryMu.RLock()
	defer registryMu.RUnlock()
	_, ok := registry[name]
	return ok
}

// Names lists registered algorithms in sorted order.
func Names() []string {
	registryMu.RLock()
	out := make([]string, 0, len(registry))
	for name := range registry { //hybridsched:mapiter sorted below
		out = append(out, name)
	}
	registryMu.RUnlock()
	sort.Strings(out)
	return out
}
