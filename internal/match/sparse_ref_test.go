package match

import (
	"slices"

	"hybridsched/internal/demand"
	"hybridsched/internal/rng"
)

// This file preserves the pre-bitset sparse implementations — the
// nonzero-list kernels of the scaling refactor — as test-only
// references, exactly as dense_ref_test.go preserves the original dense
// scans. The live kernels now run word-parallel over uint64 bitset rows;
// the three-way suite in equivalence_test.go asserts dense, sparse-list
// and bitset implementations all produce identical matchings, slot
// sequences and pointer state.

// sparseAlgorithm is the preserved nonzero-list counterpart of a
// registered algorithm.
type sparseAlgorithm interface {
	Schedule(d *demand.Matrix) Matching
	Reset()
}

// newSparseRef returns the sparse-list reference for a registered
// algorithm name, or nil for algorithms outside this suite's scope:
// TDMA and Hungarian never had a bitset rewrite (the live code is still
// the sparse implementation, covered by the dense suite), and the frame
// decompositions are pinned as whole frames against their own preserved
// references (sparse_decompose_ref_test.go).
func newSparseRef(name string, n int, seed uint64) sparseAlgorithm {
	switch name {
	case "islip":
		return newSparseISLIP(n, log2ceil(n))
	case "islip1":
		return newSparseISLIP(n, 1)
	case "islipn":
		return newSparseISLIP(n, n)
	case "rrm":
		return newSparseRRM(n, log2ceil(n))
	case "ilqf":
		return newSparseILQF(n, log2ceil(n))
	case "pim":
		return newSparsePIM(n, log2ceil(n), seed)
	case "wavefront":
		return newSparseWavefront(n)
	case "greedy":
		return newSparseGreedy(n)
	}
	return nil
}

// sparseBuildRequests fills reqs from d's nonzero rows and returns the
// ascending list of outputs with requesters (the preserved request phase
// shared by the sparse iSLIP/RRM/iLQF/PIM references).
func sparseBuildRequests(d *demand.Matrix, reqs [][]int32, activeOut []int32) []int32 {
	n := len(reqs)
	for j := 0; j < n; j++ {
		reqs[j] = reqs[j][:0]
	}
	for i := 0; i < n; i++ {
		row := d.Row(i)
		for k := 0; k < row.Len(); k++ {
			j, _ := row.Entry(k)
			reqs[j] = append(reqs[j], int32(i))
		}
	}
	activeOut = activeOut[:0]
	for j := 0; j < n; j++ {
		if len(reqs[j]) > 0 {
			activeOut = append(activeOut, int32(j))
		}
	}
	return activeOut
}

// sparseNearestClockwise is the preserved list-walking rotating-priority
// selection: among cands, the port closest clockwise to ptr modulo n,
// skipping candidates already matched in busy (nil considers all).
func sparseNearestClockwise(cands []int32, ptr, n int, busy Matching) int {
	best, bestDist := -1, n
	for _, c32 := range cands {
		c := int(c32)
		if busy != nil && busy[c] != Unmatched {
			continue
		}
		dist := c - ptr
		if dist < 0 {
			dist += n
		}
		if dist < bestDist {
			best, bestDist = c, dist
		}
	}
	return best
}

// --- iSLIP (sparse lists) ---

type sparseISLIP struct {
	n          int
	iterations int
	grantPtr   []int
	acceptPtr  []int

	out       Matching
	outMatch  []int32
	reqs      [][]int32
	grants    [][]int32
	activeOut []int32
}

func newSparseISLIP(n, iterations int) *sparseISLIP {
	return &sparseISLIP{
		n: n, iterations: iterations,
		grantPtr:  make([]int, n),
		acceptPtr: make([]int, n),
		out:       NewMatching(n),
		outMatch:  make([]int32, n),
		reqs:      make([][]int32, n),
		grants:    make([][]int32, n),
		activeOut: make([]int32, 0, n),
	}
}

func (s *sparseISLIP) Reset() {
	for i := range s.grantPtr {
		s.grantPtr[i] = 0
		s.acceptPtr[i] = 0
	}
}

func (s *sparseISLIP) Schedule(d *demand.Matrix) Matching {
	n := s.n
	inMatch := s.out
	for i := range inMatch {
		inMatch[i] = Unmatched
	}
	for j := range s.outMatch {
		s.outMatch[j] = -1
	}
	s.activeOut = sparseBuildRequests(d, s.reqs, s.activeOut)

	for iter := 0; iter < s.iterations; iter++ {
		for _, j32 := range s.activeOut {
			j := int(j32)
			if s.outMatch[j] >= 0 {
				continue
			}
			if best := sparseNearestClockwise(s.reqs[j], s.grantPtr[j], n, inMatch); best >= 0 {
				s.grants[best] = append(s.grants[best], j32)
			}
		}
		anyAccept := false
		for i := 0; i < n; i++ {
			g := s.grants[i]
			if len(g) == 0 {
				continue
			}
			s.grants[i] = g[:0]
			best := sparseNearestClockwise(g, s.acceptPtr[i], n, nil)
			inMatch[i] = best
			s.outMatch[best] = int32(i)
			anyAccept = true
			if iter == 0 {
				s.grantPtr[best] = (i + 1) % n
				s.acceptPtr[i] = (best + 1) % n
			}
		}
		if !anyAccept {
			break
		}
	}
	return inMatch
}

// --- RRM (sparse lists) ---

type sparseRRM struct {
	n          int
	iterations int
	grantPtr   []int
	acceptPtr  []int

	out       Matching
	outMatch  []int32
	reqs      [][]int32
	grants    [][]int32
	activeOut []int32
}

func newSparseRRM(n, iterations int) *sparseRRM {
	return &sparseRRM{n: n, iterations: iterations,
		grantPtr: make([]int, n), acceptPtr: make([]int, n),
		out:      NewMatching(n),
		outMatch: make([]int32, n),
		reqs:     make([][]int32, n),
		grants:   make([][]int32, n),
	}
}

func (r *sparseRRM) Reset() {
	for i := range r.grantPtr {
		r.grantPtr[i] = 0
		r.acceptPtr[i] = 0
	}
}

func (r *sparseRRM) Schedule(d *demand.Matrix) Matching {
	n := r.n
	inMatch := r.out
	for i := range inMatch {
		inMatch[i] = Unmatched
	}
	for j := range r.outMatch {
		r.outMatch[j] = -1
	}
	r.activeOut = sparseBuildRequests(d, r.reqs, r.activeOut)

	for iter := 0; iter < r.iterations; iter++ {
		for _, j32 := range r.activeOut {
			j := int(j32)
			if r.outMatch[j] >= 0 {
				continue
			}
			if best := sparseNearestClockwise(r.reqs[j], r.grantPtr[j], n, inMatch); best >= 0 {
				r.grants[best] = append(r.grants[best], j32)
			}
		}
		any := false
		for i := 0; i < n; i++ {
			g := r.grants[i]
			if len(g) == 0 {
				continue
			}
			r.grants[i] = g[:0]
			best := sparseNearestClockwise(g, r.acceptPtr[i], n, nil)
			inMatch[i] = best
			r.outMatch[best] = int32(i)
			any = true
		}
		if !any {
			break
		}
	}
	for j := 0; j < n; j++ {
		r.grantPtr[j] = (r.grantPtr[j] + 1) % n
	}
	for i := 0; i < n; i++ {
		r.acceptPtr[i] = (r.acceptPtr[i] + 1) % n
	}
	return inMatch
}

// --- iLQF (sparse lists) ---

type sparseILQF struct {
	n          int
	iterations int

	out        Matching
	outMatched []bool
	reqs       [][]int32
	grants     [][]int32
	activeOut  []int32
}

func newSparseILQF(n, iterations int) *sparseILQF {
	return &sparseILQF{n: n, iterations: iterations,
		out:        NewMatching(n),
		outMatched: make([]bool, n),
		reqs:       make([][]int32, n),
		grants:     make([][]int32, n),
	}
}

func (l *sparseILQF) Reset() {}

func (l *sparseILQF) Schedule(d *demand.Matrix) Matching {
	n := l.n
	inMatch := l.out
	for i := range inMatch {
		inMatch[i] = Unmatched
	}
	for j := range l.outMatched {
		l.outMatched[j] = false
	}
	l.activeOut = sparseBuildRequests(d, l.reqs, l.activeOut)

	for iter := 0; iter < l.iterations; iter++ {
		for _, j32 := range l.activeOut {
			j := int(j32)
			if l.outMatched[j] {
				continue
			}
			best, bestV := -1, int64(0)
			for _, i32 := range l.reqs[j] {
				i := int(i32)
				if inMatch[i] != Unmatched {
					continue
				}
				if v := d.At(i, j); v > bestV {
					best, bestV = i, v
				}
			}
			if best >= 0 {
				l.grants[best] = append(l.grants[best], j32)
			}
		}
		any := false
		for i := 0; i < n; i++ {
			g := l.grants[i]
			if len(g) == 0 {
				continue
			}
			l.grants[i] = g[:0]
			best, bestV := -1, int64(0)
			for _, j32 := range g {
				j := int(j32)
				if v := d.At(i, j); v > bestV {
					best, bestV = j, v
				}
			}
			inMatch[i] = best
			l.outMatched[best] = true
			any = true
		}
		if !any {
			break
		}
	}
	return inMatch
}

// --- PIM (sparse lists) ---

type sparsePIM struct {
	n          int
	iterations int
	r          *rng.Rand
	seed       uint64

	out        Matching
	outMatched []bool
	reqs       [][]int32
	grants     [][]int32
	activeOut  []int32
	cand       []int32
}

func newSparsePIM(n, iterations int, seed uint64) *sparsePIM {
	return &sparsePIM{n: n, iterations: iterations, r: rng.New(seed), seed: seed,
		out:        NewMatching(n),
		outMatched: make([]bool, n),
		reqs:       make([][]int32, n),
		grants:     make([][]int32, n),
		cand:       make([]int32, 0, n),
	}
}

func (p *sparsePIM) Reset() { p.r = rng.New(p.seed) }

func (p *sparsePIM) Schedule(d *demand.Matrix) Matching {
	n := p.n
	inMatch := p.out
	for i := range inMatch {
		inMatch[i] = Unmatched
	}
	for j := range p.outMatched {
		p.outMatched[j] = false
	}
	p.activeOut = sparseBuildRequests(d, p.reqs, p.activeOut)

	for iter := 0; iter < p.iterations; iter++ {
		for _, j32 := range p.activeOut {
			j := int(j32)
			if p.outMatched[j] {
				continue
			}
			cand := p.cand[:0]
			for _, i32 := range p.reqs[j] {
				if inMatch[i32] == Unmatched {
					cand = append(cand, i32)
				}
			}
			if len(cand) > 0 {
				g := cand[p.r.Intn(len(cand))]
				p.grants[g] = append(p.grants[g], j32)
			}
		}
		anyAccept := false
		for i := 0; i < n; i++ {
			g := p.grants[i]
			if len(g) == 0 {
				continue
			}
			p.grants[i] = g[:0]
			j := int(g[p.r.Intn(len(g))])
			inMatch[i] = j
			p.outMatched[j] = true
			anyAccept = true
		}
		if !anyAccept {
			break
		}
	}
	return inMatch
}

// --- Wavefront (sorted sparse cells) ---

type sparseWavefront struct {
	n      int
	offset int

	out     Matching
	colUsed []bool
	cells   []uint64
}

func newSparseWavefront(n int) *sparseWavefront {
	return &sparseWavefront{n: n, out: NewMatching(n), colUsed: make([]bool, n)}
}

func (w *sparseWavefront) Reset() { w.offset = 0 }

func (w *sparseWavefront) Schedule(d *demand.Matrix) Matching {
	n := w.n
	m := w.out
	for i := range m {
		m[i] = Unmatched
	}
	for j := range w.colUsed {
		w.colUsed[j] = false
	}
	w.cells = w.cells[:0]
	for i := 0; i < n; i++ {
		row := d.Row(i)
		for k := 0; k < row.Len(); k++ {
			j, _ := row.Entry(k)
			shift := j - w.offset
			if shift < 0 {
				shift += n
			}
			wave := uint64(i + shift)
			w.cells = append(w.cells, wave<<40|uint64(i)<<20|uint64(j))
		}
	}
	slices.Sort(w.cells)
	for _, key := range w.cells {
		i := int(key >> 20 & (1<<20 - 1))
		j := int(key & (1<<20 - 1))
		if m[i] != Unmatched || w.colUsed[j] {
			continue
		}
		m[i] = j
		w.colUsed[j] = true
	}
	w.offset = (w.offset + 1) % n
	return m
}

// --- Greedy (sorted sparse edges) ---

type sparseGreedy struct {
	n       int
	edges   []greedyEdge
	out     Matching
	colUsed []bool
}

func newSparseGreedy(n int) *sparseGreedy {
	return &sparseGreedy{n: n, edges: make([]greedyEdge, 0, 4*n),
		out: NewMatching(n), colUsed: make([]bool, n)}
}

func (g *sparseGreedy) Reset() {}

func (g *sparseGreedy) Schedule(d *demand.Matrix) Matching {
	n := g.n
	g.edges = g.edges[:0]
	for i := 0; i < n; i++ {
		row := d.Row(i)
		for k := 0; k < row.Len(); k++ {
			j, w := row.Entry(k)
			g.edges = append(g.edges, greedyEdge{w, i, j})
		}
	}
	slices.SortFunc(g.edges, func(a, b greedyEdge) int {
		switch {
		case a.w != b.w:
			if a.w > b.w {
				return -1
			}
			return 1
		case a.i != b.i:
			return a.i - b.i
		default:
			return a.j - b.j
		}
	})
	m := g.out
	for i := range m {
		m[i] = Unmatched
	}
	for j := range g.colUsed {
		g.colUsed[j] = false
	}
	for _, e := range g.edges {
		if m[e.i] == Unmatched && !g.colUsed[e.j] {
			m[e.i] = e.j
			g.colUsed[e.j] = true
		}
	}
	return m
}
