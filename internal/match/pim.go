package match

import (
	"fmt"

	"hybridsched/internal/demand"
	"hybridsched/internal/rng"
)

// PIM is Parallel Iterative Matching (Anderson et al., the DEC AN2
// scheduler): like iSLIP but outputs grant a uniformly random requester and
// inputs accept a uniformly random grant. Converges to a maximal matching
// in O(log n) iterations with high probability, but the random arbiters
// cost more hardware than iSLIP's rotating priority and it is unfair under
// asymmetric load — which is why iSLIP displaced it.
type PIM struct {
	n          int
	iterations int
	r          *rng.Rand
	seed       uint64
}

// NewPIM returns a PIM arbiter with the given iteration count.
func NewPIM(n, iterations int, seed uint64) *PIM {
	if n <= 0 || iterations <= 0 {
		panic("match: PIM needs positive n and iterations")
	}
	return &PIM{n: n, iterations: iterations, r: rng.New(seed), seed: seed}
}

// Name implements Algorithm.
func (p *PIM) Name() string { return fmt.Sprintf("pim-%d", p.iterations) }

// Reset implements Algorithm: restores the random stream so runs are
// reproducible.
func (p *PIM) Reset() { p.r = rng.New(p.seed) }

// Complexity implements Algorithm: like iSLIP, 3 parallel phases per
// iteration in hardware, n^2 work per iteration in software.
func (p *PIM) Complexity(n int) Complexity {
	return Complexity{HardwareDepth: 3 * p.iterations, SoftwareOps: p.iterations * n * n}
}

// Schedule implements Algorithm.
func (p *PIM) Schedule(d *demand.Matrix) Matching {
	n := p.n
	inMatch := NewMatching(n)
	outMatched := make([]bool, n)

	cand := make([]int, 0, n)
	for iter := 0; iter < p.iterations; iter++ {
		// Grant: each unmatched output picks a random unmatched requester.
		granted := make([]int, n)
		for j := range granted {
			granted[j] = Unmatched
		}
		for j := 0; j < n; j++ {
			if outMatched[j] {
				continue
			}
			cand = cand[:0]
			for i := 0; i < n; i++ {
				if inMatch[i] == Unmatched && d.At(i, j) > 0 {
					cand = append(cand, i)
				}
			}
			if len(cand) > 0 {
				granted[j] = cand[p.r.Intn(len(cand))]
			}
		}
		// Accept: each input picks a random grant.
		anyAccept := false
		for i := 0; i < n; i++ {
			if inMatch[i] != Unmatched {
				continue
			}
			cand = cand[:0]
			for j := 0; j < n; j++ {
				if granted[j] == i {
					cand = append(cand, j)
				}
			}
			if len(cand) == 0 {
				continue
			}
			j := cand[p.r.Intn(len(cand))]
			inMatch[i] = j
			outMatched[j] = true
			anyAccept = true
		}
		if !anyAccept {
			break
		}
	}
	return inMatch
}

func init() {
	Register("pim", func(n int, seed uint64) Algorithm {
		return NewPIM(n, log2ceil(n), seed)
	})
}
