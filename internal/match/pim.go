package match

import (
	"fmt"

	"hybridsched/internal/demand"
	"hybridsched/internal/rng"
)

// PIM is Parallel Iterative Matching (Anderson et al., the DEC AN2
// scheduler): like iSLIP but outputs grant a uniformly random requester and
// inputs accept a uniformly random grant. Converges to a maximal matching
// in O(log n) iterations with high probability, but the random arbiters
// cost more hardware than iSLIP's rotating priority and it is unfair under
// asymmetric load — which is why iSLIP displaced it.
type PIM struct {
	n          int
	words      int
	iterations int
	r          *rng.Rand
	seed       uint64

	// Scratch reused across Schedule calls (see Algorithm.Schedule).
	out       Matching
	busyIn    *demand.Bitset
	busyOut   *demand.Bitset
	granted   *demand.Bitset
	grantBits []uint64
	activeOut []int32
}

// NewPIM returns a PIM arbiter with the given iteration count.
func NewPIM(n, iterations int, seed uint64) *PIM {
	if n <= 0 || iterations <= 0 {
		panic("match: PIM needs positive n and iterations")
	}
	words := (n + 63) / 64
	return &PIM{n: n, words: words, iterations: iterations, r: rng.New(seed), seed: seed,
		out:       NewMatching(n),
		busyIn:    demand.NewBitset(n),
		busyOut:   demand.NewBitset(n),
		granted:   demand.NewBitset(n),
		grantBits: make([]uint64, n*words),
		activeOut: make([]int32, 0, n),
	}
}

// Name implements Algorithm.
func (p *PIM) Name() string { return fmt.Sprintf("pim-%d", p.iterations) }

// Reset implements Algorithm: restores the random stream so runs are
// reproducible.
func (p *PIM) Reset() { p.r = rng.New(p.seed) }

// Complexity implements Algorithm: like iSLIP, 3 parallel phases per
// iteration in hardware. In software each iteration popcounts and
// rank-selects over the request and grant bitset rows — at most 4·words
// words per port per phase plus O(n) bookkeeping.
func (p *PIM) Complexity(n int) Complexity {
	w := bitsetWords(n)
	return Complexity{
		HardwareDepth: 3 * p.iterations,
		SoftwareOps:   p.iterations*(4*n*w+2*n) + 3*n,
	}
}

// Schedule implements Algorithm. Outputs draw among their requesters and
// inputs among their granters by popcount + k-th-set-bit selection over
// the bitset rows — the k-th set bit of the masked request word vector
// IS the k-th entry of the ascending candidate list the sparse kernel
// materialized, so the random stream (and thus every matching) is
// bit-identical to both prior implementations.
//
//hybridsched:hotpath
func (p *PIM) Schedule(d *demand.Matrix) Matching {
	words := p.words
	inMatch := p.out
	for i := range inMatch {
		inMatch[i] = Unmatched
	}
	p.busyIn.Zero()
	p.busyOut.Zero()
	p.activeOut = activeOutputs(d, p.activeOut)
	busyIn := p.busyIn.Words()

	for iter := 0; iter < p.iterations; iter++ {
		// Grant: each unmatched output picks a random unmatched requester.
		// Matched and requester-exhausted outputs are compacted out of the
		// active list (as in iSLIP); neither draws from the random stream
		// in any of the three implementations, so dropping them keeps the
		// stream bit-identical.
		live := p.activeOut[:0]
		for _, j32 := range p.activeOut {
			j := int(j32)
			if p.busyOut.Test(j) {
				continue
			}
			cb := d.ColBits(j)
			c := demand.CountAndNot(cb, busyIn)
			if c == 0 {
				continue
			}
			live = append(live, j32)
			g := demand.SelectAndNot(cb, busyIn, p.r.Intn(c))
			p.grantBits[g*words+j>>6] |= 1 << (uint(j) & 63)
			p.granted.Set(g)
		}
		p.activeOut = live
		// Accept: each input picks a random grant.
		anyAccept := false
		gw := p.granted.Words()
		for i := demand.NextBit(gw, 0); i >= 0; i = demand.NextBit(gw, i+1) {
			row := p.grantBits[i*words : (i+1)*words]
			c := demand.CountAndNot(row, nil)
			j := demand.SelectAndNot(row, nil, p.r.Intn(c))
			for k := range row {
				row[k] = 0
			}
			inMatch[i] = j
			p.busyIn.Set(i)
			p.busyOut.Set(j)
			anyAccept = true
		}
		p.granted.Zero()
		if !anyAccept {
			break
		}
	}
	return inMatch
}

func init() {
	Register("pim", func(n int, seed uint64) Algorithm {
		return NewPIM(n, log2ceil(n), seed)
	})
}
