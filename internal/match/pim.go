package match

import (
	"fmt"

	"hybridsched/internal/demand"
	"hybridsched/internal/rng"
)

// PIM is Parallel Iterative Matching (Anderson et al., the DEC AN2
// scheduler): like iSLIP but outputs grant a uniformly random requester and
// inputs accept a uniformly random grant. Converges to a maximal matching
// in O(log n) iterations with high probability, but the random arbiters
// cost more hardware than iSLIP's rotating priority and it is unfair under
// asymmetric load — which is why iSLIP displaced it.
type PIM struct {
	n          int
	iterations int
	r          *rng.Rand
	seed       uint64

	// Scratch reused across Schedule calls (see Algorithm.Schedule).
	out        Matching
	outMatched []bool
	reqs       [][]int32
	grants     [][]int32
	activeOut  []int32
	cand       []int32
}

// NewPIM returns a PIM arbiter with the given iteration count.
func NewPIM(n, iterations int, seed uint64) *PIM {
	if n <= 0 || iterations <= 0 {
		panic("match: PIM needs positive n and iterations")
	}
	return &PIM{n: n, iterations: iterations, r: rng.New(seed), seed: seed,
		out:        NewMatching(n),
		outMatched: make([]bool, n),
		reqs:       make([][]int32, n),
		grants:     make([][]int32, n),
		cand:       make([]int32, 0, n),
	}
}

// Name implements Algorithm.
func (p *PIM) Name() string { return fmt.Sprintf("pim-%d", p.iterations) }

// Reset implements Algorithm: restores the random stream so runs are
// reproducible.
func (p *PIM) Reset() { p.r = rng.New(p.seed) }

// Complexity implements Algorithm: like iSLIP, 3 parallel phases per
// iteration in hardware, n^2 work per iteration in software.
func (p *PIM) Complexity(n int) Complexity {
	return Complexity{HardwareDepth: 3 * p.iterations, SoftwareOps: p.iterations * n * n}
}

// Schedule implements Algorithm. Outputs draw among their requesters and
// inputs among their granters in ascending index order, exactly as the
// dense scans did, so the random stream (and thus every matching) is
// bit-identical to the dense implementation.
//
//hybridsched:hotpath
func (p *PIM) Schedule(d *demand.Matrix) Matching {
	n := p.n
	inMatch := p.out
	for i := range inMatch {
		inMatch[i] = Unmatched
	}
	for j := range p.outMatched {
		p.outMatched[j] = false
	}
	p.activeOut = buildRequests(d, p.reqs, p.activeOut)

	for iter := 0; iter < p.iterations; iter++ {
		// Grant: each unmatched output picks a random unmatched requester.
		for _, j32 := range p.activeOut {
			j := int(j32)
			if p.outMatched[j] {
				continue
			}
			cand := p.cand[:0]
			for _, i32 := range p.reqs[j] {
				if inMatch[i32] == Unmatched {
					cand = append(cand, i32)
				}
			}
			if len(cand) > 0 {
				g := cand[p.r.Intn(len(cand))]
				p.grants[g] = append(p.grants[g], j32)
			}
		}
		// Accept: each input picks a random grant.
		anyAccept := false
		for i := 0; i < n; i++ {
			g := p.grants[i]
			if len(g) == 0 {
				continue
			}
			p.grants[i] = g[:0]
			j := int(g[p.r.Intn(len(g))])
			inMatch[i] = j
			p.outMatched[j] = true
			anyAccept = true
		}
		if !anyAccept {
			break
		}
	}
	return inMatch
}

func init() {
	Register("pim", func(n int, seed uint64) Algorithm {
		return NewPIM(n, log2ceil(n), seed)
	})
}
