package match

import (
	"testing"
	"testing/quick"

	"hybridsched/internal/demand"
	"hybridsched/internal/rng"
)

// applySlots replays a schedule onto a zero matrix, accumulating what each
// (i, j) pair is served.
func applySlots(n int, slots []Slot) *demand.Matrix {
	served := demand.NewMatrix(n)
	for _, s := range slots {
		for i, j := range s.Match {
			if j != Unmatched {
				served.Add(i, j, s.Weight)
			}
		}
	}
	return served
}

func TestBvNServesEntireMatrix(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(5)
		d := randMatrix(r, n, 0.5, 50)
		slots := DecomposeBvN(d)
		served := applySlots(n, slots)
		// Every real demand entry must be fully covered.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if served.At(i, j) < d.At(i, j) {
					return false
				}
			}
		}
		// Every slot must be a perfect matching with positive weight.
		for _, s := range slots {
			if s.Match.Size() != n || s.Weight <= 0 {
				return false
			}
			if s.Match.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBvNAchievesMakespanBound(t *testing.T) {
	// Sum of slot weights must equal MaxLineSum exactly: BvN is optimal
	// when reconfiguration is free.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(5)
		d := randMatrix(r, n, 0.6, 50)
		if d.Total() == 0 {
			return len(DecomposeBvN(d)) == 0
		}
		slots := DecomposeBvN(d)
		var sum int64
		for _, s := range slots {
			sum += s.Weight
		}
		return sum == d.MaxLineSum()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBvNSlotCountBound(t *testing.T) {
	r := rng.New(77)
	n := 6
	for trial := 0; trial < 20; trial++ {
		d := randMatrix(r, n, 0.8, 100)
		slots := DecomposeBvN(d)
		bound := n*n - 2*n + 2
		if len(slots) > bound {
			t.Fatalf("BvN used %d slots, theory bound %d", len(slots), bound)
		}
	}
}

func TestBvNZeroMatrix(t *testing.T) {
	if slots := DecomposeBvN(demand.NewMatrix(4)); len(slots) != 0 {
		t.Fatalf("zero matrix should yield empty schedule, got %d slots", len(slots))
	}
}

func TestMaxMinUsesFewerSlotsOnSkewedDemand(t *testing.T) {
	// A permutation-heavy matrix plus noise: max-min should find the big
	// permutation immediately, BvN may shred it.
	n := 8
	d := demand.NewMatrix(n)
	for i := 0; i < n; i++ {
		d.Set(i, (i+1)%n, 1000)
	}
	d.Set(0, 2, 3)
	d.Set(3, 5, 2)
	slots, residual := DecomposeMaxMin(d, 10)
	if len(slots) == 0 {
		t.Fatal("no slots extracted")
	}
	// First slot should be the heavy permutation at weight >= 997
	// (stuffing can slightly shave the min along the matching).
	if slots[0].Weight < 900 {
		t.Fatalf("first slot weight %d; max-min should grab the elephant", slots[0].Weight)
	}
	// Residue (the small flows) goes to the EPS.
	if residual.Total() > 5 {
		t.Fatalf("residual too large: %d", residual.Total())
	}
}

func TestMaxMinResidualNeverNegative(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(5)
		d := randMatrix(r, n, 0.5, 200)
		slots, residual := DecomposeMaxMin(d, int64(1+r.Intn(50)))
		served := applySlots(n, slots)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if residual.At(i, j) < 0 {
					return false
				}
				// served + residual covers the original demand.
				if served.At(i, j)+residual.At(i, j) < d.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMaxMinZeroThresholdServesEverything(t *testing.T) {
	r := rng.New(123)
	d := randMatrix(r, 5, 0.5, 100)
	_, residual := DecomposeMaxMin(d, 0)
	if residual.Total() != 0 {
		t.Fatalf("with no worth threshold the residual must be empty, got %d",
			residual.Total())
	}
}

func TestScheduleCost(t *testing.T) {
	slots := []Slot{{Weight: 100}, {Weight: 50}}
	if got := ScheduleCost(slots, 10); got != 170 {
		t.Fatalf("cost = %d, want 170", got)
	}
	if got := ScheduleCost(nil, 10); got != 0 {
		t.Fatalf("empty cost = %d", got)
	}
}

func TestKuhnPerfectFindsKnownMatching(t *testing.T) {
	d := demand.NewMatrix(3)
	// Only one perfect matching exists: 0->1, 1->2, 2->0.
	d.Set(0, 1, 5)
	d.Set(1, 2, 5)
	d.Set(2, 0, 5)
	d.Set(0, 0, 5) // distractor: using it blocks column 0 for input 2
	m, ok := newDecomposer(d.N()).perfect(d, 1)
	if !ok {
		t.Fatal("perfect matching exists but was not found")
	}
	if m[0] != 1 || m[1] != 2 || m[2] != 0 {
		t.Fatalf("m = %v", m)
	}
}

func TestKuhnPerfectInfeasible(t *testing.T) {
	d := demand.NewMatrix(2)
	d.Set(0, 0, 1)
	d.Set(1, 0, 1) // both inputs need column 0: infeasible
	if _, ok := newDecomposer(d.N()).perfect(d, 1); ok {
		t.Fatal("reported perfect matching where none exists")
	}
}

func TestKuhnThresholdRespected(t *testing.T) {
	d := demand.NewMatrix(2)
	d.Set(0, 0, 10)
	d.Set(0, 1, 1)
	d.Set(1, 0, 1)
	d.Set(1, 1, 10)
	m, ok := newDecomposer(d.N()).perfect(d, 5)
	if !ok {
		t.Fatal("diagonal matching at threshold 5 exists")
	}
	if m[0] != 0 || m[1] != 1 {
		t.Fatalf("m = %v", m)
	}
	if _, ok := newDecomposer(d.N()).perfect(d, 11); ok {
		t.Fatal("threshold 11 should be infeasible")
	}
}

func TestBestThreshold(t *testing.T) {
	d := demand.NewMatrix(2)
	d.Set(0, 0, 10)
	d.Set(1, 1, 7)
	d.Set(0, 1, 100)
	d.Set(1, 0, 100)
	// Perfect matchings: diag (min 7) or anti-diag (min 100).
	if thr := newDecomposer(d.N()).bestThreshold(d); thr != 100 {
		t.Fatalf("bestThreshold = %d, want 100", thr)
	}
}
