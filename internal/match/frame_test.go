package match

import (
	"testing"

	"hybridsched/internal/demand"
	"hybridsched/internal/rng"
)

func TestFrameSchedulersRegistered(t *testing.T) {
	for _, name := range []string{"bvn", "maxmin"} {
		alg, err := New(name, 4, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if alg.Name() == "" {
			t.Fatal("empty name")
		}
	}
}

func TestFrameSchedulerEmptyDemand(t *testing.T) {
	f := NewBvNFrame(4)
	m := f.Schedule(demand.NewMatrix(4))
	if m.Size() != 0 {
		t.Fatalf("empty demand should yield empty matching, got %v", m)
	}
	if f.Frames() != 0 {
		t.Fatal("no frame should have been computed")
	}
}

func TestFrameSchedulerPlaysBackDecomposition(t *testing.T) {
	n := 4
	f := NewBvNFrame(n)
	d := demand.NewMatrix(n)
	// A pure permutation: the decomposition is that single matching.
	for i := 0; i < n; i++ {
		d.Set(i, (i+1)%n, 100)
	}
	m := f.Schedule(d)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if m[i] != (i+1)%n {
			t.Fatalf("slot should be the permutation, got %v", m)
		}
	}
	if f.Frames() != 1 {
		t.Fatalf("frames = %d", f.Frames())
	}
}

func TestFrameSchedulerServiceProportions(t *testing.T) {
	// Two disjoint permutations with 3:1 demand ratio must be emitted
	// roughly 3:1 within a frame.
	n := 2
	f := NewBvNFrame(n)
	d := demand.NewMatrix(n)
	d.Set(0, 1, 300)
	d.Set(1, 0, 300)
	d.Set(0, 0, 100)
	d.Set(1, 1, 100)
	counts := map[int]int{}
	for k := 0; k < 4; k++ { // one frame = 3+1 playback slots
		m := f.Schedule(d)
		counts[m[0]]++
	}
	if f.Frames() != 1 {
		t.Fatalf("frames = %d (playback should cover 4 slots)", f.Frames())
	}
	if counts[1] != 3 || counts[0] != 1 {
		t.Fatalf("service ratio wrong: %v (want 3:1)", counts)
	}
}

func TestFrameSchedulerRecomputesWhenExhausted(t *testing.T) {
	n := 2
	f := NewMaxMinFrame(n)
	d := demand.NewMatrix(n)
	d.Set(0, 1, 50)
	d.Set(1, 0, 50)
	f.Schedule(d) // frame 1 computed (single matching, emitted once)
	first := f.Frames()
	// Demand changed: next refill must see it.
	d2 := demand.NewMatrix(n)
	d2.Set(0, 0, 80)
	d2.Set(1, 1, 80)
	m := f.Schedule(d2)
	if f.Frames() != first+1 {
		t.Fatalf("frames = %d, want %d", f.Frames(), first+1)
	}
	if m[0] != 0 || m[1] != 1 {
		t.Fatalf("new frame should follow new demand, got %v", m)
	}
}

func TestFrameSchedulerPlaybackBounded(t *testing.T) {
	// A wildly skewed matrix must not enqueue an unbounded playback.
	n := 4
	f := NewBvNFrame(n)
	d := demand.NewMatrix(n)
	d.Set(0, 1, 1_000_000)
	d.Set(1, 0, 1)
	d.Set(2, 3, 1)
	d.Set(3, 2, 1)
	f.Schedule(d)
	if len(f.queue) > 64 {
		t.Fatalf("playback queue %d exceeds bound", len(f.queue))
	}
}

func TestFrameSchedulerValidMatchingsProperty(t *testing.T) {
	r := rng.New(1331)
	for _, name := range []string{"bvn", "maxmin"} {
		alg, _ := New(name, 6, 0)
		d := randMatrix(r, 6, 0.5, 100)
		for k := 0; k < 200; k++ {
			m := alg.Schedule(d)
			if err := m.Validate(); err != nil {
				t.Fatalf("%s slot %d invalid: %v", name, k, err)
			}
		}
	}
}

func TestFrameSchedulerReset(t *testing.T) {
	f := NewBvNFrame(2)
	d := demand.NewMatrix(2)
	d.Set(0, 1, 10)
	d.Set(1, 0, 10)
	f.Schedule(d)
	f.Reset()
	if f.Frames() != 0 || len(f.queue) != 0 {
		t.Fatal("reset incomplete")
	}
}
