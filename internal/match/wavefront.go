package match

import (
	"math/bits"

	"hybridsched/internal/demand"
)

// Wavefront is the wavefront arbiter (Tamir & Chi): the crossbar is swept
// along anti-diagonals, and a cell (i, j) joins the matching if it has a
// request and neither its row nor its column has been taken by an earlier
// wave. All cells on one anti-diagonal are independent, so hardware
// evaluates each wave in a single step: 2n-1 steps total, no iteration
// loop, no pointers — the classic "fast but simple" hardware arbiter.
//
// A rotating priority offset shifts which diagonal goes first so no port
// pair is permanently favored.
//
// In software the sweep is word-parallel: the requesting cells are
// scattered once into per-diagonal row bitsets, and each wave is then
// one AND of its diagonal's words against the free-row words — 64
// crosspoints per instruction — with bits.TrailingZeros64 extracting the
// winners. Cells on one wave occupy distinct rows and distinct columns,
// so intra-wave order cannot change the outcome and the decisions are
// identical to both the dense sweep and the sorted sparse kernel.
type Wavefront struct {
	n      int
	words  int
	offset int

	// Scratch reused across Schedule calls (see Algorithm.Schedule).
	out     Matching
	colUsed *demand.Bitset
	free    *demand.Bitset // rows not yet matched
	diag    []uint64       // n diagonals × words: row bitset per diagonal
}

// NewWavefront returns a wavefront arbiter for n ports.
func NewWavefront(n int) *Wavefront {
	if n <= 0 {
		panic("match: wavefront needs positive n")
	}
	words := (n + 63) / 64
	return &Wavefront{n: n, words: words,
		out:     NewMatching(n),
		colUsed: demand.NewBitset(n),
		free:    demand.NewBitset(n),
		diag:    make([]uint64, n*words),
	}
}

// Name implements Algorithm.
func (w *Wavefront) Name() string { return "wavefront" }

// Reset implements Algorithm.
func (w *Wavefront) Reset() { w.offset = 0 }

// Complexity implements Algorithm: 2n-1 diagonal waves in hardware. In
// software the diagonal scatter costs a few ops per nonzero (modeled at
// the reference fill, see modelFill) and the sweep visits each diagonal
// word at most twice with the window masking and free-row AND around it.
func (w *Wavefront) Complexity(n int) Complexity {
	ws := bitsetWords(n)
	return Complexity{
		HardwareDepth: 2*n - 1,
		SoftwareOps:   4*n*ws + 3*modelFill*n + 4*n,
	}
}

// Schedule implements Algorithm.
//
//hybridsched:hotpath
func (w *Wavefront) Schedule(d *demand.Matrix) Matching {
	n, words := w.n, w.words
	m := w.out
	for i := range m {
		m[i] = Unmatched
	}
	w.colUsed.Zero()
	w.free.Fill()
	for k := range w.diag {
		w.diag[k] = 0
	}
	// Scatter: a requesting cell (i, j) is evaluated by the dense sweep
	// at wave i + ((j - offset) mod n); its diagonal is that wave mod n.
	off := w.offset
	for i := 0; i < n; i++ {
		for wi, word := range d.RowBits(i) {
			for word != 0 {
				j := wi<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				shift := j - off
				if shift < 0 {
					shift += n
				}
				dg := i + shift
				if dg >= n {
					dg -= n
				}
				w.diag[dg*words+i>>6] |= 1 << (uint(i) & 63)
			}
		}
	}
	// Sweep: waves ascend; wave wv touches rows [0, wv] (first lap) or
	// [wv-n+1, n-1] (second lap) of diagonal wv mod n. Candidates are the
	// diagonal's rows AND the still-free rows AND the window.
	free := w.free.Words()
	for wv := 0; wv < 2*n-1; wv++ {
		dg, lo, hi := wv, 0, wv
		if wv >= n {
			dg, lo, hi = wv-n, wv-n+1, n-1
		}
		drow := w.diag[dg*words : (dg+1)*words]
		loW, hiW := lo>>6, hi>>6
		for wi := loW; wi <= hiW; wi++ {
			word := drow[wi] & free[wi]
			if wi == loW {
				word &= ^uint64(0) << (uint(lo) & 63)
			}
			if wi == hiW {
				if r := uint(hi) & 63; r != 63 {
					word &= 1<<(r+1) - 1
				}
			}
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &= word - 1
				i := wi<<6 + b
				j := wv - i + off
				if j >= n {
					j -= n
				}
				if w.colUsed.Test(j) {
					continue
				}
				m[i] = j
				w.colUsed.Set(j)
				free[wi] &^= 1 << uint(b)
			}
		}
	}
	w.offset = (w.offset + 1) % n
	return m
}

func init() {
	Register("wavefront", func(n int, _ uint64) Algorithm { return NewWavefront(n) })
}
