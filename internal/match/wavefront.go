package match

import (
	"slices"

	"hybridsched/internal/demand"
)

// Wavefront is the wavefront arbiter (Tamir & Chi): the crossbar is swept
// along anti-diagonals, and a cell (i, j) joins the matching if it has a
// request and neither its row nor its column has been taken by an earlier
// wave. All cells on one anti-diagonal are independent, so hardware
// evaluates each wave in a single step: 2n-1 steps total, no iteration
// loop, no pointers — the classic "fast but simple" hardware arbiter.
//
// A rotating priority offset shifts which diagonal goes first so no port
// pair is permanently favored.
//
// In software the sweep only ever acts on requesting cells, so instead of
// visiting all n² crosspoints the implementation collects the nonzero
// cells keyed by (wave, row) and processes them in sorted order —
// identical decisions in O(nonzeros log nonzeros).
type Wavefront struct {
	n      int
	offset int

	// Scratch reused across Schedule calls (see Algorithm.Schedule).
	out     Matching
	colUsed []bool
	cells   []uint64 // packed (wave << 40 | i << 20 | j)
}

// NewWavefront returns a wavefront arbiter for n ports.
func NewWavefront(n int) *Wavefront {
	if n <= 0 {
		panic("match: wavefront needs positive n")
	}
	if n >= 1<<20 {
		panic("match: wavefront supports at most 2^20 ports")
	}
	return &Wavefront{n: n, out: NewMatching(n), colUsed: make([]bool, n)}
}

// Name implements Algorithm.
func (w *Wavefront) Name() string { return "wavefront" }

// Reset implements Algorithm.
func (w *Wavefront) Reset() { w.offset = 0 }

// Complexity implements Algorithm: 2n-1 diagonal waves in hardware, n^2
// cell visits in software.
func (w *Wavefront) Complexity(n int) Complexity {
	return Complexity{HardwareDepth: 2*n - 1, SoftwareOps: n * n}
}

// Schedule implements Algorithm.
//
//hybridsched:hotpath
func (w *Wavefront) Schedule(d *demand.Matrix) Matching {
	n := w.n
	m := w.out
	for i := range m {
		m[i] = Unmatched
	}
	for j := range w.colUsed {
		w.colUsed[j] = false
	}
	// A requesting cell (i, j) is evaluated by the dense sweep at wave
	// i + ((j - offset) mod n); within a wave rows ascend. Sorting the
	// packed keys reproduces that exact visiting order.
	w.cells = w.cells[:0]
	for i := 0; i < n; i++ {
		row := d.Row(i)
		for k := 0; k < row.Len(); k++ {
			j, _ := row.Entry(k)
			shift := j - w.offset
			if shift < 0 {
				shift += n
			}
			wave := uint64(i + shift)
			w.cells = append(w.cells, wave<<40|uint64(i)<<20|uint64(j))
		}
	}
	slices.Sort(w.cells)
	for _, key := range w.cells {
		i := int(key >> 20 & (1<<20 - 1))
		j := int(key & (1<<20 - 1))
		if m[i] != Unmatched || w.colUsed[j] {
			continue
		}
		m[i] = j
		w.colUsed[j] = true
	}
	w.offset = (w.offset + 1) % n
	return m
}

func init() {
	Register("wavefront", func(n int, _ uint64) Algorithm { return NewWavefront(n) })
}
