package match

import (
	"hybridsched/internal/demand"
)

// Wavefront is the wavefront arbiter (Tamir & Chi): the crossbar is swept
// along anti-diagonals, and a cell (i, j) joins the matching if it has a
// request and neither its row nor its column has been taken by an earlier
// wave. All cells on one anti-diagonal are independent, so hardware
// evaluates each wave in a single step: 2n-1 steps total, no iteration
// loop, no pointers — the classic "fast but simple" hardware arbiter.
//
// A rotating priority offset shifts which diagonal goes first so no port
// pair is permanently favored.
type Wavefront struct {
	n      int
	offset int
}

// NewWavefront returns a wavefront arbiter for n ports.
func NewWavefront(n int) *Wavefront {
	if n <= 0 {
		panic("match: wavefront needs positive n")
	}
	return &Wavefront{n: n}
}

// Name implements Algorithm.
func (w *Wavefront) Name() string { return "wavefront" }

// Reset implements Algorithm.
func (w *Wavefront) Reset() { w.offset = 0 }

// Complexity implements Algorithm: 2n-1 diagonal waves in hardware, n^2
// cell visits in software.
func (w *Wavefront) Complexity(n int) Complexity {
	return Complexity{HardwareDepth: 2*n - 1, SoftwareOps: n * n}
}

// Schedule implements Algorithm.
func (w *Wavefront) Schedule(d *demand.Matrix) Matching {
	n := w.n
	m := NewMatching(n)
	colUsed := make([]bool, n)
	// Sweep anti-diagonals starting from a rotating offset.
	for wave := 0; wave < 2*n-1; wave++ {
		for i := 0; i < n; i++ {
			j := (wave - i + w.offset) % n
			if j < 0 {
				j += n
			}
			// Only cells whose anti-diagonal index equals the wave are
			// evaluated this step; iterating i covers them all.
			if wave-i < 0 || wave-i >= n {
				continue
			}
			if m[i] != Unmatched || colUsed[j] || d.At(i, j) <= 0 {
				continue
			}
			m[i] = j
			colUsed[j] = true
		}
	}
	w.offset = (w.offset + 1) % n
	return m
}

func init() {
	Register("wavefront", func(n int, _ uint64) Algorithm { return NewWavefront(n) })
}
