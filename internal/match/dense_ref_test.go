package match

import (
	"math"
	"sort"

	"hybridsched/internal/demand"
	"hybridsched/internal/rng"
)

// This file preserves the pre-refactor dense O(n²)-scan implementations of
// every algorithm as test-only references. The live algorithms iterate the
// matrix's nonzero structure and reuse scratch; the equivalence suite in
// equivalence_test.go asserts that both produce identical matchings and
// slot sequences on the same inputs — the dense-vs-nonzero-iteration
// contract of the scaling refactor.

// denseAlgorithm is the reference counterpart of a registered algorithm.
type denseAlgorithm interface {
	Schedule(d *demand.Matrix) Matching
	Reset()
}

// newDenseRef returns the dense reference for a registered algorithm
// name, or nil if the name has no dense twin (never happens for the
// built-in set; the equivalence test fails loudly on nil).
func newDenseRef(name string, n int, seed uint64) denseAlgorithm {
	switch name {
	case "tdma":
		return &denseTDMA{n: n, skipSelf: true}
	case "islip":
		return newDenseISLIP(n, log2ceil(n))
	case "islip1":
		return newDenseISLIP(n, 1)
	case "islipn":
		return newDenseISLIP(n, n)
	case "rrm":
		return newDenseRRM(n, log2ceil(n))
	case "ilqf":
		return &denseILQF{n: n, iterations: log2ceil(n)}
	case "pim":
		return &densePIM{n: n, iterations: log2ceil(n), r: rng.New(seed), seed: seed}
	case "wavefront":
		return &denseWavefront{n: n}
	case "greedy":
		return &denseGreedy{n: n}
	case "hungarian":
		return &denseHungarian{n: n}
	case "bvn":
		return &denseFrame{n: n}
	case "maxmin":
		return &denseFrame{n: n, maxmin: true}
	}
	return nil
}

// --- TDMA ---

type denseTDMA struct {
	n, slot  int
	skipSelf bool
}

func (t *denseTDMA) Reset() { t.slot = 0 }

func (t *denseTDMA) Schedule(_ *demand.Matrix) Matching {
	n := t.n
	shift := t.slot % n
	if t.skipSelf && n > 1 {
		shift = 1 + t.slot%(n-1)
	}
	m := make(Matching, n)
	for i := 0; i < n; i++ {
		m[i] = (i + shift) % n
	}
	t.slot++
	return m
}

// --- iSLIP ---

type denseISLIP struct {
	n, iterations       int
	grantPtr, acceptPtr []int
}

func newDenseISLIP(n, iterations int) *denseISLIP {
	return &denseISLIP{n: n, iterations: iterations,
		grantPtr: make([]int, n), acceptPtr: make([]int, n)}
}

func (s *denseISLIP) Reset() {
	for i := range s.grantPtr {
		s.grantPtr[i] = 0
		s.acceptPtr[i] = 0
	}
}

func (s *denseISLIP) Schedule(d *demand.Matrix) Matching {
	n := s.n
	inMatch := NewMatching(n)
	outMatch := make([]int, n)
	for i := range outMatch {
		outMatch[i] = Unmatched
	}
	for iter := 0; iter < s.iterations; iter++ {
		granted := make([]int, n)
		for j := range granted {
			granted[j] = Unmatched
		}
		for j := 0; j < n; j++ {
			if outMatch[j] != Unmatched {
				continue
			}
			for k := 0; k < n; k++ {
				i := (s.grantPtr[j] + k) % n
				if inMatch[i] == Unmatched && d.At(i, j) > 0 {
					granted[j] = i
					break
				}
			}
		}
		anyAccept := false
		for i := 0; i < n; i++ {
			if inMatch[i] != Unmatched {
				continue
			}
			accepted := Unmatched
			for k := 0; k < n; k++ {
				j := (s.acceptPtr[i] + k) % n
				if granted[j] == i {
					accepted = j
					break
				}
			}
			if accepted == Unmatched {
				continue
			}
			inMatch[i] = accepted
			outMatch[accepted] = i
			anyAccept = true
			if iter == 0 {
				s.grantPtr[accepted] = (i + 1) % n
				s.acceptPtr[i] = (accepted + 1) % n
			}
		}
		if !anyAccept {
			break
		}
	}
	return inMatch
}

// --- RRM ---

type denseRRM struct {
	n, iterations       int
	grantPtr, acceptPtr []int
}

func newDenseRRM(n, iterations int) *denseRRM {
	return &denseRRM{n: n, iterations: iterations,
		grantPtr: make([]int, n), acceptPtr: make([]int, n)}
}

func (r *denseRRM) Reset() {
	for i := range r.grantPtr {
		r.grantPtr[i] = 0
		r.acceptPtr[i] = 0
	}
}

func (r *denseRRM) Schedule(d *demand.Matrix) Matching {
	n := r.n
	inMatch := NewMatching(n)
	outMatch := make([]int, n)
	for j := range outMatch {
		outMatch[j] = Unmatched
	}
	for iter := 0; iter < r.iterations; iter++ {
		granted := make([]int, n)
		for j := range granted {
			granted[j] = Unmatched
		}
		for j := 0; j < n; j++ {
			if outMatch[j] != Unmatched {
				continue
			}
			for k := 0; k < n; k++ {
				i := (r.grantPtr[j] + k) % n
				if inMatch[i] == Unmatched && d.At(i, j) > 0 {
					granted[j] = i
					break
				}
			}
		}
		any := false
		for i := 0; i < n; i++ {
			if inMatch[i] != Unmatched {
				continue
			}
			for k := 0; k < n; k++ {
				j := (r.acceptPtr[i] + k) % n
				if granted[j] == i {
					inMatch[i] = j
					outMatch[j] = i
					any = true
					break
				}
			}
		}
		if !any {
			break
		}
	}
	for j := 0; j < n; j++ {
		r.grantPtr[j] = (r.grantPtr[j] + 1) % n
	}
	for i := 0; i < n; i++ {
		r.acceptPtr[i] = (r.acceptPtr[i] + 1) % n
	}
	return inMatch
}

// --- iLQF ---

type denseILQF struct {
	n, iterations int
}

func (l *denseILQF) Reset() {}

func (l *denseILQF) Schedule(d *demand.Matrix) Matching {
	n := l.n
	inMatch := NewMatching(n)
	outMatched := make([]bool, n)
	for iter := 0; iter < l.iterations; iter++ {
		granted := make([]int, n)
		for j := range granted {
			granted[j] = Unmatched
		}
		for j := 0; j < n; j++ {
			if outMatched[j] {
				continue
			}
			best, bestV := Unmatched, int64(0)
			for i := 0; i < n; i++ {
				if inMatch[i] == Unmatched {
					if v := d.At(i, j); v > bestV {
						best, bestV = i, v
					}
				}
			}
			granted[j] = best
		}
		any := false
		for i := 0; i < n; i++ {
			if inMatch[i] != Unmatched {
				continue
			}
			best, bestV := Unmatched, int64(0)
			for j := 0; j < n; j++ {
				if granted[j] == i {
					if v := d.At(i, j); v > bestV {
						best, bestV = j, v
					}
				}
			}
			if best == Unmatched {
				continue
			}
			inMatch[i] = best
			outMatched[best] = true
			any = true
		}
		if !any {
			break
		}
	}
	return inMatch
}

// --- PIM ---

type densePIM struct {
	n, iterations int
	r             *rng.Rand
	seed          uint64
}

func (p *densePIM) Reset() { p.r = rng.New(p.seed) }

func (p *densePIM) Schedule(d *demand.Matrix) Matching {
	n := p.n
	inMatch := NewMatching(n)
	outMatched := make([]bool, n)
	cand := make([]int, 0, n)
	for iter := 0; iter < p.iterations; iter++ {
		granted := make([]int, n)
		for j := range granted {
			granted[j] = Unmatched
		}
		for j := 0; j < n; j++ {
			if outMatched[j] {
				continue
			}
			cand = cand[:0]
			for i := 0; i < n; i++ {
				if inMatch[i] == Unmatched && d.At(i, j) > 0 {
					cand = append(cand, i)
				}
			}
			if len(cand) > 0 {
				granted[j] = cand[p.r.Intn(len(cand))]
			}
		}
		anyAccept := false
		for i := 0; i < n; i++ {
			if inMatch[i] != Unmatched {
				continue
			}
			cand = cand[:0]
			for j := 0; j < n; j++ {
				if granted[j] == i {
					cand = append(cand, j)
				}
			}
			if len(cand) == 0 {
				continue
			}
			j := cand[p.r.Intn(len(cand))]
			inMatch[i] = j
			outMatched[j] = true
			anyAccept = true
		}
		if !anyAccept {
			break
		}
	}
	return inMatch
}

// --- Wavefront ---

type denseWavefront struct {
	n, offset int
}

func (w *denseWavefront) Reset() { w.offset = 0 }

func (w *denseWavefront) Schedule(d *demand.Matrix) Matching {
	n := w.n
	m := NewMatching(n)
	colUsed := make([]bool, n)
	for wave := 0; wave < 2*n-1; wave++ {
		for i := 0; i < n; i++ {
			j := (wave - i + w.offset) % n
			if j < 0 {
				j += n
			}
			if wave-i < 0 || wave-i >= n {
				continue
			}
			if m[i] != Unmatched || colUsed[j] || d.At(i, j) <= 0 {
				continue
			}
			m[i] = j
			colUsed[j] = true
		}
	}
	w.offset = (w.offset + 1) % n
	return m
}

// --- Greedy ---

type denseGreedy struct {
	n     int
	edges []greedyEdge
}

func (g *denseGreedy) Reset() {}

func (g *denseGreedy) Schedule(d *demand.Matrix) Matching {
	n := g.n
	g.edges = g.edges[:0]
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if w := d.At(i, j); w > 0 {
				g.edges = append(g.edges, greedyEdge{w, i, j})
			}
		}
	}
	sort.Slice(g.edges, func(a, b int) bool {
		ea, eb := g.edges[a], g.edges[b]
		if ea.w != eb.w {
			return ea.w > eb.w
		}
		if ea.i != eb.i {
			return ea.i < eb.i
		}
		return ea.j < eb.j
	})
	m := NewMatching(n)
	colUsed := make([]bool, n)
	for _, e := range g.edges {
		if m[e.i] == Unmatched && !colUsed[e.j] {
			m[e.i] = e.j
			colUsed[e.j] = true
		}
	}
	return m
}

// --- Hungarian ---

type denseHungarian struct {
	n int
}

func (h *denseHungarian) Reset() {}

func (h *denseHungarian) Schedule(d *demand.Matrix) Matching {
	n := h.n
	var maxW int64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if v := d.At(i, j); v > maxW {
				maxW = v
			}
		}
	}
	if maxW == 0 {
		return NewMatching(n)
	}
	cost := make([][]int64, n)
	for i := range cost {
		cost[i] = make([]int64, n)
		for j := range cost[i] {
			cost[i][j] = maxW - d.At(i, j)
		}
	}
	assign := denseHungarianMin(cost)
	m := NewMatching(n)
	for i, j := range assign {
		if d.At(i, j) > 0 {
			m[i] = j
		}
	}
	return m
}

func denseHungarianMin(cost [][]int64) []int {
	n := len(cost)
	const inf = math.MaxInt64 / 4
	u := make([]int64, n+1)
	v := make([]int64, n+1)
	p := make([]int, n+1)
	way := make([]int, n+1)
	minv := make([]int64, n+1)
	used := make([]bool, n+1)
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		for j := 0; j <= n; j++ {
			minv[j] = inf
			used[j] = false
		}
		for {
			used[j0] = true
			i0 := p[j0]
			var delta int64 = inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	ans := make([]int, n)
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			ans[p[j]-1] = j - 1
		}
	}
	return ans
}

// --- Frame decompositions ---

// denseStuff pads a copy so every line sums to the dense MaxLineSum —
// the reference for Stuff, computed with explicit O(n²) scans.
func denseStuff(m *demand.Matrix) *demand.Matrix {
	n := m.N()
	out := demand.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out.Set(i, j, m.At(i, j))
		}
	}
	rows := make([]int64, n)
	cols := make([]int64, n)
	var target int64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			rows[i] += out.At(i, j)
			cols[j] += out.At(i, j)
		}
	}
	for i := 0; i < n; i++ {
		if rows[i] > target {
			target = rows[i]
		}
		if cols[i] > target {
			target = cols[i]
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n && rows[i] < target; j++ {
			slack := target - rows[i]
			if cslack := target - cols[j]; cslack < slack {
				slack = cslack
			}
			if slack <= 0 {
				continue
			}
			out.Add(i, j, slack)
			rows[i] += slack
			cols[j] += slack
		}
	}
	return out
}

// denseKuhnPerfect is the reference augmenting-path perfect matching over
// cells with weight >= thr, scanning columns densely.
func denseKuhnPerfect(d *demand.Matrix, thr int64) (Matching, bool) {
	n := d.N()
	matchCol := make([]int, n)
	for j := range matchCol {
		matchCol[j] = Unmatched
	}
	visited := make([]bool, n)
	var try func(i int) bool
	try = func(i int) bool {
		for j := 0; j < n; j++ {
			if visited[j] || d.At(i, j) < thr || d.At(i, j) <= 0 {
				continue
			}
			visited[j] = true
			if matchCol[j] == Unmatched || try(matchCol[j]) {
				matchCol[j] = i
				return true
			}
		}
		return false
	}
	for i := 0; i < n; i++ {
		for j := range visited {
			visited[j] = false
		}
		if !try(i) {
			return nil, false
		}
	}
	m := NewMatching(n)
	for j, i := range matchCol {
		m[i] = j
	}
	return m, true
}

func denseBestThreshold(work *demand.Matrix) int64 {
	n := work.N()
	vals := make([]int64, 0, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if v := work.At(i, j); v > 0 {
				vals = append(vals, v)
			}
		}
	}
	if len(vals) == 0 {
		return 0
	}
	sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
	vals = dedup(vals)
	lo, hi := 0, len(vals)-1
	best := int64(0)
	for lo <= hi {
		mid := (lo + hi) / 2
		if _, ok := denseKuhnPerfect(work, vals[mid]); ok {
			best = vals[mid]
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	return best
}

func denseDecomposeBvN(d *demand.Matrix) []Slot {
	work := denseStuff(d)
	var slots []Slot
	for denseTotal(work) > 0 {
		m, ok := denseKuhnPerfect(work, 1)
		if !ok {
			panic("dense ref: stuffed matrix lost perfect matching")
		}
		w := minAlong(work, m)
		subtract(work, m, w)
		slots = append(slots, Slot{Match: m, Weight: w})
	}
	return slots
}

func denseDecomposeMaxMin(d *demand.Matrix, minWorth int64) (slots []Slot, residual *demand.Matrix) {
	work := denseStuff(d)
	served := demand.NewMatrix(d.N())
	for denseTotal(work) > 0 {
		thr := denseBestThreshold(work)
		if thr <= 0 {
			break
		}
		m, ok := denseKuhnPerfect(work, thr)
		if !ok {
			panic("dense ref: threshold search returned infeasible threshold")
		}
		w := minAlong(work, m)
		if minWorth > 0 && w < minWorth {
			break
		}
		subtract(work, m, w)
		for i, j := range m {
			if j != Unmatched {
				served.Add(i, j, w)
			}
		}
		slots = append(slots, Slot{Match: m, Weight: w})
	}
	residual = demand.NewMatrix(d.N())
	for i := 0; i < d.N(); i++ {
		for j := 0; j < d.N(); j++ {
			if rem := d.At(i, j) - served.At(i, j); rem > 0 {
				residual.Set(i, j, rem)
			}
		}
	}
	return slots, residual
}

func denseTotal(d *demand.Matrix) int64 {
	var s int64
	n := d.N()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s += d.At(i, j)
		}
	}
	return s
}

// denseFrame replays dense decompositions through the FrameScheduler
// playback rules — the reference for the bvn/maxmin registered names.
type denseFrame struct {
	n      int
	maxmin bool
	queue  []Matching
}

func (f *denseFrame) Reset() { f.queue = nil }

func (f *denseFrame) Schedule(d *demand.Matrix) Matching {
	if len(f.queue) == 0 {
		f.refill(d)
	}
	if len(f.queue) == 0 {
		return NewMatching(f.n)
	}
	m := f.queue[0]
	f.queue = f.queue[1:]
	return m
}

func (f *denseFrame) refill(d *demand.Matrix) {
	if denseTotal(d) == 0 {
		return
	}
	var slots []Slot
	if f.maxmin {
		slots, _ = denseDecomposeMaxMin(d, denseMaxLineSum(d)/16)
	} else {
		slots = denseDecomposeBvN(d)
	}
	if len(slots) == 0 {
		return
	}
	quantum := slots[0].Weight
	for _, s := range slots {
		if s.Weight < quantum {
			quantum = s.Weight
		}
	}
	if quantum <= 0 {
		quantum = 1
	}
	const maxPlayback = 64
	total := 0
	for _, s := range slots {
		reps := int((s.Weight + quantum - 1) / quantum)
		if reps < 1 {
			reps = 1
		}
		for r := 0; r < reps && total < maxPlayback; r++ {
			f.queue = append(f.queue, s.Match)
			total++
		}
	}
}

func denseMaxLineSum(d *demand.Matrix) int64 {
	n := d.N()
	var best int64
	for i := 0; i < n; i++ {
		var r, c int64
		for j := 0; j < n; j++ {
			r += d.At(i, j)
			c += d.At(j, i)
		}
		if r > best {
			best = r
		}
		if c > best {
			best = c
		}
	}
	return best
}
