package match

import (
	"math/bits"
	"slices"
	"sync"

	"hybridsched/internal/demand"
	"hybridsched/internal/runner/pool"
)

// This file is the frame-decomposition engine: the word-parallel,
// warm-startable core behind DecomposeBvN, DecomposeMaxMin and the
// FrameScheduler. Three layers of the rebuild:
//
//   - The Kuhn augmenting search runs over the demand matrix's row
//     bitsets with bits.TrailingZeros64 candidate scans, 64 columns per
//     word, instead of walking nonzero-column lists element by element.
//     The explicit-stack search visits candidates in exactly the order
//     the recursive dense scan did (ascending columns, visited re-checked
//     on every resume), so extracted matchings are bit-identical to the
//     dense reference.
//
//   - All scratch — Kuhn state, threshold buffers, the stuffed working
//     matrix, and the produced slots and matchings themselves — lives in
//     the Decomposer and is recycled call over call. Slot storage is
//     double-buffered: the slots returned by one decomposition stay valid
//     while the next one computes, which is what lets a frame scheduler
//     play back the current frame while the next frame decomposes.
//
//   - Warm start: a Decomposer retained across epochs seeds each frame
//     from the previous one, reusing work only when the reuse provably
//     reproduces the cold output (see the invariants on each mechanism
//     below). Warm output is bit-for-bit equal to cold output on every
//     input, pinned by TestWarmColdEquivalence and FuzzWarmStartRepair.
//
// Warm-start mechanisms, each with its equivalence argument:
//
//  1. Identical-input fast path (BvN and max-min): if the new demand
//     matrix equals the previous one entry for entry, the decomposition
//     — a deterministic function of its input — is the previous frame,
//     returned as a copy.
//
//  2. BvN support replay: at threshold 1 the Kuhn search reads only the
//     nonzero STRUCTURE of the stuffed matrix, never the values, so the
//     k-th extracted matching is a function of the support alone — and
//     BvN subtraction only ever shrinks the support, by exactly the
//     cells it zeroes. If the new stuffed support equals the previous
//     initial support, step 0's cached matching is what a cold run would
//     extract; its weight is recomputed live (min along the matching)
//     and subtracted live. If the cells zeroed by that live subtraction
//     match the cached step's zeroed set, the supports still agree and
//     step 1 is reusable too — inductively until the first divergence,
//     after which extraction continues with the live Kuhn search, which
//     by the same induction is exactly where a cold run would be.
//
//  3. Max-min threshold seeding: bestThreshold returns the largest
//     feasible value of a monotone predicate; the answer is independent
//     of probe order. Seeding the search with the previous frame's
//     threshold for the same extraction step resolves an unchanged
//     threshold in two probes instead of log2(distinct values), and
//     cannot change the result.
//
// The per-frame threshold search also fans its feasibility probes out
// over a deterministic worker pool (SetPool): probes are independent
// matching extractions against a read-only working matrix, merged in
// submission order, so the narrowed interval — and therefore the chosen
// threshold — is identical on one worker or sixty-four.

// kframe is one frame of the explicit augmenting-path stack: the row
// being augmented, the candidate column currently tried, and where the
// candidate scan resumes if that candidate's subtree fails.
type kframe struct {
	row  int32
	j    int32
	next int32
	base int32 // row*words, cached to keep the pop path load-only
}

// warmStep caches one extraction of a frame: where its matching lives in
// the side's matching arena, which cells its subtraction zeroed, the
// weight it was emitted at, and (max-min) the threshold it was found at.
type warmStep struct {
	mOff int32
	zOff int32
	zLen int32
	w    int64
	thr  int64
}

// frameCache is one side of the double buffer: everything one
// decomposition produced, kept both as the caller's return value and as
// the warm-start seed for the next frame.
type frameCache struct {
	valid    bool
	maxmin   bool
	minWorth int64
	d        *demand.Matrix // copy of the input (identical-input fast path)
	support  []uint64       // initial stuffed support (BvN replay), n*words
	mback    []int          // matching arena; slots' Match are subslices
	steps    []warmStep
	zcells   []int32 // packed i*n+j zeroed-cell lists, indexed by steps
	slots    []Slot
	residual *demand.Matrix // max-min: cached residual (engine-owned)
}

func (c *frameCache) resetFor(maxmin bool, minWorth int64) {
	c.valid = false
	c.maxmin = maxmin
	c.minWorth = minWorth
	c.mback = c.mback[:0]
	c.steps = c.steps[:0]
	c.zcells = c.zcells[:0]
	c.slots = c.slots[:0]
	c.support = c.support[:0]
}

// Decomposer is the reusable frame-decomposition engine. A zero value is
// unusable; create with NewDecomposer. A Decomposer retained across
// calls warm-starts each decomposition from the previous one; outputs
// are bit-for-bit identical to a cold run on the same input.
//
// Ownership: the slots returned by BvN/MaxMin (and the matchings inside
// them) are arena storage owned by the Decomposer, valid until the
// SECOND next decomposition on the same instance — the double buffer
// guarantees they survive exactly one subsequent call, so a frame can
// play back while its successor computes. Callers that keep slots longer
// must copy them. A Decomposer is not safe for concurrent use.
type Decomposer struct {
	n, words int

	// Kuhn scratch.
	matchCol []int32
	visited  []uint64
	elig     []uint64 // threshold eligibility masks (lazily allocated)
	frames   []kframe
	out      Matching
	vals     []int64

	// BvN extraction memo (lazily allocated, see perfectBvN): matchCol
	// checkpoints before each row plus the final state ((n+1)*n), the rows
	// and columns each augment visited (n row-bitmasks each), the rows the
	// last subtraction zeroed cells in (one row-bitmask), and that
	// subtraction's zeroed-cell list.
	chk   []int32
	touch []uint64
	vis   []uint64
	zrows []uint64
	zlist []int32

	work *demand.Matrix // stuffed working matrix (pooled, retained)

	side [2]frameCache
	cur  int

	seedThr int64 // warm threshold seed for the next bestThreshold call

	par      *pool.Pool
	parScr   []*Decomposer // per-worker probe scratch
	parFeas  []bool
	parProbe []int
}

// NewDecomposer returns a decomposition engine for n-port matrices.
func NewDecomposer(n int) *Decomposer { return newDecomposer(n) }

func newDecomposer(n int) *Decomposer {
	if n <= 0 {
		panic("match: decomposer needs positive n")
	}
	words := (n + 63) / 64
	return &Decomposer{
		n:        n,
		words:    words,
		matchCol: make([]int32, n),
		visited:  make([]uint64, words),
		frames:   make([]kframe, n+1),
		out:      NewMatching(n),
	}
}

// SetPool installs a deterministic worker pool for the max-min threshold
// search: feasibility probes (independent perfect-matching extractions
// against the read-only working matrix) fan out over the pool's workers
// and merge in submission order, so results are identical to the serial
// search. A nil pool (the default) keeps the search serial and the
// decomposition allocation-free in steady state; the parallel path keeps
// per-worker Kuhn scratch but pays pool-dispatch allocations per round.
func (dc *Decomposer) SetPool(p *pool.Pool) {
	dc.par = p
	dc.parScr = nil
	if p != nil && p.Workers() > 1 {
		w := p.Workers()
		if w > maxProbeFan {
			w = maxProbeFan
		}
		dc.parScr = make([]*Decomposer, w)
		for i := range dc.parScr {
			dc.parScr[i] = newDecomposer(dc.n)
		}
		dc.parFeas = make([]bool, w)
		dc.parProbe = make([]int, 0, w)
	}
}

// maxProbeFan bounds the threshold-search fan-out: past a handful of
// simultaneous probes the search interval collapses faster than workers
// can be fed.
const maxProbeFan = 8

// Reset discards the warm cache: the next decomposition runs cold. The
// output contract is unaffected (warm equals cold bit for bit); Reset
// exists so pooled engines hand reproducible scratch to unrelated
// callers and frame schedulers drop state on Algorithm.Reset.
func (dc *Decomposer) Reset() {
	dc.side[0].valid = false
	dc.side[1].valid = false
	dc.seedThr = 0
}

// perfect finds a perfect matching using only edges with weight >= thr
// via Kuhn's augmenting-path algorithm over word-parallel candidate
// scans. It reports ok=false if no perfect matching exists. Candidate
// columns are visited in ascending order with the visited set re-checked
// on every scan, exactly like the recursive dense column scan, so
// extracted matchings are identical to the dense reference. The returned
// matching is dc-owned scratch, valid until the next perfect call.
//
//hybridsched:hotpath
func (dc *Decomposer) perfect(d *demand.Matrix, thr int64) (Matching, bool) {
	n := dc.n
	for j := range dc.matchCol {
		dc.matchCol[j] = -1
	}
	// The candidate sets live flat in dc.elig, one words-long row mask per
	// row, so the augmenting inner loop indexes a single slice with no
	// per-frame reslicing. At thr <= 1 the masks are the matrix's own row
	// bitsets, copied verbatim (identical bits, identical visit order);
	// higher thresholds (the max-min search) filter by value.
	dc.buildElig(d, thr)
	for i := 0; i < n; i++ {
		for w := range dc.visited {
			dc.visited[w] = 0
		}
		if !dc.augment(i, nil, nil) {
			return nil, false
		}
	}
	m := dc.out
	for j, i := range dc.matchCol {
		m[i] = j
	}
	return m, true
}

// augment runs one explicit-stack augmenting search from root over the
// row masks buildElig prepared. Each position scans its row's eligible
// columns word-parallel, masking out visited columns at scan time — the
// exact semantics of the recursive formulation, where the visited check
// happens per iteration. The scan state of the current position lives in
// locals; the stack holds only suspended parents.
//
// When tb/vb are non-nil the search records every row whose mask it
// scans (the root and every matched row it descends into) and every
// column it visits, as bitmasks — the read set that perfectBvN's
// memoized replay checks zeroed cells against.
//
//hybridsched:hotpath
func (dc *Decomposer) augment(root int, tb, vb []uint64) bool {
	if dc.words == 2 {
		return dc.augment2(root, tb, vb)
	}
	words := dc.words
	elig := dc.elig
	visited := dc.visited
	matchCol := dc.matchCol
	fr := dc.frames
	sp := 0
	cur := int32(root)
	base := root * words
	next := 0
	if tb != nil {
		for w := range tb {
			tb[w] = 0
		}
		tb[uint(root)>>6] |= 1 << (uint(root) & 63)
	}
	for {
		var w uint64
		wi := next >> 6
		if wi < words {
			w = (elig[base+wi] &^ visited[wi]) >> (uint(next) & 63) << (uint(next) & 63)
			for w == 0 {
				wi++
				if wi >= words {
					break
				}
				w = elig[base+wi] &^ visited[wi]
			}
		}
		if w == 0 {
			// Row exhausted: this position fails; its parent resumes
			// after the candidate that led here.
			if sp == 0 {
				if vb != nil {
					copy(vb, visited)
				}
				return false
			}
			sp--
			cur = fr[sp].row
			next = int(fr[sp].next)
			base = int(fr[sp].base)
			continue
		}
		// The candidate is the lowest set bit of the scan word: its word
		// index is wi, so the visited mark is the isolated bit itself.
		j := wi<<6 + bits.TrailingZeros64(w)
		visited[wi] |= w & -w
		owner := matchCol[j]
		if owner < 0 {
			// Augmenting path found: flip the assignments on the stack.
			matchCol[j] = cur
			for k := sp - 1; k >= 0; k-- {
				matchCol[fr[k].j] = fr[k].row
			}
			if vb != nil {
				copy(vb, visited)
			}
			return true
		}
		fr[sp] = kframe{row: cur, j: int32(j), next: int32(j + 1), base: int32(base)}
		sp++
		cur = owner
		base = int(owner) * words
		next = 0
		if tb != nil {
			tb[uint(owner)>>6] |= 1 << (uint(owner) & 63)
		}
	}
}

// augment2 is augment specialized for two-word rows (64 < n <= 128),
// the dimension class the word-parallel kernels target. Semantics are
// identical — same candidate order, same visited-at-scan-time masking,
// same recorded read sets — but the visited set and the scanned-row
// record live in registers instead of memory, both row words are scanned
// together, and candidate selection is branchless (the select masks
// derive from sign bits, so the only data-dependent branches left are
// the heavily biased row-exhausted and free-column tests).
//
//hybridsched:hotpath
func (dc *Decomposer) augment2(root int, tb, vb []uint64) bool {
	elig := dc.elig
	matchCol := dc.matchCol
	fr := dc.frames
	sp := 0
	cur := int32(root)
	base := root * 2
	var v0, v1 uint64 // visited set, register-resident
	var t0, t1 uint64 // scanned-row record, register-resident
	{
		b := uint64(1) << (uint(root) & 63)
		rm := uint64(int64(63-root) >> 63) // all-ones iff root >= 64
		t0 = b &^ rm
		t1 = b & rm
	}
	w0 := elig[base]
	w1 := elig[base+1]
	for {
		if w0|w1 == 0 {
			// Row exhausted: this position fails; its parent resumes
			// after the candidate that led here.
			if sp == 0 {
				if tb != nil {
					tb[0], tb[1] = t0, t1
					vb[0], vb[1] = v0, v1
				}
				return false
			}
			sp--
			cur = fr[sp].row
			next := int(fr[sp].next)
			base = int(fr[sp].base)
			switch {
			case next < 64:
				w0 = (elig[base] &^ v0) >> (uint(next) & 63) << (uint(next) & 63)
				w1 = elig[base+1] &^ v1
			case next < 128:
				w0 = 0
				w1 = (elig[base+1] &^ v1) >> (uint(next) & 63) << (uint(next) & 63)
			default:
				w0, w1 = 0, 0
			}
			continue
		}
		// Lowest set bit across the two words, branchlessly: a zero word
		// trailing-zero count saturates at 64, and the select mask is the
		// sign of (tz0 - 64).
		tz0 := bits.TrailingZeros64(w0)
		j1 := 64 + bits.TrailingZeros64(w1)
		sm := uint64(int64(tz0-64) >> 63) // all-ones iff w0 != 0
		j := (tz0 & int(sm)) | (j1 &^ int(sm))
		v0 |= (w0 & -w0) & sm
		v1 |= (w1 & -w1) &^ sm
		owner := matchCol[j]
		if owner < 0 {
			// Augmenting path found: flip the assignments on the stack.
			matchCol[j] = cur
			for k := sp - 1; k >= 0; k-- {
				matchCol[fr[k].j] = fr[k].row
			}
			if tb != nil {
				tb[0], tb[1] = t0, t1
				vb[0], vb[1] = v0, v1
			}
			return true
		}
		fr[sp] = kframe{row: cur, j: int32(j), next: int32(j + 1), base: int32(base)}
		sp++
		cur = owner
		base = int(owner) * 2
		b := uint64(1) << (uint(owner) & 63)
		om := uint64(int64(63-owner) >> 63) // all-ones iff owner >= 64
		t0 |= b &^ om
		t1 |= b & om
		w0 = elig[base] &^ v0
		w1 = elig[base+1] &^ v1
	}
}

// perfectBvN is the thr=1 perfect-matching extraction of the BvN loop,
// exploiting how that loop evolves its input: dc.elig already mirrors
// work's support (built once per decomposition, then shrunk in place as
// subtractions zero cells — at threshold 1 a row mask IS the row bitset,
// and BvN never adds cells). Each run records, per row, the matchCol
// state entering that row (chk) and the set of rows the augment scanned
// (touch). With memo set — the previous extraction recorded both, and
// exactly one subtraction separates the runs — rows replay for free:
//
//   - augment(i) is a deterministic function of the matchCol state it
//     enters with and the elig rows it scans. If that entering state is
//     unchanged from the previous run and none of touch[i]'s rows lost a
//     cell (touch ∩ zrows empty), the search takes the identical steps,
//     so its outcome and its scanned-row set are both unchanged: the row
//     is SKIPPED, its chk/touch entries still valid.
//
//   - A row that fails the test runs live from its checkpoint. After a
//     live row, if matchCol equals the next row's checkpoint the state
//     has reconverged with the previous run and skipping resumes;
//     otherwise the next row also runs live, recording its new pre-state
//     into chk (after the reconvergence compare reads the old one).
//
// The replayed transitions are therefore exactly the transitions a
// from-scratch run over the current elig would take, row by row, so the
// extracted matching is bit-for-bit the cold result. The dense
// equivalence and warm/cold suites pin this.
//
//hybridsched:hotpath
func (dc *Decomposer) perfectBvN(memo bool) (Matching, bool) {
	n, words := dc.n, dc.words
	matchCol := dc.matchCol
	chk := dc.chk
	touch := dc.touch
	vis := dc.vis
	if !memo {
		for j := range matchCol {
			matchCol[j] = -1
		}
		for i := 0; i < n; i++ {
			copy(chk[i*n:(i+1)*n], matchCol)
			for w := range dc.visited {
				dc.visited[w] = 0
			}
			if !dc.augment(i, touch[i*words:(i+1)*words], vis[i*words:(i+1)*words]) {
				return nil, false
			}
		}
		copy(chk[n*n:(n+1)*n], matchCol)
	} else {
		zrows := dc.zrows
		inSync := true
		for i := 0; i < n; i++ {
			if !inSync && slices.Equal(matchCol, chk[i*n:(i+1)*n]) {
				inSync = true
			}
			if inSync {
				var hit uint64
				for w, z := range zrows {
					hit |= touch[i*words+w] & z
				}
				if hit != 0 && !dc.zlistHits(i) {
					hit = 0
				}
				if hit == 0 {
					continue
				}
				copy(matchCol, chk[i*n:(i+1)*n])
				inSync = false
			} else {
				copy(chk[i*n:(i+1)*n], matchCol)
			}
			for w := range dc.visited {
				dc.visited[w] = 0
			}
			if !dc.augment(i, touch[i*words:(i+1)*words], vis[i*words:(i+1)*words]) {
				return nil, false
			}
		}
		if !inSync {
			copy(chk[n*n:(n+1)*n], matchCol)
		}
	}
	m := dc.out
	for j, i := range chk[n*n:] {
		m[i] = j
	}
	return m, true
}

// ensureChk lazily sizes the extraction memo: per-row checkpoints plus
// the final state, scanned-row sets, and the zeroed-row mask.
func (dc *Decomposer) ensureChk() {
	if dc.chk == nil {
		//hybridsched:alloc-ok one-time lazy scratch sized at construction dimension
		dc.chk = make([]int32, (dc.n+1)*dc.n)
		//hybridsched:alloc-ok one-time lazy scratch sized at construction dimension
		dc.touch = make([]uint64, dc.n*dc.words)
		//hybridsched:alloc-ok one-time lazy scratch sized at construction dimension
		dc.vis = make([]uint64, dc.n*dc.words)
		//hybridsched:alloc-ok one-time lazy scratch sized at construction dimension
		dc.zrows = make([]uint64, dc.words)
	}
}

// zlistHits is the precise replay test behind the zrows fast reject:
// it reports whether any cell (r, c) zeroed by the last subtraction had
// BOTH its row scanned and its column visited by row i's previous
// augment. The search selects candidates as lowest set bits of
// elig-minus-visited words, and every selected column is immediately
// marked visited — so a column the previous run never visited was never
// selected from any scanned row, and removing its bit cannot change any
// selection the run made (a scan word cannot even become exhausted by
// the removal: a lone remaining bit would have been selected). Rows with
// no hit replay identically despite losing cells.
//
//hybridsched:hotpath
func (dc *Decomposer) zlistHits(i int) bool {
	n, words := dc.n, dc.words
	touch := dc.touch[i*words : (i+1)*words]
	vis := dc.vis[i*words : (i+1)*words]
	for _, cl := range dc.zlist {
		r, c := int(cl)/n, int(cl)%n
		if touch[uint(r)>>6]&(1<<(uint(r)&63)) != 0 && vis[uint(c)>>6]&(1<<(uint(c)&63)) != 0 {
			return true
		}
	}
	return false
}

// clearEligCells removes zeroed cells from the flat thr=1 masks and
// rebuilds dc.zrows — the bitmask of rows that lost a cell, which the
// next memoized extraction tests each row's scanned-row set against.
//
//hybridsched:hotpath
func (dc *Decomposer) clearEligCells(cells []int32) {
	n, words := dc.n, dc.words
	dc.zlist = cells
	zrows := dc.zrows
	for w := range zrows {
		zrows[w] = 0
	}
	for _, c := range cells {
		i, j := int(c)/n, int(c)%n
		dc.elig[i*words+j>>6] &^= 1 << (uint(j) & 63)
		zrows[uint(i)>>6] |= 1 << (uint(i) & 63)
	}
}

// buildElig materializes the flat row candidate masks: the raw row
// bitsets at thr <= 1, value-filtered masks above.
//
//hybridsched:hotpath
func (dc *Decomposer) buildElig(d *demand.Matrix, thr int64) {
	n, words := dc.n, dc.words
	if dc.elig == nil {
		//hybridsched:alloc-ok one-time lazy scratch sized at construction dimension
		dc.elig = make([]uint64, n*words)
	}
	if thr <= 1 {
		for i := 0; i < n; i++ {
			copy(dc.elig[i*words:(i+1)*words], d.RowBits(i))
		}
		return
	}
	for i := 0; i < n; i++ {
		off := i * words
		for w := 0; w < words; w++ {
			dc.elig[off+w] = 0
		}
		row := d.Row(i)
		for k := 0; k < row.Len(); k++ {
			j, v := row.Entry(k)
			if v >= thr {
				dc.elig[off+j>>6] |= 1 << (uint(j) & 63)
			}
		}
	}
}

// feasible reports whether a perfect matching exists at threshold thr.
func (dc *Decomposer) feasible(d *demand.Matrix, thr int64) bool {
	_, ok := dc.perfect(d, thr)
	return ok
}

// bestThreshold returns the largest t such that the edges {(i,j) :
// work(i,j) >= t} admit a perfect matching, or 0 if none does. The
// predicate is monotone (feasible below, infeasible above), so the
// result is independent of probe order; the warm seed and the parallel
// multi-pivot rounds only change which probes run, never the answer.
func (dc *Decomposer) bestThreshold(work *demand.Matrix) int64 {
	n := work.N()
	vals := dc.vals[:0]
	for i := 0; i < n; i++ {
		row := work.Row(i)
		for k := 0; k < row.Len(); k++ {
			_, v := row.Entry(k)
			vals = append(vals, v)
		}
	}
	dc.vals = vals
	if len(vals) == 0 {
		return 0
	}
	slices.Sort(vals)
	vals = dedup(vals)
	lo, hi := 0, len(vals)-1
	best := int64(0)
	// Warm seed: the previous frame's threshold for this extraction step.
	if s := dc.seedThr; s > 0 {
		if k, ok := slices.BinarySearch(vals, s); ok {
			if dc.feasible(work, vals[k]) {
				best = vals[k]
				lo = k + 1
			} else {
				hi = k - 1
			}
		}
	}
	for lo <= hi {
		if len(dc.parScr) > 1 && hi-lo >= 3 {
			lo, hi, best = dc.probeRound(work, vals, lo, hi, best)
			continue
		}
		mid := (lo + hi) / 2
		if dc.feasible(work, vals[mid]) {
			best = vals[mid]
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	return best
}

// probeRound evaluates up to len(parScr) evenly spaced pivots of
// vals[lo..hi] concurrently and narrows the interval around the
// feasibility boundary. The predicate is monotone, so the largest
// feasible pivot and the smallest infeasible pivot bracket the answer
// exactly as a sequence of serial probes would.
func (dc *Decomposer) probeRound(work *demand.Matrix, vals []int64, lo, hi int, best int64) (int, int, int64) {
	span := hi - lo + 1
	w := len(dc.parScr)
	probes := dc.parProbe[:0]
	for k := 1; k <= w; k++ {
		p := lo + span*k/(w+1)
		if p > hi {
			p = hi
		}
		if len(probes) == 0 || probes[len(probes)-1] != p {
			probes = append(probes, p)
		}
	}
	dc.parProbe = probes
	feas := dc.parFeas[:len(probes)]
	scr := dc.parScr
	err := pool.MapInto(dc.par, len(probes), feas, func(pi int) (bool, error) {
		return scr[pi].feasible(work, vals[probes[pi]]), nil
	})
	_ = err // probe fn never fails
	for pi := len(probes) - 1; pi >= 0; pi-- {
		if feas[pi] {
			best = vals[probes[pi]]
			lo = probes[pi] + 1
			break
		}
	}
	for pi := 0; pi < len(probes); pi++ {
		if !feas[pi] {
			hi = probes[pi] - 1
			break
		}
	}
	return lo, hi, best
}

// stuffInto rebuilds dc.work as d padded so every line sums to the max
// line sum — the same greedy padding as demand.Matrix.Stuff, into
// retained pooled storage.
func (dc *Decomposer) stuffInto(d *demand.Matrix) *demand.Matrix {
	if dc.work == nil {
		dc.work = demand.FromPool(dc.n)
	}
	w := dc.work
	w.CopyFrom(d)
	target := w.MaxLineSum()
	for i := 0; i < dc.n; i++ {
		for j := 0; j < dc.n && w.RowSum(i) < target; j++ {
			slack := target - w.RowSum(i)
			if cslack := target - w.ColSum(j); cslack < slack {
				slack = cslack
			}
			if slack <= 0 {
				continue
			}
			w.Add(i, j, slack)
		}
	}
	return w
}

// snapshotSupport records work's nonzero structure into c.support.
func (dc *Decomposer) snapshotSupport(c *frameCache, work *demand.Matrix) {
	for i := 0; i < dc.n; i++ {
		c.support = append(c.support, work.RowBits(i)...)
	}
}

// supportEqual reports whether work's nonzero structure equals a
// previously snapshotted support.
//
//hybridsched:hotpath
func (dc *Decomposer) supportEqual(work *demand.Matrix, sup []uint64) bool {
	if len(sup) != dc.n*dc.words {
		return false
	}
	for i := 0; i < dc.n; i++ {
		rb := work.RowBits(i)
		off := i * dc.words
		for k, w := range rb {
			if sup[off+k] != w {
				return false
			}
		}
	}
	return true
}

// subtractTrack subtracts w along m and appends every cell the
// subtraction zeroed to c.zcells — the support delta the BvN warm replay
// verifies against.
//
//hybridsched:hotpath
func (dc *Decomposer) subtractTrack(work *demand.Matrix, m Matching, w int64, c *frameCache) {
	n := dc.n
	for i, j := range m {
		if j == Unmatched {
			continue
		}
		if work.At(i, j) == w {
			//hybridsched:alloc-ok amortized growth of the recycled zeroed-cell arena
			c.zcells = append(c.zcells, int32(i*n+j))
		}
		work.Add(i, j, -w)
	}
}

// emitStep appends one extraction to the side being built. Slot views
// are materialized in finishSlots once the matching arena stops growing.
func (dc *Decomposer) emitStep(c *frameCache, m Matching, w, thr int64, zOff int32) {
	off := len(c.mback)
	c.mback = append(c.mback, m...)
	c.steps = append(c.steps, warmStep{
		mOff: int32(off),
		zOff: zOff,
		zLen: int32(len(c.zcells)) - zOff,
		w:    w,
		thr:  thr,
	})
}

// finishSlots builds the caller-visible slot views over the (now stable)
// matching arena and stamps the side's input copy.
func (dc *Decomposer) finishSlots(c *frameCache, d *demand.Matrix) []Slot {
	for _, st := range c.steps {
		c.slots = append(c.slots, Slot{
			Match:  Matching(c.mback[st.mOff : int(st.mOff)+dc.n]),
			Weight: st.w,
		})
	}
	if c.d == nil {
		c.d = demand.FromPool(dc.n)
	}
	c.d.CopyFrom(d)
	c.valid = true
	return c.slots
}

// copyCache replays src's frame into dst — the identical-input fast
// path. dst becomes a deep copy so the double-buffer ownership story is
// the same as for a computed frame.
func (dc *Decomposer) copyCache(dst, src *frameCache) {
	dst.mback = append(dst.mback[:0], src.mback...)
	dst.steps = append(dst.steps[:0], src.steps...)
	dst.zcells = append(dst.zcells[:0], src.zcells...)
	dst.support = append(dst.support[:0], src.support...)
	if src.residual != nil {
		if dst.residual == nil {
			dst.residual = demand.FromPool(dc.n)
		}
		dst.residual.CopyFrom(src.residual)
	}
}

// zEqual compares two zeroed-cell lists.
func zEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// BvN performs a Birkhoff–von Neumann decomposition: the matrix is
// stuffed so every line sums to MaxLineSum, then repeatedly a perfect
// matching on the positive support is extracted with weight equal to its
// minimum entry. The resulting schedule serves the entire matrix in
// exactly MaxLineSum demand units — optimal when reconfiguration is
// free, but it may use up to n^2-2n+2 slots, each paying the OCS
// dead-time. Output is bit-for-bit what a cold run produces; the warm
// cache only changes how much work finding it takes. See the type
// comment for slot ownership.
func (dc *Decomposer) BvN(d *demand.Matrix) []Slot {
	dc.cur ^= 1
	cur, prev := &dc.side[dc.cur], &dc.side[dc.cur^1]
	cur.resetFor(false, 0)

	// Warm mechanism 1: identical input reproduces the identical frame.
	if prev.valid && !prev.maxmin && d.Equal(prev.d) {
		dc.copyCache(cur, prev)
		return dc.finishSlots(cur, d)
	}

	work := dc.stuffInto(d)
	dc.snapshotSupport(cur, work)
	// The thr=1 candidate masks are built once and then shrunk in place
	// as subtractions zero cells; consecutive extractions replay every
	// row the zeroed cells cannot have affected (see perfectBvN).
	dc.buildElig(work, 1)
	dc.ensureChk()
	memo := false

	// Warm mechanism 2: support replay. Valid while the stuffed support
	// evolves exactly as it did last frame (see file comment).
	reuse := prev.valid && !prev.maxmin && dc.supportEqual(work, prev.support)
	step := 0
	for work.Total() > 0 {
		var m Matching
		var w int64
		if reuse && step < len(prev.steps) {
			ps := &prev.steps[step]
			cm := Matching(prev.mback[ps.mOff : int(ps.mOff)+dc.n])
			if w = minAlong(work, cm); w > 0 {
				m = cm
			} else {
				reuse = false
			}
		} else {
			reuse = false
		}
		if m == nil {
			var ok bool
			m, ok = dc.perfectBvN(memo)
			if !ok {
				// Cannot happen for a stuffed matrix (Birkhoff's theorem);
				// guard against a bug rather than spinning forever.
				panic("match: stuffed matrix lost perfect matching")
			}
			memo = true
			w = minAlong(work, m)
		}
		zOff := int32(len(cur.zcells))
		dc.subtractTrack(work, m, w, cur)
		dc.clearEligCells(cur.zcells[zOff:])
		if reuse {
			ps := &prev.steps[step]
			if !zEqual(cur.zcells[zOff:], prev.zcells[ps.zOff:ps.zOff+ps.zLen]) {
				// The supports diverge after this step; this step itself
				// used the still-matching pre-step support, so its
				// emission stands and later steps go live.
				reuse = false
			}
		}
		dc.emitStep(cur, m, w, 0, zOff)
		step++
	}
	return dc.finishSlots(cur, d)
}

// MaxMin is the reconfiguration-aware decomposition in the spirit of
// Solstice: each step extracts the perfect matching whose minimum entry
// is as large as possible (found by binary search over thresholds), so
// few fat slots carry most of the demand. Extraction stops when the best
// matching serves less than minWorth per pair — demand not worth an OCS
// reconfiguration — and the residual is returned for the EPS to carry.
// The returned residual is a fresh pool-backed matrix owned by the
// caller (Release it when consumed); the slots follow the Decomposer's
// double-buffer ownership. Output is bit-for-bit the cold result.
func (dc *Decomposer) MaxMin(d *demand.Matrix, minWorth int64) ([]Slot, *demand.Matrix) {
	dc.cur ^= 1
	cur, prev := &dc.side[dc.cur], &dc.side[dc.cur^1]
	cur.resetFor(true, minWorth)

	if prev.valid && prev.maxmin && prev.minWorth == minWorth && d.Equal(prev.d) {
		dc.copyCache(cur, prev)
		slots := dc.finishSlots(cur, d)
		res := demand.FromPool(dc.n)
		res.CopyFrom(cur.residual)
		return slots, res
	}

	work := dc.stuffInto(d)
	served := demand.FromPool(dc.n)
	warmThr := prev.valid && prev.maxmin
	step := 0
	for work.Total() > 0 {
		// Warm mechanism 3: seed the monotone search with the previous
		// frame's threshold for this step.
		dc.seedThr = 0
		if warmThr && step < len(prev.steps) {
			dc.seedThr = prev.steps[step].thr
		}
		thr := dc.bestThreshold(work)
		if thr <= 0 {
			break
		}
		m, ok := dc.perfect(work, thr)
		if !ok {
			panic("match: threshold search returned infeasible threshold")
		}
		w := minAlong(work, m)
		if minWorth > 0 && w < minWorth {
			break
		}
		zOff := int32(len(cur.zcells))
		dc.subtractTrack(work, m, w, cur)
		for i, j := range m {
			if j != Unmatched {
				served.Add(i, j, w)
			}
		}
		dc.emitStep(cur, m, w, thr, zOff)
		step++
	}
	dc.seedThr = 0
	if cur.residual == nil {
		cur.residual = demand.FromPool(dc.n)
	} else {
		cur.residual.Reset()
	}
	for i := 0; i < dc.n; i++ {
		row := d.Row(i)
		for k := 0; k < row.Len(); k++ {
			j, v := row.Entry(k)
			if rem := v - served.At(i, j); rem > 0 {
				cur.residual.Set(i, j, rem)
			}
		}
	}
	served.Release()
	slots := dc.finishSlots(cur, d)
	res := demand.FromPool(dc.n)
	res.CopyFrom(cur.residual)
	return slots, res
}

// decomposerPools recycles cold-path engines per dimension, so the
// package-level Decompose functions reuse Kuhn scratch, arenas and the
// stuffed working matrix across calls without carrying warm state
// between unrelated callers.
var decomposerPools sync.Map // int -> *sync.Pool

func decomposerFor(n int) *Decomposer {
	p, ok := decomposerPools.Load(n)
	if !ok {
		p, _ = decomposerPools.LoadOrStore(n, &sync.Pool{
			New: func() any { return newDecomposer(n) },
		})
	}
	dc := p.(*sync.Pool).Get().(*Decomposer)
	// The cold functions are pure functions of their input: drop any warm
	// cache a previous borrower left behind. (Warm output is bit-for-bit
	// cold output anyway; this keeps the cold path's work profile, and
	// therefore its benchmarks, independent of call history.)
	dc.Reset()
	return dc
}

func (dc *Decomposer) release() {
	p, _ := decomposerPools.Load(dc.n)
	p.(*sync.Pool).Put(dc)
}

// cloneSlots copies engine-owned slots into caller-owned storage backed
// by one contiguous allocation.
func cloneSlots(slots []Slot, n int) []Slot {
	if len(slots) == 0 {
		return nil
	}
	back := make([]int, len(slots)*n)
	out := make([]Slot, len(slots))
	for k, s := range slots {
		m := back[k*n : (k+1)*n]
		copy(m, s.Match)
		out[k] = Slot{Match: Matching(m), Weight: s.Weight}
	}
	return out
}
