package match

import (
	"hybridsched/internal/demand"
)

// FrameScheduler adapts a frame decomposition (Birkhoff–von Neumann or
// max-min/Solstice-style) to the per-slot Algorithm interface: when its
// slot queue is empty it decomposes the current demand snapshot into a
// frame of matchings and then plays them back one Schedule call at a time.
// This is how slow-switching optics are actually driven — compute a whole
// frame, amortize the scheduler over it — in contrast to the per-slot
// arbiters.
//
// Weights are ignored during playback (the fabric's slot length fixes the
// per-matching service); heavier matchings are emitted proportionally more
// often by repeating them ceil(weight/quantum) times, preserving the
// decomposition's service ratios.
//
// The scheduler owns a warm Decomposer: consecutive frames over similar
// demand reuse the previous frame's permutations and thresholds (see
// decompose.go), and the playback queue and all decomposition scratch are
// recycled, so steady-state operation is allocation-free. With
// EnableComputeAhead the next frame speculatively decomposes on a
// background goroutine while the current frame plays back; the engine's
// double-buffered arenas are what make that overlap safe. Scheduling
// output is bit-for-bit identical with compute-ahead on or off: a
// speculative frame is adopted only when its predicted input equals the
// live snapshot, and a decomposition is a pure function of its input.
type FrameScheduler struct {
	n       int
	maxmin  bool
	quantum int64 // demand units per emitted slot
	dc      *Decomposer
	queue   []Matching // current frame's playback, recycled across frames
	qhead   int        // next playback position in queue
	idle    Matching   // all-Unmatched result for zero demand
	frames  int64

	// Compute-ahead state. The worker goroutine owns dc between kick and
	// join; the scheduler touches dc only while no request is in flight.
	ahead    bool
	inflight bool
	reqCh    chan *demand.Matrix
	resCh    chan aheadFrame
}

// aheadFrame is one speculative decomposition: the predicted demand it
// was computed from and the engine-owned slots it produced.
type aheadFrame struct {
	pred  *demand.Matrix
	slots []Slot
}

// NewBvNFrame returns a frame scheduler using the full BvN decomposition.
func NewBvNFrame(n int) *FrameScheduler {
	return &FrameScheduler{n: n, dc: newDecomposer(n), idle: NewMatching(n)}
}

// NewMaxMinFrame returns a frame scheduler using the reconfiguration-aware
// max-min decomposition.
func NewMaxMinFrame(n int) *FrameScheduler {
	return &FrameScheduler{n: n, maxmin: true, dc: newDecomposer(n), idle: NewMatching(n)}
}

// Name implements Algorithm.
func (f *FrameScheduler) Name() string {
	if f.maxmin {
		return "maxmin-frame"
	}
	return "bvn-frame"
}

// Reset implements Algorithm: playback and the warm cache are discarded,
// so the next Schedule decomposes cold — the state a fresh scheduler has.
func (f *FrameScheduler) Reset() {
	f.join()
	f.queue = f.queue[:0]
	f.qhead = 0
	f.frames = 0
	f.quantum = 0
	f.dc.Reset()
}

// Frames returns how many decompositions have been computed.
func (f *FrameScheduler) Frames() int64 { return f.frames }

// maxPlayback caps a frame's playback length so schedules stay responsive
// to demand shifts; the complexity model amortizes frame cost over it.
const maxPlayback = 64

// Complexity implements Algorithm. The hardware depth models one
// augmenting sweep per emitted slot (frame computation overlaps playback
// in the pipelined implementation — see EnableComputeAhead). The
// software cost is the word-parallel frame decomposition amortized over
// the playback it feeds: a frame runs O(n) extractions, each a Kuhn
// sweep over ⌈n/64⌉-word rows plus stuffing and (max-min) threshold
// probes, and plays back up to maxPlayback slots, so the per-emitted-
// slot share is O(n²·⌈n/64⌉) words scanned plus the probe term. The old
// metadata still carried the dense-era n³-per-slot scan model, which
// overstates the word-parallel cost roughly 64-fold at fabric sizes.
// TestFrameComplexityReflectsOps pins the new model against an
// instrumented mirror of the engine: counted ops per frame stay below
// SoftwareOps times the slots the frame emits, while the model stays
// well below n³.
func (f *FrameScheduler) Complexity(n int) Complexity {
	words := bitsetWords(n)
	perSlot := 8*n*n*words + 4*n*modelFill*log2ceil(n)
	if perSlot < n {
		perSlot = n
	}
	return Complexity{HardwareDepth: 4 * n, SoftwareOps: perSlot}
}

// Schedule implements Algorithm.
//
//hybridsched:hotpath
func (f *FrameScheduler) Schedule(d *demand.Matrix) Matching {
	if f.qhead >= len(f.queue) {
		f.refill(d)
	}
	if f.qhead >= len(f.queue) {
		return f.idle
	}
	m := f.queue[f.qhead]
	f.qhead++
	return m
}

// EnableComputeAhead starts the background decomposition worker: after
// every frame refill the scheduler predicts the next frame's demand (the
// snapshot that produced this one — under frame-scale demand stability
// the common case) and decomposes it while the current frame plays back.
// At the next refill the speculative frame is adopted iff the prediction
// matched the live snapshot exactly; otherwise the refill decomposes
// synchronously. Either way the schedule is byte-identical to the
// non-pipelined path. Callers that enable compute-ahead must Close the
// scheduler to stop the worker.
func (f *FrameScheduler) EnableComputeAhead() {
	if f.ahead {
		return
	}
	f.ahead = true
	f.reqCh = make(chan *demand.Matrix, 1)
	f.resCh = make(chan aheadFrame, 1)
	go f.worker()
}

// Close stops the compute-ahead worker, if any. The scheduler remains
// usable afterwards (synchronously).
func (f *FrameScheduler) Close() {
	if !f.ahead {
		return
	}
	f.join()
	close(f.reqCh)
	f.ahead = false
}

// join retires an in-flight speculative decomposition, returning dc
// ownership to the caller. The discarded result is safe to drop: the
// engine's warm state is validated against the live input on every
// decomposition, never assumed.
func (f *FrameScheduler) join() {
	if !f.inflight {
		return
	}
	res := <-f.resCh
	res.pred.Release()
	f.inflight = false
}

// worker runs speculative decompositions. It owns f.dc from request to
// response; the scheduler does not touch the engine while a request is in
// flight.
func (f *FrameScheduler) worker() {
	for pred := range f.reqCh {
		f.resCh <- aheadFrame{pred: pred, slots: f.decompose(pred)}
	}
}

// decompose runs one frame decomposition on the warm engine and returns
// the engine-owned slots.
func (f *FrameScheduler) decompose(d *demand.Matrix) []Slot {
	if f.maxmin {
		// Demand below 1/16 of the max line sum is not worth its own
		// reconfiguration; the fabric's residue path picks it up.
		slots, residual := f.dc.MaxMin(d, d.MaxLineSum()/16)
		residual.Release()
		return slots
	}
	return f.dc.BvN(d)
}

// refill computes the next frame and queues its playback. It is the
// reviewed allocation boundary of the frame scheduler's hot path: it
// runs once per maxPlayback emitted slots, every buffer it and the
// decomposition engine touch is recycled, and the steady state is pinned
// at 0 allocs/op by TestFrameSchedulerSteadyStateAllocs — but its cold
// start and the pool-handoff machinery are not per-slot work and are not
// held to the per-slot contract.
//
//hybridsched:alloc-ok frame boundary, amortized over maxPlayback slots and pinned 0-alloc in steady state
func (f *FrameScheduler) refill(d *demand.Matrix) {
	f.queue = f.queue[:0]
	f.qhead = 0
	if d.Total() == 0 {
		f.join()
		return
	}
	var slots []Slot
	adopted := false
	if f.inflight {
		res := <-f.resCh
		f.inflight = false
		if res.pred.Equal(d) {
			slots = res.slots
			adopted = true
		}
		res.pred.Release()
	}
	if !adopted {
		slots = f.decompose(d)
	}
	if len(slots) == 0 {
		return
	}
	f.frames++
	// Quantum: the smallest slot weight, so the lightest matching is
	// emitted exactly once per frame. Cap playback length to keep frames
	// responsive to demand shifts.
	quantum := slots[0].Weight
	for _, s := range slots {
		if s.Weight < quantum {
			quantum = s.Weight
		}
	}
	if quantum <= 0 {
		quantum = 1
	}
	total := 0
	for _, s := range slots {
		reps := int((s.Weight + quantum - 1) / quantum)
		if reps < 1 {
			reps = 1
		}
		for r := 0; r < reps && total < maxPlayback; r++ {
			f.queue = append(f.queue, s.Match)
			total++
		}
	}
	f.quantum = quantum
	if f.ahead {
		// Kick the next speculative frame: predict the demand stays at
		// this snapshot. The playback slots just queued live in the
		// engine's other arena side, so the overlap is safe.
		pred := demand.FromPool(f.n)
		pred.CopyFrom(d)
		f.reqCh <- pred
		f.inflight = true
	}
}

func init() {
	Register("bvn", func(n int, _ uint64) Algorithm { return NewBvNFrame(n) })
	Register("maxmin", func(n int, _ uint64) Algorithm { return NewMaxMinFrame(n) })
}
