package match

import (
	"hybridsched/internal/demand"
)

// FrameScheduler adapts a frame decomposition (Birkhoff–von Neumann or
// max-min/Solstice-style) to the per-slot Algorithm interface: when its
// slot queue is empty it decomposes the current demand snapshot into a
// frame of matchings and then plays them back one Schedule call at a time.
// This is how slow-switching optics are actually driven — compute a whole
// frame, amortize the scheduler over it — in contrast to the per-slot
// arbiters.
//
// Weights are ignored during playback (the fabric's slot length fixes the
// per-matching service); heavier matchings are emitted proportionally more
// often by repeating them ceil(weight/quantum) times, preserving the
// decomposition's service ratios.
type FrameScheduler struct {
	n       int
	maxmin  bool
	quantum int64 // demand units per emitted slot
	queue   []Matching
	frames  int64
}

// NewBvNFrame returns a frame scheduler using the full BvN decomposition.
func NewBvNFrame(n int) *FrameScheduler {
	return &FrameScheduler{n: n}
}

// NewMaxMinFrame returns a frame scheduler using the reconfiguration-aware
// max-min decomposition.
func NewMaxMinFrame(n int) *FrameScheduler {
	return &FrameScheduler{n: n, maxmin: true}
}

// Name implements Algorithm.
func (f *FrameScheduler) Name() string {
	if f.maxmin {
		return "maxmin-frame"
	}
	return "bvn-frame"
}

// Reset implements Algorithm.
func (f *FrameScheduler) Reset() {
	f.queue = nil
	f.frames = 0
}

// Frames returns how many decompositions have been computed.
func (f *FrameScheduler) Frames() int64 { return f.frames }

// Complexity implements Algorithm: a decomposition costs up to n^2
// matchings of O(n*E) augmenting search; amortized per emitted slot it is
// comparable to a couple of Kuhn passes. The hardware depth reflects one
// augmenting sweep per slot (frame computation overlaps playback in a
// pipelined implementation).
func (f *FrameScheduler) Complexity(n int) Complexity {
	return Complexity{HardwareDepth: 4 * n, SoftwareOps: n * n * n}
}

// Schedule implements Algorithm.
func (f *FrameScheduler) Schedule(d *demand.Matrix) Matching {
	if len(f.queue) == 0 {
		f.refill(d)
	}
	if len(f.queue) == 0 {
		return NewMatching(f.n)
	}
	m := f.queue[0]
	f.queue = f.queue[1:]
	return m
}

func (f *FrameScheduler) refill(d *demand.Matrix) {
	if d.Total() == 0 {
		return
	}
	var slots []Slot
	if f.maxmin {
		// Demand below 1/16 of the max line sum is not worth its own
		// reconfiguration; the fabric's residue path picks it up.
		var residual *demand.Matrix
		slots, residual = DecomposeMaxMin(d, d.MaxLineSum()/16)
		residual.Release()
	} else {
		slots = DecomposeBvN(d)
	}
	if len(slots) == 0 {
		return
	}
	f.frames++
	// Quantum: the smallest slot weight, so the lightest matching is
	// emitted exactly once per frame. Cap playback length to keep frames
	// responsive to demand shifts.
	quantum := slots[0].Weight
	for _, s := range slots {
		if s.Weight < quantum {
			quantum = s.Weight
		}
	}
	if quantum <= 0 {
		quantum = 1
	}
	const maxPlayback = 64
	total := 0
	for _, s := range slots {
		reps := int((s.Weight + quantum - 1) / quantum)
		if reps < 1 {
			reps = 1
		}
		for r := 0; r < reps && total < maxPlayback; r++ {
			f.queue = append(f.queue, s.Match)
			total++
		}
	}
	f.quantum = quantum
}

func init() {
	Register("bvn", func(n int, _ uint64) Algorithm { return NewBvNFrame(n) })
	Register("maxmin", func(n int, _ uint64) Algorithm { return NewMaxMinFrame(n) })
}
