package match

import (
	"testing"

	"hybridsched/internal/demand"
)

// fullDemand is persistent all-to-all backlog excluding the diagonal.
func fullDemand(n int) *demand.Matrix {
	d := demand.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				d.Set(i, j, 100)
			}
		}
	}
	return d
}

// TestRRMStaysSynchronized demonstrates the textbook RRM pathology: under
// persistent symmetric demand its pointers move in lockstep, so its
// steady-state matchings stay well below perfect, while iSLIP (identical
// structure, accept-driven pointer rule) converges to (near-)perfect.
func TestRRMStaysSynchronizedISLIPDoesNot(t *testing.T) {
	n := 16
	d := fullDemand(n)
	measure := func(alg Algorithm) float64 {
		for k := 0; k < 10*n; k++ {
			alg.Schedule(d)
		}
		total := 0
		const slots = 100
		for k := 0; k < slots; k++ {
			total += alg.Schedule(d).Size()
		}
		return float64(total) / float64(slots*n)
	}
	rrm := measure(NewRRM(n, log2ceil(n)))
	islip := measure(NewISLIP(n, log2ceil(n)))
	if islip < 0.95 {
		t.Fatalf("iSLIP steady state %.3f, want >= 0.95", islip)
	}
	if rrm > islip-0.05 {
		t.Fatalf("RRM %.3f should trail iSLIP %.3f; the desync ablation is lost", rrm, islip)
	}
}

func TestRRMValidAndMaximal(t *testing.T) {
	alg := NewRRM(8, 3)
	d := fullDemand(8)
	for k := 0; k < 50; k++ {
		m := alg.Schedule(d)
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestILQFPicksDeepestQueue(t *testing.T) {
	alg := NewILQF(4, 2)
	d := demand.NewMatrix(4)
	d.Set(0, 1, 10)
	d.Set(2, 1, 500) // deeper: must win output 1
	d.Set(0, 3, 7)
	m := alg.Schedule(d)
	if m[2] != 1 {
		t.Fatalf("deepest queue lost arbitration: %v", m)
	}
	if m[0] != 3 {
		t.Fatalf("loser should settle for its other request: %v", m)
	}
}

func TestILQFCanStarveLightQueues(t *testing.T) {
	// A persistent heavy flow (0->1) and a persistent light flow (2->1):
	// pure iLQF always grants the heavy one — the starvation property
	// that motivates iSLIP's round-robin pointers. We model persistence
	// by never draining the heavy queue.
	alg := NewILQF(4, 2)
	d := demand.NewMatrix(4)
	d.Set(0, 1, 1000)
	d.Set(2, 1, 10)
	for k := 0; k < 100; k++ {
		m := alg.Schedule(d)
		if m[2] == 1 {
			t.Fatalf("slot %d: light flow won against persistent heavy flow", k)
		}
	}
}

func TestILQFMaximalOnRandom(t *testing.T) {
	// iLQF with n iterations is maximal.
	alg := NewILQF(8, 8)
	d := fullDemand(8)
	m := alg.Schedule(d)
	if !m.IsMaximal(d) {
		t.Fatalf("not maximal: %v", m)
	}
}

func TestNewArbitersRegistered(t *testing.T) {
	for _, name := range []string{"rrm", "ilqf", "islipn"} {
		alg, err := New(name, 8, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		m := alg.Schedule(fullDemand(8))
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestRRMILQFValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewRRM(0, 1) },
		func() { NewRRM(4, 0) },
		func() { NewILQF(0, 1) },
		func() { NewILQF(4, 0) },
	} {
		func() {
			defer func() { recover() }()
			fn()
			t.Error("expected panic")
		}()
	}
}
