package match

import (
	"sort"

	"hybridsched/internal/demand"
)

// Slot is one entry of a circuit schedule: hold Match for long enough to
// serve Weight demand units on every matched pair.
type Slot struct {
	Match  Matching
	Weight int64
}

// ScheduleCost returns the total demand units a schedule occupies,
// including a fixed reconfiguration overhead (in the same units) per slot.
// This is the quantity duty-cycle analysis compares against the matrix's
// MaxLineSum lower bound.
func ScheduleCost(slots []Slot, overhead int64) int64 {
	var total int64
	for _, s := range slots {
		total += s.Weight + overhead
	}
	return total
}

// DecomposeBvN performs a Birkhoff–von Neumann decomposition: the matrix is
// stuffed so every line sums to MaxLineSum, then repeatedly a perfect
// matching on the positive support is extracted with weight equal to its
// minimum entry. The resulting schedule serves the entire matrix in
// exactly MaxLineSum demand units — optimal when reconfiguration is free,
// but it may use up to n^2-2n+2 slots, each paying the OCS dead-time.
func DecomposeBvN(d *demand.Matrix) []Slot {
	work := d.Stuff()
	var slots []Slot
	for work.Total() > 0 {
		m, ok := kuhnPerfect(work, 1)
		if !ok {
			// Cannot happen for a stuffed matrix (Birkhoff's theorem);
			// guard against a bug rather than spinning forever.
			panic("match: stuffed matrix lost perfect matching")
		}
		w := minAlong(work, m)
		subtract(work, m, w)
		slots = append(slots, Slot{Match: m, Weight: w})
	}
	return slots
}

// DecomposeMaxMin is the reconfiguration-aware decomposition in the spirit
// of Solstice: each step extracts the perfect matching whose minimum entry
// is as large as possible (found by binary search over thresholds), so few
// fat slots carry most of the demand. Extraction stops when the best
// matching serves less than minWorth per pair — demand not worth an OCS
// reconfiguration — and the residual is returned for the EPS to carry,
// exactly the paper's "residual traffic can be sent through the EPS".
func DecomposeMaxMin(d *demand.Matrix, minWorth int64) (slots []Slot, residual *demand.Matrix) {
	work := d.Stuff()
	served := demand.NewMatrix(d.N())
	for work.Total() > 0 {
		thr := bestThreshold(work)
		if thr <= 0 {
			break
		}
		m, ok := kuhnPerfect(work, thr)
		if !ok {
			panic("match: threshold search returned infeasible threshold")
		}
		w := minAlong(work, m)
		if minWorth > 0 && w < minWorth {
			break
		}
		subtract(work, m, w)
		for i, j := range m {
			if j != Unmatched {
				served.Add(i, j, w)
			}
		}
		slots = append(slots, Slot{Match: m, Weight: w})
	}
	residual = demand.NewMatrix(d.N())
	for i := 0; i < d.N(); i++ {
		for j := 0; j < d.N(); j++ {
			if rem := d.At(i, j) - served.At(i, j); rem > 0 {
				residual.Set(i, j, rem)
			}
		}
	}
	return slots, residual
}

// bestThreshold returns the largest t such that the edges {(i,j) :
// work(i,j) >= t} admit a perfect matching, or 0 if none does.
func bestThreshold(work *demand.Matrix) int64 {
	n := work.N()
	vals := make([]int64, 0, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if v := work.At(i, j); v > 0 {
				vals = append(vals, v)
			}
		}
	}
	if len(vals) == 0 {
		return 0
	}
	sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
	vals = dedup(vals)
	lo, hi := 0, len(vals)-1
	best := int64(0)
	for lo <= hi {
		mid := (lo + hi) / 2
		if _, ok := kuhnPerfect(work, vals[mid]); ok {
			best = vals[mid]
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	return best
}

func dedup(v []int64) []int64 {
	out := v[:0]
	for i, x := range v {
		if i == 0 || x != v[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// kuhnPerfect finds a perfect matching using only edges with weight >= thr
// via Kuhn's augmenting-path algorithm. It reports ok=false if no perfect
// matching exists.
func kuhnPerfect(d *demand.Matrix, thr int64) (Matching, bool) {
	n := d.N()
	matchCol := make([]int, n) // column -> row
	for j := range matchCol {
		matchCol[j] = Unmatched
	}
	visited := make([]bool, n)
	var try func(i int) bool
	try = func(i int) bool {
		for j := 0; j < n; j++ {
			if visited[j] || d.At(i, j) < thr || d.At(i, j) <= 0 {
				continue
			}
			visited[j] = true
			if matchCol[j] == Unmatched || try(matchCol[j]) {
				matchCol[j] = i
				return true
			}
		}
		return false
	}
	for i := 0; i < n; i++ {
		for j := range visited {
			visited[j] = false
		}
		if !try(i) {
			return nil, false
		}
	}
	m := NewMatching(n)
	for j, i := range matchCol {
		m[i] = j
	}
	return m, true
}

func minAlong(d *demand.Matrix, m Matching) int64 {
	var w int64 = -1
	for i, j := range m {
		if j == Unmatched {
			continue
		}
		if v := d.At(i, j); w < 0 || v < w {
			w = v
		}
	}
	if w < 0 {
		return 0
	}
	return w
}

func subtract(d *demand.Matrix, m Matching, w int64) {
	for i, j := range m {
		if j != Unmatched {
			d.Add(i, j, -w)
		}
	}
}
