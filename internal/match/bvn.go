package match

import (
	"hybridsched/internal/demand"
)

// Slot is one entry of a circuit schedule: hold Match for long enough to
// serve Weight demand units on every matched pair.
type Slot struct {
	Match  Matching
	Weight int64
}

// ScheduleCost returns the total demand units a schedule occupies,
// including a fixed reconfiguration overhead (in the same units) per slot.
// This is the quantity duty-cycle analysis compares against the matrix's
// MaxLineSum lower bound.
func ScheduleCost(slots []Slot, overhead int64) int64 {
	var total int64
	for _, s := range slots {
		total += s.Weight + overhead
	}
	return total
}

// DecomposeBvN performs a Birkhoff–von Neumann decomposition of d; see
// Decomposer.BvN for the algorithm. This package-level form is the
// cold-start entry point: it borrows a pooled engine (recycling Kuhn
// scratch and the stuffed working matrix across calls, but never warm
// state) and returns caller-owned slots. Epoch-over-epoch callers should
// hold a Decomposer instead and get warm starts plus allocation-free
// steady state.
func DecomposeBvN(d *demand.Matrix) []Slot {
	dc := decomposerFor(d.N())
	slots := cloneSlots(dc.BvN(d), d.N())
	dc.release()
	return slots
}

// DecomposeMaxMin is the reconfiguration-aware max-min decomposition of
// d; see Decomposer.MaxMin for the algorithm. Like DecomposeBvN it is
// the cold-start entry point over a pooled engine. The returned residual
// is pool-backed; callers that consume it promptly may Release it.
func DecomposeMaxMin(d *demand.Matrix, minWorth int64) (slots []Slot, residual *demand.Matrix) {
	dc := decomposerFor(d.N())
	s, residual := dc.MaxMin(d, minWorth)
	slots = cloneSlots(s, d.N())
	dc.release()
	return slots, residual
}

func dedup(v []int64) []int64 {
	out := v[:0]
	for i, x := range v {
		if i == 0 || x != v[i-1] {
			out = append(out, x)
		}
	}
	return out
}

//hybridsched:hotpath
func minAlong(d *demand.Matrix, m Matching) int64 {
	var w int64 = -1
	for i, j := range m {
		if j == Unmatched {
			continue
		}
		if v := d.At(i, j); w < 0 || v < w {
			w = v
		}
	}
	if w < 0 {
		return 0
	}
	return w
}

func subtract(d *demand.Matrix, m Matching, w int64) {
	for i, j := range m {
		if j != Unmatched {
			d.Add(i, j, -w)
		}
	}
}
