package match

import (
	"slices"

	"hybridsched/internal/demand"
)

// Slot is one entry of a circuit schedule: hold Match for long enough to
// serve Weight demand units on every matched pair.
type Slot struct {
	Match  Matching
	Weight int64
}

// ScheduleCost returns the total demand units a schedule occupies,
// including a fixed reconfiguration overhead (in the same units) per slot.
// This is the quantity duty-cycle analysis compares against the matrix's
// MaxLineSum lower bound.
func ScheduleCost(slots []Slot, overhead int64) int64 {
	var total int64
	for _, s := range slots {
		total += s.Weight + overhead
	}
	return total
}

// decomposer carries the scratch one frame decomposition reuses across
// its many perfect-matching extractions: Kuhn's augmenting-path state and
// the threshold-search value buffer.
type decomposer struct {
	matchCol []int32
	visited  []bool
	vals     []int64
}

func newDecomposer(n int) *decomposer {
	return &decomposer{
		matchCol: make([]int32, n),
		visited:  make([]bool, n),
	}
}

// perfect finds a perfect matching using only edges with weight >= thr
// via Kuhn's augmenting-path algorithm, iterating each row's nonzero
// entries. It reports ok=false if no perfect matching exists. The search
// visits candidate columns in ascending order, exactly like the dense
// column scan, so extracted matchings are identical to the dense
// reference.
func (dc *decomposer) perfect(d *demand.Matrix, thr int64) (Matching, bool) {
	n := d.N()
	for j := 0; j < n; j++ {
		dc.matchCol[j] = -1
	}
	var try func(i int) bool
	try = func(i int) bool {
		row := d.Row(i)
		for k := 0; k < row.Len(); k++ {
			j, v := row.Entry(k)
			if dc.visited[j] || v < thr {
				continue
			}
			dc.visited[j] = true
			if dc.matchCol[j] < 0 || try(int(dc.matchCol[j])) {
				dc.matchCol[j] = int32(i)
				return true
			}
		}
		return false
	}
	for i := 0; i < n; i++ {
		for j := range dc.visited {
			dc.visited[j] = false
		}
		if !try(i) {
			return nil, false
		}
	}
	m := NewMatching(n)
	for j, i := range dc.matchCol {
		m[i] = j
	}
	return m, true
}

// bestThreshold returns the largest t such that the edges {(i,j) :
// work(i,j) >= t} admit a perfect matching, or 0 if none does.
func (dc *decomposer) bestThreshold(work *demand.Matrix) int64 {
	n := work.N()
	vals := dc.vals[:0]
	for i := 0; i < n; i++ {
		row := work.Row(i)
		for k := 0; k < row.Len(); k++ {
			_, v := row.Entry(k)
			vals = append(vals, v)
		}
	}
	dc.vals = vals
	if len(vals) == 0 {
		return 0
	}
	slices.Sort(vals)
	vals = dedup(vals)
	lo, hi := 0, len(vals)-1
	best := int64(0)
	for lo <= hi {
		mid := (lo + hi) / 2
		if _, ok := dc.perfect(work, vals[mid]); ok {
			best = vals[mid]
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	return best
}

// DecomposeBvN performs a Birkhoff–von Neumann decomposition: the matrix is
// stuffed so every line sums to MaxLineSum, then repeatedly a perfect
// matching on the positive support is extracted with weight equal to its
// minimum entry. The resulting schedule serves the entire matrix in
// exactly MaxLineSum demand units — optimal when reconfiguration is free,
// but it may use up to n^2-2n+2 slots, each paying the OCS dead-time.
func DecomposeBvN(d *demand.Matrix) []Slot {
	work := d.Stuff()
	dc := newDecomposer(d.N())
	var slots []Slot
	for work.Total() > 0 {
		m, ok := dc.perfect(work, 1)
		if !ok {
			// Cannot happen for a stuffed matrix (Birkhoff's theorem);
			// guard against a bug rather than spinning forever.
			panic("match: stuffed matrix lost perfect matching")
		}
		w := minAlong(work, m)
		subtract(work, m, w)
		slots = append(slots, Slot{Match: m, Weight: w})
	}
	work.Release()
	return slots
}

// DecomposeMaxMin is the reconfiguration-aware decomposition in the spirit
// of Solstice: each step extracts the perfect matching whose minimum entry
// is as large as possible (found by binary search over thresholds), so few
// fat slots carry most of the demand. Extraction stops when the best
// matching serves less than minWorth per pair — demand not worth an OCS
// reconfiguration — and the residual is returned for the EPS to carry,
// exactly the paper's "residual traffic can be sent through the EPS".
// The returned residual is pool-backed; callers that consume it promptly
// may Release it.
func DecomposeMaxMin(d *demand.Matrix, minWorth int64) (slots []Slot, residual *demand.Matrix) {
	work := d.Stuff()
	served := demand.FromPool(d.N())
	dc := newDecomposer(d.N())
	for work.Total() > 0 {
		thr := dc.bestThreshold(work)
		if thr <= 0 {
			break
		}
		m, ok := dc.perfect(work, thr)
		if !ok {
			panic("match: threshold search returned infeasible threshold")
		}
		w := minAlong(work, m)
		if minWorth > 0 && w < minWorth {
			break
		}
		subtract(work, m, w)
		for i, j := range m {
			if j != Unmatched {
				served.Add(i, j, w)
			}
		}
		slots = append(slots, Slot{Match: m, Weight: w})
	}
	residual = demand.FromPool(d.N())
	for i := 0; i < d.N(); i++ {
		row := d.Row(i)
		for k := 0; k < row.Len(); k++ {
			j, v := row.Entry(k)
			if rem := v - served.At(i, j); rem > 0 {
				residual.Set(i, j, rem)
			}
		}
	}
	work.Release()
	served.Release()
	return slots, residual
}

func dedup(v []int64) []int64 {
	out := v[:0]
	for i, x := range v {
		if i == 0 || x != v[i-1] {
			out = append(out, x)
		}
	}
	return out
}

func minAlong(d *demand.Matrix, m Matching) int64 {
	var w int64 = -1
	for i, j := range m {
		if j == Unmatched {
			continue
		}
		if v := d.At(i, j); w < 0 || v < w {
			w = v
		}
	}
	if w < 0 {
		return 0
	}
	return w
}

func subtract(d *demand.Matrix, m Matching, w int64) {
	for i, j := range m {
		if j != Unmatched {
			d.Add(i, j, -w)
		}
	}
}
