package match

import (
	"testing"
	"testing/quick"

	"hybridsched/internal/demand"
	"hybridsched/internal/rng"
)

func randMatrix(r *rng.Rand, n int, density float64, maxVal int) *demand.Matrix {
	m := demand.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if r.Bool(density) {
				m.Set(i, j, int64(1+r.Intn(maxVal)))
			}
		}
	}
	return m
}

func TestMatchingValidate(t *testing.T) {
	m := NewMatching(3)
	if err := m.Validate(); err != nil {
		t.Fatalf("all-unmatched should validate: %v", err)
	}
	m[0], m[1] = 2, 2
	if err := m.Validate(); err == nil {
		t.Fatal("duplicate output should fail")
	}
	m[1] = 5
	if err := m.Validate(); err == nil {
		t.Fatal("out-of-range output should fail")
	}
}

func TestMatchingHelpers(t *testing.T) {
	id := Identity(4)
	if id.Size() != 4 || id.Validate() != nil {
		t.Fatal("identity broken")
	}
	d := demand.NewMatrix(4)
	d.Set(0, 0, 5)
	d.Set(1, 1, 3)
	if w := id.Weight(d); w != 8 {
		t.Fatalf("weight = %d", w)
	}
	c := id.Clone()
	c[0] = Unmatched
	if id[0] != 0 {
		t.Fatal("clone aliases")
	}
	if !id.Equal(Identity(4)) || id.Equal(c) || id.Equal(Identity(3)) {
		t.Fatal("Equal broken")
	}
}

func TestIsMaximal(t *testing.T) {
	d := demand.NewMatrix(2)
	d.Set(0, 0, 1)
	d.Set(1, 1, 1)
	empty := NewMatching(2)
	if empty.IsMaximal(d) {
		t.Fatal("empty matching with available edges is not maximal")
	}
	if !Identity(2).IsMaximal(d) {
		t.Fatal("identity is maximal here")
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) < 6 {
		t.Fatalf("expected at least 6 registered algorithms, got %v", names)
	}
	for _, name := range names {
		alg, err := New(name, 8, 1)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if alg.Name() == "" {
			t.Fatalf("%q has empty Name()", name)
		}
		c := alg.Complexity(8)
		if c.HardwareDepth <= 0 || c.SoftwareOps <= 0 {
			t.Fatalf("%q has non-positive complexity %+v", name, c)
		}
	}
	if _, err := New("no-such-algorithm", 8, 1); err == nil {
		t.Fatal("unknown algorithm should error")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Register("islip", nil)
}

// All registered per-slot algorithms must return valid matchings that only
// pair ports with positive demand (TDMA excepted — it is demand-oblivious
// by contract).
func TestAllAlgorithmsProduceValidMatchings(t *testing.T) {
	r := rng.New(1234)
	for _, name := range Names() {
		alg, err := New(name, 8, 7)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 50; trial++ {
			d := randMatrix(r, 8, 0.4, 1000)
			m := alg.Schedule(d)
			if len(m) != 8 {
				t.Fatalf("%s: wrong length %d", name, len(m))
			}
			if err := m.Validate(); err != nil {
				t.Fatalf("%s: invalid matching: %v", name, err)
			}
			switch name {
			case "tdma", "bvn", "maxmin", "test-user-sched":
				// TDMA is demand-oblivious; the frame decompositions
				// stuff the matrix, so their perfect matchings contain
				// dummy (zero-demand) pairs by construction.
				continue
			}
			for in, out := range m {
				if out != Unmatched && d.At(in, out) <= 0 {
					t.Fatalf("%s: matched zero-demand pair (%d,%d)", name, in, out)
				}
			}
		}
	}
}

// iSLIP, PIM, wavefront and greedy converge to maximal matchings: no
// addable request may remain.
func TestMaximalityOfIterativeArbiters(t *testing.T) {
	r := rng.New(99)
	for _, name := range []string{"islip", "pim", "wavefront", "greedy", "hungarian"} {
		alg, err := New(name, 8, 3)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 50; trial++ {
			d := randMatrix(r, 8, 0.5, 100)
			m := alg.Schedule(d)
			if !m.IsMaximal(d) {
				t.Fatalf("%s produced non-maximal matching on trial %d\n%v\n%v",
					name, trial, d, m)
			}
		}
	}
}

func TestISLIPFullLoadUniformIsPerfectAfterWarmup(t *testing.T) {
	// Under persistent all-to-all backlog, iSLIP's pointers desynchronize
	// after a warm-up and every subsequent slot is (near-)perfect — the
	// mechanism behind its 100%-throughput property. Slot 0, with all
	// pointers synchronized, matches only ~2 pairs per iteration; that is
	// expected and is why the warm-up exists.
	n := 16
	alg := NewISLIP(n, log2ceil(n))
	d := demand.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				d.Set(i, j, 100)
			}
		}
	}
	for slot := 0; slot < 10*n; slot++ {
		alg.Schedule(d)
	}
	total, slots := 0, 50
	for slot := 0; slot < slots; slot++ {
		total += alg.Schedule(d).Size()
	}
	// Steady state must average at least 95% of a perfect matching.
	if total < slots*n*95/100 {
		t.Fatalf("steady-state matched %d/%d pairs; iSLIP failed to desynchronize",
			total, slots*n)
	}
}

func TestISLIPDesynchronizesPointers(t *testing.T) {
	// With persistent identical demand, after a warmup each slot must
	// serve n distinct pairs (pointer desynchronization). Check aggregate
	// service is fair across inputs.
	n := 4
	alg := NewISLIP(n, 2)
	d := demand.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				d.Set(i, j, 1)
			}
		}
	}
	served := make([]int, n)
	for slot := 0; slot < 400; slot++ {
		m := alg.Schedule(d)
		for in, out := range m {
			if out != Unmatched {
				served[in]++
			}
		}
	}
	for i, s := range served {
		if s < 300 {
			t.Fatalf("input %d only served %d/400 slots; unfair", i, s)
		}
	}
}

func TestISLIPSingleRequest(t *testing.T) {
	alg := NewISLIP(4, 2)
	d := demand.NewMatrix(4)
	d.Set(2, 3, 42)
	m := alg.Schedule(d)
	if m[2] != 3 || m.Size() != 1 {
		t.Fatalf("m = %v", m)
	}
}

func TestPIMDeterministicAfterReset(t *testing.T) {
	r := rng.New(5)
	d := randMatrix(r, 8, 0.5, 100)
	a := NewPIM(8, 3, 77)
	m1 := a.Schedule(d)
	a.Reset()
	m2 := a.Schedule(d)
	if !m1.Equal(m2) {
		t.Fatal("PIM not reproducible after Reset")
	}
}

func TestWavefrontRotatesPriority(t *testing.T) {
	// Two inputs contending for the same two outputs: over many slots the
	// rotating offset must not starve either pairing.
	alg := NewWavefront(2)
	d := demand.NewMatrix(2)
	d.Set(0, 0, 1)
	d.Set(0, 1, 1)
	d.Set(1, 0, 1)
	d.Set(1, 1, 1)
	counts := map[int]int{}
	for slot := 0; slot < 100; slot++ {
		m := alg.Schedule(d)
		if m.Size() != 2 {
			t.Fatalf("wavefront should find perfect matching, got %v", m)
		}
		counts[m[0]]++
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("wavefront starved a configuration: %v", counts)
	}
}

func TestTDMACyclesThroughAllPermutations(t *testing.T) {
	n := 5
	alg := NewTDMA(n)
	d := demand.NewMatrix(n) // ignored
	for slot := 0; slot < n-1; slot++ {
		m := alg.Schedule(d)
		if m.Size() != n {
			t.Fatal("TDMA must be perfect")
		}
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
		for i, j := range m {
			if i == j {
				t.Fatalf("TDMA with SkipSelf matched i->i: %v", m)
			}
			_ = j
		}
	}
	// Over n-1 slots, input 0 must see n-1 distinct outputs.
	outs := map[int]bool{}
	alg.Reset()
	for slot := 0; slot < n-1; slot++ {
		outs[alg.Schedule(d)[0]] = true
	}
	if len(outs) != n-1 {
		t.Fatalf("input 0 saw %d distinct outputs, want %d", len(outs), n-1)
	}
}

func TestGreedyPicksHeaviestEdge(t *testing.T) {
	alg := NewGreedy(3)
	d := demand.NewMatrix(3)
	d.Set(0, 0, 5)
	d.Set(0, 1, 100) // heaviest; must be taken
	d.Set(1, 1, 50)  // conflicts with (0,1); loses
	d.Set(1, 0, 10)
	m := alg.Schedule(d)
	if m[0] != 1 || m[1] != 0 {
		t.Fatalf("greedy picked %v", m)
	}
}

func TestHungarianBeatsGreedyWhenGreedyIsMyopic(t *testing.T) {
	// Classic counterexample: greedy takes the single heavy edge and
	// blocks two medium edges whose sum is larger.
	d := demand.NewMatrix(2)
	d.Set(0, 0, 10)
	d.Set(0, 1, 6)
	d.Set(1, 0, 6)
	// greedy: (0,0)=10, then (1,1)=0 unavailable -> weight 10.
	// optimal: (0,1)+(1,0) = 12.
	g := NewGreedy(2).Schedule(d)
	h := NewHungarian(2).Schedule(d)
	if g.Weight(d) != 10 {
		t.Fatalf("greedy weight = %d, want 10", g.Weight(d))
	}
	if h.Weight(d) != 12 {
		t.Fatalf("hungarian weight = %d, want 12", h.Weight(d))
	}
}

func TestHungarianIsOptimalOnSmallMatrices(t *testing.T) {
	// Brute-force all permutations on 4x4 and compare.
	r := rng.New(31337)
	n := 4
	alg := NewHungarian(n)
	perms := permutations(n)
	for trial := 0; trial < 200; trial++ {
		d := randMatrix(r, n, 0.7, 1000)
		got := alg.Schedule(d).Weight(d)
		var best int64
		for _, p := range perms {
			var w int64
			for i, j := range p {
				w += d.At(i, j)
			}
			if w > best {
				best = w
			}
		}
		if got != best {
			t.Fatalf("trial %d: hungarian=%d brute=%d\n%v", trial, got, best, d)
		}
	}
}

func permutations(n int) [][]int {
	var out [][]int
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			cp := make([]int, n)
			copy(cp, p)
			out = append(out, cp)
			return
		}
		for i := k; i < n; i++ {
			p[k], p[i] = p[i], p[k]
			rec(k + 1)
			p[k], p[i] = p[i], p[k]
		}
	}
	rec(0)
	return out
}

func TestGreedyIsHalfApproximation(t *testing.T) {
	// Property: greedy weight >= optimal/2 (standard guarantee).
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(4)
		d := randMatrix(r, n, 0.6, 100)
		g := NewGreedy(n).Schedule(d).Weight(d)
		h := NewHungarian(n).Schedule(d).Weight(d)
		return 2*g >= h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
