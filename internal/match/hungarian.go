package match

import (
	"math"

	"hybridsched/internal/demand"
)

// Hungarian computes the exact maximum-weight matching with the O(n^3)
// Hungarian (Kuhn–Munkres) algorithm. This is what c-Through-style
// software schedulers run over measured demand to pick the optimal circuit
// configuration — optimal, but far too slow per-slot for nanosecond
// switching, which is the quantitative heart of the paper's argument.
type Hungarian struct {
	n int

	// Scratch reused across Schedule calls: the flattened cost matrix
	// and the potentials/paths of the assignment solver. The algorithm
	// itself stays O(n^3) — it is inherently dense — but steady-state
	// scheduling is allocation-free.
	cost   []int64 // n*n, row-major
	u, v   []int64 // n+1
	minv   []int64 // n+1
	p, way []int   // n+1
	used   []bool  // n+1
	out    Matching
}

// NewHungarian returns an exact max-weight arbiter.
func NewHungarian(n int) *Hungarian {
	if n <= 0 {
		panic("match: hungarian needs positive n")
	}
	return &Hungarian{n: n,
		cost: make([]int64, n*n),
		u:    make([]int64, n+1), v: make([]int64, n+1),
		minv: make([]int64, n+1),
		p:    make([]int, n+1), way: make([]int, n+1),
		used: make([]bool, n+1),
		out:  NewMatching(n),
	}
}

// Name implements Algorithm.
func (h *Hungarian) Name() string { return "hungarian" }

// Reset implements Algorithm.
func (h *Hungarian) Reset() {}

// Complexity implements Algorithm: the augmenting structure is inherently
// sequential, so even hardware pays ~n^2 depth; software pays n^3.
func (h *Hungarian) Complexity(n int) Complexity {
	return Complexity{HardwareDepth: n * n, SoftwareOps: n * n * n}
}

// Schedule implements Algorithm.
func (h *Hungarian) Schedule(d *demand.Matrix) Matching {
	n := h.n
	m := h.out
	for i := range m {
		m[i] = Unmatched
	}
	maxW := d.Max()
	if maxW == 0 {
		return m
	}
	// Convert max-weight to min-cost: cost = maxW - w. Zero-demand cells
	// cost maxW (weight 0), so they never displace real demand; they are
	// stripped from the assignment afterwards. Fill the default densely,
	// then overwrite only the nonzero cells.
	for k := range h.cost {
		h.cost[k] = maxW
	}
	for i := 0; i < n; i++ {
		row := d.Row(i)
		base := i * n
		for k := 0; k < row.Len(); k++ {
			j, w := row.Entry(k)
			h.cost[base+j] = maxW - w
		}
	}
	h.solve()
	for j := 1; j <= n; j++ {
		if i := h.p[j]; i > 0 && d.At(i-1, j-1) > 0 {
			m[i-1] = j - 1
		}
	}
	return m
}

// solve runs the n x n assignment problem over h.cost, leaving the
// matched row of each column in h.p. Standard potentials formulation
// (u, v potentials; p[j] = row matched to column j).
func (h *Hungarian) solve() {
	n := h.n
	const inf = math.MaxInt64 / 4
	u, v, minv, p, way, used := h.u, h.v, h.minv, h.p, h.way, h.used
	for j := 0; j <= n; j++ {
		u[j], v[j] = 0, 0
		p[j], way[j] = 0, 0
	}
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		for j := 0; j <= n; j++ {
			minv[j] = inf
			used[j] = false
		}
		for {
			used[j0] = true
			i0 := p[j0]
			var delta int64 = inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := h.cost[(i0-1)*n+j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
}

func init() {
	Register("hungarian", func(n int, _ uint64) Algorithm { return NewHungarian(n) })
}
