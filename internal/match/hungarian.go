package match

import (
	"math"

	"hybridsched/internal/demand"
)

// Hungarian computes the exact maximum-weight matching with the O(n^3)
// Hungarian (Kuhn–Munkres) algorithm. This is what c-Through-style
// software schedulers run over measured demand to pick the optimal circuit
// configuration — optimal, but far too slow per-slot for nanosecond
// switching, which is the quantitative heart of the paper's argument.
type Hungarian struct {
	n int
}

// NewHungarian returns an exact max-weight arbiter.
func NewHungarian(n int) *Hungarian {
	if n <= 0 {
		panic("match: hungarian needs positive n")
	}
	return &Hungarian{n: n}
}

// Name implements Algorithm.
func (h *Hungarian) Name() string { return "hungarian" }

// Reset implements Algorithm.
func (h *Hungarian) Reset() {}

// Complexity implements Algorithm: the augmenting structure is inherently
// sequential, so even hardware pays ~n^2 depth; software pays n^3.
func (h *Hungarian) Complexity(n int) Complexity {
	return Complexity{HardwareDepth: n * n, SoftwareOps: n * n * n}
}

// Schedule implements Algorithm.
func (h *Hungarian) Schedule(d *demand.Matrix) Matching {
	n := h.n
	maxW := d.Max()
	if maxW == 0 {
		return NewMatching(n)
	}
	// Convert max-weight to min-cost: cost = maxW - w. Zero-demand cells
	// cost maxW (weight 0), so they never displace real demand; they are
	// stripped from the assignment afterwards.
	cost := make([][]int64, n)
	for i := range cost {
		cost[i] = make([]int64, n)
		for j := range cost[i] {
			cost[i][j] = maxW - d.At(i, j)
		}
	}
	assign := hungarianMin(cost)
	m := NewMatching(n)
	for i, j := range assign {
		if d.At(i, j) > 0 {
			m[i] = j
		}
	}
	return m
}

// hungarianMin solves the n x n assignment problem, returning the
// column assigned to each row so that total cost is minimized. Standard
// potentials formulation (u, v potentials; p[j] = row matched to column j).
func hungarianMin(cost [][]int64) []int {
	n := len(cost)
	const inf = math.MaxInt64 / 4
	u := make([]int64, n+1)
	v := make([]int64, n+1)
	p := make([]int, n+1)   // column j is matched to row p[j]; 0 = free
	way := make([]int, n+1) // predecessor column on the alternating path
	minv := make([]int64, n+1)
	used := make([]bool, n+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		for j := 0; j <= n; j++ {
			minv[j] = inf
			used[j] = false
		}
		for {
			used[j0] = true
			i0 := p[j0]
			var delta int64 = inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	ans := make([]int, n)
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			ans[p[j]-1] = j - 1
		}
	}
	return ans
}

func init() {
	Register("hungarian", func(n int, _ uint64) Algorithm { return NewHungarian(n) })
}
