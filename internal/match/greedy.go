package match

import (
	"slices"

	"hybridsched/internal/demand"
)

// Greedy is the largest-demand-first maximal matching: sort all (i, j)
// cells by demand descending and take every cell whose row and column are
// still free. This is the matching heart of Helios-style hybrid
// schedulers — serve the biggest elephants on circuits first. It is a
// 1/2-approximation to the maximum-weight matching with far less work
// than Hungarian.
type Greedy struct {
	n int
	// Scratch reused across Schedule calls: only the nonzero cells are
	// collected and sorted, so a sparse fabric-scale matrix costs
	// O(nonzeros log nonzeros), not O(n² log n).
	edges   []greedyEdge
	out     Matching
	colUsed []bool
}

type greedyEdge struct {
	w    int64
	i, j int
}

// NewGreedy returns a greedy max-weight arbiter.
func NewGreedy(n int) *Greedy {
	if n <= 0 {
		panic("match: greedy needs positive n")
	}
	return &Greedy{n: n, edges: make([]greedyEdge, 0, 4*n),
		out: NewMatching(n), colUsed: make([]bool, n)}
}

// Name implements Algorithm.
func (g *Greedy) Name() string { return "greedy" }

// Reset implements Algorithm.
func (g *Greedy) Reset() {}

// Complexity implements Algorithm: a hardware implementation streams cells
// through a systolic sorter (depth ~ n log n is generous; selection of n
// winners dominates); software pays the full n^2 log n sort.
func (g *Greedy) Complexity(n int) Complexity {
	l := log2ceil(n * n)
	return Complexity{HardwareDepth: n * log2ceil(n), SoftwareOps: n * n * l}
}

// Schedule implements Algorithm.
//
//hybridsched:hotpath
func (g *Greedy) Schedule(d *demand.Matrix) Matching {
	n := g.n
	g.edges = g.edges[:0]
	for i := 0; i < n; i++ {
		row := d.Row(i)
		for k := 0; k < row.Len(); k++ {
			j, w := row.Entry(k)
			g.edges = append(g.edges, greedyEdge{w, i, j})
		}
	}
	// Deterministic: ties break by (i, j). The key is a total order, so
	// the (unstable) sort has a unique result.
	slices.SortFunc(g.edges, func(a, b greedyEdge) int {
		switch {
		case a.w != b.w:
			if a.w > b.w {
				return -1
			}
			return 1
		case a.i != b.i:
			return a.i - b.i
		default:
			return a.j - b.j
		}
	})
	m := g.out
	for i := range m {
		m[i] = Unmatched
	}
	for j := range g.colUsed {
		g.colUsed[j] = false
	}
	for _, e := range g.edges {
		if m[e.i] == Unmatched && !g.colUsed[e.j] {
			m[e.i] = e.j
			g.colUsed[e.j] = true
		}
	}
	return m
}

func init() {
	Register("greedy", func(n int, _ uint64) Algorithm { return NewGreedy(n) })
}
