package match

import (
	"math/bits"
	"slices"

	"hybridsched/internal/demand"
)

// Greedy is the largest-demand-first maximal matching: sort all (i, j)
// cells by demand descending and take every cell whose row and column are
// still free. This is the matching heart of Helios-style hybrid
// schedulers — serve the biggest elephants on circuits first. It is a
// 1/2-approximation to the maximum-weight matching with far less work
// than Hungarian.
type Greedy struct {
	n int
	// Scratch reused across Schedule calls: the nonzero cells are
	// collected by scanning the matrix's row bitsets (64 empty columns
	// skipped per word) and sorted, so a sparse fabric-scale matrix
	// costs O(nonzeros log nonzeros), not O(n² log n).
	edges   []greedyEdge
	out     Matching
	colUsed *demand.Bitset
}

type greedyEdge struct {
	w    int64
	i, j int
}

// NewGreedy returns a greedy max-weight arbiter.
func NewGreedy(n int) *Greedy {
	if n <= 0 {
		panic("match: greedy needs positive n")
	}
	return &Greedy{n: n, edges: make([]greedyEdge, 0, 4*n),
		out: NewMatching(n), colUsed: demand.NewBitset(n)}
}

// Name implements Algorithm.
func (g *Greedy) Name() string { return "greedy" }

// Reset implements Algorithm.
func (g *Greedy) Reset() {}

// Complexity implements Algorithm: a hardware implementation streams cells
// through a systolic sorter (depth ~ n log n is generous; selection of n
// winners dominates). Software pays the bitset-row edge collection plus
// the sort and selection of the nonzero cells, modeled at the reference
// fill (see modelFill).
func (g *Greedy) Complexity(n int) Complexity {
	w := bitsetWords(n)
	nz := modelFill * n
	return Complexity{
		HardwareDepth: n * log2ceil(n),
		SoftwareOps:   n*w + nz*log2ceil(nz) + 2*nz,
	}
}

// Schedule implements Algorithm.
//
//hybridsched:hotpath
func (g *Greedy) Schedule(d *demand.Matrix) Matching {
	n := g.n
	g.edges = g.edges[:0]
	for i := 0; i < n; i++ {
		for wi, word := range d.RowBits(i) {
			for word != 0 {
				j := wi<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				g.edges = append(g.edges, greedyEdge{d.At(i, j), i, j})
			}
		}
	}
	// Deterministic: ties break by (i, j). The key is a total order, so
	// the (unstable) sort has a unique result.
	slices.SortFunc(g.edges, func(a, b greedyEdge) int {
		switch {
		case a.w != b.w:
			if a.w > b.w {
				return -1
			}
			return 1
		case a.i != b.i:
			return a.i - b.i
		default:
			return a.j - b.j
		}
	})
	m := g.out
	for i := range m {
		m[i] = Unmatched
	}
	g.colUsed.Zero()
	for _, e := range g.edges {
		if m[e.i] == Unmatched && !g.colUsed.Test(e.j) {
			m[e.i] = e.j
			g.colUsed.Set(e.j)
		}
	}
	return m
}

func init() {
	Register("greedy", func(n int, _ uint64) Algorithm { return NewGreedy(n) })
}
