package match

import (
	"sort"

	"hybridsched/internal/demand"
)

// Greedy is the largest-demand-first maximal matching: sort all (i, j)
// cells by demand descending and take every cell whose row and column are
// still free. This is the matching heart of Helios-style hybrid
// schedulers — serve the biggest elephants on circuits first. It is a
// 1/2-approximation to the maximum-weight matching with far less work
// than Hungarian.
type Greedy struct {
	n int
	// edge scratch reused across calls to avoid per-slot allocation.
	edges []greedyEdge
}

type greedyEdge struct {
	w    int64
	i, j int
}

// NewGreedy returns a greedy max-weight arbiter.
func NewGreedy(n int) *Greedy {
	if n <= 0 {
		panic("match: greedy needs positive n")
	}
	return &Greedy{n: n, edges: make([]greedyEdge, 0, n*n)}
}

// Name implements Algorithm.
func (g *Greedy) Name() string { return "greedy" }

// Reset implements Algorithm.
func (g *Greedy) Reset() {}

// Complexity implements Algorithm: a hardware implementation streams cells
// through a systolic sorter (depth ~ n log n is generous; selection of n
// winners dominates); software pays the full n^2 log n sort.
func (g *Greedy) Complexity(n int) Complexity {
	l := log2ceil(n * n)
	return Complexity{HardwareDepth: n * log2ceil(n), SoftwareOps: n * n * l}
}

// Schedule implements Algorithm.
func (g *Greedy) Schedule(d *demand.Matrix) Matching {
	n := g.n
	g.edges = g.edges[:0]
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if w := d.At(i, j); w > 0 {
				g.edges = append(g.edges, greedyEdge{w, i, j})
			}
		}
	}
	// Deterministic: ties break by (i, j).
	sort.Slice(g.edges, func(a, b int) bool {
		ea, eb := g.edges[a], g.edges[b]
		if ea.w != eb.w {
			return ea.w > eb.w
		}
		if ea.i != eb.i {
			return ea.i < eb.i
		}
		return ea.j < eb.j
	})
	m := NewMatching(n)
	colUsed := make([]bool, n)
	for _, e := range g.edges {
		if m[e.i] == Unmatched && !colUsed[e.j] {
			m[e.i] = e.j
			colUsed[e.j] = true
		}
	}
	return m
}

func init() {
	Register("greedy", func(n int, _ uint64) Algorithm { return NewGreedy(n) })
}
