package match

import (
	"math/bits"
	"slices"

	"hybridsched/internal/demand"
)

// Greedy is the largest-demand-first maximal matching: sort all (i, j)
// cells by demand descending and take every cell whose row and column are
// still free. This is the matching heart of Helios-style hybrid
// schedulers — serve the biggest elephants on circuits first. It is a
// 1/2-approximation to the maximum-weight matching with far less work
// than Hungarian.
type Greedy struct {
	n int
	// Scratch reused across Schedule calls: the nonzero cells are
	// collected by scanning the matrix's row bitsets (64 empty columns
	// skipped per word) and sorted, so a sparse fabric-scale matrix
	// costs O(nonzeros log nonzeros), not O(n² log n).
	edges    []greedyEdge
	edgesAlt []greedyEdge // radix ping-pong buffer
	out      Matching
	colUsed  *demand.Bitset
}

type greedyEdge struct {
	w    int64
	i, j int
}

// NewGreedy returns a greedy max-weight arbiter.
func NewGreedy(n int) *Greedy {
	if n <= 0 {
		panic("match: greedy needs positive n")
	}
	return &Greedy{n: n, edges: make([]greedyEdge, 0, 4*n),
		out: NewMatching(n), colUsed: demand.NewBitset(n)}
}

// Name implements Algorithm.
func (g *Greedy) Name() string { return "greedy" }

// Reset implements Algorithm.
func (g *Greedy) Reset() {}

// Complexity implements Algorithm: a hardware implementation streams cells
// through a systolic sorter (depth ~ n log n is generous; selection of n
// winners dominates). Software pays the bitset-row edge collection plus
// the sort and selection of the nonzero cells, modeled at the reference
// fill (see modelFill).
func (g *Greedy) Complexity(n int) Complexity {
	w := bitsetWords(n)
	nz := modelFill * n
	return Complexity{
		HardwareDepth: n * log2ceil(n),
		SoftwareOps:   n*w + nz*log2ceil(nz) + 2*nz,
	}
}

// Schedule implements Algorithm.
//
//hybridsched:hotpath
func (g *Greedy) Schedule(d *demand.Matrix) Matching {
	n := g.n
	g.edges = g.edges[:0]
	for i := 0; i < n; i++ {
		for wi, word := range d.RowBits(i) {
			for word != 0 {
				j := wi<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				g.edges = append(g.edges, greedyEdge{d.At(i, j), i, j})
			}
		}
	}
	g.sortEdges()
	m := g.out
	for i := range m {
		m[i] = Unmatched
	}
	g.colUsed.Zero()
	for _, e := range g.edges {
		if m[e.i] == Unmatched && !g.colUsed.Test(e.j) {
			m[e.i] = e.j
			g.colUsed.Set(e.j)
		}
	}
	return m
}

// greedyRadixMin is the edge count below which the comparison sort wins:
// a radix pass pays a fixed 256-bucket histogram regardless of input
// size, so tiny fabrics stay on the comparator.
const greedyRadixMin = 96

// compareGreedyEdges is the deterministic total order the arbiter sorts
// by: weight descending, ties by (i, j) ascending. It doubles as the
// reference the radix path is pinned against.
func compareGreedyEdges(a, b greedyEdge) int {
	switch {
	case a.w != b.w:
		if a.w > b.w {
			return -1
		}
		return 1
	case a.i != b.i:
		return a.i - b.i
	default:
		return a.j - b.j
	}
}

// sortEdges orders g.edges by compareGreedyEdges. Fabric-scale edge
// lists use a stable LSD radix sort over the weights' significant bytes,
// descending within every pass: collection already emitted the cells in
// ascending (i, j) order, so stability IS the comparator's tie order and
// the two paths produce byte-identical permutations
// (TestGreedyRadixMatchesComparator). O(nonzeros) passes replace the
// O(nonzeros log nonzeros) comparison sort that dominated Schedule at
// n >= 1024.
//
//hybridsched:hotpath
func (g *Greedy) sortEdges() {
	edges := g.edges
	if len(edges) < greedyRadixMin {
		slices.SortFunc(edges, compareGreedyEdges)
		return
	}
	var maxW int64
	for k := range edges {
		if edges[k].w > maxW {
			maxW = edges[k].w
		}
	}
	nbytes := (bits.Len64(uint64(maxW)) + 7) / 8
	if cap(g.edgesAlt) < len(edges) {
		//hybridsched:alloc-ok amortized growth of the recycled radix buffer
		g.edgesAlt = make([]greedyEdge, 0, cap(g.edges))
	}
	src, dst := edges, g.edgesAlt[:len(edges)]
	var counts [256]int
	for b := 0; b < nbytes; b++ {
		shift := uint(8 * b)
		for v := range counts {
			counts[v] = 0
		}
		for k := range src {
			counts[(src[k].w>>shift)&0xff]++
		}
		// Higher byte values place first: each stable descending pass
		// over successively more significant bytes yields weight-descending
		// order overall.
		off := 0
		for v := 255; v >= 0; v-- {
			c := counts[v]
			counts[v] = off
			off += c
		}
		for k := range src {
			v := (src[k].w >> shift) & 0xff
			dst[counts[v]] = src[k]
			counts[v]++
		}
		src, dst = dst, src
	}
	if &src[0] != &edges[0] {
		copy(edges, src)
	}
}

func init() {
	Register("greedy", func(n int, _ uint64) Algorithm { return NewGreedy(n) })
}
