// Package host models end hosts for the paper's *slow scheduling* regime
// (Figure 1, top): when the switch cannot buffer a reconfiguration's worth
// of traffic, "packets stored in the host can be passed to the switch only
// at appropriate times, upon a grant from the scheduler". Hosts keep
// per-destination queues, release packets only against grants, and pay the
// host<->switch link latency both for requests and for released data — the
// synchronization burden §2 describes.
package host

import (
	"hybridsched/internal/packet"
	"hybridsched/internal/sim"
	"hybridsched/internal/units"
	"hybridsched/internal/voq"
)

// Config parameterizes the host bank.
type Config struct {
	Ports      int
	NICRate    units.BitRate  // host uplink serialization rate
	LinkDelay  units.Duration // one-way host<->switch propagation
	QueueLimit units.Size     // per-destination queue limit (0 = unlimited)
}

// Bank models all hosts attached to one switch: host i holds a queue per
// destination j.
type Bank struct {
	sim     *sim.Simulator
	cfg     Config
	queues  *voq.Bank
	nicBusy []units.Time
}

// New returns an idle host bank. notify (optional) fires on queue
// empty/non-empty transitions — the host-side scheduling requests.
func New(s *sim.Simulator, cfg Config, notify voq.Notify) *Bank {
	if cfg.Ports <= 0 {
		panic("host: Ports must be positive")
	}
	if cfg.NICRate <= 0 {
		panic("host: NICRate must be positive")
	}
	return &Bank{
		sim:     s,
		cfg:     cfg,
		queues:  voq.NewBank(cfg.Ports, cfg.QueueLimit, notify),
		nicBusy: make([]units.Time, cfg.Ports),
	}
}

// Enqueue buffers p at its source host. It returns false on tail-drop.
func (b *Bank) Enqueue(t units.Time, p *packet.Packet) bool {
	return b.queues.Enqueue(t, p)
}

// Backlog returns queued bits from host in to destination out.
func (b *Bank) Backlog(in, out packet.Port) units.Size {
	return b.queues.Queue(in, out).Bits()
}

// TotalBits returns the aggregate host-side backlog.
func (b *Bank) TotalBits() units.Size { return b.queues.TotalBits() }

// PeakBits returns the aggregate host-buffering high-water mark — the
// Figure 1 "host buffering" measurement.
func (b *Bank) PeakBits() units.Size { return b.queues.PeakBits() }

// Drops returns tail-dropped packets across all host queues.
func (b *Bank) Drops() int64 { return b.queues.Drops() }

// Queues exposes the underlying bank for demand estimation.
func (b *Bank) Queues() *voq.Bank { return b.queues }

// Release dequeues up to budget bits from host in's queue to out and
// transmits them over the host uplink: each packet serializes at NICRate
// (the NIC is shared across destinations, so releases on one host are
// serialized) and arrives at the switch one LinkDelay later via arrive.
// It returns the number of bits released.
//
// Release is called when the grant reaches the host; the caller is
// responsible for having delayed it by the grant propagation time.
func (b *Bank) Release(in, out packet.Port, budget units.Size, arrive func(p *packet.Packet)) units.Size {
	now := b.sim.Now()
	pkts := b.queues.DequeueUpTo(now, in, out, budget)
	var released units.Size
	start := b.nicBusy[in]
	if start < now {
		start = now
	}
	for _, p := range pkts {
		tx := units.TransmitTime(p.Size, b.cfg.NICRate)
		start = start.Add(tx)
		released += p.Size
		p := p
		b.sim.At(start.Add(b.cfg.LinkDelay), func() { arrive(p) })
	}
	b.nicBusy[in] = start
	return released
}
