package host

import (
	"testing"

	"hybridsched/internal/packet"
	"hybridsched/internal/sim"
	"hybridsched/internal/units"
)

func testBank(t *testing.T) (*sim.Simulator, *Bank) {
	t.Helper()
	s := sim.New()
	b := New(s, Config{
		Ports:     4,
		NICRate:   10 * units.Gbps,
		LinkDelay: units.Microsecond,
	}, nil)
	return s, b
}

func TestEnqueueAndBacklog(t *testing.T) {
	_, b := testBank(t)
	p := &packet.Packet{Src: 1, Dst: 2, Size: 1500 * units.Byte}
	if !b.Enqueue(0, p) {
		t.Fatal("enqueue failed")
	}
	if b.Backlog(1, 2) != 1500*units.Byte {
		t.Fatalf("backlog = %v", b.Backlog(1, 2))
	}
	if b.TotalBits() != 1500*units.Byte || b.PeakBits() != 1500*units.Byte {
		t.Fatal("aggregate accounting wrong")
	}
}

func TestReleasePacingAndDelay(t *testing.T) {
	s, b := testBank(t)
	for i := 0; i < 3; i++ {
		b.Enqueue(0, &packet.Packet{ID: uint64(i), Src: 0, Dst: 1, Size: 1500 * units.Byte})
	}
	var arrivals []units.Time
	var ids []uint64
	released := b.Release(0, 1, 10*1500*units.Byte, func(p *packet.Packet) {
		arrivals = append(arrivals, s.Now())
		ids = append(ids, p.ID)
	})
	if released != 3*1500*units.Byte {
		t.Fatalf("released %v", released)
	}
	s.Run()
	if len(arrivals) != 3 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	// 1500B at 10Gbps = 1.2us tx; arrivals at 1.2+1, 2.4+1, 3.6+1 us.
	tx := 1200 * units.Nanosecond
	for i, a := range arrivals {
		want := units.Time(units.Duration(i+1)*tx + units.Microsecond)
		if a != want {
			t.Fatalf("arrival %d at %v, want %v", i, a, want)
		}
		if ids[i] != uint64(i) {
			t.Fatal("order broken")
		}
	}
	if b.Backlog(0, 1) != 0 {
		t.Fatal("queue should be drained")
	}
}

func TestReleaseRespectsBudget(t *testing.T) {
	s, b := testBank(t)
	for i := 0; i < 5; i++ {
		b.Enqueue(0, &packet.Packet{Src: 0, Dst: 1, Size: 1500 * units.Byte})
	}
	released := b.Release(0, 1, 2*1500*units.Byte, func(*packet.Packet) {})
	if released != 2*1500*units.Byte {
		t.Fatalf("released %v, want 2 packets", released)
	}
	if b.Backlog(0, 1) != 3*1500*units.Byte {
		t.Fatalf("backlog = %v", b.Backlog(0, 1))
	}
	s.Run()
}

func TestNICSharedAcrossDestinations(t *testing.T) {
	s, b := testBank(t)
	b.Enqueue(0, &packet.Packet{Src: 0, Dst: 1, Size: 1500 * units.Byte})
	b.Enqueue(0, &packet.Packet{Src: 0, Dst: 2, Size: 1500 * units.Byte})
	var arrivals []units.Time
	b.Release(0, 1, units.Gigabyte, func(*packet.Packet) { arrivals = append(arrivals, s.Now()) })
	b.Release(0, 2, units.Gigabyte, func(*packet.Packet) { arrivals = append(arrivals, s.Now()) })
	s.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	// Second release must queue behind the first on the shared NIC:
	// arrivals 1.2us apart, not simultaneous.
	if arrivals[1].Sub(arrivals[0]) != 1200*units.Nanosecond {
		t.Fatalf("NIC pacing broken: %v vs %v", arrivals[0], arrivals[1])
	}
}

func TestQueueLimitDrops(t *testing.T) {
	s := sim.New()
	b := New(s, Config{
		Ports: 2, NICRate: 10 * units.Gbps,
		QueueLimit: 2000 * units.Byte,
	}, nil)
	b.Enqueue(0, &packet.Packet{Src: 0, Dst: 1, Size: 1500 * units.Byte})
	if b.Enqueue(0, &packet.Packet{Src: 0, Dst: 1, Size: 1500 * units.Byte}) {
		t.Fatal("should tail-drop")
	}
	if b.Drops() != 1 {
		t.Fatalf("drops = %d", b.Drops())
	}
}

func TestValidation(t *testing.T) {
	s := sim.New()
	for _, cfg := range []Config{
		{Ports: 0, NICRate: units.Gbps},
		{Ports: 2, NICRate: 0},
	} {
		func() {
			defer func() { recover() }()
			New(s, cfg, nil)
			t.Errorf("expected panic for %+v", cfg)
		}()
	}
}
