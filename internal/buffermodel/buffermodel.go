// Package buffermodel provides the closed-form arithmetic behind Figure 1
// and the paper's in-text buffering claims ("a 64x64 input-queued switch
// (operating at a rate of 10 Gbps per port) with a millisecond switching
// time results in approximately gigabytes of buffering memory requirement
// ... a nanosecond switching time requires only kilobytes").
//
// The model is deliberately simple — it is the same back-of-envelope the
// paper makes — and the simulation experiments cross-check it: during a
// reconfiguration of length T no port can transmit, so every port
// accumulates up to rate*T*load bits, and a sustained burst multiplies
// that by the number of blocked slots a queue waits before being served.
package buffermodel

import (
	"hybridsched/internal/units"
)

// Params describe the switching infrastructure of Figure 1.
type Params struct {
	Ports    int
	PortRate units.BitRate
	// SwitchingTime is the OCS reconfiguration dead-time.
	SwitchingTime units.Duration
	// Load is the offered load fraction during the buffering interval
	// (Figure 1 is drawn for sustained bursts: load 1).
	Load float64
	// ServiceSlots is how many reconfiguration periods a queue waits
	// before its turn comes (1 = served immediately after the next
	// reconfiguration; n-1 = TDMA round over all peers).
	ServiceSlots int
}

// Defaults64x10G returns the paper's example configuration: 64 ports at
// 10 Gbps, sustained bursts, served after one reconfiguration.
func Defaults64x10G(switching units.Duration) Params {
	return Params{
		Ports:         64,
		PortRate:      10 * units.Gbps,
		SwitchingTime: switching,
		Load:          1.0,
		ServiceSlots:  1,
	}
}

// PerPortBuffer returns the buffering one port needs to absorb arrivals
// during the scheduling/switching blackout.
func (p Params) PerPortBuffer() units.Size {
	if p.SwitchingTime <= 0 || p.Load <= 0 {
		return 0
	}
	slots := p.ServiceSlots
	if slots < 1 {
		slots = 1
	}
	blackout := units.Duration(int64(p.SwitchingTime) * int64(slots))
	bits := units.TransferSize(p.PortRate, blackout)
	return units.Size(float64(bits) * p.Load)
}

// AggregateBuffer returns the switch-wide (or fleet-wide, in the host
// regime) buffering requirement: every port accumulates simultaneously.
func (p Params) AggregateBuffer() units.Size {
	return units.Size(p.Ports) * p.PerPortBuffer()
}

// Placement says where Figure 1 puts the buffer for a given requirement,
// given the memory a ToR switch can realistically dedicate.
type Placement uint8

// Placement values.
const (
	// SwitchBuffered: the requirement fits in ToR memory (fast
	// scheduling, bottom of Figure 1).
	SwitchBuffered Placement = iota
	// HostBuffered: the requirement exceeds ToR memory, so packets must
	// wait at hosts (slow scheduling, top of Figure 1).
	HostBuffered
)

func (p Placement) String() string {
	if p == HostBuffered {
		return "host-buffered"
	}
	return "switch-buffered"
}

// TypicalToRMemory is the order of packet memory in a merchant-silicon ToR
// of the paper's era (tens of MB; e.g. Trident II carried 12 MB).
const TypicalToRMemory = 16 * units.Megabyte

// PlacementFor returns where the buffer must live given available ToR
// packet memory.
func (p Params) PlacementFor(torMemory units.Size) Placement {
	if p.AggregateBuffer() <= torMemory {
		return SwitchBuffered
	}
	return HostBuffered
}

// Point is one sample of the Figure 1 curve.
type Point struct {
	SwitchingTime units.Duration
	PerPort       units.Size
	Aggregate     units.Size
	Placement     Placement
}

// Sweep evaluates the model across switching times, producing the Figure 1
// curve.
func Sweep(base Params, times []units.Duration, torMemory units.Size) []Point {
	out := make([]Point, 0, len(times))
	for _, st := range times {
		p := base
		p.SwitchingTime = st
		out = append(out, Point{
			SwitchingTime: st,
			PerPort:       p.PerPortBuffer(),
			Aggregate:     p.AggregateBuffer(),
			Placement:     p.PlacementFor(torMemory),
		})
	}
	return out
}

// DefaultSweepTimes returns the log-spaced switching times of Figure 1:
// 1 ns to 10 ms, decade steps with a 1-2-5 pattern.
func DefaultSweepTimes() []units.Duration {
	var out []units.Duration
	for _, base := range []units.Duration{units.Nanosecond, units.Microsecond} {
		for _, m := range []int64{1, 2, 5, 10, 20, 50, 100, 200, 500} {
			out = append(out, units.Duration(m)*base)
		}
	}
	for _, m := range []int64{1, 2, 5, 10} {
		out = append(out, units.Duration(m)*units.Millisecond)
	}
	// Deduplicate the decade overlaps (e.g. 1000 ns vs 1 us).
	seen := map[units.Duration]bool{}
	uniq := out[:0]
	for _, d := range out {
		if !seen[d] {
			seen[d] = true
			uniq = append(uniq, d)
		}
	}
	return uniq
}
