package buffermodel

import (
	"testing"

	"hybridsched/internal/units"
)

func TestPaperClaimMillisecondNeedsGigabytes(t *testing.T) {
	// "a 64x64 input-queued switch (operating at a rate of 10 Gbps per
	// port) with a millisecond switching time results in approximately
	// gigabytes of buffering memory requirement" — with a TDMA-style
	// round over peers (ServiceSlots up to n-1) the aggregate crosses
	// 1 GB comfortably; even served-next it is ~80 MB and a handful of
	// blocked slots reaches GBs.
	p := Defaults64x10G(units.Millisecond)
	perPort := p.PerPortBuffer()
	// One port, one blackout: 10 Gbps * 1 ms = 1.25 MB.
	if perPort != units.Size(10_000_000) {
		t.Fatalf("per-port = %v bits, want 10Mb", int64(perPort))
	}
	agg := p.AggregateBuffer()
	if agg.Bytes() < 50e6 {
		t.Fatalf("aggregate %v too small", agg)
	}
	p.ServiceSlots = 16 // a realistic contention round
	if p.AggregateBuffer().Bytes() < 1e9 {
		t.Fatalf("with contention the requirement must reach GBs, got %v",
			p.AggregateBuffer())
	}
}

func TestPaperClaimNanosecondNeedsKilobytes(t *testing.T) {
	// "a nanosecond switching time requires only kilobytes".
	p := Defaults64x10G(units.Nanosecond)
	p.ServiceSlots = 16
	agg := p.AggregateBuffer()
	if agg.Bytes() > 10e3 {
		t.Fatalf("aggregate %v should be kilobytes", agg)
	}
	if agg <= 0 {
		t.Fatal("must be positive")
	}
}

func TestMonotoneInSwitchingTime(t *testing.T) {
	prev := units.Size(-1)
	for _, st := range DefaultSweepTimes() {
		p := Defaults64x10G(st)
		b := p.AggregateBuffer()
		if b < prev {
			t.Fatalf("buffer requirement not monotone at %v", st)
		}
		prev = b
	}
}

func TestLoadScalesLinearly(t *testing.T) {
	full := Defaults64x10G(units.Microsecond)
	half := full
	half.Load = 0.5
	if half.PerPortBuffer()*2 != full.PerPortBuffer() {
		t.Fatalf("load scaling broken: %v vs %v", half.PerPortBuffer(), full.PerPortBuffer())
	}
}

func TestZeroAndNegativeInputs(t *testing.T) {
	p := Defaults64x10G(0)
	if p.PerPortBuffer() != 0 || p.AggregateBuffer() != 0 {
		t.Fatal("zero switching time should need no buffer")
	}
	p = Defaults64x10G(units.Microsecond)
	p.Load = 0
	if p.PerPortBuffer() != 0 {
		t.Fatal("zero load should need no buffer")
	}
	p = Defaults64x10G(units.Microsecond)
	p.ServiceSlots = 0 // clamped to 1
	if p.PerPortBuffer() == 0 {
		t.Fatal("clamping broken")
	}
}

func TestPlacementCrossover(t *testing.T) {
	// With 16 MB of ToR memory, ns switching buffers at the switch and ms
	// switching is forced to the hosts — the two regimes of Figure 1.
	fast := Defaults64x10G(units.Nanosecond)
	if got := fast.PlacementFor(TypicalToRMemory); got != SwitchBuffered {
		t.Fatalf("ns switching: %v, want switch-buffered", got)
	}
	slow := Defaults64x10G(units.Millisecond)
	if got := slow.PlacementFor(TypicalToRMemory); got != HostBuffered {
		t.Fatalf("ms switching: %v, want host-buffered", got)
	}
}

func TestSweepShape(t *testing.T) {
	pts := Sweep(Defaults64x10G(0), DefaultSweepTimes(), TypicalToRMemory)
	if len(pts) < 20 {
		t.Fatalf("sweep too coarse: %d points", len(pts))
	}
	// There must be exactly one regime crossover, and it must be ordered
	// switch->host.
	crossovers := 0
	for i := 1; i < len(pts); i++ {
		if pts[i].Placement != pts[i-1].Placement {
			crossovers++
			if pts[i-1].Placement != SwitchBuffered {
				t.Fatal("crossover in wrong direction")
			}
		}
	}
	if crossovers != 1 {
		t.Fatalf("crossovers = %d, want 1", crossovers)
	}
}

func TestSweepTimesUniqueSorted(t *testing.T) {
	times := DefaultSweepTimes()
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			t.Fatalf("sweep times not strictly increasing at %d: %v", i, times[i])
		}
	}
	if times[0] != units.Nanosecond || times[len(times)-1] != 10*units.Millisecond {
		t.Fatalf("range wrong: %v .. %v", times[0], times[len(times)-1])
	}
}

func TestPlacementString(t *testing.T) {
	if SwitchBuffered.String() != "switch-buffered" || HostBuffered.String() != "host-buffered" {
		t.Fatal("strings wrong")
	}
}
