package units

import (
	"testing"
	"testing/quick"
)

func TestTransmitTimeKnownValues(t *testing.T) {
	cases := []struct {
		size Size
		rate BitRate
		want Duration
	}{
		// A 64 B frame at 10 Gbps takes 51.2 ns.
		{64 * Byte, 10 * Gbps, Duration(51200)},
		// A 1500 B frame at 10 Gbps takes 1.2 us.
		{1500 * Byte, 10 * Gbps, 1200 * Nanosecond},
		// A 64 B frame at 100 Gbps takes 5.12 ns.
		{64 * Byte, 100 * Gbps, Duration(5120)},
		// One bit at 1 bps takes one second.
		{Bit, BitPerSecond, Second},
		// Zero size is instantaneous.
		{0, 10 * Gbps, 0},
	}
	for _, c := range cases {
		if got := TransmitTime(c.size, c.rate); got != c.want {
			t.Errorf("TransmitTime(%v, %v) = %v, want %v", c.size, c.rate, got, c.want)
		}
	}
}

func TestTransmitTimeRoundsUp(t *testing.T) {
	// 1 bit at 3 bps = 333333333333.33 ps; must round up.
	got := TransmitTime(Bit, 3)
	if got != Duration(333333333334) {
		t.Errorf("TransmitTime(1b, 3bps) = %d, want 333333333334", got)
	}
}

func TestTransferSizeKnownValues(t *testing.T) {
	// 10 Gbps for 1 ms carries 10 Mb = 1.25 MB.
	if got := TransferSize(10*Gbps, Millisecond); got != Size(10_000_000) {
		t.Errorf("TransferSize(10Gbps, 1ms) = %d bits, want 10000000", got)
	}
	if got := TransferSize(10*Gbps, 0); got != 0 {
		t.Errorf("TransferSize with zero duration = %d, want 0", got)
	}
}

func TestTransmitTransferRoundTrip(t *testing.T) {
	// Property: transferring for exactly TransmitTime(s, r) carries at
	// least s (ceil rounding can only add capacity).
	f := func(sizeBytes uint16, rateMbps uint16) bool {
		if rateMbps == 0 {
			return true
		}
		s := Size(sizeBytes) * Byte
		r := BitRate(rateMbps) * Mbps
		d := TransmitTime(s, r)
		return TransferSize(r, d) >= s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(0)
	t1 := t0.Add(5 * Microsecond)
	if !t0.Before(t1) || !t1.After(t0) {
		t.Fatal("ordering broken")
	}
	if d := t1.Sub(t0); d != 5*Microsecond {
		t.Fatalf("Sub = %v, want 5us", d)
	}
	if s := t1.Seconds(); s != 5e-6 {
		t.Fatalf("Seconds = %v, want 5e-6", s)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{0, "0s"},
		{Duration(51200), "51.2ns"},
		{1200 * Nanosecond, "1.2us"},
		{Millisecond, "1ms"},
		{2500 * Millisecond, "2.5s"},
		{500 * Picosecond, "500ps"},
		{-Millisecond, "-1ms"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestSizeString(t *testing.T) {
	cases := []struct {
		s    Size
		want string
	}{
		{0, "0B"},
		{64 * Byte, "64B"},
		{1500 * Byte, "1.5KB"},
		{Gigabyte, "1GB"},
		{3 * Bit, "3b"},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.s), got, c.want)
		}
	}
}

func TestBitRateString(t *testing.T) {
	if got := (10 * Gbps).String(); got != "10Gbps" {
		t.Errorf("got %q", got)
	}
	if got := (BitRate(1_600_000_000_000)).String(); got != "1.6Tbps" {
		t.Errorf("got %q", got)
	}
}

func TestParseRoundTrips(t *testing.T) {
	for _, s := range []string{"1ms", "51.2ns", "10us", "2s", "500ps"} {
		d, err := ParseDuration(s)
		if err != nil {
			t.Fatalf("ParseDuration(%q): %v", s, err)
		}
		back, err := ParseDuration(d.String())
		if err != nil || back != d {
			t.Errorf("round trip %q -> %v -> %v (%v)", s, d, back, err)
		}
	}
	if _, err := ParseDuration("10 parsecs"); err == nil {
		t.Error("expected error for bad unit")
	}
	if _, err := ParseDuration("ms"); err == nil {
		t.Error("expected error for missing number")
	}

	r, err := ParseBitRate("10Gbps")
	if err != nil || r != 10*Gbps {
		t.Errorf("ParseBitRate = %v, %v", r, err)
	}
	if _, err := ParseBitRate("10"); err == nil {
		t.Error("expected error for missing unit")
	}

	sz, err := ParseSize("1500B")
	if err != nil || sz != 1500*Byte {
		t.Errorf("ParseSize = %v, %v", sz, err)
	}
	if _, err := ParseSize("xB"); err == nil {
		t.Error("expected error for bad number")
	}
}

func TestTransmitTimePanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for rate 0")
		}
	}()
	TransmitTime(Byte, 0)
}

func TestPaperBufferArithmetic(t *testing.T) {
	// The paper's in-text claim: a 64-port switch at 10 Gbps/port with a
	// 1 ms switching time needs on the order of gigabytes of buffering;
	// with 1 ns switching, kilobytes. Per-port data during reconfig:
	perPortMs := TransferSize(10*Gbps, Millisecond) // bits
	total := Size(64) * perPortMs
	if total.Bytes() < 50e6 { // 80 MB raw; with burst multiple -> GBs
		t.Errorf("ms-scale aggregate buffering %v too small to support the paper's claim", total)
	}
	perPortNs := TransferSize(10*Gbps, Nanosecond)
	totalNs := Size(64) * perPortNs
	if totalNs.Bytes() > 1e3 {
		t.Errorf("ns-scale aggregate buffering %v should be sub-KB per reconfiguration", totalNs)
	}
}
