// Package units provides the fundamental quantities used throughout the
// simulator: simulated time (picosecond resolution), data sizes (bits) and
// bit rates (bits per second), together with overflow-safe arithmetic
// between them.
//
// Picosecond resolution is required because the paper spans switching times
// from nanoseconds to milliseconds and line rates from 1 Gbps to 100 Gbps; a
// 64 B frame at 100 Gbps lasts 5.12 ns, so nanosecond resolution would
// accumulate visible quantization error over a simulation.
package units

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"
)

// Duration is a span of simulated time in picoseconds.
type Duration int64

// Common durations.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Time is an absolute simulated time: picoseconds since simulation start.
type Time int64

// MaxTime is the largest representable simulation instant. It is used as an
// "infinitely far in the future" sentinel.
const MaxTime Time = 1<<63 - 1

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string { return Duration(t).String() }

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Nanoseconds returns the duration as a floating-point number of nanoseconds.
func (d Duration) Nanoseconds() float64 { return float64(d) / float64(Nanosecond) }

// Microseconds returns the duration as a floating-point number of microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Milliseconds returns the duration as a floating-point number of milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// String renders the duration with an auto-selected unit, e.g. "51.2ns".
func (d Duration) String() string {
	if d == 0 {
		return "0s"
	}
	neg := d < 0
	v := float64(d)
	if neg {
		v = -v
	}
	type unit struct {
		div  float64
		name string
	}
	for _, u := range []unit{
		{float64(Second), "s"},
		{float64(Millisecond), "ms"},
		{float64(Microsecond), "us"},
		{float64(Nanosecond), "ns"},
	} {
		if v >= u.div {
			return trimFloat(v/u.div, neg) + u.name
		}
	}
	return trimFloat(v, neg) + "ps"
}

func trimFloat(v float64, neg bool) string {
	s := strconv.FormatFloat(v, 'f', 3, 64)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if neg {
		return "-" + s
	}
	return s
}

// ParseDuration parses strings such as "1ms", "51.2ns", "10us", "2s", "500ps".
func ParseDuration(s string) (Duration, error) {
	v, suffix, err := splitNumber(s)
	if err != nil {
		return 0, fmt.Errorf("units: bad duration %q: %w", s, err)
	}
	var mul Duration
	switch suffix {
	case "ps":
		mul = Picosecond
	case "ns":
		mul = Nanosecond
	case "us", "µs":
		mul = Microsecond
	case "ms":
		mul = Millisecond
	case "s":
		mul = Second
	default:
		return 0, fmt.Errorf("units: bad duration %q: unknown unit %q", s, suffix)
	}
	return Duration(v * float64(mul)), nil
}

// Size is an amount of data in bits.
type Size int64

// Common sizes. Decimal multiples follow network convention (1 KB = 1000 B).
const (
	Bit      Size = 1
	Byte          = 8 * Bit
	Kilobyte      = 1000 * Byte
	Megabyte      = 1000 * Kilobyte
	Gigabyte      = 1000 * Megabyte
	Terabyte      = 1000 * Gigabyte
)

// Bytes returns the size as a floating-point number of bytes.
func (s Size) Bytes() float64 { return float64(s) / float64(Byte) }

// Bits returns the size as an integer number of bits.
func (s Size) Bits() int64 { return int64(s) }

// String renders the size with an auto-selected unit, e.g. "1.5KB".
func (s Size) String() string {
	if s == 0 {
		return "0B"
	}
	neg := s < 0
	v := float64(s)
	if neg {
		v = -v
	}
	type unit struct {
		div  float64
		name string
	}
	for _, u := range []unit{
		{float64(Terabyte), "TB"},
		{float64(Gigabyte), "GB"},
		{float64(Megabyte), "MB"},
		{float64(Kilobyte), "KB"},
		{float64(Byte), "B"},
	} {
		if v >= u.div {
			return trimFloat(v/u.div, neg) + u.name
		}
	}
	return trimFloat(v, neg) + "b"
}

// ParseSize parses strings such as "1500B", "9KB", "1.2GB", "64b" (bits).
func ParseSize(s string) (Size, error) {
	v, suffix, err := splitNumber(s)
	if err != nil {
		return 0, fmt.Errorf("units: bad size %q: %w", s, err)
	}
	var mul Size
	switch suffix {
	case "b":
		mul = Bit
	case "B":
		mul = Byte
	case "KB", "kB":
		mul = Kilobyte
	case "MB":
		mul = Megabyte
	case "GB":
		mul = Gigabyte
	case "TB":
		mul = Terabyte
	default:
		return 0, fmt.Errorf("units: bad size %q: unknown unit %q", s, suffix)
	}
	return Size(v * float64(mul)), nil
}

// BitRate is a transmission rate in bits per second.
type BitRate int64

// Common rates.
const (
	BitPerSecond BitRate = 1
	Kbps                 = 1000 * BitPerSecond
	Mbps                 = 1000 * Kbps
	Gbps                 = 1000 * Mbps
	Tbps                 = 1000 * Gbps
)

// String renders the rate with an auto-selected unit, e.g. "10Gbps".
func (r BitRate) String() string {
	if r == 0 {
		return "0bps"
	}
	neg := r < 0
	v := float64(r)
	if neg {
		v = -v
	}
	type unit struct {
		div  float64
		name string
	}
	for _, u := range []unit{
		{float64(Tbps), "Tbps"},
		{float64(Gbps), "Gbps"},
		{float64(Mbps), "Mbps"},
		{float64(Kbps), "Kbps"},
	} {
		if v >= u.div {
			return trimFloat(v/u.div, neg) + u.name
		}
	}
	return trimFloat(v, neg) + "bps"
}

// ParseBitRate parses strings such as "10Gbps", "100Mbps", "1.6Tbps".
func ParseBitRate(s string) (BitRate, error) {
	v, suffix, err := splitNumber(s)
	if err != nil {
		return 0, fmt.Errorf("units: bad bit rate %q: %w", s, err)
	}
	var mul BitRate
	switch suffix {
	case "bps":
		mul = BitPerSecond
	case "Kbps", "kbps":
		mul = Kbps
	case "Mbps":
		mul = Mbps
	case "Gbps":
		mul = Gbps
	case "Tbps":
		mul = Tbps
	default:
		return 0, fmt.Errorf("units: bad bit rate %q: unknown unit %q", s, suffix)
	}
	return BitRate(v * float64(mul)), nil
}

func splitNumber(s string) (float64, string, error) {
	s = strings.TrimSpace(s)
	i := len(s)
	for i > 0 {
		c := s[i-1]
		if c >= '0' && c <= '9' || c == '.' {
			break
		}
		i--
	}
	if i == 0 || i == len(s) {
		return 0, "", fmt.Errorf("missing number or unit")
	}
	v, err := strconv.ParseFloat(s[:i], 64)
	if err != nil {
		return 0, "", err
	}
	return v, s[i:], nil
}

// TransmitTime returns the time needed to serialize s onto a link of rate r.
// It rounds up to the next picosecond so that back-to-back transmissions
// never overlap. TransmitTime panics if r <= 0.
func TransmitTime(s Size, r BitRate) Duration {
	if r <= 0 {
		panic("units: TransmitTime with non-positive rate")
	}
	if s <= 0 {
		return 0
	}
	// ps = bits * 1e12 / bps, computed in 128 bits to avoid overflow.
	return Duration(mulDivCeil(uint64(s), uint64(Second), uint64(r)))
}

// TransferSize returns the amount of data a link of rate r carries in d.
// It rounds down (partial bits do not arrive).
func TransferSize(r BitRate, d Duration) Size {
	if r <= 0 || d <= 0 {
		return 0
	}
	// bits = bps * ps / 1e12
	return Size(mulDiv(uint64(r), uint64(d), uint64(Second)))
}

// mulDiv returns a*b/c using 128-bit intermediates, truncating.
func mulDiv(a, b, c uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	if hi >= c {
		panic("units: mulDiv overflow")
	}
	q, _ := bits.Div64(hi, lo, c)
	return q
}

// mulDivCeil returns ceil(a*b/c) using 128-bit intermediates.
func mulDivCeil(a, b, c uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	if hi >= c {
		panic("units: mulDivCeil overflow")
	}
	q, r := bits.Div64(hi, lo, c)
	if r > 0 {
		q++
	}
	return q
}
