package runner

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"hybridsched/internal/fabric"
	"hybridsched/internal/sched"
	"hybridsched/internal/trace"
	"hybridsched/internal/traffic"
	"hybridsched/internal/units"
)

func TestMapReturnsResultsInSubmissionOrder(t *testing.T) {
	p := New(8)
	n := 100
	got, err := Map(p, n, func(i int) (int, error) {
		// Uneven work so workers finish out of order.
		v := 0
		for k := 0; k < (i%7)*1000; k++ {
			v += k
		}
		_ = v
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapZeroJobs(t *testing.T) {
	got, err := Map(New(4), 0, func(int) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestMapReportsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 8} {
		p := New(workers)
		errA := errors.New("a")
		errB := errors.New("b")
		_, err := Map(p, 10, func(i int) (int, error) {
			switch i {
			case 2:
				return 0, errB
			case 7:
				return 0, errA
			}
			return i, nil
		})
		if err != errB {
			t.Fatalf("workers=%d: err = %v, want the index-2 error", workers, err)
		}
	}
}

func TestNewDefaultsToGOMAXPROCS(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Fatal("default pool has no workers")
	}
	if New(-3).Workers() < 1 {
		t.Fatal("negative worker count not clamped")
	}
	if got := New(5).Workers(); got != 5 {
		t.Fatalf("Workers() = %d, want 5", got)
	}
}

// scenarioJobs builds a small fan-out of independent, deterministic runs
// with distinguishable loads and derived seeds.
func scenarioJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{
			Fabric: fabric.Config{
				Ports:        4,
				LineRate:     10 * units.Gbps,
				LinkDelay:    500 * units.Nanosecond,
				Slot:         10 * units.Microsecond,
				ReconfigTime: units.Microsecond,
				Algorithm:    "islip",
				Timing:       sched.DefaultHardware(),
				Pipelined:    true,
			},
			Traffic: traffic.Config{
				Ports:    4,
				LineRate: 10 * units.Gbps,
				Load:     0.3 + 0.1*float64(i%4),
				Pattern:  traffic.Uniform{},
				Sizes:    traffic.Fixed{Size: 1500 * units.Byte},
				Seed:     DeriveSeed(1, i),
			},
			Duration: units.Millisecond,
		}
	}
	return jobs
}

func TestRunScenariosDeterministicAcrossWorkerCounts(t *testing.T) {
	jobs := scenarioJobs(6)
	serial, err := New(1).RunScenarios(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		parallel, err := New(workers).RunScenarios(jobs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("metrics differ between 1 and %d workers", workers)
		}
	}
	// The jobs must be distinguishable (different loads/seeds), or the
	// determinism check proves nothing.
	for i := 1; i < len(serial); i++ {
		if reflect.DeepEqual(serial[0], serial[i]) {
			t.Fatalf("jobs 0 and %d produced identical metrics; fan-out is degenerate", i)
		}
	}
}

func TestRunScenariosSurfacesConfigErrors(t *testing.T) {
	jobs := scenarioJobs(3)
	jobs[1].Fabric.Ports = -1
	if _, err := New(4).RunScenarios(jobs); err == nil {
		t.Fatal("expected config error to surface")
	}
}

// TestJobCaptureThenReplay exercises the engine-level trace plumbing: a
// captured job writes a parseable trace, and a job driven by Replay needs
// no workload configuration and reproduces the original metrics exactly.
func TestJobCaptureThenReplay(t *testing.T) {
	var buf bytes.Buffer
	captureJob := scenarioJobs(1)[0]
	captureJob.CaptureTo = &buf
	orig, _, err := captureJob.Run()
	if err != nil {
		t.Fatal(err)
	}
	records, err := trace.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(records)) != orig.Injected {
		t.Fatalf("captured %d records, injected %d packets", len(records), orig.Injected)
	}
	replayJob := scenarioJobs(1)[0]
	replayJob.Traffic = traffic.Config{} // replay must not need a generator
	replayJob.Replay = records
	got, _, err := replayJob.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, orig) {
		t.Fatalf("replay metrics diverge:\n%+v\nvs\n%+v", got, orig)
	}
}

// TestJobReplayRejectsUnsorted: the engine surfaces trace.Replay's
// ordering error instead of running a corrupt schedule.
func TestJobReplayRejectsUnsorted(t *testing.T) {
	job := scenarioJobs(1)[0]
	job.Traffic = traffic.Config{}
	job.Replay = []trace.Record{
		{Time: units.Time(units.Millisecond), ID: 1, Src: 0, Dst: 1, Size: 12000},
		{Time: 0, ID: 2, Src: 1, Dst: 2, Size: 12000},
	}
	if _, _, err := job.Run(); err == nil {
		t.Fatal("expected out-of-order replay to fail")
	}
}

func TestDeriveSeed(t *testing.T) {
	seen := map[uint64]int{}
	for i := 0; i < 1000; i++ {
		s := DeriveSeed(42, i)
		if j, dup := seen[s]; dup {
			t.Fatalf("indices %d and %d collide", j, i)
		}
		seen[s] = i
	}
	if DeriveSeed(42, 7) != DeriveSeed(42, 7) {
		t.Fatal("DeriveSeed not deterministic")
	}
	if DeriveSeed(42, 7) == DeriveSeed(43, 7) {
		t.Fatal("base seed ignored")
	}
}

func BenchmarkMapOverhead(b *testing.B) {
	p := New(0)
	for i := 0; i < b.N; i++ {
		if _, err := Map(p, 64, func(i int) (int, error) { return i, nil }); err != nil {
			b.Fatal(err)
		}
	}
}
