// Package pool is the leaf worker-pool core of the deterministic
// parallel execution engine. It exists below internal/runner so that
// packages runner itself depends on (the matching kernels, most
// notably the frame decomposer's parallel threshold search) can fan
// work out over the same deterministic, submission-ordered Map without
// creating an import cycle. internal/runner re-exports the type, so
// scenario-level callers never see this package.
package pool

import (
	"runtime"
	"sync"
)

// Pool is a fixed-size worker pool. It holds no state between calls; the
// same Pool may be used concurrently and reused freely.
type Pool struct {
	workers int
}

// New returns a pool with the given worker count. A count of zero or less
// selects GOMAXPROCS.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Map runs fn(i) for every i in [0, n) on p's workers and returns the
// results in index order. All jobs run to completion even when some fail;
// the returned error is the failure with the lowest index, so error
// reporting is as deterministic as the results themselves.
func Map[T any](p *Pool, n int, fn func(int) (T, error)) ([]T, error) {
	results := make([]T, n)
	errs := make([]error, n)
	if n == 0 {
		return results, nil
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		// Serial fast path: no goroutines, same submission order.
		for i := 0; i < n; i++ {
			results[i], errs[i] = fn(i)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range jobs {
					results[i], errs[i] = fn(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// MapInto is Map for pre-sized result storage: results[i] = fn(i) with no
// per-call slice allocation, for hot callers that recycle the results
// buffer. results must have length >= n. It returns the failure with the
// lowest index, like Map.
func MapInto[T any](p *Pool, n int, results []T, fn func(int) (T, error)) error {
	if n == 0 {
		return nil
	}
	var firstErr error
	firstIdx := n
	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			var err error
			results[i], err = fn(i)
			if err != nil && i < firstIdx {
				firstErr, firstIdx = err, i
			}
		}
		return firstErr
	}
	var mu sync.Mutex
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				var err error
				results[i], err = fn(i)
				if err != nil {
					mu.Lock()
					if i < firstIdx {
						firstErr, firstIdx = err, i
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return firstErr
}
