// Package runner is the deterministic parallel scenario-execution engine.
//
// The simulation kernel (internal/sim) is deliberately single-threaded;
// parallelism belongs across independent simulation configurations. This
// package provides that layer: a fixed-size worker pool fans Jobs out over
// GOMAXPROCS workers (or any explicit count), and results are collected in
// submission order, so every consumer's output is byte-identical whether it
// ran on one worker or sixty-four.
//
// Three layers ride on it: cmd/sweep parallelizes over sweep values,
// cmd/figures over experiment IDs, and internal/experiments over the
// per-point simulation runs inside each experiment.
package runner

import (
	"runtime"
	"sync"

	"hybridsched/internal/fabric"
	"hybridsched/internal/rng"
	"hybridsched/internal/sim"
	"hybridsched/internal/traffic"
	"hybridsched/internal/units"
)

// Pool is a fixed-size worker pool. It holds no state between calls; the
// same Pool may be used concurrently and reused freely.
type Pool struct {
	workers int
}

// New returns a pool with the given worker count. A count of zero or less
// selects GOMAXPROCS — the whole point of the engine is to keep every core
// busy with independent simulations.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Map runs fn(i) for every i in [0, n) on p's workers and returns the
// results in index order. All jobs run to completion even when some fail;
// the returned error is the failure with the lowest index, so error
// reporting is as deterministic as the results themselves.
func Map[T any](p *Pool, n int, fn func(int) (T, error)) ([]T, error) {
	results := make([]T, n)
	errs := make([]error, n)
	if n == 0 {
		return results, nil
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		// Serial fast path: no goroutines, same submission order.
		for i := 0; i < n; i++ {
			results[i], errs[i] = fn(i)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range jobs {
					results[i], errs[i] = fn(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// Job is one self-contained simulation: a fabric configuration, a workload,
// and how long to offer it. Each Job builds its own simulator, so jobs are
// independent by construction and safe to run concurrently.
type Job struct {
	Fabric  fabric.Config
	Traffic traffic.Config
	// Duration is how long traffic is offered. The run continues for
	// Duration*Drain afterwards so queues flush. Drain defaults to 0.5.
	Duration units.Duration
	Drain    float64
}

// Run executes the job on the calling goroutine and returns the final
// metrics plus the fabric, for callers that want to inspect component
// state post-run.
func (j Job) Run() (fabric.Metrics, *fabric.Fabric, error) {
	drain := j.Drain
	if drain == 0 {
		drain = 0.5
	}
	s := sim.New()
	f, err := fabric.New(s, j.Fabric)
	if err != nil {
		return fabric.Metrics{}, nil, err
	}
	tc := j.Traffic
	if tc.Until == 0 {
		tc.Until = units.Time(j.Duration)
	}
	gen, err := traffic.New(tc)
	if err != nil {
		return fabric.Metrics{}, nil, err
	}
	f.Start()
	gen.Start(s, f.Inject)
	s.RunUntil(units.Time(j.Duration))
	s.RunUntil(units.Time(float64(j.Duration) * (1 + drain)))
	f.Stop()
	return f.Metrics(), f, nil
}

// RunScenarios fans the jobs out over the pool and returns their metrics
// in submission order.
func (p *Pool) RunScenarios(jobs []Job) ([]fabric.Metrics, error) {
	return Map(p, len(jobs), func(i int) (fabric.Metrics, error) {
		m, _, err := jobs[i].Run()
		return m, err
	})
}

// DeriveSeed maps a base seed and a job index to a decorrelated per-job
// seed (splitmix64 of base+index), so a fan-out of related scenarios gets
// independent yet reproducible random streams regardless of which worker
// runs which job.
func DeriveSeed(base uint64, index int) uint64 {
	state := base + uint64(index)*0x9e3779b97f4a7c15
	return rng.SplitMix64(&state)
}
