// Package runner is the deterministic parallel scenario-execution engine.
//
// The simulation kernel (internal/sim) is deliberately single-threaded;
// parallelism belongs across independent simulation configurations. This
// package provides that layer: a fixed-size worker pool fans Jobs out over
// GOMAXPROCS workers (or any explicit count), and results are collected in
// submission order, so every consumer's output is byte-identical whether it
// ran on one worker or sixty-four.
//
// Three layers ride on it: cmd/sweep parallelizes over sweep values,
// cmd/figures over experiment IDs, and internal/experiments over the
// per-point simulation runs inside each experiment.
package runner

import (
	"context"
	"fmt"
	"io"

	"hybridsched/internal/fabric"
	"hybridsched/internal/rng"
	"hybridsched/internal/runner/pool"
	"hybridsched/internal/sim"
	"hybridsched/internal/trace"
	"hybridsched/internal/traffic"
	"hybridsched/internal/units"
)

// DefaultDrain is the drain fraction applied when a Job leaves Drain at
// zero: the run continues for Duration*DefaultDrain after the workload
// stops so queues flush. It is the single source of truth for the default;
// the public Scenario API re-exports it.
const DefaultDrain = 0.5

// Pool is a fixed-size worker pool. It holds no state between calls; the
// same Pool may be used concurrently and reused freely. The pool core
// lives in internal/runner/pool so leaf packages (the matching kernels)
// can share the deterministic Map without importing the scenario engine;
// this struct embeds it and layers the scenario API on top.
type Pool struct {
	pool.Pool
}

// New returns a pool with the given worker count. A count of zero or less
// selects GOMAXPROCS — the whole point of the engine is to keep every core
// busy with independent simulations.
func New(workers int) *Pool {
	return &Pool{Pool: *pool.New(workers)}
}

// Map runs fn(i) for every i in [0, n) on p's workers and returns the
// results in index order. All jobs run to completion even when some fail;
// the returned error is the failure with the lowest index, so error
// reporting is as deterministic as the results themselves.
func Map[T any](p *Pool, n int, fn func(int) (T, error)) ([]T, error) {
	return pool.Map(&p.Pool, n, fn)
}

// Job is one self-contained simulation: a fabric configuration, a workload,
// and how long to offer it. Each Job builds its own simulator, so jobs are
// independent by construction and safe to run concurrently.
type Job struct {
	Fabric  fabric.Config
	Traffic traffic.Config
	// Duration is how long traffic is offered. The run continues for
	// Duration*Drain afterwards so queues flush. Drain defaults to
	// DefaultDrain.
	Duration units.Duration
	Drain    float64
	// SampleEvery, when positive and Observer is set, emits one fabric
	// Sample per interval of simulated time for the whole run (offered
	// traffic plus drain). Sampling is read-only: the simulated event
	// sequence, and therefore every metric, is identical with or without
	// an observer attached.
	SampleEvery units.Duration
	// Observer receives the periodic samples. It is called on the
	// goroutine running the job, in simulated-time order.
	Observer func(fabric.Sample)
	// Replay, when non-empty, replaces the traffic generator: each
	// record's packet is injected at its recorded time, so any captured
	// workload runs bit-identically against any fabric configuration.
	// Traffic is ignored in this mode.
	Replay []trace.Record
	// CaptureTo, when non-nil, receives the offered workload as a
	// complete HSTR trace, written once the run succeeds. Capture taps
	// the injection path read-only: metrics are bit-identical with or
	// without it.
	CaptureTo io.Writer
}

// Run executes the job on the calling goroutine and returns the final
// metrics plus the fabric, for callers that want to inspect component
// state post-run.
func (j Job) Run() (fabric.Metrics, *fabric.Fabric, error) {
	return j.RunContext(context.Background())
}

// EffectiveTraffic returns the workload as the engine will run it: Until
// defaults to the offered Duration. RunContext and the public scenario
// validator share this one copy of the rule.
func (j Job) EffectiveTraffic() traffic.Config {
	tc := j.Traffic
	if tc.Until == 0 {
		tc.Until = units.Time(j.Duration)
	}
	return tc
}

// RunContext is Run under a context: a cancellation or deadline aborts the
// simulation between bounded chunks of simulated time and returns ctx's
// error. A context without cancellation adds zero overhead.
func (j Job) RunContext(ctx context.Context) (fabric.Metrics, *fabric.Fabric, error) {
	if err := ctx.Err(); err != nil {
		return fabric.Metrics{}, nil, err
	}
	if j.Drain < 0 {
		return fabric.Metrics{}, nil, fmt.Errorf("runner: Drain must be non-negative")
	}
	if j.SampleEvery < 0 {
		return fabric.Metrics{}, nil, fmt.Errorf("runner: SampleEvery must be non-negative")
	}
	drain := j.Drain
	if drain == 0 {
		drain = DefaultDrain
	}
	s := sim.New()
	f, err := fabric.New(s, j.Fabric)
	if err != nil {
		return fabric.Metrics{}, nil, err
	}
	emit := f.Inject
	var captured []trace.Record
	if j.CaptureTo != nil {
		emit = trace.Capture(&captured, f.Inject)
	}
	f.Start()
	if len(j.Replay) > 0 {
		// The fabric indexes per-port state by Src/Dst, and records past
		// the offered window would be silently dropped or injected during
		// the drain; both must fail cleanly, not corrupt the run.
		for i, r := range j.Replay {
			if int(r.Src) >= j.Fabric.Ports || int(r.Dst) >= j.Fabric.Ports {
				return fabric.Metrics{}, nil, fmt.Errorf(
					"runner: replay record %d ports (%d->%d) outside the %d-port fabric",
					i, r.Src, r.Dst, j.Fabric.Ports)
			}
			if r.Time > units.Time(j.Duration) {
				return fabric.Metrics{}, nil, fmt.Errorf(
					"runner: replay record %d at %v is beyond the %v offered window",
					i, r.Time, j.Duration)
			}
		}
		if _, err := trace.Replay(s, j.Replay, emit); err != nil {
			return fabric.Metrics{}, nil, err
		}
	} else {
		gen, err := traffic.New(j.EffectiveTraffic())
		if err != nil {
			return fabric.Metrics{}, nil, err
		}
		gen.Start(s, emit)
	}
	var ticker *sim.Ticker
	if j.SampleEvery > 0 && j.Observer != nil {
		ticker = s.NewTicker(j.SampleEvery, func() { j.Observer(f.Sample()) })
	}
	err = runUntil(ctx, s, units.Time(j.Duration))
	if err == nil {
		err = runUntil(ctx, s, units.Time(float64(j.Duration)*(1+drain)))
	}
	if ticker != nil {
		ticker.Stop()
	}
	f.Stop()
	if err != nil {
		return fabric.Metrics{}, nil, err
	}
	if j.CaptureTo != nil {
		if err := trace.WriteAll(j.CaptureTo, captured); err != nil {
			return fabric.Metrics{}, nil, fmt.Errorf("runner: write captured trace: %w", err)
		}
	}
	return f.Metrics(), f, nil
}

// cancelCheckChunks bounds how stale a cancellation can go unnoticed: the
// context is polled this many times across each run phase.
const cancelCheckChunks = 64

// runUntil advances the simulation to t. With a cancellable context it
// runs in chunks of simulated time, polling ctx between chunks, so a
// cancellation lands mid-run instead of after it; the chunking does not
// reorder events and leaves results bit-identical.
func runUntil(ctx context.Context, s *sim.Simulator, t units.Time) error {
	if ctx.Done() == nil {
		s.RunUntil(t)
		return nil
	}
	start := s.Now()
	chunk := t.Sub(start) / cancelCheckChunks
	for k := units.Duration(1); k < cancelCheckChunks && chunk > 0; k++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.RunUntil(start.Add(chunk * k))
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	s.RunUntil(t)
	return ctx.Err()
}

// RunScenarios fans the jobs out over the pool and returns their metrics
// in submission order.
func (p *Pool) RunScenarios(jobs []Job) ([]fabric.Metrics, error) {
	return p.RunScenariosContext(context.Background(), jobs)
}

// RunScenariosContext is RunScenarios under a context: once ctx is
// canceled, running jobs abort and not-yet-started jobs return immediately,
// and the first (lowest-index) error is returned.
func (p *Pool) RunScenariosContext(ctx context.Context, jobs []Job) ([]fabric.Metrics, error) {
	return Map(p, len(jobs), func(i int) (fabric.Metrics, error) {
		m, _, err := jobs[i].RunContext(ctx)
		return m, err
	})
}

// DeriveSeed maps a base seed and a job index to a decorrelated per-job
// seed (splitmix64 of base+index), so a fan-out of related scenarios gets
// independent yet reproducible random streams regardless of which worker
// runs which job.
func DeriveSeed(base uint64, index int) uint64 {
	state := base + uint64(index)*0x9e3779b97f4a7c15
	return rng.SplitMix64(&state)
}
