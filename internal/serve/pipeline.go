package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"hybridsched/internal/demand"
	"hybridsched/internal/match"
)

// This file splits the epoch loop into a staged pipeline:
//
//	ingest -> estimate -> match -> commit
//
// Each stage runs on its own goroutine and the stages are connected by
// bounded rings of recycled epoch slots, so stage k of epoch e overlaps
// stage k-1 of epoch e+1: the workload generator produces epoch e+1's
// arrivals while the matcher is still arbitrating epoch e, and frame
// fan-out for epoch e overlaps the snapshot and matching of e+1.
//
// The pipeline produces byte-identical frames to the sequential Step
// loop. Three orderings make that hold:
//
//   - Ingest never touches the pending matrix. Source offers are
//     buffered into the epoch's slot and applied by the estimate stage,
//     so a source running several epochs ahead cannot leak demand into
//     an earlier snapshot.
//   - The estimate stage takes a token from drainDone (capacity 1,
//     seeded) before applying its buffer and snapshotting, and the
//     commit stage returns the token after draining — so the snapshot
//     of epoch e sees exactly the drains of epochs < e, as in the
//     sequential loop.
//   - A frame's backlog is computed as snap.Total() - servedBits, which
//     equals the sequential loop's post-drain pending.Total(): pending
//     at snapshot time IS the snapshot, and the drain is its only
//     subtractor.
//
// The matching algorithm itself is stateful and stays serialized inside
// the single match-stage goroutine, in epoch order. Its output shares
// the algorithm's scratch, so the match stage copies it into slot-owned
// storage before handing the slot downstream; commit of epoch e may then
// overlap the Schedule call of epoch e+1.
//
// All slot storage (snapshot matrices, matchings, offer buffers) is
// allocated once in NewPipeline and recycled through the free ring, so a
// steady-state pipelined epoch is allocation-free like Step
// (BenchmarkPipelineEpoch pins this).

// DefaultPipelineDepth is the slot-ring capacity used when
// NewPipeline is given a depth of zero: enough for every stage to hold
// one epoch in flight plus one slot of slack between ingest and
// estimate.
const DefaultPipelineDepth = 3

// pipeOffer is one buffered source offer.
type pipeOffer struct {
	src, dst int
	bits     int64
}

// epochSlot carries one epoch through the pipeline. Slots are
// preallocated and recycled through the free ring.
type epochSlot struct {
	offers []pipeOffer    // ingest: one epoch of source arrivals
	snap   *demand.Matrix // estimate: pending demand at epoch start
	match  match.Matching // match: slot-owned copy of the decision
	t0     time.Time      // ingest dequeue time, when metrics are on
}

// Pipeline is the staged epoch loop of one Scheduler. Create with
// NewPipeline, drive with RunEpochs, release with Close. A Pipeline
// holds the scheduler's step lock for the duration of each RunEpochs
// call, so pipelined and sequential stepping cannot interleave.
type Pipeline struct {
	s     *Scheduler
	depth int

	free      chan *epochSlot
	slots     []*epochSlot // for Close
	drainDone chan struct{}

	// ingestSlot is the slot the ingest stage is currently filling; the
	// prebound offer func writes into it without a per-epoch closure.
	ingestSlot  *epochSlot
	ingestOffer func(src, dst int, bits int64)

	mu     sync.Mutex
	closed bool
}

// NewPipeline builds a staged pipeline over s with the given slot-ring
// depth (zero selects DefaultPipelineDepth). All per-epoch storage is
// allocated here.
func NewPipeline(s *Scheduler, depth int) (*Pipeline, error) {
	if depth < 0 {
		return nil, fmt.Errorf("serve: pipeline depth must be non-negative, have %d", depth)
	}
	if depth == 0 {
		depth = DefaultPipelineDepth
	}
	p := &Pipeline{
		s:         s,
		depth:     depth,
		free:      make(chan *epochSlot, depth),
		drainDone: make(chan struct{}, 1),
	}
	for i := 0; i < depth; i++ {
		slot := &epochSlot{
			snap:  demand.FromPool(s.cfg.Ports),
			match: match.NewMatching(s.cfg.Ports),
		}
		p.slots = append(p.slots, slot)
		p.free <- slot //hybridsched:unbounded-ok filling the ring to its own capacity; cannot block
	}
	p.ingestOffer = p.bufferOffer
	return p, nil
}

// bufferOffer validates and buffers one source offer into the slot the
// ingest stage is filling. It runs on the ingest goroutine only.
//
//hybridsched:hotpath
func (p *Pipeline) bufferOffer(src, dst int, bits int64) {
	ports := p.s.cfg.Ports
	if bits <= 0 || src == dst || src < 0 || src >= ports || dst < 0 || dst >= ports {
		return
	}
	p.ingestSlot.offers = append(p.ingestSlot.offers, pipeOffer{src: src, dst: dst, bits: bits})
}

// RunEpochs drives n epochs through the pipeline, delivering every frame
// in epoch order: to subscribers via the scheduler's usual publish path,
// and to onFrame (when non-nil) before the slot is recycled — the
// frame's Match is slot-owned and valid only during the callback; Clone
// it to keep it. RunEpochs returns early with ctx.Err() on cancellation
// and ErrClosed if the scheduler or pipeline closes mid-run.
func (p *Pipeline) RunEpochs(ctx context.Context, n int, onFrame func(Frame)) error {
	if n <= 0 {
		return nil
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.mu.Unlock()

	s := p.s
	s.stepMu.Lock()
	defer s.stepMu.Unlock()

	// Stage rings. Buffered to the slot-ring depth, so a stalled stage
	// backpressures its upstream instead of growing a queue.
	ingested := make(chan *epochSlot, p.depth)
	estimated := make(chan *epochSlot, p.depth)
	matched := make(chan *epochSlot, p.depth)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Seed the drain token: epoch 1 has no predecessor to wait for.
	select {
	case <-p.drainDone:
	default:
	}
	p.drainDone <- struct{}{} //hybridsched:unbounded-ok capacity-1 token just drained above; cannot block

	// recycle returns a slot a stage still holds when it exits early, so
	// an aborted run never shrinks the free ring. The ring's capacity is
	// the total slot count, so the send cannot block; the select keeps the
	// guarantee local.
	recycle := func(slot *epochSlot) {
		select {
		case p.free <- slot:
		default:
		}
	}

	// Stage 1 — ingest: run the source one epoch ahead, buffering its
	// offers into the slot.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(ingested)
		for e := 0; e < n; e++ {
			var slot *epochSlot
			select {
			case slot = <-p.free:
			case <-stop:
				return
			}
			if s.ins != nil {
				slot.t0 = stepStart()
			}
			slot.offers = slot.offers[:0]
			if s.cfg.Source != nil {
				p.ingestSlot = slot
				s.cfg.Source.Advance(p.ingestOffer)
				p.ingestSlot = nil
			}
			select {
			//hybridsched:unbounded-ok stage ring backpressure by design: the consumer is the in-process estimate stage, not a subscriber, and stop aborts the wait
			case ingested <- slot:
			case <-stop:
				recycle(slot)
				return
			}
		}
	}()

	// Stage 2 — estimate: wait for the previous epoch's drain, apply
	// the buffered arrivals, and snapshot pending demand.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(estimated)
		for slot := range ingested {
			select {
			case <-p.drainDone:
			case <-stop:
				recycle(slot)
				return
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				recycle(slot)
				return
			}
			for _, o := range slot.offers {
				s.pending.Add(o.src, o.dst, o.bits)
				s.offered.Add(o.bits)
				if s.ins != nil {
					s.ins.observeOffer(o.bits)
				}
			}
			slot.snap.CopyFrom(s.pending)
			s.mu.Unlock()
			select {
			//hybridsched:unbounded-ok stage ring backpressure by design: the consumer is the in-process match stage, and stop aborts the wait
			case estimated <- slot:
			case <-stop:
				recycle(slot)
				return
			}
		}
	}()

	// Stage 3 — match: the stateful algorithm runs here, in epoch
	// order, and its scratch output is copied into the slot so commit
	// can overlap the next Schedule call.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(matched)
		for slot := range estimated {
			m := s.schedule(slot.snap)
			copy(slot.match, m)
			select {
			//hybridsched:unbounded-ok stage ring backpressure by design: the consumer is the commit loop on the caller's goroutine, and stop aborts the wait
			case matched <- slot:
			case <-stop:
				recycle(slot)
				return
			}
		}
	}()

	// Stage 4 — commit, on the caller's goroutine: drain served demand,
	// return the drain token, then build and fan out the frame while the
	// upstream stages work on later epochs.
	var err error
	delivered := 0
commit:
	for delivered < n {
		var slot *epochSlot
		var ok bool
		select {
		case slot, ok = <-matched:
			if !ok {
				err = ErrClosed
				break commit
			}
		case <-ctx.Done():
			err = ctx.Err()
			break commit
		}
		var servedBits int64
		var pairs int
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			recycle(slot)
			err = ErrClosed
			break commit
		}
		for in, out := range slot.match {
			if out == match.Unmatched {
				continue
			}
			pairs++
			take := slot.snap.At(in, out)
			if take > s.cfg.SlotBits {
				take = s.cfg.SlotBits
			}
			if take > 0 {
				s.pending.Add(in, out, -take)
				servedBits += take
			}
		}
		s.mu.Unlock()
		p.drainDone <- struct{}{} //hybridsched:unbounded-ok capacity-1 token; estimate consumed it before this epoch reached commit, so the send cannot block

		backlog := slot.snap.Total() - servedBits
		s.served.Add(servedBits)
		epoch := s.epochs.Add(1)
		if pairs == 0 {
			s.idle.Add(1)
		}
		f := Frame{
			Epoch:       epoch,
			Shard:       s.shard,
			Match:       slot.match,
			Pairs:       pairs,
			ServedBits:  servedBits,
			BacklogBits: backlog,
		}
		s.publish(f)
		if s.ins != nil {
			s.ins.observeEpoch(stepElapsed(slot.t0), pairs, servedBits, backlog)
		}
		if onFrame != nil {
			onFrame(f)
		}
		delivered++
		recycle(slot)
	}

	close(stop)
	wg.Wait()
	// Drain any in-flight slots back to the free ring so the next
	// RunEpochs starts clean (stages recycled whatever they held when
	// they exited; these are the slots parked in the rings).
	for _, ch := range []chan *epochSlot{ingested, estimated, matched} {
		for slot := range ch {
			recycle(slot)
		}
	}
	return err
}

// Close releases the pipeline's pooled matrices. The pipeline must not
// be running. Close is idempotent.
func (p *Pipeline) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	for _, slot := range p.slots {
		slot.snap.Release()
		slot.snap = nil
	}
}
