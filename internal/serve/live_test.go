package serve

import (
	"testing"
	"time"

	"hybridsched/internal/metrics"
	"hybridsched/internal/traffic"
	"hybridsched/internal/units"
)

// liveTraffic is the flow-level workload the live-service tests run on:
// empirical flow sizes, Poisson flow arrivals, segmented into MTU packets.
func liveTraffic(ports int, load float64, seed uint64) traffic.Config {
	return traffic.Config{
		Ports:     ports,
		LineRate:  10 * units.Gbps,
		Load:      load,
		Pattern:   traffic.Uniform{},
		Process:   traffic.FlowArrivals,
		FlowSizes: traffic.CacheFollower(),
		Seed:      seed,
	}
}

// TestServeLive10kEpochs is the acceptance run: a service fed by the
// flow-level workload generator for 10k epochs (run under -race via make
// race-smoke), with a slow subscriber attached, holding the backlog
// bounded — the offered load is below what the matching can serve, so
// pending demand cannot grow without bound.
func TestServeLive10kEpochs(t *testing.T) {
	const (
		ports  = 32
		epochs = 10_000
		// One epoch consumes 1 µs of generated workload: at 10 Gbps and
		// 40% load that is ~128 kb offered per epoch across the fabric.
		span = units.Microsecond
		// 32 kb per matched pair per epoch = 32 Gbps of per-line service
		// — 3.2x line rate, enough headroom to drain the bursts of
		// concurrent line-rate flows that collide on one input or output
		// (flow arrivals are open-loop, so a line's instantaneous
		// offered rate is a multiple of the average).
		slotBits = 4000 * 8
	)
	src, err := NewWorkloadSource(liveTraffic(ports, 0.4, 99), span)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestScheduler(t, Config{
		Ports:     ports,
		Algorithm: "islip",
		Seed:      99,
		SlotBits:  slotBits,
		Source:    src,
		Metrics:   metrics.NewRegistry(),
	})
	sub, err := s.Subscribe(8, DropOldest)
	if err != nil {
		t.Fatal(err)
	}
	// A deliberately slow subscriber: drains one frame in sixteen, so the
	// drop policy is exercised for the whole run.
	go func() {
		i := 0
		for range sub.Frames() {
			i++
			if i%16 != 0 {
				continue
			}
		}
	}()

	// Memory bound: with the service provisioned above the offered load,
	// backlog stays within a handful of fabric-wide epochs of work (the
	// measured peak is ~1 Mb during flow collisions). 32 fabric-wide
	// epochs of headroom catches any sustained growth immediately.
	const backlogBound = 32 * ports * slotBits
	var peak int64
	for e := 0; e < epochs; e++ {
		f, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if f.BacklogBits > peak {
			peak = f.BacklogBits
		}
		if f.BacklogBits > backlogBound {
			t.Fatalf("epoch %d: backlog %d bits exceeds bound %d — unbounded growth",
				e, f.BacklogBits, backlogBound)
		}
	}
	st := s.Stats()
	if st.Epochs != epochs {
		t.Fatalf("epochs = %d, want %d", st.Epochs, epochs)
	}
	if st.OfferedBits == 0 || st.ServedBits == 0 {
		t.Fatalf("workload source produced nothing: %+v", st)
	}
	if st.OfferedBits != st.ServedBits+st.BacklogBits {
		t.Fatalf("conservation violated: offered %d != served %d + backlog %d",
			st.OfferedBits, st.ServedBits, st.BacklogBits)
	}

	// The instrumented epoch-latency distribution. The percentile values
	// are wall-clock and machine-dependent, so the deterministic SLO here
	// is structural: every epoch was timed, the percentiles are ordered,
	// and the tail is bounded by a limit generous enough for any CI box
	// (an epoch at these dimensions is tens of microseconds of work).
	if st.Offers == 0 || st.MatchedPairs == 0 {
		t.Fatalf("metric-backed counters empty: %+v", st)
	}
	if st.EpochNsP50 <= 0 {
		t.Fatalf("epoch latency p50 = %d ns, want > 0", st.EpochNsP50)
	}
	if st.EpochNsP50 > st.EpochNsP99 || st.EpochNsP99 > st.EpochNsP999 {
		t.Fatalf("epoch latency percentiles out of order: p50 %d, p99 %d, p999 %d",
			st.EpochNsP50, st.EpochNsP99, st.EpochNsP999)
	}
	const epochSLO = int64(time.Second) // generous: epochs measure in µs
	if st.EpochNsP999 > epochSLO {
		t.Fatalf("epoch latency p999 = %d ns exceeds the %d ns SLO", st.EpochNsP999, epochSLO)
	}
	t.Logf("10k epochs: offered %d Mb, served %d Mb, peak backlog %d kb, dropped %d frames, "+
		"epoch latency p50/p99/p999 = %d/%d/%d ns",
		st.OfferedBits/1e6, st.ServedBits/1e6, peak/1e3, st.Dropped,
		st.EpochNsP50, st.EpochNsP99, st.EpochNsP999)
}

// TestWorkloadSourceDeterminism: the same seed yields the same offer
// stream, epoch by epoch.
func TestWorkloadSourceDeterminism(t *testing.T) {
	type offer struct {
		src, dst int
		bits     int64
	}
	run := func() []offer {
		src, err := NewWorkloadSource(liveTraffic(16, 0.5, 11), 2*units.Microsecond)
		if err != nil {
			t.Fatal(err)
		}
		var got []offer
		for e := 0; e < 200; e++ {
			src.Advance(func(s, d int, b int64) { got = append(got, offer{s, d, b}) })
		}
		return got
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("source produced no offers")
	}
	if len(a) != len(b) {
		t.Fatalf("offer counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("offer %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// timeVaryingTraffic is a pack-style dynamic workload: a permutation
// matrix that rotates every 20 µs under a diurnal load swing — the kind
// of config a declarative scenario pack lowers onto ServiceConfig.Workload.
func timeVaryingTraffic(ports int, seed uint64) traffic.Config {
	return traffic.Config{
		Ports:    ports,
		LineRate: 10 * units.Gbps,
		Load:     0.5,
		Pattern:  traffic.NewRotatingPermutation(ports, 20*units.Microsecond, seed),
		Sizes:    traffic.TrimodalInternet{},
		Profile:  traffic.Diurnal{Period: 200 * units.Microsecond, Floor: 0.2},
		Seed:     seed,
	}
}

// TestWorkloadSourceTimeVarying drives the live source from a
// time-varying workload: the offer stream must stay deterministic, and
// the hotspot churn must be visible through it — the src->dst pairs
// offered early (first rotation epoch) differ from the pairs offered
// after the matrix has rotated.
func TestWorkloadSourceTimeVarying(t *testing.T) {
	type offer struct {
		src, dst int
		bits     int64
	}
	const span = 2 * units.Microsecond
	run := func() (all []offer, early, late map[[2]int]bool) {
		// A fresh config per run: time-varying patterns carry cached
		// state and must not be shared between sources.
		src, err := NewWorkloadSource(timeVaryingTraffic(16, 11), span)
		if err != nil {
			t.Fatal(err)
		}
		early, late = map[[2]int]bool{}, map[[2]int]bool{}
		for e := 0; e < 200; e++ {
			window := early
			if e >= 100 {
				window = late
			}
			src.Advance(func(s, d int, b int64) {
				all = append(all, offer{s, d, b})
				if e < 10 || e >= 100 && e < 110 {
					window[[2]int{s, d}] = true
				}
			})
		}
		return all, early, late
	}
	a, earlyA, lateA := run()
	b, _, _ := run()
	if len(a) == 0 {
		t.Fatal("time-varying source produced no offers")
	}
	if len(a) != len(b) {
		t.Fatalf("offer counts differ between identical runs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("offer %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	if len(earlyA) == 0 || len(lateA) == 0 {
		t.Fatalf("observation windows empty: early %d, late %d", len(earlyA), len(lateA))
	}
	same := len(earlyA) == len(lateA)
	if same {
		for p := range earlyA {
			if !lateA[p] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("src->dst pairs identical before and after the churn period — the rotation is not reaching the live source")
	}
}

func TestWorkloadSourceValidation(t *testing.T) {
	if _, err := NewWorkloadSource(liveTraffic(16, 0.5, 1), 0); err == nil {
		t.Fatal("zero span accepted")
	}
	bad := liveTraffic(16, 0.5, 1)
	bad.FlowSizes = nil
	if _, err := NewWorkloadSource(bad, units.Microsecond); err == nil {
		t.Fatal("invalid traffic config accepted")
	}
}

// TestShardedWorkloadDeterminism: a multi-shard service driven by
// per-shard workload sources produces identical frame sequences at any
// worker count — the serve-mode analogue of the runner's ordering
// guarantee.
func TestShardedWorkloadDeterminism(t *testing.T) {
	run := func(workers int) [][]Frame {
		sh, err := NewSharded(4, workers, Config{
			Ports:     16,
			Algorithm: "islip",
			Seed:      5,
			SlotBits:  1500 * 8,
		}, func(shard int, seed uint64) (Source, error) {
			return NewWorkloadSource(liveTraffic(16, 0.5, seed), units.Microsecond)
		})
		if err != nil {
			t.Fatal(err)
		}
		defer sh.Close()
		out := make([][]Frame, 100)
		for e := range out {
			frames, err := sh.Step()
			if err != nil {
				t.Fatal(err)
			}
			for i := range frames {
				frames[i].Match = frames[i].Match.Clone()
			}
			out[e] = frames
		}
		return out
	}
	serial, parallel := run(1), run(4)
	for e := range serial {
		for sdx := range serial[e] {
			a, b := serial[e][sdx], parallel[e][sdx]
			if a.Epoch != b.Epoch || a.Shard != b.Shard || a.ServedBits != b.ServedBits ||
				a.BacklogBits != b.BacklogBits || !a.Match.Equal(b.Match) {
				t.Fatalf("epoch %d shard %d diverged at %d workers: %+v vs %+v",
					e, sdx, 4, a, b)
			}
		}
	}
	// Shards draw decorrelated workloads: their offer totals differ.
	same := true
	for sdx := 1; sdx < len(serial[99]); sdx++ {
		if serial[99][sdx].BacklogBits != serial[99][0].BacklogBits ||
			serial[99][sdx].ServedBits != serial[99][0].ServedBits {
			same = false
		}
	}
	if same {
		t.Error("all shards identical — per-shard seeds are not decorrelated")
	}
}
