package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"hybridsched/internal/match"
	"hybridsched/internal/trace"
)

func newTestScheduler(t *testing.T, cfg Config) *Scheduler {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"valid", Config{Ports: 8, Algorithm: "islip"}, true},
		{"one port", Config{Ports: 1, Algorithm: "islip"}, false},
		{"unknown algorithm", Config{Ports: 8, Algorithm: "nope"}, false},
		{"negative slot", Config{Ports: 8, Algorithm: "islip", SlotBits: -1}, false},
	}
	for _, tc := range cases {
		_, err := New(tc.cfg)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestOfferStepDrains(t *testing.T) {
	s := newTestScheduler(t, Config{Ports: 4, Algorithm: "islip", SlotBits: 1000})
	if err := s.Offer(0, 1, 2500); err != nil {
		t.Fatal(err)
	}
	if err := s.Offer(2, 3, 700); err != nil {
		t.Fatal(err)
	}
	// Epoch 1: both pairs matched (disjoint), each drained up to SlotBits.
	f, err := s.Step()
	if err != nil {
		t.Fatal(err)
	}
	if f.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1", f.Epoch)
	}
	if f.Pairs != 2 {
		t.Fatalf("pairs = %d, want 2", f.Pairs)
	}
	if f.ServedBits != 1000+700 {
		t.Fatalf("served = %d, want 1700", f.ServedBits)
	}
	if f.BacklogBits != 1500 {
		t.Fatalf("backlog = %d, want 1500", f.BacklogBits)
	}
	// Two more epochs clear the 0->1 remainder.
	if f, err = s.Step(); err != nil || f.ServedBits != 1000 {
		t.Fatalf("epoch 2: frame %+v err %v, want 1000 served", f, err)
	}
	if f, err = s.Step(); err != nil || f.ServedBits != 500 || f.BacklogBits != 0 {
		t.Fatalf("epoch 3: frame %+v err %v, want 500 served, 0 backlog", f, err)
	}
	// Idle epoch: empty matching.
	if f, err = s.Step(); err != nil || f.Pairs != 0 {
		t.Fatalf("epoch 4: frame %+v err %v, want idle", f, err)
	}
	st := s.Stats()
	if st.Epochs != 4 || st.IdleEpochs != 1 || st.OfferedBits != 3200 || st.ServedBits != 3200 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOfferValidation(t *testing.T) {
	s := newTestScheduler(t, Config{Ports: 4, Algorithm: "greedy"})
	if err := s.Offer(0, 4, 1); err == nil {
		t.Error("out-of-range dst accepted")
	}
	if err := s.Offer(-1, 0, 1); err == nil {
		t.Error("negative src accepted")
	}
	if err := s.Offer(0, 1, -5); err == nil {
		t.Error("negative demand accepted")
	}
	// Self-traffic and zero demand are silently ignored.
	if err := s.Offer(2, 2, 100); err != nil {
		t.Errorf("self-traffic: %v", err)
	}
	if err := s.Offer(0, 1, 0); err != nil {
		t.Errorf("zero demand: %v", err)
	}
	if got := s.Stats().OfferedBits; got != 0 {
		t.Errorf("offered = %d, want 0", got)
	}
}

func TestOfferRecords(t *testing.T) {
	s := newTestScheduler(t, Config{Ports: 4, Algorithm: "greedy"})
	recs := []trace.Record{
		{Src: 0, Dst: 1, Size: 1000},
		{Src: 1, Dst: 1, Size: 999}, // self-traffic: skipped
		{Src: 3, Dst: 2, Size: 500},
	}
	if err := s.OfferRecords(recs); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().OfferedBits; got != 1500 {
		t.Fatalf("offered = %d, want 1500", got)
	}
	// A batch with any out-of-range record offers nothing.
	bad := []trace.Record{{Src: 0, Dst: 1, Size: 1}, {Src: 9, Dst: 0, Size: 1}}
	if err := s.OfferRecords(bad); err == nil {
		t.Fatal("out-of-range batch accepted")
	}
	if got := s.Stats().OfferedBits; got != 1500 {
		t.Fatalf("failed batch mutated demand: offered = %d", got)
	}
}

func TestSubscribeDelivery(t *testing.T) {
	s := newTestScheduler(t, Config{Ports: 4, Algorithm: "islip", SlotBits: 100})
	sub, err := s.Subscribe(16, DropOldest)
	if err != nil {
		t.Fatal(err)
	}
	s.Offer(1, 2, 250)
	for i := 0; i < 3; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	want := []int64{100, 100, 50}
	for i, w := range want {
		f := <-sub.Frames()
		if f.Epoch != uint64(i+1) || f.ServedBits != w {
			t.Fatalf("frame %d = %+v, want epoch %d served %d", i, f, i+1, w)
		}
		if f.Match[1] != 2 {
			t.Fatalf("frame %d match = %v, want 1->2", i, f.Match)
		}
	}
	sub.Close()
	if _, ok := <-sub.Frames(); ok {
		t.Fatal("channel open after Close")
	}
	// Steps after unsubscribe don't panic or deliver.
	if _, err := s.Step(); err != nil {
		t.Fatal(err)
	}
}

func TestDropPolicies(t *testing.T) {
	s := newTestScheduler(t, Config{Ports: 4, Algorithm: "greedy", SlotBits: 10})
	oldest, _ := s.Subscribe(2, DropOldest)
	newest, _ := s.Subscribe(2, DropNewest)
	s.Offer(0, 1, 1000)
	const epochs = 6
	for i := 0; i < epochs; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	// DropOldest: buffer holds the two freshest frames.
	if f := <-oldest.Frames(); f.Epoch != epochs-1 {
		t.Errorf("drop-oldest first frame epoch = %d, want %d", f.Epoch, epochs-1)
	}
	if f := <-oldest.Frames(); f.Epoch != epochs {
		t.Errorf("drop-oldest second frame epoch = %d, want %d", f.Epoch, epochs)
	}
	// DropNewest: buffer holds the two earliest frames.
	if f := <-newest.Frames(); f.Epoch != 1 {
		t.Errorf("drop-newest first frame epoch = %d, want 1", f.Epoch)
	}
	if f := <-newest.Frames(); f.Epoch != 2 {
		t.Errorf("drop-newest second frame epoch = %d, want 2", f.Epoch)
	}
	if d := oldest.Dropped(); d != epochs-2 {
		t.Errorf("drop-oldest dropped = %d, want %d", d, epochs-2)
	}
	if d := newest.Dropped(); d != epochs-2 {
		t.Errorf("drop-newest dropped = %d, want %d", d, epochs-2)
	}
	if d := s.Stats().Dropped; d != 2*(epochs-2) {
		t.Errorf("total dropped = %d, want %d", d, 2*(epochs-2))
	}
}

func TestClose(t *testing.T) {
	s, err := New(Config{Ports: 4, Algorithm: "islip"})
	if err != nil {
		t.Fatal(err)
	}
	sub, _ := s.Subscribe(1, DropOldest)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second Close not idempotent:", err)
	}
	if _, ok := <-sub.Frames(); ok {
		t.Fatal("subscription open after scheduler Close")
	}
	if err := s.Offer(0, 1, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Offer after Close = %v, want ErrClosed", err)
	}
	if _, err := s.Step(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Step after Close = %v, want ErrClosed", err)
	}
	if _, err := s.Subscribe(1, DropOldest); !errors.Is(err, ErrClosed) {
		t.Fatalf("Subscribe after Close = %v, want ErrClosed", err)
	}
	sub.Close() // closing an already-closed subscription is fine
}

func TestRunContext(t *testing.T) {
	s := newTestScheduler(t, Config{Ports: 4, Algorithm: "islip"})
	s.Offer(0, 1, 1e6)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx, 100*time.Microsecond) }()
	deadline := time.After(5 * time.Second)
	for s.Epoch() < 3 {
		select {
		case <-deadline:
			t.Fatal("no epochs after 5s")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
	// Run again, stop via Close this time: returns nil.
	go func() { done <- s.Run(context.Background(), 100*time.Microsecond) }()
	time.Sleep(2 * time.Millisecond)
	s.Close()
	if err := <-done; err != nil {
		t.Fatalf("Run after Close = %v, want nil", err)
	}
	if err := s.Run(context.Background(), 0); err == nil {
		t.Fatal("non-positive interval accepted")
	}
}

// TestStepDeterminism pins the serve loop's reproducibility: identical
// configurations fed identical offer sequences produce identical frames.
func TestStepDeterminism(t *testing.T) {
	for _, alg := range []string{"islip", "greedy", "pim"} {
		run := func() []Frame {
			s := newTestScheduler(t, Config{Ports: 8, Algorithm: alg, Seed: 42, SlotBits: 500})
			var frames []Frame
			for e := 0; e < 50; e++ {
				s.Offer((e*3)%8, (e*5+1)%8, int64(100+e*37))
				f, err := s.Step()
				if err != nil {
					t.Fatal(err)
				}
				f.Match = f.Match.Clone()
				frames = append(frames, f)
			}
			return frames
		}
		a, b := run(), run()
		for i := range a {
			if a[i].Epoch != b[i].Epoch || a[i].ServedBits != b[i].ServedBits ||
				a[i].BacklogBits != b[i].BacklogBits || !a[i].Match.Equal(b[i].Match) {
				t.Fatalf("%s: frame %d diverged: %+v vs %+v", alg, i, a[i], b[i])
			}
		}
	}
}

// TestFramesAreValidMatchings: every published matching satisfies the
// crossbar constraint.
func TestFramesAreValidMatchings(t *testing.T) {
	s := newTestScheduler(t, Config{Ports: 8, Algorithm: "islip", SlotBits: 100})
	for e := 0; e < 20; e++ {
		for d := 1; d < 4; d++ {
			s.Offer(e%8, (e+d)%8, 300)
		}
		f, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Match.Validate(); err != nil {
			t.Fatalf("epoch %d: %v", f.Epoch, err)
		}
	}
}

// TestConcurrentOffers hammers the ingest path from many goroutines while
// the scheduler steps, then checks conservation: offered = served +
// backlog.
func TestConcurrentOffers(t *testing.T) {
	s := newTestScheduler(t, Config{Ports: 16, Algorithm: "islip", SlotBits: 1500 * 8})
	const producers = 8
	const offersEach = 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < offersEach; i++ {
				if err := s.Offer((p+i)%16, (p+i*7+1)%16, 1200); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	stop := make(chan struct{})
	var stepErr error
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := s.Step(); err != nil {
					stepErr = err
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	// Drain what's left.
	for s.Stats().BacklogBits > 0 {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if stepErr != nil {
		t.Fatal(stepErr)
	}
	st := s.Stats()
	var wantOffered int64
	for p := 0; p < producers; p++ {
		for i := 0; i < offersEach; i++ {
			if (p+i)%16 != (p+i*7+1)%16 {
				wantOffered += 1200
			}
		}
	}
	if st.OfferedBits != wantOffered {
		t.Fatalf("offered = %d, want %d", st.OfferedBits, wantOffered)
	}
	if st.ServedBits != st.OfferedBits {
		t.Fatalf("conservation violated: offered %d, served %d, backlog %d",
			st.OfferedBits, st.ServedBits, st.BacklogBits)
	}
}

// TestStepOwnedFramesStable: StepOwned's matchings are caller-owned —
// later epochs never rewrite them, unlike Step's scratch frames.
func TestStepOwnedFramesStable(t *testing.T) {
	s := newTestScheduler(t, Config{Ports: 4, Algorithm: "islip", SlotBits: 10})
	s.Offer(0, 1, 100)
	f1, err := s.StepOwned()
	if err != nil {
		t.Fatal(err)
	}
	want := f1.Match.Clone()
	s.Offer(2, 3, 100)
	s.Offer(0, 1, 0) // 0->1 is drained below; force a different matching
	for i := 0; i < 5; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if !f1.Match.Equal(want) {
		t.Fatalf("owned frame rewritten by later epochs: %v, want %v", f1.Match, want)
	}
}

// TestStepFrameScratchContract documents that Step's matching is scratch:
// subscribers get clones that survive subsequent steps.
func TestStepFrameScratchContract(t *testing.T) {
	s := newTestScheduler(t, Config{Ports: 4, Algorithm: "islip", SlotBits: 10})
	sub, _ := s.Subscribe(4, DropOldest)
	s.Offer(0, 1, 100)
	s.Step()
	s.Offer(2, 3, 100)
	s.Step()
	f1 := <-sub.Frames()
	f2 := <-sub.Frames()
	if f1.Match[0] != 1 {
		t.Fatalf("frame 1 match = %v", f1.Match)
	}
	if f2.Match[2] != 3 {
		t.Fatalf("frame 2 match = %v", f2.Match)
	}
	if &f1.Match[0] == &f2.Match[0] {
		t.Fatal("subscriber frames share backing storage")
	}
	var _ match.Matching = f1.Match
}
