package serve

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"hybridsched/internal/metrics"
	"hybridsched/internal/rng"
)

// scriptSource is a deterministic Source: the same seed replays the same
// offer stream epoch by epoch, including the occasional self-pair the
// ingest filters must drop. It allocates nothing per Advance.
type scriptSource struct {
	n, perEpoch int
	r           *rng.Rand
}

func newScriptSource(n, perEpoch int, seed uint64) *scriptSource {
	return &scriptSource{n: n, perEpoch: perEpoch, r: rng.New(seed)}
}

func (s *scriptSource) Advance(offer func(src, dst int, bits int64)) {
	for k := 0; k < s.perEpoch; k++ {
		offer(s.r.Intn(s.n), s.r.Intn(s.n), 1+s.r.Int63n(64000))
	}
}

// frameRecord is a caller-owned copy of a Frame for later comparison.
type frameRecord struct {
	epoch       uint64
	shard       int
	match       []int
	pairs       int
	servedBits  int64
	backlogBits int64
}

func recordFrame(f Frame) frameRecord {
	m := make([]int, len(f.Match))
	copy(m, f.Match)
	return frameRecord{
		epoch: f.Epoch, shard: f.Shard, match: m,
		pairs: f.Pairs, servedBits: f.ServedBits, backlogBits: f.BacklogBits,
	}
}

func compareFrames(t *testing.T, want, got []frameRecord) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("frame count: sequential %d, pipelined %d", len(want), len(got))
	}
	for k := range want {
		w, g := want[k], got[k]
		if w.epoch != g.epoch || w.shard != g.shard || w.pairs != g.pairs ||
			w.servedBits != g.servedBits || w.backlogBits != g.backlogBits {
			t.Fatalf("frame %d differs: sequential %+v, pipelined %+v", k, w, g)
		}
		for i := range w.match {
			if w.match[i] != g.match[i] {
				t.Fatalf("frame %d (epoch %d): match[%d] = %d sequentially, %d pipelined",
					k, w.epoch, i, w.match[i], g.match[i])
			}
		}
	}
}

// TestPipelineFramesByteIdentical is the pipeline's core contract: for
// the same configuration and the same deterministic source, the staged
// pipeline emits exactly the frame sequence the sequential Step loop
// emits — every field of every frame, for stateful round-robin,
// randomized, and greedy arbiters alike.
func TestPipelineFramesByteIdentical(t *testing.T) {
	const n, epochs = 64, 40
	for _, alg := range []string{"islip", "pim", "greedy"} {
		for _, depth := range []int{1, 2, 0 /* default */} {
			t.Run(fmt.Sprintf("%s/depth=%d", alg, depth), func(t *testing.T) {
				cfg := func(seed uint64) Config {
					return Config{
						Ports:     n,
						Algorithm: alg,
						Seed:      7,
						SlotBits:  1500 * 8,
						Source:    newScriptSource(n, 3*n, seed),
						Metrics:   metrics.NewRegistry(),
					}
				}

				seq, err := New(cfg(11))
				if err != nil {
					t.Fatal(err)
				}
				defer seq.Close()
				var want []frameRecord
				for e := 0; e < epochs; e++ {
					f, err := seq.Step()
					if err != nil {
						t.Fatal(err)
					}
					want = append(want, recordFrame(f))
				}

				pip, err := New(cfg(11))
				if err != nil {
					t.Fatal(err)
				}
				defer pip.Close()
				p, err := NewPipeline(pip, depth)
				if err != nil {
					t.Fatal(err)
				}
				defer p.Close()
				var got []frameRecord
				err = p.RunEpochs(context.Background(), epochs, func(f Frame) {
					got = append(got, recordFrame(f))
				})
				if err != nil {
					t.Fatal(err)
				}

				compareFrames(t, want, got)

				ss, ps := seq.Stats(), pip.Stats()
				if ss.OfferedBits != ps.OfferedBits || ss.ServedBits != ps.ServedBits ||
					ss.BacklogBits != ps.BacklogBits || ss.Epochs != ps.Epochs ||
					ss.IdleEpochs != ps.IdleEpochs || ss.Offers != ps.Offers {
					t.Errorf("stats diverge: sequential %+v, pipelined %+v", ss, ps)
				}
			})
		}
	}
}

// TestPipelineInterleavesWithStep verifies that pipelined and sequential
// stepping compose: pipeline runs, manual Steps, and another pipeline run
// continue one epoch stream, identical to stepping sequentially
// throughout.
func TestPipelineInterleavesWithStep(t *testing.T) {
	const n = 32
	cfg := func() Config {
		return Config{Ports: n, Algorithm: "islip", SlotBits: 1500 * 8,
			Source: newScriptSource(n, 2*n, 23)}
	}

	seq, err := New(cfg())
	if err != nil {
		t.Fatal(err)
	}
	defer seq.Close()
	var want []frameRecord
	for e := 0; e < 14; e++ {
		f, err := seq.Step()
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, recordFrame(f))
	}

	pip, err := New(cfg())
	if err != nil {
		t.Fatal(err)
	}
	defer pip.Close()
	p, err := NewPipeline(pip, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var got []frameRecord
	collect := func(f Frame) { got = append(got, recordFrame(f)) }
	if err := p.RunEpochs(context.Background(), 5, collect); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 4; e++ {
		f, err := pip.Step()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, recordFrame(f))
	}
	if err := p.RunEpochs(context.Background(), 5, collect); err != nil {
		t.Fatal(err)
	}

	compareFrames(t, want, got)
}

// TestPipelinePublishesToSubscribers verifies frames flow through the
// usual subscription fan-out, in epoch order.
func TestPipelinePublishesToSubscribers(t *testing.T) {
	const n, epochs = 16, 12
	s, err := New(Config{Ports: n, Algorithm: "greedy", SlotBits: 1500 * 8,
		Source: newScriptSource(n, n, 5)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sub, err := s.Subscribe(epochs, DropNewest)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	p, err := NewPipeline(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.RunEpochs(context.Background(), epochs, nil); err != nil {
		t.Fatal(err)
	}
	if d := sub.Dropped(); d != 0 {
		t.Fatalf("dropped %d frames with an %d-deep buffer", d, epochs)
	}
	for e := uint64(1); e <= epochs; e++ {
		select {
		case f := <-sub.Frames():
			if f.Epoch != e {
				t.Fatalf("subscriber saw epoch %d, want %d", f.Epoch, e)
			}
		default:
			t.Fatalf("subscriber missing epoch %d", e)
		}
	}
}

// TestPipelineContextCancel verifies a canceled run returns ctx.Err() and
// leaves the scheduler and pipeline usable.
func TestPipelineContextCancel(t *testing.T) {
	const n = 16
	s, err := New(Config{Ports: n, Algorithm: "islip", SlotBits: 1500 * 8,
		Source: newScriptSource(n, n, 3)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	p, err := NewPipeline(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	ctx, cancel := context.WithCancel(context.Background())
	stopAt := uint64(4)
	err = p.RunEpochs(ctx, 1<<20, func(f Frame) {
		if f.Epoch == stopAt {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunEpochs after cancel = %v, want context.Canceled", err)
	}
	// Canceled between commits: the epoch counter is wherever the commit
	// stage stopped, and both stepping modes still work.
	if _, err := s.Step(); err != nil {
		t.Fatalf("Step after canceled run: %v", err)
	}
	if err := p.RunEpochs(context.Background(), 3, nil); err != nil {
		t.Fatalf("RunEpochs after canceled run: %v", err)
	}
}

// TestPipelineSchedulerClosed verifies closing the scheduler mid-run
// unblocks the stages and surfaces ErrClosed, and that a closed pipeline
// refuses to run.
func TestPipelineSchedulerClosed(t *testing.T) {
	const n = 16
	s, err := New(Config{Ports: n, Algorithm: "islip", SlotBits: 1500 * 8,
		Source: newScriptSource(n, n, 9)})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	errc := make(chan error, 1)
	go func() {
		errc <- p.RunEpochs(context.Background(), 1<<20, nil)
	}()
	time.Sleep(10 * time.Millisecond)
	s.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("RunEpochs after Close = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunEpochs did not return after scheduler Close")
	}

	p.Close()
	if err := p.RunEpochs(context.Background(), 1, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("RunEpochs on closed pipeline = %v, want ErrClosed", err)
	}
}

// TestPipelineDepthValidation pins the constructor contract.
func TestPipelineDepthValidation(t *testing.T) {
	s, err := New(Config{Ports: 8, Algorithm: "tdma"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := NewPipeline(s, -1); err == nil {
		t.Fatal("NewPipeline(-1) did not error")
	}
	p, err := NewPipeline(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.depth != DefaultPipelineDepth {
		t.Fatalf("default depth = %d, want %d", p.depth, DefaultPipelineDepth)
	}
	if err := p.RunEpochs(context.Background(), 0, nil); err != nil {
		t.Fatalf("RunEpochs(0) = %v, want nil", err)
	}
}

// BenchmarkPipelineEpoch prices one epoch through the staged pipeline,
// source-driven with the ~8 peers/port refill BenchmarkServeEpoch uses —
// the direct comparison for what stage overlap buys over sequential
// stepping. Steady-state epochs allocate nothing; the fixed per-run setup
// (channels, four goroutines) amortizes over b.N.
func BenchmarkPipelineEpoch(b *testing.B) {
	for _, alg := range []string{"islip", "greedy", "tdma"} {
		for _, n := range []int{32, 128, 512} {
			b.Run(fmt.Sprintf("%s/n=%d", alg, n), func(b *testing.B) {
				s, err := New(Config{Ports: n, Algorithm: alg, SlotBits: 1500 * 8,
					Source: &benchSource{n: n}})
				if err != nil {
					b.Fatal(err)
				}
				defer s.Close()
				p, err := NewPipeline(s, 0)
				if err != nil {
					b.Fatal(err)
				}
				defer p.Close()
				if err := p.RunEpochs(context.Background(), 3, nil); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				if err := p.RunEpochs(context.Background(), b.N, nil); err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}

// benchSource replays benchOffer's fixed ~8 peers/port pattern as a
// Source, allocation-free.
type benchSource struct{ n int }

func (bs *benchSource) Advance(offer func(src, dst int, bits int64)) {
	for i := 0; i < bs.n; i++ {
		for k := 1; k <= 8; k++ {
			offer(i, (i+k*7)%bs.n, 1500*8)
		}
	}
}
