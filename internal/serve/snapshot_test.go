package serve

import (
	"bytes"
	"errors"
	"testing"

	"hybridsched/internal/trace"
	"hybridsched/internal/units"
)

// TestSnapshotRoundTrip pins the checkpoint contract end to end:
// Snapshot∘Restore∘Snapshot is byte-identical, the snapshot parses as an
// ordinary HSTR trace, and a restored scheduler replays deterministically.
func TestSnapshotRoundTrip(t *testing.T) {
	a := newTestScheduler(t, Config{Ports: 8, Algorithm: "islip", Seed: 7, SlotBits: 300})
	for e := 0; e < 17; e++ {
		a.Offer(e%8, (e*3+1)%8, int64(1000+e*123))
		if _, err := a.Step(); err != nil {
			t.Fatal(err)
		}
	}
	var snap1 bytes.Buffer
	if err := a.Snapshot(&snap1); err != nil {
		t.Fatal(err)
	}

	// The snapshot is a plain HSTR trace: the standard reader parses it.
	recs, err := trace.ReadAll(bytes.NewReader(snap1.Bytes()))
	if err != nil {
		t.Fatalf("snapshot is not a valid HSTR trace: %v", err)
	}
	if recs[0].Class != snapClassEpoch || recs[0].Time != units.Time(17) {
		t.Fatalf("epoch marker = %+v, want class %d time 17", recs[0], snapClassEpoch)
	}

	b := newTestScheduler(t, Config{Ports: 8, Algorithm: "islip", Seed: 7, SlotBits: 300})
	if err := b.Restore(bytes.NewReader(snap1.Bytes())); err != nil {
		t.Fatal(err)
	}
	if b.Epoch() != 17 {
		t.Fatalf("restored epoch = %d, want 17", b.Epoch())
	}

	// Bit-identical through the trace path: re-snapshotting the restored
	// scheduler reproduces the original bytes exactly.
	var snap2 bytes.Buffer
	if err := b.Snapshot(&snap2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap1.Bytes(), snap2.Bytes()) {
		t.Fatal("snapshot -> restore -> snapshot is not byte-identical")
	}

	// Deterministic replay: two schedulers restored from the same
	// snapshot produce identical frame sequences under identical offers.
	c := newTestScheduler(t, Config{Ports: 8, Algorithm: "islip", Seed: 7, SlotBits: 300})
	if err := c.Restore(bytes.NewReader(snap1.Bytes())); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 25; e++ {
		b.Offer((e*5)%8, (e+1)%8, 400)
		c.Offer((e*5)%8, (e+1)%8, 400)
		fb, err1 := b.Step()
		fc, err2 := c.Step()
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if fb.Epoch != fc.Epoch || fb.ServedBits != fc.ServedBits ||
			fb.BacklogBits != fc.BacklogBits || !fb.Match.Equal(fc.Match) {
			t.Fatalf("restored replay diverged at step %d: %+v vs %+v", e, fb, fc)
		}
	}
}

func TestSnapshotLargeEntryChunking(t *testing.T) {
	const huge = int64(^uint32(0)) + 12345 // needs two records
	a := newTestScheduler(t, Config{Ports: 4, Algorithm: "greedy"})
	if err := a.Offer(1, 2, huge); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := a.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	recs, err := trace.ReadAll(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 { // marker + two chunks
		t.Fatalf("got %d records, want 3", len(recs))
	}
	b := newTestScheduler(t, Config{Ports: 4, Algorithm: "greedy"})
	if err := b.Restore(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := b.Stats().BacklogBits; got != huge {
		t.Fatalf("restored backlog = %d, want %d", got, huge)
	}
}

func TestRestoreErrors(t *testing.T) {
	s := newTestScheduler(t, Config{Ports: 4, Algorithm: "greedy"})
	if err := s.Restore(bytes.NewReader([]byte("not a trace"))); !errors.Is(err, trace.ErrBadTrace) {
		t.Fatalf("garbage restore = %v, want ErrBadTrace", err)
	}
	// No epoch marker.
	var buf bytes.Buffer
	trace.WriteAll(&buf, []trace.Record{{Src: 0, Dst: 1, Size: 5, Class: snapClassDemand}})
	if err := s.Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("restore without epoch marker accepted")
	}
	// Out-of-range ports.
	buf.Reset()
	trace.WriteAll(&buf, []trace.Record{
		{Class: snapClassEpoch},
		{Src: 9, Dst: 1, Size: 5, Class: snapClassDemand},
	})
	if err := s.Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("out-of-range restore accepted")
	}
	// Unknown record class.
	buf.Reset()
	trace.WriteAll(&buf, []trace.Record{{Class: 7}})
	if err := s.Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("unknown class accepted")
	}
	// A failed restore leaves the scheduler usable.
	if err := s.Offer(0, 1, 10); err != nil {
		t.Fatal(err)
	}
}

func TestShardedSnapshotRoundTrip(t *testing.T) {
	mk := func() *Sharded {
		sh, err := NewSharded(3, 1, Config{Ports: 8, Algorithm: "islip", Seed: 3, SlotBits: 200}, nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sh.Close() })
		return sh
	}
	a := mk()
	// Different load and epoch counts per shard; shard 2 stays empty.
	a.Offer(0, 1, 2, 5000)
	a.Offer(1, 3, 4, 7000)
	for e := 0; e < 4; e++ {
		if _, err := a.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Shard(0).Step(); err != nil { // desynchronize epochs
		t.Fatal(err)
	}
	var snap1 bytes.Buffer
	if err := a.Snapshot(&snap1); err != nil {
		t.Fatal(err)
	}
	b := mk()
	if err := b.Restore(bytes.NewReader(snap1.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got, want := b.Shard(0).Epoch(), a.Shard(0).Epoch(); got != want {
		t.Fatalf("shard 0 epoch = %d, want %d", got, want)
	}
	if got, want := b.Shard(2).Epoch(), a.Shard(2).Epoch(); got != want {
		t.Fatalf("shard 2 epoch = %d, want %d", got, want)
	}
	var snap2 bytes.Buffer
	if err := b.Snapshot(&snap2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap1.Bytes(), snap2.Bytes()) {
		t.Fatal("sharded snapshot -> restore -> snapshot is not byte-identical")
	}
	// Restoring into a smaller service fails cleanly.
	small, err := NewSharded(2, 1, Config{Ports: 8, Algorithm: "islip"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer small.Close()
	if err := small.Restore(bytes.NewReader(snap1.Bytes())); err == nil {
		t.Fatal("3-shard snapshot restored into 2-shard service")
	}
}
