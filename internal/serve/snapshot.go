package serve

import (
	"fmt"
	"io"

	"hybridsched/internal/trace"
	"hybridsched/internal/units"
)

// Checkpointing rides the existing HSTR trace machinery: a snapshot is an
// ordinary trace whose records encode the scheduler's pending demand, so
// the same parser, fuzz corpus and error taxonomy cover checkpoints for
// free, and a checkpoint can even be fed back through OfferRecords.
//
// Encoding, one trace per service (single- or multi-shard):
//
//   - One epoch-marker record per shard (Class = snapClassEpoch,
//     Size = 0): Time carries the shard's epoch counter, Flow the shard
//     index. Markers also checkpoint empty shards.
//   - One demand record per nonzero (src, dst) cell (Class =
//     snapClassDemand): Flow is the shard, Size the pending bits.
//     Entries above 2^32-1 bits split into multiple records (Size is
//     uint32), which Restore re-accumulates.
//
// Records are emitted shard by shard, rows ascending, columns ascending —
// a canonical order, so Snapshot∘Restore∘Snapshot is byte-identical.

const (
	snapClassEpoch  = 255
	snapClassDemand = 0
)

// snapshotRecords serializes one shard's state. Callers hold no locks;
// the scheduler locks internally and the result is a consistent cut.
func (s *Scheduler) snapshotRecords(shard int, out []trace.Record) ([]trace.Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	out = append(out, trace.Record{
		Time:  units.Time(s.epochs.Load()),
		Flow:  uint64(shard),
		Class: snapClassEpoch,
	})
	n := s.pending.N()
	for i := 0; i < n; i++ {
		row := s.pending.Row(i)
		for k := 0; k < row.Len(); k++ {
			j, v := row.Entry(k)
			for v > 0 {
				chunk := v
				if chunk > int64(^uint32(0)) {
					chunk = int64(^uint32(0))
				}
				out = append(out, trace.Record{
					Flow:  uint64(shard),
					Src:   uint16(i),
					Dst:   uint16(j),
					Size:  uint32(chunk),
					Class: snapClassDemand,
				})
				v -= chunk
			}
		}
	}
	return out, nil
}

// Snapshot writes the scheduler's state to w as a complete HSTR trace.
// The cut is consistent (taken under the demand lock) and canonical: two
// snapshots of identical state are byte-identical.
func (s *Scheduler) Snapshot(w io.Writer) error {
	recs, err := s.snapshotRecords(0, nil)
	if err != nil {
		return err
	}
	return trace.WriteAll(w, recs)
}

// Restore loads a single-shard snapshot produced by Snapshot into a
// freshly built scheduler, replacing its pending demand and epoch
// counter. The matching algorithm restarts from its initial state (arbiter
// pointers are a fairness optimization, not correctness state), so two
// schedulers restored from the same snapshot produce identical frame
// sequences under identical subsequent offers.
func (s *Scheduler) Restore(r io.Reader) error {
	recs, err := trace.ReadAll(r)
	if err != nil {
		return fmt.Errorf("serve: restore: %w", err)
	}
	return s.restoreShard(recs, 0)
}

// restoreShard applies the records labeled with the given shard index.
func (s *Scheduler) restoreShard(recs []trace.Record, shard int) error {
	var epoch uint64
	var sawMarker bool
	for i, r := range recs {
		if r.Flow != uint64(shard) {
			continue
		}
		switch r.Class {
		case snapClassEpoch:
			epoch = uint64(r.Time)
			sawMarker = true
		case snapClassDemand:
			if int(r.Src) >= s.cfg.Ports || int(r.Dst) >= s.cfg.Ports {
				return fmt.Errorf("serve: restore: record %d ports (%d->%d) outside the %d-port fabric",
					i, r.Src, r.Dst, s.cfg.Ports)
			}
		default:
			return fmt.Errorf("serve: restore: record %d has unknown class %d", i, r.Class)
		}
	}
	if !sawMarker {
		return fmt.Errorf("serve: restore: no epoch marker for shard %d", shard)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.pending.Reset()
	var total int64
	for _, r := range recs {
		if r.Flow != uint64(shard) || r.Class != snapClassDemand {
			continue
		}
		s.pending.Add(int(r.Src), int(r.Dst), int64(r.Size))
		total += int64(r.Size)
	}
	s.alg.Reset()
	s.epochs.Store(epoch)
	s.idle.Store(0)
	s.offered.Store(total)
	s.served.Store(0)
	return nil
}
