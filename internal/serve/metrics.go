package serve

import (
	"strconv"
	"time"

	"hybridsched/internal/metrics"
)

// The scheduler's instrumentation: every serve-layer metric is a
// pre-registered instrument in a metrics.Registry, labeled by shard, so
// recording from the epoch hot path is a handful of atomic updates —
// zero heap allocations, enforced by schedlint's hotpathalloc analyzer
// through the Step closure and pinned by TestServeEpochAllocFree with
// instrumentation enabled.
//
// Metric catalog (see docs/OBSERVABILITY.md):
//
//	hybridsched_serve_epoch_latency_ns       histogram {shard}
//	hybridsched_serve_epochs_total           counter   {shard}
//	hybridsched_serve_idle_epochs_total      counter   {shard}
//	hybridsched_serve_offers_total           counter   {shard}
//	hybridsched_serve_offered_bits_total     counter   {shard}
//	hybridsched_serve_served_bits_total      counter   {shard}
//	hybridsched_serve_matched_pairs_total    counter   {shard}
//	hybridsched_serve_backlog_bits           gauge     {shard}
//	hybridsched_serve_subscribers            gauge     {shard}
//	hybridsched_serve_dropped_frames_total   counter   {shard, policy}
//	hybridsched_serve_frame_decompose_latency_ns  histogram {shard}
//	hybridsched_serve_frames_computed_total       counter   {shard}

// instruments is one scheduler's bound slice of the registry.
type instruments struct {
	epochLatency *metrics.Histogram
	epochs       *metrics.Counter
	idleEpochs   *metrics.Counter
	offers       *metrics.Counter
	offeredBits  *metrics.Counter
	servedBits   *metrics.Counter
	matchedPairs *metrics.Counter
	backlogBits  *metrics.Gauge
	subscribers  *metrics.Gauge
	dropsOldest  *metrics.Counter
	dropsNewest  *metrics.Counter

	// Frame-decomposition attribution, recorded only for frame
	// scheduling algorithms and only on epochs that computed a frame.
	frameLatency   *metrics.Histogram
	framesComputed *metrics.Counter
}

// newInstruments registers (or re-binds, after a restore) the shard's
// instruments. Registration is cold-path; only the returned pointers are
// touched per epoch.
func newInstruments(r *metrics.Registry, shard int) *instruments {
	sh := metrics.Label{Key: "shard", Value: strconv.Itoa(shard)}
	return &instruments{
		epochLatency: r.Histogram("hybridsched_serve_epoch_latency_ns",
			"Wall-clock latency of one scheduling epoch (Step), in nanoseconds.", sh),
		epochs: r.Counter("hybridsched_serve_epochs_total",
			"Completed scheduling epochs.", sh),
		idleEpochs: r.Counter("hybridsched_serve_idle_epochs_total",
			"Epochs whose matching was empty.", sh),
		offers: r.Counter("hybridsched_serve_offers_total",
			"Demand offers ingested (streaming, batch records, and source-driven).", sh),
		offeredBits: r.Counter("hybridsched_serve_offered_bits_total",
			"Total demand ingested, in bits.", sh),
		servedBits: r.Counter("hybridsched_serve_served_bits_total",
			"Total demand drained by computed frames, in bits.", sh),
		matchedPairs: r.Counter("hybridsched_serve_matched_pairs_total",
			"Matched (input, output) pairs across all frames.", sh),
		backlogBits: r.Gauge("hybridsched_serve_backlog_bits",
			"Pending demand after the most recent epoch, in bits.", sh),
		subscribers: r.Gauge("hybridsched_serve_subscribers",
			"Currently registered frame subscribers.", sh),
		dropsOldest: r.Counter("hybridsched_serve_dropped_frames_total",
			"Frames dropped on full subscriber buffers, by drop policy.",
			sh, metrics.Label{Key: "policy", Value: DropOldest.String()}),
		dropsNewest: r.Counter("hybridsched_serve_dropped_frames_total",
			"Frames dropped on full subscriber buffers, by drop policy.",
			sh, metrics.Label{Key: "policy", Value: DropNewest.String()}),
		frameLatency: r.Histogram("hybridsched_serve_frame_decompose_latency_ns",
			"Latency the epoch paid for circuit-frame decomposition (refill epochs only), in nanoseconds.", sh),
		framesComputed: r.Counter("hybridsched_serve_frames_computed_total",
			"Circuit frames decomposed by the scheduling algorithm.", sh),
	}
}

// observeOffer records one accepted offer. On the Source ingest path
// this runs inside the epoch hot loop: atomic adds only.
func (in *instruments) observeOffer(bits int64) {
	in.offers.Inc()
	in.offeredBits.Add(uint64(bits))
}

// observeEpoch records one completed epoch. Called from the Step hot
// path: atomic updates on pre-registered instruments only.
func (in *instruments) observeEpoch(elapsed time.Duration, pairs int, servedBits, backlogBits int64) {
	in.epochLatency.Observe(int64(elapsed))
	in.epochs.Inc()
	if pairs == 0 {
		in.idleEpochs.Inc()
	}
	in.matchedPairs.Add(uint64(pairs))
	in.servedBits.Add(uint64(servedBits))
	in.backlogBits.Set(backlogBits)
}

// observeFrames records one epoch's frame-decomposition work: the
// latency the Schedule call spent producing its frames (with
// compute-ahead this is the adoption cost, not the hidden background
// decomposition) and how many frames it computed. Hot path: atomic
// updates only.
func (in *instruments) observeFrames(elapsed time.Duration, computed int64) {
	in.frameLatency.Observe(int64(elapsed))
	in.framesComputed.Add(uint64(computed))
}

// observeDrop records one dropped frame under the subscription's policy.
func (in *instruments) observeDrop(p DropPolicy) {
	if p == DropNewest {
		in.dropsNewest.Inc()
	} else {
		in.dropsOldest.Inc()
	}
}

// stepStart and stepElapsed read the monotonic clock around one epoch
// for the latency histogram. The readings are observational only — they
// never feed a scheduling decision, a frame, or any other result — so
// the determinism contract is intact.
//
//hybridsched:wallclock observational epoch-latency timing only
func stepStart() time.Time { return time.Now() }

//hybridsched:wallclock observational epoch-latency timing only
func stepElapsed(t0 time.Time) time.Duration { return time.Since(t0) }
