package serve

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"hybridsched/internal/metrics"
)

// TestServeMetricsExposition drives an instrumented scheduler and checks
// that every catalogued serve metric reaches the registry with the right
// shard label and values consistent with Stats, and that the registry's
// Prometheus exposition carries the epoch-latency histogram.
func TestServeMetricsExposition(t *testing.T) {
	reg := metrics.NewRegistry()
	s := newTestScheduler(t, Config{
		Ports:     8,
		Algorithm: "islip",
		SlotBits:  1500 * 8,
		Shard:     3,
		Metrics:   reg,
	})

	// A 1-deep subscriber that never drains: from the second published
	// frame on, every epoch drops one frame under DropOldest.
	sub, err := s.Subscribe(1, DropOldest)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	const epochs = 10
	for e := 0; e < epochs; e++ {
		if err := s.Offer(0, 1, 1500*8); err != nil {
			t.Fatal(err)
		}
		if err := s.Offer(2, 5, 3000*8); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}

	st := s.Stats()
	if st.Offers != 2*epochs {
		t.Errorf("Stats.Offers = %d, want %d", st.Offers, 2*epochs)
	}
	if st.MatchedPairs == 0 {
		t.Error("Stats.MatchedPairs = 0 after non-empty epochs")
	}
	if st.EpochNsP50 <= 0 || st.EpochNsP99 < st.EpochNsP50 {
		t.Errorf("epoch percentiles unset or out of order: p50 %d, p99 %d",
			st.EpochNsP50, st.EpochNsP99)
	}

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`hybridsched_serve_epoch_latency_ns_bucket{shard="3",le="+Inf"} 10`,
		`hybridsched_serve_epochs_total{shard="3"} 10`,
		`hybridsched_serve_offers_total{shard="3"} 20`,
		`hybridsched_serve_offered_bits_total{shard="3"} ` + itoa(epochs*(1500+3000)*8),
		`hybridsched_serve_subscribers{shard="3"} 1`,
		`hybridsched_serve_dropped_frames_total{policy="drop-oldest",shard="3"} ` + itoa(epochs-1),
		`hybridsched_serve_dropped_frames_total{policy="drop-newest",shard="3"} 0`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}

	// Served + backlog gauges agree with Stats.
	if !strings.Contains(out, `hybridsched_serve_served_bits_total{shard="3"} `+itoa64(st.ServedBits)+"\n") {
		t.Errorf("served bits counter disagrees with Stats.ServedBits %d:\n%s", st.ServedBits, out)
	}
	if !strings.Contains(out, `hybridsched_serve_backlog_bits{shard="3"} `+itoa64(st.BacklogBits)+"\n") {
		t.Errorf("backlog gauge disagrees with Stats.BacklogBits %d:\n%s", st.BacklogBits, out)
	}

	sub.Close()
	if got := s.Stats().Subscribers; got != 0 {
		t.Errorf("subscribers after close = %d, want 0", got)
	}
	buf.Reset()
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `hybridsched_serve_subscribers{shard="3"} 0`+"\n") {
		t.Error("subscriber gauge not reset after Subscription.Close")
	}
}

// TestShardedMetricsShared: shards of one service share a registry but
// keep distinct instruments via the shard label.
func TestShardedMetricsShared(t *testing.T) {
	reg := metrics.NewRegistry()
	sh, err := NewSharded(2, 1, Config{
		Ports:     8,
		Algorithm: "islip",
		SlotBits:  1500 * 8,
		Metrics:   reg,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	if err := sh.Offer(1, 0, 1, 1500*8); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Step(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`hybridsched_serve_epochs_total{shard="0"} 1`,
		`hybridsched_serve_epochs_total{shard="1"} 1`,
		`hybridsched_serve_offers_total{shard="0"} 0`,
		`hybridsched_serve_offers_total{shard="1"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func itoa(v int) string     { return strconv.Itoa(v) }
func itoa64(v int64) string { return strconv.FormatInt(v, 10) }

// TestServeFrameDecomposeMetrics: a frame decomposition algorithm behind
// the service attributes its refills — the frames-computed counter
// advances only on refill epochs, the decompose-latency histogram
// records one observation per refill, and per-slot arbiters expose both
// instruments at zero.
func TestServeFrameDecomposeMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	s := newTestScheduler(t, Config{
		Ports:     8,
		Algorithm: "bvn",
		SlotBits:  1500 * 8,
		Shard:     1,
		Metrics:   reg,
	})
	for e := 0; e < 5; e++ {
		if err := s.Offer(0, 1, 1500*8); err != nil {
			t.Fatal(err)
		}
		if err := s.Offer(2, 5, 3000*8); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	fr, ok := s.alg.(interface{ Frames() int64 })
	if !ok {
		t.Fatal("bvn frame scheduler does not expose Frames()")
	}
	if fr.Frames() == 0 {
		t.Fatal("no frames computed after non-empty epochs")
	}
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	want := `hybridsched_serve_frames_computed_total{shard="1"} ` + itoa64(fr.Frames())
	if !strings.Contains(out, want+"\n") {
		t.Errorf("exposition missing %q in:\n%s", want, out)
	}
	histCount := `hybridsched_serve_frame_decompose_latency_ns_bucket{shard="1",le="+Inf"} ` + itoa64(fr.Frames())
	if !strings.Contains(out, histCount+"\n") {
		t.Errorf("exposition missing %q in:\n%s", histCount, out)
	}

	// Per-slot arbiters register the instruments but never record them.
	reg2 := metrics.NewRegistry()
	s2 := newTestScheduler(t, Config{Ports: 8, Algorithm: "islip", SlotBits: 1500 * 8, Metrics: reg2})
	if err := s2.Offer(0, 1, 1500*8); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Step(); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := reg2.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `hybridsched_serve_frames_computed_total{shard="0"} 0`+"\n") {
		t.Errorf("frames-computed not exposed at zero for per-slot arbiter:\n%s", buf.String())
	}
}
