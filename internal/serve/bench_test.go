package serve

import (
	"fmt"
	"testing"
)

// benchOffer replenishes a sparse demand pattern (~8 peers per port, the
// same density BenchmarkMatch uses) so every epoch has work to schedule.
func benchOffer(b *testing.B, s *Scheduler, n int) {
	b.Helper()
	for i := 0; i < n; i++ {
		for k := 1; k <= 8; k++ {
			if err := s.Offer(i, (i+k*7)%n, 1500*8); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkServeEpoch prices one epoch of the online scheduling loop —
// offer refill, snapshot copy, matching, demand drain — with no
// subscribers attached. The per-slot arbiters are allocation-free on
// this path at fabric port counts (the acceptance bar for the serve
// subsystem); run with -benchmem to see it.
func BenchmarkServeEpoch(b *testing.B) {
	for _, alg := range []string{"islip", "greedy", "tdma"} {
		for _, n := range []int{32, 128, 512} {
			b.Run(fmt.Sprintf("%s/n=%d", alg, n), func(b *testing.B) {
				s, err := New(Config{Ports: n, Algorithm: alg, SlotBits: 1500 * 8})
				if err != nil {
					b.Fatal(err)
				}
				defer s.Close()
				// Warm the pooled matrices and algorithm scratch.
				benchOffer(b, s, n)
				if _, err := s.Step(); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					benchOffer(b, s, n)
					if _, err := s.Step(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkServeEpochSubscribed prices the same epoch with a subscriber
// attached: one matching clone per epoch is the whole delta.
func BenchmarkServeEpochSubscribed(b *testing.B) {
	const n = 128
	s, err := New(Config{Ports: n, Algorithm: "islip", SlotBits: 1500 * 8})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	sub, err := s.Subscribe(1, DropOldest)
	if err != nil {
		b.Fatal(err)
	}
	defer sub.Close()
	benchOffer(b, s, n)
	if _, err := s.Step(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchOffer(b, s, n)
		if _, err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
}
