// Package serve runs the paper's scheduling loop — estimate demand,
// compute a matching, apply it, repeat — as a long-lived concurrent
// service instead of a finite simulation. Where internal/runner executes
// closed scenarios to completion, a serve.Scheduler never terminates on
// its own: demand arrives as streaming deltas (Offer / OfferRecords, or a
// pluggable Source such as the flow-level workload generators), a
// registered matching algorithm runs once per epoch, and the computed
// frames stream to any number of subscribers over bounded channels with
// an explicit drop policy.
//
// The epoch hot path rides the sparse demand core: the pending matrix and
// its per-epoch snapshot are pooled demand.Matrix values, the algorithm
// reuses its per-instance scratch, and publishing is skipped when nobody
// subscribes — one epoch at fabric port counts is allocation-free in
// steady state for the per-slot arbiters (BenchmarkServeEpoch).
//
// Scheduler state checkpoints through the existing HSTR trace machinery
// (Snapshot/Restore): the pending backlog serializes as ordinary trace
// records, so a live service can be checkpointed, shipped, and restored
// deterministically with the same tooling that captures workloads.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hybridsched/internal/demand"
	"hybridsched/internal/match"
	"hybridsched/internal/metrics"
	"hybridsched/internal/trace"
)

// DefaultSlotBits is the demand served per matched pair per epoch when
// Config.SlotBits is zero: one 1500-byte frame.
const DefaultSlotBits int64 = 1500 * 8

// ErrClosed is returned by operations on a closed Scheduler.
var ErrClosed = errors.New("serve: scheduler is closed")

// Source feeds the scheduler live demand. Advance is called once at the
// start of every epoch, on the stepping goroutine, and reports one
// epoch's worth of new offered load through offer. The flow-level
// workload generators plug in via NewWorkloadSource.
type Source interface {
	Advance(offer func(src, dst int, bits int64))
}

// Config parameterizes a Scheduler.
type Config struct {
	// Ports is the fabric port count (the demand matrix dimension).
	Ports int
	// Algorithm names the matching algorithm, built-in or registered.
	Algorithm string
	// Seed seeds randomized algorithms.
	Seed uint64
	// SlotBits is the demand served per matched (input, output) pair per
	// epoch — the product of the transmission window and the circuit
	// rate. Zero selects DefaultSlotBits.
	SlotBits int64
	// Source, when non-nil, is advanced one epoch before each schedule
	// computation — the push-free way to drive the service from a
	// workload generator.
	Source Source
	// Shard labels the scheduler's frames and metrics in multi-instance
	// services. NewSharded sets it per shard; standalone schedulers leave
	// it zero.
	Shard int
	// Metrics, when non-nil, is the registry this scheduler's instruments
	// register in: epoch latency, throughput, backlog, and drop metrics,
	// labeled by shard. Recording is allocation-free, so instrumentation
	// does not perturb the epoch hot path. Nil disables instrumentation.
	Metrics *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.SlotBits == 0 {
		c.SlotBits = DefaultSlotBits
	}
	return c
}

// Validate checks the configuration without building anything.
func (c Config) Validate() error {
	if c.Ports < 2 {
		return fmt.Errorf("serve: need at least 2 ports, have %d", c.Ports)
	}
	if !match.Known(c.Algorithm) {
		return fmt.Errorf("serve: unknown algorithm %q (have %v)", c.Algorithm, match.Names())
	}
	if c.SlotBits < 0 {
		return fmt.Errorf("serve: SlotBits must be non-negative")
	}
	if c.Shard < 0 {
		return fmt.Errorf("serve: Shard must be non-negative, have %d", c.Shard)
	}
	return nil
}

// Frame is one epoch's scheduling decision.
type Frame struct {
	// Epoch numbers the decision, starting at 1 for the first Step.
	Epoch uint64
	// Shard identifies the fabric shard in multi-instance services.
	Shard int
	// Match is the computed crossbar configuration. Frames returned by
	// Step share the algorithm's scratch and are valid until the next
	// Step; StepOwned and Sharded.Step return caller-owned clones, and
	// frames delivered to subscribers are cloned too (treat those as
	// read-only — the clone is shared between subscribers).
	Match match.Matching
	// Pairs is the number of matched (input, output) pairs.
	Pairs int
	// ServedBits is the demand drained by this frame, capped per pair at
	// SlotBits.
	ServedBits int64
	// BacklogBits is the total pending demand remaining after the frame.
	BacklogBits int64
}

// Stats is a point-in-time summary of a scheduler's activity. The
// metric-backed fields (Offers, MatchedPairs, and the epoch-latency
// percentiles) are populated only when the scheduler was built with
// Config.Metrics; without a registry they stay zero.
type Stats struct {
	Epochs      uint64
	IdleEpochs  uint64 // epochs with an empty matching
	OfferedBits int64
	ServedBits  int64
	BacklogBits int64
	Subscribers int
	Dropped     uint64 // frames dropped across all subscriptions, ever

	// Offers counts ingested demand offers (streaming calls, batch
	// records, and source-driven offers each count once).
	Offers uint64
	// MatchedPairs counts matched (input, output) pairs across all epochs.
	MatchedPairs uint64
	// EpochNsP50/P99/P999 are upper bounds on the epoch wall-clock latency
	// percentiles in nanoseconds, from the fixed-bucket histogram
	// (quantization error <= 12.5%).
	EpochNsP50  int64
	EpochNsP99  int64
	EpochNsP999 int64
}

// Scheduler is the online scheduling service for one fabric. Create with
// New; feed it with Offer/OfferRecords or a Source; advance it with Step
// (manual, deterministic) or Run (wall-clock epochs); consume frames
// with Subscribe. All methods are safe for concurrent use.
type Scheduler struct {
	cfg   Config
	shard int
	alg   match.Algorithm
	ins   *instruments // nil when Config.Metrics is nil

	// framer is alg when it exposes a frame counter (the frame
	// decomposition schedulers), asserted once at construction so the
	// epoch hot path can attribute decomposition work without a per-step
	// type switch. Nil for per-slot arbiters.
	framer interface{ Frames() int64 }

	mu      sync.Mutex // guards pending and closed
	pending *demand.Matrix
	closed  bool

	// sourceOffer is offerFromSource bound once at construction, so the
	// epoch loop can hand Source.Advance a callback without allocating a
	// closure per step.
	sourceOffer func(src, dst int, bits int64)

	stepMu sync.Mutex // serializes epochs
	snap   *demand.Matrix

	epochs  atomic.Uint64
	idle    atomic.Uint64
	offered atomic.Int64
	served  atomic.Int64

	subMu   sync.Mutex
	subs    []*Subscription
	dropped atomic.Uint64

	done chan struct{}
}

// New validates cfg and assembles a scheduler.
func New(cfg Config) (*Scheduler, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	alg, err := match.New(cfg.Algorithm, cfg.Ports, cfg.Seed)
	if err != nil {
		return nil, err
	}
	s := &Scheduler{
		cfg:     cfg,
		shard:   cfg.Shard,
		alg:     alg,
		pending: demand.FromPool(cfg.Ports),
		snap:    demand.FromPool(cfg.Ports),
		done:    make(chan struct{}),
	}
	if cfg.Metrics != nil {
		s.ins = newInstruments(cfg.Metrics, cfg.Shard)
	}
	s.sourceOffer = s.offerFromSource
	s.framer, _ = alg.(interface{ Frames() int64 })
	// Frame decomposition schedulers pipeline the next frame's
	// decomposition behind the current frame's playback; output is
	// bit-for-bit identical either way, so a long-lived service always
	// opts in. Close tears the worker down with the scheduler.
	if ca, ok := alg.(interface{ EnableComputeAhead() }); ok {
		ca.EnableComputeAhead()
	}
	return s, nil
}

// Ports returns the fabric port count.
func (s *Scheduler) Ports() int { return s.cfg.Ports }

// Epoch returns the number of completed epochs.
func (s *Scheduler) Epoch() uint64 { return s.epochs.Load() }

// Offer adds bits of pending demand from src to dst — the streaming
// ingest path. It is cheap (one sparse matrix update under a mutex) and
// safe to call from any number of goroutines.
func (s *Scheduler) Offer(src, dst int, bits int64) error {
	if src < 0 || src >= s.cfg.Ports || dst < 0 || dst >= s.cfg.Ports {
		return fmt.Errorf("serve: offer (%d->%d) outside the %d-port fabric", src, dst, s.cfg.Ports)
	}
	if bits < 0 {
		return fmt.Errorf("serve: offer (%d->%d) of negative demand %d", src, dst, bits)
	}
	if bits == 0 || src == dst {
		return nil // self-traffic never crosses the fabric
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.pending.Add(src, dst, bits)
	s.offered.Add(bits)
	if s.ins != nil {
		s.ins.observeOffer(bits)
	}
	return nil
}

// OfferRecords ingests a batch of HSTR trace records as demand — the
// bridge from captured workloads to the live service. Record times are
// ignored (the service is open-loop); sizes accumulate as offered bits.
// Records are validated first, so a failed batch offers nothing.
func (s *Scheduler) OfferRecords(recs []trace.Record) error {
	for i, r := range recs {
		if int(r.Src) >= s.cfg.Ports || int(r.Dst) >= s.cfg.Ports {
			return fmt.Errorf("serve: record %d ports (%d->%d) outside the %d-port fabric",
				i, r.Src, r.Dst, s.cfg.Ports)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	var total int64
	var n uint64
	for _, r := range recs {
		if r.Src == r.Dst {
			continue
		}
		s.pending.Add(int(r.Src), int(r.Dst), int64(r.Size))
		total += int64(r.Size)
		n++
	}
	s.offered.Add(total)
	if s.ins != nil {
		s.ins.offers.Add(n)
		s.ins.offeredBits.Add(uint64(total))
	}
	return nil
}

// offerLocked is the Source ingest path: called on the stepping goroutine
// with s.mu already held, bounds pre-checked by the matrix itself.
func (s *Scheduler) offerLocked(src, dst int, bits int64) {
	if bits <= 0 || src == dst ||
		src < 0 || src >= s.cfg.Ports || dst < 0 || dst >= s.cfg.Ports {
		return
	}
	s.pending.Add(src, dst, bits)
	s.offered.Add(bits)
	if s.ins != nil {
		s.ins.observeOffer(bits)
	}
}

// offerFromSource ingests one Source-generated offer under the demand
// lock. It is the target of the prebound sourceOffer field.
//
//hybridsched:hotpath
func (s *Scheduler) offerFromSource(src, dst int, bits int64) {
	s.mu.Lock()
	if !s.closed {
		s.offerLocked(src, dst, bits)
	}
	s.mu.Unlock()
}

// Step runs one epoch synchronously: advance the Source (if any),
// snapshot pending demand, run the algorithm, drain what the matching
// serves, and publish the frame to subscribers. The returned Frame's
// Match shares the algorithm's scratch and is valid until the next Step;
// use StepOwned (or Clone it before another Step can run) to keep it.
// Step is the deterministic way to drive the service (tests, replay);
// Run wraps it in a wall-clock loop.
//
//hybridsched:hotpath
func (s *Scheduler) Step() (Frame, error) {
	s.stepMu.Lock()
	defer s.stepMu.Unlock()
	return s.step()
}

// StepOwned is Step returning a caller-owned frame: the matching is
// cloned before the step lock is released, so it can never be rewritten
// by a later epoch. This is the step the fan-out and network layers use;
// Step itself stays allocation-free for single-owner hot loops.
func (s *Scheduler) StepOwned() (Frame, error) {
	s.stepMu.Lock()
	defer s.stepMu.Unlock()
	f, err := s.step()
	if err == nil {
		f.Match = f.Match.Clone()
	}
	return f, err
}

// step runs one epoch; the caller holds stepMu.
func (s *Scheduler) step() (Frame, error) {
	var t0 time.Time
	if s.ins != nil {
		t0 = stepStart()
	}
	if s.cfg.Source != nil {
		// The source runs outside the demand lock: generators may do
		// real work (simulating an epoch of arrivals), and offers are
		// taken one at a time like any other producer.
		s.cfg.Source.Advance(s.sourceOffer)
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Frame{}, ErrClosed
	}
	s.snap.CopyFrom(s.pending)
	s.mu.Unlock()

	m := s.schedule(s.snap)

	// Drain served demand from the live matrix. Offers since the snapshot
	// only add, and this is the only subtractor, so pending >= snap holds
	// for every pair being drained.
	var servedBits int64
	var pairs int
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Frame{}, ErrClosed
	}
	for in, out := range m {
		if out == match.Unmatched {
			continue
		}
		pairs++
		take := s.snap.At(in, out)
		if take > s.cfg.SlotBits {
			take = s.cfg.SlotBits
		}
		if take > 0 {
			s.pending.Add(in, out, -take)
			servedBits += take
		}
	}
	backlog := s.pending.Total()
	s.mu.Unlock()

	s.served.Add(servedBits)
	epoch := s.epochs.Add(1)
	if pairs == 0 {
		s.idle.Add(1)
	}
	f := Frame{
		Epoch:       epoch,
		Shard:       s.shard,
		Match:       m,
		Pairs:       pairs,
		ServedBits:  servedBits,
		BacklogBits: backlog,
	}
	s.publish(f)
	if s.ins != nil {
		s.ins.observeEpoch(stepElapsed(t0), pairs, servedBits, backlog)
	}
	return f, nil
}

// schedule runs the matching algorithm on one snapshot — the single
// entry point both the sequential step and the pipeline's match stage
// use. For frame decomposition algorithms with instrumentation enabled
// it attributes decomposition work: when the Schedule call computed one
// or more frames (a refill, speculative or synchronous), the call's
// latency lands in the frame-decompose histogram and the frame counter
// advances. Pure playback epochs record nothing. Recording is atomic
// updates on pre-registered instruments — allocation-free.
//
//hybridsched:hotpath
func (s *Scheduler) schedule(snap *demand.Matrix) match.Matching {
	if s.ins == nil || s.framer == nil {
		return s.alg.Schedule(snap)
	}
	before := s.framer.Frames()
	t0 := stepStart()
	m := s.alg.Schedule(snap)
	if computed := s.framer.Frames() - before; computed > 0 {
		s.ins.observeFrames(stepElapsed(t0), computed)
	}
	return m
}

// Run steps one epoch per interval tick of wall-clock time until ctx is
// canceled or the scheduler is closed. It returns ctx.Err() on
// cancellation and nil when stopped by Close. Wall-clock pacing is Run's
// whole contract — determinism lives in Step, which Run merely paces.
//
//hybridsched:wallclock
func (s *Scheduler) Run(ctx context.Context, interval time.Duration) error {
	if interval <= 0 {
		return fmt.Errorf("serve: Run interval must be positive, have %v", interval)
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-s.done:
			return nil
		case <-tick.C:
			if _, err := s.Step(); err != nil {
				if errors.Is(err, ErrClosed) {
					return nil
				}
				return err
			}
		}
	}
}

// Stats returns a point-in-time activity summary.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	backlog := int64(0)
	if !s.closed {
		backlog = s.pending.Total()
	}
	s.mu.Unlock()
	s.subMu.Lock()
	subs := len(s.subs)
	s.subMu.Unlock()
	st := Stats{
		Epochs:      s.epochs.Load(),
		IdleEpochs:  s.idle.Load(),
		OfferedBits: s.offered.Load(),
		ServedBits:  s.served.Load(),
		BacklogBits: backlog,
		Subscribers: subs,
		Dropped:     s.dropped.Load(),
	}
	if s.ins != nil {
		st.Offers = s.ins.offers.Value()
		st.MatchedPairs = s.ins.matchedPairs.Value()
		lat := s.ins.epochLatency.Snapshot()
		st.EpochNsP50 = lat.Quantile(0.5)
		st.EpochNsP99 = lat.Quantile(0.99)
		st.EpochNsP999 = lat.Quantile(0.999)
	}
	return st
}

// Close stops the scheduler: pending demand returns to the matrix pool,
// every subscription's channel is closed, and all further operations
// return ErrClosed. Close is idempotent.
func (s *Scheduler) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.done)
	s.pending.Release()
	s.pending = nil
	s.mu.Unlock()

	// The snapshot scratch is only touched under stepMu; taking it here
	// fences out any in-flight Step before recycling. The algorithm's
	// own teardown (the frame schedulers' compute-ahead worker) happens
	// under the same fence, after the last epoch that could touch it.
	s.stepMu.Lock()
	s.snap.Release()
	s.snap = nil
	if c, ok := s.alg.(interface{ Close() }); ok {
		c.Close()
	}
	s.stepMu.Unlock()

	s.subMu.Lock()
	subs := s.subs
	s.subs = nil
	for _, sub := range subs {
		sub.closed = true
		close(sub.ch)
	}
	if s.ins != nil {
		s.ins.subscribers.Set(0)
	}
	s.subMu.Unlock()
	return nil
}

// DropPolicy says what a full subscription buffer does with a new frame.
type DropPolicy uint8

const (
	// DropOldest evicts the oldest buffered frame to make room — the
	// subscriber always converges to the freshest schedule. The default.
	DropOldest DropPolicy = iota
	// DropNewest discards the incoming frame — the subscriber sees a
	// contiguous prefix, then gaps.
	DropNewest
)

func (p DropPolicy) String() string {
	if p == DropNewest {
		return "drop-newest"
	}
	return "drop-oldest"
}

// Subscription is one subscriber's bounded frame stream.
type Subscription struct {
	s       *Scheduler
	ch      chan Frame
	policy  DropPolicy
	dropped atomic.Uint64
	closed  bool // guarded by s.subMu
}

// Subscribe registers a frame stream with the given buffer depth
// (minimum 1) and drop policy. The scheduler never blocks on a slow
// subscriber: when the buffer is full the policy decides which frame is
// dropped, and Dropped counts the casualties. The channel is closed by
// Subscription.Close or Scheduler.Close.
func (s *Scheduler) Subscribe(buffer int, policy DropPolicy) (*Subscription, error) {
	if buffer < 1 {
		buffer = 1
	}
	sub := &Subscription{s: s, ch: make(chan Frame, buffer), policy: policy}
	s.subMu.Lock()
	defer s.subMu.Unlock()
	select {
	case <-s.done:
		return nil, ErrClosed
	default:
	}
	s.subs = append(s.subs, sub)
	if s.ins != nil {
		s.ins.subscribers.Set(int64(len(s.subs)))
	}
	return sub, nil
}

// Frames returns the receive side of the stream.
func (sub *Subscription) Frames() <-chan Frame { return sub.ch }

// Dropped returns how many frames this subscription has dropped.
func (sub *Subscription) Dropped() uint64 { return sub.dropped.Load() }

// Close unsubscribes and closes the channel. Buffered frames may be lost.
// Close is idempotent and safe concurrently with the scheduler stepping.
func (sub *Subscription) Close() {
	sub.s.subMu.Lock()
	defer sub.s.subMu.Unlock()
	if sub.closed {
		return
	}
	sub.closed = true
	for i, x := range sub.s.subs {
		if x == sub {
			sub.s.subs = append(sub.s.subs[:i], sub.s.subs[i+1:]...)
			break
		}
	}
	if sub.s.ins != nil {
		sub.s.ins.subscribers.Set(int64(len(sub.s.subs)))
	}
	close(sub.ch)
}

// publish fans a frame out to every subscription. Sends happen under
// subMu — the same lock Close takes — so a send never races a close; all
// sends are non-blocking, so holding the lock is bounded. The matching is
// cloned once per epoch and shared read-only between subscribers; with no
// subscribers the epoch stays allocation-free.
//
//hybridsched:alloc-ok fan-out clones the matching once per epoch by design
func (s *Scheduler) publish(f Frame) {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	if len(s.subs) == 0 {
		return
	}
	f.Match = f.Match.Clone()
	for _, sub := range s.subs {
		select {
		case sub.ch <- f:
			continue
		default:
		}
		if sub.policy == DropOldest {
			select {
			case <-sub.ch:
				sub.dropped.Add(1)
				s.dropped.Add(1)
				if s.ins != nil {
					s.ins.observeDrop(sub.policy)
				}
			default:
			}
			select {
			case sub.ch <- f:
				continue
			default:
			}
		}
		sub.dropped.Add(1)
		s.dropped.Add(1)
		if s.ins != nil {
			s.ins.observeDrop(sub.policy)
		}
	}
}
