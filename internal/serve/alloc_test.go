//go:build !race

package serve

import (
	"context"
	"testing"

	"hybridsched/internal/metrics"
)

// TestServeEpochAllocFree pins the acceptance bar directly: with no
// subscribers, one epoch of the online loop — offer refill, snapshot
// copy, per-slot arbiter schedule, demand drain — performs zero heap
// allocations at n=128 in steady state, and full instrumentation
// (epoch-latency histogram, throughput counters, backlog gauge) does not
// change that. (Excluded under -race: the detector instruments
// allocations.)
func TestServeEpochAllocFree(t *testing.T) {
	for _, tc := range []struct {
		name     string
		registry *metrics.Registry
	}{
		{"bare", nil},
		{"instrumented", metrics.NewRegistry()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const n = 128
			for _, alg := range []string{"islip", "greedy", "tdma"} {
				s, err := New(Config{Ports: n, Algorithm: alg, SlotBits: 1500 * 8, Metrics: tc.registry})
				if err != nil {
					t.Fatal(err)
				}
				offer := func() {
					for i := 0; i < n; i++ {
						for k := 1; k <= 8; k++ {
							s.Offer(i, (i+k*7)%n, 1500*8)
						}
					}
				}
				// Warm the pooled matrices, row index lists and arbiter scratch.
				for w := 0; w < 3; w++ {
					offer()
					if _, err := s.Step(); err != nil {
						t.Fatal(err)
					}
				}
				allocs := testing.AllocsPerRun(50, func() {
					offer()
					if _, err := s.Step(); err != nil {
						t.Fatal(err)
					}
				})
				if allocs != 0 {
					t.Errorf("%s: %v allocs per epoch, want 0", alg, allocs)
				}
				s.Close()
			}
		})
	}
}

// TestPipelineEpochAllocFree extends the zero-allocation bar to the
// staged pipeline: all slot storage is preallocated by NewPipeline and
// recycled through the free ring, so a steady-state pipelined epoch
// allocates nothing. A RunEpochs call does pay a fixed setup cost (stage
// channels, four goroutines), so the pin measures one warm call driving
// many epochs and bounds the total by that per-call overhead — one
// allocating epoch among epochs would blow the budget many times over.
// (Excluded under -race: the detector instruments allocations.)
func TestPipelineEpochAllocFree(t *testing.T) {
	const n, epochs = 128, 200
	for _, tc := range []struct {
		name     string
		registry *metrics.Registry
	}{
		{"bare", nil},
		{"instrumented", metrics.NewRegistry()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := New(Config{Ports: n, Algorithm: "islip", SlotBits: 1500 * 8,
				Source: &benchSource{n: n}, Metrics: tc.registry})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			p, err := NewPipeline(s, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			// Warm the pooled matrices, offer buffers and arbiter scratch.
			if err := p.RunEpochs(context.Background(), 5, nil); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(1, func() {
				if err := p.RunEpochs(context.Background(), epochs, nil); err != nil {
					t.Fatal(err)
				}
			})
			const perCallBudget = 64
			if allocs > perCallBudget {
				t.Errorf("%v allocs across %d pipelined epochs, want <= %d (per-call setup only)",
					allocs, epochs, perCallBudget)
			}
		})
	}
}
