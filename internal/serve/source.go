package serve

import (
	"fmt"

	"hybridsched/internal/packet"
	"hybridsched/internal/sim"
	"hybridsched/internal/traffic"
	"hybridsched/internal/units"
)

// WorkloadSource adapts the flow-level (and packet-level) workload
// generators into a live load source: it owns a private discrete-event
// simulator carrying one traffic.Generator, and each Advance plays the
// generator forward by one epoch's span of simulated time, offering every
// generated packet's bits as demand. The stream is endless (the
// generator's Until is pinned to the end of time) and deterministic per
// seed — the same source produces the same offer sequence epoch by
// epoch, which is what makes serve-mode runs replayable.
type WorkloadSource struct {
	sim  *sim.Simulator
	gen  *traffic.Generator
	span units.Duration
	// offer is rebound by Advance; the generator's emit closure reads it
	// through this indirection so Start is only called once.
	offer func(src, dst int, bits int64)
}

// NewWorkloadSource validates cfg and builds a source that advances the
// generator span of simulated time per epoch. A zero cfg.Until means
// "forever". Span must be positive.
func NewWorkloadSource(cfg traffic.Config, span units.Duration) (*WorkloadSource, error) {
	if span <= 0 {
		return nil, fmt.Errorf("serve: workload source span must be positive, have %v", span)
	}
	if cfg.Until == 0 {
		cfg.Until = units.MaxTime
	}
	gen, err := traffic.New(cfg)
	if err != nil {
		return nil, err
	}
	ws := &WorkloadSource{sim: sim.New(), gen: gen, span: span}
	gen.Start(ws.sim, func(p *packet.Packet) {
		ws.offer(int(p.Src), int(p.Dst), int64(p.Size))
	})
	return ws, nil
}

// Advance implements Source: one epoch's span of arrivals.
func (ws *WorkloadSource) Advance(offer func(src, dst int, bits int64)) {
	ws.offer = offer
	ws.sim.RunUntil(ws.sim.Now().Add(ws.span))
	ws.offer = nil
}

// Offered returns the total bits the generator has emitted so far.
func (ws *WorkloadSource) Offered() int64 { return int64(ws.gen.BitsEmitted()) }
