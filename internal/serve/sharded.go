package serve

import (
	"fmt"
	"io"
	"sync"

	"hybridsched/internal/runner"
	"hybridsched/internal/trace"
)

// SourceFactory builds a per-shard load source. Each shard needs its own
// source (sources carry a private simulator and are not concurrent-safe);
// seed is the shard's derived seed, so shards draw independent yet
// reproducible workload streams.
type SourceFactory func(shard int, seed uint64) (Source, error)

// Sharded is N independent fabric shards behind one service: one process
// serving many switches. Each shard is a full Scheduler (own demand
// matrix, algorithm instance, subscribers); Step fans the per-shard
// epochs out over the deterministic worker pool in internal/runner, and
// Snapshot/Restore checkpoint all shards into a single HSTR trace.
type Sharded struct {
	shards    []*Scheduler
	pool      *runner.Pool
	done      chan struct{}
	closeOnce sync.Once
}

// NewSharded builds shards copies of cfg, seeded with
// runner.DeriveSeed(cfg.Seed, shard) so their randomized algorithms and
// workload sources are decorrelated. cfg.Source must be nil — per-shard
// sources come from newSource (which may be nil for push-only services).
// cfg.Shard is overridden with each shard's index, so a shared
// cfg.Metrics registry keeps the shards' instruments distinct. workers
// sizes the Step fan-out pool (0 = GOMAXPROCS).
func NewSharded(shards, workers int, cfg Config, newSource SourceFactory) (*Sharded, error) {
	if shards < 1 {
		return nil, fmt.Errorf("serve: need at least 1 shard, have %d", shards)
	}
	if cfg.Source != nil {
		return nil, fmt.Errorf("serve: sharded services take a SourceFactory, not Config.Source")
	}
	sh := &Sharded{pool: runner.New(workers), done: make(chan struct{})}
	for i := 0; i < shards; i++ {
		c := cfg
		c.Seed = runner.DeriveSeed(cfg.Seed, i)
		if newSource != nil {
			src, err := newSource(i, c.Seed)
			if err != nil {
				sh.Close()
				return nil, fmt.Errorf("serve: shard %d source: %w", i, err)
			}
			c.Source = src
		}
		c.Shard = i
		s, err := New(c)
		if err != nil {
			sh.Close()
			return nil, err
		}
		sh.shards = append(sh.shards, s)
	}
	return sh, nil
}

// Shards returns the shard count.
func (sh *Sharded) Shards() int { return len(sh.shards) }

// Shard returns shard i's scheduler for direct use (Offer, Subscribe,
// manual Step of a single shard).
func (sh *Sharded) Shard(i int) *Scheduler { return sh.shards[i] }

// Offer adds demand to one shard.
func (sh *Sharded) Offer(shard, src, dst int, bits int64) error {
	if shard < 0 || shard >= len(sh.shards) {
		return fmt.Errorf("serve: shard %d outside [0,%d)", shard, len(sh.shards))
	}
	return sh.shards[shard].Offer(src, dst, bits)
}

// Step runs one epoch on every shard, fanned out over the worker pool,
// and returns the frames in shard order — identical at any worker count.
// Frames are caller-owned (StepOwned per shard): later epochs never
// rewrite them.
func (sh *Sharded) Step() ([]Frame, error) {
	return runner.Map(sh.pool, len(sh.shards), func(i int) (Frame, error) {
		return sh.shards[i].StepOwned()
	})
}

// Done is closed when the service is closed — the select-able companion
// to ErrClosed for wall-clock loops.
func (sh *Sharded) Done() <-chan struct{} { return sh.done }

// Stats returns per-shard summaries in shard order.
func (sh *Sharded) Stats() []Stats {
	out := make([]Stats, len(sh.shards))
	for i, s := range sh.shards {
		out[i] = s.Stats()
	}
	return out
}

// Snapshot checkpoints every shard into one HSTR trace: per-shard epoch
// markers plus demand records, shard by shard in canonical order.
func (sh *Sharded) Snapshot(w io.Writer) error {
	var recs []trace.Record
	var err error
	for i, s := range sh.shards {
		recs, err = s.snapshotRecords(i, recs)
		if err != nil {
			return err
		}
	}
	return trace.WriteAll(w, recs)
}

// Restore loads a multi-shard snapshot into this service. The shard
// counts must match: every shard in the trace needs a scheduler and vice
// versa (markers make empty shards explicit).
func (sh *Sharded) Restore(r io.Reader) error {
	recs, err := trace.ReadAll(r)
	if err != nil {
		return fmt.Errorf("serve: restore: %w", err)
	}
	for _, rec := range recs {
		if rec.Flow >= uint64(len(sh.shards)) {
			return fmt.Errorf("serve: restore: snapshot shard %d outside this %d-shard service",
				rec.Flow, len(sh.shards))
		}
	}
	for i, s := range sh.shards {
		if err := s.restoreShard(recs, i); err != nil {
			return err
		}
	}
	return nil
}

// Close closes every shard. Idempotent.
func (sh *Sharded) Close() error {
	sh.closeOnce.Do(func() { close(sh.done) })
	for _, s := range sh.shards {
		s.Close()
	}
	return nil
}
