// Package platform emulates the reconfigurable-hardware contract of the
// paper's framework: the NetFPGA-SUME-style device on which "the
// processing logic and switching logic are part of the infrastructure that
// is constant (yet configurable), and the users implement novel design in
// the scheduling logic module".
//
// The contract has two halves:
//
//   - A register file with an AXI-Lite-style 32-bit address map. Software
//     configures port count, slot length, reconfiguration time, buffering
//     regime and the scheduling algorithm by register writes, then sets
//     the start bit; counters (cycles, grants, delivered packets, drops)
//     read back live.
//   - The scheduling-logic slot: any algorithm registered with
//     internal/match (including user code registered at init time) is
//     selectable by writing its index to RegAlgorithm — the simulation
//     equivalent of dropping a new arbiter into the FPGA partition.
//
// examples/prototyping walks through bringing up a custom scheduler
// against exactly this interface.
package platform

import (
	"fmt"

	"hybridsched/internal/fabric"
	"hybridsched/internal/match"
	"hybridsched/internal/packet"
	"hybridsched/internal/sched"
	"hybridsched/internal/sim"
	"hybridsched/internal/units"
)

// Register addresses (byte addresses, word-aligned).
const (
	RegID        uint32 = 0x00 // RO: device identifier
	RegVersion   uint32 = 0x04 // RO: register-map version
	RegPorts     uint32 = 0x08 // RW: port count
	RegAlgorithm uint32 = 0x0C // RW: index into AlgorithmNames()
	RegSlotNs    uint32 = 0x10 // RW: transmission slot, nanoseconds
	RegReconfNs  uint32 = 0x14 // RW: OCS reconfiguration time, nanoseconds
	RegLineMbps  uint32 = 0x18 // RW: line rate, Mbps
	RegControl   uint32 = 0x1C // RW: bit0 start, bit1 pipelined, bit2 host-buffered, bit3 enable EPS
	RegStatus    uint32 = 0x20 // RO: bit0 running
	RegSeedLo    uint32 = 0x24 // RW: algorithm seed (low word)
	RegSeedHi    uint32 = 0x28 // RW: algorithm seed (high word)

	RegCycles    uint32 = 0x40 // RO: scheduler cycles completed
	RegGrants    uint32 = 0x44 // RO: (input,output) grants issued
	RegDelivered uint32 = 0x48 // RO: packets delivered
	RegDropped   uint32 = 0x4C // RO: packets dropped (all causes)
	RegOCSPkts   uint32 = 0x50 // RO: packets via OCS
	RegEPSPkts   uint32 = 0x54 // RO: packets via EPS
	RegConfigs   uint32 = 0x58 // RO: OCS reconfigurations
)

// Control-register bits.
const (
	CtrlStart        = 1 << 0
	CtrlPipelined    = 1 << 1
	CtrlHostBuffered = 1 << 2
	CtrlEnableEPS    = 1 << 3
)

// DeviceID is the value of RegID ("5CED" — scheduler).
const DeviceID uint32 = 0x5CED0001

// Version is the register-map version.
const Version uint32 = 0x00010000

// AlgorithmNames returns the selectable scheduling-logic implementations
// in RegAlgorithm index order.
func AlgorithmNames() []string { return match.Names() }

// Device is one emulated board. Create with NewDevice, program registers,
// set CtrlStart, then drive the simulator and inject packets.
type Device struct {
	sim    *sim.Simulator
	regs   map[uint32]uint32
	fab    *fabric.Fabric
	timing sched.TimingModel
}

// NewDevice returns a powered-on, unconfigured device with hardware
// scheduler timing (this is, after all, the hardware framework). The
// timing model can be swapped with SetTiming before start for A/B
// experiments.
func NewDevice(s *sim.Simulator) *Device {
	d := &Device{
		sim:    s,
		regs:   map[uint32]uint32{},
		timing: sched.DefaultHardware(),
	}
	// Reset defaults mirror the paper's running example.
	d.regs[RegPorts] = 64
	d.regs[RegAlgorithm] = 0
	d.regs[RegSlotNs] = 10_000  // 10 us
	d.regs[RegReconfNs] = 1_000 // 1 us
	d.regs[RegLineMbps] = 10_000
	return d
}

// SetTiming overrides the scheduler timing model (before start only).
func (d *Device) SetTiming(t sched.TimingModel) error {
	if d.Running() {
		return fmt.Errorf("platform: cannot change timing while running")
	}
	d.timing = t
	return nil
}

// Running reports whether the datapath has been started.
func (d *Device) Running() bool { return d.fab != nil }

// Fabric returns the running fabric, or nil before start.
func (d *Device) Fabric() *fabric.Fabric { return d.fab }

// Inject delivers a packet to the running datapath.
func (d *Device) Inject(p *packet.Packet) error {
	if d.fab == nil {
		return fmt.Errorf("platform: device not started")
	}
	d.fab.Inject(p)
	return nil
}

// Read32 reads a register.
func (d *Device) Read32(addr uint32) (uint32, error) {
	switch addr {
	case RegID:
		return DeviceID, nil
	case RegVersion:
		return Version, nil
	case RegStatus:
		if d.Running() {
			return 1, nil
		}
		return 0, nil
	case RegCycles, RegGrants, RegDelivered, RegDropped, RegOCSPkts, RegEPSPkts, RegConfigs:
		return d.counter(addr), nil
	}
	if v, ok := d.regs[addr]; ok {
		return v, nil
	}
	return 0, fmt.Errorf("platform: read of unmapped register 0x%02x", addr)
}

func (d *Device) counter(addr uint32) uint32 {
	if d.fab == nil {
		return 0
	}
	m := d.fab.Metrics()
	var v int64
	switch addr {
	case RegCycles:
		v = m.Loop.Cycles
	case RegGrants:
		v = m.Loop.GrantedPairs
	case RegDelivered:
		v = m.Delivered
	case RegDropped:
		v = m.DropsVOQ + m.DropsHost + m.DropsClassify + m.OCS.Truncated + m.EPS.Drops
	case RegOCSPkts:
		v = m.OCS.PktsDelivered
	case RegEPSPkts:
		v = m.EPS.PktsDelivered
	case RegConfigs:
		v = m.OCS.Configures
	}
	return uint32(v)
}

// Write32 writes a register. Configuration registers are locked while
// running; writing CtrlStart builds and starts the datapath.
func (d *Device) Write32(addr uint32, v uint32) error {
	switch addr {
	case RegID, RegVersion, RegStatus, RegCycles, RegGrants, RegDelivered,
		RegDropped, RegOCSPkts, RegEPSPkts, RegConfigs:
		return fmt.Errorf("platform: register 0x%02x is read-only", addr)
	case RegControl:
		d.regs[RegControl] = v
		if v&CtrlStart != 0 && !d.Running() {
			return d.start()
		}
		return nil
	case RegPorts, RegAlgorithm, RegSlotNs, RegReconfNs, RegLineMbps, RegSeedLo, RegSeedHi:
		if d.Running() {
			return fmt.Errorf("platform: register 0x%02x locked while running", addr)
		}
		d.regs[addr] = v
		return nil
	}
	return fmt.Errorf("platform: write to unmapped register 0x%02x", addr)
}

// start assembles the fabric from the register file.
func (d *Device) start() error {
	names := AlgorithmNames()
	algIdx := int(d.regs[RegAlgorithm])
	if algIdx < 0 || algIdx >= len(names) {
		return fmt.Errorf("platform: algorithm index %d out of range (%d registered)",
			algIdx, len(names))
	}
	ctrl := d.regs[RegControl]
	cfg := fabric.Config{
		Ports:        int(d.regs[RegPorts]),
		LineRate:     units.BitRate(d.regs[RegLineMbps]) * units.Mbps,
		Slot:         units.Duration(d.regs[RegSlotNs]) * units.Nanosecond,
		ReconfigTime: units.Duration(d.regs[RegReconfNs]) * units.Nanosecond,
		Algorithm:    names[algIdx],
		Seed:         uint64(d.regs[RegSeedHi])<<32 | uint64(d.regs[RegSeedLo]),
		Timing:       d.timing,
		Pipelined:    ctrl&CtrlPipelined != 0,
		EnableEPS:    ctrl&CtrlEnableEPS != 0,
	}
	if ctrl&CtrlHostBuffered != 0 {
		cfg.Buffer = fabric.BufferAtHost
	}
	fab, err := fabric.New(d.sim, cfg)
	if err != nil {
		return fmt.Errorf("platform: %w", err)
	}
	d.fab = fab
	fab.Start()
	return nil
}

// Stop halts the scheduling loop. Counters remain readable; configuration
// registers stay locked (like real hardware, reconfiguration requires a
// fresh device).
func (d *Device) Stop() {
	if d.fab != nil {
		d.fab.Stop()
	}
}
