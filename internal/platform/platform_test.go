package platform

import (
	"testing"

	"hybridsched/internal/demand"
	"hybridsched/internal/match"
	"hybridsched/internal/packet"
	"hybridsched/internal/sim"
	"hybridsched/internal/units"
)

func TestIdentityRegisters(t *testing.T) {
	d := NewDevice(sim.New())
	id, err := d.Read32(RegID)
	if err != nil || id != DeviceID {
		t.Fatalf("RegID = %#x, %v", id, err)
	}
	ver, err := d.Read32(RegVersion)
	if err != nil || ver != Version {
		t.Fatalf("RegVersion = %#x, %v", ver, err)
	}
	status, _ := d.Read32(RegStatus)
	if status != 0 {
		t.Fatal("should not be running at reset")
	}
}

func TestResetDefaults(t *testing.T) {
	d := NewDevice(sim.New())
	ports, _ := d.Read32(RegPorts)
	if ports != 64 {
		t.Fatalf("default ports = %d, want the paper's 64", ports)
	}
	rate, _ := d.Read32(RegLineMbps)
	if rate != 10_000 {
		t.Fatalf("default rate = %d Mbps, want the paper's 10G", rate)
	}
}

func TestUnmappedAccess(t *testing.T) {
	d := NewDevice(sim.New())
	if _, err := d.Read32(0xFFF0); err == nil {
		t.Fatal("expected error for unmapped read")
	}
	if err := d.Write32(0xFFF0, 1); err == nil {
		t.Fatal("expected error for unmapped write")
	}
}

func TestReadOnlyRegistersRejectWrites(t *testing.T) {
	d := NewDevice(sim.New())
	for _, reg := range []uint32{RegID, RegVersion, RegStatus, RegCycles, RegDelivered} {
		if err := d.Write32(reg, 1); err == nil {
			t.Fatalf("write to RO register 0x%02x succeeded", reg)
		}
	}
}

func TestStartAndCounters(t *testing.T) {
	s := sim.New()
	d := NewDevice(s)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(d.Write32(RegPorts, 4))
	must(d.Write32(RegSlotNs, 5000))
	must(d.Write32(RegReconfNs, 100))
	// Select "greedy" by name lookup to be robust to registry growth.
	idx := -1
	for i, n := range AlgorithmNames() {
		if n == "greedy" {
			idx = i
		}
	}
	if idx < 0 {
		t.Fatal("greedy not registered")
	}
	must(d.Write32(RegAlgorithm, uint32(idx)))
	must(d.Write32(RegControl, CtrlStart|CtrlPipelined))

	status, _ := d.Read32(RegStatus)
	if status != 1 {
		t.Fatal("device should be running")
	}
	// Config registers lock while running.
	if err := d.Write32(RegPorts, 8); err == nil {
		t.Fatal("config write while running should fail")
	}

	must(d.Inject(&packet.Packet{Src: 0, Dst: 1, Size: 1500 * units.Byte}))
	s.RunUntil(units.Time(units.Millisecond))
	d.Stop()

	delivered, _ := d.Read32(RegDelivered)
	if delivered != 1 {
		t.Fatalf("RegDelivered = %d", delivered)
	}
	cycles, _ := d.Read32(RegCycles)
	if cycles == 0 {
		t.Fatal("RegCycles should advance")
	}
	ocsPkts, _ := d.Read32(RegOCSPkts)
	if ocsPkts != 1 {
		t.Fatalf("RegOCSPkts = %d", ocsPkts)
	}
	configs, _ := d.Read32(RegConfigs)
	if configs == 0 {
		t.Fatal("RegConfigs should count reconfigurations")
	}
}

func TestStartRejectsBadAlgorithmIndex(t *testing.T) {
	d := NewDevice(sim.New())
	if err := d.Write32(RegAlgorithm, 10_000); err != nil {
		t.Fatal(err)
	}
	if err := d.Write32(RegControl, CtrlStart); err == nil {
		t.Fatal("expected start failure for bad algorithm index")
	}
}

func TestInjectBeforeStartFails(t *testing.T) {
	d := NewDevice(sim.New())
	if err := d.Inject(&packet.Packet{Src: 0, Dst: 1, Size: 64 * units.Byte}); err == nil {
		t.Fatal("inject before start should fail")
	}
}

func TestSetTimingLockedWhileRunning(t *testing.T) {
	s := sim.New()
	d := NewDevice(s)
	if err := d.Write32(RegPorts, 4); err != nil {
		t.Fatal(err)
	}
	if err := d.Write32(RegControl, CtrlStart); err != nil {
		t.Fatal(err)
	}
	if err := d.SetTiming(nil); err == nil {
		t.Fatal("SetTiming while running should fail")
	}
}

// userScheduler is the "novel design in the scheduling logic" of the
// prototyping story: registered at init, selectable by register write.
type userScheduler struct{ n int }

func (u *userScheduler) Name() string { return "test-user-sched" }
func (u *userScheduler) Reset()       {}
func (u *userScheduler) Complexity(n int) match.Complexity {
	return match.Complexity{HardwareDepth: 1, SoftwareOps: n}
}
func (u *userScheduler) Schedule(d *demand.Matrix) match.Matching {
	m := match.NewMatching(u.n)
	// Serve only the single heaviest VOQ: deliberately primitive.
	var bi, bj int
	var best int64
	for i := 0; i < u.n; i++ {
		for j := 0; j < u.n; j++ {
			if v := d.At(i, j); v > best {
				best, bi, bj = v, i, j
			}
		}
	}
	if best > 0 {
		m[bi] = bj
	}
	return m
}

func TestUserSchedulerPluggableViaRegistry(t *testing.T) {
	match.Register("test-user-sched", func(n int, _ uint64) match.Algorithm {
		return &userScheduler{n: n}
	})
	s := sim.New()
	d := NewDevice(s)
	if err := d.Write32(RegPorts, 4); err != nil {
		t.Fatal(err)
	}
	idx := -1
	for i, n := range AlgorithmNames() {
		if n == "test-user-sched" {
			idx = i
		}
	}
	if idx < 0 {
		t.Fatal("user scheduler not visible on the platform")
	}
	if err := d.Write32(RegAlgorithm, uint32(idx)); err != nil {
		t.Fatal(err)
	}
	if err := d.Write32(RegControl, CtrlStart); err != nil {
		t.Fatal(err)
	}
	if err := d.Inject(&packet.Packet{Src: 2, Dst: 3, Size: 1500 * units.Byte}); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(units.Time(units.Millisecond))
	d.Stop()
	delivered, _ := d.Read32(RegDelivered)
	if delivered != 1 {
		t.Fatalf("user scheduler delivered %d packets", delivered)
	}
}
