// Package fabric assembles the full hybrid switch of Figure 2: hosts on
// access links, processing logic (classifier + VOQs), scheduling logic
// (internal/sched with a pluggable algorithm), and switching logic (OCS +
// EPS side by side). It implements both buffering regimes of Figure 1 —
// packets buffered at the switch (fast scheduling) or held at the hosts
// and released on grants (slow scheduling) — and collects every metric the
// experiments report.
package fabric

import (
	"fmt"
	"slices"

	"hybridsched/internal/classify"
	"hybridsched/internal/demand"
	"hybridsched/internal/eps"
	"hybridsched/internal/host"
	"hybridsched/internal/match"
	"hybridsched/internal/ocs"
	"hybridsched/internal/packet"
	"hybridsched/internal/sched"
	"hybridsched/internal/sim"
	"hybridsched/internal/stats"
	"hybridsched/internal/units"
	"hybridsched/internal/voq"
)

// BufferPlacement selects the Figure 1 regime.
type BufferPlacement uint8

// BufferPlacement values.
const (
	// BufferAtSwitch is fast scheduling: hosts forward immediately and
	// the ToR's VOQs absorb reconfiguration dead-time.
	BufferAtSwitch BufferPlacement = iota
	// BufferAtHost is slow scheduling: OCS-bound packets wait in host
	// queues and move only on grants.
	BufferAtHost
)

func (b BufferPlacement) String() string {
	if b == BufferAtHost {
		return "host"
	}
	return "switch"
}

// Config parameterizes the fabric.
type Config struct {
	Ports    int
	LineRate units.BitRate // host links and OCS circuit rate
	// LinkDelay is the one-way host<->switch propagation delay.
	LinkDelay units.Duration

	// Slot is the scheduler's transmission window per configuration.
	Slot units.Duration
	// ReconfigTime is the OCS dead-time (the Figure 1 sweep variable).
	ReconfigTime units.Duration

	// Algorithm names a registered matching algorithm.
	Algorithm string
	Seed      uint64
	// Timing selects hardware or software scheduler timing. Required.
	Timing sched.TimingModel
	// Pipelined overlaps schedule computation with transmission.
	Pipelined bool
	// Estimator supplies demand estimates. If nil, an occupancy
	// estimator is used.
	Estimator demand.Estimator

	Buffer BufferPlacement
	// VOQLimit bounds each switch VOQ (0 = unlimited): the ToR memory of
	// Figure 1.
	VOQLimit units.Size
	// HostQueueLimit bounds each per-destination host queue.
	HostQueueLimit units.Size

	// EnableEPS adds the electrical packet switch for residual traffic.
	EnableEPS bool
	// EPSRate is the EPS drain rate per output (defaults to LineRate/10).
	EPSRate units.BitRate
	// EPSQueueLimit bounds EPS output queues (0 = unlimited).
	EPSQueueLimit units.Size
	// EPSFabricLatency is the EPS store-and-forward latency.
	EPSFabricLatency units.Duration

	// Rules configure the look-up table; if empty, every packet is Auto
	// (OCS-eligible). With EnableEPS and empty Rules, the elephant
	// threshold default is installed.
	Rules []classify.Rule
	// ResidualTimeout shunts Auto traffic whose head-of-line age exceeds
	// this to the EPS at grant time (0 = off). This is the "residual
	// traffic can be sent through the EPS" mechanism.
	ResidualTimeout units.Duration
}

func (c *Config) fillDefaults() error {
	if c.Ports < 2 {
		return fmt.Errorf("fabric: need at least 2 ports")
	}
	if c.LineRate <= 0 {
		return fmt.Errorf("fabric: LineRate must be positive")
	}
	if c.Slot <= 0 {
		return fmt.Errorf("fabric: Slot must be positive")
	}
	if c.ReconfigTime < 0 {
		return fmt.Errorf("fabric: negative ReconfigTime")
	}
	if c.Algorithm == "" {
		c.Algorithm = "islip"
	}
	if c.Timing == nil {
		return fmt.Errorf("fabric: Timing model is required")
	}
	if c.EnableEPS && c.EPSRate == 0 {
		c.EPSRate = c.LineRate / 10
	}
	return nil
}

// Validate checks the configuration the way New would, without building a
// fabric: it applies the same defaulting rules to a copy and additionally
// resolves the algorithm name against the registry. It is how the public
// scenario builder validates eagerly.
func (c Config) Validate() error {
	if err := c.fillDefaults(); err != nil {
		return err
	}
	if !match.Known(c.Algorithm) {
		return fmt.Errorf("fabric: unknown algorithm %q (have %v)", c.Algorithm, match.Names())
	}
	return nil
}

// Fabric is an assembled hybrid switch. Create with New.
type Fabric struct {
	sim *sim.Simulator
	cfg Config

	table *classify.Table
	voqs  *voq.Bank
	hosts *host.Bank
	ocsSw *ocs.Switch
	epsSw *eps.Switch
	est   demand.Estimator
	loop  *sched.Loop

	nicBusy []units.Time // fast-regime host uplink pacing
	residue []int32      // shuntResidue scratch: nonempty VOQ indices

	injected      stats.Counter
	injectedBits  stats.Counter
	delivered     stats.Counter
	deliveredBits stats.Counter
	dropsClassify stats.Counter
	missedCircuit stats.Counter
	shunted       stats.Counter

	latAll  stats.Histogram
	latMice stats.Histogram
	latOCS  stats.Histogram
	latEPS  stats.Histogram

	onDeliver func(p *packet.Packet) // optional test hook
}

// New assembles a fabric on the given simulator.
func New(s *sim.Simulator, cfg Config) (*Fabric, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	alg, err := match.New(cfg.Algorithm, cfg.Ports, cfg.Seed)
	if err != nil {
		return nil, err
	}
	f := &Fabric{
		sim:     s,
		cfg:     cfg,
		nicBusy: make([]units.Time, cfg.Ports),
	}

	def := classify.Action{Hint: classify.Auto}
	f.table = classify.New(def)
	rules := cfg.Rules
	if len(rules) == 0 && cfg.EnableEPS {
		rules = classify.ElephantThresholdRules(1500 * units.Byte)
	}
	for _, r := range rules {
		f.table.Add(r)
	}

	f.voqs = voq.NewBank(cfg.Ports, cfg.VOQLimit, nil)
	f.hosts = host.New(s, host.Config{
		Ports:      cfg.Ports,
		NICRate:    cfg.LineRate,
		LinkDelay:  cfg.LinkDelay,
		QueueLimit: cfg.HostQueueLimit,
	}, nil)

	f.ocsSw = ocs.New(s, ocs.Config{
		Ports:        cfg.Ports,
		PortRate:     cfg.LineRate,
		ReconfigTime: cfg.ReconfigTime,
		PropDelay:    0,
	}, f.deliver)

	if cfg.EnableEPS {
		f.epsSw = eps.New(s, eps.Config{
			Ports:         cfg.Ports,
			PortRate:      cfg.EPSRate,
			FabricLatency: cfg.EPSFabricLatency,
			QueueLimit:    cfg.EPSQueueLimit,
		}, f.deliver)
	}

	f.est = cfg.Estimator
	if f.est == nil {
		f.est = demand.NewOccupancy(cfg.Ports)
	}

	f.loop = sched.NewLoop(s, sched.LoopConfig{
		Ports:     cfg.Ports,
		Slot:      cfg.Slot,
		Pipelined: cfg.Pipelined,
	}, alg, cfg.Timing, sched.Hooks{
		Snapshot:  f.snapshot,
		Configure: f.configure,
		Grant:     f.grant,
	})
	return f, nil
}

// Start begins the scheduling loop.
func (f *Fabric) Start() { f.loop.Start() }

// Stop halts the scheduling loop.
func (f *Fabric) Stop() { f.loop.Stop() }

// Sim returns the simulator the fabric runs on.
func (f *Fabric) Sim() *sim.Simulator { return f.sim }

// SetDeliverHook installs a per-delivery callback for tests and examples.
func (f *Fabric) SetDeliverHook(fn func(p *packet.Packet)) { f.onDeliver = fn }

// Table exposes the look-up table for runtime reconfiguration (the
// platform register interface writes through this).
func (f *Fabric) Table() *classify.Table { return f.table }

// Inject introduces p at its source host at the current simulated time.
// This is the entry point traffic generators feed.
func (f *Fabric) Inject(p *packet.Packet) {
	now := f.sim.Now()
	if p.CreatedAt == 0 {
		p.CreatedAt = now
	}
	f.injected.Inc()
	f.injectedBits.Add(int64(p.Size))

	act := f.table.Classify(p)
	if act.Drop {
		f.dropsClassify.Inc()
		return
	}
	epsBound := act.Hint == classify.EPSOnly && f.epsSw != nil
	if f.cfg.Buffer == BufferAtHost && !epsBound {
		// Slow regime: OCS-bound traffic waits at the host for a grant.
		// The scheduler learns of it one request latency later.
		if f.hosts.Enqueue(now, p) {
			f.observeLater(p)
		}
		return
	}
	// Fast regime (or EPS-bound traffic in either regime): forward over
	// the access link immediately.
	start := f.nicBusy[p.Src]
	if start < now {
		start = now
	}
	start = start.Add(units.TransmitTime(p.Size, f.cfg.LineRate))
	f.nicBusy[p.Src] = start
	arrive := start.Add(f.cfg.LinkDelay)
	f.sim.At(arrive, func() { f.arriveAtSwitch(p, epsBound) })
}

// observeLater reports new demand to the estimator after the request
// latency of the timing model.
func (f *Fabric) observeLater(p *packet.Packet) {
	in, out, bits := int(p.Src), int(p.Dst), int64(p.Size)
	f.sim.Schedule(f.cfg.Timing.RequestLatency(), func() {
		f.est.Observe(f.sim.Now(), in, out, bits)
	})
}

// arriveAtSwitch lands p at the ToR ingress.
func (f *Fabric) arriveAtSwitch(p *packet.Packet, epsBound bool) {
	now := f.sim.Now()
	if epsBound {
		f.epsSw.Send(p)
		return
	}
	if f.cfg.Buffer == BufferAtHost {
		// A host-released packet: it should flow straight through the
		// configured circuit. If the circuit is gone or busy (sync
		// slip), stage it in the ToR VOQ.
		if _, err := f.ocsSw.Send(p); err != nil {
			f.missedCircuit.Inc()
			f.voqs.Enqueue(now, p)
		}
		return
	}
	if f.voqs.Enqueue(now, p) {
		f.observeLater(p)
	}
}

// snapshot implements the loop's demand hook: refresh occupancy from the
// buffering point, then ask the estimator.
func (f *Fabric) snapshot(t units.Time) *demand.Matrix {
	if f.cfg.Buffer == BufferAtHost {
		f.hosts.Queues().FillOccupancy(t, f.est)
		// Staged packets at the ToR still need service.
		snap := f.est.Snapshot(t)
		staged := f.voqs.OccupancyMatrix()
		for i := 0; i < f.cfg.Ports; i++ {
			row := staged.Row(i)
			for k := 0; k < row.Len(); k++ {
				j, v := row.Entry(k)
				snap.Add(i, j, v)
			}
		}
		return snap
	}
	f.voqs.FillOccupancy(t, f.est)
	return f.est.Snapshot(t)
}

// configure implements the loop's switching hook.
func (f *Fabric) configure(m match.Matching, done func()) {
	f.ocsSw.Configure(m, done)
}

// grant implements the loop's grant hook: serve each matched pair for the
// window and shunt over-age residue to the EPS.
func (f *Fabric) grant(m match.Matching, window units.Duration) {
	budget := units.TransferSize(f.cfg.LineRate, window)
	for in, out := range m {
		if out == match.Unmatched {
			continue
		}
		in, out := packet.Port(in), packet.Port(out)
		staged := f.drainVOQBudget(in, out, budget)
		if f.cfg.Buffer == BufferAtHost {
			remaining := budget - staged
			if remaining > 0 {
				// The grant travels to the host before data can flow.
				f.sim.Schedule(f.cfg.LinkDelay, func() {
					f.hosts.Release(in, out, remaining, func(p *packet.Packet) {
						f.arriveAtSwitch(p, false)
					})
				})
			}
		}
	}
	if f.cfg.ResidualTimeout > 0 && f.epsSw != nil {
		f.shuntResidue(m)
	}
}

// drainVOQBudget streams packets from VOQ (in, out) through the OCS,
// paced by circuit serialization, until the budget or queue is exhausted
// or the circuit disappears. It returns the bits it will have sent.
func (f *Fabric) drainVOQBudget(in, out packet.Port, budget units.Size) units.Size {
	var sent units.Size
	var step func(left units.Size)
	step = func(left units.Size) {
		q := f.voqs.Queue(in, out)
		front := q.Front()
		if front == nil || front.Size > left {
			return
		}
		if f.ocsSw.CircuitOf(in) != int(out) {
			return
		}
		if free := f.ocsSw.InputFreeAt(in); free > f.sim.Now() {
			// A previous (possibly truncated) serialization still owns
			// the input; resume when it releases.
			f.sim.At(free, func() { step(left) })
			return
		}
		p := f.voqs.Dequeue(f.sim.Now(), in, out)
		done, err := f.ocsSw.Send(p)
		if err != nil {
			// Circuit raced away between check and send; put it back
			// conceptually by counting a miss (the packet is lost to
			// this slot; it re-enters via the staging queue).
			f.missedCircuit.Inc()
			f.voqs.Enqueue(f.sim.Now(), p)
			return
		}
		left -= p.Size
		f.sim.At(done, func() { step(left) })
	}
	// Estimate how much this drain can move for the host-release split:
	// the queued bits up to the budget.
	q := f.voqs.Queue(in, out)
	sent = q.Bits()
	if sent > budget {
		sent = budget
	}
	step(budget)
	return sent
}

// shuntResidue moves over-age head-of-line packets of unmatched VOQs to
// the EPS. Only nonempty VOQs are visited (sorted for determinism), so a
// residue sweep over a 512-port bank costs O(backlogged pairs), not n².
func (f *Fabric) shuntResidue(m match.Matching) {
	now := f.sim.Now()
	n := f.cfg.Ports
	f.residue = f.voqs.AppendNonEmpty(f.residue[:0])
	slices.Sort(f.residue)
	for _, idx := range f.residue {
		i, j := int(idx)/n, int(idx)%n
		if m[i] == j {
			continue // served by a circuit this slot
		}
		q := f.voqs.Queue(packet.Port(i), packet.Port(j))
		for {
			front := q.Front()
			if front == nil || now.Sub(front.EnqueuedAt) <= f.cfg.ResidualTimeout {
				break
			}
			p := f.voqs.Dequeue(now, packet.Port(i), packet.Port(j))
			f.shunted.Inc()
			f.epsSw.Send(p)
		}
	}
}

// deliver is the common egress for both switching fabrics.
func (f *Fabric) deliver(p *packet.Packet, _ packet.Port) {
	now := f.sim.Now()
	p.DeliveredAt = now
	f.delivered.Inc()
	f.deliveredBits.Add(int64(p.Size))
	lat := int64(p.Latency())
	f.latAll.Record(lat)
	if p.Class == packet.ClassLatencySensitive {
		f.latMice.Record(lat)
	}
	switch p.Via {
	case packet.PathOCS:
		f.latOCS.Record(lat)
	case packet.PathEPS:
		f.latEPS.Record(lat)
	}
	if f.onDeliver != nil {
		f.onDeliver(p)
	}
}

// Metrics is a full snapshot of fabric state; see the field comments for
// which experiment consumes what.
type Metrics struct {
	Elapsed units.Duration

	Injected      int64
	InjectedBits  units.Size
	Delivered     int64
	DeliveredBits units.Size

	OCS ocs.Stats
	EPS eps.Stats

	// Figure 1: buffering requirement at each placement.
	PeakSwitchBuffer units.Size
	PeakHostBuffer   units.Size

	DropsVOQ      int64
	DropsHost     int64
	DropsClassify int64
	MissedCircuit int64
	Shunted       int64

	Latency     stats.Summary // picoseconds
	LatencyMice stats.Summary
	LatencyOCS  stats.Summary
	LatencyEPS  stats.Summary

	Loop      sched.LoopStats
	DutyCycle float64
}

// Metrics returns a snapshot at the current simulated time.
func (f *Fabric) Metrics() Metrics {
	elapsed := units.Duration(f.sim.Now())
	m := Metrics{
		Elapsed:          elapsed,
		Injected:         f.injected.Value(),
		InjectedBits:     units.Size(f.injectedBits.Value()),
		Delivered:        f.delivered.Value(),
		DeliveredBits:    units.Size(f.deliveredBits.Value()),
		OCS:              f.ocsSw.Stats(),
		PeakSwitchBuffer: f.voqs.PeakBits(),
		PeakHostBuffer:   f.hosts.PeakBits(),
		DropsVOQ:         f.voqs.Drops(),
		DropsHost:        f.hosts.Drops(),
		DropsClassify:    f.dropsClassify.Value(),
		MissedCircuit:    f.missedCircuit.Value(),
		Shunted:          f.shunted.Value(),
		Latency:          f.latAll.Summarize(),
		LatencyMice:      f.latMice.Summarize(),
		LatencyOCS:       f.latOCS.Summarize(),
		LatencyEPS:       f.latEPS.Summarize(),
		Loop:             f.loop.Stats(),
		DutyCycle:        f.ocsSw.DutyCycle(elapsed),
	}
	if f.epsSw != nil {
		m.EPS = f.epsSw.Stats()
	}
	return m
}

// Sample is one periodic observation of a running fabric: the time-series
// counterpart of the final Metrics. Streaming consumers receive one Sample
// per observation interval (queue depths, latency percentiles so far,
// circuit utilization over simulated time).
type Sample struct {
	Time units.Time

	Injected  int64
	Delivered int64

	// Queue depths at the three buffering points, at this instant.
	SwitchQueuedBits units.Size
	HostQueuedBits   units.Size
	EPSQueuedBits    units.Size

	// Latency percentiles over all deliveries so far.
	LatencyP50 units.Duration
	LatencyP99 units.Duration

	// OCSDutyCycle is the circuit utilization over simulated time so far.
	OCSDutyCycle float64

	SchedCycles  int64
	GrantedPairs int64
}

// Sample observes the fabric at the current simulated time. It is
// read-only: sampling does not perturb the simulation, so a run with
// observers attached is bit-identical to the same run without them.
func (f *Fabric) Sample() Sample {
	now := f.sim.Now()
	lat := f.latAll.Summarize()
	s := Sample{
		Time:             now,
		Injected:         f.injected.Value(),
		Delivered:        f.delivered.Value(),
		SwitchQueuedBits: f.voqs.TotalBits(),
		HostQueuedBits:   f.hosts.TotalBits(),
		LatencyP50:       units.Duration(lat.P50),
		LatencyP99:       units.Duration(lat.P99),
		OCSDutyCycle:     f.ocsSw.DutyCycle(units.Duration(now)),
		SchedCycles:      f.loop.Cycles(),
		GrantedPairs:     f.loop.GrantedPairs(),
	}
	if f.epsSw != nil {
		s.EPSQueuedBits = f.epsSw.Stats().QueuedBits
	}
	return s
}

// Throughput returns delivered bits divided by elapsed time, normalized
// to aggregate line capacity: 1.0 means every port ran at line rate.
func (m Metrics) Throughput(ports int, rate units.BitRate) float64 {
	if m.Elapsed <= 0 {
		return 0
	}
	capacity := float64(ports) * float64(rate) * m.Elapsed.Seconds()
	return float64(m.DeliveredBits) / capacity
}

// DeliveredFraction returns delivered bits over injected bits.
func (m Metrics) DeliveredFraction() float64 {
	if m.InjectedBits == 0 {
		return 0
	}
	return float64(m.DeliveredBits) / float64(m.InjectedBits)
}
