package fabric

import (
	"testing"

	"hybridsched/internal/packet"
	"hybridsched/internal/sched"
	"hybridsched/internal/sim"
	"hybridsched/internal/traffic"
	"hybridsched/internal/units"
)

func fastConfig() Config {
	return Config{
		Ports:        4,
		LineRate:     10 * units.Gbps,
		LinkDelay:    500 * units.Nanosecond,
		Slot:         10 * units.Microsecond,
		ReconfigTime: 1 * units.Microsecond,
		Algorithm:    "islip",
		Timing:       sched.DefaultHardware(),
		Pipelined:    true,
		Buffer:       BufferAtSwitch,
	}
}

// runLoad drives a fabric with the given traffic config for dur and
// returns the metrics after a drain period.
func runLoad(t *testing.T, cfg Config, load float64, dur units.Duration) Metrics {
	t.Helper()
	s := sim.New()
	f, err := New(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := traffic.New(traffic.Config{
		Ports:    cfg.Ports,
		LineRate: cfg.LineRate,
		Load:     load,
		Pattern:  traffic.Uniform{},
		Sizes:    traffic.Fixed{Size: 1500 * units.Byte},
		Until:    units.Time(dur),
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	gen.Start(s, f.Inject)
	s.RunUntil(units.Time(dur))
	// Drain: let queued traffic flush.
	s.RunUntil(units.Time(dur + dur/2))
	f.Stop()
	return f.Metrics()
}

func TestFastRegimeDeliversMostTraffic(t *testing.T) {
	m := runLoad(t, fastConfig(), 0.5, 2*units.Millisecond)
	if m.Injected == 0 {
		t.Fatal("no traffic generated")
	}
	if frac := m.DeliveredFraction(); frac < 0.95 {
		t.Fatalf("delivered fraction %.3f, want >= 0.95 (metrics %+v)", frac, m)
	}
	if m.OCS.PktsDelivered == 0 {
		t.Fatal("no packets crossed the OCS")
	}
	if m.DropsVOQ != 0 {
		t.Fatalf("unexpected VOQ drops with unlimited buffers: %d", m.DropsVOQ)
	}
}

func TestPacketConservation(t *testing.T) {
	cfg := fastConfig()
	m := runLoad(t, cfg, 0.7, 2*units.Millisecond)
	accounted := m.Delivered + m.DropsVOQ + m.DropsHost + m.DropsClassify +
		m.OCS.Truncated + m.EPS.Drops
	// Remaining packets must still be queued somewhere (not lost):
	// injected - accounted = in-flight + queued >= 0.
	if accounted > m.Injected {
		t.Fatalf("over-accounted: %d > %d injected", accounted, m.Injected)
	}
	queued := m.Injected - accounted
	if float64(queued) > 0.1*float64(m.Injected) {
		t.Fatalf("%d of %d packets unaccounted after drain", queued, m.Injected)
	}
}

func TestHostRegimeBuffersAtHost(t *testing.T) {
	cfg := fastConfig()
	cfg.Buffer = BufferAtHost
	cfg.ReconfigTime = 100 * units.Microsecond // slow optics
	cfg.Slot = 300 * units.Microsecond
	cfg.Timing = sched.DefaultSoftware()
	cfg.Pipelined = false
	m := runLoad(t, cfg, 0.3, 5*units.Millisecond)
	if m.PeakHostBuffer == 0 {
		t.Fatal("host regime must accumulate host-side backlog")
	}
	// The defining property of Figure 1: in the slow/host regime the host
	// buffer dominates the switch buffer.
	if m.PeakHostBuffer < 10*m.PeakSwitchBuffer {
		t.Fatalf("host peak %v should dwarf switch peak %v",
			m.PeakHostBuffer, m.PeakSwitchBuffer)
	}
	if m.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestSwitchRegimeBuffersAtSwitch(t *testing.T) {
	m := runLoad(t, fastConfig(), 0.6, 2*units.Millisecond)
	if m.PeakSwitchBuffer == 0 {
		t.Fatal("switch regime must use ToR VOQs")
	}
	if m.PeakHostBuffer != 0 {
		t.Fatalf("switch regime must not buffer at hosts, got %v", m.PeakHostBuffer)
	}
}

func TestFasterSwitchingNeedsLessSwitchBuffer(t *testing.T) {
	// Figure 1's monotonicity on the simulated fabric: cutting the
	// reconfiguration dead-time and slot by 10x cuts the peak ToR
	// buffering substantially.
	// Note slots must carry at least one full frame (1500 B = 1.2 us at
	// 10 Gbps), so the fast slot is 3 us, not nanoseconds.
	slow := fastConfig()
	slow.ReconfigTime = 10 * units.Microsecond
	slow.Slot = 30 * units.Microsecond
	fast := fastConfig()
	fast.ReconfigTime = 100 * units.Nanosecond
	fast.Slot = 3 * units.Microsecond

	mSlow := runLoad(t, slow, 0.5, 3*units.Millisecond)
	mFast := runLoad(t, fast, 0.5, 3*units.Millisecond)
	if mFast.PeakSwitchBuffer*2 >= mSlow.PeakSwitchBuffer {
		t.Fatalf("fast switching peak %v not clearly below slow peak %v",
			mFast.PeakSwitchBuffer, mSlow.PeakSwitchBuffer)
	}
}

func TestEPSCarriesMice(t *testing.T) {
	cfg := fastConfig()
	cfg.EnableEPS = true // installs elephant-threshold rules
	s := sim.New()
	f, err := New(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := traffic.New(traffic.Config{
		Ports:                cfg.Ports,
		LineRate:             cfg.LineRate,
		Load:                 0.3,
		Pattern:              traffic.Uniform{},
		Sizes:                traffic.Fixed{Size: 1500 * units.Byte},
		LatencySensitiveFrac: 0.2,
		Until:                units.Time(2 * units.Millisecond),
		Seed:                 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	gen.Start(s, f.Inject)
	s.RunUntil(units.Time(3 * units.Millisecond))
	f.Stop()
	m := f.Metrics()
	if m.EPS.PktsDelivered == 0 {
		t.Fatal("latency-sensitive traffic should ride the EPS")
	}
	if m.OCS.PktsDelivered == 0 {
		t.Fatal("bulk traffic should ride the OCS")
	}
	if m.LatencyMice.Count == 0 {
		t.Fatal("no mice latency samples")
	}
}

func TestResidualShunting(t *testing.T) {
	cfg := fastConfig()
	cfg.EnableEPS = true
	cfg.ResidualTimeout = 50 * units.Microsecond
	cfg.Algorithm = "greedy"
	s := sim.New()
	f, err := New(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-inject a persistent hotspot plus a tiny starved flow: the
	// greedy circuit serves the hotspot; the straggler ages out and must
	// be shunted to the EPS.
	f.Start()
	hot := func() {
		for k := 0; k < 200; k++ {
			f.Inject(&packet.Packet{Src: 0, Dst: 1, Size: 9000 * units.Byte})
			f.Inject(&packet.Packet{Src: 2, Dst: 1, Size: 9000 * units.Byte})
		}
		f.Inject(&packet.Packet{Src: 2, Dst: 3, Size: 1500 * units.Byte})
	}
	s.Schedule(units.Microsecond, hot)
	s.RunUntil(units.Time(5 * units.Millisecond))
	f.Stop()
	m := f.Metrics()
	if m.Shunted == 0 {
		t.Fatal("aged residue was never shunted to the EPS")
	}
	if m.EPS.PktsDelivered == 0 {
		t.Fatal("shunted packets should be delivered by the EPS")
	}
}

func TestLatencyHardwareVsSoftwareScheduler(t *testing.T) {
	// E2: identical workload; the software scheduler's ms-scale loop must
	// inflate packet latency by orders of magnitude.
	hw := fastConfig()
	hw.Slot = 5 * units.Microsecond

	sw := fastConfig()
	sw.Timing = sched.DefaultSoftware()
	sw.Pipelined = false
	sw.Slot = 5 * units.Microsecond

	mHW := runLoad(t, hw, 0.2, 5*units.Millisecond)
	mSW := runLoad(t, sw, 0.2, 5*units.Millisecond)
	if mHW.Latency.Count == 0 || mSW.Latency.Count == 0 {
		t.Fatal("missing latency samples")
	}
	if mSW.Latency.P50 < 10*mHW.Latency.P50 {
		t.Fatalf("software p50 %v should be >=10x hardware p50 %v",
			units.Duration(mSW.Latency.P50), units.Duration(mHW.Latency.P50))
	}
}

func TestDeliverHookAndTimestamps(t *testing.T) {
	cfg := fastConfig()
	s := sim.New()
	f, err := New(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var seen []*packet.Packet
	f.SetDeliverHook(func(p *packet.Packet) { seen = append(seen, p) })
	f.Start()
	f.Inject(&packet.Packet{Src: 0, Dst: 2, Size: 1500 * units.Byte})
	s.RunUntil(units.Time(units.Millisecond))
	f.Stop()
	if len(seen) != 1 {
		t.Fatalf("delivered %d", len(seen))
	}
	p := seen[0]
	if p.DeliveredAt == 0 || !p.DeliveredAt.After(p.CreatedAt) {
		t.Fatalf("timestamps wrong: %+v", p)
	}
	if p.Via != packet.PathOCS {
		t.Fatalf("single auto packet should use OCS, got %v", p.Via)
	}
	if p.Latency() <= 0 {
		t.Fatal("latency must be positive")
	}
}

func TestConfigValidation(t *testing.T) {
	s := sim.New()
	bad := []Config{
		{},
		{Ports: 1, LineRate: units.Gbps, Slot: units.Microsecond, Timing: sched.DefaultHardware()},
		{Ports: 4, Slot: units.Microsecond, Timing: sched.DefaultHardware()},
		{Ports: 4, LineRate: units.Gbps, Timing: sched.DefaultHardware()},
		{Ports: 4, LineRate: units.Gbps, Slot: units.Microsecond},
		{Ports: 4, LineRate: units.Gbps, Slot: units.Microsecond,
			Timing: sched.DefaultHardware(), Algorithm: "bogus"},
	}
	for i, cfg := range bad {
		if _, err := New(s, cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestThroughputMetric(t *testing.T) {
	m := Metrics{Elapsed: units.Second, DeliveredBits: units.Size(10_000_000_000)}
	if got := m.Throughput(1, 10*units.Gbps); got != 1.0 {
		t.Fatalf("throughput = %v, want 1.0", got)
	}
	if (Metrics{}).Throughput(1, units.Gbps) != 0 {
		t.Fatal("zero elapsed should be 0")
	}
	if (Metrics{}).DeliveredFraction() != 0 {
		t.Fatal("zero injected should be 0")
	}
}
