package fabric

import (
	"fmt"
	"testing"

	"hybridsched/internal/match"
	"hybridsched/internal/sched"
	"hybridsched/internal/sim"
	"hybridsched/internal/traffic"
	"hybridsched/internal/units"
)

// runOnce drives one configuration and fingerprints its final metrics.
func runOnce(t *testing.T, cfg Config, seed uint64) string {
	t.Helper()
	s := sim.New()
	f, err := New(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := traffic.New(traffic.Config{
		Ports:         cfg.Ports,
		LineRate:      cfg.LineRate,
		Load:          0.5,
		Pattern:       traffic.Uniform{},
		Sizes:         traffic.TrimodalInternet{},
		Process:       traffic.OnOff,
		BurstMeanPkts: 16,
		Until:         units.Time(units.Millisecond),
		Seed:          seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	gen.Start(s, f.Inject)
	s.RunUntil(units.Time(1500 * units.Microsecond))
	f.Stop()
	m := f.Metrics()
	return fmt.Sprintf("%d|%d|%d|%d|%d|%d|%d|%d",
		m.Injected, m.Delivered, int64(m.DeliveredBits),
		m.Latency.P50, m.Latency.Max,
		m.OCS.Configures, int64(m.PeakSwitchBuffer), int64(m.PeakHostBuffer))
}

// TestDeterminismAcrossAllAlgorithmsAndRegimes reruns every registered
// algorithm in both buffering regimes and demands bit-identical metrics —
// the reproducibility guarantee the whole evaluation methodology rests on.
func TestDeterminismAcrossAllAlgorithmsAndRegimes(t *testing.T) {
	for _, alg := range match.Names() {
		if alg == "test-user-sched" || alg == "lqf" {
			continue // test-local registrations from other packages
		}
		for _, regime := range []BufferPlacement{BufferAtSwitch, BufferAtHost} {
			alg, regime := alg, regime
			t.Run(fmt.Sprintf("%s/%s", alg, regime), func(t *testing.T) {
				cfg := Config{
					Ports:        4,
					LineRate:     10 * units.Gbps,
					LinkDelay:    500 * units.Nanosecond,
					Slot:         20 * units.Microsecond,
					ReconfigTime: units.Microsecond,
					Algorithm:    alg,
					Seed:         9,
					Timing:       sched.DefaultHardware(),
					Pipelined:    true,
					Buffer:       regime,
				}
				a := runOnce(t, cfg, 33)
				b := runOnce(t, cfg, 33)
				if a != b {
					t.Fatalf("nondeterministic run:\n%s\nvs\n%s", a, b)
				}
				// And a different traffic seed must actually change the
				// outcome (guards against metrics being vacuous).
				c := runOnce(t, cfg, 34)
				if a == c {
					t.Fatalf("%s/%v: different seeds produced identical fingerprints", alg, regime)
				}
			})
		}
	}
}
