package fabric

import "hybridsched/internal/metrics"

// Instruments feeds the fabric's observer stream into a metrics.Registry:
// each recorded Sample updates the hybridsched_fabric_* family — counters
// for the cumulative flows (injections, deliveries, scheduler cycles) and
// gauges for the instantaneous state (queue depths, latency percentiles,
// circuit duty cycle). Recording is observational only; the simulation a
// Sample came from is never perturbed.
//
// Metric catalog (see docs/OBSERVABILITY.md):
//
//	hybridsched_fabric_injected_packets_total    counter
//	hybridsched_fabric_delivered_packets_total   counter
//	hybridsched_fabric_sched_cycles_total        counter
//	hybridsched_fabric_granted_pairs_total       counter
//	hybridsched_fabric_switch_queued_bits        gauge
//	hybridsched_fabric_host_queued_bits          gauge
//	hybridsched_fabric_eps_queued_bits           gauge
//	hybridsched_fabric_latency_p50_ns            gauge
//	hybridsched_fabric_latency_p99_ns            gauge
//	hybridsched_fabric_ocs_duty_cycle_ppm        gauge
type Instruments struct {
	injected     *metrics.Counter
	delivered    *metrics.Counter
	schedCycles  *metrics.Counter
	grantedPairs *metrics.Counter
	switchQueued *metrics.Gauge
	hostQueued   *metrics.Gauge
	epsQueued    *metrics.Gauge
	latP50       *metrics.Gauge
	latP99       *metrics.Gauge
	dutyPPM      *metrics.Gauge

	// last is the previous recorded sample: Sample carries cumulative
	// totals, so counter updates are deltas against it.
	last Sample
}

// NewInstruments registers the fabric metric family in r, tagged with the
// given constant labels (for example a fabric or scenario name when one
// registry carries several runs).
func NewInstruments(r *metrics.Registry, labels ...metrics.Label) *Instruments {
	return &Instruments{
		injected: r.Counter("hybridsched_fabric_injected_packets_total",
			"Packets injected into the fabric.", labels...),
		delivered: r.Counter("hybridsched_fabric_delivered_packets_total",
			"Packets delivered to their destination host.", labels...),
		schedCycles: r.Counter("hybridsched_fabric_sched_cycles_total",
			"Completed scheduling-loop cycles.", labels...),
		grantedPairs: r.Counter("hybridsched_fabric_granted_pairs_total",
			"Granted (input, output) pairs across all scheduling cycles.", labels...),
		switchQueued: r.Gauge("hybridsched_fabric_switch_queued_bits",
			"Bits queued in switch VOQs at the last observation.", labels...),
		hostQueued: r.Gauge("hybridsched_fabric_host_queued_bits",
			"Bits queued in host buffers at the last observation.", labels...),
		epsQueued: r.Gauge("hybridsched_fabric_eps_queued_bits",
			"Bits queued in the electrical packet switch at the last observation.", labels...),
		latP50: r.Gauge("hybridsched_fabric_latency_p50_ns",
			"Median delivery latency over the run so far, in nanoseconds.", labels...),
		latP99: r.Gauge("hybridsched_fabric_latency_p99_ns",
			"99th-percentile delivery latency over the run so far, in nanoseconds.", labels...),
		dutyPPM: r.Gauge("hybridsched_fabric_ocs_duty_cycle_ppm",
			"Circuit utilization over simulated time, in parts per million.", labels...),
	}
}

// Record updates every instrument from one observer Sample. Samples must
// arrive in observation order (as the fabric's observer path delivers
// them); a sample whose cumulative totals went backwards — a restarted
// run reusing the instruments — re-bases the deltas without moving the
// counters.
func (in *Instruments) Record(s Sample) {
	in.injected.Add(counterDelta(s.Injected, in.last.Injected))
	in.delivered.Add(counterDelta(s.Delivered, in.last.Delivered))
	in.schedCycles.Add(counterDelta(s.SchedCycles, in.last.SchedCycles))
	in.grantedPairs.Add(counterDelta(s.GrantedPairs, in.last.GrantedPairs))
	in.switchQueued.Set(int64(s.SwitchQueuedBits))
	in.hostQueued.Set(int64(s.HostQueuedBits))
	in.epsQueued.Set(int64(s.EPSQueuedBits))
	in.latP50.Set(int64(s.LatencyP50))
	in.latP99.Set(int64(s.LatencyP99))
	in.dutyPPM.Set(int64(s.OCSDutyCycle * 1e6))
	in.last = s
}

// counterDelta is the non-negative increment between two cumulative
// readings.
func counterDelta(now, prev int64) uint64 {
	if now <= prev {
		return 0
	}
	return uint64(now - prev)
}
