package sched

import (
	"testing"

	"hybridsched/internal/demand"
	"hybridsched/internal/match"
	"hybridsched/internal/sim"
	"hybridsched/internal/units"
)

func TestHardwareVsSoftwareLatencyGap(t *testing.T) {
	// The paper's core quantitative claim: software schedulers operate at
	// milliseconds, hardware at nanoseconds-to-microseconds. Check both
	// models land in their decade for a 64-port iSLIP schedule.
	c := match.NewISLIP(64, 6).Complexity(64)
	hw := DefaultHardware().ComputeLatency(c)
	sw := DefaultSoftware().ComputeLatency(c)
	if hw > 500*units.Nanosecond {
		t.Fatalf("hardware latency %v should be sub-500ns", hw)
	}
	if sw < 500*units.Microsecond {
		t.Fatalf("software latency %v should be >= 0.5ms", sw)
	}
	if ratio := float64(sw) / float64(hw); ratio < 1000 {
		t.Fatalf("hardware/software gap %.0fx; paper claims >= 3 orders of magnitude", ratio)
	}
}

func TestHardwareLatencyScalesWithDepth(t *testing.T) {
	h := DefaultHardware()
	shallow := h.ComputeLatency(match.Complexity{HardwareDepth: 1, SoftwareOps: 1})
	deep := h.ComputeLatency(match.Complexity{HardwareDepth: 100, SoftwareOps: 1})
	if deep <= shallow {
		t.Fatal("latency must grow with depth")
	}
	want := units.Duration(99) * h.ClockPeriod
	if deep-shallow != want {
		t.Fatalf("delta = %v, want %v", deep-shallow, want)
	}
}

func TestSoftwareLatencyComponents(t *testing.T) {
	s := Software{
		DemandCollection: 100 * units.Microsecond,
		PerOp:            units.Nanosecond,
		IOOverhead:       10 * units.Microsecond,
		ControlRTT:       20 * units.Microsecond,
	}
	got := s.ComputeLatency(match.Complexity{SoftwareOps: 1000})
	want := 100*units.Microsecond + 1000*units.Nanosecond + 10*units.Microsecond
	if got != want {
		t.Fatalf("latency = %v, want %v", got, want)
	}
	if s.RequestLatency() != 10*units.Microsecond || s.GrantLatency() != 10*units.Microsecond {
		t.Fatal("request/grant latency should be half the RTT each")
	}
}

func TestModelNames(t *testing.T) {
	if DefaultHardware().Name() != "hardware" || DefaultSoftware().Name() != "software" {
		t.Fatal("names wrong")
	}
}

// loopHarness wires a Loop to scripted demand and records the sequence of
// configure/grant calls.
type loopHarness struct {
	s        *sim.Simulator
	demand   *demand.Matrix
	events   []string
	grants   []match.Matching
	reconfig units.Duration
}

func newLoopHarness(n int, reconfig units.Duration) *loopHarness {
	return &loopHarness{s: sim.New(), demand: demand.NewMatrix(n), reconfig: reconfig}
}

func (h *loopHarness) hooks() Hooks {
	return Hooks{
		Snapshot: func(units.Time) *demand.Matrix {
			h.events = append(h.events, "snapshot")
			return h.demand.Clone()
		},
		Configure: func(m match.Matching, done func()) {
			h.events = append(h.events, "configure")
			h.s.Schedule(h.reconfig, done)
		},
		Grant: func(m match.Matching, window units.Duration) {
			h.events = append(h.events, "grant")
			h.grants = append(h.grants, m.Clone())
		},
	}
}

func TestLoopOrderingConfigureBeforeGrant(t *testing.T) {
	h := newLoopHarness(4, units.Microsecond)
	h.demand.Set(0, 1, 1000)
	loop := NewLoop(h.s, LoopConfig{Ports: 4, Slot: 10 * units.Microsecond},
		match.NewGreedy(4), DefaultHardware(), h.hooks())
	loop.Start()
	h.s.RunUntil(units.Time(100 * units.Microsecond))
	loop.Stop()
	if len(h.events) < 3 {
		t.Fatalf("events = %v", h.events)
	}
	// Every grant must be directly preceded (in causal order) by a
	// configure; the first three events are snapshot, configure, grant.
	if h.events[0] != "snapshot" || h.events[1] != "configure" || h.events[2] != "grant" {
		t.Fatalf("events = %v", h.events)
	}
	for i, e := range h.events {
		if e == "grant" && h.events[i-1] != "configure" {
			t.Fatalf("grant without preceding configure at %d: %v", i, h.events)
		}
	}
}

func TestLoopGrantTimingSerial(t *testing.T) {
	// With hardware timing, grant k fires at
	// k*(compute+reconfig+grantwire+slot) + compute+reconfig+grantwire.
	h := newLoopHarness(4, units.Microsecond)
	h.demand.Set(0, 1, 1000)
	hw := DefaultHardware()
	alg := match.NewGreedy(4)
	var grantTimes []units.Time
	hooks := h.hooks()
	inner := hooks.Grant
	hooks.Grant = func(m match.Matching, w units.Duration) {
		grantTimes = append(grantTimes, h.s.Now())
		inner(m, w)
	}
	slot := 10 * units.Microsecond
	loop := NewLoop(h.s, LoopConfig{Ports: 4, Slot: slot}, alg, hw, hooks)
	loop.Start()
	h.s.RunUntil(units.Time(100 * units.Microsecond))
	loop.Stop()

	compute := hw.ComputeLatency(alg.Complexity(4))
	lead := compute + units.Microsecond + hw.GrantWire
	if len(grantTimes) < 2 {
		t.Fatalf("too few grants: %v", grantTimes)
	}
	if grantTimes[0] != units.Time(lead) {
		t.Fatalf("first grant at %v, want %v", grantTimes[0], lead)
	}
	period := grantTimes[1].Sub(grantTimes[0])
	if period != slot+lead {
		t.Fatalf("grant period %v, want %v", period, slot+lead)
	}
}

func TestLoopSoftwareSchedulesFarFewerCycles(t *testing.T) {
	// Same workload, same slot: the software loop's ms-scale compute
	// means it completes far fewer cycles per unit time — the paper's
	// "slow schedulers cause poor resource utilization" in one number.
	run := func(timing TimingModel) int64 {
		h := newLoopHarness(8, units.Microsecond)
		for i := 0; i < 8; i++ {
			h.demand.Set(i, (i+1)%8, 1000)
		}
		loop := NewLoop(h.s, LoopConfig{Ports: 8, Slot: 10 * units.Microsecond},
			match.NewGreedy(8), timing, h.hooks())
		loop.Start()
		h.s.RunUntil(units.Time(20 * units.Millisecond))
		loop.Stop()
		return loop.Stats().Cycles
	}
	hw := run(DefaultHardware())
	sw := run(DefaultSoftware())
	if hw < 50*sw {
		t.Fatalf("hardware cycles %d vs software %d; want >= 50x more", hw, sw)
	}
}

func TestLoopIdlesOnZeroDemand(t *testing.T) {
	h := newLoopHarness(4, units.Microsecond)
	loop := NewLoop(h.s, LoopConfig{Ports: 4, Slot: 10 * units.Microsecond},
		match.NewGreedy(4), DefaultHardware(), h.hooks())
	loop.Start()
	h.s.RunUntil(units.Time(100 * units.Microsecond))
	loop.Stop()
	st := loop.Stats()
	if st.Cycles == 0 || st.IdleCycles != st.Cycles {
		t.Fatalf("all cycles should be idle: %+v", st)
	}
	for _, e := range h.events {
		if e == "configure" || e == "grant" {
			t.Fatalf("idle loop must not configure or grant: %v", h.events)
		}
	}
}

func TestLoopStaleness(t *testing.T) {
	h := newLoopHarness(4, units.Microsecond)
	h.demand.Set(1, 2, 500)
	sw := DefaultSoftware()
	alg := match.NewGreedy(4)
	loop := NewLoop(h.s, LoopConfig{Ports: 4, Slot: 100 * units.Microsecond}, alg, sw, h.hooks())
	loop.Start()
	h.s.RunUntil(units.Time(10 * units.Millisecond))
	loop.Stop()
	st := loop.Stats()
	wantMin := sw.ComputeLatency(alg.Complexity(4)) + units.Microsecond + sw.GrantLatency()
	if st.Staleness.Min < int64(wantMin) {
		t.Fatalf("staleness min %v < expected %v",
			units.Duration(st.Staleness.Min), wantMin)
	}
}

func TestLoopPipelinedOverlapsCompute(t *testing.T) {
	// With a compute latency shorter than the slot, the pipelined loop's
	// steady-state period is slot + reconfig + grantwire: compute is free.
	h := newLoopHarness(4, units.Microsecond)
	h.demand.Set(0, 1, 1000)
	hw := DefaultHardware()
	var grantTimes []units.Time
	hooks := h.hooks()
	hooks.Grant = func(m match.Matching, w units.Duration) {
		grantTimes = append(grantTimes, h.s.Now())
	}
	slot := 10 * units.Microsecond
	loop := NewLoop(h.s, LoopConfig{Ports: 4, Slot: slot, Pipelined: true},
		match.NewGreedy(4), hw, hooks)
	loop.Start()
	h.s.RunUntil(units.Time(200 * units.Microsecond))
	loop.Stop()
	if len(grantTimes) < 3 {
		t.Fatalf("grants: %v", grantTimes)
	}
	period := grantTimes[2].Sub(grantTimes[1])
	want := slot + units.Microsecond + hw.GrantWire
	if period != want {
		t.Fatalf("pipelined period %v, want %v", period, want)
	}
}

func TestLoopStopHalts(t *testing.T) {
	h := newLoopHarness(4, units.Microsecond)
	h.demand.Set(0, 1, 1000)
	loop := NewLoop(h.s, LoopConfig{Ports: 4, Slot: 10 * units.Microsecond},
		match.NewGreedy(4), DefaultHardware(), h.hooks())
	loop.Start()
	h.s.RunUntil(units.Time(50 * units.Microsecond))
	loop.Stop()
	n := len(h.events)
	h.s.RunUntil(units.Time(500 * units.Microsecond))
	// At most one in-flight stage may complete after Stop.
	if len(h.events) > n+2 {
		t.Fatalf("loop kept running after Stop: %d -> %d events", n, len(h.events))
	}
}

func TestLoopValidation(t *testing.T) {
	s := sim.New()
	hooks := Hooks{
		Snapshot:  func(units.Time) *demand.Matrix { return demand.NewMatrix(4) },
		Configure: func(match.Matching, func()) {},
		Grant:     func(match.Matching, units.Duration) {},
	}
	cases := []func(){
		func() {
			NewLoop(s, LoopConfig{Ports: 0, Slot: units.Microsecond},
				match.NewGreedy(4), DefaultHardware(), hooks)
		},
		func() {
			NewLoop(s, LoopConfig{Ports: 4, Slot: 0},
				match.NewGreedy(4), DefaultHardware(), hooks)
		},
		func() {
			NewLoop(s, LoopConfig{Ports: 4, Slot: units.Microsecond},
				nil, DefaultHardware(), hooks)
		},
		func() {
			NewLoop(s, LoopConfig{Ports: 4, Slot: units.Microsecond},
				match.NewGreedy(4), DefaultHardware(), Hooks{})
		},
	}
	for i, fn := range cases {
		func() {
			defer func() { recover() }()
			fn()
			t.Errorf("case %d: expected panic", i)
		}()
	}
}
