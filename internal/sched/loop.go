package sched

import (
	"hybridsched/internal/demand"
	"hybridsched/internal/match"
	"hybridsched/internal/sim"
	"hybridsched/internal/stats"
	"hybridsched/internal/units"
)

// Hooks connect the scheduling loop to the rest of the switch. All three
// are required.
type Hooks struct {
	// Snapshot returns the demand estimate the schedule is computed from.
	// The loop owns the returned matrix and releases it back to the
	// demand pool once the schedule is computed, so implementations must
	// hand over a caller-owned matrix (estimator Snapshots already do).
	Snapshot func(t units.Time) *demand.Matrix
	// Configure applies a matching to the switching logic and calls done
	// once circuits are usable (after the OCS dead-time). The loop never
	// issues grants before done — the paper's mandated ordering
	// ("the scheduler sends the grant matrix to the switching logic to
	// configure the circuits ... before providing a grant").
	Configure func(m match.Matching, done func())
	// Grant delivers the transmission grants to the processing logic
	// with the transmission window they are valid for.
	Grant func(m match.Matching, window units.Duration)
}

// LoopConfig parameterizes the scheduling loop.
type LoopConfig struct {
	Ports int
	// Slot is the transmission window per configuration.
	Slot units.Duration
	// Pipelined overlaps the next schedule computation with the current
	// transmission window — how a hardware pipeline behaves. When false
	// the loop is strictly serial: estimate, compute, configure, transmit
	// — how a software control loop behaves.
	Pipelined bool
}

// LoopStats summarizes a loop's activity.
type LoopStats struct {
	Cycles     int64
	IdleCycles int64 // cycles with an empty matching (nothing to grant)
	// Staleness is grant-time minus snapshot-time: how old the demand
	// information was when it took effect. The paper's synchronization
	// and estimation-lag costs show up here.
	Staleness stats.Summary
	// GrantedPairs counts (input, output) grants issued.
	GrantedPairs int64
}

// Loop drives the scheduling cycle. Create with NewLoop, then Start.
type Loop struct {
	sim    *sim.Simulator
	cfg    LoopConfig
	alg    match.Algorithm
	timing TimingModel
	hooks  Hooks

	stopped   bool
	cycles    stats.Counter
	idle      stats.Counter
	granted   stats.Counter
	staleness stats.Histogram
}

// NewLoop validates and assembles a loop.
func NewLoop(s *sim.Simulator, cfg LoopConfig, alg match.Algorithm, timing TimingModel, hooks Hooks) *Loop {
	if cfg.Ports <= 0 {
		panic("sched: Ports must be positive")
	}
	if cfg.Slot <= 0 {
		panic("sched: Slot must be positive")
	}
	if alg == nil || timing == nil {
		panic("sched: nil algorithm or timing model")
	}
	if hooks.Snapshot == nil || hooks.Configure == nil || hooks.Grant == nil {
		panic("sched: all hooks are required")
	}
	return &Loop{sim: s, cfg: cfg, alg: alg, timing: timing, hooks: hooks}
}

// Start begins the scheduling cycle at the current simulation time.
func (l *Loop) Start() { l.cycle() }

// Stop halts the loop after the current stage completes.
func (l *Loop) Stop() { l.stopped = true }

// Stats returns a snapshot of loop metrics.
func (l *Loop) Stats() LoopStats {
	return LoopStats{
		Cycles:       l.cycles.Value(),
		IdleCycles:   l.idle.Value(),
		Staleness:    l.staleness.Summarize(),
		GrantedPairs: l.granted.Value(),
	}
}

// Cycles returns the completed scheduling cycles so far. Unlike Stats it
// performs no histogram summarization, so it is cheap enough for
// per-sample observation.
func (l *Loop) Cycles() int64 { return l.cycles.Value() }

// GrantedPairs returns the (input, output) grants issued so far.
func (l *Loop) GrantedPairs() int64 { return l.granted.Value() }

// ComputeLatency exposes the per-cycle schedule-computation latency for
// reports.
func (l *Loop) ComputeLatency() units.Duration {
	return l.timing.ComputeLatency(l.alg.Complexity(l.cfg.Ports))
}

// cycle runs one serial scheduling round: snapshot -> compute -> configure
// -> grant -> transmit -> next round.
func (l *Loop) cycle() {
	if l.stopped {
		return
	}
	t0 := l.sim.Now()
	snap := l.hooks.Snapshot(t0)
	m := l.alg.Schedule(snap)
	// The snapshot is consumed; recycling it keeps the loop from paying
	// an n² matrix allocation every slot at fabric port counts.
	snap.Release()
	lat := l.ComputeLatency()
	l.sim.Schedule(lat, func() { l.configureAndGrant(m, t0, l.nextSerial) })
}

func (l *Loop) nextSerial() {
	l.sim.Schedule(l.cfg.Slot, l.cycle)
}

// configureAndGrant applies m, waits for circuits, grants, then invokes
// next to schedule the following round.
func (l *Loop) configureAndGrant(m match.Matching, t0 units.Time, next func()) {
	if l.stopped {
		return
	}
	if m.Size() == 0 {
		// Nothing to schedule: skip the reconfiguration, burn one slot.
		l.cycles.Inc()
		l.idle.Inc()
		next()
		return
	}
	l.hooks.Configure(m, func() {
		if l.stopped {
			return
		}
		l.sim.Schedule(l.timing.GrantLatency(), func() {
			if l.stopped {
				return
			}
			l.cycles.Inc()
			l.granted.Add(int64(m.Size()))
			l.staleness.Record(int64(l.sim.Now().Sub(t0)))
			l.hooks.Grant(m, l.cfg.Slot)
			if l.cfg.Pipelined {
				l.pipelineNext()
			} else {
				next()
			}
		})
	})
}

// pipelineNext starts computing the next schedule immediately (overlapping
// the current transmission window) and configures at whichever finishes
// later: the window or the computation.
func (l *Loop) pipelineNext() {
	if l.stopped {
		return
	}
	t0 := l.sim.Now()
	snap := l.hooks.Snapshot(t0)
	m := l.alg.Schedule(snap)
	snap.Release()
	lat := l.ComputeLatency()
	wait := l.cfg.Slot
	if lat > wait {
		wait = lat
	}
	l.sim.Schedule(wait, func() {
		l.configureAndGrant(m, t0, l.pipelineNext)
	})
}
