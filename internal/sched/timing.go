// Package sched implements the paper's scheduling logic: the engine that
// turns VOQ scheduling requests into a demand estimate, runs the pluggable
// matching algorithm, configures the switching logic, and issues
// transmission grants to the processing logic (the Figure 2 control loop).
//
// Its central modeling contribution is the pair of timing models. §2 of
// the paper enumerates why software schedulers sit at milliseconds —
// demand-estimation delay, schedule-computation time, I/O processing and
// host↔switch propagation — while a hardware scheduler collapses all four
// terms to nanoseconds. Each term is an explicit field here so experiments
// can sweep them independently.
package sched

import (
	"hybridsched/internal/match"
	"hybridsched/internal/units"
)

// TimingModel converts algorithmic complexity into wall-clock scheduling
// latency and exposes the request-path latency from processing logic to
// the scheduler.
type TimingModel interface {
	// ComputeLatency is the time from demand snapshot to a computed
	// schedule.
	ComputeLatency(c match.Complexity) units.Duration
	// RequestLatency is the one-way latency for a VOQ status report (or
	// host request) to reach the scheduler.
	RequestLatency() units.Duration
	// GrantLatency is the one-way latency for a grant to reach the
	// processing logic (or host).
	GrantLatency() units.Duration
	// Name identifies the model in reports.
	Name() string
}

// Hardware models an on-chip scheduler in the style of the paper's
// NetFPGA-SUME framework: per-port arbiters in parallel, one complexity
// "step" per clock, a fixed pipeline in and out, and on-chip request/grant
// wiring.
type Hardware struct {
	// ClockPeriod is the FPGA fabric clock. NetFPGA-SUME designs commonly
	// close timing at 200 MHz; 5 ns is the default.
	ClockPeriod units.Duration
	// PipelineDepth is the fixed in/out pipeline (register stages) around
	// the arbiter core.
	PipelineDepth int
	// RequestWire and GrantWire are the on-chip wire latencies.
	RequestWire units.Duration
	GrantWire   units.Duration
}

// DefaultHardware returns a 200 MHz, 4-stage-pipeline hardware model.
func DefaultHardware() Hardware {
	return Hardware{
		ClockPeriod:   5 * units.Nanosecond,
		PipelineDepth: 4,
		RequestWire:   10 * units.Nanosecond,
		GrantWire:     10 * units.Nanosecond,
	}
}

// ComputeLatency implements TimingModel.
func (h Hardware) ComputeLatency(c match.Complexity) units.Duration {
	steps := c.HardwareDepth + h.PipelineDepth
	return units.Duration(steps) * h.ClockPeriod
}

// RequestLatency implements TimingModel.
func (h Hardware) RequestLatency() units.Duration { return h.RequestWire }

// GrantLatency implements TimingModel.
func (h Hardware) GrantLatency() units.Duration { return h.GrantWire }

// Name implements TimingModel.
func (h Hardware) Name() string { return "hardware" }

// Software models the control loops of Helios and c-Through: demand is
// gathered by polling counters over the management network, the schedule
// is computed on a CPU, and configuration/grants traverse the same
// network. Every term defaults to published control-plane magnitudes, so
// the total lands where the paper says software schedulers live: around a
// millisecond.
type Software struct {
	// DemandCollection is the time to poll flow/queue counters from all
	// ports (Helios measured hundreds of microseconds to milliseconds).
	DemandCollection units.Duration
	// PerOp is the effective time per scalar operation of the schedule
	// computation on a CPU, including memory traffic.
	PerOp units.Duration
	// IOOverhead is kernel/PCIe/driver overhead per control operation.
	IOOverhead units.Duration
	// ControlRTT is the host<->controller network round trip.
	ControlRTT units.Duration
}

// DefaultSoftware returns a control loop with Helios-like constants:
// 500 us demand collection, 1 ns/op compute, 30 us I/O, 100 us RTT.
func DefaultSoftware() Software {
	return Software{
		DemandCollection: 500 * units.Microsecond,
		PerOp:            1 * units.Nanosecond,
		IOOverhead:       30 * units.Microsecond,
		ControlRTT:       100 * units.Microsecond,
	}
}

// ComputeLatency implements TimingModel.
func (s Software) ComputeLatency(c match.Complexity) units.Duration {
	return s.DemandCollection +
		units.Duration(c.SoftwareOps)*s.PerOp +
		s.IOOverhead
}

// RequestLatency implements TimingModel.
func (s Software) RequestLatency() units.Duration { return s.ControlRTT / 2 }

// GrantLatency implements TimingModel.
func (s Software) GrantLatency() units.Duration { return s.ControlRTT / 2 }

// Name implements TimingModel.
func (s Software) Name() string { return "software" }
