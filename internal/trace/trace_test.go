package trace

import (
	"bytes"
	"errors"
	"testing"

	"hybridsched/internal/packet"
	"hybridsched/internal/sim"
	"hybridsched/internal/traffic"
	"hybridsched/internal/units"
)

func sampleRecords() []Record {
	return []Record{
		{Time: 0, ID: 1, Flow: 10, Src: 0, Dst: 3, Size: 12000, Class: 0},
		{Time: units.Time(5 * units.Microsecond), ID: 2, Flow: 10, Src: 0, Dst: 3, Size: 12000, Class: 1},
		{Time: units.Time(9 * units.Microsecond), ID: 3, Flow: 11, Src: 2, Dst: 1, Size: 512, Class: 2, Via: 1},
	}
}

func TestWriteAllReadAllRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	recs := sampleRecords()
	if err := WriteAll(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

func TestStreamedWriterZeroCountReadsToEOF(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sampleRecords() {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Fatalf("count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
}

func TestReadAllRejectsGarbage(t *testing.T) {
	if _, err := ReadAll(bytes.NewReader([]byte("not a trace at all!!"))); err == nil {
		t.Fatal("expected error for bad magic")
	}
	if _, err := ReadAll(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected error for empty input")
	}
	// Valid header claiming more records than present.
	var buf bytes.Buffer
	if err := WriteAll(&buf, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()-10]
	if _, err := ReadAll(bytes.NewReader(truncated)); err == nil {
		t.Fatal("expected error for truncated trace")
	}
}

// TestReadAllDistinctErrors pins the reader's failure taxonomy: each
// malformation yields its own wrapped error, every one of which still
// matches the ErrBadTrace umbrella.
func TestReadAllDistinctErrors(t *testing.T) {
	whole := func() []byte {
		var buf bytes.Buffer
		if err := WriteAll(&buf, sampleRecords()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	streamed := func() []byte {
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range sampleRecords() {
			if err := w.Write(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	badVersion := whole()
	badVersion[4] = 99
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty input", nil, ErrTruncated},
		{"short header", whole()[:10], ErrTruncated},
		{"bad magic", []byte("not a trace at all!!"), ErrBadMagic},
		{"bad version", badVersion, ErrBadVersion},
		{"truncated mid-record", whole()[:len(whole())-10], ErrTruncated},
		{"fewer records than declared", whole()[:len(whole())-recordSize], ErrTruncated},
		{"trailing data past declared count", append(whole(), make([]byte, recordSize)...), ErrCountMismatch},
		{"streamed trace with partial trailing record", streamed()[:len(streamed())-10], ErrTruncated},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadAll(bytes.NewReader(c.data))
			if err == nil {
				t.Fatal("expected error")
			}
			if !errors.Is(err, c.want) {
				t.Fatalf("err = %v, want errors.Is(%v)", err, c.want)
			}
			if !errors.Is(err, ErrBadTrace) {
				t.Fatalf("err = %v does not wrap ErrBadTrace", err)
			}
		})
	}
	// The sub-errors must stay distinguishable from each other.
	if _, err := ReadAll(bytes.NewReader(badVersion)); errors.Is(err, ErrBadMagic) || errors.Is(err, ErrTruncated) {
		t.Fatalf("bad-version error %v matches unrelated sub-errors", err)
	}
}

// TestReadAllStreamedCompleteStillWorks guards the zero-count contract:
// a cleanly flushed streamed trace (count 0, whole records) parses fine.
func TestReadAllStreamedCompleteStillWorks(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sampleRecords() {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil || len(got) != 3 {
		t.Fatalf("len=%d err=%v", len(got), err)
	}
}

func TestPacketRoundTrip(t *testing.T) {
	p := &packet.Packet{
		ID: 42, Flow: 7, Src: 3, Dst: 9,
		Size: 1500 * units.Byte, Class: packet.ClassBulk,
		CreatedAt: units.Time(units.Millisecond), Via: packet.PathOCS,
	}
	got := FromPacket(p).ToPacket()
	if got.ID != p.ID || got.Flow != p.Flow || got.Src != p.Src || got.Dst != p.Dst ||
		got.Size != p.Size || got.Class != p.Class || got.CreatedAt != p.CreatedAt ||
		got.Via != p.Via {
		t.Fatalf("round trip lost fields: %+v vs %+v", got, p)
	}
}

func TestReplayTiming(t *testing.T) {
	s := sim.New()
	var times []units.Time
	n, err := Replay(s, sampleRecords(), func(p *packet.Packet) {
		times = append(times, s.Now())
	})
	if err != nil || n != 3 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	s.Run()
	want := []units.Time{0, units.Time(5 * units.Microsecond), units.Time(9 * units.Microsecond)}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("packet %d at %v, want %v", i, times[i], want[i])
		}
	}
}

func TestReplayRejectsUnsorted(t *testing.T) {
	recs := sampleRecords()
	recs[0].Time = units.Time(units.Second)
	if _, err := Replay(sim.New(), recs, func(*packet.Packet) {}); err == nil {
		t.Fatal("expected out-of-order error")
	}
}

// TestCaptureThenReplayIsBitIdentical is the headline property: capture a
// generator's offered traffic, replay it, and the replayed stream matches
// the original packet for packet.
func TestCaptureThenReplayIsBitIdentical(t *testing.T) {
	gen, err := traffic.New(traffic.Config{
		Ports:    4,
		LineRate: 10 * units.Gbps,
		Load:     0.5,
		Pattern:  traffic.Uniform{},
		Sizes:    traffic.TrimodalInternet{},
		Until:    units.Time(2 * units.Millisecond),
		Seed:     77,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Capture.
	s1 := sim.New()
	var captured []Record
	gen.Start(s1, Capture(&captured, nil))
	s1.Run()
	if len(captured) < 100 {
		t.Fatalf("too few packets captured: %d", len(captured))
	}
	// Serialize + parse + replay.
	var buf bytes.Buffer
	if err := WriteAll(&buf, captured); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s2 := sim.New()
	var replayed []Record
	if _, err := Replay(s2, parsed, func(p *packet.Packet) {
		replayed = append(replayed, FromPacket(p))
	}); err != nil {
		t.Fatal(err)
	}
	s2.Run()
	if len(replayed) != len(captured) {
		t.Fatalf("replayed %d of %d", len(replayed), len(captured))
	}
	for i := range captured {
		if replayed[i] != captured[i] {
			t.Fatalf("packet %d differs: %+v vs %+v", i, replayed[i], captured[i])
		}
	}
}

func TestCaptureForwards(t *testing.T) {
	var recs []Record
	forwarded := 0
	hook := Capture(&recs, func(*packet.Packet) { forwarded++ })
	hook(&packet.Packet{ID: 1})
	hook(&packet.Packet{ID: 2})
	if len(recs) != 2 || forwarded != 2 {
		t.Fatalf("recs=%d forwarded=%d", len(recs), forwarded)
	}
}
