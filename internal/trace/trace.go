// Package trace records and replays packet traces in a compact binary
// format. The paper pitches its framework for evaluation "under real
// traffic workloads"; traces are how those workloads enter and leave the
// simulator — capture a generator's output once, replay it bit-identically
// against every scheduler under test, or import a record produced
// elsewhere.
//
// Format: a 16-byte header (magic "HSTR", version, record count) followed
// by fixed-size little-endian records. Everything is stdlib
// encoding/binary.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"hybridsched/internal/packet"
	"hybridsched/internal/sim"
	"hybridsched/internal/units"
)

// Magic identifies trace files.
const Magic = "HSTR"

// Version of the on-disk format.
const Version uint32 = 1

// Record is one traced packet event.
type Record struct {
	Time  units.Time // creation (capture) time
	ID    uint64
	Flow  uint64
	Src   uint16
	Dst   uint16
	Size  uint32 // bits
	Class uint8
	Via   uint8 // packet.Path of delivery traces; 0 for offered traces
}

const recordSize = 8 + 8 + 8 + 2 + 2 + 4 + 1 + 1 + 6 // +6 pad to 40 bytes

// FromPacket builds an offered-traffic record.
func FromPacket(p *packet.Packet) Record {
	return Record{
		Time:  p.CreatedAt,
		ID:    p.ID,
		Flow:  p.Flow,
		Src:   uint16(p.Src),
		Dst:   uint16(p.Dst),
		Size:  uint32(p.Size),
		Class: uint8(p.Class),
		Via:   uint8(p.Via),
	}
}

// ToPacket reconstructs a packet (timestamps beyond CreatedAt are zero).
func (r Record) ToPacket() *packet.Packet {
	return &packet.Packet{
		ID:        r.ID,
		Flow:      r.Flow,
		Src:       packet.Port(r.Src),
		Dst:       packet.Port(r.Dst),
		Size:      units.Size(r.Size),
		Class:     packet.Class(r.Class),
		CreatedAt: r.Time,
		Via:       packet.Path(r.Via),
	}
}

// Writer streams records to an io.Writer. Close (or Flush) finalizes the
// header count, so the underlying writer must be an io.WriteSeeker for
// the count to be patched — use WriteAll for one-shot writing to plain
// writers.
type Writer struct {
	w     *bufio.Writer
	count uint64
}

// NewWriter writes a header with a zero count placeholder; pair with
// WriteAll-style readers that tolerate trailing truncation, or prefer
// WriteAll when the record set is known up front.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, 0); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

func writeHeader(w io.Writer, count uint64) error {
	if _, err := w.Write([]byte(Magic)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, Version); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, count)
}

// Write appends one record.
func (w *Writer) Write(r Record) error {
	w.count++
	return writeRecord(w.w, r)
}

func writeRecord(w io.Writer, r Record) error {
	var buf [recordSize]byte
	le := binary.LittleEndian
	le.PutUint64(buf[0:], uint64(r.Time))
	le.PutUint64(buf[8:], r.ID)
	le.PutUint64(buf[16:], r.Flow)
	le.PutUint16(buf[24:], r.Src)
	le.PutUint16(buf[26:], r.Dst)
	le.PutUint32(buf[28:], r.Size)
	buf[32] = r.Class
	buf[33] = r.Via
	_, err := w.Write(buf[:])
	return err
}

// Count returns the number of records written.
func (w *Writer) Count() uint64 { return w.count }

// Flush drains buffered records. The header count remains zero (readers
// fall back to reading until EOF when the header count is zero).
func (w *Writer) Flush() error { return w.w.Flush() }

// WriteAll writes a complete trace with an exact header count.
func WriteAll(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, uint64(len(records))); err != nil {
		return err
	}
	for _, r := range records {
		if err := writeRecord(bw, r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ErrBadTrace reports a malformed header or record stream. The specific
// failure modes below all wrap it, so errors.Is(err, ErrBadTrace) catches
// any malformed trace while the sub-errors stay distinguishable.
var ErrBadTrace = errors.New("trace: malformed trace")

// Distinct failure modes of ReadAll. Each wraps ErrBadTrace.
var (
	// ErrBadMagic: the stream does not start with the HSTR magic.
	ErrBadMagic = fmt.Errorf("%w: bad magic", ErrBadTrace)
	// ErrBadVersion: the header carries an unsupported format version.
	ErrBadVersion = fmt.Errorf("%w: unsupported version", ErrBadTrace)
	// ErrTruncated: the stream ends mid-header or mid-record, or before
	// the record count the header declares.
	ErrTruncated = fmt.Errorf("%w: truncated", ErrBadTrace)
	// ErrCountMismatch: the stream carries more data than the non-zero
	// record count the header declares.
	ErrCountMismatch = fmt.Errorf("%w: record count mismatch", ErrBadTrace)
)

// ReadAll parses a complete trace. A zero header count means "read until
// EOF" (streamed traces); a non-zero count must match the stream exactly —
// fewer records is ErrTruncated, trailing data is ErrCountMismatch.
func ReadAll(r io.Reader) ([]Record, error) {
	br := bufio.NewReader(r)
	head := make([]byte, 16)
	if n, err := io.ReadFull(br, head); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: header: got %d of 16 bytes", ErrTruncated, n)
		}
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	if string(head[:4]) != Magic {
		return nil, fmt.Errorf("%w %q (want %q)", ErrBadMagic, head[:4], Magic)
	}
	le := binary.LittleEndian
	if v := le.Uint32(head[4:]); v != Version {
		return nil, fmt.Errorf("%w %d (want %d)", ErrBadVersion, v, Version)
	}
	count := le.Uint64(head[8:])
	var out []Record
	var buf [recordSize]byte
	for {
		if count > 0 && uint64(len(out)) == count {
			break
		}
		_, err := io.ReadFull(br, buf[:])
		if err == io.EOF && count == 0 {
			break
		}
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			if count > 0 {
				return nil, fmt.Errorf("%w: record %d of %d declared", ErrTruncated, len(out), count)
			}
			return nil, fmt.Errorf("%w: partial record %d", ErrTruncated, len(out))
		}
		if err != nil {
			return nil, fmt.Errorf("trace: read record %d: %w", len(out), err)
		}
		out = append(out, Record{
			Time:  units.Time(le.Uint64(buf[0:])),
			ID:    le.Uint64(buf[8:]),
			Flow:  le.Uint64(buf[16:]),
			Src:   le.Uint16(buf[24:]),
			Dst:   le.Uint16(buf[26:]),
			Size:  le.Uint32(buf[28:]),
			Class: buf[32],
			Via:   buf[33],
		})
	}
	if count > 0 {
		if extra, err := io.CopyN(io.Discard, br, 1); err == nil && extra > 0 {
			return nil, fmt.Errorf("%w: header declares %d records but data follows record %d",
				ErrCountMismatch, count, count)
		}
	}
	return out, nil
}

// Replay schedules every record's packet at its recorded time and feeds
// it to emit — a drop-in replacement for a live traffic generator.
// Records must be time-sorted (ReadAll output from a capture is). It
// returns the number of packets scheduled.
func Replay(s *sim.Simulator, records []Record, emit func(*packet.Packet)) (int, error) {
	var prev units.Time
	for i, r := range records {
		if r.Time < prev {
			return 0, fmt.Errorf("trace: record %d out of order (%v after %v)", i, r.Time, prev)
		}
		prev = r.Time
		rec := r
		s.At(rec.Time, func() { emit(rec.ToPacket()) })
	}
	return len(records), nil
}

// Capture hooks a callback chain: it records every packet passing through
// and forwards to next (which may be nil).
func Capture(records *[]Record, next func(*packet.Packet)) func(*packet.Packet) {
	return func(p *packet.Packet) {
		*records = append(*records, FromPacket(p))
		if next != nil {
			next(p)
		}
	}
}
