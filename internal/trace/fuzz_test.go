package trace

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReadTrace feeds arbitrary byte streams to ReadAll. The contract
// under fuzzing: every input either parses into records or fails with an
// error wrapped in ErrBadTrace — never a panic, never a foreign error —
// and anything that parses must survive a write/read round trip intact.
// The committed golden HSTR traces seed the corpus so mutations start
// from structurally valid captures.
func FuzzReadTrace(f *testing.F) {
	corpus, _ := filepath.Glob(filepath.Join("..", "..", "testdata", "*.hstr"))
	for _, path := range corpus {
		if data, err := os.ReadFile(path); err == nil {
			f.Add(data)
		}
	}
	if len(corpus) == 0 {
		f.Log("no testdata/*.hstr seeds found; fuzzing from synthetic seeds only")
	}
	// Synthetic seeds for the failure modes.
	f.Add([]byte{})                                    // truncated header
	f.Add([]byte("HSTR"))                              // header cut mid-version
	f.Add([]byte("JUNKJUNKJUNKJUNK"))                  // bad magic
	f.Add(append([]byte("HSTR"), make([]byte, 12)...)) // empty v0 header
	var one bytes.Buffer
	if err := WriteAll(&one, []Record{{Time: 42, ID: 1, Src: 2, Dst: 3, Size: 12000}}); err != nil {
		f.Fatal(err)
	}
	f.Add(one.Bytes())
	f.Add(one.Bytes()[:len(one.Bytes())-5]) // truncated mid-record

	f.Fuzz(func(t *testing.T, data []byte) {
		records, err := ReadAll(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadTrace) {
				t.Fatalf("error not wrapped in ErrBadTrace: %v", err)
			}
			return
		}
		// Accepted input: the records must round-trip bit-identically.
		var buf bytes.Buffer
		if err := WriteAll(&buf, records); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		again, err := ReadAll(&buf)
		if err != nil {
			t.Fatalf("re-read of re-encoded trace failed: %v", err)
		}
		if len(again) != len(records) {
			t.Fatalf("round trip changed record count: %d -> %d", len(records), len(again))
		}
		for i := range records {
			if records[i] != again[i] {
				t.Fatalf("record %d changed in round trip: %+v -> %+v", i, records[i], again[i])
			}
		}
	})
}
