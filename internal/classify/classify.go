// Package classify implements the processing logic's configurable look-up
// table: the paper's "packets are classified into flows based on
// configurable look-up rules and placed into their respective Virtual
// Output Queue".
//
// Rules match on (src, dst, class, size range) with wildcards and yield an
// Action: which fabric the flow may use (EPS-only, OCS-eligible, or
// auto/scheduler's choice), a drop bit, and a priority. Highest-priority
// matching rule wins; ties break to the earliest-installed rule, which is
// how TCAMs resolve same-priority overlap.
package classify

import (
	"fmt"
	"sort"

	"hybridsched/internal/packet"
	"hybridsched/internal/units"
)

// Any is the wildcard for port and class match fields.
const Any = -1

// PathHint tells the scheduler which fabric a flow may use.
type PathHint uint8

// PathHint values.
const (
	Auto    PathHint = iota // scheduler decides (default)
	EPSOnly                 // must use the packet switch (e.g. latency-sensitive)
	OCSOnly                 // must wait for a circuit (e.g. known bulk transfer)
)

func (h PathHint) String() string {
	switch h {
	case EPSOnly:
		return "eps-only"
	case OCSOnly:
		return "ocs-only"
	default:
		return "auto"
	}
}

// Action is the result of a classification.
type Action struct {
	Hint     PathHint
	Drop     bool
	Priority uint8 // larger = more urgent; used by the EPS output queues
}

// Rule is one look-up entry.
type Rule struct {
	ID       int // assigned by the table
	Priority int // larger matches first
	Src      int // port or Any
	Dst      int // port or Any
	Class    int // packet.Class or Any
	MinSize  units.Size
	MaxSize  units.Size // 0 means unbounded
	Action   Action
}

// Matches reports whether the rule matches p.
func (r *Rule) Matches(p *packet.Packet) bool {
	if r.Src != Any && packet.Port(r.Src) != p.Src {
		return false
	}
	if r.Dst != Any && packet.Port(r.Dst) != p.Dst {
		return false
	}
	if r.Class != Any && packet.Class(r.Class) != p.Class {
		return false
	}
	if p.Size < r.MinSize {
		return false
	}
	if r.MaxSize > 0 && p.Size > r.MaxSize {
		return false
	}
	return true
}

// Table is an ordered look-up table. The zero value is an empty table whose
// default action is {Auto, no drop, priority 0}.
type Table struct {
	rules   []Rule // sorted: higher Priority first, then lower ID first
	nextID  int
	def     Action
	lookups int64
	misses  int64
}

// New returns an empty table with the given default action.
func New(def Action) *Table { return &Table{def: def} }

// SetDefault replaces the default (miss) action.
func (t *Table) SetDefault(a Action) { t.def = a }

// Add installs a rule and returns its assigned ID.
func (t *Table) Add(r Rule) int {
	r.ID = t.nextID
	t.nextID++
	t.rules = append(t.rules, r)
	sort.SliceStable(t.rules, func(i, j int) bool {
		if t.rules[i].Priority != t.rules[j].Priority {
			return t.rules[i].Priority > t.rules[j].Priority
		}
		return t.rules[i].ID < t.rules[j].ID
	})
	return r.ID
}

// Remove deletes the rule with the given ID. It returns an error if no such
// rule exists.
func (t *Table) Remove(id int) error {
	for i := range t.rules {
		if t.rules[i].ID == id {
			t.rules = append(t.rules[:i], t.rules[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("classify: no rule with id %d", id)
}

// Len returns the number of installed rules.
func (t *Table) Len() int { return len(t.rules) }

// Rules returns a copy of the installed rules in match order.
func (t *Table) Rules() []Rule {
	out := make([]Rule, len(t.rules))
	copy(out, t.rules)
	return out
}

// Classify returns the action for p: the highest-priority matching rule's
// action, or the default action on a miss.
func (t *Table) Classify(p *packet.Packet) Action {
	t.lookups++
	for i := range t.rules {
		if t.rules[i].Matches(p) {
			return t.rules[i].Action
		}
	}
	t.misses++
	return t.def
}

// Stats returns (lookups, misses) since creation.
func (t *Table) Stats() (lookups, misses int64) { return t.lookups, t.misses }

// ElephantThresholdRules returns the classic hybrid-switch configuration:
// frames of minSize bits or larger are OCS-eligible bulk, smaller frames
// and the latency-sensitive class stay on the EPS. This mirrors the
// Helios/c-Through policy of offloading long bursts to circuits.
func ElephantThresholdRules(minSize units.Size) []Rule {
	return []Rule{
		{
			Priority: 100,
			Src:      Any, Dst: Any,
			Class:  int(packet.ClassLatencySensitive),
			Action: Action{Hint: EPSOnly, Priority: 2},
		},
		{
			Priority: 50,
			Src:      Any, Dst: Any,
			Class:   Any,
			MinSize: minSize,
			Action:  Action{Hint: Auto, Priority: 0},
		},
		{
			Priority: 10,
			Src:      Any, Dst: Any,
			Class:  Any,
			Action: Action{Hint: EPSOnly, Priority: 1},
		},
	}
}
