package classify

import (
	"testing"
	"testing/quick"

	"hybridsched/internal/packet"
	"hybridsched/internal/rng"
	"hybridsched/internal/units"
)

func pkt(src, dst packet.Port, class packet.Class, size units.Size) *packet.Packet {
	return &packet.Packet{Src: src, Dst: dst, Class: class, Size: size}
}

func TestDefaultOnEmptyTable(t *testing.T) {
	tab := New(Action{Hint: EPSOnly, Priority: 7})
	a := tab.Classify(pkt(0, 1, packet.ClassBestEffort, 64*units.Byte))
	if a.Hint != EPSOnly || a.Priority != 7 {
		t.Fatalf("got %+v", a)
	}
	lookups, misses := tab.Stats()
	if lookups != 1 || misses != 1 {
		t.Fatalf("stats = %d, %d", lookups, misses)
	}
}

func TestPriorityOrdering(t *testing.T) {
	tab := New(Action{})
	tab.Add(Rule{Priority: 1, Src: Any, Dst: Any, Class: Any, Action: Action{Priority: 1}})
	tab.Add(Rule{Priority: 9, Src: Any, Dst: Any, Class: Any, Action: Action{Priority: 9}})
	a := tab.Classify(pkt(0, 1, 0, 64*units.Byte))
	if a.Priority != 9 {
		t.Fatalf("highest-priority rule should win, got %+v", a)
	}
}

func TestTieBreaksToEarliestInstalled(t *testing.T) {
	tab := New(Action{})
	tab.Add(Rule{Priority: 5, Src: Any, Dst: Any, Class: Any, Action: Action{Priority: 1}})
	tab.Add(Rule{Priority: 5, Src: Any, Dst: Any, Class: Any, Action: Action{Priority: 2}})
	a := tab.Classify(pkt(0, 1, 0, 64*units.Byte))
	if a.Priority != 1 {
		t.Fatalf("earliest-installed rule should win ties, got %+v", a)
	}
}

func TestFieldMatching(t *testing.T) {
	tab := New(Action{})
	tab.Add(Rule{Priority: 5, Src: 3, Dst: Any, Class: Any, Action: Action{Drop: true}})
	if !tab.Classify(pkt(3, 1, 0, 64*units.Byte)).Drop {
		t.Fatal("src match failed")
	}
	if tab.Classify(pkt(4, 1, 0, 64*units.Byte)).Drop {
		t.Fatal("src mismatch matched")
	}

	tab2 := New(Action{})
	tab2.Add(Rule{Priority: 5, Src: Any, Dst: 7, Class: Any, Action: Action{Drop: true}})
	if !tab2.Classify(pkt(0, 7, 0, 64*units.Byte)).Drop {
		t.Fatal("dst match failed")
	}
	if tab2.Classify(pkt(0, 8, 0, 64*units.Byte)).Drop {
		t.Fatal("dst mismatch matched")
	}

	tab3 := New(Action{})
	tab3.Add(Rule{Priority: 5, Src: Any, Dst: Any,
		Class: int(packet.ClassBulk), Action: Action{Drop: true}})
	if !tab3.Classify(pkt(0, 1, packet.ClassBulk, 64*units.Byte)).Drop {
		t.Fatal("class match failed")
	}
	if tab3.Classify(pkt(0, 1, packet.ClassBestEffort, 64*units.Byte)).Drop {
		t.Fatal("class mismatch matched")
	}
}

func TestSizeRange(t *testing.T) {
	tab := New(Action{})
	tab.Add(Rule{Priority: 5, Src: Any, Dst: Any, Class: Any,
		MinSize: 1000 * units.Byte, MaxSize: 2000 * units.Byte,
		Action: Action{Drop: true}})
	if tab.Classify(pkt(0, 1, 0, 999*units.Byte)).Drop {
		t.Fatal("below MinSize matched")
	}
	if !tab.Classify(pkt(0, 1, 0, 1000*units.Byte)).Drop {
		t.Fatal("at MinSize should match")
	}
	if !tab.Classify(pkt(0, 1, 0, 2000*units.Byte)).Drop {
		t.Fatal("at MaxSize should match")
	}
	if tab.Classify(pkt(0, 1, 0, 2001*units.Byte)).Drop {
		t.Fatal("above MaxSize matched")
	}
}

func TestZeroMaxSizeIsUnbounded(t *testing.T) {
	tab := New(Action{})
	tab.Add(Rule{Priority: 5, Src: Any, Dst: Any, Class: Any,
		MinSize: units.Byte, Action: Action{Drop: true}})
	if !tab.Classify(pkt(0, 1, 0, packet.MaxFrame)).Drop {
		t.Fatal("unbounded MaxSize should match jumbo frame")
	}
}

func TestRemove(t *testing.T) {
	tab := New(Action{})
	id := tab.Add(Rule{Priority: 5, Src: Any, Dst: Any, Class: Any, Action: Action{Drop: true}})
	if tab.Len() != 1 {
		t.Fatal("add failed")
	}
	if err := tab.Remove(id); err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 0 {
		t.Fatal("remove failed")
	}
	if err := tab.Remove(id); err == nil {
		t.Fatal("expected error removing absent rule")
	}
	if tab.Classify(pkt(0, 1, 0, 64*units.Byte)).Drop {
		t.Fatal("removed rule still matching")
	}
}

func TestRulesReturnsCopy(t *testing.T) {
	tab := New(Action{})
	tab.Add(Rule{Priority: 5, Src: Any, Dst: Any, Class: Any})
	rules := tab.Rules()
	rules[0].Priority = 999
	if tab.Rules()[0].Priority == 999 {
		t.Fatal("Rules exposed internal state")
	}
}

func TestElephantThresholdRules(t *testing.T) {
	tab := New(Action{})
	for _, r := range ElephantThresholdRules(1500 * units.Byte) {
		tab.Add(r)
	}
	// Latency-sensitive always EPS, regardless of size.
	a := tab.Classify(pkt(0, 1, packet.ClassLatencySensitive, 9000*units.Byte))
	if a.Hint != EPSOnly {
		t.Fatalf("latency-sensitive jumbo got %v, want eps-only", a.Hint)
	}
	// Big best-effort frame is OCS-eligible (Auto).
	a = tab.Classify(pkt(0, 1, packet.ClassBestEffort, 1500*units.Byte))
	if a.Hint != Auto {
		t.Fatalf("elephant got %v, want auto", a.Hint)
	}
	// Small frame pinned to EPS.
	a = tab.Classify(pkt(0, 1, packet.ClassBestEffort, 64*units.Byte))
	if a.Hint != EPSOnly {
		t.Fatalf("mouse got %v, want eps-only", a.Hint)
	}
}

// Property: classification is deterministic and total — every packet gets
// exactly one action, and repeated classification agrees.
func TestClassifyDeterministicProperty(t *testing.T) {
	tab := New(Action{})
	r := rng.New(4242)
	for i := 0; i < 32; i++ {
		rule := Rule{
			Priority: r.Intn(10),
			Src:      r.Intn(9) - 1, // -1..7
			Dst:      r.Intn(9) - 1,
			Class:    r.Intn(4) - 1,
			Action:   Action{Priority: uint8(r.Intn(256)), Drop: r.Bool(0.2)},
		}
		if r.Bool(0.5) {
			rule.MinSize = units.Size(r.Intn(3000)) * units.Byte
		}
		tab.Add(rule)
	}
	f := func(src, dst uint8, class uint8, sizeB uint16) bool {
		p := pkt(packet.Port(src%8), packet.Port(dst%8),
			packet.Class(class%3), units.Size(sizeB)*units.Byte)
		a1 := tab.Classify(p)
		a2 := tab.Classify(p)
		return a1 == a2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPathHintString(t *testing.T) {
	if Auto.String() != "auto" || EPSOnly.String() != "eps-only" || OCSOnly.String() != "ocs-only" {
		t.Fatal("PathHint strings wrong")
	}
}
