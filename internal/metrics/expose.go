package metrics

import (
	"fmt"
	"io"
	"strings"
)

// Prometheus text-format exposition (version 0.0.4): one HELP/TYPE
// header per metric name followed by that name's samples, names in
// sorted order, label values escaped, histogram buckets cumulative with
// a closing +Inf. The output is deterministic: the same registry state
// writes the same bytes.

// TextContentType is the Content-Type an HTTP handler should set when
// serving WriteText output.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double quote, and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WriteText writes the registry's current state to w in the Prometheus
// text exposition format.
func (r *Registry) WriteText(w io.Writer) error {
	var b strings.Builder
	lastName := ""
	for _, p := range r.Snapshot() {
		if p.Desc.Name != lastName {
			lastName = p.Desc.Name
			if p.Desc.Help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", p.Desc.Name, escapeHelp(p.Desc.Help))
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", p.Desc.Name, p.Kind)
		}
		switch p.Kind {
		case KindCounter, KindGauge:
			fmt.Fprintf(&b, "%s%s %d\n", p.Desc.Name, renderLabels(p.Desc.Labels), p.Value)
		case KindHistogram:
			writeHistogram(&b, p)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram emits one histogram's cumulative bucket series plus its
// sum and count, merging the le label after the constant labels.
func writeHistogram(b *strings.Builder, p Point) {
	name, ls := p.Desc.Name, p.Desc.Labels
	var cum uint64
	for _, bk := range p.Hist.Buckets {
		cum += bk.Count
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, renderLabelsWithLE(ls, fmt.Sprintf("%d", bk.Upper)), cum)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, renderLabelsWithLE(ls, "+Inf"), p.Hist.Count)
	fmt.Fprintf(b, "%s_sum%s %d\n", name, renderLabels(ls), p.Hist.Sum)
	fmt.Fprintf(b, "%s_count%s %d\n", name, renderLabels(ls), p.Hist.Count)
}

// renderLabelsWithLE renders the constant labels plus the bucket's le
// label in final position.
func renderLabelsWithLE(ls []Label, le string) string {
	var b strings.Builder
	b.WriteByte('{')
	for _, l := range ls {
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteString(`",`)
	}
	b.WriteString(`le="`)
	b.WriteString(le)
	b.WriteString(`"}`)
	return b.String()
}
