package metrics

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// A Label is one constant name/value pair attached to an instrument at
// registration time. Values may contain any bytes; the exposition writer
// escapes them.
type Label struct {
	Key, Value string
}

// Kind says what an instrument is.
type Kind uint8

// Instrument kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Desc identifies one registered instrument: a metric name plus its
// constant labels, sorted by key.
type Desc struct {
	Name   string
	Help   string
	Labels []Label
}

// validName is the Prometheus metric/label-name grammar.
var validName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// entry is one registered instrument.
type entry struct {
	desc Desc
	kind Kind
	// sortKey orders and identifies the instrument: name plus the
	// rendered label set.
	sortKey string

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// A Registry holds named instruments and exposes them as one consistent
// snapshot. Registration is get-or-create and safe for concurrent use;
// instrument updates never take the registry lock.
type Registry struct {
	mu      sync.Mutex
	entries []*entry
	index   map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: map[string]*entry{}}
}

// Default is the process-wide registry: the one cmd binaries expose on
// their management listener unless they build their own.
var Default = NewRegistry()

// Counter returns the counter registered under name+labels, creating it
// if needed. It panics if the name is already registered as a different
// kind, or if name or a label key is not a valid metric name.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	e := r.getOrCreate(name, help, KindCounter, labels)
	return e.counter
}

// Gauge returns the gauge registered under name+labels, creating it if
// needed. Panic rules as for Counter.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	e := r.getOrCreate(name, help, KindGauge, labels)
	return e.gauge
}

// Histogram returns the histogram registered under name+labels, creating
// it if needed. Panic rules as for Counter.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	e := r.getOrCreate(name, help, KindHistogram, labels)
	return e.hist
}

func (r *Registry) getOrCreate(name, help string, kind Kind, labels []Label) *entry {
	if !validName.MatchString(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	for i, l := range ls {
		if !validName.MatchString(l.Key) {
			panic(fmt.Sprintf("metrics: invalid label key %q on %s", l.Key, name))
		}
		if i > 0 && ls[i-1].Key == l.Key {
			panic(fmt.Sprintf("metrics: duplicate label key %q on %s", l.Key, name))
		}
	}
	key := name + renderLabels(ls)

	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.index[key]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("metrics: %s already registered as a %s, asked for a %s",
				key, e.kind, kind))
		}
		return e
	}
	// One name, one kind and one help string across all label sets: the
	// exposition format emits a single HELP/TYPE header per name.
	for _, prev := range r.entries {
		if prev.desc.Name == name && prev.kind != kind {
			panic(fmt.Sprintf("metrics: %s already registered as a %s, asked for a %s",
				name, prev.kind, kind))
		}
	}
	e := &entry{
		desc:    Desc{Name: name, Help: help, Labels: ls},
		kind:    kind,
		sortKey: key,
	}
	switch kind {
	case KindCounter:
		e.counter = &Counter{}
	case KindGauge:
		e.gauge = &Gauge{}
	case KindHistogram:
		e.hist = &Histogram{}
	}
	r.entries = append(r.entries, e)
	r.index[key] = e
	return e
}

// renderLabels renders a sorted label set as {k="v",...} with values
// escaped, or "" for no labels.
func renderLabels(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// Point is one instrument's value in a registry snapshot.
type Point struct {
	Desc Desc
	Kind Kind
	// Value carries counter and gauge readings (counters as their
	// integral value).
	Value int64
	// Hist is set for histograms only.
	Hist *HistogramSnapshot
}

// Snapshot reads every instrument once and returns the points sorted by
// name, then label set — a stable order independent of registration
// order. Counter and gauge reads are single atomic loads; histogram
// buckets are internally consistent per histogram.
func (r *Registry) Snapshot() []Point {
	r.mu.Lock()
	entries := append([]*entry(nil), r.entries...)
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].desc.Name != entries[j].desc.Name {
			return entries[i].desc.Name < entries[j].desc.Name
		}
		return entries[i].sortKey < entries[j].sortKey
	})
	pts := make([]Point, 0, len(entries))
	for _, e := range entries {
		p := Point{Desc: e.desc, Kind: e.kind}
		switch e.kind {
		case KindCounter:
			p.Value = int64(e.counter.Value())
		case KindGauge:
			p.Value = e.gauge.Value()
		case KindHistogram:
			h := e.hist.Snapshot()
			p.Hist = &h
		}
		pts = append(pts, p)
	}
	return pts
}
