package metrics

import (
	"math"
	"sort"
	"testing"

	"hybridsched/internal/rng"
)

// Property tests for HistogramSnapshot.Quantile. The pre-fix
// implementation computed the rank as uint64(math.Ceil(q*float64(Count))),
// which misranks on two float boundaries: a decimal q whose binary
// representation lands just above the exact product (0.7*10 = 7.0000...01
// ceils to rank 8 instead of 7), and counts beyond 2^53, where
// q*float64(Count) can exceed Count and the float-to-uint64 conversion is
// unspecified. The properties pinned here — exact-rank agreement with a
// sorted reference, monotonicity in q, and the q=0/q=1 endpoint semantics
// — fail on that implementation.

// refQuantile is the independent oracle: the bucket upper bound of the
// rank-th smallest sample, with rank = ceil(qNum*len/qDen) in pure
// integer arithmetic (no floats anywhere).
func refQuantile(sorted []int64, qNum, qDen int) int64 {
	rank := (qNum*len(sorted) + qDen - 1) / qDen
	if rank < 1 {
		rank = 1
	}
	return bucketUpper(bucketIndex(sorted[rank-1]))
}

// TestQuantileMatchesSortedReference drives random sample sets and every
// q = k/1000 against the oracle. Decimal q values are exactly
// representable in Quantile's fixed-point rank, so agreement must be
// exact — in particular at bucket-population boundaries like q=0.7 over
// 10 samples.
func TestQuantileMatchesSortedReference(t *testing.T) {
	r := rng.New(41)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(400)
		samples := make([]int64, n)
		var h Histogram
		for i := range samples {
			// Mix magnitudes so samples spread over exact and log-linear
			// buckets alike.
			v := r.Int63n(int64(1) << uint(2+r.Intn(40)))
			samples[i] = v
			h.Observe(v)
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		snap := h.Snapshot()
		for k := 0; k <= 1000; k++ {
			got := snap.Quantile(float64(k) / 1000)
			want := refQuantile(samples, k, 1000)
			if got != want {
				t.Fatalf("trial %d (n=%d): Quantile(%d/1000) = %d, want %d",
					trial, n, k, got, want)
			}
		}
	}
}

// TestQuantileMonotoneInQ checks the defining order property: a higher
// quantile can never report a lower bound, including for arbitrary
// (non-decimal) q drawn uniformly.
func TestQuantileMonotoneInQ(t *testing.T) {
	r := rng.New(97)
	var h Histogram
	for i := 0; i < 500; i++ {
		h.Observe(r.Int63n(1_000_000_000))
	}
	snap := h.Snapshot()

	qs := make([]float64, 0, 2048)
	for k := 0; k <= 1000; k++ {
		qs = append(qs, float64(k)/1000)
	}
	for i := 0; i < 1000; i++ {
		qs = append(qs, r.Float64())
	}
	sort.Float64s(qs)
	last := int64(-1)
	lastQ := math.Inf(-1)
	for _, q := range qs {
		v := snap.Quantile(q)
		if v < last {
			t.Fatalf("Quantile not monotone: q=%v -> %d after q=%v -> %d", q, v, lastQ, last)
		}
		last, lastQ = v, q
	}
}

// TestQuantileEndpoints pins the edge semantics: q<=0 (and NaN) report
// the smallest sample's bucket, q>=1 the largest's, out-of-range q
// clamps, and the empty snapshot returns 0.
func TestQuantileEndpoints(t *testing.T) {
	var empty HistogramSnapshot
	for _, q := range []float64{-1, 0, 0.5, 1, 2, math.NaN()} {
		if got := empty.Quantile(q); got != 0 {
			t.Fatalf("empty.Quantile(%v) = %d, want 0", q, got)
		}
	}

	var h Histogram
	for _, v := range []int64{3, 900, 41, 7, 123456} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	lo := bucketUpper(bucketIndex(3))
	hi := bucketUpper(bucketIndex(123456))
	for _, tc := range []struct {
		q    float64
		want int64
	}{
		{math.Inf(-1), lo}, {-0.5, lo}, {math.NaN(), lo}, {0, lo},
		{1, hi}, {1.5, hi}, {math.Inf(1), hi},
	} {
		if got := snap.Quantile(tc.q); got != tc.want {
			t.Fatalf("Quantile(%v) = %d, want %d", tc.q, got, tc.want)
		}
	}
}

// TestQuantileUpperBoundProperty checks the documented contract on real
// observations: the reported value is always >= the true rank-th sample
// (it is the upper edge of that sample's bucket), within the histogram's
// 12.5% relative quantization.
func TestQuantileUpperBoundProperty(t *testing.T) {
	r := rng.New(13)
	samples := make([]int64, 300)
	var h Histogram
	for i := range samples {
		samples[i] = 1 + r.Int63n(1_000_000)
		h.Observe(samples[i])
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	snap := h.Snapshot()
	for k := 0; k <= 100; k++ {
		q := float64(k) / 100
		rank := (k*len(samples) + 99) / 100
		if rank < 1 {
			rank = 1
		}
		exact := samples[rank-1]
		got := snap.Quantile(q)
		if got < exact {
			t.Fatalf("Quantile(%v) = %d below exact rank-%d sample %d", q, got, rank, exact)
		}
		if float64(got) > float64(exact)*1.125+1 {
			t.Fatalf("Quantile(%v) = %d exceeds quantization bound for sample %d", q, got, exact)
		}
	}
}

// TestQuantileHugeCounts exercises the 128-bit rank path directly: with
// counts beyond 2^53 the old float rank either saturated or wrapped. The
// snapshot is constructed by hand — no histogram can observe 2^62
// samples in a test.
func TestQuantileHugeCounts(t *testing.T) {
	c := uint64(1) << 61
	snap := HistogramSnapshot{
		Count: 4 * c,
		Buckets: []Bucket{
			{Upper: 10, Count: c},
			{Upper: 20, Count: c},
			{Upper: 30, Count: c},
			{Upper: 40, Count: c},
		},
	}
	for _, tc := range []struct {
		q    float64
		want int64
	}{
		{0, 10}, {0.25, 10}, {0.250000001, 20}, {0.5, 20},
		{0.75, 30}, {0.999999999, 40}, {1, 40},
	} {
		if got := snap.Quantile(tc.q); got != tc.want {
			t.Fatalf("Quantile(%v) over 2^63 samples = %d, want %d", tc.q, got, tc.want)
		}
	}
}
