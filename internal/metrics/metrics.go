// Package metrics is the module's allocation-free instrumentation
// subsystem: atomic counters, gauges, and fixed-bucket log-linear
// latency histograms, registered in a process-wide Registry and exposed
// through a consistent point-in-time Snapshot and a Prometheus
// text-format writer (WriteText).
//
// The package exists to make the scheduling hot path observable without
// perturbing it: incrementing a Counter, setting a Gauge, or observing a
// Histogram sample is a handful of atomic operations on pre-registered
// state — zero heap allocations per operation, enforced by schedlint's
// hotpathalloc analyzer (the update methods are //hybridsched:hotpath
// roots) and pinned by TestMetricsUpdateAllocFree. All registration,
// snapshotting, and exposition is cold-path and may allocate freely.
//
// Instruments are identified by a name plus a sorted set of constant
// labels, fixed at registration. Registration is get-or-create: asking
// for the same (name, labels) again returns the same instrument, so a
// restored scheduler shares its predecessor's process-wide totals.
package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// A Counter is a monotonically increasing uint64. The zero value is
// ready to use; registry-created counters start at zero.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//hybridsched:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by delta.
//
//hybridsched:hotpath
func (c *Counter) Add(delta uint64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// A Gauge is an instantaneous int64 value that can move both ways.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
//
//hybridsched:hotpath
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (which may be negative).
//
//hybridsched:hotpath
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram bucket layout: log-linear, base 2, with 2^histSubBits linear
// sub-buckets per octave. Values 0..histSubBuckets-1 get exact buckets;
// above that, each octave [2^e, 2^(e+1)) splits into histSubBuckets
// equal-width buckets, so the relative quantization error is bounded by
// 1/histSubBuckets = 12.5% — tight enough for latency SLOs — while the
// whole int64 range fits in a fixed array updated with one atomic add.
const (
	histSubBits    = 3
	histSubBuckets = 1 << histSubBits
	// histBuckets covers nonneg int64: the exact range 0..histSubBuckets-1
	// plus one histSubBuckets-wide group per octave e = histSubBits..62
	// (a non-negative int64 has at most 63 significant bits, so octave 62
	// — whose last bucket ends at MaxInt64 — is the top).
	histBuckets = histSubBuckets + (62-histSubBits+1)*histSubBuckets
)

// A Histogram records a distribution of int64 samples (latencies in
// nanoseconds, sizes in bits, ...) in fixed log-linear buckets. Observe
// is allocation-free; Snapshot and quantile estimation are cold-path.
// Negative samples clamp to zero.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
}

// Observe records one sample.
//
//hybridsched:hotpath
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// bucketIndex maps a non-negative sample to its log-linear bucket.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < histSubBuckets {
		return int(u)
	}
	e := bits.Len64(u) - 1 // v in [2^e, 2^(e+1)), e >= histSubBits
	sub := (u >> uint(e-histSubBits)) & (histSubBuckets - 1)
	return (e-histSubBits+1)*histSubBuckets + int(sub)
}

// bucketUpper returns the largest sample value bucket i holds.
func bucketUpper(i int) int64 {
	if i < histSubBuckets {
		return int64(i)
	}
	e := uint(i/histSubBuckets + histSubBits - 1)
	sub := uint64(i % histSubBuckets)
	upper := uint64(1)<<e + (sub+1)<<(e-histSubBits) - 1
	if upper > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(upper)
}

// Bucket is one non-empty histogram bucket in a snapshot.
type Bucket struct {
	// Upper is the largest sample value the bucket holds (inclusive).
	Upper int64
	// Count is the number of samples in this bucket alone (not
	// cumulative; the exposition writer accumulates).
	Count uint64
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Count is the total number of samples, computed from the buckets so
	// Count and Buckets are mutually consistent.
	Count uint64
	// Sum is the running sample sum (read once; it may trail Count by
	// in-flight observations).
	Sum int64
	// Buckets holds the non-empty buckets in ascending Upper order.
	Buckets []Bucket
}

// Snapshot copies the current bucket counts.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Sum: h.sum.Load()}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		s.Buckets = append(s.Buckets, Bucket{Upper: bucketUpper(i), Count: n})
		s.Count += n
	}
	return s
}

// quantileScale is the fixed-point denominator Quantile resolves q
// against: any q given to at most 9 decimal places (0.5, 0.99, 0.999,
// ...) converts to an exact rational, so the rank computation below has
// no float rounding at all.
const quantileScale = 1_000_000_000

// Quantile returns an upper bound on the q-quantile sample (0 <= q <= 1):
// the upper edge of the bucket holding rank ceil(q·Count), so an SLO
// assertion on the result is conservative. q = 0 selects the smallest
// sample's bucket and q = 1 the largest's; out-of-range q clamps (NaN
// clamps to 0). An empty snapshot returns 0.
//
// The rank is computed in integer arithmetic: q is rounded to a multiple
// of 1/quantileScale and ceil(q·Count) evaluated with a 128-bit product.
// The obvious uint64(math.Ceil(q*float64(Count))) misranks on both float
// boundaries — binary q just above a decimal (0.7*10 ceils to 8, not 7)
// and counts beyond 2^53 (where q*float64(Count) can exceed Count and
// the uint64 conversion is unspecified).
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	var qn uint64
	switch {
	case math.IsNaN(q) || q <= 0:
		qn = 0
	case q >= 1:
		qn = quantileScale
	default:
		qn = uint64(math.Round(q * quantileScale))
	}
	hi, lo := bits.Mul64(qn, s.Count)
	// hi < quantileScale because qn <= quantileScale, so Div64 cannot
	// panic; the remainder implements the ceiling.
	rank, rem := bits.Div64(hi, lo, quantileScale)
	if rem != 0 {
		rank++
	}
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for _, b := range s.Buckets {
		seen += b.Count
		if seen >= rank {
			return b.Upper
		}
	}
	return s.Buckets[len(s.Buckets)-1].Upper
}

// Mean returns the average sample, or 0 for an empty snapshot.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
