//go:build !race

package metrics

import "testing"

// TestMetricsUpdateAllocFree pins the package's reason to exist: the
// instrument update paths the scheduling hot loop calls — counter
// increments, gauge stores, histogram observations — perform zero heap
// allocations. (Excluded under -race: the detector instruments
// allocations.) schedlint's hotpathalloc analyzer enforces the same
// contract on the code shape.
func TestMetricsUpdateAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot_total", "", Label{Key: "shard", Value: "0"})
	g := r.Gauge("hot_depth", "")
	h := r.Histogram("hot_ns", "")
	var v int64
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(v)
		g.Add(-1)
		h.Observe(v * 997)
		v++
	})
	if allocs != 0 {
		t.Errorf("%v allocs per instrument-update round, want 0", allocs)
	}
}
