package metrics

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-10)
	if got := g.Value(); got != -3 {
		t.Fatalf("gauge = %d, want -3", got)
	}
}

// TestBucketIndexContract checks the log-linear mapping over the whole
// representable range: indices are monotone in the sample, every sample
// lands at or below its bucket's upper bound, bucket upper bounds are
// strictly increasing, and nothing falls outside the fixed array.
func TestBucketIndexContract(t *testing.T) {
	samples := []int64{0, 1, 2, 7, 8, 9, 15, 16, 17, 31, 32, 63, 64, 100,
		1000, 1e6, 1e9, 1e12, 1e15, math.MaxInt64 - 1, math.MaxInt64}
	lastIdx := -1
	for _, v := range samples {
		idx := bucketIndex(v)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d outside [0,%d)", v, idx, histBuckets)
		}
		if idx < lastIdx {
			t.Fatalf("bucketIndex not monotone: %d -> bucket %d after bucket %d", v, idx, lastIdx)
		}
		lastIdx = idx
		if up := bucketUpper(idx); v > up {
			t.Fatalf("sample %d above its bucket %d upper bound %d", v, idx, up)
		}
	}
	// Exact low range: the first histSubBuckets buckets hold one value each.
	for v := int64(0); v < histSubBuckets; v++ {
		if bucketIndex(v) != int(v) || bucketUpper(int(v)) != v {
			t.Fatalf("low bucket %d not exact", v)
		}
	}
	// Upper bounds strictly increase and tile the range with no gaps.
	for i := 1; i < histBuckets; i++ {
		lo, hi := bucketUpper(i-1), bucketUpper(i)
		if hi <= lo {
			t.Fatalf("bucket %d upper %d <= bucket %d upper %d", i, hi, i-1, lo)
		}
		if hi != math.MaxInt64 && bucketIndex(lo+1) != i {
			t.Fatalf("gap: value %d after bucket %d maps to bucket %d, want %d",
				lo+1, i-1, bucketIndex(lo+1), i)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	// 1000 samples 1..1000: quantiles are known, bucket error <= 12.5%.
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	if s.Sum != 500500 {
		t.Fatalf("sum = %d, want 500500", s.Sum)
	}
	for _, tc := range []struct {
		q     float64
		exact int64
	}{{0.5, 500}, {0.99, 990}, {0.999, 999}, {1.0, 1000}} {
		got := s.Quantile(tc.q)
		if got < tc.exact {
			t.Errorf("Quantile(%v) = %d below the exact value %d (must be an upper bound)",
				tc.q, got, tc.exact)
		}
		if got > tc.exact+tc.exact/4 {
			t.Errorf("Quantile(%v) = %d too far above the exact value %d", tc.q, got, tc.exact)
		}
	}
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty snapshot quantile = %d, want 0", got)
	}
	if got := s.Mean(); got != 500.5 {
		t.Errorf("mean = %v, want 500.5", got)
	}
	var neg Histogram
	neg.Observe(-5)
	if ns := neg.Snapshot(); ns.Count != 1 || ns.Buckets[0].Upper != 0 {
		t.Errorf("negative sample not clamped to 0: %+v", ns)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "a counter", Label{Key: "shard", Value: "0"})
	b := r.Counter("x_total", "a counter", Label{Key: "shard", Value: "0"})
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	c := r.Counter("x_total", "a counter", Label{Key: "shard", Value: "1"})
	if a == c {
		t.Fatal("distinct label sets share an instrument")
	}
	a.Inc()
	if b.Value() != 1 || c.Value() != 0 {
		t.Fatal("instrument identity broken")
	}

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("kind conflict on full key", func() { r.Gauge("x_total", "now a gauge", Label{Key: "shard", Value: "0"}) })
	mustPanic("kind conflict on name", func() { r.Histogram("x_total", "now a histogram") })
	mustPanic("bad metric name", func() { r.Counter("no spaces", "") })
	mustPanic("bad label key", func() { r.Counter("ok_total", "", Label{Key: "0bad", Value: "v"}) })
	mustPanic("duplicate label key", func() {
		r.Counter("ok_total", "", Label{Key: "k", Value: "a"}, Label{Key: "k", Value: "b"})
	})
}

// TestWriteTextConformance parses the exposition output and checks the
// format contract: stable sorted metric ordering, one HELP/TYPE header
// per name, escaped label values, and monotone cumulative histogram
// buckets closed by +Inf and consistent with _count and _sum.
func TestWriteTextConformance(t *testing.T) {
	r := NewRegistry()
	// Register out of name order to prove the writer sorts.
	r.Gauge("zz_depth_bits", "queue depth").Set(1234)
	h := r.Histogram("aa_latency_ns", "epoch latency", Label{Key: "shard", Value: "0"})
	for v := int64(1); v <= 100; v++ {
		h.Observe(v * 100)
	}
	r.Counter("mm_drops_total", "drops by policy",
		Label{Key: "policy", Value: "oldest"},
		Label{Key: "path", Value: `quo"te\slash` + "\nnewline"}).Add(9)

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	// Deterministic: a second write of the same state is byte-identical.
	var buf2 bytes.Buffer
	if err := r.WriteText(&buf2); err != nil {
		t.Fatal(err)
	}
	if out != buf2.String() {
		t.Fatal("two writes of the same registry state differ")
	}

	// Escaping: the raw label value is escaped exactly once.
	wantLine := `mm_drops_total{path="quo\"te\\slash\nnewline",policy="oldest"} 9`
	if !strings.Contains(out, wantLine+"\n") {
		t.Errorf("escaped sample line missing:\nwant %s\nin:\n%s", wantLine, out)
	}

	var (
		lines      = strings.Split(strings.TrimSuffix(out, "\n"), "\n")
		lastName   string
		nameOrder  []string
		bucketCum  = map[string]uint64{} // histogram series -> last cumulative
		histCounts = map[string]uint64{}
		histInf    = map[string]uint64{}
	)
	typed := map[string]string{}
	for _, line := range lines {
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("bad TYPE line %q", line)
			}
			if _, dup := typed[f[2]]; dup {
				t.Errorf("duplicate TYPE header for %s", f[2])
			}
			typed[f[2]] = f[3]
			if lastName != "" && f[2] <= lastName {
				t.Errorf("metric names out of order: %s after %s", f[2], lastName)
			}
			lastName = f[2]
			nameOrder = append(nameOrder, f[2])
			continue
		}
		// A sample line: name{labels} value.
		name, rest, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("bad sample line %q", line)
		}
		val, err := strconv.ParseUint(rest, 10, 64)
		if err != nil {
			t.Fatalf("bad sample value in %q: %v", line, err)
		}
		base, labels, _ := strings.Cut(name, "{")
		switch {
		case strings.HasSuffix(base, "_bucket"):
			series, _, _ := strings.Cut(labels, `le="`)
			key := strings.TrimSuffix(base, "_bucket") + "{" + strings.TrimSuffix(series, ",") + "}"
			if val < bucketCum[key] {
				t.Errorf("histogram buckets not cumulative at %q: %d < %d", line, val, bucketCum[key])
			}
			bucketCum[key] = val
			if strings.Contains(labels, `le="+Inf"`) {
				histInf[key] = val
			}
		case strings.HasSuffix(base, "_count"):
			series := strings.TrimSuffix(base, "_count") + "{" + labels
			histCounts[series] = val
		}
	}
	if typed["aa_latency_ns"] != "histogram" || typed["mm_drops_total"] != "counter" || typed["zz_depth_bits"] != "gauge" {
		t.Errorf("TYPE lines wrong: %v", typed)
	}
	if len(histInf) != 1 {
		t.Fatalf("want exactly one histogram +Inf series, got %v", histInf)
	}
	for key, inf := range histInf {
		if inf != 100 {
			t.Errorf("+Inf cumulative = %d, want 100", inf)
		}
		if histCounts[key] != inf {
			t.Errorf("_count %d != +Inf bucket %d for %s", histCounts[key], inf, key)
		}
	}
	if !strings.Contains(out, "aa_latency_ns_sum{shard=\"0\"} 505000\n") {
		t.Errorf("histogram sum missing or wrong in:\n%s", out)
	}
}

func TestSnapshotOrderStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "")
	r.Counter("a_total", "", Label{Key: "shard", Value: "1"})
	r.Counter("a_total", "", Label{Key: "shard", Value: "0"})
	pts := r.Snapshot()
	got := make([]string, len(pts))
	for i, p := range pts {
		got[i] = p.Desc.Name + renderLabels(p.Desc.Labels)
	}
	want := []string{`a_total{shard="0"}`, `a_total{shard="1"}`, `b_total`}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("snapshot order = %v, want %v", got, want)
		}
	}
}
