// Package packet defines the packet and flow model shared by every layer of
// the hybrid switch: hosts, processing logic (classifier + VOQs), the EPS
// and OCS data paths, and the statistics pipeline.
package packet

import (
	"fmt"

	"hybridsched/internal/units"
)

// Port identifies a switch port (equivalently, the host attached to it).
type Port int

// Class is the traffic class carried in the packet header, available to the
// classifier's look-up rules (e.g. to pin latency-sensitive VOIP traffic to
// the EPS path).
type Class uint8

// Standard classes used by the workloads.
const (
	ClassBestEffort Class = iota
	ClassLatencySensitive
	ClassBulk
)

// Path records which switching fabric carried the packet.
type Path uint8

// Path values.
const (
	PathNone Path = iota // not yet forwarded
	PathEPS              // electrical packet switch
	PathOCS              // optical circuit switch
)

func (p Path) String() string {
	switch p {
	case PathEPS:
		return "EPS"
	case PathOCS:
		return "OCS"
	default:
		return "none"
	}
}

// Packet is one frame traversing the fabric. Timestamps are filled in as
// the packet moves: CreatedAt at the source, EnqueuedAt when it enters a
// queue (host queue or VOQ), DeliveredAt when the destination receives it.
type Packet struct {
	ID          uint64
	Flow        uint64 // flow identifier assigned by the source
	Src, Dst    Port
	Size        units.Size
	Class       Class
	CreatedAt   units.Time
	EnqueuedAt  units.Time
	DeliveredAt units.Time
	Via         Path
}

// Latency returns the source-to-delivery latency. It is only meaningful
// after delivery.
func (p *Packet) Latency() units.Duration { return p.DeliveredAt.Sub(p.CreatedAt) }

func (p *Packet) String() string {
	return fmt.Sprintf("pkt{id=%d flow=%d %d->%d %v class=%d via=%v}",
		p.ID, p.Flow, p.Src, p.Dst, p.Size, p.Class, p.Via)
}

// MinFrame and MaxFrame bound legal Ethernet frame sizes; the generators
// and fuzz tests clamp to these.
const (
	MinFrame = 64 * units.Byte
	MaxFrame = 9000 * units.Byte // jumbo
)
