package packet

import (
	"strings"
	"testing"

	"hybridsched/internal/units"
)

func TestLatency(t *testing.T) {
	p := &Packet{
		CreatedAt:   units.Time(10 * units.Microsecond),
		DeliveredAt: units.Time(35 * units.Microsecond),
	}
	if got := p.Latency(); got != 25*units.Microsecond {
		t.Fatalf("latency = %v", got)
	}
}

func TestPathString(t *testing.T) {
	cases := map[Path]string{
		PathNone: "none",
		PathEPS:  "EPS",
		PathOCS:  "OCS",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", p, got, want)
		}
	}
}

func TestPacketString(t *testing.T) {
	p := &Packet{ID: 7, Flow: 3, Src: 1, Dst: 2, Size: 1500 * units.Byte,
		Class: ClassBulk, Via: PathOCS}
	s := p.String()
	for _, want := range []string{"id=7", "flow=3", "1->2", "1.5KB", "OCS"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestFrameBounds(t *testing.T) {
	if MinFrame != 64*units.Byte || MaxFrame != 9000*units.Byte {
		t.Fatal("frame bounds changed; generators and tests depend on these")
	}
	if MinFrame >= MaxFrame {
		t.Fatal("bounds inverted")
	}
}

func TestClassConstantsDistinct(t *testing.T) {
	if ClassBestEffort == ClassLatencySensitive || ClassLatencySensitive == ClassBulk {
		t.Fatal("class constants collide")
	}
}
