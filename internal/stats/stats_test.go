package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"hybridsched/internal/rng"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("got %d, want 42", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("reset failed")
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Percentile(50) != 0 || h.Mean() != 0 || h.Max() != 0 || h.Min() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for i := int64(1); i <= 100; i++ {
		h.Record(i)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	if got := h.Mean(); got != 50.5 {
		t.Fatalf("mean = %v", got)
	}
	if p := h.Percentile(50); p < 45 || p > 55 {
		t.Fatalf("p50 = %d, want ~50", p)
	}
	if p := h.Percentile(99); p < 95 || p > 100 {
		t.Fatalf("p99 = %d, want ~99", p)
	}
	if p := h.Percentile(0); p != 1 {
		t.Fatalf("p0 = %d, want 1", p)
	}
	if p := h.Percentile(100); p != 100 {
		t.Fatalf("p100 = %d, want 100", p)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Record(-5)
	if h.Min() != 0 || h.Count() != 1 {
		t.Fatal("negative sample should clamp to zero")
	}
}

func TestHistogramRelativeError(t *testing.T) {
	// Property: for any value, the percentile estimate of a single-sample
	// histogram is within 1/64 relative error below the value.
	f := func(raw uint32) bool {
		v := int64(raw)
		var h Histogram
		h.Record(v)
		got := h.Percentile(50)
		if got > v {
			return false
		}
		if v >= 64 && float64(v-got)/float64(v) > 1.0/64+1e-9 {
			return false
		}
		return v < 64 == (got == v) || got <= v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestHistogramVsExactPercentiles(t *testing.T) {
	r := rng.New(99)
	var h Histogram
	var raw []int64
	for i := 0; i < 50000; i++ {
		v := int64(r.Exp(100000))
		raw = append(raw, v)
		h.Record(v)
	}
	sort.Slice(raw, func(i, j int) bool { return raw[i] < raw[j] })
	for _, p := range []float64{50, 90, 99, 99.9} {
		exact := raw[int(p/100*float64(len(raw)))-0]
		if int(p/100*float64(len(raw))) >= len(raw) {
			exact = raw[len(raw)-1]
		}
		got := h.Percentile(p)
		if exact == 0 {
			continue
		}
		relErr := math.Abs(float64(got-exact)) / float64(exact)
		if relErr > 0.05 {
			t.Errorf("p%.1f: hist=%d exact=%d relErr=%.3f", p, got, exact, relErr)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := int64(0); i < 50; i++ {
		a.Record(i)
	}
	for i := int64(50); i < 100; i++ {
		b.Record(i)
	}
	a.Merge(&b)
	if a.Count() != 100 || a.Min() != 0 || a.Max() != 99 {
		t.Fatalf("merge wrong: count=%d min=%d max=%d", a.Count(), a.Min(), a.Max())
	}
	var empty Histogram
	a.Merge(&empty) // must be a no-op
	if a.Count() != 100 {
		t.Fatal("merging empty changed count")
	}
	empty.Merge(&a)
	if empty.Count() != 100 || empty.Min() != 0 {
		t.Fatal("merge into empty broken")
	}
}

func TestSummarize(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Record(int64(i))
	}
	s := h.Summarize()
	if s.Count != 1000 || s.P50 > s.P90 || s.P90 > s.P99 || s.P99 > s.P999 {
		t.Fatalf("percentiles not monotone: %+v", s)
	}
	if s.StdDevUpperBound <= 0 {
		t.Fatal("stddev should be positive")
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}

func TestTimeWeightedGauge(t *testing.T) {
	var g TimeWeightedGauge
	g.Set(0, 10)
	g.Set(10, 20) // 10 for [0,10)
	g.Set(30, 0)  // 20 for [10,30)
	// mean over [0,40): (10*10 + 20*20 + 0*10)/40 = 500/40 = 12.5
	if m := g.MeanOver(40); m != 12.5 {
		t.Fatalf("mean = %v, want 12.5", m)
	}
	if g.Max() != 20 {
		t.Fatalf("max = %d, want 20", g.Max())
	}
	if g.Value() != 0 {
		t.Fatalf("value = %d, want 0", g.Value())
	}
}

func TestTimeWeightedGaugeAdd(t *testing.T) {
	var g TimeWeightedGauge
	g.Add(0, 5)
	g.Add(10, 5)
	g.Add(20, -10)
	if g.Value() != 0 {
		t.Fatalf("value = %d", g.Value())
	}
	// 5 over [0,10), 10 over [10,20): mean over [0,20) = (50+100)/20 = 7.5
	if m := g.MeanOver(20); m != 7.5 {
		t.Fatalf("mean = %v, want 7.5", m)
	}
}

func TestTimeWeightedGaugeEmpty(t *testing.T) {
	var g TimeWeightedGauge
	if g.MeanOver(100) != 0 {
		t.Fatal("empty gauge mean should be 0")
	}
}

func TestSeriesSorted(t *testing.T) {
	s := &Series{Name: "x"}
	s.Append(3, 30)
	s.Append(1, 10)
	s.Append(2, 20)
	out := s.Sorted()
	if out.Len() != 3 {
		t.Fatal("len wrong")
	}
	for i, want := range []float64{1, 2, 3} {
		if out.X[i] != want || out.Y[i] != want*10 {
			t.Fatalf("point %d = (%v,%v)", i, out.X[i], out.Y[i])
		}
	}
	// Original untouched.
	if s.X[0] != 3 {
		t.Fatal("Sorted mutated the receiver")
	}
}

func TestBucketIndexMonotone(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return bucketIndex(x) <= bucketIndex(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBucketLowInverse(t *testing.T) {
	// bucketLow(bucketIndex(v)) <= v for all v, and indexing bucketLow's
	// value returns the same bucket.
	f := func(raw uint64) bool {
		v := int64(raw >> 1) // keep non-negative
		i := bucketIndex(v)
		lo := bucketLow(i)
		return lo <= v && bucketIndex(lo) == i
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}
