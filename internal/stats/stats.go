// Package stats provides the measurement primitives the simulator reports
// through: counters, log-binned latency histograms with percentiles, and
// time-weighted gauges for queue-occupancy style signals.
//
// Everything here is allocation-free on the record path: the fabric records
// a sample per packet per hop, so histograms use fixed bucket arrays in the
// style of HDR histograms rather than keeping raw samples.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// Counter accumulates a monotonically growing sum.
type Counter struct {
	n int64
}

// Add increases the counter by d.
func (c *Counter) Add(d int64) { c.n += d }

// Inc increases the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the accumulated sum.
func (c *Counter) Value() int64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

const (
	subBucketBits  = 6 // 64 linear sub-buckets per power of two: <1.6% error
	subBucketCount = 1 << subBucketBits
	bucketGroups   = 64 - subBucketBits
)

// Histogram records non-negative int64 samples into logarithmic buckets
// with 64 linear sub-buckets per octave (relative error below 1.6%). The
// zero value is ready to use.
type Histogram struct {
	buckets [bucketGroups * subBucketCount]int64
	count   int64
	sum     int64
	min     int64
	max     int64
}

func bucketIndex(v int64) int {
	if v < subBucketCount {
		return int(v)
	}
	h := 63 - bits.LeadingZeros64(uint64(v)) // highest set bit, >= subBucketBits
	shift := h - subBucketBits
	sub := int(v>>shift) - subBucketCount // in [0, subBucketCount)
	group := h - subBucketBits + 1
	return group*subBucketCount + sub
}

// bucketLow returns the lowest value mapping to bucket i.
func bucketLow(i int) int64 {
	group := i / subBucketCount
	sub := i % subBucketCount
	if group == 0 {
		return int64(sub)
	}
	shift := group - 1
	return int64(sub+subBucketCount) << shift
}

// Record adds one sample. Negative samples are clamped to zero (they can
// only arise from programmer error upstream; measurement must not panic).
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketIndex(v)]++
}

// Count returns the number of samples recorded.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Min returns the smallest recorded sample, or 0 if empty.
func (h *Histogram) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample, or 0 if empty.
func (h *Histogram) Max() int64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Mean returns the average of all samples, or 0 if empty.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Percentile returns an estimate of the p-th percentile (p in [0, 100]).
// The estimate is the lower bound of the bucket containing the rank, so it
// never overstates. Returns 0 for an empty histogram.
func (h *Histogram) Percentile(p float64) int64 {
	if h.count == 0 {
		return 0
	}
	if p <= 0 {
		return h.Min()
	}
	if p >= 100 {
		return h.Max()
	}
	rank := int64(math.Ceil(p / 100 * float64(h.count)))
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i]
		if cum >= rank {
			lo := bucketLow(i)
			if lo < h.min {
				lo = h.min
			}
			if lo > h.max {
				lo = h.max
			}
			return lo
		}
	}
	return h.max
}

// Merge adds all samples of other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.count == 0 {
		return
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
}

// Reset clears the histogram.
func (h *Histogram) Reset() { *h = Histogram{} }

// Summary is a compact digest of a histogram.
type Summary struct {
	Count            int64
	Min, Max         int64
	Mean             float64
	P50, P90, P99    int64
	P999             int64
	StdDevUpperBound float64 // derived from buckets; slight overestimate
}

// Summarize extracts a Summary from the histogram.
func (h *Histogram) Summarize() Summary {
	s := Summary{
		Count: h.Count(),
		Min:   h.Min(),
		Max:   h.Max(),
		Mean:  h.Mean(),
		P50:   h.Percentile(50),
		P90:   h.Percentile(90),
		P99:   h.Percentile(99),
		P999:  h.Percentile(99.9),
	}
	if h.count > 1 {
		var sq float64
		for i, c := range h.buckets {
			if c == 0 {
				continue
			}
			d := float64(bucketLow(i)) - s.Mean
			sq += d * d * float64(c)
		}
		s.StdDevUpperBound = math.Sqrt(sq / float64(h.count))
	}
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%d p50=%d p90=%d p99=%d p99.9=%d max=%d mean=%.1f",
		s.Count, s.Min, s.P50, s.P90, s.P99, s.P999, s.Max, s.Mean)
}

// TimeWeightedGauge integrates a piecewise-constant signal over time, e.g.
// queue occupancy in bits. Time is an opaque int64 (picoseconds by
// convention); the gauge only needs it to advance monotonically.
type TimeWeightedGauge struct {
	lastT    int64
	value    int64
	integral float64
	max      int64
	started  bool
	startT   int64
}

// Set records that the signal changed to v at time t. Calls must have
// non-decreasing t.
func (g *TimeWeightedGauge) Set(t, v int64) {
	if !g.started {
		g.started = true
		g.startT = t
	} else {
		g.integral += float64(g.value) * float64(t-g.lastT)
	}
	g.lastT = t
	g.value = v
	if v > g.max {
		g.max = v
	}
}

// Add adjusts the signal by delta at time t.
func (g *TimeWeightedGauge) Add(t, delta int64) { g.Set(t, g.value+delta) }

// Value returns the current signal value.
func (g *TimeWeightedGauge) Value() int64 { return g.value }

// Max returns the largest value ever set.
func (g *TimeWeightedGauge) Max() int64 { return g.max }

// MeanOver returns the time-weighted mean of the signal from the first
// observation until time end.
func (g *TimeWeightedGauge) MeanOver(end int64) float64 {
	if !g.started || end <= g.startT {
		return 0
	}
	total := g.integral + float64(g.value)*float64(end-g.lastT)
	return total / float64(end-g.startT)
}

// Series accumulates (x, y) points for figure output.
type Series struct {
	Name string
	X, Y []float64
}

// Append adds one point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// Sorted returns a copy of the series sorted by x.
func (s *Series) Sorted() *Series {
	idx := make([]int, len(s.X))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return s.X[idx[a]] < s.X[idx[b]] })
	out := &Series{Name: s.Name}
	for _, i := range idx {
		out.Append(s.X[i], s.Y[i])
	}
	return out
}
