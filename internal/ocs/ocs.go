// Package ocs models the optical circuit switch of the paper's switching
// logic: a crossbar of circuits with a reconfiguration dead-time during
// which no packet can traverse the switch ("during the switching time ...
// no packets can be sent through the switch and hence need to be
// buffered"). The dead-time is the independent variable of Figure 1,
// configurable from nanoseconds (PLZT switches, reference [1]) to
// milliseconds (3D-MEMS, Helios/c-Through).
package ocs

import (
	"errors"
	"fmt"

	"hybridsched/internal/match"
	"hybridsched/internal/packet"
	"hybridsched/internal/sim"
	"hybridsched/internal/stats"
	"hybridsched/internal/units"
)

// Errors returned by Send.
var (
	ErrReconfiguring = errors.New("ocs: switch is reconfiguring")
	ErrNoCircuit     = errors.New("ocs: no circuit from input to requested output")
	ErrBusy          = errors.New("ocs: input port is still serializing")
)

// Config parameterizes the switch.
type Config struct {
	Ports        int
	PortRate     units.BitRate  // circuit line rate
	ReconfigTime units.Duration // dead time per reconfiguration
	PropDelay    units.Duration // light propagation through the fabric
}

// Switch is the circuit switch. Create with New.
type Switch struct {
	sim      *sim.Simulator
	cfg      Config
	circuits match.Matching
	busy     []units.Time // per-input serialization horizon
	reconfig bool
	deliver  func(p *packet.Packet, out packet.Port)

	configures stats.Counter
	deadTime   units.Duration
	bitsOut    stats.Counter
	pktsOut    stats.Counter
	truncated  stats.Counter
	epoch      uint64 // bumped on every Configure; detects mid-flight cuts
}

// New creates a switch with no circuits configured. deliver is invoked
// when a packet emerges at an output port.
func New(s *sim.Simulator, cfg Config, deliver func(*packet.Packet, packet.Port)) *Switch {
	if cfg.Ports <= 0 {
		panic("ocs: Ports must be positive")
	}
	if cfg.PortRate <= 0 {
		panic("ocs: PortRate must be positive")
	}
	if cfg.ReconfigTime < 0 || cfg.PropDelay < 0 {
		panic("ocs: negative latency")
	}
	if deliver == nil {
		panic("ocs: nil deliver callback")
	}
	return &Switch{
		sim:      s,
		cfg:      cfg,
		circuits: match.NewMatching(cfg.Ports),
		busy:     make([]units.Time, cfg.Ports),
		deliver:  deliver,
	}
}

// Configure tears down all circuits, waits the reconfiguration dead-time,
// then establishes m. done (optional) fires when the new circuits are
// usable. Packets still serializing when Configure is called are truncated
// by the tear-down and dropped — the physical consequence of configuring
// the OCS without draining it first (the grant-ordering ablation).
func (s *Switch) Configure(m match.Matching, done func()) {
	if len(m) != s.cfg.Ports {
		panic(fmt.Sprintf("ocs: matching size %d for %d-port switch", len(m), s.cfg.Ports))
	}
	if err := m.Validate(); err != nil {
		panic("ocs: " + err.Error())
	}
	s.reconfig = true
	s.epoch++
	s.configures.Inc()
	s.deadTime += s.cfg.ReconfigTime
	target := m.Clone()
	s.sim.Schedule(s.cfg.ReconfigTime, func() {
		s.circuits = target
		s.reconfig = false
		if done != nil {
			done()
		}
	})
}

// CircuitOf returns the output currently wired to input in, or
// match.Unmatched (also during reconfiguration).
func (s *Switch) CircuitOf(in packet.Port) int {
	if s.reconfig {
		return match.Unmatched
	}
	return s.circuits[in]
}

// Reconfiguring reports whether the switch is in its dead-time.
func (s *Switch) Reconfiguring() bool { return s.reconfig }

// InputFreeAt returns the earliest time input in can begin serializing a
// new packet.
func (s *Switch) InputFreeAt(in packet.Port) units.Time {
	if t := s.busy[in]; t > s.sim.Now() {
		return t
	}
	return s.sim.Now()
}

// Send serializes p onto input port p.Src. The circuit p.Src -> p.Dst must
// be configured, the switch must not be reconfiguring, and the input must
// be idle. On success it returns the time serialization finishes (when the
// input is free again); delivery at the output happens PropDelay later,
// unless a reconfiguration cuts the circuit mid-flight, in which case the
// packet is truncated and dropped.
func (s *Switch) Send(p *packet.Packet) (units.Time, error) {
	in := p.Src
	if s.reconfig {
		return 0, ErrReconfiguring
	}
	if s.circuits[in] != int(p.Dst) {
		return 0, ErrNoCircuit
	}
	now := s.sim.Now()
	if s.busy[in] > now {
		return 0, ErrBusy
	}
	txDone := now.Add(units.TransmitTime(p.Size, s.cfg.PortRate))
	s.busy[in] = txDone
	epoch := s.epoch
	out := p.Dst
	s.sim.At(txDone.Add(s.cfg.PropDelay), func() {
		if s.epoch != epoch {
			// Circuit was torn down while the packet was in flight.
			s.truncated.Inc()
			return
		}
		p.Via = packet.PathOCS
		s.bitsOut.Add(int64(p.Size))
		s.pktsOut.Inc()
		s.deliver(p, out)
	})
	return txDone, nil
}

// Stats is a snapshot of switch counters.
type Stats struct {
	Configures    int64
	DeadTime      units.Duration
	BitsDelivered units.Size
	PktsDelivered int64
	Truncated     int64
}

// Stats returns a snapshot of counters.
func (s *Switch) Stats() Stats {
	return Stats{
		Configures:    s.configures.Value(),
		DeadTime:      s.deadTime,
		BitsDelivered: units.Size(s.bitsOut.Value()),
		PktsDelivered: s.pktsOut.Value(),
		Truncated:     s.truncated.Value(),
	}
}

// DutyCycle returns the fraction of elapsed time not spent in
// reconfiguration dead-time, the E5 metric.
func (s *Switch) DutyCycle(elapsed units.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	live := elapsed - s.deadTime
	if live < 0 {
		live = 0
	}
	return float64(live) / float64(elapsed)
}
