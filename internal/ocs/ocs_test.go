package ocs

import (
	"testing"

	"hybridsched/internal/match"
	"hybridsched/internal/packet"
	"hybridsched/internal/sim"
	"hybridsched/internal/units"
)

func testSwitch(t *testing.T, reconfig units.Duration) (*sim.Simulator, *Switch, *[]*packet.Packet) {
	t.Helper()
	s := sim.New()
	var delivered []*packet.Packet
	sw := New(s, Config{
		Ports:        4,
		PortRate:     10 * units.Gbps,
		ReconfigTime: reconfig,
		PropDelay:    5 * units.Nanosecond,
	}, func(p *packet.Packet, out packet.Port) {
		if p.Dst != out {
			t.Fatalf("packet for %d delivered at %d", p.Dst, out)
		}
		delivered = append(delivered, p)
	})
	return s, sw, &delivered
}

func TestSendWithoutCircuitFails(t *testing.T) {
	_, sw, _ := testSwitch(t, units.Microsecond)
	p := &packet.Packet{Src: 0, Dst: 1, Size: 1500 * units.Byte}
	if _, err := sw.Send(p); err != ErrNoCircuit {
		t.Fatalf("err = %v, want ErrNoCircuit", err)
	}
}

func TestConfigureThenSendDelivers(t *testing.T) {
	s, sw, delivered := testSwitch(t, units.Microsecond)
	m := match.NewMatching(4)
	m[0] = 1
	var configured units.Time
	sw.Configure(m, func() { configured = s.Now() })

	p := &packet.Packet{ID: 7, Src: 0, Dst: 1, Size: 1500 * units.Byte}
	s.Schedule(2*units.Microsecond, func() {
		done, err := sw.Send(p)
		if err != nil {
			t.Fatalf("Send: %v", err)
		}
		// 1500B at 10Gbps = 1.2us serialization.
		want := s.Now().Add(1200 * units.Nanosecond)
		if done != want {
			t.Fatalf("done = %v, want %v", done, want)
		}
	})
	s.Run()
	if configured != units.Time(units.Microsecond) {
		t.Fatalf("configured at %v, want 1us", configured)
	}
	if len(*delivered) != 1 {
		t.Fatalf("delivered %d packets", len(*delivered))
	}
	got := (*delivered)[0]
	if got.Via != packet.PathOCS {
		t.Fatalf("via = %v", got.Via)
	}
	st := sw.Stats()
	if st.PktsDelivered != 1 || st.BitsDelivered != 1500*units.Byte || st.Configures != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSendDuringReconfigurationFails(t *testing.T) {
	s, sw, _ := testSwitch(t, units.Microsecond)
	m := match.Identity(4)
	sw.Configure(m, nil)
	p := &packet.Packet{Src: 0, Dst: 0, Size: 64 * units.Byte}
	if _, err := sw.Send(p); err != ErrReconfiguring {
		t.Fatalf("err = %v, want ErrReconfiguring", err)
	}
	if sw.CircuitOf(0) != match.Unmatched {
		t.Fatal("CircuitOf must report unmatched during reconfig")
	}
	s.Run()
	if sw.CircuitOf(0) != 0 {
		t.Fatal("circuit not established after dead time")
	}
}

func TestInputSerializationBusy(t *testing.T) {
	s, sw, delivered := testSwitch(t, 0)
	m := match.NewMatching(4)
	m[0] = 2
	sw.Configure(m, nil)
	s.Run() // zero dead time still takes one event
	p1 := &packet.Packet{ID: 1, Src: 0, Dst: 2, Size: 1500 * units.Byte}
	p2 := &packet.Packet{ID: 2, Src: 0, Dst: 2, Size: 1500 * units.Byte}
	done, err := sw.Send(p1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Send(p2); err != ErrBusy {
		t.Fatalf("second send err = %v, want ErrBusy", err)
	}
	if sw.InputFreeAt(0) != done {
		t.Fatalf("InputFreeAt = %v, want %v", sw.InputFreeAt(0), done)
	}
	s.Run()
	if len(*delivered) != 1 {
		t.Fatalf("delivered = %d", len(*delivered))
	}
}

func TestReconfigurationTruncatesInFlight(t *testing.T) {
	s, sw, delivered := testSwitch(t, 100*units.Nanosecond)
	m := match.NewMatching(4)
	m[0] = 1
	sw.Configure(m, nil)
	s.RunUntil(units.Time(100 * units.Nanosecond))

	p := &packet.Packet{Src: 0, Dst: 1, Size: 1500 * units.Byte} // 1.2us tx
	if _, err := sw.Send(p); err != nil {
		t.Fatal(err)
	}
	// Reconfigure before serialization completes: the packet is cut.
	s.Schedule(500*units.Nanosecond, func() {
		sw.Configure(match.Identity(4), nil)
	})
	s.Run()
	if len(*delivered) != 0 {
		t.Fatal("truncated packet was delivered")
	}
	if st := sw.Stats(); st.Truncated != 1 {
		t.Fatalf("truncated = %d, want 1", st.Truncated)
	}
}

func TestDutyCycle(t *testing.T) {
	s, sw, _ := testSwitch(t, units.Microsecond)
	for i := 0; i < 5; i++ {
		sw.Configure(match.Identity(4), nil)
		s.Run()
	}
	// 5 reconfigs x 1us dead each over 10us elapsed = 50% duty.
	got := sw.DutyCycle(10 * units.Microsecond)
	if got != 0.5 {
		t.Fatalf("duty = %v, want 0.5", got)
	}
	if sw.DutyCycle(0) != 0 {
		t.Fatal("zero elapsed should be 0")
	}
	// Dead time exceeding elapsed clamps to 0.
	if sw.DutyCycle(2*units.Microsecond) != 0 {
		t.Fatal("overcommitted duty should clamp to 0")
	}
}

func TestConfigureValidation(t *testing.T) {
	_, sw, _ := testSwitch(t, 0)
	bad := match.Matching{0, 0, match.Unmatched, match.Unmatched} // duplicate output
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid matching")
		}
	}()
	sw.Configure(bad, nil)
}

func TestConfigureWrongSizePanics(t *testing.T) {
	_, sw, _ := testSwitch(t, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong-size matching")
		}
	}()
	sw.Configure(match.Identity(3), nil)
}

func TestConfigureSnapshotsMatching(t *testing.T) {
	s, sw, _ := testSwitch(t, units.Microsecond)
	m := match.NewMatching(4)
	m[0] = 3
	sw.Configure(m, nil)
	m[0] = 1 // mutate caller's copy after the call
	s.Run()
	if sw.CircuitOf(0) != 3 {
		t.Fatal("Configure must deep-copy the matching")
	}
}
