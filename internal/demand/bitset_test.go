package demand

import (
	"testing"

	"hybridsched/internal/rng"
)

// checkBits verifies the matrix's row/column bitset views agree exactly
// with the dense storage.
func checkBits(t *testing.T, m *Matrix) {
	t.Helper()
	n := m.N()
	for i := 0; i < n; i++ {
		rb := m.RowBits(i)
		for j := 0; j < n; j++ {
			want := m.At(i, j) > 0
			if got := rb[j>>6]&(1<<(uint(j)&63)) != 0; got != want {
				t.Fatalf("RowBits(%d) bit %d = %v, At = %d", i, j, got, m.At(i, j))
			}
			cb := m.ColBits(j)
			if got := cb[i>>6]&(1<<(uint(i)&63)) != 0; got != want {
				t.Fatalf("ColBits(%d) bit %d = %v, At = %d", j, i, got, m.At(i, j))
			}
		}
	}
}

func TestMatrixBitViews(t *testing.T) {
	for _, n := range []int{1, 3, 64, 65, 130} {
		m := NewMatrix(n)
		if got, want := m.Words(), (n+63)/64; got != want {
			t.Fatalf("n=%d Words = %d, want %d", n, got, want)
		}
		r := rng.New(uint64(n) + 7)
		for step := 0; step < 200; step++ {
			i, j := r.Intn(n), r.Intn(n)
			switch r.Intn(4) {
			case 0:
				m.Set(i, j, int64(r.Intn(5))) // includes zeroing
			case 1:
				m.Add(i, j, int64(r.Intn(7))-3)
			case 2:
				m.Set(i, j, 0)
			case 3:
				m.Set(i, j, 1)
			}
		}
		checkBits(t, m)

		// CopyFrom rebuilds the views from scratch on a dirty target.
		dst := NewMatrix(n)
		dst.Set(0, n-1, 9)
		dst.CopyFrom(m)
		checkBits(t, dst)

		// Reset clears them.
		m.Reset()
		checkBits(t, m)
		for i := 0; i < n; i++ {
			for _, w := range m.RowBits(i) {
				if w != 0 {
					t.Fatalf("n=%d RowBits(%d) nonzero after Reset", n, i)
				}
			}
			for _, w := range m.ColBits(i) {
				if w != 0 {
					t.Fatalf("n=%d ColBits(%d) nonzero after Reset", n, i)
				}
			}
		}
	}
}

func TestBitsetBasics(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 200} {
		b := NewBitset(n)
		if b.Len() != n {
			t.Fatalf("Len = %d, want %d", b.Len(), n)
		}
		b.Fill()
		if got := b.Count(); got != n {
			t.Fatalf("n=%d Count after Fill = %d", n, got)
		}
		// No stray bits past n in the last word.
		for _, w := range b.Words()[((n+63)/64)-1:] {
			if n%64 != 0 && w>>(uint(n)&63) != 0 {
				t.Fatalf("n=%d stray bits above capacity: %064b", n, w)
			}
		}
		b.Zero()
		if got := b.Count(); got != 0 {
			t.Fatalf("n=%d Count after Zero = %d", n, got)
		}
		b.Set(0)
		b.Set(n - 1)
		if !b.Test(0) || !b.Test(n-1) {
			t.Fatalf("n=%d Set/Test endpoints failed", n)
		}
		b.Clear(0)
		if b.Test(0) || (n > 1 && !b.Test(n-1)) {
			t.Fatalf("n=%d Clear(0) wrong", n)
		}
	}
}

// naiveClockwise mirrors the sparse kernels' nearestClockwise selection
// over an explicit membership predicate.
func naiveClockwise(member func(int) bool, ptr, n int) int {
	best, bestDist := -1, n
	for c := 0; c < n; c++ {
		if !member(c) {
			continue
		}
		dist := c - ptr
		if dist < 0 {
			dist += n
		}
		if dist < bestDist {
			best, bestDist = c, dist
		}
	}
	return best
}

func TestScanHelpers(t *testing.T) {
	r := rng.New(42)
	for _, n := range []int{1, 5, 64, 67, 150} {
		set := NewBitset(n)
		excl := NewBitset(n)
		for trial := 0; trial < 50; trial++ {
			set.Zero()
			excl.Zero()
			in := make(map[int]bool)
			ex := make(map[int]bool)
			for k := 0; k < n/2+1; k++ {
				i := r.Intn(n)
				set.Set(i)
				in[i] = true
				if r.Bool(0.3) {
					excl.Set(i)
					ex[i] = true
				}
			}
			member := func(c int) bool { return in[c] && !ex[c] }

			for ptr := 0; ptr < n; ptr++ {
				want := naiveClockwise(member, ptr, n)
				if got := ClockwiseBit(set.Words(), excl.Words(), ptr, n); got != want {
					t.Fatalf("n=%d ptr=%d ClockwiseBit = %d, want %d", n, ptr, got, want)
				}
				wantNext := -1
				for c := ptr; c < n; c++ {
					if in[c] {
						wantNext = c
						break
					}
				}
				if got := NextBit(set.Words(), ptr); got != wantNext {
					t.Fatalf("n=%d from=%d NextBit = %d, want %d", n, ptr, got, wantNext)
				}
			}

			// Count/Select agree with the ascending candidate list.
			var cands []int
			for c := 0; c < n; c++ {
				if member(c) {
					cands = append(cands, c)
				}
			}
			if got := CountAndNot(set.Words(), excl.Words()); got != len(cands) {
				t.Fatalf("n=%d CountAndNot = %d, want %d", n, got, len(cands))
			}
			for k, want := range cands {
				if got := SelectAndNot(set.Words(), excl.Words(), k); got != want {
					t.Fatalf("n=%d SelectAndNot(%d) = %d, want %d", n, k, got, want)
				}
			}
			if got := CountAndNot(set.Words(), nil); got != len(in) {
				t.Fatalf("n=%d CountAndNot(nil) = %d, want %d", n, got, len(in))
			}
		}
	}
}

// FuzzBitsetRowOps drives a Matrix row and a plain map through the same
// set/clear sequence and checks that the bitset view, the nonzero list
// and iteration agree with the reference at every step.
func FuzzBitsetRowOps(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x80, 0x03}, uint8(4))
	f.Add([]byte{0xff, 0x00, 0x7f, 0x81, 0x10}, uint8(70))
	f.Fuzz(func(t *testing.T, ops []byte, size uint8) {
		n := int(size)%130 + 1
		m := NewMatrix(n)
		ref := make(map[int]int64)
		for _, op := range ops {
			j := int(op&0x7f) % n
			if op&0x80 != 0 {
				m.Set(0, j, 0)
				delete(ref, j)
			} else {
				m.Set(0, j, int64(j)+1)
				ref[j] = int64(j) + 1
			}
		}
		// Iterate the bitset row; every visited bit must be in the
		// reference with a positive value, and counts must agree.
		rb := m.RowBits(0)
		visited := 0
		for j := NextBit(rb, 0); j >= 0; j = NextBit(rb, j+1) {
			v, ok := ref[j]
			if !ok || m.At(0, j) != v {
				t.Fatalf("bit %d set; ref[%d]=%d,%v At=%d", j, j, v, ok, m.At(0, j))
			}
			visited++
		}
		if visited != len(ref) {
			t.Fatalf("iterated %d bits, reference has %d", visited, len(ref))
		}
		if m.RowNonZeros(0) != len(ref) {
			t.Fatalf("RowNonZeros = %d, reference has %d", m.RowNonZeros(0), len(ref))
		}
		// Column views mirror the row: bit 0 of ColBits(j) iff ref[j].
		for j := 0; j < n; j++ {
			_, ok := ref[j]
			if got := m.ColBits(j)[0]&1 != 0; got != ok {
				t.Fatalf("ColBits(%d) bit 0 = %v, want %v", j, got, ok)
			}
		}
	})
}
