// Package demand implements demand-matrix representation and estimation —
// the first stage of the paper's scheduling logic ("processes the incoming
// requests, estimates the demand matrix, and runs the scheduling
// algorithm").
//
// A Matrix holds per (input, output) demand in abstract int64 units
// (the fabric uses bits). Estimators turn the stream of VOQ status
// reports into a demand snapshot; the choice of estimator is one of the
// ablations experiment E8 evaluates, because estimation lag is one of the
// latency terms that make software schedulers slow.
package demand

import (
	"fmt"
	"math"
	"strings"

	"hybridsched/internal/units"
)

// Matrix is an n x n demand matrix. Entries are non-negative.
type Matrix struct {
	n int
	v []int64
}

// NewMatrix returns a zero n x n matrix. It panics if n <= 0.
func NewMatrix(n int) *Matrix {
	if n <= 0 {
		panic("demand: matrix size must be positive")
	}
	return &Matrix{n: n, v: make([]int64, n*n)}
}

// N returns the matrix dimension.
func (m *Matrix) N() int { return m.n }

// At returns entry (i, j).
func (m *Matrix) At(i, j int) int64 { return m.v[i*m.n+j] }

// Set assigns entry (i, j). Negative values are clamped to zero.
func (m *Matrix) Set(i, j int, x int64) {
	if x < 0 {
		x = 0
	}
	m.v[i*m.n+j] = x
}

// Add increments entry (i, j), clamping at zero.
func (m *Matrix) Add(i, j int, d int64) { m.Set(i, j, m.At(i, j)+d) }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.n)
	copy(out.v, m.v)
	return out
}

// Reset zeroes all entries.
func (m *Matrix) Reset() {
	for i := range m.v {
		m.v[i] = 0
	}
}

// Total returns the sum of all entries.
func (m *Matrix) Total() int64 {
	var s int64
	for _, x := range m.v {
		s += x
	}
	return s
}

// RowSum returns the sum of row i.
func (m *Matrix) RowSum(i int) int64 {
	var s int64
	for j := 0; j < m.n; j++ {
		s += m.At(i, j)
	}
	return s
}

// ColSum returns the sum of column j.
func (m *Matrix) ColSum(j int) int64 {
	var s int64
	for i := 0; i < m.n; i++ {
		s += m.At(i, j)
	}
	return s
}

// MaxLineSum returns the largest row or column sum — the lower bound on the
// time any schedule needs to serve the matrix (the "makespan bound").
func (m *Matrix) MaxLineSum() int64 {
	var best int64
	for i := 0; i < m.n; i++ {
		if r := m.RowSum(i); r > best {
			best = r
		}
		if c := m.ColSum(i); c > best {
			best = c
		}
	}
	return best
}

// Max returns the largest entry.
func (m *Matrix) Max() int64 {
	var best int64
	for _, x := range m.v {
		if x > best {
			best = x
		}
	}
	return best
}

// Quantize converts the matrix to whole slots of slotUnits each, rounding
// up (any residual demand still needs a slot).
func (m *Matrix) Quantize(slotUnits int64) *Matrix {
	if slotUnits <= 0 {
		panic("demand: slotUnits must be positive")
	}
	out := NewMatrix(m.n)
	for i := range m.v {
		out.v[i] = (m.v[i] + slotUnits - 1) / slotUnits
	}
	return out
}

// Stuff returns a copy padded with dummy demand so that every row and
// column sums to MaxLineSum. A stuffed matrix admits a decomposition into
// perfect matchings (Birkhoff–von Neumann), which is what slot-based
// circuit schedules consume. The padding is distributed greedily over
// (row, col) pairs with slack.
func (m *Matrix) Stuff() *Matrix {
	out := m.Clone()
	target := out.MaxLineSum()
	rows := make([]int64, out.n)
	cols := make([]int64, out.n)
	for i := 0; i < out.n; i++ {
		rows[i] = out.RowSum(i)
		cols[i] = out.ColSum(i)
	}
	for i := 0; i < out.n; i++ {
		for j := 0; j < out.n && rows[i] < target; j++ {
			slack := target - rows[i]
			if cslack := target - cols[j]; cslack < slack {
				slack = cslack
			}
			if slack <= 0 {
				continue
			}
			out.Add(i, j, slack)
			rows[i] += slack
			cols[j] += slack
		}
	}
	return out
}

// String renders small matrices for debugging and golden tests.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Normalized returns the matrix scaled to doubly sub-stochastic floats
// (every row and column sum <= 1) by dividing by MaxLineSum. Returns nil
// for an all-zero matrix.
func (m *Matrix) Normalized() [][]float64 {
	max := m.MaxLineSum()
	if max == 0 {
		return nil
	}
	out := make([][]float64, m.n)
	for i := range out {
		out[i] = make([]float64, m.n)
		for j := range out[i] {
			out[i][j] = float64(m.At(i, j)) / float64(max)
		}
	}
	return out
}

// Estimator converts observations into demand snapshots. Implementations
// are driven two ways: Observe on every arrival (in, out, bits), and
// SetOccupancy with direct queue-depth reports. Snapshot produces the
// matrix the scheduler runs on.
type Estimator interface {
	// Observe records that bits of new demand from in to out arrived at
	// time t.
	Observe(t units.Time, in, out int, bits int64)
	// SetOccupancy reports the current VOQ backlog for (in, out).
	SetOccupancy(t units.Time, in, out int, bits int64)
	// Snapshot returns the demand estimate as of time t. The returned
	// matrix is owned by the caller.
	Snapshot(t units.Time) *Matrix
	// Name identifies the estimator in reports.
	Name() string
}

// Occupancy estimates demand as the instantaneous VOQ backlog. This is
// what a hardware scheduler reading queue-depth registers sees: zero lag,
// but it only knows about packets that already arrived.
type Occupancy struct {
	m *Matrix
}

// NewOccupancy returns an occupancy estimator for an n-port switch.
func NewOccupancy(n int) *Occupancy { return &Occupancy{m: NewMatrix(n)} }

// Observe is a no-op: occupancy is maintained via SetOccupancy.
func (o *Occupancy) Observe(units.Time, int, int, int64) {}

// SetOccupancy records the backlog.
func (o *Occupancy) SetOccupancy(_ units.Time, in, out int, bits int64) {
	o.m.Set(in, out, bits)
}

// Snapshot returns the current backlog matrix.
func (o *Occupancy) Snapshot(units.Time) *Matrix { return o.m.Clone() }

// Name implements Estimator.
func (o *Occupancy) Name() string { return "occupancy" }

// Window estimates demand as the bits that arrived in the trailing window.
// This is how software schedulers that poll flow counters (Helios's flow
// demand estimation) see the network: accurate for steady flows, laggy for
// bursts — the estimation-delay term of the paper's §2.
type Window struct {
	n      int
	window units.Duration
	events []windowEvent
	occ    *Matrix
}

type windowEvent struct {
	t       units.Time
	in, out int
	bits    int64
}

// NewWindow returns a trailing-window estimator. window must be positive.
func NewWindow(n int, window units.Duration) *Window {
	if window <= 0 {
		panic("demand: window must be positive")
	}
	return &Window{n: n, window: window, occ: NewMatrix(n)}
}

// Observe appends an arrival.
func (w *Window) Observe(t units.Time, in, out int, bits int64) {
	w.events = append(w.events, windowEvent{t, in, out, bits})
}

// SetOccupancy is tracked so Snapshot can cap the estimate at the real
// backlog (you cannot serve demand that has not arrived).
func (w *Window) SetOccupancy(_ units.Time, in, out int, bits int64) {
	w.occ.Set(in, out, bits)
}

// Snapshot sums arrivals within the trailing window.
func (w *Window) Snapshot(t units.Time) *Matrix {
	cut := t.Add(-w.window)
	out := NewMatrix(w.n)
	// Drop expired events in place.
	kept := w.events[:0]
	for _, e := range w.events {
		if e.t.Before(cut) {
			continue
		}
		kept = append(kept, e)
		out.Add(e.in, e.out, e.bits)
	}
	w.events = kept
	return out
}

// Name implements Estimator.
func (w *Window) Name() string { return "window" }

// EWMA estimates per-pair demand rate with exponential smoothing over
// fixed-length buckets, scaled back to a per-window volume. Smoother than
// Window under bursts, slower to converge after shifts.
type EWMA struct {
	n      int
	alpha  float64
	bucket units.Duration
	cur    *Matrix
	rate   []float64 // smoothed bits per bucket
	last   units.Time
}

// NewEWMA returns an EWMA estimator with smoothing factor alpha in (0, 1]
// over buckets of the given length.
func NewEWMA(n int, alpha float64, bucket units.Duration) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("demand: alpha must be in (0,1]")
	}
	if bucket <= 0 {
		panic("demand: bucket must be positive")
	}
	return &EWMA{n: n, alpha: alpha, bucket: bucket,
		cur: NewMatrix(n), rate: make([]float64, n*n)}
}

// Observe accumulates arrivals into the current bucket, folding completed
// buckets into the smoothed rate.
func (e *EWMA) Observe(t units.Time, in, out int, bits int64) {
	e.roll(t)
	e.cur.Add(in, out, bits)
}

// SetOccupancy is a no-op for EWMA (it is a pure rate estimator).
func (e *EWMA) SetOccupancy(units.Time, int, int, int64) {}

func (e *EWMA) roll(t units.Time) {
	for t.Sub(e.last) >= e.bucket {
		for i := range e.rate {
			e.rate[i] = e.alpha*float64(e.cur.v[i]) + (1-e.alpha)*e.rate[i]
		}
		e.cur.Reset()
		e.last = e.last.Add(e.bucket)
	}
}

// Snapshot returns the smoothed per-bucket volume.
func (e *EWMA) Snapshot(t units.Time) *Matrix {
	e.roll(t)
	out := NewMatrix(e.n)
	for i := range e.rate {
		out.v[i] = int64(math.Round(e.rate[i]))
	}
	return out
}

// Name implements Estimator.
func (e *EWMA) Name() string { return "ewma" }
