// Package demand implements demand-matrix representation and estimation —
// the first stage of the paper's scheduling logic ("processes the incoming
// requests, estimates the demand matrix, and runs the scheduling
// algorithm").
//
// A Matrix holds per (input, output) demand in abstract int64 units
// (the fabric uses bits). Estimators turn the stream of VOQ status
// reports into a demand snapshot; the choice of estimator is one of the
// ablations experiment E8 evaluates, because estimation lag is one of the
// latency terms that make software schedulers slow.
//
// # Scale
//
// The matrix is dense in storage (At/Set stay O(1)) but additionally
// maintains, incrementally on every Set/Add: the ascending nonzero column
// indices of each row (Row, NonZeros, RowNonZeros), and exact row/column/
// total sums (RowSum, ColSum, Total, MaxLineSum — all O(1), MaxLineSum
// O(n)). At fabric scale (hundreds of ports) real demand is sparse — each
// port converses with a few peers — so the matching algorithms in
// internal/match iterate Row views in O(nonzeros) instead of scanning all
// n² cells. FromPool/Release recycle matrices through a per-size
// sync.Pool so estimators and frame decompositions stop paying an n²
// allocation per scheduling frame.
package demand

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"hybridsched/internal/units"
)

// Matrix is an n x n demand matrix. Entries are non-negative.
type Matrix struct {
	n     int
	words int // uint64 words per bitset row/column: ceil(n/64)
	v     []int64
	cols  [][]int32 // per-row ascending nonzero column indices
	rbits []uint64  // row bitsets: bit j of row i set iff At(i,j) > 0
	cbits []uint64  // column bitsets: bit i of column j set iff At(i,j) > 0
	rsum  []int64   // per-row sums
	csum  []int64   // per-column sums
	nz    int       // total nonzero entries
	tot   int64     // total sum
}

// NewMatrix returns a zero n x n matrix. It panics if n <= 0.
func NewMatrix(n int) *Matrix {
	if n <= 0 {
		panic("demand: matrix size must be positive")
	}
	words := (n + 63) / 64
	return &Matrix{
		n:     n,
		words: words,
		v:     make([]int64, n*n),
		cols:  make([][]int32, n),
		rbits: make([]uint64, n*words),
		cbits: make([]uint64, n*words),
		rsum:  make([]int64, n),
		csum:  make([]int64, n),
	}
}

// matrixPools holds one sync.Pool of zeroed matrices per dimension.
var matrixPools sync.Map // int -> *sync.Pool

func poolFor(n int) *sync.Pool {
	if p, ok := matrixPools.Load(n); ok {
		return p.(*sync.Pool)
	}
	p, _ := matrixPools.LoadOrStore(n, &sync.Pool{
		New: func() any { return NewMatrix(n) },
	})
	return p.(*sync.Pool)
}

// FromPool returns a zeroed n x n matrix from the shared pool. It is
// interchangeable with NewMatrix; callers that Release matrices when done
// keep per-frame snapshot and decomposition work allocation-free.
func FromPool(n int) *Matrix {
	return poolFor(n).Get().(*Matrix)
}

// Release zeroes m and returns it to the pool. The caller must not use m
// afterwards. Releasing is optional — matrices that escape to long-lived
// owners are simply collected by the GC.
func (m *Matrix) Release() {
	m.Reset()
	poolFor(m.n).Put(m)
}

// N returns the matrix dimension.
func (m *Matrix) N() int { return m.n }

// At returns entry (i, j).
func (m *Matrix) At(i, j int) int64 { return m.v[i*m.n+j] }

// Set assigns entry (i, j). Negative values are clamped to zero.
//
//hybridsched:hotpath
func (m *Matrix) Set(i, j int, x int64) {
	if x < 0 {
		x = 0
	}
	idx := i*m.n + j
	old := m.v[idx]
	if old == x {
		return
	}
	m.v[idx] = x
	m.rsum[i] += x - old
	m.csum[j] += x - old
	m.tot += x - old
	if old == 0 {
		m.insertCol(i, int32(j))
		m.rbits[i*m.words+j>>6] |= 1 << (uint(j) & 63)
		m.cbits[j*m.words+i>>6] |= 1 << (uint(i) & 63)
		m.nz++
	} else if x == 0 {
		m.removeCol(i, int32(j))
		m.rbits[i*m.words+j>>6] &^= 1 << (uint(j) & 63)
		m.cbits[j*m.words+i>>6] &^= 1 << (uint(i) & 63)
		m.nz--
	}
}

// insertCol records column j as nonzero in row i, keeping the row's index
// list ascending. Appending in column order (how estimators and copies
// build matrices) hits the O(1) fast path.
func (m *Matrix) insertCol(i int, j int32) {
	row := m.cols[i]
	if k := len(row); k == 0 || row[k-1] < j {
		//hybridsched:alloc-ok amortized growth of the row's own index storage
		m.cols[i] = append(row, j)
		return
	}
	lo, hi := 0, len(row)
	for lo < hi {
		mid := (lo + hi) / 2
		if row[mid] < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	row = append(row, 0)
	copy(row[lo+1:], row[lo:])
	row[lo] = j
	m.cols[i] = row
}

// removeCol drops column j from row i's nonzero index list.
func (m *Matrix) removeCol(i int, j int32) {
	row := m.cols[i]
	lo, hi := 0, len(row)
	for lo < hi {
		mid := (lo + hi) / 2
		if row[mid] < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	copy(row[lo:], row[lo+1:])
	m.cols[i] = row[:len(row)-1]
}

// Add increments entry (i, j), clamping at zero.
//
//hybridsched:hotpath
func (m *Matrix) Add(i, j int, d int64) { m.Set(i, j, m.At(i, j)+d) }

// Row is a read-only view of one row's nonzero entries in ascending
// column order. It is valid until the matrix is next mutated.
type Row struct {
	cols []int32
	vals []int64 // the full dense row; indexed by column
}

// Row returns the nonzero view of row i.
func (m *Matrix) Row(i int) Row {
	return Row{cols: m.cols[i], vals: m.v[i*m.n : (i+1)*m.n]}
}

// Len returns the number of nonzero entries in the row.
func (r Row) Len() int { return len(r.cols) }

// Entry returns the k-th nonzero entry as (column, value). Entries are
// ordered by ascending column.
func (r Row) Entry(k int) (j int, v int64) {
	c := r.cols[k]
	return int(c), r.vals[c]
}

// Words returns the number of uint64 words in each RowBits/ColBits view:
// ceil(N()/64). All Bitsets combined with the matrix's views must be
// sized for the same dimension.
func (m *Matrix) Words() int { return m.words }

// RowBits returns row i's nonzero-column bitset: bit j (word j/64, bit
// j%64) is set iff At(i, j) > 0. The view is read-only and valid until
// the matrix is next mutated. It is maintained incrementally alongside
// the nonzero column lists, so the word-parallel matching kernels can
// AND whole 64-port spans per instruction.
func (m *Matrix) RowBits(i int) []uint64 { return m.rbits[i*m.words : (i+1)*m.words] }

// ColBits returns column j's nonzero-row bitset: bit i is set iff
// At(i, j) > 0. Read-only, valid until the next mutation. This is the
// request vector output-side arbiters (grant phases) scan.
func (m *Matrix) ColBits(j int) []uint64 { return m.cbits[j*m.words : (j+1)*m.words] }

// NonZeros returns the total number of nonzero entries.
func (m *Matrix) NonZeros() int { return m.nz }

// RowNonZeros returns the number of nonzero entries in row i.
func (m *Matrix) RowNonZeros(i int) int { return len(m.cols[i]) }

// Clone returns a deep copy drawn from the matrix pool.
func (m *Matrix) Clone() *Matrix {
	out := FromPool(m.n)
	out.CopyFrom(m)
	return out
}

// CopyFrom makes m an exact copy of src. Both must have the same
// dimension. The copy touches only src's nonzero entries, so copying a
// sparse matrix is O(nonzeros), not O(n²).
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.n != src.n {
		panic(fmt.Sprintf("demand: CopyFrom dimension mismatch %d != %d", m.n, src.n))
	}
	if m == src {
		return
	}
	m.Reset()
	for i := 0; i < m.n; i++ {
		sc := src.cols[i]
		dst := m.cols[i][:0]
		base := i * m.n
		rb := m.rbits[i*m.words : (i+1)*m.words]
		for _, j := range sc {
			m.v[base+int(j)] = src.v[base+int(j)]
			rb[j>>6] |= 1 << (uint(j) & 63)
			m.cbits[int(j)*m.words+i>>6] |= 1 << (uint(i) & 63)
			dst = append(dst, j)
		}
		m.cols[i] = dst
		m.rsum[i] = src.rsum[i]
	}
	copy(m.csum, src.csum)
	m.nz = src.nz
	m.tot = src.tot
}

// Equal reports whether m and o hold exactly the same entries. The
// comparison walks only the nonzero structure, so two sparse matrices
// compare in O(nonzeros), with O(1) early outs on the incremental
// dimension, count and sum metadata. The warm-start frame decomposer
// uses it to detect an unchanged demand snapshot across epochs.
//
//hybridsched:hotpath
func (m *Matrix) Equal(o *Matrix) bool {
	if m == o {
		return true
	}
	if m.n != o.n || m.nz != o.nz || m.tot != o.tot {
		return false
	}
	for i := 0; i < m.n; i++ {
		mc, oc := m.cols[i], o.cols[i]
		if len(mc) != len(oc) {
			return false
		}
		base := i * m.n
		for k, j := range mc {
			if j != oc[k] || m.v[base+int(j)] != o.v[base+int(j)] {
				return false
			}
		}
	}
	return true
}

// Reset zeroes all entries. Cost is O(nonzeros + n), not O(n²).
func (m *Matrix) Reset() {
	for i, row := range m.cols {
		base := i * m.n
		rb := m.rbits[i*m.words : (i+1)*m.words]
		for _, j := range row {
			m.v[base+int(j)] = 0
			rb[j>>6] &^= 1 << (uint(j) & 63)
			m.cbits[int(j)*m.words+i>>6] &^= 1 << (uint(i) & 63)
		}
		m.cols[i] = row[:0]
		m.rsum[i] = 0
	}
	for j := range m.csum {
		m.csum[j] = 0
	}
	m.nz = 0
	m.tot = 0
}

// Total returns the sum of all entries. O(1): maintained incrementally.
func (m *Matrix) Total() int64 { return m.tot }

// RowSum returns the sum of row i. O(1): maintained incrementally.
func (m *Matrix) RowSum(i int) int64 { return m.rsum[i] }

// ColSum returns the sum of column j. O(1): maintained incrementally.
func (m *Matrix) ColSum(j int) int64 { return m.csum[j] }

// MaxLineSum returns the largest row or column sum — the lower bound on the
// time any schedule needs to serve the matrix (the "makespan bound").
func (m *Matrix) MaxLineSum() int64 {
	var best int64
	for i := 0; i < m.n; i++ {
		if r := m.rsum[i]; r > best {
			best = r
		}
		if c := m.csum[i]; c > best {
			best = c
		}
	}
	return best
}

// Max returns the largest entry.
func (m *Matrix) Max() int64 {
	var best int64
	for i, row := range m.cols {
		base := i * m.n
		for _, j := range row {
			if x := m.v[base+int(j)]; x > best {
				best = x
			}
		}
	}
	return best
}

// Quantize converts the matrix to whole slots of slotUnits each, rounding
// up (any residual demand still needs a slot).
func (m *Matrix) Quantize(slotUnits int64) *Matrix {
	if slotUnits <= 0 {
		panic("demand: slotUnits must be positive")
	}
	out := FromPool(m.n)
	for i := 0; i < m.n; i++ {
		row := m.Row(i)
		for k := 0; k < row.Len(); k++ {
			j, v := row.Entry(k)
			out.Set(i, j, (v+slotUnits-1)/slotUnits)
		}
	}
	return out
}

// Stuff returns a copy padded with dummy demand so that every row and
// column sums to MaxLineSum. A stuffed matrix admits a decomposition into
// perfect matchings (Birkhoff–von Neumann), which is what slot-based
// circuit schedules consume. The padding is distributed greedily over
// (row, col) pairs with slack.
func (m *Matrix) Stuff() *Matrix {
	out := m.Clone()
	target := out.MaxLineSum()
	for i := 0; i < out.n; i++ {
		for j := 0; j < out.n && out.rsum[i] < target; j++ {
			slack := target - out.rsum[i]
			if cslack := target - out.csum[j]; cslack < slack {
				slack = cslack
			}
			if slack <= 0 {
				continue
			}
			out.Add(i, j, slack)
		}
	}
	return out
}

// String renders small matrices for debugging and golden tests.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Normalized returns the matrix scaled to doubly sub-stochastic floats
// (every row and column sum <= 1) by dividing by MaxLineSum. Returns nil
// for an all-zero matrix.
func (m *Matrix) Normalized() [][]float64 {
	max := m.MaxLineSum()
	if max == 0 {
		return nil
	}
	out := make([][]float64, m.n)
	for i := range out {
		out[i] = make([]float64, m.n)
		row := m.Row(i)
		for k := 0; k < row.Len(); k++ {
			j, v := row.Entry(k)
			out[i][j] = float64(v) / float64(max)
		}
	}
	return out
}

// Estimator converts observations into demand snapshots. Implementations
// are driven two ways: Observe on every arrival (in, out, bits), and
// SetOccupancy with direct queue-depth reports. Snapshot produces the
// matrix the scheduler runs on.
type Estimator interface {
	// Observe records that bits of new demand from in to out arrived at
	// time t.
	Observe(t units.Time, in, out int, bits int64)
	// SetOccupancy reports the current VOQ backlog for (in, out).
	SetOccupancy(t units.Time, in, out int, bits int64)
	// Snapshot returns the demand estimate as of time t. The returned
	// matrix is owned by the caller (and may be Released back to the
	// pool once consumed).
	Snapshot(t units.Time) *Matrix
	// Name identifies the estimator in reports.
	Name() string
}

// OccupancySink is implemented by estimators that can ingest a whole
// occupancy matrix at once instead of n² SetOccupancy calls. The matrix
// argument is a read-only view owned by the caller and only valid for the
// duration of the call; implementations must copy what they keep.
// voq.Bank.FillOccupancy uses this fast path when available.
type OccupancySink interface {
	SetOccupancyMatrix(t units.Time, m *Matrix)
}

// Occupancy estimates demand as the instantaneous VOQ backlog. This is
// what a hardware scheduler reading queue-depth registers sees: zero lag,
// but it only knows about packets that already arrived.
type Occupancy struct {
	m *Matrix
}

// NewOccupancy returns an occupancy estimator for an n-port switch.
func NewOccupancy(n int) *Occupancy { return &Occupancy{m: NewMatrix(n)} }

// Observe is a no-op: occupancy is maintained via SetOccupancy.
func (o *Occupancy) Observe(units.Time, int, int, int64) {}

// SetOccupancy records the backlog.
func (o *Occupancy) SetOccupancy(_ units.Time, in, out int, bits int64) {
	o.m.Set(in, out, bits)
}

// SetOccupancyMatrix implements OccupancySink: the whole backlog at once.
func (o *Occupancy) SetOccupancyMatrix(_ units.Time, m *Matrix) {
	o.m.CopyFrom(m)
}

// Snapshot returns the current backlog matrix.
func (o *Occupancy) Snapshot(units.Time) *Matrix { return o.m.Clone() }

// Name implements Estimator.
func (o *Occupancy) Name() string { return "occupancy" }

// Window estimates demand as the bits that arrived in the trailing window.
// This is how software schedulers that poll flow counters (Helios's flow
// demand estimation) see the network: accurate for steady flows, laggy for
// bursts — the estimation-delay term of the paper's §2.
type Window struct {
	n      int
	window units.Duration
	events []windowEvent
	occ    *Matrix
}

type windowEvent struct {
	t       units.Time
	in, out int
	bits    int64
}

// NewWindow returns a trailing-window estimator. window must be positive.
func NewWindow(n int, window units.Duration) *Window {
	if window <= 0 {
		panic("demand: window must be positive")
	}
	return &Window{n: n, window: window, occ: NewMatrix(n)}
}

// Observe appends an arrival.
func (w *Window) Observe(t units.Time, in, out int, bits int64) {
	w.events = append(w.events, windowEvent{t, in, out, bits})
}

// SetOccupancy is tracked so Snapshot can cap the estimate at the real
// backlog (you cannot serve demand that has not arrived).
func (w *Window) SetOccupancy(_ units.Time, in, out int, bits int64) {
	w.occ.Set(in, out, bits)
}

// SetOccupancyMatrix implements OccupancySink.
func (w *Window) SetOccupancyMatrix(_ units.Time, m *Matrix) {
	w.occ.CopyFrom(m)
}

// Snapshot sums arrivals within the trailing window.
func (w *Window) Snapshot(t units.Time) *Matrix {
	cut := t.Add(-w.window)
	out := FromPool(w.n)
	// Drop expired events in place.
	kept := w.events[:0]
	for _, e := range w.events {
		if e.t.Before(cut) {
			continue
		}
		kept = append(kept, e)
		out.Add(e.in, e.out, e.bits)
	}
	w.events = kept
	return out
}

// Name implements Estimator.
func (w *Window) Name() string { return "window" }

// EWMA estimates per-pair demand rate with exponential smoothing over
// fixed-length buckets, scaled back to a per-window volume. Smoother than
// Window under bursts, slower to converge after shifts.
type EWMA struct {
	n      int
	alpha  float64
	bucket units.Duration
	cur    *Matrix
	rate   []float64 // smoothed bits per bucket
	last   units.Time
}

// NewEWMA returns an EWMA estimator with smoothing factor alpha in (0, 1]
// over buckets of the given length.
func NewEWMA(n int, alpha float64, bucket units.Duration) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("demand: alpha must be in (0,1]")
	}
	if bucket <= 0 {
		panic("demand: bucket must be positive")
	}
	return &EWMA{n: n, alpha: alpha, bucket: bucket,
		cur: NewMatrix(n), rate: make([]float64, n*n)}
}

// Observe accumulates arrivals into the current bucket, folding completed
// buckets into the smoothed rate.
func (e *EWMA) Observe(t units.Time, in, out int, bits int64) {
	e.roll(t)
	e.cur.Add(in, out, bits)
}

// SetOccupancy is a no-op for EWMA (it is a pure rate estimator).
func (e *EWMA) SetOccupancy(units.Time, int, int, int64) {}

// SetOccupancyMatrix implements OccupancySink as a no-op.
func (e *EWMA) SetOccupancyMatrix(units.Time, *Matrix) {}

func (e *EWMA) roll(t units.Time) {
	for t.Sub(e.last) >= e.bucket {
		for i := range e.rate {
			e.rate[i] = e.alpha*float64(e.cur.v[i]) + (1-e.alpha)*e.rate[i]
		}
		e.cur.Reset()
		e.last = e.last.Add(e.bucket)
	}
}

// Snapshot returns the smoothed per-bucket volume.
func (e *EWMA) Snapshot(t units.Time) *Matrix {
	e.roll(t)
	out := FromPool(e.n)
	for idx, r := range e.rate {
		if v := int64(math.Round(r)); v != 0 {
			out.Set(idx/e.n, idx%e.n, v)
		}
	}
	return out
}

// Name implements Estimator.
func (e *EWMA) Name() string { return "ewma" }
