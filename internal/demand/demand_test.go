package demand

import (
	"testing"
	"testing/quick"

	"hybridsched/internal/rng"
	"hybridsched/internal/units"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(3)
	if m.N() != 3 || m.Total() != 0 {
		t.Fatal("zero matrix wrong")
	}
	m.Set(0, 1, 10)
	m.Add(0, 1, 5)
	m.Set(2, 2, 7)
	if m.At(0, 1) != 15 || m.At(2, 2) != 7 {
		t.Fatalf("entries wrong: %v", m)
	}
	if m.Total() != 22 {
		t.Fatalf("total = %d", m.Total())
	}
	if m.RowSum(0) != 15 || m.ColSum(1) != 15 || m.ColSum(2) != 7 {
		t.Fatal("line sums wrong")
	}
	if m.Max() != 15 {
		t.Fatalf("max = %d", m.Max())
	}
	m.Add(0, 1, -100) // clamps at zero
	if m.At(0, 1) != 0 {
		t.Fatalf("negative clamp failed: %d", m.At(0, 1))
	}
}

func TestMatrixCloneIndependent(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 0, 5)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 5 {
		t.Fatal("clone aliases parent")
	}
}

func TestMatrixPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(0)
}

func TestMaxLineSum(t *testing.T) {
	m := NewMatrix(3)
	m.Set(0, 0, 4)
	m.Set(0, 1, 4) // row 0 sums to 8
	m.Set(1, 1, 5) // col 1 sums to 9
	if got := m.MaxLineSum(); got != 9 {
		t.Fatalf("MaxLineSum = %d, want 9", got)
	}
}

func TestQuantizeRoundsUp(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 0, 10)
	m.Set(0, 1, 11)
	m.Set(1, 0, 0)
	q := m.Quantize(10)
	if q.At(0, 0) != 1 || q.At(0, 1) != 2 || q.At(1, 0) != 0 {
		t.Fatalf("quantize wrong:\n%v", q)
	}
}

func TestStuffMakesLinesEqual(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(6)
		m := NewMatrix(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.Set(i, j, int64(r.Intn(100)))
			}
		}
		target := m.MaxLineSum()
		s := m.Stuff()
		// Stuffing only adds demand.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if s.At(i, j) < m.At(i, j) {
					return false
				}
			}
		}
		// Every line sums to the original max line sum.
		for i := 0; i < n; i++ {
			if s.RowSum(i) != target || s.ColSum(i) != target {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStuffZeroMatrix(t *testing.T) {
	m := NewMatrix(4)
	s := m.Stuff()
	if s.Total() != 0 {
		t.Fatal("stuffing a zero matrix should stay zero")
	}
}

func TestNormalized(t *testing.T) {
	m := NewMatrix(2)
	if m.Normalized() != nil {
		t.Fatal("zero matrix should normalize to nil")
	}
	m.Set(0, 0, 10)
	m.Set(1, 1, 5)
	f := m.Normalized()
	if f[0][0] != 1.0 || f[1][1] != 0.5 {
		t.Fatalf("normalized wrong: %v", f)
	}
}

func TestOccupancyEstimator(t *testing.T) {
	o := NewOccupancy(2)
	o.SetOccupancy(0, 0, 1, 100)
	o.SetOccupancy(0, 1, 0, 50)
	o.Observe(0, 0, 1, 999) // no-op for occupancy
	m := o.Snapshot(0)
	if m.At(0, 1) != 100 || m.At(1, 0) != 50 {
		t.Fatalf("snapshot wrong:\n%v", m)
	}
	// Snapshot returns a copy.
	m.Set(0, 1, 0)
	if o.Snapshot(0).At(0, 1) != 100 {
		t.Fatal("snapshot aliased internal state")
	}
	// Occupancy is replace-not-add.
	o.SetOccupancy(0, 0, 1, 70)
	if o.Snapshot(0).At(0, 1) != 70 {
		t.Fatal("occupancy should be absolute")
	}
	if o.Name() != "occupancy" {
		t.Fatal("name")
	}
}

func TestWindowEstimatorExpiry(t *testing.T) {
	w := NewWindow(2, 10*units.Microsecond)
	w.Observe(units.Time(0), 0, 1, 100)
	w.Observe(units.Time(5*units.Microsecond), 0, 1, 200)
	m := w.Snapshot(units.Time(8 * units.Microsecond))
	if m.At(0, 1) != 300 {
		t.Fatalf("both arrivals should be in window: %d", m.At(0, 1))
	}
	// At t=12us the t=0 arrival has expired.
	m = w.Snapshot(units.Time(12 * units.Microsecond))
	if m.At(0, 1) != 200 {
		t.Fatalf("expired arrival retained: %d", m.At(0, 1))
	}
	// At t=30us everything has expired.
	m = w.Snapshot(units.Time(30 * units.Microsecond))
	if m.Total() != 0 {
		t.Fatalf("window should be empty: %d", m.Total())
	}
	if w.Name() != "window" {
		t.Fatal("name")
	}
}

func TestWindowPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWindow(2, 0)
}

func TestEWMAConverges(t *testing.T) {
	e := NewEWMA(2, 0.5, units.Microsecond)
	// Feed a steady 1000 bits/us for 50 buckets.
	for i := 0; i < 50; i++ {
		e.Observe(units.Time(units.Duration(i)*units.Microsecond), 0, 1, 1000)
	}
	m := e.Snapshot(units.Time(50 * units.Microsecond))
	got := m.At(0, 1)
	if got < 900 || got > 1100 {
		t.Fatalf("EWMA should converge to ~1000, got %d", got)
	}
	// After traffic stops, the estimate decays.
	m = e.Snapshot(units.Time(70 * units.Microsecond))
	if m.At(0, 1) >= got {
		t.Fatalf("EWMA should decay after arrivals stop: %d -> %d", got, m.At(0, 1))
	}
	if e.Name() != "ewma" {
		t.Fatal("name")
	}
}

func TestEWMAValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewEWMA(2, 0, units.Microsecond) },
		func() { NewEWMA(2, 1.5, units.Microsecond) },
		func() { NewEWMA(2, 0.5, 0) },
	} {
		func() {
			defer func() { recover() }()
			fn()
			t.Error("expected panic")
		}()
	}
}
