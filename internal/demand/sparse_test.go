package demand

import (
	"testing"
	"testing/quick"

	"hybridsched/internal/rng"
	"hybridsched/internal/units"
)

// The white-box suite for the sparse bookkeeping the scaling refactor
// added to Matrix: the per-row nonzero index lists behind Row/NonZeros
// and the incremental row/column/total sums, validated against dense
// recomputation under randomized Set/Add churn, plus the pool round trip.

// checkInvariants recomputes every incrementally-maintained quantity of m
// densely and fails on any divergence.
func checkInvariants(t *testing.T, m *Matrix) {
	t.Helper()
	n := m.N()
	var tot int64
	nz := 0
	for i := 0; i < n; i++ {
		var rsum int64
		rnz := 0
		for j := 0; j < n; j++ {
			v := m.At(i, j)
			if v < 0 {
				t.Fatalf("negative entry (%d,%d) = %d", i, j, v)
			}
			rsum += v
			if v != 0 {
				rnz++
			}
		}
		if got := m.RowSum(i); got != rsum {
			t.Fatalf("RowSum(%d) = %d, dense %d", i, got, rsum)
		}
		if got := m.RowNonZeros(i); got != rnz {
			t.Fatalf("RowNonZeros(%d) = %d, dense %d", i, got, rnz)
		}
		// The Row view must list exactly the nonzero cells, ascending.
		row := m.Row(i)
		if row.Len() != rnz {
			t.Fatalf("Row(%d).Len = %d, dense %d", i, row.Len(), rnz)
		}
		prev := -1
		for k := 0; k < row.Len(); k++ {
			j, v := row.Entry(k)
			if j <= prev {
				t.Fatalf("Row(%d) not ascending: %d after %d", i, j, prev)
			}
			prev = j
			if want := m.At(i, j); v != want || v == 0 {
				t.Fatalf("Row(%d) entry %d = (%d,%d), At = %d", i, k, j, v, want)
			}
		}
		tot += rsum
		nz += rnz
	}
	for j := 0; j < n; j++ {
		var csum int64
		for i := 0; i < n; i++ {
			csum += m.At(i, j)
		}
		if got := m.ColSum(j); got != csum {
			t.Fatalf("ColSum(%d) = %d, dense %d", j, got, csum)
		}
	}
	if got := m.Total(); got != tot {
		t.Fatalf("Total = %d, dense %d", got, tot)
	}
	if got := m.NonZeros(); got != nz {
		t.Fatalf("NonZeros = %d, dense %d", got, nz)
	}
}

func TestSparseInvariantsUnderChurn(t *testing.T) {
	property := func(seed uint64, n8 uint8) bool {
		n := 1 + int(n8%9)
		r := rng.New(seed)
		m := NewMatrix(n)
		for step := 0; step < 200; step++ {
			i, j := r.Intn(n), r.Intn(n)
			switch step % 4 {
			case 0:
				m.Set(i, j, r.Int63n(1000))
			case 1:
				m.Add(i, j, r.Int63n(500)-250) // exercises clamping too
			case 2:
				m.Set(i, j, 0) // removal path
			case 3:
				m.Add(i, j, 1)
			}
		}
		checkInvariants(t, m)
		m.Reset()
		checkInvariants(t, m)
		if m.Total() != 0 || m.NonZeros() != 0 {
			t.Fatal("Reset left residue")
		}
		return !t.Failed()
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneAndCopyFrom(t *testing.T) {
	r := rng.New(5)
	m := NewMatrix(6)
	for k := 0; k < 30; k++ {
		m.Set(r.Intn(6), r.Intn(6), r.Int63n(100))
	}
	c := m.Clone()
	checkInvariants(t, c)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if c.At(i, j) != m.At(i, j) {
				t.Fatalf("clone differs at (%d,%d)", i, j)
			}
		}
	}
	// Mutating the clone must not touch the original.
	c.Set(0, 0, 9999)
	if m.At(0, 0) == 9999 {
		t.Fatal("clone aliases original")
	}
	// CopyFrom over a dirty destination.
	dst := NewMatrix(6)
	dst.Set(5, 5, 123)
	dst.CopyFrom(m)
	checkInvariants(t, dst)
	if dst.At(5, 5) != m.At(5, 5) {
		t.Fatal("CopyFrom kept stale entry")
	}
	// Dimension mismatch panics.
	defer func() {
		if recover() == nil {
			t.Fatal("expected dimension-mismatch panic")
		}
	}()
	dst.CopyFrom(NewMatrix(3))
}

func TestPoolRoundTrip(t *testing.T) {
	m := FromPool(4)
	checkInvariants(t, m)
	if m.Total() != 0 || m.NonZeros() != 0 {
		t.Fatal("pooled matrix not zeroed")
	}
	m.Set(1, 2, 7)
	m.Release()
	// Whatever comes out next (possibly the same object) must be clean.
	again := FromPool(4)
	if again.Total() != 0 || again.NonZeros() != 0 || again.At(1, 2) != 0 {
		t.Fatal("released matrix came back dirty")
	}
	checkInvariants(t, again)
	// Distinct sizes draw from distinct pools.
	other := FromPool(7)
	if other.N() != 7 {
		t.Fatalf("pool size mix-up: got %d", other.N())
	}
}

func TestQuantizeAndStuffKeepInvariants(t *testing.T) {
	r := rng.New(11)
	m := NewMatrix(5)
	for k := 0; k < 12; k++ {
		m.Set(r.Intn(5), r.Intn(5), 1+r.Int63n(10_000))
	}
	q := m.Quantize(1500)
	checkInvariants(t, q)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			want := (m.At(i, j) + 1499) / 1500
			if q.At(i, j) != want {
				t.Fatalf("Quantize(%d,%d) = %d, want %d", i, j, q.At(i, j), want)
			}
		}
	}
	s := m.Stuff()
	checkInvariants(t, s)
	target := s.MaxLineSum()
	for i := 0; i < 5; i++ {
		if s.RowSum(i) != target || s.ColSum(i) != target {
			t.Fatalf("stuffed line %d sums (%d,%d), want %d",
				i, s.RowSum(i), s.ColSum(i), target)
		}
	}
}

func TestOccupancySinkMatchesPerPairFeed(t *testing.T) {
	// Feeding the same backlog through SetOccupancyMatrix and through n²
	// SetOccupancy calls must leave the estimator in the same state —
	// including clearing stale pairs.
	occ := NewMatrix(4)
	occ.Set(0, 1, 100)
	occ.Set(2, 3, 50)

	viaSink := NewOccupancy(4)
	viaSink.SetOccupancy(0, 3, 3, 999) // stale pair that must clear
	viaSink.SetOccupancyMatrix(0, occ)

	viaPairs := NewOccupancy(4)
	viaPairs.SetOccupancy(0, 3, 3, 999)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			viaPairs.SetOccupancy(0, i, j, occ.At(i, j))
		}
	}

	a, b := viaSink.Snapshot(0), viaPairs.Snapshot(0)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if a.At(i, j) != b.At(i, j) {
				t.Fatalf("sink/per-pair divergence at (%d,%d): %d != %d",
					i, j, a.At(i, j), b.At(i, j))
			}
		}
	}
	var _ OccupancySink = (*Occupancy)(nil)
	var _ OccupancySink = (*Window)(nil)
	var _ OccupancySink = (*EWMA)(nil)
	var _ OccupancySink = (*Sketch)(nil)
}

func TestSnapshotsAreCallerOwned(t *testing.T) {
	// An estimator snapshot must not alias estimator state: releasing it
	// and dirtying the pool must not corrupt the next snapshot.
	o := NewOccupancy(3)
	o.SetOccupancy(0, 0, 1, 42)
	s1 := o.Snapshot(0)
	s1.Set(0, 1, 7)
	s1.Release()
	s2 := o.Snapshot(units.Time(1))
	if s2.At(0, 1) != 42 {
		t.Fatalf("snapshot corrupted by released predecessor: %d", s2.At(0, 1))
	}
}
