package demand

import "math/bits"

// This file is the word-parallel view of demand: fixed-capacity bitsets
// and the uint64-word scan primitives the matching kernels are built on.
// A Matrix maintains its row/column nonzero structure as bit vectors
// (RowBits/ColBits) incrementally alongside the nonzero lists; the
// helpers here combine those views with per-algorithm Bitset scratch
// (busy inputs, granted sets, used columns) 64 ports at a time, with
// bits.TrailingZeros64 extracting winners. Everything is allocation-free
// after construction — the kernels run under the hotpathalloc contract.

// Bitset is a fixed-capacity set over [0, n) stored one bit per element
// in uint64 words. The zero value is unusable; use NewBitset. Methods do
// not bounds-check beyond the underlying slice — callers own staying
// within the capacity they asked for.
type Bitset struct {
	n int
	w []uint64
}

// NewBitset returns an empty bitset with capacity n. It panics if n <= 0.
func NewBitset(n int) *Bitset {
	if n <= 0 {
		panic("demand: bitset capacity must be positive")
	}
	return &Bitset{n: n, w: make([]uint64, (n+63)/64)}
}

// Len returns the capacity n.
func (b *Bitset) Len() int { return b.n }

// Words exposes the backing words for combining with Matrix views and
// the package scan helpers. Mutating the returned slice mutates the set.
func (b *Bitset) Words() []uint64 { return b.w }

// Set adds i to the set.
//
//hybridsched:hotpath
func (b *Bitset) Set(i int) { b.w[i>>6] |= 1 << (uint(i) & 63) }

// Clear removes i from the set.
//
//hybridsched:hotpath
func (b *Bitset) Clear(i int) { b.w[i>>6] &^= 1 << (uint(i) & 63) }

// Test reports whether i is in the set.
//
//hybridsched:hotpath
func (b *Bitset) Test(i int) bool { return b.w[i>>6]&(1<<(uint(i)&63)) != 0 }

// Zero empties the set in O(n/64) word stores.
//
//hybridsched:hotpath
func (b *Bitset) Zero() {
	for i := range b.w {
		b.w[i] = 0
	}
}

// Fill sets every element of [0, n).
//
//hybridsched:hotpath
func (b *Bitset) Fill() {
	for i := range b.w {
		b.w[i] = ^uint64(0)
	}
	if r := uint(b.n) & 63; r != 0 {
		b.w[len(b.w)-1] = (1 << r) - 1
	}
}

// Count returns the number of elements in the set.
//
//hybridsched:hotpath
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.w {
		c += bits.OnesCount64(w)
	}
	return c
}

// NextBit returns the smallest set index >= from in ws, or -1 if none.
// ws is a word vector as produced by Bitset.Words, Matrix.RowBits or
// Matrix.ColBits; from must be non-negative.
//
//hybridsched:hotpath
func NextBit(ws []uint64, from int) int {
	wi := from >> 6
	if wi >= len(ws) {
		return -1
	}
	w := ws[wi] >> (uint(from) & 63) << (uint(from) & 63)
	for {
		if w != 0 {
			return wi<<6 + bits.TrailingZeros64(w)
		}
		wi++
		if wi >= len(ws) {
			return -1
		}
		w = ws[wi]
	}
}

// ClockwiseBit returns the element of (ws AND NOT excl) nearest clockwise
// from ptr over [0, n): the smallest set index >= ptr, wrapping past n-1
// back to 0. excl may be nil. Returns -1 when the intersection is empty.
// This is the rotating-priority selection of the iSLIP/RRM grant and
// accept arbiters, evaluated 64 candidates per word instead of walking
// candidate lists.
//
// ws must have no set bits at indices >= n (Matrix views, Bitset words
// and the kernels' grant rows all guarantee this), which lets both scan
// segments run without per-candidate range checks. The function body is a
// single flattened scan — this is the innermost call of the iSLIP-family
// grant phase, hot enough that the call and per-word branch overhead of
// composing it from nextAndNot showed up at whole-percent scale.
//
//hybridsched:hotpath
func ClockwiseBit(ws, excl []uint64, ptr, n int) int {
	wp := ptr >> 6
	r := uint(ptr) & 63
	if excl == nil {
		w := ws[wp] >> r << r
		for wi := wp; ; {
			if w != 0 {
				return wi<<6 + bits.TrailingZeros64(w)
			}
			wi++
			if wi == len(ws) {
				break
			}
			w = ws[wi]
		}
		for wi := 0; wi < wp; wi++ {
			if w := ws[wi]; w != 0 {
				return wi<<6 + bits.TrailingZeros64(w)
			}
		}
		if r != 0 {
			if w := ws[wp] & (1<<r - 1); w != 0 {
				return wp<<6 + bits.TrailingZeros64(w)
			}
		}
		return -1
	}
	excl = excl[:len(ws)]
	w := (ws[wp] &^ excl[wp]) >> r << r
	for wi := wp; ; {
		if w != 0 {
			return wi<<6 + bits.TrailingZeros64(w)
		}
		wi++
		if wi == len(ws) {
			break
		}
		w = ws[wi] &^ excl[wi]
	}
	for wi := 0; wi < wp; wi++ {
		if w := ws[wi] &^ excl[wi]; w != 0 {
			return wi<<6 + bits.TrailingZeros64(w)
		}
	}
	if r != 0 {
		if w := ws[wp] &^ excl[wp] & (1<<r - 1); w != 0 {
			return wp<<6 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// CountAndNot returns |ws AND NOT excl| over the whole word vector. excl
// may be nil. Bits beyond the set's capacity must be clear in ws, which
// Matrix views and Bitset words guarantee.
//
//hybridsched:hotpath
func CountAndNot(ws, excl []uint64) int {
	c := 0
	if excl == nil {
		for _, w := range ws {
			c += bits.OnesCount64(w)
		}
		return c
	}
	for i, w := range ws {
		c += bits.OnesCount64(w &^ excl[i])
	}
	return c
}

// SelectAndNot returns the index of the k-th (0-based, ascending) element
// of (ws AND NOT excl); excl may be nil. The caller must ensure k <
// CountAndNot(ws, excl); it panics otherwise. Together with CountAndNot
// this reproduces "pick the k-th entry of the ascending candidate list"
// — the PIM random arbiter — without materializing the list.
//
//hybridsched:hotpath
func SelectAndNot(ws, excl []uint64, k int) int {
	for i, w := range ws {
		if excl != nil {
			w &^= excl[i]
		}
		c := bits.OnesCount64(w)
		if k >= c {
			k -= c
			continue
		}
		for ; k > 0; k-- {
			w &= w - 1 // drop lowest set bit
		}
		return i<<6 + bits.TrailingZeros64(w)
	}
	panic("demand: SelectAndNot rank out of range")
}
