package demand

import (
	"testing"
	"testing/quick"

	"hybridsched/internal/rng"
	"hybridsched/internal/units"
)

func TestSketchNeverUndercounts(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 4 + r.Intn(12)
		s := NewSketch(n, 3, 64, 0)
		truth := NewMatrix(n)
		for k := 0; k < 500; k++ {
			i, j := r.Intn(n), r.Intn(n)
			b := int64(1 + r.Intn(10000))
			s.Observe(0, i, j, b)
			truth.Add(i, j, b)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if s.Estimate(i, j) < truth.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSketchExactWhenWide(t *testing.T) {
	// With width >= n^2 (here 64 >= 16) and good hashing, collisions are
	// rare; the heavy hitter must be estimated within a small factor.
	n := 4
	s := NewSketch(n, 4, 256, 0)
	truth := NewMatrix(n)
	r := rng.New(5)
	for k := 0; k < 1000; k++ {
		i, j := r.Intn(n), r.Intn(n)
		s.Observe(0, i, j, 100)
		truth.Add(i, j, 100)
	}
	total := truth.Total()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			over := s.Estimate(i, j) - truth.At(i, j)
			if over > total/64 {
				t.Fatalf("(%d,%d) overcount %d exceeds total/64=%d",
					i, j, over, total/64)
			}
		}
	}
}

func TestSketchIdentifiesHeavyHitter(t *testing.T) {
	n := 16
	s := NewSketch(n, 4, 64, 0) // deliberately narrow: 64 < 256 pairs
	r := rng.New(11)
	// Background noise on all pairs + one elephant.
	for k := 0; k < 2000; k++ {
		s.Observe(0, r.Intn(n), r.Intn(n), 10)
	}
	s.Observe(0, 3, 7, 1_000_000)
	snap := s.Snapshot(0)
	// The elephant must be the max entry despite collisions.
	if snap.At(3, 7) != snap.Max() {
		t.Fatalf("heavy hitter lost: (3,7)=%d max=%d", snap.At(3, 7), snap.Max())
	}
}

func TestSketchDecay(t *testing.T) {
	s := NewSketch(4, 2, 64, units.Millisecond)
	s.Observe(0, 0, 1, 1000)
	if got := s.Estimate(0, 1); got != 1000 {
		t.Fatalf("pre-decay estimate %d", got)
	}
	// Two decay intervals halve twice.
	m := s.Snapshot(units.Time(2 * units.Millisecond))
	if got := m.At(0, 1); got != 250 {
		t.Fatalf("post-decay estimate %d, want 250", got)
	}
}

func TestSketchEstimatorInterface(t *testing.T) {
	var est Estimator = NewSketch(4, 2, 64, 0)
	est.Observe(0, 1, 2, 500)
	est.SetOccupancy(0, 1, 2, 999) // no-op by contract
	m := est.Snapshot(0)
	if m.At(1, 2) < 500 {
		t.Fatal("observe lost")
	}
	if est.Name() != "sketch" {
		t.Fatal("name")
	}
}

func TestSketchHardwareCost(t *testing.T) {
	s := NewSketch(64, 4, 256, 0)
	sketchBits := s.CounterBits(32)
	exactBits := ExactCounterBits(64, 32)
	if sketchBits >= exactBits {
		t.Fatalf("sketch (%d bits) should be cheaper than exact (%d bits)",
			sketchBits, exactBits)
	}
	// 4*256 = 1024 counters vs 4096: a 4x area saving.
	if exactBits/sketchBits < 4 {
		t.Fatalf("expected >=4x saving, got %dx", exactBits/sketchBits)
	}
}

func TestSketchWidthRounding(t *testing.T) {
	s := NewSketch(4, 2, 100, 0) // rounds to 128
	if s.width != 128 {
		t.Fatalf("width = %d, want 128", s.width)
	}
}

func TestSketchValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewSketch(0, 2, 64, 0) },
		func() { NewSketch(4, 0, 64, 0) },
		func() { NewSketch(4, 2, 0, 0) },
	} {
		func() {
			defer func() { recover() }()
			fn()
			t.Error("expected panic")
		}()
	}
}

func TestHashMixSpreads(t *testing.T) {
	// All 4096 pair keys must spread over 64 slots without any slot
	// exceeding 4x the mean for every row seed we generate.
	s := NewSketch(64, 4, 64, 0)
	for r := 0; r < s.rows; r++ {
		counts := make([]int, s.width)
		for i := 0; i < 64; i++ {
			for j := 0; j < 64; j++ {
				counts[s.slot(r, i, j)]++
			}
		}
		mean := 64 * 64 / s.width
		for slot, c := range counts {
			if c > 4*mean {
				t.Fatalf("row %d slot %d has %d keys (mean %d)", r, slot, c, mean)
			}
		}
	}
}
