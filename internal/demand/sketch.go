package demand

import (
	"hybridsched/internal/units"
)

// Sketch is a count-min-sketch demand estimator — the estimator a
// hardware scheduler actually synthesizes when n is large: instead of n^2
// exact counters (64 ports -> 4096 multi-bit registers), d rows of w
// counters are updated per arrival in O(d) and read per (i, j) pair at
// snapshot time. The estimate overcounts (never undercounts) with error
// bounded by total/w per row, which is harmless for matching weights but
// measurably cheaper in area — the E8-style tradeoff between exactness
// and hardware cost.
//
// A periodic halving decay keeps the sketch tracking current demand
// instead of all-time volume.
type Sketch struct {
	n      int
	rows   int
	width  int
	counts [][]int64
	seeds  []uint64
	decay  units.Duration
	last   units.Time
}

// NewSketch returns a count-min estimator with the given geometry. Width
// is rounded up to a power of two. decay halves all counters every decay
// interval (0 disables decay).
func NewSketch(n, rows, width int, decay units.Duration) *Sketch {
	if n <= 0 || rows <= 0 || width <= 0 {
		panic("demand: sketch needs positive geometry")
	}
	w := 1
	for w < width {
		w <<= 1
	}
	s := &Sketch{n: n, rows: rows, width: w, decay: decay}
	s.counts = make([][]int64, rows)
	s.seeds = make([]uint64, rows)
	for r := range s.counts {
		s.counts[r] = make([]int64, w)
		// Distinct odd multipliers per row (splitmix64-flavored).
		s.seeds[r] = 0x9e3779b97f4a7c15*uint64(r+1) | 1
	}
	return s
}

func (s *Sketch) slot(row, i, j int) int {
	key := uint64(i)*uint64(s.n) + uint64(j)
	return int(hashMix(key, s.seeds[row]) & uint64(s.width-1))
}

// Observe implements Estimator.
func (s *Sketch) Observe(t units.Time, in, out int, bs int64) {
	s.maybeDecay(t)
	for r := 0; r < s.rows; r++ {
		s.counts[r][s.slot(r, in, out)] += bs
	}
}

// SetOccupancy is a no-op: the sketch is an arrival-rate structure.
func (s *Sketch) SetOccupancy(units.Time, int, int, int64) {}

// SetOccupancyMatrix implements OccupancySink as a no-op.
func (s *Sketch) SetOccupancyMatrix(units.Time, *Matrix) {}

func (s *Sketch) maybeDecay(t units.Time) {
	if s.decay <= 0 {
		return
	}
	for t.Sub(s.last) >= s.decay {
		for r := range s.counts {
			for i := range s.counts[r] {
				s.counts[r][i] >>= 1
			}
		}
		s.last = s.last.Add(s.decay)
	}
}

// Estimate returns the count-min estimate for pair (in, out): the minimum
// across rows, an upper bound on the true count.
func (s *Sketch) Estimate(in, out int) int64 {
	min := int64(-1)
	for r := 0; r < s.rows; r++ {
		v := s.counts[r][s.slot(r, in, out)]
		if min < 0 || v < min {
			min = v
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// Snapshot implements Estimator.
func (s *Sketch) Snapshot(t units.Time) *Matrix {
	s.maybeDecay(t)
	m := FromPool(s.n)
	for i := 0; i < s.n; i++ {
		for j := 0; j < s.n; j++ {
			if v := s.Estimate(i, j); v > 0 {
				m.Set(i, j, v)
			}
		}
	}
	return m
}

// Name implements Estimator.
func (s *Sketch) Name() string { return "sketch" }

// CounterBits reports the hardware cost of the sketch in counter bits,
// assuming width-aware sizing (each counter sized to hold the decay
// interval's worth of line-rate bits). Exact per-pair counters for the
// same switch would need n^2 counters of the same width — the comparison
// the doc comment promises.
func (s *Sketch) CounterBits(counterWidth int) int {
	return s.rows * s.width * counterWidth
}

// ExactCounterBits is the cost of the exact n^2 counter file.
func ExactCounterBits(n, counterWidth int) int { return n * n * counterWidth }

// hashMix is the row hash, factored out for white-box tests of
// distribution quality.
func hashMix(key, seed uint64) uint64 {
	h := key * seed
	h ^= h >> 33
	return h
}
