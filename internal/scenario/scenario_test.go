package scenario

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"hybridsched/internal/traffic"
	"hybridsched/internal/units"
)

const packDir = "../../testdata/scenarios"

// minimalConfig is the smallest well-formed document; tests mutate one
// dimension at a time.
const minimalConfig = `{
  "ports": 4,
  "lineRate": "10Gbps",
  "slot": "10us",
  "reconfig": "1us",
  "seed": 7,
  "duration": "100us",
  "workload": {
    "load": 0.5,
    "pattern": { "kind": "uniform" }
  }
}`

func TestLoadMinimalDefaults(t *testing.T) {
	c, err := Load(strings.NewReader(minimalConfig))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	b, err := c.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if b.Fabric.LinkDelay != 500*units.Nanosecond {
		t.Errorf("LinkDelay = %v, want 500ns default", b.Fabric.LinkDelay)
	}
	if b.Fabric.Algorithm != "islip" {
		t.Errorf("Algorithm = %q, want islip default", b.Fabric.Algorithm)
	}
	if !b.Fabric.Pipelined {
		t.Error("Pipelined = false, want true default under hardware timing")
	}
	if b.Traffic.Process != traffic.Poisson {
		t.Errorf("Process = %v, want Poisson default", b.Traffic.Process)
	}
	if _, ok := b.Traffic.Sizes.(traffic.TrimodalInternet); !ok {
		t.Errorf("Sizes = %T, want TrimodalInternet default", b.Traffic.Sizes)
	}
	// The runner owns the Until default; Build must leave it unset.
	if b.Traffic.Until != 0 {
		t.Errorf("Traffic.Until = %v, want 0 (runner defaults it)", b.Traffic.Until)
	}
	if b.Duration != 100*units.Microsecond {
		t.Errorf("Duration = %v, want 100us", b.Duration)
	}
}

func TestLoadPackTestdata(t *testing.T) {
	pack, err := LoadPack(packDir)
	if err != nil {
		t.Fatalf("LoadPack(%s): %v", packDir, err)
	}
	want := []string{"dimdim", "diurnal", "hotspot_churn", "incast", "scalefree"}
	if len(pack) != len(want) {
		t.Fatalf("LoadPack returned %d configs, want %d", len(pack), len(want))
	}
	for i, c := range pack {
		if c.Name != want[i] {
			t.Errorf("pack[%d].Name = %q, want %q (sorted by filename)", i, c.Name, want[i])
		}
		if err := c.Validate(); err != nil {
			t.Errorf("pack[%d] (%s) Validate: %v", i, c.Name, err)
		}
	}
}

func TestLoadFileDefaultsName(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "unnamed.json")
	if err := os.WriteFile(path, []byte(minimalConfig), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if c.Name != "unnamed" {
		t.Errorf("Name = %q, want %q (file base name)", c.Name, "unnamed")
	}
}

// mutate returns minimalConfig with one literal replaced.
func mutate(t *testing.T, old, new string) string {
	t.Helper()
	if !strings.Contains(minimalConfig, old) {
		t.Fatalf("minimalConfig does not contain %q", old)
	}
	return strings.Replace(minimalConfig, old, new, 1)
}

func TestLoadErrors(t *testing.T) {
	tests := []struct {
		name  string
		input string
		want  error
	}{
		{"malformed json", `{"ports": `, ErrSyntax},
		{"not an object", `[1, 2]`, ErrSyntax},
		{"unknown field", `{"prots": 4}`, ErrSyntax},
		{"wrong type", `{"ports": "four"}`, ErrSyntax},
		{"trailing data", minimalConfig + `{"ports": 4}`, ErrSyntax},
		{"too few ports", `{"ports": 1}`, ErrField},
		{"missing lineRate", `{"ports": 4}`, ErrField},
		{"bad duration", "", ErrField},      // filled below
		{"negative duration", "", ErrField}, // filled below
		{"unknown algorithm", "", ErrField}, // filled below
		{"unknown timing", "", ErrField},    // filled below
		{"unknown buffer", "", ErrField},    // filled below
		{"load out of range", "", ErrField}, // filled below
		{"unknown pattern", "", ErrField},   // filled below
		{"missing pattern kind", "", ErrField},
	}
	fill := map[string]string{
		"bad duration":         mutate(t, `"slot": "10us"`, `"slot": "10 parsecs"`),
		"negative duration":    mutate(t, `"duration": "100us"`, `"duration": "-1us"`),
		"unknown algorithm":    mutate(t, `"seed": 7`, `"seed": 7, "algorithm": "oracle"`),
		"unknown timing":       mutate(t, `"seed": 7`, `"seed": 7, "timing": "quantum"`),
		"unknown buffer":       mutate(t, `"seed": 7`, `"seed": 7, "buffer": "cloud"`),
		"load out of range":    mutate(t, `"load": 0.5`, `"load": 1.5`),
		"unknown pattern":      mutate(t, `"kind": "uniform"`, `"kind": "tornado"`),
		"missing pattern kind": mutate(t, `"kind": "uniform"`, `"kind": ""`),
	}
	for i := range tests {
		if s, ok := fill[tests[i].name]; ok {
			tests[i].input = s
		}
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Load(strings.NewReader(tt.input))
			if err == nil {
				t.Fatal("Load succeeded, want error")
			}
			if !errors.Is(err, ErrBadScenarioConfig) {
				t.Errorf("error %v does not wrap ErrBadScenarioConfig", err)
			}
			if !errors.Is(err, tt.want) {
				t.Errorf("error %v does not wrap %v", err, tt.want)
			}
		})
	}
}

func TestFieldValidation(t *testing.T) {
	// Deeper field checks that need structured edits rather than string
	// replacement of the minimal document.
	tests := []struct {
		name string
		edit func(c *Config)
	}{
		{"ports above cap", func(c *Config) { c.Ports = maxPorts + 1 }},
		{"negative drain", func(c *Config) { c.Drain = -0.5 }},
		{"hotspot without frac", func(c *Config) { c.Workload.Pattern = PatternSpec{Kind: "hotspot", Spots: 1} }},
		{"hotspot spots above ports", func(c *Config) { c.Workload.Pattern = PatternSpec{Kind: "hotspot", Frac: 0.9, Spots: 99} }},
		{"zipf without s", func(c *Config) { c.Workload.Pattern = PatternSpec{Kind: "zipf"} }},
		{"churn without period", func(c *Config) { c.Workload.Pattern = PatternSpec{Kind: "hotspot-churn"} }},
		{"incast without period", func(c *Config) { c.Workload.Pattern = PatternSpec{Kind: "incast"} }},
		{"incast duty above 1", func(c *Config) { c.Workload.Pattern = PatternSpec{Kind: "incast", Period: "100us", Duty: 1.5} }},
		{"conference size 1", func(c *Config) { c.Workload.Pattern = PatternSpec{Kind: "conference", Size: 1} }},
		{"scalefree without s", func(c *Config) { c.Workload.Pattern = PatternSpec{Kind: "scalefree"} }},
		{"unknown size kind", func(c *Config) { c.Workload.Sizes = &SizeSpec{Kind: "bimodal"} }},
		{"fixed size without bytes", func(c *Config) { c.Workload.Sizes = &SizeSpec{Kind: "fixed"} }},
		{"bytes on trimodal", func(c *Config) { c.Workload.Sizes = &SizeSpec{Kind: "trimodal", Bytes: 64} }},
		{"unknown process", func(c *Config) { c.Workload.Process = "burst" }},
		{"flows without flowSizes", func(c *Config) { c.Workload.Process = "flows" }},
		{"flowSizes on poisson", func(c *Config) { c.Workload.FlowSizes = &SizeSpec{Kind: "websearch"} }},
		{"mtu on poisson", func(c *Config) { c.Workload.MTU = "1500B" }},
		{"bad mtu", func(c *Config) {
			c.Workload.Process = "flows"
			c.Workload.Sizes = nil
			c.Workload.FlowSizes = &SizeSpec{Kind: "websearch"}
			c.Workload.MTU = "sixteen"
		}},
		{"latency frac above 1", func(c *Config) { c.Workload.LatencySensitiveFrac = 1.5 }},
		{"negative burst mean", func(c *Config) { c.Workload.BurstMeanPkts = -1 }},
		{"profile without kind", func(c *Config) { c.Workload.LoadProfile = &LoadProfileSpec{Period: "1ms", Floor: 0.5} }},
		{"unknown profile kind", func(c *Config) { c.Workload.LoadProfile = &LoadProfileSpec{Kind: "tidal", Period: "1ms", Floor: 0.5} }},
		{"diurnal without period", func(c *Config) { c.Workload.LoadProfile = &LoadProfileSpec{Kind: "diurnal", Floor: 0.5} }},
		{"diurnal floor 0", func(c *Config) { c.Workload.LoadProfile = &LoadProfileSpec{Kind: "diurnal", Period: "1ms"} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c, err := Load(strings.NewReader(minimalConfig))
			if err != nil {
				t.Fatalf("Load minimal: %v", err)
			}
			tt.edit(&c)
			err = c.Validate()
			if err == nil {
				t.Fatal("Validate succeeded, want error")
			}
			if !errors.Is(err, ErrField) {
				t.Errorf("error %v does not wrap ErrField", err)
			}
		})
	}
}

func TestLoadPackErrors(t *testing.T) {
	if _, err := LoadPack(filepath.Join(t.TempDir(), "nope")); !errors.Is(err, ErrPack) {
		t.Errorf("missing dir: err = %v, want ErrPack", err)
	}
	if _, err := LoadPack(t.TempDir()); !errors.Is(err, ErrPack) {
		t.Errorf("empty dir: err = %v, want ErrPack", err)
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"ports":`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadPack(dir)
	if !errors.Is(err, ErrBadScenarioConfig) {
		t.Errorf("bad file: err = %v, want ErrBadScenarioConfig", err)
	}
	if err == nil || !strings.Contains(err.Error(), bad) {
		t.Errorf("bad file: err = %v, want the failing path %s named", err, bad)
	}
	if _, err := LoadFile(filepath.Join(dir, "absent.json")); !errors.Is(err, ErrPack) {
		t.Errorf("missing file: err = %v, want ErrPack", err)
	}
}

func TestEncodeRoundTrip(t *testing.T) {
	pack, err := LoadPack(packDir)
	if err != nil {
		t.Fatalf("LoadPack: %v", err)
	}
	for _, c := range pack {
		var buf strings.Builder
		if err := c.Encode(&buf); err != nil {
			t.Fatalf("%s: Encode: %v", c.Name, err)
		}
		got, err := Load(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("%s: reload: %v", c.Name, err)
		}
		if !reflect.DeepEqual(got, c) {
			t.Errorf("%s: round trip drifted:\n got %+v\nwant %+v", c.Name, got, c)
		}
	}
}

func TestBuildConstructsFreshPatternInstances(t *testing.T) {
	c, err := LoadFile(filepath.Join(packDir, "hotspot_churn.json"))
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	b1, err := c.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	b2, err := c.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// RotatingPermutation caches per-epoch state, so sharing one instance
	// between concurrently running scenarios would race: every Build must
	// hand back its own.
	if b1.Traffic.Pattern == b2.Traffic.Pattern {
		t.Error("two Build calls share one pattern instance")
	}
}
