// Package scenario is the declarative scenario-pack subsystem: a
// JSON-encoded Config describes one complete experiment — fabric
// geometry, scheduling algorithm, workload shape, and the time-varying
// dynamics layered on top — so a scenario is data that can be added,
// audited and swept without a code change.
//
// The contract mirrors the trace reader's: Load either returns a
// Validate-clean Config or an error wrapped in ErrBadScenarioConfig
// (with distinct wrapped failure modes for syntax, field validation and
// pack-directory problems), never a panic; and an accepted Config
// round-trips through Encode to an equivalent Config. Build constructs
// fresh pattern/profile instances on every call, so concurrently
// executing scenarios never share mutable pattern state.
package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"hybridsched/internal/fabric"
	"hybridsched/internal/sched"
	"hybridsched/internal/traffic"
	"hybridsched/internal/units"
)

// ErrBadScenarioConfig reports a malformed or invalid scenario config.
// The specific failure modes below all wrap it, so
// errors.Is(err, ErrBadScenarioConfig) catches every load failure.
var ErrBadScenarioConfig = errors.New("scenario: bad config")

// maxPorts bounds the fabric size a scenario config may request. Seeded
// patterns build O(ports) tables during validation, so the bound keeps
// Load/Validate allocation-light regardless of input.
const maxPorts = 1 << 14

// Distinct failure modes. Each wraps ErrBadScenarioConfig.
var (
	// ErrSyntax: the bytes are not one well-formed JSON config document
	// (malformed JSON, unknown fields, trailing data, wrong types).
	ErrSyntax = fmt.Errorf("%w: syntax", ErrBadScenarioConfig)
	// ErrField: the document parsed but a field fails validation — a
	// bad duration string, an unknown kind, an out-of-range value.
	ErrField = fmt.Errorf("%w: field", ErrBadScenarioConfig)
	// ErrPack: a pack-directory problem — no configs found, or a file
	// that cannot be read.
	ErrPack = fmt.Errorf("%w: pack", ErrBadScenarioConfig)
)

// Config is one declarative scenario: the JSON form of a complete
// fabric + workload experiment. String-typed dimensions carry the same
// unit syntax the command-line flags use ("10Gbps", "500ns", "2ms").
type Config struct {
	// Name labels the scenario in sweep CSV rows and reports. LoadFile
	// and LoadPack default it to the file's base name when empty.
	Name string `json:"name,omitempty"`

	// Fabric geometry.
	Ports     int    `json:"ports"`
	LineRate  string `json:"lineRate"`
	LinkDelay string `json:"linkDelay,omitempty"` // default 500ns
	Slot      string `json:"slot"`
	Reconfig  string `json:"reconfig"`

	// Scheduling.
	Algorithm string `json:"algorithm,omitempty"` // default islip
	Timing    string `json:"timing,omitempty"`    // hardware (default) or software
	Pipelined *bool  `json:"pipelined,omitempty"` // default: true iff hardware timing
	Buffer    string `json:"buffer,omitempty"`    // switch (default) or host

	// Run geometry.
	Seed     uint64  `json:"seed"`
	Duration string  `json:"duration"`
	Drain    float64 `json:"drain,omitempty"` // 0 = engine default

	// Workload shape and dynamics.
	Workload Workload `json:"workload"`
}

// Workload is the traffic side of a Config.
type Workload struct {
	// Load is the peak offered load per port, in (0, 1].
	Load    float64     `json:"load"`
	Pattern PatternSpec `json:"pattern"`
	// Sizes is the per-packet size distribution (poisson and onoff
	// processes). Defaults to trimodal.
	Sizes *SizeSpec `json:"sizes,omitempty"`
	// Process is poisson (default), onoff, or flows.
	Process string `json:"process,omitempty"`
	// FlowSizes is the per-flow total-size distribution; required for
	// the flows process.
	FlowSizes *SizeSpec `json:"flowSizes,omitempty"`
	// MTU is the flow segment size (flows process; "" = 1500B).
	MTU string `json:"mtu,omitempty"`
	// BurstMeanPkts / BurstPareto shape the onoff process.
	BurstMeanPkts float64 `json:"burstMeanPkts,omitempty"`
	BurstPareto   float64 `json:"burstPareto,omitempty"`
	// LatencySensitiveFrac marks this fraction of flows
	// latency-sensitive.
	LatencySensitiveFrac float64 `json:"latencySensitiveFrac,omitempty"`
	// LoadProfile, when set, modulates the offered load over time.
	LoadProfile *LoadProfileSpec `json:"loadProfile,omitempty"`
}

// PatternSpec names a destination pattern and its knobs.
type PatternSpec struct {
	// Kind is one of: uniform, permutation, hotspot, zipf,
	// hotspot-churn, incast, conference, scalefree.
	Kind string `json:"kind"`
	// Frac/Spots shape hotspot.
	Frac  float64 `json:"frac,omitempty"`
	Spots int     `json:"spots,omitempty"`
	// S is the zipf / scalefree exponent.
	S float64 `json:"s,omitempty"`
	// Period drives the time-varying kinds (hotspot-churn rotation,
	// incast wave repetition).
	Period string `json:"period,omitempty"`
	// Duty is the in-wave fraction of an incast period (default 0.25).
	Duty float64 `json:"duty,omitempty"`
	// Size is the conference meeting size (default 4).
	Size int `json:"size,omitempty"`
}

// SizeSpec names a size distribution: fixed (with Bytes), trimodal,
// webconference, or one of the published empirical flow-size
// distributions (websearch, datamining, hadoop, cachefollower).
type SizeSpec struct {
	Kind  string `json:"kind"`
	Bytes int64  `json:"bytes,omitempty"` // fixed only
}

// LoadProfileSpec names a load profile. Kinds: diurnal.
type LoadProfileSpec struct {
	Kind string `json:"kind"`
	// Period is the full swing period (diurnal). Required.
	Period string `json:"period"`
	// Floor is the minimum load factor, in (0, 1] (diurnal).
	Floor float64 `json:"floor"`
}

// Built is a Config lowered onto the execution vocabulary: everything
// the public Scenario needs, with pattern/profile instances freshly
// constructed (never shared between Build calls).
type Built struct {
	Name     string
	Fabric   fabric.Config
	Traffic  traffic.Config
	Duration units.Duration
	Drain    float64
}

// Load decodes exactly one JSON config from r and validates it eagerly.
// Unknown fields, trailing data and malformed JSON are ErrSyntax; a
// well-formed document with a bad field is ErrField; both wrap
// ErrBadScenarioConfig.
func Load(r io.Reader) (Config, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var c Config
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("%w: %v", ErrSyntax, err)
	}
	// Exactly one document: anything but EOF after it is trailing data.
	if dec.More() {
		return Config{}, fmt.Errorf("%w: trailing data after config document", ErrSyntax)
	}
	if _, err := dec.Token(); err != io.EOF {
		return Config{}, fmt.Errorf("%w: trailing data after config document", ErrSyntax)
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// LoadFile loads one config file, defaulting Name to the file's base
// name (without extension) when the document leaves it empty.
func LoadFile(path string) (Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return Config{}, fmt.Errorf("%w: %v", ErrPack, err)
	}
	defer f.Close()
	c, err := Load(f)
	if err != nil {
		return Config{}, fmt.Errorf("%s: %w", path, err)
	}
	if c.Name == "" {
		c.Name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	}
	return c, nil
}

// LoadPack loads every *.json config under dir, sorted by filename —
// the deterministic order sweeps and tests rely on. An empty pack is
// ErrPack: a sweep over nothing is a configuration mistake, not a
// no-op.
func LoadPack(dir string) ([]Config, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrPack, err)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("%w: no *.json scenario configs under %s", ErrPack, dir)
	}
	out := make([]Config, 0, len(paths))
	for _, p := range paths { // Glob returns sorted paths
		c, err := LoadFile(p)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// Encode writes c as indented canonical JSON — the round-trip partner
// of Load: Load(Encode(c)) yields a Config equal to c.
func (c Config) Encode(w io.Writer) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(c); err != nil {
		return fmt.Errorf("scenario: encode: %w", err)
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// fieldErr wraps a field-validation failure.
func fieldErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrField, fmt.Sprintf(format, args...))
}

// parseDuration parses a required positive duration field.
func parseDuration(field, s string) (units.Duration, error) {
	if s == "" {
		return 0, fieldErr("%s is required", field)
	}
	d, err := units.ParseDuration(s)
	if err != nil {
		return 0, fieldErr("%s: %v", field, err)
	}
	if d <= 0 {
		return 0, fieldErr("%s must be positive, have %v", field, d)
	}
	return d, nil
}

// Validate checks the whole config eagerly without running anything: it
// builds the scenario (parsing every dimension, constructing patterns,
// resolving the algorithm) and then revalidates the lowered fabric and
// traffic configurations. Every failure wraps ErrBadScenarioConfig.
func (c Config) Validate() error {
	_, err := c.Build()
	return err
}

// Build lowers the config onto fabric/traffic vocabulary, constructing
// fresh pattern and profile instances. Every failure wraps
// ErrBadScenarioConfig.
func (c Config) Build() (Built, error) {
	var b Built
	b.Name = c.Name

	if c.Ports < 2 {
		return b, fieldErr("ports must be >= 2, have %d", c.Ports)
	}
	// Seeded patterns allocate O(ports) state at load time; bound it so
	// eager validation stays cheap and a corrupt config cannot OOM us.
	if c.Ports > maxPorts {
		return b, fieldErr("ports must be <= %d, have %d", maxPorts, c.Ports)
	}
	if c.LineRate == "" {
		return b, fieldErr("lineRate is required")
	}
	rate, err := units.ParseBitRate(c.LineRate)
	if err != nil {
		return b, fieldErr("lineRate: %v", err)
	}
	if rate <= 0 {
		return b, fieldErr("lineRate must be positive, have %v", rate)
	}
	linkDelay := 500 * units.Nanosecond
	if c.LinkDelay != "" {
		if linkDelay, err = parseDuration("linkDelay", c.LinkDelay); err != nil {
			return b, err
		}
	}
	slot, err := parseDuration("slot", c.Slot)
	if err != nil {
		return b, err
	}
	reconfig, err := parseDuration("reconfig", c.Reconfig)
	if err != nil {
		return b, err
	}
	if b.Duration, err = parseDuration("duration", c.Duration); err != nil {
		return b, err
	}
	if c.Drain < 0 {
		return b, fieldErr("drain must be non-negative, have %v", c.Drain)
	}
	b.Drain = c.Drain

	var timing sched.TimingModel
	pipelined := false
	switch c.Timing {
	case "", "hardware":
		timing = sched.DefaultHardware()
		pipelined = true
	case "software":
		timing = sched.DefaultSoftware()
	default:
		return b, fieldErr("timing %q unknown (have hardware, software)", c.Timing)
	}
	if c.Pipelined != nil {
		pipelined = *c.Pipelined
	}
	buffer := fabric.BufferAtSwitch
	switch c.Buffer {
	case "", "switch":
	case "host":
		buffer = fabric.BufferAtHost
	default:
		return b, fieldErr("buffer %q unknown (have switch, host)", c.Buffer)
	}

	alg := c.Algorithm
	if alg == "" {
		alg = "islip"
	}
	b.Fabric = fabric.Config{
		Ports:        c.Ports,
		LineRate:     rate,
		LinkDelay:    linkDelay,
		Slot:         slot,
		ReconfigTime: reconfig,
		Algorithm:    alg,
		Seed:         c.Seed,
		Timing:       timing,
		Pipelined:    pipelined,
		Buffer:       buffer,
	}
	// Validate resolves the algorithm name against the registry, so an
	// unknown algorithm fails at load time, not run time.
	if err := b.Fabric.Validate(); err != nil {
		return b, fieldErr("%v", err)
	}

	if b.Traffic, err = c.Workload.build(c.Ports, rate, c.Seed); err != nil {
		return b, err
	}
	// Built.Traffic leaves Until unset so the runner keeps owning the
	// default; validate a copy the way the runner will effectively see it.
	tv := b.Traffic
	tv.Until = units.Time(b.Duration)
	if err := tv.Validate(); err != nil {
		return b, fieldErr("%v", err)
	}
	return b, nil
}

// build lowers the workload side. Seed is the scenario seed: seeded
// patterns (permutation, hotspot-churn, scalefree) derive from it, so a
// config is reproducible from its JSON alone.
func (w Workload) build(ports int, rate units.BitRate, seed uint64) (traffic.Config, error) {
	tc := traffic.Config{
		Ports:                ports,
		LineRate:             rate,
		Load:                 w.Load,
		Seed:                 seed,
		BurstMeanPkts:        w.BurstMeanPkts,
		BurstPareto:          w.BurstPareto,
		LatencySensitiveFrac: w.LatencySensitiveFrac,
	}
	if !(w.Load > 0 && w.Load <= 1) {
		return tc, fieldErr("workload.load %v out of (0,1]", w.Load)
	}
	if !(w.LatencySensitiveFrac >= 0 && w.LatencySensitiveFrac <= 1) {
		return tc, fieldErr("workload.latencySensitiveFrac %v out of [0,1]", w.LatencySensitiveFrac)
	}
	if w.BurstMeanPkts < 0 {
		return tc, fieldErr("workload.burstMeanPkts must be non-negative, have %v", w.BurstMeanPkts)
	}

	var err error
	if tc.Pattern, err = w.Pattern.build(ports, seed); err != nil {
		return tc, err
	}

	switch w.Process {
	case "", "poisson":
		tc.Process = traffic.Poisson
	case "onoff":
		tc.Process = traffic.OnOff
	case "flows":
		tc.Process = traffic.FlowArrivals
	default:
		return tc, fieldErr("workload.process %q unknown (have poisson, onoff, flows)", w.Process)
	}

	if tc.Process == traffic.FlowArrivals {
		if w.Sizes != nil {
			return tc, fieldErr("workload.sizes is unused by the flows process; set flowSizes")
		}
		if w.FlowSizes == nil {
			return tc, fieldErr("workload.flowSizes is required for the flows process")
		}
		if tc.FlowSizes, err = w.FlowSizes.build("workload.flowSizes"); err != nil {
			return tc, err
		}
		if w.MTU != "" {
			mtu, err := units.ParseSize(w.MTU)
			if err != nil {
				return tc, fieldErr("workload.mtu: %v", err)
			}
			tc.MTU = mtu
		}
	} else {
		if w.FlowSizes != nil {
			return tc, fieldErr("workload.flowSizes is only used by the flows process")
		}
		if w.MTU != "" {
			return tc, fieldErr("workload.mtu is only used by the flows process")
		}
		sizes := w.Sizes
		if sizes == nil {
			sizes = &SizeSpec{Kind: "trimodal"}
		}
		if tc.Sizes, err = sizes.build("workload.sizes"); err != nil {
			return tc, err
		}
	}

	if w.LoadProfile != nil {
		if tc.Profile, err = w.LoadProfile.build(); err != nil {
			return tc, err
		}
	}
	return tc, nil
}

// build constructs the pattern instance. Time-varying patterns come back
// freshly allocated, so no two Build calls share mutable state.
func (p PatternSpec) build(ports int, seed uint64) (traffic.Pattern, error) {
	period := func() (units.Duration, error) {
		return parseDuration("workload.pattern.period", p.Period)
	}
	switch p.Kind {
	case "uniform":
		return traffic.Uniform{}, nil
	case "permutation":
		return traffic.NewPermutation(ports, seed), nil
	case "hotspot":
		if !(p.Frac > 0 && p.Frac <= 1) {
			return nil, fieldErr("workload.pattern.frac %v out of (0,1] for hotspot", p.Frac)
		}
		if p.Spots < 1 || p.Spots > ports {
			return nil, fieldErr("workload.pattern.spots %d out of [1,%d] for hotspot", p.Spots, ports)
		}
		return traffic.Hotspot{Frac: p.Frac, Spots: p.Spots}, nil
	case "zipf":
		if p.S <= 0 {
			return nil, fieldErr("workload.pattern.s must be positive for zipf, have %v", p.S)
		}
		return traffic.NewZipf(ports, p.S), nil
	case "hotspot-churn":
		d, err := period()
		if err != nil {
			return nil, err
		}
		return traffic.NewRotatingPermutation(ports, d, seed), nil
	case "incast":
		d, err := period()
		if err != nil {
			return nil, err
		}
		duty := p.Duty
		if duty == 0 {
			duty = 0.25
		}
		if !(duty > 0 && duty <= 1) {
			return nil, fieldErr("workload.pattern.duty %v out of (0,1] for incast", p.Duty)
		}
		return traffic.IncastWave{Period: d, Duty: duty}, nil
	case "conference":
		size := p.Size
		if size == 0 {
			size = 4
		}
		if size < 2 {
			return nil, fieldErr("workload.pattern.size %d below the 2-port conference minimum", p.Size)
		}
		return traffic.Conference{Size: size}, nil
	case "scalefree":
		if p.S <= 0 {
			return nil, fieldErr("workload.pattern.s must be positive for scalefree, have %v", p.S)
		}
		return traffic.NewScaleFree(ports, p.S, seed), nil
	case "":
		return nil, fieldErr("workload.pattern.kind is required")
	}
	return nil, fieldErr("workload.pattern.kind %q unknown (have uniform, permutation, hotspot, zipf, hotspot-churn, incast, conference, scalefree)", p.Kind)
}

// build constructs the size distribution named by the spec.
func (s SizeSpec) build(field string) (traffic.SizeDist, error) {
	if s.Kind != "fixed" && s.Bytes != 0 {
		return nil, fieldErr("%s.bytes is only used by the fixed kind", field)
	}
	switch s.Kind {
	case "fixed":
		if s.Bytes <= 0 {
			return nil, fieldErr("%s.bytes must be positive for fixed, have %d", field, s.Bytes)
		}
		return traffic.Fixed{Size: units.Size(s.Bytes) * units.Byte}, nil
	case "trimodal":
		return traffic.TrimodalInternet{}, nil
	case "webconference":
		return traffic.WebConference(), nil
	case "":
		return nil, fieldErr("%s.kind is required", field)
	}
	if d, ok := traffic.EmpiricalByName(s.Kind); ok {
		return d, nil
	}
	return nil, fieldErr("%s.kind %q unknown (have fixed, trimodal, webconference, websearch, datamining, hadoop, cachefollower)", field, s.Kind)
}

// build constructs the load profile named by the spec.
func (lp LoadProfileSpec) build() (traffic.LoadProfile, error) {
	switch lp.Kind {
	case "diurnal":
		d, err := parseDuration("workload.loadProfile.period", lp.Period)
		if err != nil {
			return nil, err
		}
		if !(lp.Floor > 0 && lp.Floor <= 1) {
			return nil, fieldErr("workload.loadProfile.floor %v out of (0,1] for diurnal", lp.Floor)
		}
		return traffic.Diurnal{Period: d, Floor: lp.Floor}, nil
	case "":
		return nil, fieldErr("workload.loadProfile.kind is required")
	}
	return nil, fieldErr("workload.loadProfile.kind %q unknown (have diurnal)", lp.Kind)
}
