package scenario

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzLoadScenarioConfig pins the loader contract: any byte sequence
// either loads into a Validate-clean Config or fails with an error
// wrapping ErrBadScenarioConfig — never a panic — and every accepted
// config survives an Encode/Load round trip unchanged. The committed
// scenario pack is the seed corpus, so the fuzzer starts from every
// shape the repo actually ships.
func FuzzLoadScenarioConfig(f *testing.F) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "scenarios", "*.json"))
	if err != nil {
		f.Fatal(err)
	}
	if len(paths) == 0 {
		f.Fatal("no committed scenario pack to seed from")
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(minimalConfig))
	f.Add([]byte(""))
	f.Add([]byte("{"))
	f.Add([]byte("[]"))
	f.Add([]byte(`{"ports": 4}`))
	f.Add([]byte(`{"ports": 4, "unknown": true}`))
	f.Add([]byte(minimalConfig + minimalConfig))

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Load(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadScenarioConfig) {
				t.Fatalf("Load error %v does not wrap ErrBadScenarioConfig", err)
			}
			return
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("Load accepted a config that fails Validate: %v", err)
		}
		var buf bytes.Buffer
		if err := c.Encode(&buf); err != nil {
			t.Fatalf("Encode of accepted config: %v", err)
		}
		got, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-Load of encoded config: %v\nencoded:\n%s", err, buf.String())
		}
		if !reflect.DeepEqual(got, c) {
			t.Fatalf("round trip drifted:\n got %+v\nwant %+v", got, c)
		}
	})
}
