package eps

import (
	"testing"

	"hybridsched/internal/packet"
	"hybridsched/internal/sim"
	"hybridsched/internal/units"
)

func testSwitch(t *testing.T, limit units.Size) (*sim.Simulator, *Switch, *[]*packet.Packet) {
	t.Helper()
	s := sim.New()
	var delivered []*packet.Packet
	sw := New(s, Config{
		Ports:         4,
		PortRate:      units.Gbps,
		FabricLatency: 500 * units.Nanosecond,
		QueueLimit:    limit,
	}, func(p *packet.Packet, out packet.Port) {
		if p.Dst != out {
			t.Fatalf("misdelivered: %v at %d", p, out)
		}
		delivered = append(delivered, p)
	})
	return s, sw, &delivered
}

func TestStoreAndForwardLatency(t *testing.T) {
	s, sw, delivered := testSwitch(t, 0)
	p := &packet.Packet{Src: 0, Dst: 1, Size: 1500 * units.Byte}
	sw.Send(p)
	s.Run()
	if len(*delivered) != 1 {
		t.Fatalf("delivered %d", len(*delivered))
	}
	// fabric 500ns + 1500B at 1Gbps = 12us -> 12.5us total
	want := units.Time(500*units.Nanosecond + 12*units.Microsecond)
	if got := s.Now(); got != want {
		t.Fatalf("delivery at %v, want %v", got, want)
	}
	if (*delivered)[0].Via != packet.PathEPS {
		t.Fatal("path not stamped EPS")
	}
}

func TestOutputSerialization(t *testing.T) {
	s, sw, delivered := testSwitch(t, 0)
	// Two packets to the same output must serialize back-to-back.
	sw.Send(&packet.Packet{ID: 1, Src: 0, Dst: 1, Size: 1500 * units.Byte})
	sw.Send(&packet.Packet{ID: 2, Src: 2, Dst: 1, Size: 1500 * units.Byte})
	s.Run()
	if len(*delivered) != 2 {
		t.Fatalf("delivered %d", len(*delivered))
	}
	if (*delivered)[0].ID != 1 || (*delivered)[1].ID != 2 {
		t.Fatal("order broken")
	}
	// 500ns fabric + 2 x 12us serialization.
	want := units.Time(500*units.Nanosecond + 24*units.Microsecond)
	if s.Now() != want {
		t.Fatalf("finished at %v, want %v", s.Now(), want)
	}
}

func TestDistinctOutputsDoNotBlock(t *testing.T) {
	s, sw, delivered := testSwitch(t, 0)
	sw.Send(&packet.Packet{ID: 1, Src: 0, Dst: 1, Size: 1500 * units.Byte})
	sw.Send(&packet.Packet{ID: 2, Src: 0, Dst: 2, Size: 1500 * units.Byte})
	s.Run()
	if len(*delivered) != 2 {
		t.Fatalf("delivered %d", len(*delivered))
	}
	// Both finish at the same time: no head-of-line coupling.
	want := units.Time(500*units.Nanosecond + 12*units.Microsecond)
	if s.Now() != want {
		t.Fatalf("finished at %v, want %v", s.Now(), want)
	}
}

func TestTailDropAccounting(t *testing.T) {
	s, sw, delivered := testSwitch(t, 2000*units.Byte)
	for i := 0; i < 5; i++ {
		sw.Send(&packet.Packet{ID: uint64(i), Src: 0, Dst: 1, Size: 1500 * units.Byte})
	}
	s.Run()
	st := sw.Stats()
	// The first packet starts draining as soon as it lands, so up to two
	// more fit in the 2000B queue transiently; at least one must drop.
	if st.Drops == 0 {
		t.Fatal("expected drops with a 2000B queue and 5 packets")
	}
	if int64(len(*delivered))+st.Drops != 5 {
		t.Fatalf("conservation broken: %d delivered + %d dropped != 5",
			len(*delivered), st.Drops)
	}
	if st.DroppedBits != units.Size(st.Drops)*1500*units.Byte {
		t.Fatalf("dropped bits %v inconsistent with %d drops", st.DroppedBits, st.Drops)
	}
	if st.PeakQueueBits == 0 {
		t.Fatal("peak queue should be nonzero")
	}
}

func TestBacklogVisibility(t *testing.T) {
	s, sw, _ := testSwitch(t, 0)
	sw.Send(&packet.Packet{Src: 0, Dst: 3, Size: 1500 * units.Byte})
	sw.Send(&packet.Packet{Src: 1, Dst: 3, Size: 1500 * units.Byte})
	// After the fabric latency both have arrived; one is draining, one queued.
	s.RunUntil(units.Time(600 * units.Nanosecond))
	if got := sw.Backlog(3); got != 1500*units.Byte {
		t.Fatalf("backlog = %v, want 1500B", got)
	}
	s.Run()
	if sw.Backlog(3) != 0 {
		t.Fatal("backlog should drain to zero")
	}
}

func TestStatsBits(t *testing.T) {
	s, sw, _ := testSwitch(t, 0)
	sw.Send(&packet.Packet{Src: 0, Dst: 1, Size: 1000 * units.Byte})
	sw.Send(&packet.Packet{Src: 0, Dst: 2, Size: 500 * units.Byte})
	s.Run()
	st := sw.Stats()
	if st.PktsDelivered != 2 || st.BitsDelivered != 1500*units.Byte {
		t.Fatalf("stats = %+v", st)
	}
}

func TestConfigValidation(t *testing.T) {
	s := sim.New()
	deliver := func(*packet.Packet, packet.Port) {}
	for _, cfg := range []Config{
		{Ports: 0, PortRate: units.Gbps},
		{Ports: 4, PortRate: 0},
	} {
		func() {
			defer func() { recover() }()
			New(s, cfg, deliver)
			t.Errorf("expected panic for %+v", cfg)
		}()
	}
	func() {
		defer func() { recover() }()
		New(s, Config{Ports: 4, PortRate: units.Gbps}, nil)
		t.Error("expected panic for nil deliver")
	}()
}
