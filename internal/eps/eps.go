// Package eps models the electrical packet switch of the hybrid
// architecture: a store-and-forward switch with per-output queues. In the
// paper's design it carries "residual traffic" — the short and
// latency-sensitive flows the circuit schedule does not cover — so it is
// typically provisioned at a fraction of the optical line rate.
package eps

import (
	"hybridsched/internal/packet"
	"hybridsched/internal/sim"
	"hybridsched/internal/stats"
	"hybridsched/internal/units"
	"hybridsched/internal/voq"
)

// Config parameterizes the switch.
type Config struct {
	Ports         int
	PortRate      units.BitRate  // drain rate per output port
	FabricLatency units.Duration // ingress-to-output-queue latency
	QueueLimit    units.Size     // per-output buffer (0 = unlimited)
}

// Switch is the packet switch. Create with New.
type Switch struct {
	sim     *sim.Simulator
	cfg     Config
	outQ    []*voq.Queue
	sending []bool
	deliver func(p *packet.Packet, out packet.Port)

	bitsOut stats.Counter
	pktsOut stats.Counter
}

// New creates an idle switch. deliver is invoked as packets leave output
// ports.
func New(s *sim.Simulator, cfg Config, deliver func(*packet.Packet, packet.Port)) *Switch {
	if cfg.Ports <= 0 {
		panic("eps: Ports must be positive")
	}
	if cfg.PortRate <= 0 {
		panic("eps: PortRate must be positive")
	}
	if deliver == nil {
		panic("eps: nil deliver callback")
	}
	sw := &Switch{
		sim:     s,
		cfg:     cfg,
		outQ:    make([]*voq.Queue, cfg.Ports),
		sending: make([]bool, cfg.Ports),
		deliver: deliver,
	}
	for i := range sw.outQ {
		sw.outQ[i] = voq.NewQueue(cfg.QueueLimit, 0)
	}
	return sw
}

// Send accepts p at the ingress. After the fabric latency it lands in the
// output queue for p.Dst (tail-dropping if full) and drains at PortRate.
// Send never blocks; loss is visible through Stats.
func (s *Switch) Send(p *packet.Packet) {
	out := int(p.Dst)
	s.sim.Schedule(s.cfg.FabricLatency, func() {
		if s.outQ[out].Enqueue(s.sim.Now(), p) {
			s.drain(out)
		}
	})
}

// drain starts the output transmitter if it is idle.
func (s *Switch) drain(out int) {
	if s.sending[out] {
		return
	}
	p := s.outQ[out].Dequeue(s.sim.Now())
	if p == nil {
		return
	}
	s.sending[out] = true
	tx := units.TransmitTime(p.Size, s.cfg.PortRate)
	s.sim.Schedule(tx, func() {
		p.Via = packet.PathEPS
		s.bitsOut.Add(int64(p.Size))
		s.pktsOut.Inc()
		s.deliver(p, packet.Port(out))
		s.sending[out] = false
		s.drain(out)
	})
}

// Stats is a snapshot of switch counters.
type Stats struct {
	BitsDelivered units.Size
	PktsDelivered int64
	Drops         int64
	DroppedBits   units.Size
	PeakQueueBits units.Size // largest single output-queue high-water mark
	QueuedBits    units.Size // current total backlog
}

// Stats returns a snapshot of counters.
func (s *Switch) Stats() Stats {
	st := Stats{
		BitsDelivered: units.Size(s.bitsOut.Value()),
		PktsDelivered: s.pktsOut.Value(),
	}
	for _, q := range s.outQ {
		st.Drops += q.Drops()
		st.DroppedBits += q.DroppedBits()
		if q.PeakBits() > st.PeakQueueBits {
			st.PeakQueueBits = q.PeakBits()
		}
		st.QueuedBits += q.Bits()
	}
	return st
}

// Backlog returns the queued bits at output port out.
func (s *Switch) Backlog(out packet.Port) units.Size { return s.outQ[out].Bits() }
