// Package sim is the discrete-event simulation kernel: a picosecond clock
// and a binary-heap event queue with deterministic FIFO tie-breaking.
//
// The kernel is deliberately single-threaded. Hybrid-switch scheduling is a
// tightly coupled feedback loop (VOQ state -> demand -> schedule -> grants
// -> VOQ state); event-level parallelism would buy nothing and cost
// reproducibility. Parallelism belongs one level up, across independent
// simulation configurations.
package sim

import (
	"container/heap"
	"fmt"

	"hybridsched/internal/units"
)

// Event is a scheduled callback. Obtain events from Simulator.Schedule or
// Simulator.At; cancel them with Cancel.
type Event struct {
	when     units.Time
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index, -1 once popped
}

// When returns the time the event is scheduled to fire.
func (e *Event) When() units.Time { return e.when }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Simulator owns the simulated clock and event queue. The zero value is a
// simulator at time zero, ready to use.
type Simulator struct {
	now       units.Time
	queue     eventHeap
	seq       uint64
	processed uint64
	stopped   bool
}

// New returns a simulator at time zero.
func New() *Simulator { return &Simulator{} }

// Now returns the current simulated time.
func (s *Simulator) Now() units.Time { return s.now }

// Processed returns the number of events executed so far.
func (s *Simulator) Processed() uint64 { return s.processed }

// Pending returns the number of events waiting in the queue (including
// canceled events not yet drained).
func (s *Simulator) Pending() int { return len(s.queue) }

// Schedule runs fn after delay d. A non-positive delay schedules fn at the
// current time; it runs after all events already scheduled for this instant
// (FIFO within a timestamp).
func (s *Simulator) Schedule(d units.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// At runs fn at absolute time t. Scheduling in the past is a programming
// error and panics: silently reordering the past would corrupt causality.
func (s *Simulator) At(t units.Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("sim: scheduling nil callback")
	}
	e := &Event{when: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// Cancel prevents e from firing. Canceling an already-fired or
// already-canceled event is a harmless no-op.
func (s *Simulator) Cancel(e *Event) {
	if e == nil || e.canceled {
		return
	}
	e.canceled = true
	e.fn = nil
	if e.index >= 0 {
		heap.Remove(&s.queue, e.index)
	}
}

// Stop makes the current Run/RunUntil return after the current event
// completes. Pending events remain queued.
func (s *Simulator) Stop() { s.stopped = true }

// Step executes the single earliest pending event. It returns false when
// the queue is empty.
func (s *Simulator) Step() bool {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.canceled {
			continue
		}
		s.now = e.when
		fn := e.fn
		e.fn = nil
		s.processed++
		fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called.
func (s *Simulator) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// RunUntil executes all events scheduled at or before t, then advances the
// clock to t. Events scheduled after t remain pending.
func (s *Simulator) RunUntil(t units.Time) {
	s.stopped = false
	for !s.stopped {
		idx := s.peek()
		if idx == nil || idx.when > t {
			break
		}
		s.Step()
	}
	if !s.stopped && t > s.now {
		s.now = t
	}
}

func (s *Simulator) peek() *Event {
	for len(s.queue) > 0 {
		if s.queue[0].canceled {
			heap.Pop(&s.queue)
			continue
		}
		return s.queue[0]
	}
	return nil
}

// Ticker invokes fn every period until canceled. It is the building block
// for clocked hardware models (the scheduling pipeline, slotted OCS
// schedules).
type Ticker struct {
	sim     *Simulator
	period  units.Duration
	fn      func()
	ev      *Event
	stopped bool
}

// NewTicker starts a ticker whose first tick fires after one period.
// period must be positive.
func (s *Simulator) NewTicker(period units.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{sim: s, period: period, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.sim.Schedule(t.period, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop cancels the ticker.
func (t *Ticker) Stop() {
	t.stopped = true
	t.sim.Cancel(t.ev)
}
