// Package sim is the discrete-event simulation kernel: a picosecond clock
// and a binary-heap event queue with deterministic FIFO tie-breaking.
//
// The kernel is deliberately single-threaded. Hybrid-switch scheduling is a
// tightly coupled feedback loop (VOQ state -> demand -> schedule -> grants
// -> VOQ state); event-level parallelism would buy nothing and cost
// reproducibility. Parallelism belongs one level up, across independent
// simulation configurations — see internal/runner.
//
// Event storage is recycled through a per-simulator freelist, so the
// Schedule/Step hot path performs zero amortized heap allocations. Handles
// are generation-stamped: a handle to an event that has fired or been
// canceled goes stale, and canceling through a stale handle is a harmless
// no-op even after the underlying storage has been reused.
package sim

import (
	"container/heap"
	"fmt"

	"hybridsched/internal/units"
)

// node is the queued representation of a scheduled callback. Nodes are
// recycled through Simulator.freelist; gen increments on every release so
// stale Event handles can never touch a reused node.
type node struct {
	when  units.Time
	seq   uint64
	gen   uint64
	fn    func()
	index int // heap index, -1 once popped
}

// Event is a handle to a scheduled callback, returned by Schedule and At
// and consumed by Cancel. It is a small value: copy it freely. The zero
// Event is valid and refers to nothing.
type Event struct {
	n    *node
	gen  uint64
	when units.Time
}

// When returns the time the event was scheduled to fire.
func (e Event) When() units.Time { return e.when }

type eventHeap []*node

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	n := x.(*node)
	n.index = len(*h)
	*h = append(*h, n)
}
func (h *eventHeap) Pop() any {
	old := *h
	k := len(old)
	n := old[k-1]
	old[k-1] = nil
	n.index = -1
	*h = old[:k-1]
	return n
}

// Simulator owns the simulated clock and event queue. The zero value is a
// simulator at time zero, ready to use.
type Simulator struct {
	now       units.Time
	queue     eventHeap
	freelist  []*node
	seq       uint64
	processed uint64
	stopped   bool
}

// New returns a simulator at time zero.
func New() *Simulator { return &Simulator{} }

// Now returns the current simulated time.
func (s *Simulator) Now() units.Time { return s.now }

// Processed returns the number of events executed so far.
func (s *Simulator) Processed() uint64 { return s.processed }

// Pending returns the number of live events waiting in the queue. Canceled
// events are removed eagerly and are never counted.
func (s *Simulator) Pending() int { return len(s.queue) }

// alloc takes a node from the freelist, or heap-allocates when empty.
func (s *Simulator) alloc() *node {
	if k := len(s.freelist); k > 0 {
		n := s.freelist[k-1]
		s.freelist[k-1] = nil
		s.freelist = s.freelist[:k-1]
		return n
	}
	return &node{}
}

// free retires a node to the freelist, invalidating every outstanding
// handle to it by bumping the generation.
func (s *Simulator) free(n *node) {
	n.fn = nil
	n.gen++
	s.freelist = append(s.freelist, n)
}

// Schedule runs fn after delay d. A non-positive delay schedules fn at the
// current time; it runs after all events already scheduled for this instant
// (FIFO within a timestamp).
func (s *Simulator) Schedule(d units.Duration, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// At runs fn at absolute time t. Scheduling in the past is a programming
// error and panics: silently reordering the past would corrupt causality.
func (s *Simulator) At(t units.Time, fn func()) Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("sim: scheduling nil callback")
	}
	n := s.alloc()
	n.when = t
	n.seq = s.seq
	n.fn = fn
	s.seq++
	heap.Push(&s.queue, n)
	return Event{n: n, gen: n.gen, when: t}
}

// Cancel prevents e from firing and removes it from the queue immediately
// (Pending drops at once). Canceling an already-fired or already-canceled
// event, or the zero Event, is a harmless no-op: handles go stale when the
// event fires or is canceled, so a late Cancel can never hit an event that
// reused the same storage.
func (s *Simulator) Cancel(e Event) {
	n := e.n
	if n == nil || n.gen != e.gen {
		return
	}
	if n.index >= 0 {
		heap.Remove(&s.queue, n.index)
	}
	s.free(n)
}

// Stop makes the current Run/RunUntil return after the current event
// completes. Pending events remain queued.
func (s *Simulator) Stop() { s.stopped = true }

// Step executes the single earliest pending event. It returns false when
// the queue is empty.
func (s *Simulator) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	n := heap.Pop(&s.queue).(*node)
	s.now = n.when
	fn := n.fn
	// Retire the node before running the callback: the callback may
	// schedule new events (which reuse it under a fresh generation) or
	// cancel its own handle (now stale, a no-op).
	s.free(n)
	s.processed++
	fn()
	return true
}

// Run executes events until the queue is empty or Stop is called.
func (s *Simulator) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// RunUntil executes all events scheduled at or before t, then advances the
// clock to t. Events scheduled after t remain pending.
func (s *Simulator) RunUntil(t units.Time) {
	s.stopped = false
	for !s.stopped {
		if len(s.queue) == 0 || s.queue[0].when > t {
			break
		}
		s.Step()
	}
	if !s.stopped && t > s.now {
		s.now = t
	}
}

// Ticker invokes fn every period until canceled. It is the building block
// for clocked hardware models (the scheduling pipeline, slotted OCS
// schedules).
type Ticker struct {
	sim     *Simulator
	period  units.Duration
	fn      func()
	ev      Event
	stopped bool
}

// NewTicker starts a ticker whose first tick fires after one period.
// period must be positive.
func (s *Simulator) NewTicker(period units.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{sim: s, period: period, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.sim.Schedule(t.period, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop cancels the ticker. Stopping a ticker twice, or from inside its own
// tick callback, is safe.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.sim.Cancel(t.ev)
}
